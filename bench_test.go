// Repository-level benchmarks: one benchmark per table/figure of the
// paper's evaluation (the experiment harness functions regenerate the
// exact rows; these benches time them and report the headline numbers as
// custom metrics), plus microbenchmarks for the hot paths of the RT
// layer: the feasibility test, admission, the EDF queue, the frame
// codecs and the simulator core.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig18_5 -v        # headline figure with its table
package repro_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/exp"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/traffic"
	"repro/rtether"
)

// benchTable runs an experiment once per iteration, logging the table on
// the first iteration so `-v` shows the regenerated figure.
func benchTable(b *testing.B, run func() interface{ String() string }) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb := run()
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
}

// --- E1: Figure 18.5 ---------------------------------------------------

func BenchmarkFig18_5(b *testing.B) {
	var lastSDPS, lastADPS int
	for i := 0; i < b.N; i++ {
		tb := exp.Fig185()
		rows := tb.Rows()
		last := rows[len(rows)-1]
		lastSDPS, _ = strconv.Atoi(last[1])
		lastADPS, _ = strconv.Atoi(last[2])
		if i == 0 {
			b.Logf("\n%s", tb)
		}
	}
	b.ReportMetric(float64(lastSDPS), "accepted-SDPS@200")
	b.ReportMetric(float64(lastADPS), "accepted-ADPS@200")
}

// --- E2: admission-policy soundness -------------------------------------

func BenchmarkFeasibilityModes(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.FeasibilityModes() })
}

// --- E3: delay guarantee under simulation --------------------------------

func BenchmarkDelayGuarantee(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.DelayGuarantee() })
}

// --- E4: shaping ablation -------------------------------------------------

func BenchmarkShapingAblation(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.ShapingAblation() })
}

// --- E5: RT / non-RT coexistence -------------------------------------------

func BenchmarkCoexistence(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.Coexistence() })
}

// --- E6: multi-switch fabrics ----------------------------------------------

func BenchmarkMultiSwitch(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.MultiSwitch() })
}

// --- E7: alternative schedulers --------------------------------------------

func BenchmarkAltSched(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.AltSched() })
}

// --- E8: deadline sweep -----------------------------------------------------

func BenchmarkDeadlineSweep(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.DeadlineSweep() })
}

// --- E9: DPS fallback search -------------------------------------------------

func BenchmarkDPSSearch(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.DPSSearch() })
}

// --- E10: fabric simulation ----------------------------------------------------

func BenchmarkFabricDelay(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.FabricDelay() })
}

// --- E11: dispatcher mismatch ---------------------------------------------------

func BenchmarkDisciplineMismatch(b *testing.B) {
	benchTable(b, func() interface{ String() string } { return exp.DisciplineMismatch() })
}

// --- Microbenchmarks: analysis hot paths -----------------------------------

// BenchmarkFeasibilityTest measures one full two-constraint EDF test on a
// link carrying 100 mixed-deadline channels — the admission-control inner
// loop.
func BenchmarkFeasibilityTest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tasks := make([]edf.Task, 100)
	for i := range tasks {
		c := int64(rng.Intn(3) + 1)
		tasks[i] = edf.Task{C: c, P: int64(rng.Intn(150) + 50), D: 2*c + int64(rng.Intn(60))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := edf.TestDefault(tasks)
		if res.Verdict == edf.InvalidTask {
			b.Fatal(res)
		}
	}
}

// BenchmarkAdmissionSequence measures the full Fig. 18.5 admission
// sequence (200 requests with repartitioning and per-link verification).
func BenchmarkAdmissionSequence(b *testing.B) {
	requests := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}} {
		b.Run(dps.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(core.Config{DPS: dps})
				for _, s := range requests {
					_, _ = ctrl.Request(s)
				}
			}
		})
	}
}

// scaleSpecs generates n feasible synthetic channels spread over a
// 100-source x 100-sink grid, so per-link load grows to n/100 while the
// population reaches fleet scale.
func scaleSpecs(n int) []core.ChannelSpec {
	specs := make([]core.ChannelSpec, n)
	for i := range specs {
		specs[i] = core.ChannelSpec{
			Src: core.NodeID(1 + i%100),
			Dst: core.NodeID(1001 + (i/100)%100),
			C:   1, P: 10000, D: 2000,
		}
	}
	return specs
}

// scaleFabricSpecs relaxes the periods so the trunk links — which
// concentrate half the population each — stay EDF-feasible at 10k
// channels (a trunk serving k unit-capacity channels needs a per-hop
// budget of at least k slots).
func scaleFabricSpecs(n int) []core.ChannelSpec {
	specs := scaleSpecs(n)
	for i := range specs {
		specs[i].P = 100000
		specs[i].D = 50000
	}
	return specs
}

// scaleFabric is a 4-switch line with the scale workload's sources on
// switches 0-1 and sinks on switches 2-3, so routes cross up to 5 hops.
func scaleFabric() *topo.Topology {
	top := topo.Line(4)
	for i := 0; i < 100; i++ {
		if err := top.AttachNode(core.NodeID(1+i), topo.SwitchID(i%2)); err != nil {
			panic(err)
		}
		if err := top.AttachNode(core.NodeID(1001+i), topo.SwitchID(2+i%2)); err != nil {
			panic(err)
		}
	}
	return top
}

// BenchmarkAdmissionScale measures the admission hot path at fleet scale
// (N in {1k, 10k} active channels) on both backends, sequentially (N
// Request calls, each repartitioning incrementally) and batched (one
// RequestAll). The naive engine deep-cloned and repartitioned all N
// channels per request — O(N^2) per sequence — and did not finish 10k in
// sane time; the incremental engine must.
func BenchmarkAdmissionScale(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		name := fmt.Sprintf("%dk", n/1000)
		specs := scaleSpecs(n)

		b.Run(name+"/star-sequential-ADPS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(core.Config{DPS: core.ADPS{}})
				for _, s := range specs {
					if _, err := ctrl.Request(s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/star-batch-ADPS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(core.Config{DPS: core.ADPS{}})
				if _, err := ctrl.RequestAll(specs); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The coalescing path: same merged workload, but with per-spec
		// verdicts (rtetherd's front-end). All-feasible, so the greedy
		// bisection resolves in one kernel pass like the atomic batch.
		b.Run(name+"/star-each-ADPS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(core.Config{DPS: core.ADPS{}})
				_, errs := ctrl.RequestEach(specs)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		fabricSpecs := scaleFabricSpecs(n)
		b.Run(name+"/fabric-sequential-HSDPS", func(b *testing.B) {
			top := scaleFabric()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl := topo.NewController(top, topo.Config{DPS: topo.HSDPS{}})
				for _, s := range fabricSpecs {
					if _, err := ctrl.Request(s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/fabric-batch-HSDPS", func(b *testing.B) {
			top := scaleFabric()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl := topo.NewController(top, topo.Config{DPS: topo.HSDPS{}})
				if _, err := ctrl.RequestAll(fabricSpecs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMulticastFanout quantifies what tree routing buys over
// replicated unicast on a shared trunk. Two switches, publishers on
// switch 0, 16 subscribers on switch 1: every fan-out must cross the
// one trunk. A distribution tree puts ONE task on the trunk per
// fan-out group (the shared prefix carries the stream once); N
// independent unicasts at the same {C, P, D} put N. Both variants
// admit fan-out groups until the first rejection and report the
// admitted-group count and the trunk cost per group — the tree side
// must sustain many times more groups at equal deadline.
func BenchmarkMulticastFanout(b *testing.B) {
	const (
		nSinks    = 16
		maxGroups = 64
		cBudget   = 1
		period    = 10000
		deadline  = 90 // 3 hops, so H-SDPS gives each hop a 30-slot budget
	)
	sinks := make([]core.NodeID, nSinks)
	for i := range sinks {
		sinks[i] = core.NodeID(1001 + i)
	}
	fanTopo := func() *topo.Topology {
		top := topo.Line(2)
		for g := 0; g < maxGroups; g++ {
			if err := top.AttachNode(core.NodeID(1+g), 0); err != nil {
				panic(err)
			}
		}
		for _, s := range sinks {
			if err := top.AttachNode(s, 1); err != nil {
				panic(err)
			}
		}
		return top
	}
	trunk := topo.Edge{From: topo.SwitchEnd(0), To: topo.SwitchEnd(1)}

	report := func(b *testing.B, st *topo.State, groups int) {
		b.Helper()
		if groups == 0 {
			b.Fatal("no fan-out group admitted at all")
		}
		load := st.LinkLoad(trunk)
		b.ReportMetric(float64(groups), "fanout-groups")
		b.ReportMetric(float64(load)/float64(groups), "trunk-tasks/group")
		b.ReportMetric(float64(groups*nSinks), "sinks-covered")
	}

	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctrl := topo.NewController(fanTopo(), topo.Config{DPS: topo.HSDPS{}})
			groups := 0
			for g := 0; g < maxGroups; g++ {
				spec := core.MulticastSpec{
					Src: core.NodeID(1 + g), Sinks: sinks,
					C: cBudget, P: period, D: deadline,
				}
				if _, err := ctrl.RequestMulticast(spec); err != nil {
					break
				}
				groups++
			}
			if i == b.N-1 {
				report(b, ctrl.State(), groups)
			}
		}
	})
	b.Run("unicast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctrl := topo.NewController(fanTopo(), topo.Config{DPS: topo.HSDPS{}})
			groups := 0
		admitGroups:
			for g := 0; g < maxGroups; g++ {
				// A fan-out group is N separate channels; a rejected
				// member voids the group, so roll its siblings back.
				var admitted []*topo.HChannel
				for _, sink := range sinks {
					spec := core.ChannelSpec{
						Src: core.NodeID(1 + g), Dst: sink,
						C: cBudget, P: period, D: deadline,
					}
					ch, err := ctrl.Request(spec)
					if err != nil {
						for _, prev := range admitted {
							if rerr := ctrl.Release(prev.ID); rerr != nil {
								b.Fatal(rerr)
							}
						}
						break admitGroups
					}
					admitted = append(admitted, ch)
				}
				groups++
			}
			if i == b.N-1 {
				report(b, ctrl.State(), groups)
			}
		}
	})
}

// verifyHeavySpecs generates n feasible channels concentrated on 4
// sources and 4 sinks. Loads are exactly balanced (so ADPS splits every
// deadline in half) and the deadlines are C-spaced, which makes every
// demand checkpoint exactly tight: the batch is admissible, but only
// after a full-depth demand analysis of ~2500 checkpoints over ~2500
// tasks on each of the 8 links — the verification-bound regime the
// parallel sweep exists for.
func verifyHeavySpecs(n int) []core.ChannelSpec {
	specs := make([]core.ChannelSpec, n)
	for i := range specs {
		specs[i] = core.ChannelSpec{
			Src: core.NodeID(1 + i%4),
			Dst: core.NodeID(101 + i%4),
			C:   2, P: 5000, D: 8 + 4*int64(i/4),
		}
	}
	return specs
}

// BenchmarkAdmissionScaleVerifyWorkers measures the 10k-channel batch
// verification sweep at fixed worker counts. Decisions are identical at
// every worker count (proven by the equivalence tests); only wall-clock
// may differ — the acceptance bar is >=2x at 4 workers over workers=1 on
// this verification-bound batch. (The fabric batch of
// BenchmarkAdmissionScale is partition-bound, not verification-bound, so
// worker counts barely move it; it is benchmarked without variants.)
func BenchmarkAdmissionScaleVerifyWorkers(b *testing.B) {
	specs := verifyHeavySpecs(10000)
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("10k/star-batch-verify/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(core.Config{DPS: core.ADPS{}, VerifyWorkers: w})
				chs, err := ctrl.RequestAll(specs)
				if err != nil {
					b.Fatal(err)
				}
				if len(chs) != len(specs) {
					b.Fatalf("accepted %d of %d", len(chs), len(specs))
				}
			}
		})
	}
}

// churnScenarioDoc builds a declarative churn scenario over the scale
// workload's 100-source × 100-sink population: a seeded Poisson arrival
// process establishes ~10k channels over the horizon, each held for an
// exponential time and then released. On the fabric variant the
// population is spread over the 4-switch line of scaleFabric, so routes
// cross up to 5 hops and the trunks concentrate half the churn each.
func churnScenarioDoc(fabric bool) string {
	var b strings.Builder
	b.WriteString(`{"name":"churn bench","slots":100000,"seed":7,`)
	var sources, dests []string
	for i := 0; i < 100; i++ {
		sources = append(sources, strconv.Itoa(1+i))
		dests = append(dests, strconv.Itoa(1001+i))
	}
	p, d := int64(10000), int64(2000)
	if fabric {
		// Trunk links carry half the channels each; relax the periods so
		// the concentrated load stays EDF-feasible (see scaleFabricSpecs).
		p, d = 100000, 50000
		b.WriteString(`"dps":"sdps","topology":{"switches":[0,1,2,3],"trunks":[[0,1],[1,2],[2,3]],"attachments":[`)
		for i := 0; i < 100; i++ {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `{"node":%d,"switch":%d},{"node":%d,"switch":%d}`,
				1+i, i%2, 1001+i, 2+i%2)
		}
		b.WriteString(`]},`)
	} else {
		b.WriteString(`"dps":"adps","nodes":[`)
		b.WriteString(strings.Join(append(append([]string(nil), sources...), dests...), ","))
		b.WriteString(`],`)
	}
	fmt.Fprintf(&b, `"channels":[],"churn":[{"name":"load","rate":0.1,"holdMean":20000,`+
		`"sources":[%s],"destinations":[%s],"c":1,"p":%d,"d":%d}]}`,
		strings.Join(sources, ","), strings.Join(dests, ","), p, d)
	return b.String()
}

// BenchmarkScenarioChurn replays a ~10k-arrival churn timeline against
// admission control on both backends: sustained establish/release load
// with a few thousand channels live at steady state — the regime the
// incremental (copy-on-write, delta-repartitioning) engines exist for.
// Synthesis of the event stream is deterministic and included in the
// measured loop, matching what cmd/rtadmit -scenario does per run.
func BenchmarkScenarioChurn(b *testing.B) {
	for _, bc := range []struct {
		name   string
		fabric bool
	}{
		{"star-ADPS", false},
		{"fabric-HSDPS", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := scenario.Load(strings.NewReader(churnScenarioDoc(bc.fabric)))
			if err != nil {
				b.Fatal(err)
			}
			var events, accepted int
			for i := 0; i < b.N; i++ {
				res, err := s.Replay(1)
				if err != nil {
					b.Fatal(err)
				}
				acc, _, _ := res.EventCounts()
				events, accepted = len(res.Events), acc
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(accepted), "applied/op")
		})
	}
}

// BenchmarkAdmissionIncrementalVsFull is the ablation for the
// changed-links optimization: identical decisions, fewer link tests.
func BenchmarkAdmissionIncrementalVsFull(b *testing.B) {
	requests := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
	for _, full := range []bool{false, true} {
		name := "incremental"
		if full {
			name = "full-recheck"
		}
		b.Run(name, func(b *testing.B) {
			var checked int64
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(core.Config{DPS: core.ADPS{}, FullRecheck: full})
				for _, s := range requests {
					_, _ = ctrl.Request(s)
				}
				checked = int64(ctrl.Stats().LinksChecked)
			}
			b.ReportMetric(float64(checked), "link-tests/seq")
		})
	}
}

// BenchmarkEDFQueue measures push+pop through the deadline-sorted queue
// at a realistic backlog (64 frames).
func BenchmarkEDFQueue(b *testing.B) {
	var q sched.EDFQueue
	for i := 0; i < 64; i++ {
		q.Push(int64(i%17), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(int64(i%29), nil)
		q.Pop()
	}
}

// BenchmarkFrameEncodeDecode measures the RT data frame codec round trip
// (stamp deadline, checksum, parse, verify).
func BenchmarkFrameEncodeDecode(b *testing.B) {
	payload := make([]byte, 64)
	d := frame.Data{
		SrcMAC: frame.NodeMAC(1), DstMAC: frame.NodeMAC(2),
		Deadline: 123456, Channel: 42, Payload: payload,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := frame.EncodeData(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := frame.DecodeData(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated slots per second with
// the saturated ADPS Fig. 18.5 workload (110 channels, ~330 frames per
// 100 slots across 120 links).
func BenchmarkSimulatorThroughput(b *testing.B) {
	n := netsim.New(netsim.Config{DPS: core.ADPS{}})
	for _, id := range traffic.PaperLayout.Nodes() {
		n.MustAddNode(id)
	}
	var ids []core.ChannelID
	for _, s := range traffic.PaperLayout.Requests(200, traffic.PaperSpec) {
		if id, err := n.EstablishChannel(s); err == nil {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		ch := n.Controller().State().Get(id)
		if err := n.Node(ch.Spec.Src).StartTraffic(id, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	const chunk = 1000
	for i := 0; i < b.N; i++ {
		n.Run(n.Engine().Now() + chunk)
	}
	b.StopTimer()
	if n.Report().TotalMisses() != 0 {
		b.Fatal("guarantee violated during benchmark")
	}
	b.ReportMetric(float64(chunk), "slots/op")
}

// BenchmarkEstablishment measures the full over-the-wire handshake
// (request frame, admission, forward, response, commit).
// BenchmarkFailover times the survivability core at fleet scale: 1000
// established channels cross one trunk of a 4-switch ring, and failing
// that trunk drops their in-flight frames, releases every reservation,
// re-routes the whole group onto the detour and re-admits it as one
// batch decision (rtether.Network.SetLinkUp). The measured op is the
// complete recovery pass — graph flip, batch re-admission, simulator
// reroute and budget re-sync — and every channel must survive as
// Rerouted, so the number is the re-admit latency for 1k affected
// channels, not a partial-loss shortcut.
func BenchmarkFailover(b *testing.B) {
	const n = 1000
	build := func() *rtether.Network {
		top := rtether.NewTopology()
		for s := rtether.SwitchID(0); s < 4; s++ {
			if err := top.AddSwitch(s); err != nil {
				b.Fatal(err)
			}
		}
		for _, tr := range [][2]rtether.SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
			if err := top.Trunk(tr[0], tr[1]); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			if err := top.Attach(rtether.NodeID(1+i), 0); err != nil {
				b.Fatal(err)
			}
			if err := top.Attach(rtether.NodeID(1001+i), 1); err != nil {
				b.Fatal(err)
			}
		}
		net := rtether.New(rtether.WithTopology(top), rtether.WithHDPS(rtether.HADPS()))
		specs := make([]rtether.ChannelSpec, n)
		for i := range specs {
			specs[i] = rtether.ChannelSpec{
				Src: rtether.NodeID(1 + i%100), Dst: rtether.NodeID(1001 + i%100),
				C: 1, P: 100000, D: 50000,
			}
		}
		if _, err := net.EstablishAll(specs); err != nil {
			b.Fatal(err)
		}
		return net
	}

	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := build()
		b.StartTimer()
		rep, err := net.SetLinkUp(0, 1, false)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Affected != n || rep.Count(rtether.Rerouted) != n {
			b.Fatalf("recovery report: affected=%d rerouted=%d, want %d/%d",
				rep.Affected, rep.Count(rtether.Rerouted), n, n)
		}
		_ = net.Close()
		b.StartTimer()
	}
	b.ReportMetric(n, "affected-channels")
}

func BenchmarkEstablishment(b *testing.B) {
	n := netsim.New(netsim.Config{DPS: core.ADPS{}})
	for _, id := range traffic.PaperLayout.Nodes() {
		n.MustAddNode(id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := traffic.PaperSpec
		spec.Src = traffic.PaperLayout.Master(i)
		spec.Dst = traffic.PaperLayout.Slave(i)
		id, err := n.EstablishChannel(spec)
		if err != nil {
			continue // saturated: rejections still exercise the path
		}
		if i%2 == 0 {
			_ = n.ReleaseChannel(id)
		}
	}
}
