// Package repro is a Go reproduction of Hoang & Jonsson, "Real-Time
// Communication for Industrial Embedded Systems Using Switched Ethernet"
// (IPPS 2004): real-time channels with guaranteed worst-case delay over
// full-duplex switched Ethernet, EDF frame scheduling in end-nodes and
// switch, per-link feasibility analysis for admission control, and the
// SDPS/ADPS deadline partitioning schemes.
//
// The public API lives in the rtether subpackage: one topology-aware,
// concurrency-safe Network type covering the paper's single-switch star
// and the §18.5 multi-switch fabrics, with *Channel handles that are
// safe to use from any goroutine and typed *AdmissionError rejection
// diagnostics. Both topologies run their admission control on one
// generic copy-on-write kernel (internal/admit) whose batch
// verification sweep parallelizes across cores (rtether.
// WithVerifyWorkers) without changing a single decision. This root
// package only anchors the module documentation and the
// repository-level benchmarks (bench_test.go), which regenerate the
// tables and figures of the paper's evaluation (cmd/rtexp runs them;
// rtexp -list is the experiment index). See README.md for a tour of the
// API and the concurrency contract.
package repro
