// Package repro is a Go reproduction of Hoang & Jonsson, "Real-Time
// Communication for Industrial Embedded Systems Using Switched Ethernet"
// (IPPS 2004): real-time channels with guaranteed worst-case delay over
// full-duplex switched Ethernet, EDF frame scheduling in end-nodes and
// switch, per-link feasibility analysis for admission control, and the
// SDPS/ADPS deadline partitioning schemes.
//
// The public API lives in the rtether subpackage: one topology-aware,
// concurrency-safe Network type covering the paper's single-switch star
// and the §18.5 multi-switch fabrics, with *Channel handles that are
// safe to use from any goroutine and typed *AdmissionError rejection
// diagnostics.
//
// The layers underneath (see docs/architecture.md for the full map and
// an admission decision's end-to-end data flow):
//
//   - internal/netsim — cycle-accurate star simulator with the complete
//     wire protocol: establishment handshakes, frame codecs, the
//     release-guard shaper, best-effort FCFS coexistence, fault
//     injection and tracing.
//   - internal/fabricsim — hop-by-hop RT traffic simulator for routed
//     multi-switch fabrics.
//   - internal/core and internal/topo — the star and fabric admission
//     adapters: specs, routing, SDPS/ADPS and their hop-general forms.
//   - internal/admit — the generic copy-on-write admission kernel both
//     adapters share: persistent per-link caches, delta repartitioning
//     with undo-on-reject rollback, and a parallel verification sweep
//     (rtether.WithVerifyWorkers) that never changes a decision.
//   - internal/edf — the paper's two-constraint EDF feasibility test.
//   - internal/scenario — declarative experiments as JSON data files:
//     multi-switch topologies, event timelines (establish, atomic
//     establishAll batches, release, reconfigure, background-rate
//     changes at given slots) and seeded churn generators for 10k+
//     channel add/remove workloads, all replaying deterministically.
//     cmd/rtsim -scenario runs them; cmd/rtadmit -scenario replays the
//     timeline against admission control alone. The schema reference is
//     docs/scenario-format.md.
//   - internal/server, rtether/wire and rtether/client — the rtetherd
//     admission service: one hosted Network served over HTTP/JSON with
//     a coalescing establish front-end (concurrent clients merge into
//     per-spec batch decisions, Network.EstablishEach), a streaming
//     /v1/watch event feed, the shared wire schema and the typed Go
//     client. cmd/rtetherd is the daemon, cmd/rtload the multi-client
//     load harness. The protocol reference is docs/server.md.
//
// This root package only anchors the module documentation and the
// repository-level benchmarks (bench_test.go), which regenerate the
// tables and figures of the paper's evaluation (cmd/rtexp runs them;
// rtexp -list is the experiment index) and exercise the admission hot
// paths at fleet scale (BenchmarkAdmissionScale, BenchmarkScenarioChurn).
// See README.md for a tour of the API and the concurrency contract.
package repro
