// Package repro is a Go reproduction of Hoang & Jonsson, "Real-Time
// Communication for Industrial Embedded Systems Using Switched Ethernet"
// (IPPS 2004): real-time channels with guaranteed worst-case delay over
// full-duplex switched Ethernet, EDF frame scheduling in end-nodes and
// switch, per-link feasibility analysis for admission control, and the
// SDPS/ADPS deadline partitioning schemes.
//
// The public API lives in the rtether subpackage; this root package only
// anchors the module documentation and the repository-level benchmarks
// (bench_test.go), which regenerate every table and figure of the paper's
// evaluation. See README.md for a tour and DESIGN.md for the experiment
// index.
package repro
