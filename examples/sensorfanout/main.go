// Command sensorfanout demonstrates multicast RT channels end to end
// on a two-switch fabric: one vibration sensor on the plant-cell
// switch feeds four consumers behind a shared trunk.
//
// Part 1 establishes the fan-out as a single distribution tree and
// as four independent unicast channels, and compares what each costs
// the fabric: the tree pays for the shared trunk once, the unicasts
// pay N times.
//
// Part 2 saturates one consumer's downlink and retries the tree — the
// atomic admission rejects the whole tree and the *AdmissionError
// names the failing branch and sink.
//
// Part 3 re-expresses the fan-out as a pub/sub topic over rtetherd:
// consumers subscribe over HTTP (each new node re-admits the tree),
// published payloads fan out to every live feed, and a subscriber the
// RT contract cannot absorb is turned away while the existing ones
// stay undisturbed. See docs/server.md for the protocol.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/client"
)

// The plant layout: sensor node 1 homes on switch 0, consumer nodes
// 11-14 on switch 1, one trunk between them. Every delivery crosses
// uplink(1), the trunk, and the consumer's downlink — three hops.
const (
	sensor    = rtether.NodeID(1)
	firstSink = rtether.NodeID(11)
	nSinks    = 4
)

// contract is the RT contract of the sensor stream: 5 slots of
// bandwidth every 50, delivered within 30 (10 per hop under H-SDPS).
var contract = rtether.MulticastSpec{
	Src: sensor, C: 5, P: 50, D: 30,
	Sinks: sinks(nSinks),
}

func sinks(n int) []rtether.NodeID {
	out := make([]rtether.NodeID, n)
	for i := range out {
		out[i] = firstSink + rtether.NodeID(i)
	}
	return out
}

func fabric() (*rtether.Network, error) {
	top := rtether.NewTopology()
	for sw := rtether.SwitchID(0); sw < 2; sw++ {
		if err := top.AddSwitch(sw); err != nil {
			return nil, err
		}
	}
	if err := top.Trunk(0, 1); err != nil {
		return nil, err
	}
	if err := top.Attach(sensor, 0); err != nil {
		return nil, err
	}
	for _, s := range sinks(nSinks) {
		if err := top.Attach(s, 1); err != nil {
			return nil, err
		}
	}
	return rtether.New(rtether.WithTopology(top), rtether.WithHDPS(rtether.HSDPS())), nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := treeVsUnicast(); err != nil {
		return err
	}
	if err := rejectedBranch(); err != nil {
		return err
	}
	return pubsubOverTheWire()
}

// treeVsUnicast admits the same fan-out both ways and compares the
// fabric-wide cost.
func treeVsUnicast() error {
	fmt.Println("-- part 1: one tree vs four unicasts --")

	nw, err := fabric()
	if err != nil {
		return err
	}
	defer nw.Close()
	fan, err := nw.EstablishMulticast(contract)
	if err != nil {
		return err
	}
	fmt.Printf("tree RT#%d: budgets=%v (one per tree link; the trunk appears once)\n",
		fan.ID(), fan.Budgets())
	st := nw.AdmissionStats()
	fmt.Printf("tree loads %d directed links, mean utilization %.3f\n",
		st.LoadedLinks, st.MeanLinkUtilization)

	// Deliver a few periods: every frame reaches all four sinks.
	fan.Start(0)
	nw.RunFor(10 * contract.P)
	m := fan.Metrics()
	fmt.Printf("after %d slots: %d per-sink deliveries, %d deadline misses\n",
		10*contract.P, m.Delivered, m.Misses)

	// The same fan-out as independent unicasts: the sensor's uplink and
	// the trunk must carry the stream once per sink, and at this
	// deadline that doesn't even fit.
	uni, err := fabric()
	if err != nil {
		return err
	}
	defer uni.Close()
	admitted := 0
	for _, s := range contract.Sinks {
		if _, err := uni.Establish(rtether.ChannelSpec{
			Src: sensor, Dst: s, C: contract.C, P: contract.P, D: contract.D,
		}); err != nil {
			var ae *rtether.AdmissionError
			if !errors.As(err, &ae) {
				return err
			}
			fmt.Printf("unicast to %d rejected at %s: the replicated stream saturates the shared prefix\n", s, ae.Link)
			continue
		}
		admitted++
	}
	su := uni.AdmissionStats()
	fmt.Printf("unicasts: only %d of %d sinks reachable at the same deadline, "+
		"mean utilization %.3f — the tree serves all %d at %.3f\n\n",
		admitted, nSinks, su.MeanLinkUtilization, nSinks, st.MeanLinkUtilization)
	return nil
}

// rejectedBranch saturates one consumer's downlink, so the tree no
// longer fits — the rejection names the branch that broke.
func rejectedBranch() error {
	fmt.Println("-- part 2: one saturated downlink rejects the whole tree --")

	nw, err := fabric()
	if err != nil {
		return err
	}
	defer nw.Close()
	// A local bulk transfer hogs consumer 13's downlink.
	blocker := rtether.ChannelSpec{Src: firstSink + 3, Dst: firstSink + 2, C: 19, P: 20, D: 40}
	if _, err := nw.Establish(blocker); err != nil {
		return err
	}
	_, err = nw.EstablishMulticast(contract)
	var ae *rtether.AdmissionError
	if !errors.As(err, &ae) {
		return fmt.Errorf("expected an AdmissionError, got %v", err)
	}
	fmt.Printf("rejected: %s\n", ae.Reason)
	fmt.Printf("branch %d (sink %d) failed at %s — the other %d branches were rolled back\n",
		ae.Branch, ae.Sink, ae.Link, nSinks-1)
	fmt.Printf("errors.Is(err, rtether.ErrInfeasible) = %v\n\n", errors.Is(err, rtether.ErrInfeasible))
	return nil
}

// pubsubOverTheWire drives the same fan-out through rtetherd's topic
// API: the daemon owns the tree and re-admits it as subscribers come
// and go.
func pubsubOverTheWire() error {
	fmt.Println("-- part 3: the fan-out as a pub/sub topic over rtetherd --")

	nw, err := fabric()
	if err != nil {
		return err
	}
	defer nw.Close()
	srv := server.New(server.Config{Network: nw})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	cl := client.New(ln.Addr().String())
	defer cl.CloseIdleConnections()
	ctx := context.Background()

	// Declare the topic: the name plus the RT contract every future
	// subscriber set must be admitted under. No channel exists yet.
	if err := cl.CreateTopic(ctx, "vibration", sensor, contract.C, contract.P, contract.D); err != nil {
		return err
	}

	// Two consumers subscribe; each new node re-admits the tree over
	// the grown sink set before its feed starts.
	feeds := make([]*client.TopicFeed, 2)
	for i := range feeds {
		node := firstSink + rtether.NodeID(i)
		if feeds[i], err = cl.SubscribeTopic(ctx, "vibration", node); err != nil {
			return err
		}
		defer feeds[i].Close()
		fmt.Printf("node %d subscribed\n", node)
	}

	var wg sync.WaitGroup
	for i, f := range feeds {
		wg.Add(1)
		go func(i int, f *client.TopicFeed) {
			defer wg.Done()
			ev, err := f.Next()
			if err != nil {
				log.Printf("feed %d: %v", i, err)
				return
			}
			fmt.Printf("node %d received seq %d: %q\n", firstSink+rtether.NodeID(i), ev.Seq, ev.Payload)
		}(i, f)
	}
	rep, err := cl.Publish(ctx, "vibration", "amplitude=0.18g")
	if err != nil {
		return err
	}
	wg.Wait()
	fmt.Printf("publish seq %d fanned out to %d subscribers\n", rep.Seq, rep.Delivered)

	// Saturate consumer 13's downlink, then try to join it: the
	// re-admission fails with full diagnostics and the topic keeps
	// serving its existing subscribers.
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{
		Src: firstSink + 3, Dst: firstSink + 2, C: 19, P: 20, D: 40,
	}); err != nil {
		return err
	}
	_, err = cl.SubscribeTopic(ctx, "vibration", firstSink+2)
	var ae *rtether.AdmissionError
	if !errors.As(err, &ae) {
		return fmt.Errorf("expected the join to be rejected, got %v", err)
	}
	fmt.Printf("node %d turned away: branch %d (sink %d) infeasible at %s\n",
		firstSink+2, ae.Branch, ae.Sink, ae.Link)

	topics, err := cl.Topics(ctx)
	if err != nil {
		return err
	}
	for _, t := range topics {
		fmt.Printf("topic %q: subscribers %v, %d published — undisturbed\n",
			t.Name, t.Subscribers, t.Published)
	}
	return nil
}
