// Multiswitch explores the paper's future-work direction: real-time
// channels across a fabric of interconnected switches. Two production
// cells (each its own switch) are joined by a trunk; channels from cell A
// masters to cell B devices cross three links, and the deadline is
// partitioned per hop. The load-weighted H-ADPS scheme concentrates
// deadline budget on the shared trunk — the bottleneck — and admits
// substantially more channels than the equal split.
//
//	go run ./examples/multiswitch
package main

import (
	"fmt"
	"log"

	"repro/rtether"
)

func build(dps rtether.HDPS) *rtether.Fabric {
	f := rtether.NewFabric(dps)
	for _, sw := range []rtether.SwitchID{0, 1} {
		if err := f.AddSwitch(sw); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Trunk(0, 1); err != nil {
		log.Fatal(err)
	}
	// Cell A: masters 0..5 on switch 0. Cell B: devices 100..111 on switch 1.
	for m := 0; m < 6; m++ {
		if err := f.AttachNode(rtether.NodeID(m), 0); err != nil {
			log.Fatal(err)
		}
	}
	for d := 0; d < 12; d++ {
		if err := f.AttachNode(rtether.NodeID(100+d), 1); err != nil {
			log.Fatal(err)
		}
	}
	return f
}

func main() {
	for _, scheme := range []struct {
		name string
		dps  rtether.HDPS
	}{
		{"H-SDPS (equal split)", rtether.HSDPS()},
		{"H-ADPS (load weighted)", rtether.HADPS()},
	} {
		f := build(scheme.dps)
		hops, err := f.RouteLength(0, 100)
		if err != nil {
			log.Fatal(err)
		}

		accepted := 0
		var firstBudgets []int64
		for k := 0; k < 120; k++ {
			spec := rtether.ChannelSpec{
				Src: rtether.NodeID(k % 6),
				Dst: rtether.NodeID(100 + k%12),
				C:   3, P: 300, D: 60,
			}
			_, budgets, err := f.Establish(spec)
			if err != nil {
				continue
			}
			if accepted == 0 {
				firstBudgets = budgets
			}
			accepted++
		}
		// Actually run the admitted channels hop by hop and verify the
		// end-to-end deadline dynamically.
		run, err := f.Simulate(3000, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %d hops/channel, accepted %d of 120, first split %v\n",
			scheme.name, hops, accepted, firstBudgets)
		fmt.Printf("%-24s simulated: %d frames, %d misses, worst delay %d/60 slots\n",
			"", run.Delivered, run.Misses, run.WorstDelay)
	}
	fmt.Println("\nthe trunk carries every channel; weighting its share of each deadline")
	fmt.Println("by link load is what lets H-ADPS admit more — the paper's ADPS insight,")
	fmt.Println("generalized to routed fabrics (§18.5 future work).")
}
