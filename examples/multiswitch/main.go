// Multiswitch explores the paper's future-work direction with the
// unified API: real-time channels across a fabric of interconnected
// switches. Two production cells (each its own switch) are joined by a
// trunk; channels from cell A masters to cell B devices cross three
// links, and the deadline is partitioned per hop. The load-weighted
// H-ADPS scheme concentrates deadline budget on the shared trunk — the
// bottleneck — and admits substantially more channels than the equal
// split. When admission says no, the *AdmissionError names the saturated
// link.
//
//	go run ./examples/multiswitch
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/rtether"
)

func buildTopology() *rtether.Topology {
	top := rtether.NewTopology()
	for _, sw := range []rtether.SwitchID{0, 1} {
		if err := top.AddSwitch(sw); err != nil {
			log.Fatal(err)
		}
	}
	if err := top.Trunk(0, 1); err != nil {
		log.Fatal(err)
	}
	// Cell A: masters 0..5 on switch 0. Cell B: devices 100..111 on switch 1.
	for m := 0; m < 6; m++ {
		if err := top.Attach(rtether.NodeID(m), 0); err != nil {
			log.Fatal(err)
		}
	}
	for d := 0; d < 12; d++ {
		if err := top.Attach(rtether.NodeID(100+d), 1); err != nil {
			log.Fatal(err)
		}
	}
	return top
}

func main() {
	top := buildTopology()
	hops, err := top.RouteLength(0, 100)
	if err != nil {
		log.Fatal(err)
	}

	for _, scheme := range []struct {
		name string
		dps  rtether.HDPS
	}{
		{"H-SDPS (equal split)", rtether.HSDPS()},
		{"H-ADPS (load weighted)", rtether.HADPS()},
	} {
		// One Network type covers star and fabric: the topology makes it
		// a routed multi-switch network.
		net := rtether.New(rtether.WithTopology(top), rtether.WithHDPS(scheme.dps))

		var accepted []*rtether.Channel
		var firstBudgets []int64
		var firstReject *rtether.AdmissionError
		for k := 0; k < 120; k++ {
			spec := rtether.ChannelSpec{
				Src: rtether.NodeID(k % 6),
				Dst: rtether.NodeID(100 + k%12),
				C:   3, P: 300, D: 60,
			}
			ch, err := net.Establish(spec)
			if err != nil {
				// Typed diagnostics: which link was saturated, where on the
				// route it sits, and how overloaded it was.
				var ae *rtether.AdmissionError
				if firstReject == nil && errors.As(err, &ae) {
					if !errors.Is(err, rtether.ErrInfeasible) {
						log.Fatal("AdmissionError must unwrap to ErrInfeasible")
					}
					firstReject = ae
				}
				continue
			}
			if len(accepted) == 0 {
				firstBudgets = ch.Budgets()
			}
			accepted = append(accepted, ch)
		}

		// Actually run the admitted channels hop by hop and verify the
		// end-to-end deadline dynamically.
		for _, ch := range accepted {
			if err := ch.Start(0); err != nil {
				log.Fatal(err)
			}
		}
		net.RunFor(3000)
		rep := net.Report()
		_, worst := rep.WorstDelay()

		fmt.Printf("%-24s %d hops/channel, accepted %d of 120, first split %v\n",
			scheme.name, hops, len(accepted), firstBudgets)
		if firstReject != nil {
			fmt.Printf("%-24s first rejection at %s (hop %d, %s): U=%.2f\n",
				"", firstReject.Link, firstReject.Hop, firstReject.Dir, firstReject.Utilization)
		}
		fmt.Printf("%-24s simulated: %d frames, %d misses, worst delay %d/60 slots\n",
			"", rep.TotalDelivered(), rep.TotalMisses(), worst)
	}
	fmt.Println("\nthe trunk carries every channel; weighting its share of each deadline")
	fmt.Println("by link load is what lets H-ADPS admit more — the paper's ADPS insight,")
	fmt.Println("generalized to routed fabrics (§18.5 future work).")
}
