// Command remoteclient demonstrates the rtetherd admission service end
// to end, self-contained in one process: it boots the daemon's HTTP
// server (internal/server) over a small 2-switch fabric on a loopback
// port, then talks to it exclusively through the typed client
// (rtether/client) — concurrent coalesced establishes, a feasibility
// rejection whose full *rtether.AdmissionError survives the wire, the
// streaming watch feed, the stats endpoint showing how many kernel
// passes the coalescer saved, the Prometheus exposition on GET /metrics
// and the admission flight recorder on GET /v1/spans. See docs/server.md
// for the protocol and docs/observability.md for the metric catalog.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/client"
	"repro/rtether/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The daemon side: a 2-switch fabric, four nodes per switch.
	top := rtether.NewTopology()
	for sw := rtether.SwitchID(0); sw < 2; sw++ {
		if err := top.AddSwitch(sw); err != nil {
			return err
		}
	}
	if err := top.Trunk(0, 1); err != nil {
		return err
	}
	for n := rtether.NodeID(1); n <= 8; n++ {
		if err := top.Attach(n, rtether.SwitchID((n-1)/4)); err != nil {
			return err
		}
	}
	network := rtether.New(rtether.WithTopology(top), rtether.WithHDPS(rtether.HADPS()))
	defer network.Close()

	srv := server.New(server.Config{Network: network})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	fmt.Printf("rtetherd serving a 2-switch fabric on http://%s\n\n", ln.Addr())

	// The client side: everything below talks HTTP.
	cl := client.New(ln.Addr().String())
	defer cl.CloseIdleConnections()
	ctx := context.Background()

	// A watcher sees every admission event the clients cause.
	watcher, err := cl.Watch(ctx)
	if err != nil {
		return err
	}
	defer watcher.Close()

	// Eight "clients" establish concurrently; the daemon coalesces the
	// requests that overlap into merged per-spec admission passes.
	fmt.Println("-- eight concurrent clients establish --")
	var wg sync.WaitGroup
	ids := make([]rtether.ChannelID, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := rtether.ChannelSpec{
				Src: rtether.NodeID(1 + i%4), Dst: rtether.NodeID(5 + i%4),
				C: 2, P: 100, D: int64(30 + 4*i),
			}
			ch, err := cl.Establish(ctx, spec)
			if err != nil {
				log.Printf("client %d: %v", i, err)
				return
			}
			ids[i] = ch.ID
			fmt.Printf("client %d: RT#%d budgets=%v T_max=%d\n", i, ch.ID, ch.Budgets, ch.GuaranteedDelay)
		}(i)
	}
	wg.Wait()

	// Overload the trunk until admission says no — the rejection carries
	// the same typed diagnostics a local Establish would return.
	fmt.Println("\n-- overloading until admission rejects --")
	for {
		_, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 5, C: 9, P: 20, D: 27})
		if err == nil {
			continue
		}
		var ae *rtether.AdmissionError
		if !errors.As(err, &ae) {
			return fmt.Errorf("expected an AdmissionError, got %w", err)
		}
		fmt.Printf("rejected at %s (%s, hop %d): %s\n", ae.Link, ae.Dir, ae.Hop, ae.Reason)
		fmt.Printf("errors.Is(err, rtether.ErrInfeasible) = %v\n", errors.Is(err, rtether.ErrInfeasible))
		break
	}

	// Release one channel and drain the watch feed up to that event.
	if err := cl.Release(ctx, ids[0]); err != nil {
		return err
	}
	fmt.Println("\n-- the watch feed saw it all --")
	for {
		ev, err := watcher.Next()
		if err != nil {
			return err
		}
		switch ev.Type {
		case wire.EventAdmit:
			fmt.Printf("seq %2d admit   RT#%d %d→%d budgets=%v\n", ev.Seq, ev.ID, ev.Spec.Src, ev.Spec.Dst, ev.Budgets)
		case wire.EventReject:
			fmt.Printf("seq %2d reject  %d→%d: %s\n", ev.Seq, ev.Spec.Src, ev.Spec.Dst, ev.Error.Admission.Reason)
		case wire.EventRelease:
			fmt.Printf("seq %2d release RT#%d\n", ev.Seq, ev.ID)
		}
		if ev.Type == wire.EventRelease {
			// Everything before the release has been printed.
			break
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- stats --\n")
	fmt.Printf("accepted %d, rejected(demand) %d, released %d\n",
		st.Admission.Accepted, st.Admission.RejectedDemand, st.Admission.Released)
	fmt.Printf("coalescer: %d establishes in %d flights (max merged %d); %d repartition passes total\n",
		st.Server.Establishes, st.Server.Flights, st.Server.MaxMerged, st.Admission.Repartitions)

	// The same numbers — and more — are on GET /metrics in Prometheus
	// text form; MetricsProm parses the exposition into a flat map keyed
	// by series name (labels included). See docs/observability.md.
	mp, err := cl.MetricsProm(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- GET /metrics (scraped) --\n")
	for _, series := range []string{
		"rtether_admit_total",
		"rtether_reject_total",
		"rtether_flights_total",
		"rtether_verify_cache_hits_total",
		"rtether_mean_link_utilization",
		`rtether_requests_total{endpoint="/v1/establish"}`,
	} {
		fmt.Printf("%s %g\n", series, mp[series])
	}

	// And the flight recorder shows where each coalesced admission pass
	// spent its time.
	spans, err := cl.Spans(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- GET /v1/spans (flight recorder, %d flights) --\n", len(spans.Spans))
	for _, sp := range spans.Spans {
		fmt.Printf("flight %d: merged=%d wait=%dns admit=%dns verify=%dns accepted=%d rejected=%d\n",
			sp.Flight, sp.Merged, sp.WaitNs, sp.AdmitNs, sp.VerifyNs, sp.Accepted, sp.Rejected)
	}
	return nil
}
