// Reconfiguration demonstrates the dynamic side of the RT layer: the
// network adds and removes RT channels at run time ("The network has
// capability to add RT channels dynamically", §18.2.2 — teardown is this
// library's wire-protocol extension). A production line switches from a
// coarse monitoring configuration to a fine-grained control
// configuration without ever violating a guarantee, and the flight
// recorder shows the admission decisions as they happen.
//
//	go run ./examples/reconfiguration
package main

import (
	"fmt"
	"log"

	"repro/rtether"
)

func main() {
	net := rtether.New(rtether.WithADPS())
	tracer := rtether.NewRingTracer(4096)
	net.SetTracer(tracer)

	const controller = rtether.NodeID(1)
	sensors := []rtether.NodeID{10, 11, 12, 13}
	net.MustAddNode(controller)
	for _, s := range sensors {
		net.MustAddNode(s)
	}

	// Phase 1 — monitoring: slow, loose channels to every sensor.
	fmt.Println("phase 1: monitoring (C=2, P=200, d=100)")
	var phase1 []*rtether.Channel
	for _, s := range sensors {
		ch, err := net.Establish(rtether.ChannelSpec{Src: controller, Dst: s, C: 2, P: 200, D: 100})
		if err != nil {
			log.Fatal(err)
		}
		if err := ch.Start(0); err != nil {
			log.Fatal(err)
		}
		phase1 = append(phase1, ch)
	}
	net.RunFor(2000)
	rep := net.Report()
	fmt.Printf("  %d channels, %d frames delivered, %d misses\n\n",
		len(phase1), rep.TotalDelivered(), rep.TotalMisses())

	// Phase 2 — tight control on the first two sensors: tear the old
	// channels down over the wire and establish faster, tighter ones.
	fmt.Println("phase 2: reconfigure sensors 10, 11 to control mode (C=2, P=50, d=20)")
	for _, ch := range phase1[:2] {
		if err := ch.Teardown(); err != nil {
			log.Fatal(err)
		}
	}
	net.RunFor(10) // let the teardown frames reach the switch
	for _, s := range sensors[:2] {
		ch, err := net.Establish(rtether.ChannelSpec{Src: controller, Dst: s, C: 2, P: 50, D: 20})
		if err != nil {
			log.Fatalf("reconfiguration rejected: %v", err)
		}
		if err := ch.Start(0); err != nil {
			log.Fatal(err)
		}
	}
	net.RunFor(2000)
	rep = net.Report()
	_, worst := rep.WorstDelay()
	fmt.Printf("  now %d active channels, total %d frames, %d misses, worst delay %d slots\n\n",
		len(net.Channels()), rep.TotalDelivered(), rep.TotalMisses(), worst)

	// The flight recorder saw every admission decision.
	admits, rejects := 0, 0
	for _, e := range tracer.Events() {
		switch e.Kind {
		case rtether.EvAdmitted:
			admits++
		case rtether.EvRejected:
			rejects++
		}
	}
	fmt.Printf("flight recorder: %d admissions, %d rejections, %d events total\n",
		admits, rejects, tracer.Total())
	if rep.TotalMisses() == 0 {
		fmt.Println("no guarantee violated across the reconfiguration ✓")
	}
}
