// Quickstart: establish one RT channel between two nodes, run periodic
// traffic, and check the delivery guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/rtether"
)

func main() {
	// A star network: two end-nodes behind one full-duplex switch, using
	// the asymmetric deadline partitioning scheme (ADPS).
	net := rtether.New(rtether.WithADPS())
	net.MustAddNode(1) // a sensor controller
	net.MustAddNode(2) // an actuator

	// Request an RT channel: 3 maximal frames every 100 slots, delivered
	// within 40 slots, node 1 → node 2. The request/response handshake
	// travels over the simulated wire and consumes virtual time.
	spec := rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	id, err := net.Establish(spec)
	if err != nil {
		log.Fatalf("admission control rejected the channel: %v", err)
	}
	_, part, _ := net.Channel(id)
	fmt.Printf("channel RT#%d established: deadline split %d slots uplink / %d slots downlink\n",
		id, part.Up, part.Down)
	fmt.Printf("guaranteed delivery within %d slots (%.1f µs at 100 Mbit/s)\n",
		net.GuaranteedDelay(spec),
		float64(net.GuaranteedDelay(spec)*rtether.SlotNanos(100))/1000)

	// Generate periodic traffic for 5000 slots and measure.
	if err := net.StartTraffic(id, 0); err != nil {
		log.Fatal(err)
	}
	net.RunFor(5000)

	rep := net.Report()
	m := rep.Channels[id]
	fmt.Printf("delivered %d frames: delay min=%d mean=%.1f max=%d slots, %d deadline misses\n",
		m.Delivered, m.Delays.Min(), m.Delays.Mean(), m.Delays.Max(), m.Misses)
	if m.Misses == 0 && m.Delays.Max() <= net.GuaranteedDelay(spec) {
		fmt.Println("guarantee held ✓")
	} else {
		fmt.Println("guarantee VIOLATED ✗")
	}
}
