// Quickstart: establish one RT channel between two nodes, run periodic
// traffic, and check the delivery guarantee — then push the network past
// its capacity and read the typed admission diagnostics.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/rtether"
)

func main() {
	// A star network: two end-nodes behind one full-duplex switch, using
	// the asymmetric deadline partitioning scheme (ADPS).
	net := rtether.New(rtether.WithADPS())
	net.MustAddNode(1) // a sensor controller
	net.MustAddNode(2) // an actuator

	// Request an RT channel: 3 maximal frames every 100 slots, delivered
	// within 40 slots, node 1 → node 2. The request/response handshake
	// travels over the simulated wire and consumes virtual time. The
	// returned handle carries the channel's whole lifecycle.
	spec := rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	ch, err := net.Establish(spec)
	if err != nil {
		log.Fatalf("admission control rejected the channel: %v", err)
	}
	b := ch.Budgets()
	fmt.Printf("channel RT#%d established: deadline split %d slots uplink / %d slots downlink\n",
		ch.ID(), b[0], b[1])
	fmt.Printf("guaranteed delivery within %d slots (%.1f µs at 100 Mbit/s)\n",
		ch.GuaranteedDelay(),
		float64(ch.GuaranteedDelay()*rtether.SlotNanos(100))/1000)

	// Generate periodic traffic for 5000 slots and measure.
	if err := ch.Start(0); err != nil {
		log.Fatal(err)
	}
	net.RunFor(5000)

	m := ch.Metrics()
	fmt.Printf("delivered %d frames: delay min=%d mean=%.1f max=%d slots, %d deadline misses\n",
		m.Delivered, m.Delays.Min(), m.Delays.Mean(), m.Delays.Max(), m.Misses)
	if m.Misses == 0 && m.Delays.Max() <= ch.GuaranteedDelay() {
		fmt.Println("guarantee held ✓")
	} else {
		fmt.Println("guarantee VIOLATED ✗")
	}

	// Now ask for more than the uplink can carry. The rejection is a
	// typed *AdmissionError naming the saturated link and how overloaded
	// it was — not just a bare "no".
	_, err = net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 45, P: 100, D: 90})
	var ae *rtether.AdmissionError
	if errors.As(err, &ae) {
		fmt.Printf("over-subscription rejected at %s (hop %d, %s): U=%.2f slack=%d\n",
			ae.Link, ae.Hop, ae.Dir, ae.Utilization, ae.Slack)
		fmt.Printf("errors.Is(err, ErrInfeasible) = %v\n", errors.Is(err, rtether.ErrInfeasible))
	} else if err != nil {
		log.Fatalf("expected an AdmissionError, got: %v", err)
	} else {
		log.Fatal("over-subscription unexpectedly accepted")
	}
}
