// Masterslave reproduces the paper's headline scenario in miniature: an
// industrial cell with master controllers polling many slave devices over
// one switch. It requests channels until the network refuses, under both
// SDPS and ADPS, showing why the asymmetric scheme accepts almost twice
// as many channels — then actually runs the accepted set and verifies
// every deadline.
//
//	go run ./examples/masterslave
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/rtether"
)

const (
	masters   = 4
	slaves    = 20
	requested = 80
)

func build(dps rtether.DPS) (*rtether.Network, []*rtether.Channel, *rtether.AdmissionError) {
	net := rtether.New(rtether.WithDPS(dps))
	for m := 0; m < masters; m++ {
		net.MustAddNode(rtether.NodeID(m))
	}
	for s := 0; s < slaves; s++ {
		net.MustAddNode(rtether.NodeID(100 + s))
	}
	var accepted []*rtether.Channel
	var firstReject *rtether.AdmissionError
	for k := 0; k < requested; k++ {
		spec := rtether.ChannelSpec{
			Src: rtether.NodeID(k % masters),
			Dst: rtether.NodeID(100 + k%slaves),
			C:   3, P: 100, D: 40,
		}
		ch, err := net.Establish(spec)
		if err != nil {
			var ae *rtether.AdmissionError
			if firstReject == nil && errors.As(err, &ae) {
				firstReject = ae
			}
			continue
		}
		accepted = append(accepted, ch)
	}
	return net, accepted, firstReject
}

func main() {
	for _, scheme := range []struct {
		name string
		dps  rtether.DPS
	}{
		{"SDPS (symmetric)", rtether.SDPS()},
		{"ADPS (asymmetric)", rtether.ADPS()},
	} {
		net, accepted, firstReject := build(scheme.dps)
		fmt.Printf("%-18s accepted %d of %d requested channels\n",
			scheme.name, len(accepted), requested)

		// The loads explain the difference: master uplinks carry ~5x the
		// channels of slave downlinks, and ADPS gives them deadline budget
		// in proportion.
		b := accepted[0].Budgets()
		fmt.Printf("%-18s first channel split: up=%d down=%d (LL up=%d, LL down=%d)\n",
			"", b[0], b[1], net.LinkLoadUp(0), net.LinkLoadDown(100))
		if firstReject != nil {
			fmt.Printf("%-18s first rejection at %s: %s\n",
				"", firstReject.Link, firstReject.Reason)
		}

		// Drive every accepted channel simultaneously (synchronous worst
		// case) and verify the guarantee end to end.
		for _, ch := range accepted {
			if err := ch.Start(0); err != nil {
				log.Fatal(err)
			}
		}
		net.RunFor(3000)
		rep := net.Report()
		_, worst := rep.WorstDelay()
		fmt.Printf("%-18s simulated: %d frames delivered, %d misses, worst delay %d/40 slots\n\n",
			"", rep.TotalDelivered(), rep.TotalMisses(), worst)
	}
}
