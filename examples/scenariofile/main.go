// Scenariofile shows the declarative side of the library: a complete
// dynamic multi-hop experiment — three switches, deferred establishment,
// mid-run reconfiguration and a churn generator — loaded from an
// embedded JSON document instead of written as code. The scenario
// subsystem turns every workload idea into a data file: the same
// document replays byte-identically under cmd/rtsim -scenario, and
// cmd/rtadmit -scenario answers what admission alone would decide.
// docs/scenario-format.md is the schema reference.
//
//	go run ./examples/scenariofile
package main

import (
	_ "embed"
	"fmt"
	"log"
	"strings"

	"repro/internal/scenario"
)

//go:embed plant.json
var plantJSON string

func main() {
	scen, err := scenario.Load(strings.NewReader(plantJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %d switches, %d channels, %d events, %d churn generators\n",
		scen.Name, len(scen.Topology.Switches), len(scen.Channels), len(scen.Events), len(scen.Churn))

	// First ask admission control alone: which of the timeline's
	// decisions would go through? No traffic, no virtual time.
	replay, err := scen.Replay(0)
	if err != nil {
		log.Fatal(err)
	}
	accepted, rejected, skipped := replay.EventCounts()
	fmt.Printf("\nadmission replay: %d events — %d applied, %d rejected, %d skipped\n",
		len(replay.Events), accepted, rejected, skipped)

	// Then run the whole experiment: static load, background, timeline
	// playback and the hop-by-hop RT traffic simulation.
	res, err := scen.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull run: %d static channels, %d timeline events\n",
		len(res.Accepted), len(res.Events))
	for _, ev := range res.Events {
		fmt.Println("  ", ev)
	}
	rep := res.Report
	_, worst := rep.WorstDelay()
	fmt.Printf("\ndelivered %d RT frames, %d deadline misses, worst delay %d slots\n",
		rep.TotalDelivered(), rep.TotalMisses(), worst)
	if rep.TotalMisses() == 0 {
		fmt.Println("every admitted frame met its guarantee")
	}
}
