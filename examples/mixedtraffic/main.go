// Mixedtraffic demonstrates the paper's coexistence claim: hard real-time
// channels and ordinary best-effort (TCP-like) traffic share the same
// unmodified Ethernet, and the RT layer's strict-priority EDF queues keep
// the guarantees intact no matter how hard the best-effort side pushes.
//
// A control loop (RT channel, 2 frames / 50 slots / deadline 20) runs
// while a bulk file transfer floods the same links. The RT delays stay
// flat; the bulk transfer gets exactly the leftover bandwidth.
//
//	go run ./examples/mixedtraffic
package main

import (
	"fmt"
	"log"

	"repro/rtether"
)

func main() {
	net := rtether.New(
		rtether.WithADPS(),
		rtether.WithNonRTQueueCap(128), // bounded FCFS queues, like real switch buffers
	)
	const (
		plc    = rtether.NodeID(1) // programmable logic controller
		drive  = rtether.NodeID(2) // servo drive, gets the control loop
		backup = rtether.NodeID(3) // backup server, receives the bulk flow
	)
	net.MustAddNode(plc)
	net.MustAddNode(drive)
	net.MustAddNode(backup)

	loop, err := net.Establish(rtether.ChannelSpec{Src: plc, Dst: drive, C: 2, P: 50, D: 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := loop.Start(0); err != nil {
		log.Fatal(err)
	}

	// Phase 1: control loop alone.
	net.RunFor(2000)
	quiet := loop.Metrics()
	fmt.Printf("control loop alone:      delay mean=%.2f max=%d slots, misses=%d\n",
		quiet.Delays.Mean(), quiet.Delays.Max(), quiet.Misses)

	// Phase 2: the PLC also pushes a saturating bulk transfer to the
	// backup server — one frame attempted every slot, far beyond what the
	// shared uplink can carry alongside the control loop.
	start := net.Now()
	sent, queued := 0, 0
	for t := int64(0); t < 4000; t++ {
		// Attempt one bulk frame per slot by running one slot at a time.
		if net.SendBestEffort(plc, backup, []byte("chunk")) {
			queued++
		}
		sent++
		net.RunUntil(start + t + 1)
	}
	rep := net.Report()
	busyPhase := loop.Metrics()
	fmt.Printf("with saturating bulk:    delay mean=%.2f max=%d slots, misses=%d\n",
		busyPhase.Delays.Mean(), busyPhase.Delays.Max(), busyPhase.Misses)
	fmt.Printf("bulk transfer:           attempted=%d queued=%d delivered=%d dropped=%d\n",
		sent, queued, rep.NonRTDelivered, rep.NonRTDrops)

	if busyPhase.Misses == 0 && busyPhase.Delays.Max() <= loop.GuaranteedDelay() {
		fmt.Println("RT guarantee unaffected by best-effort load ✓")
	} else {
		fmt.Println("RT guarantee VIOLATED ✗")
	}
}
