// Failover walks the survivability ladder on a 4-switch ring. Channels
// cross the ring on shortest paths; when a trunk dies, every channel
// routed over it is re-routed and batch re-admitted under its original
// ID — in-flight frames drop as misses, but the reservation either
// survives on a detour or goes through the policy ladder configured
// with WithFailurePolicy: reject (the default) loses what no longer
// fits, degrade retries once at twice the deadline, preempt evicts
// strictly lower-priority channels to make room. Repair is a pure
// flip: the trunk becomes routable again, nobody is moved back.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/rtether"
)

// ring builds the 4-switch ring 0-1-2-3-0 with nodes 1..8, two per
// switch (node n homes on switch (n-1)/2).
func ring() *rtether.Topology {
	top := rtether.NewTopology()
	for s := rtether.SwitchID(0); s < 4; s++ {
		if err := top.AddSwitch(s); err != nil {
			log.Fatal(err)
		}
	}
	for _, t := range [][2]rtether.SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := top.Trunk(t[0], t[1]); err != nil {
			log.Fatal(err)
		}
	}
	for n := rtether.NodeID(1); n <= 8; n++ {
		if err := top.Attach(n, rtether.SwitchID((n-1)/2)); err != nil {
			log.Fatal(err)
		}
	}
	return top
}

func newNet(opts ...rtether.Option) *rtether.Network {
	return rtether.New(append([]rtether.Option{
		rtether.WithTopology(ring()), rtether.WithHDPS(rtether.HADPS()),
	}, opts...)...)
}

func must(ch *rtether.Channel, err error) *rtether.Channel {
	if err != nil {
		log.Fatal(err)
	}
	return ch
}

func printReport(rep *rtether.FailoverReport) {
	fmt.Printf("  %d affected: %d rerouted, %d degraded, %d preempted, %d lost\n",
		rep.Affected, rep.Count(rtether.Rerouted), rep.Count(rtether.Degraded),
		rep.Count(rtether.Preempted), rep.Count(rtether.Lost))
	for _, oc := range rep.Outcomes {
		switch oc.Outcome {
		case rtether.Degraded:
			fmt.Printf("    RT#%d %-9s deadline relaxed to %d\n", oc.ID, oc.Outcome, oc.NewD)
		case rtether.Lost:
			fmt.Printf("    RT#%d %-9s %v\n", oc.ID, oc.Outcome, oc.Err)
		default:
			fmt.Printf("    RT#%d %s\n", oc.ID, oc.Outcome)
		}
	}
}

func main() {
	// --- Reroute: a channel with deadline slack survives on the detour.
	fmt.Println("reject policy (default) — trunk 0-1 fails under two channels:")
	net := newNet()
	agile := must(net.Establish(rtether.ChannelSpec{Src: 1, Dst: 3, C: 2, P: 100, D: 40}))
	// The tight channel's deadline only covers the 3-hop shortest path
	// (each hop needs a budget of at least C); the 5-hop detour around
	// the ring cannot hold it.
	tight := must(net.Establish(rtether.ChannelSpec{Src: 1, Dst: 3, C: 10, P: 100, D: 34}))
	fmt.Printf("  before: agile budgets %v, tight budgets %v\n", agile.Budgets(), tight.Budgets())

	rep, err := net.SetLinkUp(0, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	fmt.Printf("  after: agile budgets %v (same ID %d, 5 hops now)\n\n", agile.Budgets(), agile.ID())

	// Repair: the trunk is routable again, survivors stay put.
	rep, err = net.SetLinkUp(0, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair — empty report (affected=%d); agile still on %d hops\n\n",
		rep.Affected, len(agile.Budgets()))
	net.Close()

	// --- Degrade: the same tight channel survives at twice the deadline.
	fmt.Println("degrade policy — the same tight channel, same failure:")
	net = newNet(rtether.WithFailurePolicy(rtether.FailDegrade))
	tight = must(net.Establish(rtether.ChannelSpec{Src: 1, Dst: 3, C: 10, P: 100, D: 34}))
	rep, err = net.SetLinkUp(0, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	fmt.Printf("  committed spec now guarantees D=%d\n\n", tight.Spec().D)
	net.Close()

	// --- Preempt: priority decides who keeps the saturated detour edge.
	fmt.Println("preempt policy — the detour is full, priority breaks the tie:")
	net = newNet(rtether.WithFailurePolicy(rtether.FailPreempt))
	// The victim loads the detour edge sw0→sw3 to 90% on its own.
	victim := must(net.Establish(rtether.ChannelSpec{Src: 2, Dst: 8, C: 9, P: 10, D: 40}))
	vip := must(net.Establish(rtether.ChannelSpec{Src: 1, Dst: 3, C: 2, P: 10, D: 40, Priority: 5}))
	rep, err = net.SetLinkUp(0, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	fmt.Printf("  vip rerouted to %d hops; victim handle closed: Release() = %v\n\n",
		len(vip.Budgets()), victim.Release())
	net.Close()

	// --- Switch failure: everything homed on the switch goes with it.
	fmt.Println("switch 1 fails — transit channels detour, its nodes are lost:")
	net = newNet()
	transit := must(net.Establish(rtether.ChannelSpec{Src: 1, Dst: 5, C: 2, P: 100, D: 40}))
	must(net.Establish(rtether.ChannelSpec{Src: 1, Dst: 4, C: 2, P: 100, D: 40})) // sunk at switch 1
	rep, err = net.SetSwitchUp(1, false)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	st := net.AdmissionStats()
	fmt.Printf("  transit now on %d hops; stats: %d rerouted, %d lost total this network\n",
		len(transit.Budgets()), st.Rerouted, st.Lost)
	net.Close()
}
