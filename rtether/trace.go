package rtether

import "repro/internal/netsim"

// Tracing: the network can stream typed events (frame releases,
// deliveries, deadline misses, shaper holds, admission decisions,
// best-effort drops) to a Tracer — the flight-recorder pattern for
// debugging timing behaviour.
type (
	// Tracer receives every trace event.
	Tracer = netsim.Tracer
	// TraceEvent is one timestamped observation.
	TraceEvent = netsim.TraceEvent
	// EventKind labels a TraceEvent.
	EventKind = netsim.EventKind
	// RingTracer retains the most recent events.
	RingTracer = netsim.RingTracer
	// FilterTracer forwards only selected kinds.
	FilterTracer = netsim.FilterTracer
)

// Trace event kinds.
const (
	EvRelease    = netsim.EvRelease
	EvShaperHold = netsim.EvShaperHold
	EvDeliver    = netsim.EvDeliver
	EvMiss       = netsim.EvMiss
	EvAdmitted   = netsim.EvAdmitted
	EvRejected   = netsim.EvRejected
	EvNonRTDrop  = netsim.EvNonRTDrop
)

// NewRingTracer returns a flight recorder keeping the last capacity
// events (a default capacity when <= 0).
func NewRingTracer(capacity int) *RingTracer { return netsim.NewRingTracer(capacity) }

// SetTracer installs a tracer on the network; nil disables tracing. It
// reports whether the network streams trace events — both backends do
// (star and multi-switch fabric emit the same event-kind vocabulary; a
// parity test pins it), so the result is true on every current
// topology. The tracer is invoked on the goroutine driving the
// simulation, under the network lock.
func (n *Network) SetTracer(t Tracer) bool {
	defer n.lk.unlock(n.lk.lock())
	return n.be.setTracer(t)
}
