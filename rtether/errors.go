package rtether

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/topo"
)

// LinkDir classifies the direction of the pseudo-processor (one directed
// half of a full-duplex physical link) named in an AdmissionError.
type LinkDir uint8

const (
	// DirUp is an end-node → switch link.
	DirUp LinkDir = iota
	// DirDown is a switch → end-node link.
	DirDown
	// DirTrunk is a switch → switch link (multi-switch topologies only).
	DirTrunk
)

// String implements fmt.Stringer.
func (d LinkDir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	case DirTrunk:
		return "trunk"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// AdmissionError reports why admission control rejected a channel: which
// directed link failed the per-link EDF feasibility test (§18.3.2), where
// on the requested route it sits, and how overloaded it was. It wraps
// ErrInfeasible, so errors.Is(err, rtether.ErrInfeasible) keeps working
// for callers that only care about accept/reject.
type AdmissionError struct {
	// Spec is the rejected request.
	Spec ChannelSpec
	// Link names the rejecting directed link, e.g. "link(1,up)" on a star
	// or "sw0→sw1" on a fabric.
	Link string
	// Node is the end-node of the rejecting link for DirUp/DirDown links;
	// zero for trunks.
	Node NodeID
	// Dir is the rejecting link's direction.
	Dir LinkDir
	// Hop is the index of the rejecting link on the requested channel's
	// route (0 = source uplink; on a star, 1 = destination downlink). It is
	// -1 when the failure surfaced on a link the new channel does not
	// traverse — repartitioning an existing channel made that link
	// infeasible.
	Hop int
	// Utilization is the total utilization of the rejecting link's task
	// set, including the tentative channel.
	Utilization float64
	// Slack is t - h(t) at the violated demand checkpoint (negative: the
	// link was asked for more service than time available). Zero when the
	// first constraint (utilization > 1) failed instead.
	Slack int64
	// Branch is the index into a rejected multicast request's sink list of
	// the branch whose delivery path traverses the rejecting link — the
	// first such sink when the link is shared by several branches (the
	// source uplink or a shared trunk). It is -1 for unicast rejections and
	// when the failing link lies outside the requested tree (a
	// repartitioned channel's link went infeasible).
	Branch int
	// Sink is the sink node of the failing branch; meaningful only when
	// Branch >= 0.
	Sink NodeID
	// Reason is the feasibility verdict in the analysis' own words, e.g.
	// "infeasible(demand) at t=40 (h=45), U=0.9750".
	Reason string
}

// Error implements error.
func (e *AdmissionError) Error() string {
	where := e.Link
	if e.Hop >= 0 {
		where = fmt.Sprintf("%s (hop %d, %s)", e.Link, e.Hop, e.Dir)
	} else {
		where = fmt.Sprintf("%s (%s, repartitioned channel)", e.Link, e.Dir)
	}
	if e.Branch >= 0 {
		where = fmt.Sprintf("%s, branch %d to node %d", where, e.Branch, e.Sink)
	}
	return fmt.Sprintf("rtether: %v rejected at %s: %s", e.Spec, where, e.Reason)
}

// Unwrap lets errors.Is match ErrInfeasible.
func (e *AdmissionError) Unwrap() error { return ErrInfeasible }

// slackOf extracts the demand slack from a feasibility result.
func slackOf(res edf.Result) int64 {
	if res.Verdict == edf.InfeasibleDemand {
		return res.ViolationAt - res.DemandAt
	}
	return 0
}

// starAdmissionError converts a star-network rejection into the typed
// public diagnostic. Non-rejection errors pass through unchanged.
func starAdmissionError(spec ChannelSpec, err error) error {
	rej, ok := err.(*core.RejectionError)
	if !ok {
		return err
	}
	ae := &AdmissionError{
		Spec:        spec,
		Link:        rej.Link.String(),
		Node:        rej.Link.Node,
		Utilization: rej.Result.Utilization,
		Slack:       slackOf(rej.Result),
		Reason:      rej.Result.String(),
		Hop:         -1,
		Branch:      -1,
	}
	switch rej.Link.Dir {
	case core.Up:
		ae.Dir = DirUp
		if rej.Link.Node == spec.Src {
			ae.Hop = 0
		}
	case core.Down:
		ae.Dir = DirDown
		if rej.Link.Node == spec.Dst {
			ae.Hop = 1
		}
	}
	return ae
}

// fabricAdmissionError converts a fabric rejection into the typed public
// diagnostic. route is the requested channel's route (nil when routing
// itself failed); non-rejection errors pass through unchanged.
func fabricAdmissionError(spec ChannelSpec, err error, route []topo.Edge) error {
	rej, ok := err.(*topo.RejectionError)
	if !ok {
		return err
	}
	ae := &AdmissionError{
		Spec:        spec,
		Link:        rej.Edge.String(),
		Utilization: rej.Result.Utilization,
		Slack:       slackOf(rej.Result),
		Reason:      rej.Result.String(),
		Hop:         -1,
		Branch:      -1,
	}
	switch {
	case !rej.Edge.From.Switch:
		ae.Dir = DirUp
		ae.Node = NodeID(rej.Edge.From.ID)
	case !rej.Edge.To.Switch:
		ae.Dir = DirDown
		ae.Node = NodeID(rej.Edge.To.ID)
	default:
		ae.Dir = DirTrunk
	}
	for i, e := range route {
		if e == rej.Edge {
			ae.Hop = i
			break
		}
	}
	return ae
}

// starMulticastAdmissionError converts a star-network rejection of a
// multicast request into the typed public diagnostic, attributing the
// failure to the tree branch that traverses the rejecting link: the
// source uplink belongs to every branch (the first sink stands in), a
// sink downlink to exactly one. Non-rejection errors pass through.
func starMulticastAdmissionError(spec MulticastSpec, err error) error {
	rej, ok := err.(*core.RejectionError)
	if !ok {
		return err
	}
	ae := starAdmissionError(spec.ChannelSpec(), err).(*AdmissionError)
	ae.Hop = -1
	switch rej.Link.Dir {
	case core.Up:
		if rej.Link.Node == spec.Src {
			ae.Hop = 0
			ae.Branch = 0
			ae.Sink = spec.Sinks[0]
		}
	case core.Down:
		for k, sink := range spec.Sinks {
			if rej.Link.Node == sink {
				ae.Hop = 1
				ae.Branch = k
				ae.Sink = sink
				break
			}
		}
	}
	return ae
}

// fabricMulticastAdmissionError converts a fabric rejection of a
// multicast request into the typed public diagnostic. tree, parents and
// leaves describe the requested distribution tree (nil when routing
// itself failed): Hop becomes the rejecting edge's tree-edge index and
// Branch/Sink name the first sink whose root→leaf path traverses it.
func fabricMulticastAdmissionError(spec MulticastSpec, err error, tree []topo.Edge, parents, leaves []int, sinks []NodeID) error {
	rej, ok := err.(*topo.RejectionError)
	if !ok {
		return err
	}
	ae := fabricAdmissionError(spec.ChannelSpec(), err, nil).(*AdmissionError)
	hop := -1
	for i, e := range tree {
		if e == rej.Edge {
			hop = i
			break
		}
	}
	ae.Hop = hop
	if hop < 0 {
		return ae
	}
	for k, leaf := range leaves {
		for e := leaf; e >= 0; e = parents[e] {
			if e == hop {
				ae.Branch = k
				ae.Sink = sinks[k]
				return ae
			}
		}
	}
	return ae
}
