package rtether

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/topo"
)

// FailurePolicy selects the rung of the survivability ladder applied to
// a channel that cannot be re-admitted on the residual network after a
// trunk or switch failure (Network.SetLinkUp, Network.SetSwitchUp).
// Configure it with WithFailurePolicy; the default is FailReject.
type FailurePolicy uint8

const (
	// FailReject drops a channel the residual network cannot honor: its
	// reservation is gone and its handle closes. The default — the
	// network never over-promises and never touches other channels.
	FailReject FailurePolicy = iota
	// FailDegrade retries the re-admission once with a relaxed deadline
	// (twice the contracted D). A degraded channel keeps its ID and
	// handle; its committed spec — and so its delivery guarantee —
	// reports the relaxed deadline from then on. A channel that does
	// not fit even degraded is lost.
	FailDegrade
	// FailPreempt evicts strictly-lower-priority channels from the
	// saturated link — lowest ChannelSpec.Priority first, ties broken
	// by lowest ID — until the affected channel fits. Evicted victims
	// are lost; a channel with no viable victims is itself lost.
	// Priority ties never preempt: equal-priority channels are safe
	// from each other.
	FailPreempt
)

// String implements fmt.Stringer.
func (p FailurePolicy) String() string {
	switch p {
	case FailReject:
		return "reject"
	case FailDegrade:
		return "degrade"
	case FailPreempt:
		return "preempt"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// FailoverOutcome classifies one channel's fate in a recovery pass.
type FailoverOutcome uint8

const (
	// Rerouted: re-admitted on a surviving route under the original
	// {P, C, D} contract. The handle stays valid.
	Rerouted FailoverOutcome = iota
	// Degraded: re-admitted on a surviving route with a relaxed
	// deadline (FailDegrade). The handle stays valid and reports the
	// new deadline.
	Degraded
	// Preempted: evicted under FailPreempt to make room for a
	// higher-priority channel. The handle is closed.
	Preempted
	// Lost: the residual network could not keep the channel under the
	// active policy. The reservation is released and the handle closed;
	// measurements survive, as for any released channel.
	Lost
)

// String implements fmt.Stringer.
func (o FailoverOutcome) String() string {
	switch o {
	case Rerouted:
		return "rerouted"
	case Degraded:
		return "degraded"
	case Preempted:
		return "preempted"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// ChannelOutcome records what happened to one channel during failure
// recovery.
type ChannelOutcome struct {
	// ID is the channel's network-unique identifier. Survivors keep it:
	// re-routing and degradation are ID-stable, so handles and
	// Report.Channels correlations remain valid across failures.
	ID ChannelID
	// Spec is the committed spec after recovery — the original contract
	// for Rerouted channels, the relaxed-deadline contract for Degraded
	// ones, the last committed contract for Preempted and Lost ones.
	Spec ChannelSpec
	// Outcome is the channel's fate.
	Outcome FailoverOutcome
	// NewD is the relaxed deadline committed for a Degraded channel;
	// zero otherwise.
	NewD int64
	// Err is the admission error that sealed a Lost channel's fate
	// (an *AdmissionError for feasibility losses, a routing error when
	// the residual network has no path); nil otherwise.
	Err error
}

// FailoverReport summarizes one failure-recovery pass: which channels
// the failed element carried and what became of each, plus any
// lower-priority victims preempted along the way. Repairs return an
// empty report — channels are not forcibly moved back onto repaired
// elements; they simply become routable again for future admissions.
type FailoverReport struct {
	// Affected is the number of established channels whose route
	// crossed the failed element.
	Affected int
	// Outcomes lists every affected channel in establishment order,
	// followed by preemption victims in eviction order.
	Outcomes []ChannelOutcome
}

// Count returns how many outcomes in the report have the given fate.
func (r *FailoverReport) Count(o FailoverOutcome) int {
	n := 0
	for _, oc := range r.Outcomes {
		if oc.Outcome == o {
			n++
		}
	}
	return n
}

// ErrNoFabric rejects trunk/switch mutations on star networks.
var ErrNoFabric = errors.New("rtether: trunk and switch failures require a multi-switch topology (see SetNodeLinkUp for star link failures)")

// ErrNoNodeLinks rejects node-link mutations on fabrics.
var ErrNoNodeLinks = errors.New("rtether: node-link failures are modeled on star networks; fail a trunk or switch on a fabric (SetLinkUp, SetSwitchUp)")

// SetLinkUp fails (up=false) or repairs (up=true) the trunk between
// switches a and b on a multi-switch network. Failing a trunk drops
// every frame in flight on it (counted as misses), then re-routes and
// re-admits every channel whose route crossed it as one batch
// admission decision with per-channel verdicts; channels the residual
// network cannot honor go through the ladder configured with
// WithFailurePolicy. The report lists each affected channel's fate.
//
// Repairing a trunk makes it routable again for future admissions and
// returns an empty report; established channels stay on their current
// routes. Unknown trunks return an error; failing an already-down (or
// repairing an already-up) trunk is a no-op with an empty report.
func (n *Network) SetLinkUp(a, b SwitchID, up bool) (*FailoverReport, error) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return nil, ErrClosed
	}
	rep, err := n.be.setLinkUp(a, b, up)
	if err != nil {
		return nil, err
	}
	n.applyFailover(rep)
	return rep, nil
}

// SetSwitchUp fails (up=false) or repairs (up=true) a whole switch on a
// multi-switch network: every trunk touching it and every node homed on
// it goes dark at once. Recovery follows the same batch re-admission
// and policy ladder as SetLinkUp — note that channels sourced or sunk
// at a dead switch have no residual route and are lost regardless of
// policy. Repair returns an empty report, as for SetLinkUp.
func (n *Network) SetSwitchUp(s SwitchID, up bool) (*FailoverReport, error) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return nil, ErrClosed
	}
	rep, err := n.be.setSwitchUp(s, up)
	if err != nil {
		return nil, err
	}
	n.applyFailover(rep)
	return rep, nil
}

// SetNodeLinkUp fails or repairs the full-duplex link between an
// end-node and its switch on a star network. While down, frames
// crossing the link in either direction are dropped and RT data losses
// count as misses at their receivers; reservations are untouched — a
// star has no alternate path, so there is nothing to re-route
// (multi-switch networks model failures at trunks and switches
// instead; see SetLinkUp and SetSwitchUp).
func (n *Network) SetNodeLinkUp(id NodeID, up bool) error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return ErrClosed
	}
	return n.be.setNodeLinkUp(id, up)
}

// applyFailover reconciles channel handles with a recovery report:
// survivors' cached specs pick up any relaxed deadline, and handles of
// channels that did not survive close exactly as on release.
func (n *Network) applyFailover(rep *FailoverReport) {
	for _, oc := range rep.Outcomes {
		switch oc.Outcome {
		case Rerouted, Degraded:
			if ch := n.handles[oc.ID]; ch != nil {
				ch.spec = oc.Spec
			}
		case Preempted, Lost:
			n.closeHandle(oc.ID)
		}
	}
}

// ---------------------------------------------------------------------------
// Star backend: no fabric to re-route over.

func (b *starBackend) setLinkUp(a, c SwitchID, up bool) (*FailoverReport, error) {
	return nil, ErrNoFabric
}

func (b *starBackend) setSwitchUp(s SwitchID, up bool) (*FailoverReport, error) {
	return nil, ErrNoFabric
}

func (b *starBackend) setNodeLinkUp(id NodeID, up bool) error {
	return b.inner.SetLinkUp(id, up)
}

// ---------------------------------------------------------------------------
// Fabric backend: graph mutation, batch re-admission, policy ladder.

func (b *fabricBackend) setNodeLinkUp(NodeID, bool) error { return ErrNoNodeLinks }

func (b *fabricBackend) setLinkUp(a, c SwitchID, up bool) (*FailoverReport, error) {
	changed, err := b.top.inner.SetLinkUp(a, c, up)
	if err != nil {
		return nil, err
	}
	if !changed {
		return &FailoverReport{}, nil
	}
	if up {
		b.refreshDeadEdges()
		return &FailoverReport{}, nil
	}
	return b.failAndRecover([]topo.Edge{
		{From: topo.SwitchEnd(a), To: topo.SwitchEnd(c)},
		{From: topo.SwitchEnd(c), To: topo.SwitchEnd(a)},
	}), nil
}

func (b *fabricBackend) setSwitchUp(s SwitchID, up bool) (*FailoverReport, error) {
	changed, err := b.top.inner.SetSwitchUp(s, up)
	if err != nil {
		return nil, err
	}
	if !changed {
		return &FailoverReport{}, nil
	}
	if up {
		b.refreshDeadEdges()
		return &FailoverReport{}, nil
	}
	g := b.top.inner.Graph()
	var dead []topo.Edge
	for _, nb := range g.Neighbors(s) {
		dead = append(dead,
			topo.Edge{From: topo.SwitchEnd(s), To: topo.SwitchEnd(nb)},
			topo.Edge{From: topo.SwitchEnd(nb), To: topo.SwitchEnd(s)})
	}
	for _, nd := range g.NodesAt(s) {
		dead = append(dead,
			topo.Edge{From: topo.NodeEnd(nd), To: topo.SwitchEnd(s)},
			topo.Edge{From: topo.SwitchEnd(s), To: topo.NodeEnd(nd)})
	}
	return b.failAndRecover(dead), nil
}

// edgeAlive reports whether a directed edge is usable under the graph's
// current failure state: both endpoint switches up, and for trunks the
// trunk itself up too.
func (b *fabricBackend) edgeAlive(e topo.Edge) bool {
	g := b.top.inner.Graph()
	switch {
	case !e.From.Switch:
		return g.SwitchUp(SwitchID(e.To.ID))
	case !e.To.Switch:
		return g.SwitchUp(SwitchID(e.From.ID))
	default:
		a, c := SwitchID(e.From.ID), SwitchID(e.To.ID)
		return g.SwitchUp(a) && g.SwitchUp(c) && g.LinkUp(a, c)
	}
}

// refreshDeadEdges re-derives the simulator's dead-edge set from the
// graph after a repair: edges that became usable again start carrying
// frames. An edge stays dead while any of its failure causes remains
// (a repaired trunk between a live and a dead switch stays dark).
func (b *fabricBackend) refreshDeadEdges() {
	for e := range b.deadEdges {
		if b.edgeAlive(e) {
			b.sim.SetLinkUp(e, true)
			delete(b.deadEdges, e)
		}
	}
}

// failAndRecover is the survivability core: mark the newly dead edges in
// the simulator (purging in-flight frames as misses), release every
// established channel whose route crossed one, re-admit the whole group
// as one batch decision under their original IDs, and walk the policy
// ladder for the ones the residual network rejected.
func (b *fabricBackend) failAndRecover(dead []topo.Edge) *FailoverReport {
	deadNow := make(map[topo.Edge]bool, len(dead))
	for _, e := range dead {
		if b.deadEdges[e] {
			continue
		}
		b.deadEdges[e] = true
		deadNow[e] = true
		b.sim.SetLinkUp(e, false)
	}
	rep := &FailoverReport{}
	var affected []*topo.HChannel
	for _, hch := range b.ctrl.State().Channels() {
		for _, e := range hch.Route {
			if deadNow[e] {
				affected = append(affected, hch)
				break
			}
		}
	}
	rep.Affected = len(affected)
	if len(affected) == 0 {
		return rep
	}
	// Release every affected reservation first, then re-admit the whole
	// group at once: the batch sees the full residual capacity instead
	// of competing with stale reservations, and the kernel's greedy
	// bisection keeps the pass count low (internal/admit.AdmitEach).
	reqs := make([]core.Req, len(affected))
	for i, hch := range affected {
		if err := b.ctrl.Release(hch.ID); err != nil {
			panic(fmt.Sprintf("rtether: releasing failure-affected channel %d: %v", hch.ID, err))
		}
		reqs[i] = core.Req{Spec: hch.Spec, Sinks: hch.Sinks, ID: hch.ID, KeepID: true}
	}
	chs, errs := b.ctrl.RequestEachReq(reqs)
	for i, err := range errs {
		if err == nil {
			b.adoptSurvivor(chs[i], rep, Rerouted, 0)
			continue
		}
		b.recoverFailed(reqs[i], err, rep)
	}
	b.syncAllBudgets()
	return rep
}

// recoverFailed applies the configured policy ladder to one channel the
// batch re-admission rejected.
func (b *fabricBackend) recoverFailed(req core.Req, admErr error, rep *FailoverReport) {
	switch b.policy {
	case FailDegrade:
		relaxed := req
		relaxed.Spec.D *= 2
		chs, errs := b.ctrl.RequestEachReq([]core.Req{relaxed})
		if errs[0] == nil {
			b.adoptSurvivor(chs[0], rep, Degraded, relaxed.Spec.D)
			return
		}
		admErr = errs[0]
	case FailPreempt:
		if b.tryPreempt(req, rep) {
			return
		}
	}
	b.loseChannel(req, admErr, rep)
}

// tryPreempt evicts strictly-lower-priority channels from the saturated
// edge until the request fits, reporting whether it succeeded. Victims
// are chosen deterministically: lowest priority first, ties by lowest
// ID. Non-feasibility failures (no residual route) are not helped by
// eviction and fail immediately.
func (b *fabricBackend) tryPreempt(req core.Req, rep *FailoverReport) bool {
	for {
		chs, errs := b.ctrl.RequestEachReq([]core.Req{req})
		if errs[0] == nil {
			b.adoptSurvivor(chs[0], rep, Rerouted, 0)
			return true
		}
		var rej *topo.RejectionError
		if !errors.As(errs[0], &rej) {
			return false
		}
		victim := b.lowestPriorityOn(rej.Edge, req.Spec.Priority)
		if victim == nil {
			return false
		}
		if err := b.ctrl.Release(victim.ID); err != nil {
			panic(fmt.Sprintf("rtether: preempting channel %d: %v", victim.ID, err))
		}
		if err := b.sim.Remove(victim.ID); err != nil {
			panic(fmt.Sprintf("rtether: removing preempted channel from simulation: %v", err))
		}
		rep.Outcomes = append(rep.Outcomes, ChannelOutcome{ID: victim.ID, Spec: victim.Spec, Outcome: Preempted})
		b.stats.Preempted++
	}
}

// lowestPriorityOn returns the established channel on the given edge
// with the lowest priority strictly below pri (ties broken by lowest
// ID), or nil when no such channel exists.
func (b *fabricBackend) lowestPriorityOn(e topo.Edge, pri int32) *topo.HChannel {
	var victim *topo.HChannel
	for _, hch := range b.ctrl.State().Channels() {
		if hch.Spec.Priority >= pri {
			continue
		}
		on := false
		for _, re := range hch.Route {
			if re == e {
				on = true
				break
			}
		}
		if !on {
			continue
		}
		if victim == nil || hch.Spec.Priority < victim.Spec.Priority ||
			(hch.Spec.Priority == victim.Spec.Priority && hch.ID < victim.ID) {
			victim = hch
		}
	}
	return victim
}

// adoptSurvivor moves a re-admitted channel's traffic onto its new
// route — metrics, traffic state and release phase carry over — and
// records its outcome.
func (b *fabricBackend) adoptSurvivor(hch *topo.HChannel, rep *FailoverReport, outcome FailoverOutcome, newD int64) {
	if err := b.sim.Reroute(hch); err != nil {
		panic(fmt.Sprintf("rtether: rerouting channel %d in simulation: %v", hch.ID, err))
	}
	rep.Outcomes = append(rep.Outcomes, ChannelOutcome{ID: hch.ID, Spec: hch.Spec, Outcome: outcome, NewD: newD})
	switch outcome {
	case Degraded:
		b.stats.Degraded++
	default:
		b.stats.Rerouted++
	}
}

// loseChannel finalizes a channel the ladder could not save: its
// reservation is already gone (the failed re-admission never committed),
// so only its traffic leaves the simulation. Measurements survive.
func (b *fabricBackend) loseChannel(req core.Req, admErr error, rep *FailoverReport) {
	if err := b.sim.Remove(req.ID); err != nil {
		panic(fmt.Sprintf("rtether: removing lost channel from simulation: %v", err))
	}
	if len(req.Sinks) > 0 {
		spec := req.MulticastSpec()
		tree, parents, leaves, _ := b.top.inner.MulticastTree(spec.Src, spec.Sinks)
		admErr = fabricMulticastAdmissionError(spec, admErr, tree, parents, leaves, spec.Sinks)
	} else {
		route, _ := b.top.inner.Route(req.Spec.Src, req.Spec.Dst)
		admErr = fabricAdmissionError(req.Spec, admErr, route)
	}
	rep.Outcomes = append(rep.Outcomes, ChannelOutcome{ID: req.ID, Spec: req.Spec, Outcome: Lost, Err: admErr})
	b.stats.Lost++
}

// syncAllBudgets pushes every surviving channel's committed hop budgets
// into the simulator. Failure recovery runs several kernel mutations
// back to back, so the one-shot Repartitioned delta is not enough; the
// full sweep is the simple, always-correct re-sync (failures are rare).
func (b *fabricBackend) syncAllBudgets() {
	for _, hch := range b.ctrl.State().Channels() {
		if err := b.sim.SetBudgets(hch.ID, hch.Hops); err != nil {
			panic(fmt.Sprintf("rtether: syncing hop budgets after recovery: %v", err))
		}
	}
}
