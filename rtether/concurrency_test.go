package rtether

// Tests for the Network's concurrency contract: mutating operations
// serialize on one management/simulation plane, read-only queries run
// under a shared read lock, channel handles work from any goroutine, and
// the decisions committed under concurrency replay deterministically
// under their observed serialization. Run with -race.

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentNetworkStress hammers one star Network from many
// goroutines with the full API mix — Establish, Start, RunFor, Metrics,
// Budgets, Report, AdmissionStats, Lookup, Release — and checks the
// committed bookkeeping stays consistent. The race detector is the other
// half of the assertion.
func TestConcurrentNetworkStress(t *testing.T) {
	net := New(WithADPS())
	for id := NodeID(1); id <= 40; id++ {
		net.MustAddNode(id)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				src := NodeID(1 + (g*5+i)%20)
				dst := NodeID(21 + (g+i*3)%20)
				ch, err := net.Establish(ChannelSpec{Src: src, Dst: dst, C: 1, P: 200, D: 60})
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Errorf("unexpected establish error: %v", err)
					}
					_ = net.AdmissionStats()
					continue
				}
				if err := ch.Start(int64(i % 7)); err != nil {
					t.Errorf("start: %v", err)
				}
				net.RunFor(25)
				_ = ch.Budgets()
				_ = ch.Metrics()
				_ = ch.GuaranteedDelay()
				_ = net.GuaranteedDelay(ch.Spec())
				_ = net.Report()
				_ = net.LinkLoadUp(src)
				if net.Lookup(ch.ID()) != ch {
					t.Errorf("Lookup did not resolve a live handle")
				}
				if i%3 == 0 {
					if err := ch.Release(); err != nil {
						t.Errorf("release: %v", err)
					}
				} else if i%3 == 1 {
					if err := ch.Stop(); err != nil {
						t.Errorf("stop: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := net.AdmissionStats()
	if got, want := len(net.Channels()), st.Accepted-st.Released; got != want {
		t.Fatalf("committed channels = %d, want accepted-released = %d (%+v)", got, want, st)
	}
	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot after stress: %v", err)
	}
	// The network must still be fully functional.
	if _, err := net.Establish(ChannelSpec{Src: 39, Dst: 40, C: 1, P: 1000, D: 100}); err != nil {
		t.Fatalf("establish after stress: %v", err)
	}
}

// TestConcurrentFabricStress is the fabric flavour: routed
// establishments, hop-budget reads and releases from many goroutines.
func TestConcurrentFabricStress(t *testing.T) {
	top := NewTopology()
	for s := SwitchID(0); s < 3; s++ {
		top.AddSwitch(s)
	}
	top.Trunk(0, 1)
	top.Trunk(1, 2)
	for n := NodeID(1); n <= 12; n++ {
		if err := top.Attach(n, SwitchID((n-1)%3)); err != nil {
			t.Fatal(err)
		}
	}
	net := New(WithTopology(top), WithHDPS(HADPS()))

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				src := NodeID(1 + (g+i)%12)
				dst := NodeID(1 + (g+i+5)%12)
				if src == dst {
					continue
				}
				ch, err := net.Establish(ChannelSpec{Src: src, Dst: dst, C: 2, P: 400, D: 120})
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Errorf("unexpected establish error: %v", err)
					}
					continue
				}
				_ = ch.Start(0)
				net.RunFor(40)
				_ = ch.Budgets()
				_ = ch.Metrics()
				_ = net.Report()
				if i%2 == 0 {
					if err := ch.Release(); err != nil {
						t.Errorf("release: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := net.AdmissionStats()
	if got, want := len(net.Channels()), st.Accepted-st.Released; got != want {
		t.Fatalf("committed channels = %d, want accepted-released = %d (%+v)", got, want, st)
	}
}

// TestScheduleCallbackReentrancy verifies the documented callback
// contract: a Schedule callback runs with the network lock held and may
// call back into the Network — including mutating calls — without
// deadlocking, while other goroutines contend for the same lock.
func TestScheduleCallbackReentrancy(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)

	done := make(chan struct{})
	var inCallback *Channel
	net.Schedule(net.Now()+10, func() {
		_ = net.Now()            // read reentry
		_ = net.AdmissionStats() // read reentry
		ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 30})
		if err != nil {
			t.Errorf("establish inside callback: %v", err)
			close(done)
			return
		}
		if err := ch.Start(0); err != nil { // write reentry via handle
			t.Errorf("start inside callback: %v", err)
		}
		inCallback = ch
		close(done)
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a concurrent reader contending for the lock
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = net.AdmissionStats()
			_ = net.Now()
		}
	}()
	net.RunFor(500)
	wg.Wait()
	<-done

	if inCallback == nil {
		t.Fatal("callback did not establish a channel")
	}
	if m := inCallback.Metrics(); m == nil || m.Delivered == 0 {
		t.Fatal("channel established inside a callback delivered nothing")
	}
}

// TestConcurrentEstablishDeterministicSerialization races establishments
// from many goroutines, then replays the committed decisions — in the
// serialization order the lock actually produced (establishment order) —
// on a fresh single-goroutine Network. The committed states must be
// bit-identical: same IDs, same partitions, same snapshot. This is the
// determinism contract: concurrency changes which serialization you get,
// never what a serialization commits.
func TestConcurrentEstablishDeterministicSerialization(t *testing.T) {
	concurrent := New(WithADPS())
	for id := NodeID(1); id <= 30; id++ {
		concurrent.MustAddNode(id)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Saturating mix: some requests must be rejected, proving
				// rejected attempts leave no trace in the serialization.
				spec := ChannelSpec{
					Src: NodeID(1 + (g*3+i)%10),
					Dst: NodeID(11 + (g+i)%20),
					C:   3, P: 100, D: 40,
				}
				if _, err := concurrent.Establish(spec); err != nil && !errors.Is(err, ErrInfeasible) {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	st := concurrent.AdmissionStats()
	if st.Accepted == st.Requests {
		t.Fatal("workload never saturated — rejection path not exercised")
	}

	replay := New(WithADPS())
	for id := NodeID(1); id <= 30; id++ {
		replay.MustAddNode(id)
	}
	for _, id := range concurrent.Channels() {
		ch := concurrent.Lookup(id)
		if ch == nil {
			t.Fatalf("no handle for committed channel %d", id)
		}
		rch, err := replay.Establish(ch.Spec())
		if err != nil {
			t.Fatalf("replay rejected committed channel %d (%v): %v", id, ch.Spec(), err)
		}
		if rch.ID() != id {
			t.Fatalf("replay allocated ID %d where the concurrent run committed %d", rch.ID(), id)
		}
	}

	var got, want bytes.Buffer
	if err := concurrent.WriteSnapshot(&got); err != nil {
		t.Fatal(err)
	}
	if err := replay.WriteSnapshot(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("concurrent commit state diverges from its serialized replay:\n%s\nvs\n%s",
			got.String(), want.String())
	}
}

// workersStarBatch drives identical feasible-then-saturating batches
// through a star network with the given verification worker count (plus
// any extra options), returning the snapshot and the rejection
// diagnostics.
func workersStarBatch(t *testing.T, workers int, extra ...Option) (snapshot, rejection string, linksChecked int) {
	t.Helper()
	net := New(append([]Option{WithADPS(), WithVerifyWorkers(workers)}, extra...)...)
	for id := NodeID(1); id <= 40; id++ {
		net.MustAddNode(id)
	}
	// Feasible batch: 200 channels over 20 uplinks / 20 downlinks — a
	// changed-link sweep of 40 links, well past the parallel threshold.
	var ok []ChannelSpec
	for i := 0; i < 200; i++ {
		ok = append(ok, ChannelSpec{
			Src: NodeID(1 + i%20),
			Dst: NodeID(21 + (i/20)%20),
			C:   1, P: 500, D: 100 + int64(i%40),
		})
	}
	if _, err := net.EstablishAll(ok); err != nil {
		t.Fatalf("workers=%d: feasible batch rejected: %v", workers, err)
	}
	// Saturating batch: deep per-link overload; the rejection must name
	// the same saturated link for every worker count (first failure in
	// the deterministic link order).
	var over []ChannelSpec
	for i := 0; i < 200; i++ {
		over = append(over, ChannelSpec{
			Src: NodeID(1 + i%20),
			Dst: NodeID(21 + (i/20)%20),
			C:   3, P: 100, D: 12,
		})
	}
	_, err := net.EstablishAll(over)
	if err == nil {
		t.Fatalf("workers=%d: saturating batch accepted", workers)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("workers=%d: rejection is not an *AdmissionError: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), fmt.Sprintf("%v | link=%s dir=%v hop=%d util=%.6f slack=%d",
		err, ae.Link, ae.Dir, ae.Hop, ae.Utilization, ae.Slack), net.AdmissionStats().LinksChecked
}

// TestWithVerifyWorkersEquivalentStar: worker-count 1 and GOMAXPROCS
// produce identical verdicts, identical committed states, identical
// *AdmissionError diagnostics (same saturated link — lowest index in the
// deterministic link order wins) and identical LinksChecked accounting.
func TestWithVerifyWorkersEquivalentStar(t *testing.T) {
	snap1, rej1, checked1 := workersStarBatch(t, 1)
	snapN, rejN, checkedN := workersStarBatch(t, runtime.GOMAXPROCS(0))
	if snap1 != snapN {
		t.Fatalf("committed states diverge between worker counts:\n%s\nvs\n%s", snap1, snapN)
	}
	if rej1 != rejN {
		t.Fatalf("rejection diagnostics diverge:\n  workers=1: %s\n  workers=N: %s", rej1, rejN)
	}
	if checked1 != checkedN {
		t.Fatalf("LinksChecked diverges: workers=1 → %d, workers=N → %d", checked1, checkedN)
	}
}

// TestWithFullRecheckEquivalentStar: the belt-and-braces full-recheck
// mode (every loaded link re-verified, sweep verdict cache bypassed)
// commits the identical state and rejects with identical diagnostics —
// it only checks more links than the narrowed cached sweep.
func TestWithFullRecheckEquivalentStar(t *testing.T) {
	snapFast, rejFast, checkedFast := workersStarBatch(t, 1)
	snapFull, rejFull, checkedFull := workersStarBatch(t, 1, WithFullRecheck())
	if snapFast != snapFull {
		t.Fatalf("committed states diverge under full recheck:\n%s\nvs\n%s", snapFast, snapFull)
	}
	if rejFast != rejFull {
		t.Fatalf("rejection diagnostics diverge:\n  cached: %s\n  full:   %s", rejFast, rejFull)
	}
	if checkedFull < checkedFast {
		t.Fatalf("full recheck checked fewer links (%d) than the narrowed sweep (%d)", checkedFull, checkedFast)
	}
}

// TestWithVerifyWorkersEquivalentFabric is the fabric flavour: the batch
// sweep crosses trunks and the rejection must name the same edge at the
// same hop for every worker count.
func TestWithVerifyWorkersEquivalentFabric(t *testing.T) {
	run := func(workers int) (accepted []ChannelID, rejection string) {
		top := NewTopology()
		for s := SwitchID(0); s < 3; s++ {
			top.AddSwitch(s)
		}
		top.Trunk(0, 1)
		top.Trunk(1, 2)
		for n := NodeID(1); n <= 24; n++ {
			if err := top.Attach(n, SwitchID((n-1)%3)); err != nil {
				t.Fatal(err)
			}
		}
		net := New(WithTopology(top), WithHDPS(HSDPS()), WithVerifyWorkers(workers))
		var ok []ChannelSpec
		for i := 0; i < 120; i++ {
			src := NodeID(1 + i%24)
			dst := NodeID(1 + (i+7)%24)
			ok = append(ok, ChannelSpec{Src: src, Dst: dst, C: 1, P: 2000, D: 600})
		}
		if _, err := net.EstablishAll(ok); err != nil {
			t.Fatalf("workers=%d: feasible fabric batch rejected: %v", workers, err)
		}
		var over []ChannelSpec
		for i := 0; i < 120; i++ {
			src := NodeID(1 + i%24)
			dst := NodeID(1 + (i+11)%24)
			over = append(over, ChannelSpec{Src: src, Dst: dst, C: 4, P: 100, D: 30})
		}
		_, err := net.EstablishAll(over)
		if err == nil {
			t.Fatalf("workers=%d: saturating fabric batch accepted", workers)
		}
		var ae *AdmissionError
		if !errors.As(err, &ae) {
			t.Fatalf("workers=%d: rejection is not an *AdmissionError: %v", workers, err)
		}
		return net.Channels(), fmt.Sprintf("%v | link=%s dir=%v hop=%d", err, ae.Link, ae.Dir, ae.Hop)
	}
	ids1, rej1 := run(1)
	idsN, rejN := run(runtime.GOMAXPROCS(0))
	if rej1 != rejN {
		t.Fatalf("fabric rejection diagnostics diverge:\n  workers=1: %s\n  workers=N: %s", rej1, rejN)
	}
	if len(ids1) != len(idsN) {
		t.Fatalf("accepted counts diverge: %d vs %d", len(ids1), len(idsN))
	}
	for i := range ids1 {
		if ids1[i] != idsN[i] {
			t.Fatalf("accepted IDs diverge at %d: %d vs %d", i, ids1[i], idsN[i])
		}
	}
}
