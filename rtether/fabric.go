package rtether

import (
	"repro/internal/topo"
)

// SwitchID identifies a switch in a multi-switch topology.
type SwitchID = topo.SwitchID

// HDPS is a hop-general deadline partitioning scheme for multi-switch
// topologies.
type HDPS = topo.HDPS

// HSDPS returns the equal-split hop partitioning scheme (SDPS
// generalized to h hops).
func HSDPS() HDPS { return topo.HSDPS{} }

// HADPS returns the link-load-weighted hop partitioning scheme (ADPS
// generalized to h hops).
func HADPS() HDPS { return topo.HADPS{} }

// Fabric is the legacy multi-switch API. It survives as a thin shim over
// the unified Network: the topology collected by AddSwitch/Trunk/
// AttachNode freezes at the first Establish, which builds a Network with
// WithTopology and the configured HDPS.
//
// Deprecated: build a Topology and use New(WithTopology(...)) — the
// unified Network establishes channels with *Channel handles, reports
// rejections as *AdmissionError, and runs traffic incrementally
// (Channel.Start + RunFor) instead of batch Simulate.
type Fabric struct {
	top     *Topology
	dps     HDPS
	net     *Network
	started map[ChannelID]bool // channels Simulate has attached sources to
}

// NewFabric creates an empty fabric using the given hop partitioning
// scheme (nil means HSDPS).
//
// Deprecated: see Fabric.
func NewFabric(dps HDPS) *Fabric {
	return &Fabric{top: NewTopology(), dps: dps}
}

// AddSwitch registers a switch. Topology must be complete before the
// first Establish call.
func (f *Fabric) AddSwitch(id SwitchID) error {
	if f.net != nil {
		return errTopologyFrozen{}
	}
	return f.top.AddSwitch(id)
}

// Trunk connects two switches with a full-duplex link.
func (f *Fabric) Trunk(a, b SwitchID) error {
	if f.net != nil {
		return errTopologyFrozen{}
	}
	return f.top.Trunk(a, b)
}

// AttachNode homes an end-node on a switch.
func (f *Fabric) AttachNode(n NodeID, s SwitchID) error {
	if f.net != nil {
		return errTopologyFrozen{}
	}
	return f.top.Attach(n, s)
}

// Establish routes and admission-tests a channel. On acceptance it
// returns the channel ID and the per-hop deadline budgets.
func (f *Fabric) Establish(spec ChannelSpec) (ChannelID, []int64, error) {
	if f.net == nil {
		f.net = New(WithTopology(f.top), WithHDPS(f.dps))
	}
	ch, err := f.net.Establish(spec)
	if err != nil {
		return 0, nil, err
	}
	return ch.ID(), ch.Budgets(), nil
}

// Release tears down a fabric channel.
func (f *Fabric) Release(id ChannelID) error {
	if f.net == nil {
		return errUnknownChannel(id)
	}
	return f.net.Release(id)
}

// Accepted returns the number of currently admitted channels.
func (f *Fabric) Accepted() int {
	if f.net == nil {
		return 0
	}
	return len(f.net.Channels())
}

// RouteLength returns the number of hops a channel between the two nodes
// would traverse (useful to pre-check D >= hops*C).
func (f *Fabric) RouteLength(src, dst NodeID) (int, error) {
	return f.top.RouteLength(src, dst)
}

// FabricRun is the outcome of simulating a fabric's admitted channels.
type FabricRun struct {
	Delivered  int64 // RT frames delivered end to end
	Misses     int64 // frames exceeding their end-to-end deadline
	WorstDelay int64 // maximum observed end-to-end delay (slots)
}

// Simulate starts the admitted channels (periodic traffic, optional
// per-channel release offsets) and advances the unified network to the
// absolute slot horizon, reporting delivery against the end-to-end
// deadlines. Unlike the pre-unification Fabric, repeated calls continue
// the same run rather than restarting from slot zero; channels admitted
// between calls are started (with their offsets relative to the current
// clock) on the next call.
func (f *Fabric) Simulate(slots int64, offsets map[ChannelID]int64) (FabricRun, error) {
	if f.net == nil || len(f.net.Channels()) == 0 {
		return FabricRun{}, nil
	}
	if f.started == nil {
		f.started = make(map[ChannelID]bool)
	}
	for _, id := range f.net.Channels() {
		ch := f.net.Lookup(id)
		if ch == nil || f.started[id] {
			continue
		}
		if err := ch.Start(offsets[id]); err != nil {
			return FabricRun{}, err
		}
		f.started[id] = true
	}
	f.net.RunUntil(slots)
	rep := f.net.Report()
	_, worst := rep.WorstDelay()
	return FabricRun{
		Delivered:  rep.TotalDelivered(),
		Misses:     rep.TotalMisses(),
		WorstDelay: worst,
	}, nil
}

type errTopologyFrozen struct{}

func (errTopologyFrozen) Error() string {
	return "rtether: fabric topology is frozen after the first Establish"
}
