package rtether

import (
	"repro/internal/fabricsim"
	"repro/internal/topo"
)

// SwitchID identifies a switch in a multi-switch fabric.
type SwitchID = topo.SwitchID

// HDPS is a hop-general deadline partitioning scheme for fabrics.
type HDPS = topo.HDPS

// HSDPS returns the equal-split hop partitioning scheme (SDPS
// generalized to h hops).
func HSDPS() HDPS { return topo.HSDPS{} }

// HADPS returns the link-load-weighted hop partitioning scheme (ADPS
// generalized to h hops).
func HADPS() HDPS { return topo.HADPS{} }

// Fabric is the multi-switch extension of the paper's future-work section
// (§18.5): end-nodes attach to switches, switches interconnect, channels
// are routed along shortest paths and their deadlines are partitioned
// over every hop. Admission control verifies per-directed-link EDF
// feasibility exactly as in the star network.
//
// Fabric is analysis-level: it decides channel acceptance and computes
// the per-hop deadline budgets; it does not carry simulated traffic (the
// cycle-accurate simulator is the single-switch Network).
type Fabric struct {
	topo *topo.Topology
	ctrl *topo.Controller
	dps  HDPS
	open bool
}

// NewFabric creates an empty fabric using the given hop partitioning
// scheme (nil means HSDPS).
func NewFabric(dps HDPS) *Fabric {
	return &Fabric{topo: topo.NewTopology(), dps: dps}
}

// AddSwitch registers a switch. Topology must be complete before the
// first Establish call.
func (f *Fabric) AddSwitch(id SwitchID) error {
	if f.open {
		return errTopologyFrozen{}
	}
	return f.topo.AddSwitch(id)
}

// Trunk connects two switches with a full-duplex link.
func (f *Fabric) Trunk(a, b SwitchID) error {
	if f.open {
		return errTopologyFrozen{}
	}
	return f.topo.ConnectSwitches(a, b)
}

// AttachNode homes an end-node on a switch.
func (f *Fabric) AttachNode(n NodeID, s SwitchID) error {
	if f.open {
		return errTopologyFrozen{}
	}
	return f.topo.AttachNode(n, s)
}

// Establish routes and admission-tests a channel. On acceptance it
// returns the channel ID and the per-hop deadline budgets.
func (f *Fabric) Establish(spec ChannelSpec) (ChannelID, []int64, error) {
	if !f.open {
		f.ctrl = topo.NewController(f.topo, topo.Config{DPS: f.dps})
		f.open = true
	}
	ch, err := f.ctrl.Request(spec)
	if err != nil {
		return 0, nil, err
	}
	return ch.ID, append([]int64(nil), ch.Hops...), nil
}

// Release tears down a fabric channel.
func (f *Fabric) Release(id ChannelID) error {
	if !f.open {
		return errUnknownChannel(id)
	}
	return f.ctrl.Release(id)
}

// Accepted returns the number of currently admitted channels.
func (f *Fabric) Accepted() int {
	if !f.open {
		return 0
	}
	return f.ctrl.State().Len()
}

// RouteLength returns the number of hops a channel between the two nodes
// would traverse (useful to pre-check D >= hops*C).
func (f *Fabric) RouteLength(src, dst NodeID) (int, error) {
	route, err := f.topo.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return len(route), nil
}

// FabricRun is the outcome of simulating a fabric's admitted channels.
type FabricRun struct {
	Delivered  int64 // RT frames delivered end to end
	Misses     int64 // frames exceeding their end-to-end deadline
	WorstDelay int64 // maximum observed end-to-end delay (slots)
}

// Simulate runs the currently admitted channels hop by hop for the given
// number of slots (periodic traffic, optional per-channel release
// offsets) and reports delivery against the end-to-end deadlines — the
// dynamic validation of the per-hop partitioning. Deterministic.
func (f *Fabric) Simulate(slots int64, offsets map[ChannelID]int64) (FabricRun, error) {
	if !f.open || f.ctrl.State().Len() == 0 {
		return FabricRun{}, nil
	}
	s, err := fabricsim.New(f.ctrl.State(), offsets, fabricsim.Config{})
	if err != nil {
		return FabricRun{}, err
	}
	s.Run(slots)
	d, m, w := s.Totals()
	return FabricRun{Delivered: d, Misses: m, WorstDelay: w}, nil
}

type errTopologyFrozen struct{}

func (errTopologyFrozen) Error() string {
	return "rtether: fabric topology is frozen after the first Establish"
}
