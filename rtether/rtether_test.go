package rtether

import (
	"errors"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	net := New(WithADPS())
	net.MustAddNode(1)
	net.MustAddNode(2)
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Start(0); err != nil {
		t.Fatal(err)
	}
	net.RunFor(1000)
	m := ch.Metrics()
	if m == nil || m.Delivered == 0 {
		t.Fatal("no frames delivered")
	}
	if m.Misses != 0 {
		t.Errorf("misses = %d", m.Misses)
	}
	if m.Delays.Max() > ch.GuaranteedDelay() {
		t.Errorf("worst delay %d beyond guarantee", m.Delays.Max())
	}
	if rep := net.Report(); rep.Channels[ch.ID()] == nil {
		t.Error("report misses the channel")
	}
}

func TestAdmissionRejectionSurfaces(t *testing.T) {
	net := New() // SDPS default
	for id := NodeID(1); id <= 8; id++ {
		net.MustAddNode(id)
	}
	accepted := 0
	var lastErr error
	for i := 0; i < 8; i++ {
		_, err := net.Establish(ChannelSpec{Src: 1, Dst: NodeID(2 + i%7), C: 3, P: 100, D: 40})
		if err == nil {
			accepted++
		} else {
			lastErr = err
		}
	}
	if accepted != 6 {
		t.Errorf("accepted %d, want 6 under SDPS", accepted)
	}
	if !errors.Is(lastErr, ErrInfeasible) {
		t.Errorf("rejection error = %v, want ErrInfeasible", lastErr)
	}
}

func TestChannelIntrospection(t *testing.T) {
	net := New(WithADPS())
	net.MustAddNode(1)
	net.MustAddNode(2)
	spec := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	ch, err := net.Establish(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Spec() != spec {
		t.Fatalf("Spec() = %v", ch.Spec())
	}
	budgets := ch.Budgets()
	if len(budgets) != 2 || budgets[0]+budgets[1] != spec.D {
		t.Errorf("budgets %v do not sum to D", budgets)
	}
	ids := net.Channels()
	if len(ids) != 1 || ids[0] != ch.ID() {
		t.Errorf("Channels() = %v", ids)
	}
	if net.Lookup(ch.ID()) != ch {
		t.Error("Lookup did not return the handle")
	}
	if net.LinkLoadUp(1) != 1 || net.LinkLoadDown(2) != 1 || net.LinkLoadUp(2) != 0 {
		t.Error("link loads wrong")
	}
}

func TestReleaseViaHandle(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Release(); err != nil {
		t.Fatal(err)
	}
	if len(net.Channels()) != 0 {
		t.Error("channel survived release")
	}
	if net.Lookup(ch.ID()) != nil {
		t.Error("released handle still resolvable")
	}
	if err := ch.Start(0); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("Start after Release = %v, want ErrChannelClosed", err)
	}
}

func TestTeardownViaHandle(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Teardown(); err != nil {
		t.Fatal(err)
	}
	// Reservation persists until the frame crosses the uplink.
	net.RunFor(20)
	if len(net.Channels()) != 0 {
		t.Error("channel survived wire teardown")
	}
	if err := ch.Teardown(); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("double teardown = %v, want ErrChannelClosed", err)
	}
}

func TestUnknownChannelLookup(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	if net.Lookup(ChannelID(999)) != nil {
		t.Error("Lookup resolved an unknown channel")
	}
}

func TestBestEffortViaFacade(t *testing.T) {
	net := New(WithNonRTQueueCap(128))
	net.MustAddNode(1)
	net.MustAddNode(2)
	if !net.SendBestEffort(1, 2, []byte("hello")) {
		t.Fatal("send failed")
	}
	if net.SendBestEffort(99, 2, nil) {
		t.Error("send from unknown node succeeded")
	}
	net.RunFor(100)
	if net.Report().NonRTDelivered != 1 {
		t.Error("best-effort frame not delivered")
	}
}

func TestOptionsApply(t *testing.T) {
	net := New(WithPropagation(2), WithShaping(false))
	net.MustAddNode(1)
	net.MustAddNode(2)
	if got := net.GuaranteedDelay(ChannelSpec{D: 40}); got != 44 {
		t.Errorf("GuaranteedDelay = %d, want 40 + 2*2", got)
	}
}

func TestSlotNanos(t *testing.T) {
	if SlotNanos(100) != 123040 {
		t.Errorf("SlotNanos(100) = %d", SlotNanos(100))
	}
}

func TestScheduleRunsCallback(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	fired := int64(-1)
	net.Schedule(net.Now()+50, func() { fired = net.Now() })
	net.RunFor(100)
	if fired < 0 {
		t.Fatal("scheduled callback never ran")
	}
}

func TestDeterministicFacadeRuns(t *testing.T) {
	run := func() int64 {
		net := New(WithADPS())
		for id := NodeID(1); id <= 6; id++ {
			net.MustAddNode(id)
		}
		var chans []*Channel
		for i := 0; i < 10; i++ {
			if ch, err := net.Establish(ChannelSpec{
				Src: NodeID(1 + i%3), Dst: NodeID(4 + i%3), C: 2, P: 50, D: 30}); err == nil {
				chans = append(chans, ch)
			}
		}
		for _, ch := range chans {
			if err := ch.Start(int64(ch.ID()) % 7); err != nil {
				t.Fatal(err)
			}
		}
		net.RunFor(2000)
		rep := net.Report()
		_, worst := rep.WorstDelay()
		return rep.TotalDelivered()*1000 + worst
	}
	if a, b := run(), run(); a != b {
		t.Errorf("facade runs diverged: %d vs %d", a, b)
	}
}
