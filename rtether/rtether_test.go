package rtether

import (
	"errors"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	net := New(WithADPS())
	net.MustAddNode(1)
	net.MustAddNode(2)
	id, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	net.RunFor(1000)
	rep := net.Report()
	m := rep.Channels[id]
	if m == nil || m.Delivered == 0 {
		t.Fatal("no frames delivered")
	}
	if m.Misses != 0 {
		t.Errorf("misses = %d", m.Misses)
	}
	if m.Delays.Max() > net.GuaranteedDelay(ChannelSpec{D: 40}) {
		t.Errorf("worst delay %d beyond guarantee", m.Delays.Max())
	}
}

func TestAdmissionRejectionSurfaces(t *testing.T) {
	net := New() // SDPS default
	for id := NodeID(1); id <= 8; id++ {
		net.MustAddNode(id)
	}
	accepted := 0
	var lastErr error
	for i := 0; i < 8; i++ {
		_, err := net.Establish(ChannelSpec{Src: 1, Dst: NodeID(2 + i%7), C: 3, P: 100, D: 40})
		if err == nil {
			accepted++
		} else {
			lastErr = err
		}
	}
	if accepted != 6 {
		t.Errorf("accepted %d, want 6 under SDPS", accepted)
	}
	if !errors.Is(lastErr, ErrInfeasible) {
		t.Errorf("rejection error = %v, want ErrInfeasible", lastErr)
	}
}

func TestChannelIntrospection(t *testing.T) {
	net := New(WithADPS())
	net.MustAddNode(1)
	net.MustAddNode(2)
	spec := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	id, err := net.Establish(spec)
	if err != nil {
		t.Fatal(err)
	}
	gotSpec, part, ok := net.Channel(id)
	if !ok || gotSpec != spec {
		t.Fatalf("Channel() = %v,%v,%v", gotSpec, part, ok)
	}
	if part.Up+part.Down != spec.D {
		t.Errorf("partition %v does not sum to D", part)
	}
	if _, _, ok := net.Channel(999); ok {
		t.Error("unknown channel introspected")
	}
	ids := net.Channels()
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("Channels() = %v", ids)
	}
	if net.LinkLoadUp(1) != 1 || net.LinkLoadDown(2) != 1 || net.LinkLoadUp(2) != 0 {
		t.Error("link loads wrong")
	}
}

func TestReleaseViaFacade(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	id, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Release(id); err != nil {
		t.Fatal(err)
	}
	if len(net.Channels()) != 0 {
		t.Error("channel survived release")
	}
	if err := net.StartTraffic(id, 0); err == nil {
		t.Error("StartTraffic on released channel accepted")
	}
}

func TestTeardownViaFacade(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	id, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Teardown(id); err != nil {
		t.Fatal(err)
	}
	// Reservation persists until the frame crosses the uplink.
	net.RunFor(20)
	if len(net.Channels()) != 0 {
		t.Error("channel survived wire teardown")
	}
	if err := net.Teardown(id); err == nil {
		t.Error("double teardown accepted")
	}
}

func TestBestEffortViaFacade(t *testing.T) {
	net := New(WithNonRTQueueCap(128))
	net.MustAddNode(1)
	net.MustAddNode(2)
	if !net.SendBestEffort(1, 2, []byte("hello")) {
		t.Fatal("send failed")
	}
	if net.SendBestEffort(99, 2, nil) {
		t.Error("send from unknown node succeeded")
	}
	net.RunFor(100)
	if net.Report().NonRTDelivered != 1 {
		t.Error("best-effort frame not delivered")
	}
}

func TestOptionsApply(t *testing.T) {
	net := New(WithPropagation(2), WithShaping(false))
	net.MustAddNode(1)
	net.MustAddNode(2)
	if got := net.GuaranteedDelay(ChannelSpec{D: 40}); got != 44 {
		t.Errorf("GuaranteedDelay = %d, want 40 + 2*2", got)
	}
}

func TestSlotNanos(t *testing.T) {
	if SlotNanos(100) != 123040 {
		t.Errorf("SlotNanos(100) = %d", SlotNanos(100))
	}
}

func TestDeterministicFacadeRuns(t *testing.T) {
	run := func() int64 {
		net := New(WithADPS())
		for id := NodeID(1); id <= 6; id++ {
			net.MustAddNode(id)
		}
		var ids []ChannelID
		for i := 0; i < 10; i++ {
			if id, err := net.Establish(ChannelSpec{
				Src: NodeID(1 + i%3), Dst: NodeID(4 + i%3), C: 2, P: 50, D: 30}); err == nil {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			if err := net.StartTraffic(id, int64(id)%7); err != nil {
				t.Fatal(err)
			}
		}
		net.RunFor(2000)
		rep := net.Report()
		_, worst := rep.WorstDelay()
		return rep.TotalDelivered()*1000 + worst
	}
	if a, b := run(), run(); a != b {
		t.Errorf("facade runs diverged: %d vs %d", a, b)
	}
}
