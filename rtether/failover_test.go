package rtether

import (
	"errors"
	"testing"
)

// ringTopology is a 4-switch ring (0-1, 1-2, 2-3, 3-0) with two nodes on
// each switch (node n homes on switch (n-1)/2), so every single trunk
// failure leaves a detour.
func ringTopology(t *testing.T) *Topology {
	t.Helper()
	top := NewTopology()
	for s := SwitchID(0); s < 4; s++ {
		if err := top.AddSwitch(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][2]SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := top.Trunk(tr[0], tr[1]); err != nil {
			t.Fatal(err)
		}
	}
	for n := NodeID(1); n <= 8; n++ {
		if err := top.Attach(n, SwitchID((n-1)/2)); err != nil {
			t.Fatal(err)
		}
	}
	return top
}

// TestFailoverReroutesAffected is the happy path: failing a trunk
// re-admits exactly the channels routed over it, on the detour, under
// their original IDs and contracts. Bystanders are untouched, repairs
// return empty reports, and repeated mutations are no-ops.
func TestFailoverReroutesAffected(t *testing.T) {
	net := New(WithTopology(ringTopology(t)), WithHDPS(HADPS()))
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 3, C: 2, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := net.Establish(ChannelSpec{Src: 5, Dst: 7, C: 2, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ch.Budgets()); got != 3 {
		t.Fatalf("pre-failure hops = %d, want 3", got)
	}

	rep, err := net.SetLinkUp(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Count(Rerouted) != 1 {
		t.Fatalf("report = %+v, want 1 affected, 1 rerouted", rep)
	}
	if rep.Outcomes[0].ID != ch.ID() {
		t.Fatalf("rerouted channel %d, want %d", rep.Outcomes[0].ID, ch.ID())
	}
	// The survivor keeps its handle and now runs the 5-hop detour.
	if got := len(ch.Budgets()); got != 5 {
		t.Fatalf("post-failure hops = %d, want 5 (detour)", got)
	}
	if got := len(bystander.Budgets()); got != 3 {
		t.Fatalf("bystander hops = %d, want 3 (untouched)", got)
	}
	st := net.AdmissionStats()
	if st.Rerouted != 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v, want Rerouted=1 Lost=0", st)
	}

	// Repair is a pure flip: empty report, channels stay where recovery
	// put them, and a repeated repair is a no-op.
	for i := 0; i < 2; i++ {
		rep, err = net.SetLinkUp(0, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Affected != 0 || len(rep.Outcomes) != 0 {
			t.Fatalf("repair %d report = %+v, want empty", i, rep)
		}
	}
	if got := len(ch.Budgets()); got != 5 {
		t.Fatalf("hops after repair = %d, want 5 (no forced move-back)", got)
	}
	if _, err := net.SetLinkUp(0, 2, false); err == nil {
		t.Fatal("failing an unknown trunk succeeded")
	}
}

// tightSpec is feasible on its 3-hop primary route but not on the 5-hop
// ring detour (five hop budgets of at least C need D >= 50), which is
// exactly what forces the policy ladder to engage after a failure.
var tightSpec = ChannelSpec{Src: 1, Dst: 3, C: 10, P: 100, D: 34}

// TestFailoverRejectPolicyLosesChannel pins the default rung: a channel
// the residual network cannot honor is lost — reservation gone, handle
// closed — and nothing else is touched.
func TestFailoverRejectPolicyLosesChannel(t *testing.T) {
	net := New(WithTopology(ringTopology(t)), WithHDPS(HADPS()))
	ch, err := net.Establish(tightSpec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.SetLinkUp(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Count(Lost) != 1 {
		t.Fatalf("report = %+v, want 1 affected, 1 lost", rep)
	}
	if rep.Outcomes[0].Err == nil {
		t.Fatal("lost outcome carries no admission error")
	}
	if err := ch.Release(); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("release of lost channel: %v, want ErrChannelClosed", err)
	}
	st := net.AdmissionStats()
	if st.Lost != 1 || st.Rerouted != 0 || st.Degraded != 0 {
		t.Fatalf("stats = %+v, want Lost=1 only", st)
	}
}

// TestFailoverDegradePolicy pins the middle rung: the same channel that
// FailReject loses is kept with its deadline doubled — ID-stable, handle
// open, committed spec reporting the relaxed contract.
func TestFailoverDegradePolicy(t *testing.T) {
	net := New(WithTopology(ringTopology(t)), WithHDPS(HADPS()), WithFailurePolicy(FailDegrade))
	ch, err := net.Establish(tightSpec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.SetLinkUp(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Count(Degraded) != 1 {
		t.Fatalf("report = %+v, want 1 affected, 1 degraded", rep)
	}
	oc := rep.Outcomes[0]
	if oc.ID != ch.ID() || oc.NewD != 2*tightSpec.D {
		t.Fatalf("degraded outcome = %+v, want ID %d NewD %d", oc, ch.ID(), 2*tightSpec.D)
	}
	if got := ch.Spec().D; got != 2*tightSpec.D {
		t.Fatalf("handle reports D=%d, want relaxed %d", got, 2*tightSpec.D)
	}
	if got := len(ch.Budgets()); got != 5 {
		t.Fatalf("degraded channel hops = %d, want 5 (detour)", got)
	}
	if st := net.AdmissionStats(); st.Degraded != 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v, want Degraded=1 Lost=0", st)
	}
}

// TestFailoverPreemptPolicy pins the top rung: a high-priority channel
// displaced onto a saturated detour evicts the lowest-priority channel
// on the blocking link — and an equal-priority bystander is safe, so the
// same squeeze with flat priorities loses the affected channel instead.
func TestFailoverPreemptPolicy(t *testing.T) {
	run := func(t *testing.T, hiPriority int32) (*FailoverReport, *Channel, *Channel, *Network) {
		t.Helper()
		net := New(WithTopology(ringTopology(t)), WithHDPS(HADPS()), WithFailurePolicy(FailPreempt))
		// victim occupies 0.9 of the detour trunk 0-3 (node 2 on switch
		// 0, node 8 on switch 3).
		victim, err := net.Establish(ChannelSpec{Src: 2, Dst: 8, C: 9, P: 10, D: 40})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := net.Establish(ChannelSpec{Src: 1, Dst: 3, C: 2, P: 10, D: 40, Priority: hiPriority})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := net.SetLinkUp(0, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		return rep, hi, victim, net
	}

	t.Run("evicts lower priority", func(t *testing.T) {
		rep, hi, victim, net := run(t, 5)
		if rep.Affected != 1 || rep.Count(Rerouted) != 1 || rep.Count(Preempted) != 1 {
			t.Fatalf("report = %+v, want 1 rerouted + 1 preempted", rep)
		}
		for _, oc := range rep.Outcomes {
			if oc.Outcome == Preempted && oc.ID != victim.ID() {
				t.Fatalf("preempted channel %d, want victim %d", oc.ID, victim.ID())
			}
		}
		if err := victim.Release(); !errors.Is(err, ErrChannelClosed) {
			t.Fatalf("victim release: %v, want ErrChannelClosed", err)
		}
		if got := len(hi.Budgets()); got != 5 {
			t.Fatalf("survivor hops = %d, want 5 (detour)", got)
		}
		if st := net.AdmissionStats(); st.Preempted != 1 || st.Rerouted != 1 {
			t.Fatalf("stats = %+v, want Preempted=1 Rerouted=1", st)
		}
	})

	t.Run("equal priority is safe", func(t *testing.T) {
		rep, hi, victim, net := run(t, 0)
		if rep.Count(Preempted) != 0 || rep.Count(Lost) != 1 {
			t.Fatalf("report = %+v, want 0 preempted, 1 lost", rep)
		}
		if err := hi.Release(); !errors.Is(err, ErrChannelClosed) {
			t.Fatalf("lost channel release: %v, want ErrChannelClosed", err)
		}
		if got := len(victim.Budgets()); got != 3 {
			t.Fatalf("equal-priority bystander hops = %d, want 3 (untouched)", got)
		}
		if st := net.AdmissionStats(); st.Preempted != 0 || st.Lost != 1 {
			t.Fatalf("stats = %+v, want Preempted=0 Lost=1", st)
		}
	})
}

// TestFailoverTopologyGuards pins the error split between the two
// network shapes: trunk/switch failures need a fabric, node-link
// failures need a star.
func TestFailoverTopologyGuards(t *testing.T) {
	star := New()
	star.MustAddNode(1)
	star.MustAddNode(2)
	if _, err := star.SetLinkUp(0, 1, false); !errors.Is(err, ErrNoFabric) {
		t.Fatalf("star SetLinkUp: %v, want ErrNoFabric", err)
	}
	if _, err := star.SetSwitchUp(0, false); !errors.Is(err, ErrNoFabric) {
		t.Fatalf("star SetSwitchUp: %v, want ErrNoFabric", err)
	}
	if err := star.SetNodeLinkUp(1, false); err != nil {
		t.Fatalf("star SetNodeLinkUp: %v", err)
	}
	if err := star.SetNodeLinkUp(1, true); err != nil {
		t.Fatalf("star node-link repair: %v", err)
	}

	fabric := New(WithTopology(ringTopology(t)), WithHDPS(HSDPS()))
	if err := fabric.SetNodeLinkUp(1, false); !errors.Is(err, ErrNoNodeLinks) {
		t.Fatalf("fabric SetNodeLinkUp: %v, want ErrNoNodeLinks", err)
	}
}

// TestFailoverSwitchDownSinksLose verifies a dead switch takes its homed
// nodes with it: a channel sunk there is lost no matter the policy,
// while a channel merely transiting the switch reroutes.
func TestFailoverSwitchDownSinksLose(t *testing.T) {
	net := New(WithTopology(ringTopology(t)), WithHDPS(HADPS()), WithFailurePolicy(FailDegrade))
	transit, err := net.Establish(ChannelSpec{Src: 1, Dst: 5, C: 2, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	sunk, err := net.Establish(ChannelSpec{Src: 1, Dst: 4, C: 2, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Node 4 homes on switch 1; the 1→5 route transits it (sw0→sw1→sw2).
	rep, err := net.SetSwitchUp(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 2 {
		t.Fatalf("affected = %d, want 2", rep.Affected)
	}
	if rep.Count(Lost) != 1 || rep.Count(Rerouted) != 1 {
		t.Fatalf("report = %+v, want 1 lost (dead sink) + 1 rerouted", rep)
	}
	if err := sunk.Release(); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("dead-sink channel release: %v, want ErrChannelClosed", err)
	}
	if got := len(transit.Budgets()); got != 4 {
		t.Fatalf("transit hops = %d, want 4 (sw0→sw3→sw2 detour)", got)
	}
}
