package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// TestChannelIDWide32 is the regression test for the 16-bit channel-ID
// truncation: IDs above 65535 must survive both wire encodings intact.
// The chosen ID truncates to a small plausible value under the old
// uint16 schema, so any reintroduced narrowing fails loudly here.
func TestChannelIDWide32(t *testing.T) {
	const id = uint32(1)<<16 + 5 // uint16(id) == 5: truncation would alias channel 5

	// JSON: the watch feed is where the truncation bug lived.
	ev := WatchEvent{Type: EventAdmit, ID: id}
	buf, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var got WatchEvent
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != id {
		t.Fatalf("watch event ID = %d after JSON round trip, want %d", got.ID, id)
	}

	// Binary framing, v2: ChannelReply, Release and Reconfigure all
	// carry 32-bit IDs.
	frame := AppendChannelReply(nil, 7, ChannelReply{ID: id, GuaranteedDelay: 9, Budgets: []int64{4, 5}})
	f, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	rep, err := DecodeChannelReply(f.Payload)
	if err != nil || rep.ID != id {
		t.Fatalf("ChannelReply round trip = {ID %d}, %v; want ID %d", rep.ID, err, id)
	}

	frame = AppendRelease(nil, 8, id)
	f, _, err = ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	rid, err := DecodeRelease(f.Payload)
	if err != nil || rid != id {
		t.Fatalf("Release round trip = %d, %v; want %d", rid, err, id)
	}

	frame = AppendReconfigure(nil, 9, ReconfigureRequest{ID: id, C: 1, P: 2, D: 3})
	f, _, err = ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	rc, err := DecodeReconfigure(f.Payload)
	if err != nil || rc.ID != id {
		t.Fatalf("Reconfigure round trip = {ID %d}, %v; want ID %d", rc.ID, err, id)
	}
}
