package wire

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/rtether"
)

// randMulticastSpec draws a random (not necessarily valid) multicast
// spec — the wire layer must be lossless for anything the API layer can
// construct, valid or not.
func randMulticastSpec(rng *rand.Rand) rtether.MulticastSpec {
	sinks := make([]rtether.NodeID, rng.Intn(6)+1)
	for i := range sinks {
		sinks[i] = rtether.NodeID(rng.Intn(1 << 16))
	}
	return rtether.MulticastSpec{
		Src:   rtether.NodeID(rng.Intn(1 << 16)),
		Sinks: sinks,
		C:     rng.Int63n(1 << 20),
		P:     rng.Int63n(1 << 20),
		D:     rng.Int63n(1 << 20),
	}
}

// TestMulticastSpecJSONRoundTripProperty encodes and decodes seeded
// random multicast specs and requires bit-for-bit equality.
func TestMulticastSpecJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		orig := randMulticastSpec(rng)
		buf, err := json.Marshal(FromMulticastSpec(orig))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		var decoded MulticastSpec
		if err := json.Unmarshal(buf, &decoded); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := decoded.MulticastSpec(); !reflect.DeepEqual(got, orig) {
			t.Fatalf("iter %d: round trip changed the spec:\n  got  %+v\n  want %+v", i, got, orig)
		}
	}
}

// TestMulticastSpecWireShape pins the scenario-format field names.
func TestMulticastSpecWireShape(t *testing.T) {
	spec := rtether.MulticastSpec{Src: 1, Sinks: []rtether.NodeID{2, 3}, C: 3, P: 100, D: 40}
	buf, err := json.Marshal(FromMulticastSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"src":1,"sinks":[2,3],"c":3,"p":100,"d":40}`
	if string(buf) != want {
		t.Errorf("wire multicast spec = %s, want %s", buf, want)
	}
}

// TestBranchAdmissionErrorJSONRoundTripProperty fuzzes the
// branch-annotated rejection through encode/decode: every field of
// *rtether.AdmissionError — including Branch and Sink — must survive
// bit for bit.
func TestBranchAdmissionErrorJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dirs := []rtether.LinkDir{rtether.DirUp, rtether.DirDown, rtether.DirTrunk}
	for i := 0; i < 500; i++ {
		orig := &rtether.AdmissionError{
			Spec: rtether.ChannelSpec{
				Src: rtether.NodeID(rng.Intn(1 << 16)),
				Dst: rtether.NodeID(rng.Intn(1 << 16)),
				C:   rng.Int63n(1 << 20),
				P:   rng.Int63n(1 << 20),
				D:   rng.Int63n(1 << 20),
			},
			Link:        fmt.Sprintf("sw%d→sw%d", rng.Intn(8), rng.Intn(8)),
			Node:        rtether.NodeID(rng.Intn(1 << 16)),
			Dir:         dirs[rng.Intn(len(dirs))],
			Hop:         rng.Intn(10) - 1,
			Utilization: float64(rng.Intn(20000)) / 10000,
			Slack:       rng.Int63n(2000) - 1000,
			Reason:      fmt.Sprintf("infeasible(demand) at t=%d", rng.Intn(1000)),
			Branch:      rng.Intn(8) - 1,
			Sink:        rtether.NodeID(rng.Intn(1 << 16)),
		}
		buf, err := json.Marshal(FromAdmissionError(orig))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		var decoded AdmissionError
		if err := json.Unmarshal(buf, &decoded); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := decoded.AdmissionError(); *got != *orig {
			t.Fatalf("iter %d: round trip changed the error:\n  got  %+v\n  want %+v", i, got, orig)
		}
	}
}

// TestBranchErrorThroughEnvelope checks the full error-envelope path a
// client exercises: a multicast rejection wrapped in the wire envelope
// decodes back to an identical typed error.
func TestBranchErrorThroughEnvelope(t *testing.T) {
	orig := &rtether.AdmissionError{
		Spec:        rtether.ChannelSpec{Src: 4, Dst: 2, C: 3, P: 10, D: 12},
		Link:        "link(3,down)",
		Node:        3,
		Dir:         rtether.DirDown,
		Hop:         1,
		Utilization: 0.9,
		Slack:       -3,
		Reason:      "infeasible(demand) at t=6 (h=9), U=0.9000",
		Branch:      1,
		Sink:        3,
	}
	env := Envelope{Err: &Error{
		Code:      CodeInfeasible,
		Message:   orig.Error(),
		Admission: FromAdmissionError(orig),
	}}
	buf, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Envelope
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Err == nil || decoded.Err.Admission == nil {
		t.Fatalf("envelope lost the admission error: %s", buf)
	}
	if got := decoded.Err.Admission.AdmissionError(); *got != *orig {
		t.Fatalf("envelope round trip changed the error:\n  got  %+v\n  want %+v", got, orig)
	}
}
