package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeBinary throws arbitrary bytes at every payload decoder and
// the frame reader: none may panic, and whatever decodes successfully
// must re-encode to an identical payload (the codec has no redundant
// representations).
func FuzzDecodeBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendEstablish(nil, 1, Spec{Src: 1, Dst: 2, C: 3, P: 10, D: 5}))
	f.Add(AppendMulticast(nil, 2, MulticastSpec{Src: 1, Sinks: []uint16{2, 3}, C: 1, P: 8, D: 6}))
	f.Add(AppendEstablishAll(nil, 3, []Spec{{Src: 1, Dst: 2, C: 1, P: 4, D: 2}}))
	f.Add(AppendError(nil, 4, &Error{Code: CodeInfeasible, Message: "m", Admission: &AdmissionError{Link: "l", Dir: "up"}}))
	f.Add(AppendChannelList(nil, 5, EstablishAllReply{Channels: []ChannelReply{{ID: 1, Budgets: []int64{3, 4}}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame reader must survive arbitrary prefixes.
		if fr, _, err := ReadFrame(bytes.NewReader(data), nil); err == nil {
			payload := fr.Payload
			if s, err := DecodeEstablish(payload); err == nil {
				if got := AppendEstablish(nil, fr.ReqID, s); !bytes.Equal(got[FrameHeaderLen:], payload) {
					t.Errorf("establish re-encode diverges: %x vs %x", got[FrameHeaderLen:], payload)
				}
			}
			if s, err := DecodeMulticast(payload); err == nil {
				if got := AppendMulticast(nil, fr.ReqID, s); !bytes.Equal(got[FrameHeaderLen:], payload) {
					t.Errorf("multicast re-encode diverges: %x vs %x", got[FrameHeaderLen:], payload)
				}
			}
			if specs, err := DecodeEstablishAll(payload); err == nil {
				if got := AppendEstablishAll(nil, fr.ReqID, specs); !bytes.Equal(got[FrameHeaderLen:], payload) {
					t.Errorf("establishAll re-encode diverges: %x vs %x", got[FrameHeaderLen:], payload)
				}
			}
			if r, err := DecodeChannelList(payload); err == nil {
				if got := AppendChannelList(nil, fr.ReqID, r); !bytes.Equal(got[FrameHeaderLen:], payload) {
					t.Errorf("channel list re-encode diverges: %x vs %x", got[FrameHeaderLen:], payload)
				}
			}
			if e, err := DecodeError(payload); err == nil {
				if got := AppendError(nil, fr.ReqID, e); !bytes.Equal(got[FrameHeaderLen:], payload) {
					t.Errorf("error re-encode diverges: %x vs %x", got[FrameHeaderLen:], payload)
				}
			}
		}
		// Raw payload decoders (no frame header) must never panic either.
		_, _ = DecodeEstablish(data)
		_, _ = DecodeEstablishAll(data)
		_, _ = DecodeMulticast(data)
		_, _ = DecodeRelease(data)
		_, _ = DecodeReconfigure(data)
		_, _ = DecodeChannelReply(data)
		_, _ = DecodeChannelList(data)
		_, _ = DecodeStatsReply(data)
		_, _ = DecodeError(data)
	})
}
