// Package wire defines the JSON wire schema of the rtetherd admission
// service: the request/response bodies of every /v1 endpoint, the error
// envelope, and the /v1/watch event stream. It is shared by the server
// (internal/server), the typed Go client (rtether/client) and the load
// generator (cmd/rtload), so the schema exists in exactly one place;
// docs/server.md is the prose reference for the same contract.
//
// All channel quantities use the scenario-format field names (src, dst,
// c, p, d — see docs/scenario-format.md) and all times are integer
// timeslots, exactly as in the rtether API. Conversions to and from the
// rtether types are lossless: in particular a feasibility rejection's
// full *rtether.AdmissionError — link, direction, hop, utilization,
// slack, reason — survives the encode/decode round trip bit for bit.
package wire

import (
	"fmt"

	"repro/rtether"
)

// Spec is the wire form of rtether.ChannelSpec.
type Spec struct {
	Src uint16 `json:"src"`
	Dst uint16 `json:"dst"`
	C   int64  `json:"c"`
	P   int64  `json:"p"`
	D   int64  `json:"d"`
}

// FromSpec converts a rtether.ChannelSpec to its wire form.
func FromSpec(s rtether.ChannelSpec) Spec {
	return Spec{Src: uint16(s.Src), Dst: uint16(s.Dst), C: s.C, P: s.P, D: s.D}
}

// ChannelSpec converts the wire form back to a rtether.ChannelSpec.
func (s Spec) ChannelSpec() rtether.ChannelSpec {
	return rtether.ChannelSpec{
		Src: rtether.NodeID(s.Src), Dst: rtether.NodeID(s.Dst),
		C: s.C, P: s.P, D: s.D,
	}
}

// AdmissionError is the wire form of *rtether.AdmissionError, carried
// inside the error envelope of a feasibility rejection.
type AdmissionError struct {
	Spec        Spec    `json:"spec"`
	Link        string  `json:"link"`
	Node        uint16  `json:"node"`
	Dir         string  `json:"dir"` // "up" | "down" | "trunk"
	Hop         int     `json:"hop"`
	Utilization float64 `json:"utilization"`
	Slack       int64   `json:"slack"`
	Reason      string  `json:"reason"`
}

// FromAdmissionError converts a typed rejection to its wire form.
func FromAdmissionError(e *rtether.AdmissionError) *AdmissionError {
	return &AdmissionError{
		Spec:        FromSpec(e.Spec),
		Link:        e.Link,
		Node:        uint16(e.Node),
		Dir:         e.Dir.String(),
		Hop:         e.Hop,
		Utilization: e.Utilization,
		Slack:       e.Slack,
		Reason:      e.Reason,
	}
}

// AdmissionError converts the wire form back to the typed rejection the
// in-process API returns, so remote callers can errors.As / errors.Is
// against it exactly as local ones do.
func (w *AdmissionError) AdmissionError() *rtether.AdmissionError {
	return &rtether.AdmissionError{
		Spec:        w.Spec.ChannelSpec(),
		Link:        w.Link,
		Node:        rtether.NodeID(w.Node),
		Dir:         dirFromString(w.Dir),
		Hop:         w.Hop,
		Utilization: w.Utilization,
		Slack:       w.Slack,
		Reason:      w.Reason,
	}
}

// dirFromString parses a wire direction; unknown strings map to DirUp
// (the zero value), matching how an unversioned peer would degrade.
func dirFromString(s string) rtether.LinkDir {
	switch s {
	case "down":
		return rtether.DirDown
	case "trunk":
		return rtether.DirTrunk
	default:
		return rtether.DirUp
	}
}

// Error codes of the wire error envelope. docs/server.md maps each code
// to its HTTP status.
const (
	// CodeBadRequest marks a malformed request body.
	CodeBadRequest = "bad_request"
	// CodeInvalidSpec marks a channel spec that fails validation.
	CodeInvalidSpec = "invalid_spec"
	// CodeNoRoute marks endpoints with no route between them.
	CodeNoRoute = "no_route"
	// CodeInfeasible marks a feasibility rejection; Admission is set.
	CodeInfeasible = "infeasible"
	// CodeUnknownChannel marks an operation on a channel ID that is not
	// established.
	CodeUnknownChannel = "unknown_channel"
	// CodeClosed marks a request against a draining/closed daemon.
	CodeClosed = "closed"
	// CodeInternal marks an unclassified server-side failure.
	CodeInternal = "internal"
)

// Error is the wire error envelope: every non-2xx response carries
// {"error": {...}}. Admission is set if and only if Code is
// CodeInfeasible.
type Error struct {
	Code      string          `json:"code"`
	Message   string          `json:"message"`
	Admission *AdmissionError `json:"admission,omitempty"`
}

// Error implements error for transport through Go call chains.
func (e *Error) Error() string {
	return fmt.Sprintf("rtetherd: %s: %s", e.Code, e.Message)
}

// Envelope is the top-level shape of an error response body.
type Envelope struct {
	Err *Error `json:"error"`
}

// EstablishRequest asks for one RT channel (POST /v1/establish). The
// server may coalesce concurrent establish requests into one merged
// admission pass; the verdict each caller receives is its own.
type EstablishRequest struct {
	Spec Spec `json:"spec"`
}

// ChannelReply describes one established channel: its network-unique
// ID, committed per-hop deadline budgets (summing to D) and delivery
// guarantee T_max.
type ChannelReply struct {
	ID              uint16  `json:"id"`
	Budgets         []int64 `json:"budgets"`
	GuaranteedDelay int64   `json:"guaranteedDelay"`
}

// EstablishAllRequest asks for an atomic all-or-nothing batch
// (POST /v1/establishAll): either every spec is admitted or none is.
type EstablishAllRequest struct {
	Specs []Spec `json:"specs"`
}

// EstablishAllReply lists the established channels in spec order.
type EstablishAllReply struct {
	Channels []ChannelReply `json:"channels"`
}

// ReleaseRequest frees one channel (POST /v1/release).
type ReleaseRequest struct {
	ID uint16 `json:"id"`
}

// ReleaseReply is the (empty) success body of a release.
type ReleaseReply struct{}

// ReconfigureRequest replaces a channel's parameters
// (POST /v1/reconfigure): the old reservation is released and a new one
// requested with the non-zero overrides applied (0 = keep). The two
// steps are not one atomic decision — the freed capacity is briefly up
// for grabs, so a concurrent establish can win it and make even a no-op
// reconfiguration fail. As with the scenario format's reconfigure
// event, a rejected reconfiguration leaves the channel released — the
// bandwidth was already given up.
type ReconfigureRequest struct {
	ID uint16 `json:"id"`
	C  int64  `json:"c,omitempty"`
	P  int64  `json:"p,omitempty"`
	D  int64  `json:"d,omitempty"`
}

// ChannelInfo is one established channel in a listing.
type ChannelInfo struct {
	ID      uint16  `json:"id"`
	Spec    Spec    `json:"spec"`
	Budgets []int64 `json:"budgets"`
}

// ChannelsReply lists established channels (GET /v1/channels) in
// establishment order.
type ChannelsReply struct {
	Channels []ChannelInfo `json:"channels"`
}

// DelaySummary is the wire form of a delay distribution.
type DelaySummary struct {
	Count  int64   `json:"count"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	P50    int64   `json:"p50"`
	P90    int64   `json:"p90"`
	P99    int64   `json:"p99"`
}

// MetricsReply is one channel's delivery measurements
// (GET /v1/metrics?id=N). A channel that has not delivered or
// missed any frame yet reports all-zero metrics.
type MetricsReply struct {
	ID        uint16       `json:"id"`
	Delivered int64        `json:"delivered"`
	Misses    int64        `json:"misses"`
	Delay     DelaySummary `json:"delay"`
}

// FromMetrics converts a measurement snapshot to its wire form. m may
// be nil (nothing measured yet).
func FromMetrics(id rtether.ChannelID, m *rtether.ChannelMetrics) MetricsReply {
	rep := MetricsReply{ID: uint16(id)}
	if m == nil {
		return rep
	}
	rep.Delivered = m.Delivered
	rep.Misses = m.Misses
	if d := m.Delays; d != nil {
		rep.Delay = DelaySummary{
			Count:  d.Count(),
			Min:    d.Min(),
			Max:    d.Max(),
			Mean:   d.Mean(),
			StdDev: d.StdDev(),
			P50:    d.Percentile(50),
			P90:    d.Percentile(90),
			P99:    d.Percentile(99),
		}
	}
	return rep
}

// ServerStats counts daemon-side activity: how much the coalescing
// front-end merged and what the server is carrying.
type ServerStats struct {
	// Establishes counts establish requests that entered the coalescer.
	Establishes int64 `json:"establishes"`
	// Flights counts merged admission passes the coalescer dispatched;
	// Establishes/Flights is the effective merge factor.
	Flights int64 `json:"flights"`
	// MaxMerged is the largest number of establish requests merged into
	// one flight so far.
	MaxMerged int64 `json:"maxMerged"`
	// Watchers is the number of currently connected /v1/watch streams.
	Watchers int64 `json:"watchers"`
	// Channels is the number of currently established channels.
	Channels int64 `json:"channels"`
}

// StatsReply is the body of GET /v1/stats: the network's admission
// counters (field names as in rtether.AdmissionStats) plus the daemon's
// own counters.
type StatsReply struct {
	Admission rtether.AdmissionStats `json:"admission"`
	Server    ServerStats            `json:"server"`
}

// Watch event types.
const (
	// EventAdmit reports an accepted establishment.
	EventAdmit = "admit"
	// EventReject reports a rejected establishment (Error is set; for
	// feasibility rejections Error.Admission carries the diagnostics).
	EventReject = "reject"
	// EventRelease reports a released channel.
	EventRelease = "release"
)

// WatchEvent is one line of the /v1/watch newline-delimited JSON feed.
type WatchEvent struct {
	// Seq is the event's position in the daemon's total event order;
	// consecutive events on one stream have increasing Seq, and gaps
	// mean the stream fell behind and was dropped by the server.
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	// ID is the subject channel (admit, release).
	ID uint16 `json:"id,omitempty"`
	// Spec is the requested channel (admit, reject).
	Spec *Spec `json:"spec,omitempty"`
	// Budgets are the committed per-hop budgets (admit).
	Budgets []int64 `json:"budgets,omitempty"`
	// Error carries the rejection (reject).
	Error *Error `json:"error,omitempty"`
}
