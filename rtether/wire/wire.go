// Package wire defines the JSON wire schema of the rtetherd admission
// service: the request/response bodies of every /v1 endpoint, the error
// envelope, and the /v1/watch event stream. It is shared by the server
// (internal/server), the typed Go client (rtether/client) and the load
// generator (cmd/rtload), so the schema exists in exactly one place;
// docs/server.md is the prose reference for the same contract.
//
// All channel quantities use the scenario-format field names (src, dst,
// c, p, d — see docs/scenario-format.md) and all times are integer
// timeslots, exactly as in the rtether API. Conversions to and from the
// rtether types are lossless: in particular a feasibility rejection's
// full *rtether.AdmissionError — link, direction, hop, utilization,
// slack, reason — survives the encode/decode round trip bit for bit.
package wire

import (
	"fmt"

	"repro/rtether"
)

// Spec is the wire form of rtether.ChannelSpec.
type Spec struct {
	Src uint16 `json:"src"`
	Dst uint16 `json:"dst"`
	C   int64  `json:"c"`
	P   int64  `json:"p"`
	D   int64  `json:"d"`
	// Priority orders channels for the survivability policy ladder
	// (higher is more important; 0, the default, is lowest). Absent on
	// the wire when zero, so pre-priority peers interoperate unchanged.
	Priority int32 `json:"priority,omitempty"`
}

// FromSpec converts a rtether.ChannelSpec to its wire form.
func FromSpec(s rtether.ChannelSpec) Spec {
	return Spec{Src: uint16(s.Src), Dst: uint16(s.Dst), C: s.C, P: s.P, D: s.D, Priority: s.Priority}
}

// ChannelSpec converts the wire form back to a rtether.ChannelSpec.
func (s Spec) ChannelSpec() rtether.ChannelSpec {
	return rtether.ChannelSpec{
		Src: rtether.NodeID(s.Src), Dst: rtether.NodeID(s.Dst),
		C: s.C, P: s.P, D: s.D, Priority: s.Priority,
	}
}

// MulticastSpec is the wire form of rtether.MulticastSpec: one source,
// the ordered sink set, and a single {c, p, d} contract shared by the
// whole distribution tree.
type MulticastSpec struct {
	Src   uint16   `json:"src"`
	Sinks []uint16 `json:"sinks"`
	C     int64    `json:"c"`
	P     int64    `json:"p"`
	D     int64    `json:"d"`
	// Priority is as in Spec: survivability ordering, 0 = lowest.
	Priority int32 `json:"priority,omitempty"`
}

// FromMulticastSpec converts a rtether.MulticastSpec to its wire form.
func FromMulticastSpec(s rtether.MulticastSpec) MulticastSpec {
	sinks := make([]uint16, len(s.Sinks))
	for i, n := range s.Sinks {
		sinks[i] = uint16(n)
	}
	return MulticastSpec{Src: uint16(s.Src), Sinks: sinks, C: s.C, P: s.P, D: s.D, Priority: s.Priority}
}

// MulticastSpec converts the wire form back to a rtether.MulticastSpec.
func (s MulticastSpec) MulticastSpec() rtether.MulticastSpec {
	sinks := make([]rtether.NodeID, len(s.Sinks))
	for i, n := range s.Sinks {
		sinks[i] = rtether.NodeID(n)
	}
	return rtether.MulticastSpec{Src: rtether.NodeID(s.Src), Sinks: sinks, C: s.C, P: s.P, D: s.D, Priority: s.Priority}
}

// AdmissionError is the wire form of *rtether.AdmissionError, carried
// inside the error envelope of a feasibility rejection.
type AdmissionError struct {
	Spec        Spec    `json:"spec"`
	Link        string  `json:"link"`
	Node        uint16  `json:"node"`
	Dir         string  `json:"dir"` // "up" | "down" | "trunk"
	Hop         int     `json:"hop"`
	Utilization float64 `json:"utilization"`
	Slack       int64   `json:"slack"`
	Reason      string  `json:"reason"`
	// Branch and Sink attribute a multicast rejection to the failing
	// tree branch (-1 / 0 on unicast rejections); see
	// rtether.AdmissionError.
	Branch int    `json:"branch"`
	Sink   uint16 `json:"sink"`
}

// FromAdmissionError converts a typed rejection to its wire form.
func FromAdmissionError(e *rtether.AdmissionError) *AdmissionError {
	return &AdmissionError{
		Spec:        FromSpec(e.Spec),
		Link:        e.Link,
		Node:        uint16(e.Node),
		Dir:         e.Dir.String(),
		Hop:         e.Hop,
		Utilization: e.Utilization,
		Slack:       e.Slack,
		Reason:      e.Reason,
		Branch:      e.Branch,
		Sink:        uint16(e.Sink),
	}
}

// AdmissionError converts the wire form back to the typed rejection the
// in-process API returns, so remote callers can errors.As / errors.Is
// against it exactly as local ones do.
func (w *AdmissionError) AdmissionError() *rtether.AdmissionError {
	return &rtether.AdmissionError{
		Spec:        w.Spec.ChannelSpec(),
		Link:        w.Link,
		Node:        rtether.NodeID(w.Node),
		Dir:         dirFromString(w.Dir),
		Hop:         w.Hop,
		Utilization: w.Utilization,
		Slack:       w.Slack,
		Reason:      w.Reason,
		Branch:      w.Branch,
		Sink:        rtether.NodeID(w.Sink),
	}
}

// dirFromString parses a wire direction; unknown strings map to DirUp
// (the zero value), matching how an unversioned peer would degrade.
func dirFromString(s string) rtether.LinkDir {
	switch s {
	case "down":
		return rtether.DirDown
	case "trunk":
		return rtether.DirTrunk
	default:
		return rtether.DirUp
	}
}

// Error codes of the wire error envelope. docs/server.md maps each code
// to its HTTP status.
const (
	// CodeBadRequest marks a malformed request body.
	CodeBadRequest = "bad_request"
	// CodeInvalidSpec marks a channel spec that fails validation.
	CodeInvalidSpec = "invalid_spec"
	// CodeNoRoute marks endpoints with no route between them.
	CodeNoRoute = "no_route"
	// CodeInfeasible marks a feasibility rejection; Admission is set.
	CodeInfeasible = "infeasible"
	// CodeUnknownChannel marks an operation on a channel ID that is not
	// established.
	CodeUnknownChannel = "unknown_channel"
	// CodeUnknownTopic marks an operation on a topic that was never
	// created.
	CodeUnknownTopic = "unknown_topic"
	// CodeDuplicateTopic marks creating a topic whose name is taken.
	CodeDuplicateTopic = "duplicate_topic"
	// CodeClosed marks a request against a draining/closed daemon.
	CodeClosed = "closed"
	// CodeInternal marks an unclassified server-side failure.
	CodeInternal = "internal"
)

// Error is the wire error envelope: every non-2xx response carries
// {"error": {...}}. Admission is set if and only if Code is
// CodeInfeasible.
type Error struct {
	Code      string          `json:"code"`
	Message   string          `json:"message"`
	Admission *AdmissionError `json:"admission,omitempty"`
}

// Error implements error for transport through Go call chains.
func (e *Error) Error() string {
	return fmt.Sprintf("rtetherd: %s: %s", e.Code, e.Message)
}

// Envelope is the top-level shape of an error response body.
type Envelope struct {
	Err *Error `json:"error"`
}

// EstablishRequest asks for one RT channel (POST /v1/establish). The
// server may coalesce concurrent establish requests into one merged
// admission pass; the verdict each caller receives is its own.
type EstablishRequest struct {
	Spec Spec `json:"spec"`
}

// ChannelReply describes one established channel: its network-unique
// ID, committed per-hop deadline budgets (summing to D) and delivery
// guarantee T_max.
type ChannelReply struct {
	ID              uint32  `json:"id"`
	Budgets         []int64 `json:"budgets"`
	GuaranteedDelay int64   `json:"guaranteedDelay"`
}

// EstablishMulticastRequest asks for one multicast RT channel
// (POST /v1/multicast): the whole distribution tree is admitted
// atomically, and a feasibility rejection's AdmissionError names the
// failing branch and sink.
type EstablishMulticastRequest struct {
	Spec MulticastSpec `json:"spec"`
}

// EstablishAllRequest asks for an atomic all-or-nothing batch
// (POST /v1/establishAll): either every spec is admitted or none is.
type EstablishAllRequest struct {
	Specs []Spec `json:"specs"`
}

// EstablishAllReply lists the established channels in spec order.
type EstablishAllReply struct {
	Channels []ChannelReply `json:"channels"`
}

// ReleaseRequest frees one channel (POST /v1/release).
type ReleaseRequest struct {
	ID uint32 `json:"id"`
}

// ReleaseReply is the (empty) success body of a release.
type ReleaseReply struct{}

// ReconfigureRequest replaces a channel's parameters
// (POST /v1/reconfigure): the old reservation is released and a new one
// requested with the non-zero overrides applied (0 = keep). The two
// steps are not one atomic decision — the freed capacity is briefly up
// for grabs, so a concurrent establish can win it and make even a no-op
// reconfiguration fail. As with the scenario format's reconfigure
// event, a rejected reconfiguration leaves the channel released — the
// bandwidth was already given up.
type ReconfigureRequest struct {
	ID uint32 `json:"id"`
	C  int64  `json:"c,omitempty"`
	P  int64  `json:"p,omitempty"`
	D  int64  `json:"d,omitempty"`
}

// ChannelInfo is one established channel in a listing.
type ChannelInfo struct {
	ID      uint32  `json:"id"`
	Spec    Spec    `json:"spec"`
	Budgets []int64 `json:"budgets"`
}

// ChannelsReply lists established channels (GET /v1/channels) in
// establishment order.
type ChannelsReply struct {
	Channels []ChannelInfo `json:"channels"`
}

// DelaySummary is the wire form of a delay distribution.
type DelaySummary struct {
	Count  int64   `json:"count"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	P50    int64   `json:"p50"`
	P90    int64   `json:"p90"`
	P99    int64   `json:"p99"`
}

// MetricsReply is one channel's delivery measurements
// (GET /v1/metrics?id=N). A channel that has not delivered or
// missed any frame yet reports all-zero metrics.
type MetricsReply struct {
	ID        uint32       `json:"id"`
	Delivered int64        `json:"delivered"`
	Misses    int64        `json:"misses"`
	Delay     DelaySummary `json:"delay"`
}

// FromMetrics converts a measurement snapshot to its wire form. m may
// be nil (nothing measured yet).
func FromMetrics(id rtether.ChannelID, m *rtether.ChannelMetrics) MetricsReply {
	rep := MetricsReply{ID: uint32(id)}
	if m == nil {
		return rep
	}
	rep.Delivered = m.Delivered
	rep.Misses = m.Misses
	if d := m.Delays; d != nil {
		rep.Delay = DelaySummary{
			Count:  d.Count(),
			Min:    d.Min(),
			Max:    d.Max(),
			Mean:   d.Mean(),
			StdDev: d.StdDev(),
			P50:    d.Percentile(50),
			P90:    d.Percentile(90),
			P99:    d.Percentile(99),
		}
	}
	return rep
}

// ServerStats counts daemon-side activity: how much the coalescing
// front-end merged and what the server is carrying.
type ServerStats struct {
	// Establishes counts establish requests that entered the coalescer.
	Establishes int64 `json:"establishes"`
	// Flights counts merged admission passes the coalescer dispatched;
	// Establishes/Flights is the effective merge factor.
	Flights int64 `json:"flights"`
	// MaxMerged is the largest number of establish requests merged into
	// one flight so far.
	MaxMerged int64 `json:"maxMerged"`
	// Watchers is the number of currently connected /v1/watch streams.
	Watchers int64 `json:"watchers"`
	// Channels is the number of currently established channels.
	Channels int64 `json:"channels"`
}

// StatsReply is the body of GET /v1/stats: the network's admission
// counters (field names as in rtether.AdmissionStats) plus the daemon's
// own counters.
type StatsReply struct {
	Admission rtether.AdmissionStats `json:"admission"`
	Server    ServerStats            `json:"server"`
}

// Watch event types.
const (
	// EventAdmit reports an accepted establishment.
	EventAdmit = "admit"
	// EventReject reports a rejected establishment (Error is set; for
	// feasibility rejections Error.Admission carries the diagnostics).
	EventReject = "reject"
	// EventRelease reports a released channel.
	EventRelease = "release"
	// EventReroute reports a channel re-admitted on a new route after a
	// failure, under its original contract (Cause names the failure).
	EventReroute = "reroute"
	// EventDegrade reports a channel re-admitted after a failure with a
	// relaxed deadline (NewD).
	EventDegrade = "degrade"
	// EventPreempt reports a lower-priority channel evicted during
	// failure recovery to make room for a higher-priority one.
	EventPreempt = "preempt"
	// EventLost reports a channel the residual network could not keep
	// after a failure (Error carries the final admission error).
	EventLost = "lost"
	// EventHeartbeat is the periodic liveness beacon of the watch feed
	// (rtetherd -heartbeat): its Seq is the feed's high-water mark and
	// Channels the established-channel count at emission, so a consumer
	// can detect a stalled stream and a silently idle daemon alike.
	EventHeartbeat = "heartbeat"
)

// WatchEvent is one line of the /v1/watch newline-delimited JSON feed.
type WatchEvent struct {
	// Seq is the event's position in the daemon's total event order;
	// consecutive events on one stream have increasing Seq, and gaps
	// mean the stream fell behind and was dropped by the server.
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	// ID is the subject channel (admit, release, and every failure
	// outcome — survivors keep their ID across a reroute). Channel IDs
	// are 32 bits on the wire; they are never truncated to the simulated
	// frame format's 16-bit field here.
	ID uint32 `json:"id,omitempty"`
	// Spec is the requested channel (admit, reject) or the committed
	// contract after recovery (failure outcomes).
	Spec *Spec `json:"spec,omitempty"`
	// Budgets are the committed per-hop budgets (admit).
	Budgets []int64 `json:"budgets,omitempty"`
	// Error carries the rejection (reject, lost).
	Error *Error `json:"error,omitempty"`
	// Cause names the failed or repaired element behind a failure
	// outcome, e.g. "trunk 0-1 down" or "switch 2 down".
	Cause string `json:"cause,omitempty"`
	// NewD is the relaxed deadline committed for a degrade outcome.
	NewD int64 `json:"newD,omitempty"`
	// Channels is the established-channel count carried by heartbeat
	// events (absent elsewhere).
	Channels int `json:"channels,omitempty"`
}

// FailRequest changes topology health (POST /v1/fail): kind "link"
// fails (up=false) or repairs (up=true) the trunk between switches A
// and B; kind "switch" fails or repairs the switch S with every trunk
// and node attachment it carries. Multi-switch topologies only.
type FailRequest struct {
	Kind string `json:"kind"` // "link" | "switch"
	A    uint16 `json:"a,omitempty"`
	B    uint16 `json:"b,omitempty"`
	S    uint16 `json:"s,omitempty"`
	Up   bool   `json:"up"`
}

// FailOutcome is one channel's fate in a FailReply.
type FailOutcome struct {
	ID      uint32 `json:"id"`
	Outcome string `json:"outcome"` // "rerouted" | "degraded" | "preempted" | "lost"
	NewD    int64  `json:"newD,omitempty"`
}

// FailReply summarizes the recovery pass a failure triggered
// (rtether.FailoverReport): how many established channels the failed
// element carried and what became of each. Repairs report zero
// affected channels.
type FailReply struct {
	Affected int           `json:"affected"`
	Outcomes []FailOutcome `json:"outcomes,omitempty"`
}

// CreateTopicRequest declares a pub/sub topic (POST /v1/topics): a
// named publisher endpoint with the RT contract every delivery will
// honor. Declaring a topic reserves nothing — the multicast channel
// materializes with the first subscriber and is re-admitted as the
// subscriber set changes.
type CreateTopicRequest struct {
	Name string `json:"name"`
	Src  uint16 `json:"src"`
	C    int64  `json:"c"`
	P    int64  `json:"p"`
	D    int64  `json:"d"`
}

// TopicInfo is one topic in a listing (GET /v1/topics).
type TopicInfo struct {
	Name string `json:"name"`
	Src  uint16 `json:"src"`
	C    int64  `json:"c"`
	P    int64  `json:"p"`
	D    int64  `json:"d"`
	// Subscribers is the current subscriber node set in join order.
	Subscribers []uint16 `json:"subscribers,omitempty"`
	// ChannelID is the live multicast channel carrying the topic; 0
	// while the topic has no subscribers (no reservation exists).
	ChannelID uint32 `json:"channelId,omitempty"`
	// Published counts messages published to the topic so far.
	Published uint64 `json:"published"`
}

// TopicsReply lists declared topics sorted by name.
type TopicsReply struct {
	Topics []TopicInfo `json:"topics"`
}

// PublishRequest pushes one message to a topic
// (POST /v1/topics/publish). The payload is delivered to every current
// subscriber's feed.
type PublishRequest struct {
	Topic   string `json:"topic"`
	Payload string `json:"payload"`
}

// PublishReply acknowledges a publish with the message's sequence
// number in the topic's total order and the subscriber count it was
// fanned out to.
type PublishReply struct {
	Seq       uint64 `json:"seq"`
	Delivered int    `json:"delivered"`
}

// TopicEvent is one line of a topic subscription's newline-delimited
// JSON feed (GET /v1/topics/subscribe?topic=T&node=N). Seq is the
// message's position in the topic's publish order; like /v1/watch, a
// gap means the subscriber fell behind and the server dropped the
// stream.
type TopicEvent struct {
	Seq     uint64 `json:"seq"`
	Topic   string `json:"topic"`
	Payload string `json:"payload"`
}

// HealthzReply is the body of GET /v1/healthz: liveness plus a small
// operational summary, cheap enough for tight probe loops.
type HealthzReply struct {
	Status     string  `json:"status"` // always "ok" on a 200
	UptimeSecs float64 `json:"uptimeSecs"`
	GoVersion  string  `json:"goVersion"`
	// Build identifies the binary (main module version, VCS revision
	// when embedded).
	Build string `json:"build,omitempty"`
	// WatchSeq is the high-water sequence number of the /v1/watch event
	// order (0 = no events yet).
	WatchSeq uint64 `json:"watchSeq"`
	// Channels is the number of currently established channels.
	Channels int `json:"channels"`
	// Topics is the number of declared pub/sub topics.
	Topics int `json:"topics"`
}

// SpanInfo is one admission-flight span from the server's flight
// recorder (GET /v1/spans): where a coalesced establish flight spent
// its time, split into the queue wait of its slowest member, the merged
// kernel admission pass, the verification-sweep share of that pass, and
// the verdict publication fan-out. All durations are nanoseconds.
type SpanInfo struct {
	// Flight numbers the flight (the server's monotonically increasing
	// flight counter).
	Flight int64 `json:"flight"`
	// StartUnixNano is the wall-clock instant the flight launched.
	StartUnixNano int64 `json:"startUnixNano"`
	// Merged is how many establish requests the flight decided.
	Merged int `json:"merged"`
	// WaitNs is the longest coalesce-queue wait among the merged
	// requests.
	WaitNs int64 `json:"waitNs"`
	// AdmitNs is the duration of the merged kernel admission pass.
	AdmitNs int64 `json:"admitNs"`
	// VerifyNs is the verification-sweep time the admission layer
	// accumulated during this flight (attribution is approximate when
	// non-coalesced passes run concurrently).
	VerifyNs int64 `json:"verifyNs"`
	// PublishNs is the time spent fanning the verdicts out.
	PublishNs int64 `json:"publishNs"`
	// Accepted and Rejected split the flight's verdicts.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// SpansReply is the GET /v1/spans body: the flight recorder's retained
// spans, oldest first.
type SpansReply struct {
	Spans []SpanInfo `json:"spans"`
}
