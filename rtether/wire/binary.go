// Binary framing for the latency-critical subset of the rtetherd API.
//
// The HTTP/JSON surface (wire.go) is the compatibility contract; this
// file defines an equivalent binary encoding for the six operations a
// latency-sensitive controller issues in its steady state — establish,
// establishAll, multicast, release, reconfigure, stats — served by
// rtetherd on a dedicated listener (-binaddr) and spoken by
// rtether/client when configured with TransportBinary. Everything else
// (watch streams, topics, metrics, health) stays on HTTP/JSON.
//
// A frame is:
//
//	offset size  field
//	0      2     magic "RT" (0x52 0x54)
//	2      1     version (currently 2; v2 widened channel IDs to 32 bits)
//	3      1     message type (Msg* constants)
//	4      4     request ID, big-endian (echoed verbatim in the reply)
//	8      4     payload length, big-endian (≤ MaxFramePayload)
//	12     n     payload
//
// Requests and replies share the framing; the request ID lets a client
// pipeline many requests on one connection and match replies out of
// order — which is what keeps the server-side coalescer seeing the same
// concurrency as N parallel HTTP requests. All integers are big-endian;
// strings are uint16-length-prefixed UTF-8; float64 travels as its IEEE
// 754 bit pattern. Conversions are lossless: in particular a feasibility
// rejection's full AdmissionError survives the round trip bit for bit,
// exactly as the JSON envelope (wire_test.go and binary_test.go pin
// both).
//
// Encoders are append-style (Append*(dst, ...) []byte) so a client or
// server can reuse one buffer across requests and encode without
// allocating; decoders are pure bounds-checked reads that never panic
// on truncated or corrupt input (binary_fuzz_test.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame constants.
const (
	// Magic0 and Magic1 open every frame ("RT").
	Magic0 = 0x52
	Magic1 = 0x54
	// BinaryVersion is the framing version this package speaks.
	// Version 2 widened channel IDs from 16 to 32 bits (ChannelReply,
	// Release, Reconfigure) and extended the stats reply with the
	// verify-cache hit counter and sweep-time accumulator.
	BinaryVersion = 2
	// FrameHeaderLen is the fixed frame header size.
	FrameHeaderLen = 12
	// MaxFramePayload caps a frame's payload; ReadFrame rejects larger
	// announcements without allocating, so a corrupt or hostile length
	// field cannot balloon memory.
	MaxFramePayload = 1 << 20
)

// MsgType identifies a frame's payload schema. Requests use the low
// range, replies the 0x40 range; MsgError may answer any request.
type MsgType uint8

// Request message types.
const (
	MsgEstablish    MsgType = 0x01 // payload: Spec
	MsgEstablishAll MsgType = 0x02 // payload: []Spec
	MsgMulticast    MsgType = 0x03 // payload: MulticastSpec
	MsgRelease      MsgType = 0x04 // payload: channel ID
	MsgReconfigure  MsgType = 0x05 // payload: ReconfigureRequest
	MsgStats        MsgType = 0x06 // payload: empty
)

// Reply message types.
const (
	MsgChannel     MsgType = 0x41 // payload: ChannelReply
	MsgChannelList MsgType = 0x42 // payload: EstablishAllReply
	MsgReleased    MsgType = 0x44 // payload: empty
	MsgStatsReply  MsgType = 0x46 // payload: StatsReply
	MsgError       MsgType = 0x7f // payload: Error envelope
)

// Binary decode errors.
var (
	// ErrBadMagic reports a frame that does not open with "RT".
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrBadVersion reports an unsupported framing version.
	ErrBadVersion = errors.New("wire: unsupported frame version")
	// ErrFrameTooLarge reports a payload length above MaxFramePayload.
	ErrFrameTooLarge = errors.New("wire: frame payload too large")
	// ErrTruncated reports a payload shorter than its schema requires.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrTrailingBytes reports payload bytes past the end of the schema.
	ErrTrailingBytes = errors.New("wire: trailing bytes in payload")
)

// Frame is one decoded frame header plus its payload. The payload
// aliases the read buffer; callers that retain it across reads must
// copy.
type Frame struct {
	Type    MsgType
	ReqID   uint32
	Payload []byte
}

// beginFrame appends a frame header with a zero length field, returning
// the extended buffer and the header's offset for endFrame.
func beginFrame(dst []byte, t MsgType, reqID uint32) ([]byte, int) {
	start := len(dst)
	dst = append(dst, Magic0, Magic1, BinaryVersion, byte(t))
	dst = binary.BigEndian.AppendUint32(dst, reqID)
	dst = append(dst, 0, 0, 0, 0)
	return dst, start
}

// endFrame patches the payload length of the frame opened at start.
func endFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start+8:], uint32(len(dst)-start-FrameHeaderLen))
	return dst
}

// ReadFrame reads one frame from r into buf (grown as needed) and
// returns the parsed frame plus the possibly-grown buffer for reuse.
// The frame's payload aliases the returned buffer.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	if cap(buf) < FrameHeaderLen {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:FrameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, buf, err
	}
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return Frame{}, buf, ErrBadMagic
	}
	if hdr[2] != BinaryVersion {
		return Frame{}, buf, fmt.Errorf("%w: %d", ErrBadVersion, hdr[2])
	}
	f := Frame{Type: MsgType(hdr[3]), ReqID: binary.BigEndian.Uint32(hdr[4:])}
	n := binary.BigEndian.Uint32(hdr[8:])
	if n > MaxFramePayload {
		return Frame{}, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	f.Payload = buf[:n]
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, buf, err
	}
	return f, buf, nil
}

// ---- primitive appends ----

func appendStr(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v))
}

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// ---- primitive reads: a cursor that latches the first error ----

type binReader struct {
	p   []byte
	off int
	bad bool
}

func (b *binReader) need(n int) bool {
	if b.bad || b.off+n > len(b.p) {
		b.bad = true
		return false
	}
	return true
}

func (b *binReader) u8() uint8 {
	if !b.need(1) {
		return 0
	}
	v := b.p[b.off]
	b.off++
	return v
}

func (b *binReader) u16() uint16 {
	if !b.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(b.p[b.off:])
	b.off += 2
	return v
}

func (b *binReader) u32() uint32 {
	if !b.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(b.p[b.off:])
	b.off += 4
	return v
}

func (b *binReader) i32() int32 { return int32(b.u32()) }

func (b *binReader) i64() int64 {
	if !b.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(b.p[b.off:])
	b.off += 8
	return int64(v)
}

func (b *binReader) f64() float64 {
	if !b.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(b.p[b.off:]))
	b.off += 8
	return v
}

func (b *binReader) str() string {
	n := int(b.u16())
	if !b.need(n) {
		return ""
	}
	v := string(b.p[b.off : b.off+n])
	b.off += n
	return v
}

// finish reports the terminal decode verdict: an error when anything
// read short or when bytes remain past the schema.
func (b *binReader) finish() error {
	if b.bad {
		return ErrTruncated
	}
	if b.off != len(b.p) {
		return ErrTrailingBytes
	}
	return nil
}

// ---- Spec ----

func appendSpec(dst []byte, s Spec) []byte {
	dst = binary.BigEndian.AppendUint16(dst, s.Src)
	dst = binary.BigEndian.AppendUint16(dst, s.Dst)
	dst = appendI64(dst, s.C)
	dst = appendI64(dst, s.P)
	dst = appendI64(dst, s.D)
	return binary.BigEndian.AppendUint32(dst, uint32(s.Priority))
}

func (b *binReader) spec() Spec {
	return Spec{
		Src: b.u16(), Dst: b.u16(),
		C: b.i64(), P: b.i64(), D: b.i64(),
		Priority: b.i32(),
	}
}

// ---- requests ----

// AppendEstablish appends one MsgEstablish frame. Append-style so a
// pipelining client encodes into a reused buffer without allocating.
func AppendEstablish(dst []byte, reqID uint32, s Spec) []byte {
	dst, start := beginFrame(dst, MsgEstablish, reqID)
	dst = appendSpec(dst, s)
	return endFrame(dst, start)
}

// DecodeEstablish parses a MsgEstablish payload.
func DecodeEstablish(p []byte) (Spec, error) {
	b := binReader{p: p}
	s := b.spec()
	return s, b.finish()
}

// AppendEstablishAll appends one MsgEstablishAll frame.
func AppendEstablishAll(dst []byte, reqID uint32, specs []Spec) []byte {
	dst, start := beginFrame(dst, MsgEstablishAll, reqID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(specs)))
	for _, s := range specs {
		dst = appendSpec(dst, s)
	}
	return endFrame(dst, start)
}

// DecodeEstablishAll parses a MsgEstablishAll payload.
func DecodeEstablishAll(p []byte) ([]Spec, error) {
	b := binReader{p: p}
	n := int(b.u32())
	const specLen = 2 + 2 + 8 + 8 + 8 + 4
	if b.bad || n > (len(p)-b.off)/specLen {
		return nil, ErrTruncated
	}
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = b.spec()
	}
	return specs, b.finish()
}

// AppendMulticast appends one MsgMulticast frame.
func AppendMulticast(dst []byte, reqID uint32, s MulticastSpec) []byte {
	dst, start := beginFrame(dst, MsgMulticast, reqID)
	dst = binary.BigEndian.AppendUint16(dst, s.Src)
	dst = appendI64(dst, s.C)
	dst = appendI64(dst, s.P)
	dst = appendI64(dst, s.D)
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Priority))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.Sinks)))
	for _, sink := range s.Sinks {
		dst = binary.BigEndian.AppendUint16(dst, sink)
	}
	return endFrame(dst, start)
}

// DecodeMulticast parses a MsgMulticast payload.
func DecodeMulticast(p []byte) (MulticastSpec, error) {
	b := binReader{p: p}
	s := MulticastSpec{
		Src: b.u16(),
		C:   b.i64(), P: b.i64(), D: b.i64(),
		Priority: b.i32(),
	}
	n := int(b.u16())
	if b.bad || n > (len(p)-b.off)/2 {
		return MulticastSpec{}, ErrTruncated
	}
	s.Sinks = make([]uint16, n)
	for i := range s.Sinks {
		s.Sinks[i] = b.u16()
	}
	return s, b.finish()
}

// AppendRelease appends one MsgRelease frame.
func AppendRelease(dst []byte, reqID uint32, id uint32) []byte {
	dst, start := beginFrame(dst, MsgRelease, reqID)
	dst = binary.BigEndian.AppendUint32(dst, id)
	return endFrame(dst, start)
}

// DecodeRelease parses a MsgRelease payload.
func DecodeRelease(p []byte) (uint32, error) {
	b := binReader{p: p}
	id := b.u32()
	return id, b.finish()
}

// AppendReconfigure appends one MsgReconfigure frame.
func AppendReconfigure(dst []byte, reqID uint32, r ReconfigureRequest) []byte {
	dst, start := beginFrame(dst, MsgReconfigure, reqID)
	dst = binary.BigEndian.AppendUint32(dst, r.ID)
	dst = appendI64(dst, r.C)
	dst = appendI64(dst, r.P)
	dst = appendI64(dst, r.D)
	return endFrame(dst, start)
}

// DecodeReconfigure parses a MsgReconfigure payload.
func DecodeReconfigure(p []byte) (ReconfigureRequest, error) {
	b := binReader{p: p}
	r := ReconfigureRequest{ID: b.u32(), C: b.i64(), P: b.i64(), D: b.i64()}
	return r, b.finish()
}

// AppendStats appends one MsgStats request frame (empty payload).
func AppendStats(dst []byte, reqID uint32) []byte {
	dst, start := beginFrame(dst, MsgStats, reqID)
	return endFrame(dst, start)
}

// ---- replies ----

func appendChannelReplyBody(dst []byte, r ChannelReply) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.ID)
	dst = appendI64(dst, r.GuaranteedDelay)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Budgets)))
	for _, bgt := range r.Budgets {
		dst = appendI64(dst, bgt)
	}
	return dst
}

func (b *binReader) channelReply() ChannelReply {
	r := ChannelReply{ID: b.u32(), GuaranteedDelay: b.i64()}
	n := int(b.u16())
	if b.bad || n > (len(b.p)-b.off)/8 {
		b.bad = true
		return r
	}
	if n > 0 {
		r.Budgets = make([]int64, n)
		for i := range r.Budgets {
			r.Budgets[i] = b.i64()
		}
	}
	return r
}

// AppendChannelReply appends one MsgChannel reply frame.
func AppendChannelReply(dst []byte, reqID uint32, r ChannelReply) []byte {
	dst, start := beginFrame(dst, MsgChannel, reqID)
	dst = appendChannelReplyBody(dst, r)
	return endFrame(dst, start)
}

// DecodeChannelReply parses a MsgChannel payload.
func DecodeChannelReply(p []byte) (ChannelReply, error) {
	b := binReader{p: p}
	r := b.channelReply()
	return r, b.finish()
}

// AppendChannelList appends one MsgChannelList reply frame.
func AppendChannelList(dst []byte, reqID uint32, r EstablishAllReply) []byte {
	dst, start := beginFrame(dst, MsgChannelList, reqID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Channels)))
	for _, ch := range r.Channels {
		dst = appendChannelReplyBody(dst, ch)
	}
	return endFrame(dst, start)
}

// DecodeChannelList parses a MsgChannelList payload.
func DecodeChannelList(p []byte) (EstablishAllReply, error) {
	b := binReader{p: p}
	n := int(b.u32())
	const minReplyLen = 4 + 8 + 2
	if b.bad || n > (len(p)-b.off)/minReplyLen {
		return EstablishAllReply{}, ErrTruncated
	}
	r := EstablishAllReply{Channels: make([]ChannelReply, n)}
	for i := range r.Channels {
		r.Channels[i] = b.channelReply()
	}
	return r, b.finish()
}

// AppendReleased appends one MsgReleased reply frame (empty payload).
func AppendReleased(dst []byte, reqID uint32) []byte {
	dst, start := beginFrame(dst, MsgReleased, reqID)
	return endFrame(dst, start)
}

// AppendStatsReply appends one MsgStatsReply frame.
func AppendStatsReply(dst []byte, reqID uint32, r StatsReply) []byte {
	dst, start := beginFrame(dst, MsgStatsReply, reqID)
	a := r.Admission
	for _, v := range [...]int64{
		int64(a.Requests), int64(a.Accepted), int64(a.RejectedInvalid),
		int64(a.RejectedNoRoute), int64(a.RejectedUtilization),
		int64(a.RejectedDemand), int64(a.RejectedInconclusive),
		int64(a.Released), int64(a.LinksChecked), int64(a.VerifyCacheHits),
		int64(a.Repartitions),
		int64(a.Rerouted), int64(a.Degraded), int64(a.Preempted),
		int64(a.Lost), int64(a.LoadedLinks), a.SweepNs,
	} {
		dst = appendI64(dst, v)
	}
	dst = appendF64(dst, a.MeanLinkUtilization)
	s := r.Server
	for _, v := range [...]int64{s.Establishes, s.Flights, s.MaxMerged, s.Watchers, s.Channels} {
		dst = appendI64(dst, v)
	}
	return endFrame(dst, start)
}

// DecodeStatsReply parses a MsgStatsReply payload.
func DecodeStatsReply(p []byte) (StatsReply, error) {
	b := binReader{p: p}
	var r StatsReply
	a := &r.Admission
	for _, dst := range [...]*int{
		&a.Requests, &a.Accepted, &a.RejectedInvalid,
		&a.RejectedNoRoute, &a.RejectedUtilization,
		&a.RejectedDemand, &a.RejectedInconclusive,
		&a.Released, &a.LinksChecked, &a.VerifyCacheHits,
		&a.Repartitions,
		&a.Rerouted, &a.Degraded, &a.Preempted,
		&a.Lost, &a.LoadedLinks,
	} {
		*dst = int(b.i64())
	}
	a.SweepNs = b.i64()
	a.MeanLinkUtilization = b.f64()
	s := &r.Server
	for _, dst := range [...]*int64{&s.Establishes, &s.Flights, &s.MaxMerged, &s.Watchers, &s.Channels} {
		*dst = b.i64()
	}
	return r, b.finish()
}

// ---- error envelope ----

// AppendError appends one MsgError reply frame carrying the full wire
// error envelope, admission diagnostics included.
func AppendError(dst []byte, reqID uint32, e *Error) []byte {
	dst, start := beginFrame(dst, MsgError, reqID)
	dst = appendStr(dst, e.Code)
	dst = appendStr(dst, e.Message)
	if e.Admission == nil {
		dst = append(dst, 0)
		return endFrame(dst, start)
	}
	dst = append(dst, 1)
	ae := e.Admission
	dst = appendSpec(dst, ae.Spec)
	dst = appendStr(dst, ae.Link)
	dst = binary.BigEndian.AppendUint16(dst, ae.Node)
	dst = appendStr(dst, ae.Dir)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(ae.Hop)))
	dst = appendF64(dst, ae.Utilization)
	dst = appendI64(dst, ae.Slack)
	dst = appendStr(dst, ae.Reason)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(ae.Branch)))
	dst = binary.BigEndian.AppendUint16(dst, ae.Sink)
	return endFrame(dst, start)
}

// DecodeError parses a MsgError payload back into the envelope.
func DecodeError(p []byte) (*Error, error) {
	b := binReader{p: p}
	e := &Error{Code: b.str(), Message: b.str()}
	if b.u8() != 0 {
		ae := &AdmissionError{}
		ae.Spec = b.spec()
		ae.Link = b.str()
		ae.Node = b.u16()
		ae.Dir = b.str()
		ae.Hop = int(b.i32())
		ae.Utilization = b.f64()
		ae.Slack = b.i64()
		ae.Reason = b.str()
		ae.Branch = int(b.i32())
		ae.Sink = b.u16()
		e.Admission = ae
	}
	if err := b.finish(); err != nil {
		return nil, err
	}
	return e, nil
}
