package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/rtether"
)

// frameOf encodes with enc, reads the frame back and checks the header.
func frameOf(t *testing.T, raw []byte, wantType MsgType, wantReq uint32) Frame {
	t.Helper()
	f, _, err := ReadFrame(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Type != wantType || f.ReqID != wantReq {
		t.Fatalf("frame header = (%#x, %d), want (%#x, %d)", f.Type, f.ReqID, wantType, wantReq)
	}
	return f
}

func TestBinaryEstablishRoundTrip(t *testing.T) {
	s := Spec{Src: 3, Dst: 9, C: 2, P: 100, D: 37, Priority: -5}
	f := frameOf(t, AppendEstablish(nil, 42, s), MsgEstablish, 42)
	got, err := DecodeEstablish(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip changed the spec: %+v want %+v", got, s)
	}
}

func TestBinaryEstablishAllRoundTrip(t *testing.T) {
	specs := []Spec{
		{Src: 1, Dst: 2, C: 3, P: 50, D: 20},
		{Src: 2, Dst: 1, C: 1, P: 75, D: 30, Priority: 7},
	}
	f := frameOf(t, AppendEstablishAll(nil, 7, specs), MsgEstablishAll, 7)
	got, err := DecodeEstablishAll(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, specs) {
		t.Errorf("round trip changed the batch: %+v want %+v", got, specs)
	}
	// Empty batch stays empty, not nil-vs-zero confusion at the server.
	f = frameOf(t, AppendEstablishAll(nil, 8, nil), MsgEstablishAll, 8)
	if got, err := DecodeEstablishAll(f.Payload); err != nil || len(got) != 0 {
		t.Errorf("empty batch: got %v, %v", got, err)
	}
}

func TestBinaryMulticastRoundTrip(t *testing.T) {
	s := MulticastSpec{Src: 4, Sinks: []uint16{1, 2, 9}, C: 2, P: 60, D: 24, Priority: 3}
	f := frameOf(t, AppendMulticast(nil, 9, s), MsgMulticast, 9)
	got, err := DecodeMulticast(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip changed the spec: %+v want %+v", got, s)
	}
}

func TestBinaryReleaseReconfigureRoundTrip(t *testing.T) {
	f := frameOf(t, AppendRelease(nil, 3, 77), MsgRelease, 3)
	if id, err := DecodeRelease(f.Payload); err != nil || id != 77 {
		t.Errorf("release round trip: %d, %v", id, err)
	}
	rc := ReconfigureRequest{ID: 12, C: 5, P: 90, D: 33}
	f = frameOf(t, AppendReconfigure(nil, 4, rc), MsgReconfigure, 4)
	if got, err := DecodeReconfigure(f.Payload); err != nil || got != rc {
		t.Errorf("reconfigure round trip: %+v, %v", got, err)
	}
}

func TestBinaryChannelReplyRoundTrip(t *testing.T) {
	r := ChannelReply{ID: 5, Budgets: []int64{17, 20}, GuaranteedDelay: 37}
	f := frameOf(t, AppendChannelReply(nil, 11, r), MsgChannel, 11)
	got, err := DecodeChannelReply(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip changed the reply: %+v want %+v", got, r)
	}

	list := EstablishAllReply{Channels: []ChannelReply{r, {ID: 6, GuaranteedDelay: 9}}}
	f = frameOf(t, AppendChannelList(nil, 12, list), MsgChannelList, 12)
	gotList, err := DecodeChannelList(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotList, list) {
		t.Errorf("round trip changed the list: %+v want %+v", gotList, list)
	}
}

func TestBinaryStatsRoundTrip(t *testing.T) {
	r := StatsReply{
		Admission: rtether.AdmissionStats{
			Requests: 100, Accepted: 80, RejectedInvalid: 1, RejectedNoRoute: 2,
			RejectedUtilization: 3, RejectedDemand: 14, RejectedInconclusive: 0,
			Released: 20, LinksChecked: 4096, Repartitions: 90,
			Rerouted: 5, Degraded: 2, Preempted: 1, Lost: 3,
			MeanLinkUtilization: 0.734, LoadedLinks: 12,
		},
		Server: ServerStats{Establishes: 100, Flights: 40, MaxMerged: 9, Watchers: 2, Channels: 60},
	}
	f := frameOf(t, AppendStatsReply(nil, 13, r), MsgStatsReply, 13)
	got, err := DecodeStatsReply(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip changed the stats:\n got  %+v\n want %+v", got, r)
	}
}

// TestBinaryErrorRoundTrip pins that the binary error envelope is as
// lossless as the JSON one: a full typed AdmissionError survives encode,
// decode and the conversion back to *rtether.AdmissionError bit for bit.
func TestBinaryErrorRoundTrip(t *testing.T) {
	for _, dir := range []rtether.LinkDir{rtether.DirUp, rtether.DirDown, rtether.DirTrunk} {
		orig := &rtether.AdmissionError{
			Spec:        rtether.ChannelSpec{Src: 3, Dst: 7, C: 2, P: 50, D: 21, Priority: 2},
			Link:        "sw0→sw1",
			Node:        3,
			Dir:         dir,
			Hop:         2,
			Utilization: 0.9875,
			Slack:       -4,
			Reason:      "infeasible(demand) at t=40 (h=45), U=0.9875",
			Branch:      1,
			Sink:        9,
		}
		we := &Error{Code: CodeInfeasible, Message: "boom", Admission: FromAdmissionError(orig)}
		f := frameOf(t, AppendError(nil, 21, we), MsgError, 21)
		got, err := DecodeError(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Code != we.Code || got.Message != we.Message {
			t.Errorf("envelope changed: %+v", got)
		}
		if back := got.Admission.AdmissionError(); *back != *orig {
			t.Errorf("dir %v: round trip changed the error:\n got  %+v\n want %+v", dir, back, orig)
		}
	}
	// No admission diagnostics.
	we := &Error{Code: CodeClosed, Message: "rtetherd: closed"}
	f := frameOf(t, AppendError(nil, 22, we), MsgError, 22)
	got, err := DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Admission != nil || got.Code != we.Code || got.Message != we.Message {
		t.Errorf("envelope changed: %+v", got)
	}
}

// TestBinaryMatchesJSON is the seeded cross-codec property test: for
// randomized values of every shared message shape, decode(binary) must
// equal decode(json) — the two transports describe the same API objects.
func TestBinaryMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Valid UTF-8 only: JSON replaces invalid sequences with U+FFFD while
	// the binary codec carries raw bytes faithfully, so comparing the two
	// is only meaningful on well-formed strings.
	alpha := []rune("abcdefgh →0123")
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]rune, 0, n)
		for i := 0; i < n; i++ {
			b = append(b, alpha[rng.Intn(len(alpha))])
		}
		return string(b)
	}
	randSpec := func() Spec {
		return Spec{
			Src: uint16(rng.Intn(1 << 16)), Dst: uint16(rng.Intn(1 << 16)),
			C: rng.Int63(), P: rng.Int63(), D: -rng.Int63(),
			Priority: int32(rng.Int31() - 1<<30),
		}
	}
	for trial := 0; trial < 200; trial++ {
		spec := randSpec()
		var viaJSON Spec
		buf, _ := json.Marshal(spec)
		if err := json.Unmarshal(buf, &viaJSON); err != nil {
			t.Fatal(err)
		}
		f, _, err := ReadFrame(bytes.NewReader(AppendEstablish(nil, uint32(trial), spec)), nil)
		if err != nil {
			t.Fatal(err)
		}
		viaBin, err := DecodeEstablish(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if viaBin != viaJSON {
			t.Fatalf("trial %d: codecs disagree on spec: bin %+v json %+v", trial, viaBin, viaJSON)
		}

		we := &Error{Code: randStr(), Message: randStr()}
		if rng.Intn(2) == 0 {
			we.Admission = &AdmissionError{
				Spec: randSpec(), Link: randStr(), Node: uint16(rng.Intn(1 << 16)),
				Dir: randStr(), Hop: rng.Intn(64) - 1,
				Utilization: rng.Float64(), Slack: rng.Int63() - 1<<40,
				Reason: randStr(), Branch: rng.Intn(8) - 1, Sink: uint16(rng.Intn(1 << 16)),
			}
		}
		var errViaJSON Error
		buf, _ = json.Marshal(we)
		if err := json.Unmarshal(buf, &errViaJSON); err != nil {
			t.Fatal(err)
		}
		f, _, err = ReadFrame(bytes.NewReader(AppendError(nil, 1, we)), nil)
		if err != nil {
			t.Fatal(err)
		}
		errViaBin, err := DecodeError(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*errViaBin, errViaJSON) {
			t.Fatalf("trial %d: codecs disagree on error:\n bin  %+v\n json %+v", trial, errViaBin, errViaJSON)
		}
	}
}

// TestReadFramePipelined reads several frames appended to one buffer —
// the client's pipelining pattern — and checks payload/reqID pairing.
func TestReadFramePipelined(t *testing.T) {
	var raw []byte
	raw = AppendEstablish(raw, 1, Spec{Src: 1, Dst: 2, C: 1, P: 10, D: 5})
	raw = AppendRelease(raw, 2, 99)
	raw = AppendStats(raw, 3)
	r := bytes.NewReader(raw)
	var buf []byte
	var f Frame
	var err error
	for i, want := range []struct {
		t   MsgType
		req uint32
	}{{MsgEstablish, 1}, {MsgRelease, 2}, {MsgStats, 3}} {
		f, buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != want.t || f.ReqID != want.req {
			t.Fatalf("frame %d = (%#x, %d), want (%#x, %d)", i, f.Type, f.ReqID, want.t, want.req)
		}
	}
}

// TestReadFrameRejectsGarbage pins the defensive properties of the frame
// reader: bad magic, bad version and oversized payloads are refused.
func TestReadFrameRejectsGarbage(t *testing.T) {
	good := AppendStats(nil, 1)

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[2] = 99
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Error("bad version accepted")
	}

	bad = append([]byte(nil), good...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Error("oversized payload accepted")
	}
}

// TestAppendEstablishZeroAllocs pins the client encode hot path at 0
// allocs/op once the buffer has warmed to frame size.
func TestAppendEstablishZeroAllocs(t *testing.T) {
	s := Spec{Src: 1, Dst: 2, C: 3, P: 100, D: 40, Priority: 1}
	buf := AppendEstablish(nil, 0, s)
	if avg := testing.AllocsPerRun(100, func() {
		buf = AppendEstablish(buf[:0], 7, s)
	}); avg != 0 {
		t.Errorf("AppendEstablish allocates %.1f allocs/op, want 0", avg)
	}
}
