package wire

import (
	"encoding/json"
	"testing"

	"repro/rtether"
)

// TestAdmissionErrorJSONRoundTrip proves the wire form is lossless
// through an actual JSON encode/decode for every direction value.
func TestAdmissionErrorJSONRoundTrip(t *testing.T) {
	for _, dir := range []rtether.LinkDir{rtether.DirUp, rtether.DirDown, rtether.DirTrunk} {
		orig := &rtether.AdmissionError{
			Spec:        rtether.ChannelSpec{Src: 3, Dst: 7, C: 2, P: 50, D: 21},
			Link:        "sw0→sw1",
			Node:        3,
			Dir:         dir,
			Hop:         2,
			Utilization: 0.9875,
			Slack:       -4,
			Reason:      "infeasible(demand) at t=40 (h=45), U=0.9875",
		}
		buf, err := json.Marshal(FromAdmissionError(orig))
		if err != nil {
			t.Fatal(err)
		}
		var decoded AdmissionError
		if err := json.Unmarshal(buf, &decoded); err != nil {
			t.Fatal(err)
		}
		got := decoded.AdmissionError()
		if *got != *orig {
			t.Errorf("dir %v: round trip changed the error:\n  got  %+v\n  want %+v", dir, got, orig)
		}
	}
}

// TestSpecRoundTrip pins the scenario-format field names on the wire.
func TestSpecRoundTrip(t *testing.T) {
	spec := rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	buf, err := json.Marshal(FromSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"src":1,"dst":2,"c":3,"p":100,"d":40}`
	if string(buf) != want {
		t.Errorf("wire spec = %s, want %s", buf, want)
	}
	var decoded Spec
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ChannelSpec() != spec {
		t.Errorf("round trip changed the spec: %+v", decoded.ChannelSpec())
	}
}
