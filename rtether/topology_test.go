package rtether

import (
	"errors"
	"testing"
)

// lineTopology builds k switches in a chain with six nodes on each end
// switch: 0..5 on the first, 100..105 on the last.
func lineTopology(t *testing.T, k int) *Topology {
	t.Helper()
	top := NewTopology()
	for i := 0; i < k; i++ {
		if err := top.AddSwitch(SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < k; i++ {
		if err := top.Trunk(SwitchID(i-1), SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for n := NodeID(0); n < 6; n++ {
		if err := top.Attach(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	for n := NodeID(100); n < 106; n++ {
		if err := top.Attach(n, SwitchID(k-1)); err != nil {
			t.Fatal(err)
		}
	}
	return top
}

func TestTopologyBuilderValidates(t *testing.T) {
	top := NewTopology()
	if err := top.AddSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := top.AddSwitch(0); err == nil {
		t.Error("duplicate switch accepted")
	}
	if err := top.Trunk(0, 7); err == nil {
		t.Error("trunk to unknown switch accepted")
	}
	if err := top.Attach(1, 7); err == nil {
		t.Error("attach to unknown switch accepted")
	}
	if err := top.Attach(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := top.Attach(1, 0); err == nil {
		t.Error("duplicate attachment accepted")
	}
	if got := top.Switches(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Switches() = %v", got)
	}
	if got := top.Nodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Nodes() = %v", got)
	}
}

func TestSingleSwitchTopologyIsStar(t *testing.T) {
	top := NewTopology()
	if err := top.AddSwitch(0); err != nil {
		t.Fatal(err)
	}
	for n := NodeID(1); n <= 3; n++ {
		if err := top.Attach(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	net := New(WithTopology(top), WithADPS())
	// The degenerate star keeps the full wire protocol: best-effort
	// traffic works and establishment consumes virtual time.
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if net.Now() == 0 {
		t.Error("wire establishment consumed no virtual time")
	}
	if !net.SendBestEffort(1, 3, []byte("hi")) {
		t.Error("best-effort send failed on degenerate star")
	}
	if b := ch.Budgets(); len(b) != 2 {
		t.Errorf("budgets = %v, want two hops", b)
	}
	// Nodes may still be added after New on a star.
	if err := net.AddNode(9); err != nil {
		t.Errorf("AddNode on degenerate star: %v", err)
	}
}

func TestFabricNetworkLifecycle(t *testing.T) {
	top := lineTopology(t, 3)
	net := New(WithTopology(top), WithHDPS(HADPS()))

	hops, err := top.RouteLength(0, 100)
	if err != nil || hops != 4 {
		t.Fatalf("RouteLength = %d,%v, want 4", hops, err)
	}
	spec := ChannelSpec{Src: 0, Dst: 100, C: 2, P: 50, D: 40}
	ch, err := net.Establish(spec)
	if err != nil {
		t.Fatal(err)
	}
	budgets := ch.Budgets()
	if len(budgets) != 4 {
		t.Fatalf("budgets = %v, want 4 hops", budgets)
	}
	var sum int64
	for _, b := range budgets {
		if b < spec.C {
			t.Errorf("hop budget %d below C", b)
		}
		sum += b
	}
	if sum != spec.D {
		t.Errorf("budgets sum %d != D %d", sum, spec.D)
	}

	if err := ch.Start(0); err != nil {
		t.Fatal(err)
	}
	net.RunFor(2000)
	m := ch.Metrics()
	if m == nil || m.Delivered < 70 {
		t.Fatalf("metrics = %+v, want ~80 frames delivered", m)
	}
	if m.Misses != 0 {
		t.Errorf("misses = %d", m.Misses)
	}
	if m.Delays.Max() > ch.GuaranteedDelay() {
		t.Errorf("worst delay %d beyond guarantee %d", m.Delays.Max(), ch.GuaranteedDelay())
	}

	// Stop, let in-flight frames drain, confirm the generator is quiet,
	// then restart.
	if err := ch.Stop(); err != nil {
		t.Fatal(err)
	}
	net.RunFor(100) // longer than D: released frames finish delivery
	before := ch.Metrics().Delivered
	net.RunFor(500)
	if got := ch.Metrics().Delivered; got != before {
		t.Errorf("stopped channel delivered %d more frames", got-before)
	}
	if err := ch.Start(0); err != nil {
		t.Fatal(err)
	}
	net.RunFor(500)
	if got := ch.Metrics().Delivered; got <= before {
		t.Error("restarted channel delivered nothing")
	}

	if err := ch.Release(); err != nil {
		t.Fatal(err)
	}
	if len(net.Channels()) != 0 {
		t.Error("channel survived release")
	}
	if err := ch.Release(); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("double release = %v, want ErrChannelClosed", err)
	}
	if err := ch.Start(0); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("Start after release = %v, want ErrChannelClosed", err)
	}
}

func TestFabricNetworkRestrictions(t *testing.T) {
	top := lineTopology(t, 2)
	net := New(WithTopology(top))
	if err := net.AddNode(42); err == nil {
		t.Error("AddNode on a multi-switch network accepted")
	}
	if net.SendBestEffort(0, 100, []byte("x")) {
		t.Error("best-effort send accepted on a fabric")
	}
	if !net.SetTracer(NewRingTracer(8)) {
		t.Error("fabric rejects trace support; both backends stream events now")
	}
	if err := net.WriteSnapshot(nil); err == nil {
		t.Error("fabric snapshot accepted")
	}
}

func TestFabricLinkLoads(t *testing.T) {
	top := lineTopology(t, 2)
	net := New(WithTopology(top))
	for i := 0; i < 3; i++ {
		if _, err := net.Establish(ChannelSpec{Src: 0, Dst: NodeID(100 + i), C: 3, P: 300, D: 60}); err != nil {
			t.Fatal(err)
		}
	}
	if got := net.LinkLoadUp(0); got != 3 {
		t.Errorf("LinkLoadUp(0) = %d, want 3", got)
	}
	if got := net.LinkLoadDown(100); got != 1 {
		t.Errorf("LinkLoadDown(100) = %d, want 1", got)
	}
	if got := net.LinkLoadUp(5); got != 0 {
		t.Errorf("LinkLoadUp(5) = %d, want 0", got)
	}
}

func TestFabricRepartitionsOnLoad(t *testing.T) {
	// Under H-ADPS the trunk's budget share grows with its load, so a
	// channel's budgets may change as later channels are admitted.
	top := lineTopology(t, 2)
	net := New(WithTopology(top), WithHDPS(HADPS()))
	first, err := net.Establish(ChannelSpec{Src: 0, Dst: 100, C: 3, P: 300, D: 60})
	if err != nil {
		t.Fatal(err)
	}
	initial := append([]int64(nil), first.Budgets()...)
	for i := 1; i < 6; i++ {
		if _, err := net.Establish(ChannelSpec{Src: NodeID(i), Dst: NodeID(100 + i), C: 3, P: 300, D: 60}); err != nil {
			t.Fatal(err)
		}
	}
	final := first.Budgets()
	if len(initial) != 3 || len(final) != 3 {
		t.Fatalf("budgets %v → %v, want 3 hops", initial, final)
	}
	if final[1] <= initial[1] {
		t.Errorf("trunk budget did not grow with load: %v → %v", initial, final)
	}
	var sum int64
	for _, b := range final {
		sum += b
	}
	if sum != 60 {
		t.Errorf("repartitioned budgets sum %d != 60", sum)
	}
}

func TestFabricStopStartWhileArmed(t *testing.T) {
	// A Stop immediately followed by Start from inside the run must not
	// resurrect the superseded release event: before the generation guard
	// the stale event injected frames on the detached cadence and then
	// re-armed in the past, panicking the engine.
	top := lineTopology(t, 2)
	net := New(WithTopology(top))
	ch, err := net.Establish(ChannelSpec{Src: 0, Dst: 100, C: 2, P: 50, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Start(0); err != nil {
		t.Fatal(err)
	}
	net.Schedule(125, func() { // between the releases at 100 and 150
		if err := ch.Stop(); err != nil {
			t.Error(err)
		}
		if err := ch.Start(5); err != nil {
			t.Error(err)
		}
	})
	net.RunFor(1000)
	m := ch.Metrics()
	if m == nil || m.Delivered == 0 {
		t.Fatal("no frames delivered across the restart")
	}
	if m.Misses != 0 {
		t.Errorf("restart produced %d spurious misses", m.Misses)
	}
}

func TestFabricDeterministicRuns(t *testing.T) {
	run := func() int64 {
		top := NewTopology()
		top.AddSwitch(0)
		top.AddSwitch(1)
		top.Trunk(0, 1)
		for n := NodeID(0); n < 4; n++ {
			top.Attach(n, 0)
		}
		for n := NodeID(100); n < 104; n++ {
			top.Attach(n, 1)
		}
		net := New(WithTopology(top), WithHDPS(HADPS()))
		var chans []*Channel
		for i := 0; i < 8; i++ {
			ch, err := net.Establish(ChannelSpec{
				Src: NodeID(i % 4), Dst: NodeID(100 + i%4), C: 2, P: 60, D: 42})
			if err != nil {
				continue
			}
			chans = append(chans, ch)
		}
		for i, ch := range chans {
			if err := ch.Start(int64(i * 3)); err != nil {
				t.Fatal(err)
			}
		}
		net.RunFor(3000)
		rep := net.Report()
		_, worst := rep.WorstDelay()
		return rep.TotalDelivered()*1000 + worst
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fabric runs diverged: %d vs %d", a, b)
	}
}
