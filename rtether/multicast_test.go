package rtether

import (
	"errors"
	"testing"
)

// TestEstablishMulticastStar establishes a 3-sink multicast channel on
// the star, runs traffic, and checks aggregated delivery metrics.
func TestEstablishMulticastStar(t *testing.T) {
	net := New()
	defer net.Close()
	for id := NodeID(1); id <= 4; id++ {
		net.MustAddNode(id)
	}
	ch, err := net.EstablishMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2, 3, 4}, C: 1, P: 20, D: 10})
	if err != nil {
		t.Fatalf("EstablishMulticast: %v", err)
	}
	if !ch.Multicast() {
		t.Fatalf("handle does not report multicast")
	}
	if got := ch.Sinks(); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Sinks() = %v, want [2 3 4]", got)
	}
	if spec := ch.Spec(); spec.Dst != 2 {
		t.Fatalf("Spec().Dst = %d, want first sink 2", spec.Dst)
	}
	if b := ch.Budgets(); len(b) != 2 || b[0]+b[1] != 10 {
		t.Fatalf("Budgets() = %v, want two budgets summing to 10", b)
	}
	if err := ch.Start(0); err != nil {
		t.Fatalf("Start: %v", err)
	}
	net.RunFor(400)
	m := ch.Metrics()
	if m == nil {
		t.Fatalf("no metrics after traffic")
	}
	// 20 releases in 400 slots, delivered to each of the three sinks.
	if m.Delivered < 3*15 {
		t.Fatalf("aggregated Delivered = %d, want at least 45 (per-sink fan-out)", m.Delivered)
	}
	if m.Misses != 0 {
		t.Fatalf("%d deadline misses on an admitted channel", m.Misses)
	}
	if m.Delays.Max() > ch.GuaranteedDelay() {
		t.Fatalf("observed delay %d exceeds guarantee %d", m.Delays.Max(), ch.GuaranteedDelay())
	}
	if err := ch.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

// TestEstablishMulticastStarBranchAttribution saturates one sink's
// downlink and checks that the rejection names the failing branch.
func TestEstablishMulticastStarBranchAttribution(t *testing.T) {
	net := New()
	defer net.Close()
	for id := NodeID(1); id <= 4; id++ {
		net.MustAddNode(id)
	}
	// Load downlink 3 with two channels (d_down = 6 each): a third task
	// {C=3, D=6} would demand 9 slots by t=6 — infeasible.
	for src := NodeID(1); src <= 2; src++ {
		if _, err := net.Establish(ChannelSpec{Src: src, Dst: 3, C: 3, P: 10, D: 12}); err != nil {
			t.Fatalf("preload from %d: %v", src, err)
		}
	}
	spec := MulticastSpec{Src: 4, Sinks: []NodeID{2, 3}, C: 3, P: 10, D: 12}
	_, err := net.EstablishMulticast(spec)
	if err == nil {
		t.Fatalf("overload admitted")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("rejection does not wrap ErrInfeasible: %v", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("rejection is %T, want *AdmissionError", err)
	}
	if ae.Branch != 1 || ae.Sink != 3 {
		t.Fatalf("Branch=%d Sink=%d, want branch 1 sink 3 (err: %v)", ae.Branch, ae.Sink, ae)
	}
	if ae.Dir != DirDown || ae.Node != 3 || ae.Hop != 1 {
		t.Fatalf("Dir=%v Node=%d Hop=%d, want down/3/1", ae.Dir, ae.Node, ae.Hop)
	}
	// Atomicity: the rejected tree reserved nothing — the same sinks
	// minus the saturated one still fit.
	if _, err := net.EstablishMulticast(MulticastSpec{Src: 4, Sinks: []NodeID{2}, C: 3, P: 10, D: 12}); err != nil {
		t.Fatalf("post-rejection establish failed — rejected tree leaked state: %v", err)
	}
}

// fanoutTopology is the rtether-level tree fabric used by the fabric
// multicast tests: source at sw0, sinks behind sw1 and sw2.
func fanoutTopology(t testing.TB) *Topology {
	top := NewTopology()
	for s := SwitchID(0); s <= 2; s++ {
		if err := top.AddSwitch(s); err != nil {
			t.Fatalf("AddSwitch: %v", err)
		}
	}
	if err := top.Trunk(0, 1); err != nil {
		t.Fatalf("Trunk: %v", err)
	}
	if err := top.Trunk(0, 2); err != nil {
		t.Fatalf("Trunk: %v", err)
	}
	for n, s := range map[NodeID]SwitchID{1: 0, 2: 1, 3: 1, 4: 2} {
		if err := top.Attach(n, s); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	return top
}

// TestEstablishMulticastFabric runs a multicast tree across switches:
// shared trunk budgeted once, per-sink delivery measured at every leaf.
func TestEstablishMulticastFabric(t *testing.T) {
	for _, hdps := range []struct {
		name string
		h    HDPS
	}{{"H-SDPS", HSDPS()}, {"H-ADPS", HADPS()}} {
		t.Run(hdps.name, func(t *testing.T) {
			net := New(WithTopology(fanoutTopology(t)), WithHDPS(hdps.h))
			defer net.Close()
			ch, err := net.EstablishMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2, 3, 4}, C: 1, P: 25, D: 15})
			if err != nil {
				t.Fatalf("EstablishMulticast: %v", err)
			}
			if err := ch.Start(0); err != nil {
				t.Fatalf("Start: %v", err)
			}
			net.RunFor(500)
			m := ch.Metrics()
			if m == nil {
				t.Fatalf("no metrics after traffic")
			}
			if m.Delivered < 3*18 {
				t.Fatalf("aggregated Delivered = %d, want at least 54 across three leaves", m.Delivered)
			}
			if m.Misses != 0 {
				t.Fatalf("%d deadline misses on an admitted tree", m.Misses)
			}
		})
	}
}

// TestEstablishMulticastFabricBranchAttribution saturates one leaf
// downlink on the fabric and checks the rejection's branch/sink and the
// whole-tree rollback.
func TestEstablishMulticastFabricBranchAttribution(t *testing.T) {
	net := New(WithTopology(fanoutTopology(t)), WithHDPS(HSDPS()))
	defer net.Close()
	// Load node 4's branch (n2→sw1→sw0→sw2→n4) to U = 6/7 per edge; the
	// multicast's extra 2/8 pushes sw0→sw2 and sw2→n4 past U = 1.
	for i := 0; i < 3; i++ {
		if _, err := net.Establish(ChannelSpec{Src: 2, Dst: 4, C: 2, P: 7, D: 28}); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}
	spec := MulticastSpec{Src: 1, Sinks: []NodeID{2, 4}, C: 2, P: 8, D: 24}
	_, err := net.EstablishMulticast(spec)
	if err == nil {
		t.Fatalf("overload admitted")
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("rejection is %T, want *AdmissionError (%v)", err, err)
	}
	if ae.Branch != 1 || ae.Sink != 4 {
		t.Fatalf("Branch=%d Sink=%d, want branch 1 sink 4 (err: %v)", ae.Branch, ae.Sink, ae)
	}
	if ae.Hop < 0 {
		t.Fatalf("Hop=%d, want a tree edge index (err: %v)", ae.Hop, ae)
	}
	// Atomicity: the shared trunk and the feasible branch reserved
	// nothing — the tree without the saturated sink still fits.
	if _, err := net.EstablishMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2}, C: 2, P: 8, D: 24}); err != nil {
		t.Fatalf("post-rejection establish failed — rejected tree leaked state: %v", err)
	}
}

// TestEstablishMulticastValidation covers the non-feasibility error
// paths through the public API.
func TestEstablishMulticastValidation(t *testing.T) {
	net := New()
	defer net.Close()
	net.MustAddNode(1)
	net.MustAddNode(2)
	if _, err := net.EstablishMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2, 9}, C: 1, P: 10, D: 6}); err == nil {
		t.Fatalf("unknown sink admitted")
	}
	if _, err := net.EstablishMulticast(MulticastSpec{Src: 1, C: 1, P: 10, D: 6}); err == nil {
		t.Fatalf("empty sink set admitted")
	}
	net.Close()
	if _, err := net.EstablishMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2}, C: 1, P: 10, D: 6}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed network: got %v, want ErrClosed", err)
	}
}
