// Package rtether is the public API of the switched-Ethernet real-time
// communication library, a reproduction of Hoang & Jonsson, "Real-Time
// Communication for Industrial Embedded Systems Using Switched Ethernet"
// (IPPS 2004).
//
// The library provides RT channels — virtual connections {P, C, d} with a
// guaranteed worst-case delivery delay — over simulated full-duplex
// switched Ethernet. Admission control uses per-link EDF feasibility
// analysis; end-nodes and switches schedule real-time frames
// Earliest-Deadline-First while unmodified best-effort (TCP-like)
// traffic shares the wire through FCFS queues. Deadlines are split
// across the links of a channel's route by a pluggable deadline
// partitioning scheme: symmetric (SDPS) or load-weighted asymmetric
// (ADPS), the paper's contribution.
//
// One Network type covers every topology. The default is the paper's
// single-switch star, simulated cycle-accurately with the full wire
// protocol; passing a multi-switch Topology (the paper's §18.5 future
// work) routes channels across interconnected switches, partitions
// deadlines per hop, and simulates the admitted RT traffic hop by hop.
//
// A minimal session:
//
//	net := rtether.New(rtether.WithADPS())
//	net.MustAddNode(1)
//	net.MustAddNode(2)
//	ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
//	if err != nil { ... }           // admission said no — see *AdmissionError for why
//	ch.Start(0)                     // C frames every P slots
//	net.RunFor(1000)                // advance virtual time
//	m := ch.Metrics()               // delays, misses
//
// And across a fabric of switches:
//
//	top := rtether.NewTopology()
//	top.AddSwitch(0); top.AddSwitch(1); top.Trunk(0, 1)
//	top.Attach(1, 0); top.Attach(2, 1)
//	net := rtether.New(rtether.WithTopology(top), rtether.WithHDPS(rtether.HADPS()))
//	ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 42})
//
// All times are integer timeslots (one slot = the transmission time of
// one maximal Ethernet frame; see SlotNanos to convert). The simulation
// is fully deterministic: identical call sequences produce identical
// results. See README.md for a tour of the API and migration notes for
// the deprecated ID-based methods.
package rtether

import (
	"io"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Re-exported core types. External users refer to them through these
// names; the internal packages stay private.
type (
	// NodeID identifies an end-node.
	NodeID = core.NodeID
	// ChannelID is the network-unique RT channel identifier (16 bits on
	// the wire).
	ChannelID = core.ChannelID
	// ChannelSpec is a channel request {Src, Dst, P, C, D} in slots.
	ChannelSpec = core.ChannelSpec
	// Partition is a two-hop deadline split {Up, Down}.
	Partition = core.Partition
	// DPS is a deadline partitioning scheme for star networks.
	DPS = core.DPS
	// Report is a measurement snapshot; see Network.Report.
	Report = netsim.Report
	// ChannelMetrics holds one channel's delivery measurements.
	ChannelMetrics = netsim.ChannelMetrics
	// DelayStats is a delay distribution summary.
	DelayStats = stats.Delay
)

// ErrInfeasible is the sentinel wrapped by every feasibility-based
// rejection; errors.Is(err, ErrInfeasible) matches regardless of which
// link failed. The concrete error returned by Establish is an
// *AdmissionError carrying the rejecting link and its diagnostics.
var ErrInfeasible = core.ErrInfeasible

// SDPS returns the Symmetric Deadline Partitioning Scheme (d/2 each way).
func SDPS() DPS { return core.SDPS{} }

// ADPS returns the Asymmetric Deadline Partitioning Scheme (link-load
// weighted), the paper's preferred scheme.
func ADPS() DPS { return core.ADPS{} }

// SlotNanos converts one timeslot to nanoseconds for a link of the given
// rate in Mbit/s (e.g. 100 for Fast Ethernet): 1538 wire bytes per
// maximal frame including preamble and inter-frame gap.
func SlotNanos(mbps int64) int64 { return frame.SlotNanos(mbps) }

// config collects everything the options can set. The star fields feed
// the netsim simulator directly; topology and hdps select and tune the
// fabric backend.
type config struct {
	star     netsim.Config
	topology *Topology
	hdps     HDPS
}

// Option configures a Network.
type Option func(*config)

// WithTopology selects the physical layout. A topology with one switch
// (or none) is the degenerate star that New builds by default — its
// attached nodes are pre-added in attachment order. A topology with
// several switches turns the network into a routed fabric: channels
// cross one uplink, zero or more trunks, and one downlink, and their
// deadlines are partitioned per hop by the scheme set with WithHDPS.
func WithTopology(t *Topology) Option {
	return func(c *config) { c.topology = t }
}

// WithDPS selects the deadline partitioning scheme for star networks
// (default SDPS). On a multi-switch topology, SDPS and ADPS map to their
// hop-general forms H-SDPS and H-ADPS; custom DPS implementations do not
// — use WithHDPS for those.
func WithDPS(d DPS) Option {
	return func(c *config) {
		c.star.DPS = d
		switch d.(type) {
		case core.ADPS:
			c.hdps = HADPS()
		case core.SDPS:
			c.hdps = HSDPS()
		}
	}
}

// WithADPS is shorthand for WithDPS(ADPS()).
func WithADPS() Option { return WithDPS(core.ADPS{}) }

// WithHDPS selects the hop-general deadline partitioning scheme used on
// multi-switch topologies (default HSDPS). It has no effect on stars.
func WithHDPS(h HDPS) Option {
	return func(c *config) { c.hdps = h }
}

// WithShaping enables or disables the release-guard regulator at the
// switches (enabled by default). Disabling reproduces the paper's plain
// work-conserving switch.
func WithShaping(enabled bool) Option {
	return func(c *config) { c.star.DisableShaping = !enabled }
}

// WithNonRTQueueCap bounds every best-effort FCFS queue to the given
// number of frames (0 = unbounded, the default). Star networks only —
// the fabric simulator carries RT traffic exclusively.
func WithNonRTQueueCap(frames int) Option {
	return func(c *config) { c.star.NonRTQueueCap = frames }
}

// WithPropagation sets the per-hop propagation delay in whole slots
// (default 0). It contributes to T_latency in the delivery guarantee
// T_max = d + T_latency (Eq. 18.1), scaled by the route's hop count.
// As in the paper, T_latency is an analytic constant padded onto the
// guarantee; the simulators do not delay individual frames by it.
func WithPropagation(slots int64) Option {
	return func(c *config) { c.star.Propagation = slots }
}

// Discipline selects the real-time queue ordering on every link.
type Discipline = sched.Discipline

// Queue disciplines. Admission control always models EDF; the weaker
// dispatchers exist for comparison experiments (an EDF-admitted set run
// under FIFO misses deadlines — see README.md).
const (
	DisciplineEDF  = sched.DisciplineEDF
	DisciplineFIFO = sched.DisciplineFIFO
	DisciplineDM   = sched.DisciplineDM
)

// WithDiscipline overrides the RT dispatcher (default EDF, the paper's).
// Star networks only.
func WithDiscipline(d Discipline) Option {
	return func(c *config) { c.star.Discipline = d }
}

// Network is one simulated real-time Ethernet network: a single-switch
// star by default, or a routed multi-switch fabric when built with
// WithTopology. Not safe for concurrent use — drive it from one
// goroutine.
type Network struct {
	be      backend
	handles map[ChannelID]*Channel
}

// New creates a network. Without WithTopology (or with a single-switch
// topology) it is the paper's star network, simulated cycle-accurately
// with the full wire protocol; with a multi-switch topology it routes
// channels across the fabric and simulates their RT traffic hop by hop.
func New(opts ...Option) *Network {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	n := &Network{handles: make(map[ChannelID]*Channel)}
	if cfg.topology == nil || cfg.topology.isStar() {
		var nodes []NodeID
		if cfg.topology != nil {
			nodes = cfg.topology.nodes
		}
		n.be = newStarBackend(cfg.star, nodes)
	} else {
		n.be = newFabricBackend(cfg.topology, cfg.hdps, cfg.star)
	}
	return n
}

// AddNode attaches an end-node to the switch of a star network. On a
// multi-switch network nodes are attached via Topology.Attach before New
// and AddNode returns an error.
func (n *Network) AddNode(id NodeID) error {
	return n.be.addNode(id)
}

// MustAddNode is AddNode panicking on error, for static topologies.
func (n *Network) MustAddNode(id NodeID) {
	if err := n.be.addNode(id); err != nil {
		panic(err)
	}
}

// Establish requests an RT channel and returns its handle. On a star
// network the RequestFrame/ResponseFrame handshake runs over the
// simulated wire and consumes virtual time; on a fabric the channel is
// routed, its deadline partitioned per hop, and every affected link
// re-verified, without consuming time.
//
// A feasibility rejection is returned as an *AdmissionError naming the
// saturated link; errors.Is(err, ErrInfeasible) matches it.
func (n *Network) Establish(spec ChannelSpec) (*Channel, error) {
	id, _, err := n.be.establish(spec)
	if err != nil {
		return nil, err
	}
	ch := &Channel{net: n, id: id, spec: spec}
	n.handles[id] = ch
	return ch, nil
}

// EstablishAll requests a whole batch of RT channels as one atomic
// admission decision: the batch is validated, routed (on fabrics),
// partitioned and verified against a single tentative system state — one
// repartition and one verification sweep instead of len(specs) — and
// either every channel is established (handles returned in spec order) or
// none is and the first failure is returned as the usual *AdmissionError.
//
// This is the bulk-provisioning path for scenario loading and offline
// what-if tools: it runs through the management plane directly, so no
// establishment handshake crosses the wire and no virtual time elapses
// even on star networks. It is also the scalable path — admitting N
// channels one Establish at a time repartitions the system N times, while
// EstablishAll does it once (see BenchmarkAdmissionScale).
func (n *Network) EstablishAll(specs []ChannelSpec) ([]*Channel, error) {
	ids, err := n.be.establishAll(specs)
	if err != nil {
		return nil, err
	}
	chs := make([]*Channel, len(ids))
	for i, id := range ids {
		ch := &Channel{net: n, id: id, spec: specs[i]}
		n.handles[id] = ch
		chs[i] = ch
	}
	return chs, nil
}

// Lookup returns the handle of an established channel, or nil. Handles
// exist only for channels established through this Network value.
func (n *Network) Lookup(id ChannelID) *Channel {
	ch := n.handles[id]
	if ch == nil || ch.closed {
		return nil
	}
	return ch
}

// releaseID frees a channel through the management plane and closes its
// handle.
func (n *Network) releaseID(id ChannelID) error {
	if err := n.be.release(id); err != nil {
		return err
	}
	n.closeHandle(id)
	return nil
}

// teardownID initiates a wire-level teardown and closes the handle (the
// reservation itself is freed when the Teardown frame reaches the
// switch).
func (n *Network) teardownID(id ChannelID) error {
	if err := n.be.teardown(id); err != nil {
		return err
	}
	n.closeHandle(id)
	return nil
}

func (n *Network) closeHandle(id ChannelID) {
	if ch := n.handles[id]; ch != nil {
		ch.closed = true
		delete(n.handles, id)
	}
}

// SendBestEffort queues one non-real-time frame from src to dst through
// the FCFS path. It reports false if a bounded queue dropped the frame
// or the network does not carry best-effort traffic (fabrics model RT
// traffic only).
func (n *Network) SendBestEffort(src, dst NodeID, payload []byte) bool {
	return n.be.sendBestEffort(src, dst, payload)
}

// Schedule registers fn to run at the absolute slot t (clamped to the
// current time), for custom traffic generators and experiment drivers.
func (n *Network) Schedule(t int64, fn func()) {
	n.be.schedule(t, fn)
}

// Now returns the current virtual time in slots.
func (n *Network) Now() int64 { return n.be.now() }

// RunFor advances the simulation by d slots.
func (n *Network) RunFor(d int64) { n.be.run(n.be.now() + d) }

// RunUntil advances the simulation to the absolute slot t.
func (n *Network) RunUntil(t int64) { n.be.run(t) }

// Report snapshots all measurements: per-channel delays and misses,
// best-effort throughput and drops (star networks).
func (n *Network) Report() *Report { return n.be.report() }

// GuaranteedDelay returns the delivery guarantee T_max = d + T_latency
// for a spec on this network (Eq. 18.1); on fabrics T_latency scales
// with the route's hop count. It returns 0 when the spec's endpoints
// have no route on this network — no guarantee can be stated for a
// channel admission control could never accept.
func (n *Network) GuaranteedDelay(spec ChannelSpec) int64 {
	return n.be.guaranteedDelay(spec)
}

// LinkLoadUp returns the number of channels on a node's uplink — LL in
// the paper's ADPS definition.
func (n *Network) LinkLoadUp(id NodeID) int { return n.be.linkLoadUp(id) }

// LinkLoadDown returns the number of channels on a node's downlink.
func (n *Network) LinkLoadDown(id NodeID) int { return n.be.linkLoadDown(id) }

// AdmissionStats summarizes admission-control activity so far.
func (n *Network) AdmissionStats() AdmissionStats { return n.be.admissionStats() }

// WriteSnapshot serializes the established channels as indented JSON
// (star networks; see core snapshot format).
func (n *Network) WriteSnapshot(w io.Writer) error { return n.be.writeSnapshot(w) }

// ---------------------------------------------------------------------------
// Deprecated ID-based methods. They remain as thin wrappers for one
// release; new code should use the *Channel handle returned by Establish.

// EstablishID is Establish returning the raw channel ID.
//
// Deprecated: use Establish and the returned *Channel handle.
func (n *Network) EstablishID(spec ChannelSpec) (ChannelID, error) {
	ch, err := n.Establish(spec)
	if err != nil {
		return 0, err
	}
	return ch.id, nil
}

// Release tears down an established channel through the management
// plane.
//
// Deprecated: use Channel.Release.
func (n *Network) Release(id ChannelID) error { return n.releaseID(id) }

// Teardown releases a channel over the wire.
//
// Deprecated: use Channel.Teardown.
func (n *Network) Teardown(id ChannelID) error { return n.teardownID(id) }

// StartTraffic attaches the periodic source of a channel.
//
// Deprecated: use Channel.Start.
func (n *Network) StartTraffic(id ChannelID, offset int64) error {
	return n.be.startTraffic(id, offset)
}

// StopTraffic detaches the periodic source of a channel.
//
// Deprecated: use Channel.Stop.
func (n *Network) StopTraffic(id ChannelID) error {
	return n.be.stopTraffic(id)
}

// Channel returns the committed spec and current two-hop deadline
// partition of an established channel. On routes longer than two hops
// the partition reports the first and last hop budgets.
//
// Deprecated: use the *Channel handle (Spec, Budgets).
func (n *Network) Channel(id ChannelID) (ChannelSpec, Partition, bool) {
	spec, budgets, ok := n.be.channelInfo(id)
	if !ok || len(budgets) == 0 {
		return ChannelSpec{}, Partition{}, false
	}
	return spec, Partition{Up: budgets[0], Down: budgets[len(budgets)-1]}, true
}

// Channels lists established channel IDs in establishment order.
func (n *Network) Channels() []ChannelID { return n.be.channelIDs() }

type errUnknownChannel ChannelID

func (e errUnknownChannel) Error() string {
	return "rtether: unknown channel"
}
