// Package rtether is the public API of the switched-Ethernet real-time
// communication library, a reproduction of Hoang & Jonsson, "Real-Time
// Communication for Industrial Embedded Systems Using Switched Ethernet"
// (IPPS 2004).
//
// The library provides RT channels — virtual connections {P, C, d} with a
// guaranteed worst-case delivery delay — over simulated full-duplex
// switched Ethernet. Admission control uses per-link EDF feasibility
// analysis; end-nodes and switches schedule real-time frames
// Earliest-Deadline-First while unmodified best-effort (TCP-like)
// traffic shares the wire through FCFS queues. Deadlines are split
// across the links of a channel's route by a pluggable deadline
// partitioning scheme: symmetric (SDPS) or load-weighted asymmetric
// (ADPS), the paper's contribution.
//
// One Network type covers every topology. The default is the paper's
// single-switch star, simulated cycle-accurately with the full wire
// protocol; passing a multi-switch Topology (the paper's §18.5 future
// work) routes channels across interconnected switches, partitions
// deadlines per hop, and simulates the admitted RT traffic hop by hop.
//
// A minimal session:
//
//	net := rtether.New(rtether.WithADPS())
//	net.MustAddNode(1)
//	net.MustAddNode(2)
//	ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
//	if err != nil { ... }           // admission said no — see *AdmissionError for why
//	ch.Start(0)                     // C frames every P slots
//	net.RunFor(1000)                // advance virtual time
//	m := ch.Metrics()               // delays, misses
//
// And across a fabric of switches:
//
//	top := rtether.NewTopology()
//	top.AddSwitch(0); top.AddSwitch(1); top.Trunk(0, 1)
//	top.Attach(1, 0); top.Attach(2, 1)
//	net := rtether.New(rtether.WithTopology(top), rtether.WithHDPS(rtether.HADPS()))
//	ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 42})
//
// All times are integer timeslots (one slot = the transmission time of
// one maximal Ethernet frame; see SlotNanos to convert).
//
// # Concurrency
//
// A Network and the *Channel handles it hands out are safe for use from
// any goroutine. Mutating operations (Establish, EstablishAll,
// EstablishEach, Release, Teardown, Start, Stop, SendBestEffort,
// Schedule, RunFor, RunUntil, Close) are
// serialized by an internal lock — one management/simulation plane, as on
// a real switch — while read-only queries (Metrics, Spec, Budgets,
// GuaranteedDelay, AdmissionStats, Lookup, Now, Report, link loads) take
// a shared read lock and proceed in parallel. Callbacks registered with
// Schedule run on the goroutine driving the simulation with the lock
// held, and may call freely back into the Network.
//
// Concurrency does not cost determinism where it matters: the virtual
// clock only advances under the exclusive lock, admission decisions are
// committed one at a time, and replaying the committed operation sequence
// on a fresh Network reproduces identical channels, budgets and
// measurements. See README.md ("Concurrency") for the contract in full.
package rtether

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Re-exported core types. External users refer to them through these
// names; the internal packages stay private.
type (
	// NodeID identifies an end-node.
	NodeID = core.NodeID
	// ChannelID is the network-unique RT channel identifier (16 bits on
	// the wire).
	ChannelID = core.ChannelID
	// ChannelSpec is a channel request {Src, Dst, P, C, D} in slots.
	ChannelSpec = core.ChannelSpec
	// MulticastSpec is a one-source, N-sink channel request
	// {Src, Sinks, P, C, D} in slots; see Network.EstablishMulticast.
	MulticastSpec = core.MulticastSpec
	// Partition is a two-hop deadline split {Up, Down}.
	Partition = core.Partition
	// DPS is a deadline partitioning scheme for star networks.
	DPS = core.DPS
	// Report is a measurement snapshot; see Network.Report.
	Report = netsim.Report
	// ChannelMetrics holds one channel's delivery measurements.
	ChannelMetrics = netsim.ChannelMetrics
	// DelayStats is a delay distribution summary.
	DelayStats = stats.Delay
)

// ErrInfeasible is the sentinel wrapped by every feasibility-based
// rejection; errors.Is(err, ErrInfeasible) matches regardless of which
// link failed. The concrete error returned by Establish is an
// *AdmissionError carrying the rejecting link and its diagnostics.
var ErrInfeasible = core.ErrInfeasible

// SDPS returns the Symmetric Deadline Partitioning Scheme (d/2 each way).
func SDPS() DPS { return core.SDPS{} }

// ADPS returns the Asymmetric Deadline Partitioning Scheme (link-load
// weighted), the paper's preferred scheme.
func ADPS() DPS { return core.ADPS{} }

// SlotNanos converts one timeslot to nanoseconds for a link of the given
// rate in Mbit/s (e.g. 100 for Fast Ethernet): 1538 wire bytes per
// maximal frame including preamble and inter-frame gap.
func SlotNanos(mbps int64) int64 { return frame.SlotNanos(mbps) }

// config collects everything the options can set. The star fields feed
// the netsim simulator directly; topology and hdps select and tune the
// fabric backend.
type config struct {
	star     netsim.Config
	topology *Topology
	hdps     HDPS
	policy   FailurePolicy
}

// Option configures a Network.
type Option func(*config)

// WithTopology selects the physical layout. A topology with one switch
// (or none) is the degenerate star that New builds by default — its
// attached nodes are pre-added in attachment order. A topology with
// several switches turns the network into a routed fabric: channels
// cross one uplink, zero or more trunks, and one downlink, and their
// deadlines are partitioned per hop by the scheme set with WithHDPS.
func WithTopology(t *Topology) Option {
	return func(c *config) { c.topology = t }
}

// WithDPS selects the deadline partitioning scheme for star networks
// (default SDPS). On a multi-switch topology, SDPS and ADPS map to their
// hop-general forms H-SDPS and H-ADPS; custom DPS implementations do not
// — use WithHDPS for those.
func WithDPS(d DPS) Option {
	return func(c *config) {
		c.star.DPS = d
		switch d.(type) {
		case core.ADPS:
			c.hdps = HADPS()
		case core.SDPS:
			c.hdps = HSDPS()
		}
	}
}

// WithADPS is shorthand for WithDPS(ADPS()).
func WithADPS() Option { return WithDPS(core.ADPS{}) }

// WithHDPS selects the hop-general deadline partitioning scheme used on
// multi-switch topologies (default HSDPS). It has no effect on stars.
func WithHDPS(h HDPS) Option {
	return func(c *config) { c.hdps = h }
}

// WithVerifyWorkers bounds the worker pool the admission controller may
// use to verify changed links in one decision: n <= 0 means
// runtime.GOMAXPROCS(0) (the default), 1 forces the sequential sweep.
// Sweeps below an internal threshold (a handful of links — the typical
// single establishment) stay sequential regardless; sweeps touching
// many links, as batch admissions and heavily repartitioning single
// requests do, fan out. Decisions, diagnostics (including which
// saturated link an *AdmissionError names — the first failure in the
// deterministic link order wins) and the LinksChecked statistic are
// identical for every worker count.
func WithVerifyWorkers(n int) Option {
	return func(c *config) { c.star.VerifyWorkers = n }
}

// WithFullRecheck forces every loaded link to be re-verified on each
// admission decision, bypassing both the changed-set narrowing and the
// sweep verdict cache. Decisions, diagnostics and committed state are
// identical either way (the equivalence replays prove it); the mode
// exists as a belt-and-braces diagnostic and for ablation benchmarks —
// it is the slow path by construction.
func WithFullRecheck() Option {
	return func(c *config) { c.star.FullRecheck = true }
}

// WithShaping enables or disables the release-guard regulator at the
// switches (enabled by default). Disabling reproduces the paper's plain
// work-conserving switch.
func WithShaping(enabled bool) Option {
	return func(c *config) { c.star.DisableShaping = !enabled }
}

// WithNonRTQueueCap bounds every best-effort FCFS queue to the given
// number of frames (0 = unbounded, the default). Star networks only —
// the fabric simulator carries RT traffic exclusively.
func WithNonRTQueueCap(frames int) Option {
	return func(c *config) { c.star.NonRTQueueCap = frames }
}

// WithPropagation sets the per-hop propagation delay in whole slots
// (default 0). It contributes to T_latency in the delivery guarantee
// T_max = d + T_latency (Eq. 18.1), scaled by the route's hop count.
// As in the paper, T_latency is an analytic constant padded onto the
// guarantee; the simulators do not delay individual frames by it.
func WithPropagation(slots int64) Option {
	return func(c *config) { c.star.Propagation = slots }
}

// WithFailurePolicy selects what happens to a channel that cannot be
// re-admitted on the residual network after a trunk or switch failure
// (default FailReject; multi-switch networks only — star networks have
// no alternate path to re-route over). See FailurePolicy for the
// ladder: reject, degrade to a relaxed deadline, or preempt
// strictly-lower-priority channels.
func WithFailurePolicy(p FailurePolicy) Option {
	return func(c *config) { c.policy = p }
}

// Discipline selects the real-time queue ordering on every link.
type Discipline = sched.Discipline

// Queue disciplines. Admission control always models EDF; the weaker
// dispatchers exist for comparison experiments (an EDF-admitted set run
// under FIFO misses deadlines — see README.md).
const (
	DisciplineEDF  = sched.DisciplineEDF
	DisciplineFIFO = sched.DisciplineFIFO
	DisciplineDM   = sched.DisciplineDM
)

// WithDiscipline overrides the RT dispatcher (default EDF, the paper's).
// Star networks only.
func WithDiscipline(d Discipline) Option {
	return func(c *config) { c.star.Discipline = d }
}

// Network is one simulated real-time Ethernet network: a single-switch
// star by default, or a routed multi-switch fabric when built with
// WithTopology. Safe for concurrent use; see the package-level
// Concurrency section for the contract.
type Network struct {
	lk      netLock
	be      backend
	handles map[ChannelID]*Channel

	// closed flips once in Close, under the write lock. Mutating calls
	// check it and return ErrClosed; read-only queries keep serving the
	// final state (measurements survive teardown by contract).
	closed bool
}

// ErrClosed is returned by every mutating Network method after Close.
// Read-only queries (Report, Metrics, AdmissionStats, ...) keep working
// on the final state.
var ErrClosed = errors.New("rtether: network is closed")

// New creates a network. Without WithTopology (or with a single-switch
// topology) it is the paper's star network, simulated cycle-accurately
// with the full wire protocol; with a multi-switch topology it routes
// channels across the fabric and simulates their RT traffic hop by hop.
func New(opts ...Option) *Network {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	n := &Network{handles: make(map[ChannelID]*Channel)}
	if cfg.topology == nil || cfg.topology.isStar() {
		var nodes []NodeID
		if cfg.topology != nil {
			nodes = cfg.topology.nodes
		}
		n.be = newStarBackend(cfg.star, nodes)
	} else {
		n.be = newFabricBackend(cfg.topology, cfg.hdps, cfg.star, cfg.policy)
	}
	return n
}

// AddNode attaches an end-node to the switch of a star network. On a
// multi-switch network nodes are attached via Topology.Attach before New
// and AddNode returns an error.
func (n *Network) AddNode(id NodeID) error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return ErrClosed
	}
	return n.be.addNode(id)
}

// MustAddNode is AddNode panicking on error, for static topologies.
func (n *Network) MustAddNode(id NodeID) {
	if err := n.AddNode(id); err != nil {
		panic(err)
	}
}

// Establish requests an RT channel and returns its handle. On a star
// network the RequestFrame/ResponseFrame handshake runs over the
// simulated wire and consumes virtual time; on a fabric the channel is
// routed, its deadline partitioned per hop, and every affected link
// re-verified, without consuming time.
//
// A feasibility rejection is returned as an *AdmissionError naming the
// saturated link; errors.Is(err, ErrInfeasible) matches it.
func (n *Network) Establish(spec ChannelSpec) (*Channel, error) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return nil, ErrClosed
	}
	id, _, err := n.be.establish(spec)
	if err != nil {
		return nil, err
	}
	ch := &Channel{net: n, id: id, spec: spec}
	n.handles[id] = ch
	return ch, nil
}

// EstablishMulticast requests a multicast RT channel — one source, N
// sinks, a single {P, C, D} contract — and returns its handle. The
// channel is routed as a shortest-path distribution tree over the
// topology (on a star: the source uplink plus one downlink per sink),
// the end-to-end deadline D is partitioned over the tree so that every
// root→leaf path sums to exactly D while links shared by several
// branches carry a single budget (not one per sink), and every tree
// link is admitted atomically: if any branch fails its per-link EDF
// feasibility test, the whole tree is rolled back and nothing is
// reserved. The rejection is the usual *AdmissionError, additionally
// naming the failing branch and sink (Branch, Sink).
//
// The handle's Spec reports Sinks[0] as Dst; Sinks returns the full
// sink set, and Metrics aggregates delivery measurements over all
// sinks. Like Establish on a fabric, EstablishMulticast runs through
// the management plane on both topologies — no wire handshake, no
// virtual time.
func (n *Network) EstablishMulticast(spec MulticastSpec) (*Channel, error) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return nil, ErrClosed
	}
	id, _, err := n.be.establishMulticast(spec)
	if err != nil {
		return nil, err
	}
	ch := &Channel{net: n, id: id, spec: spec.ChannelSpec(), sinks: append([]NodeID(nil), spec.Sinks...)}
	n.handles[id] = ch
	return ch, nil
}

// EstablishAll requests a whole batch of RT channels as one atomic
// admission decision: the batch is validated, routed (on fabrics),
// partitioned and verified against a single tentative system state — one
// repartition and one verification sweep instead of len(specs) — and
// either every channel is established (handles returned in spec order) or
// none is and the first failure is returned as the usual *AdmissionError.
//
// This is the bulk-provisioning path for scenario loading and offline
// what-if tools: it runs through the management plane directly, so no
// establishment handshake crosses the wire and no virtual time elapses
// even on star networks. It is also the scalable path — admitting N
// channels one Establish at a time repartitions the system N times, while
// EstablishAll does it once, and its verification sweep fans out over the
// WithVerifyWorkers pool (see BenchmarkAdmissionScale).
func (n *Network) EstablishAll(specs []ChannelSpec) ([]*Channel, error) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return nil, ErrClosed
	}
	ids, err := n.be.establishAll(specs)
	if err != nil {
		return nil, err
	}
	chs := make([]*Channel, len(ids))
	for i, id := range ids {
		ch := &Channel{net: n, id: id, spec: specs[i]}
		n.handles[id] = ch
		chs[i] = ch
	}
	return chs, nil
}

// EstablishEach requests a merged batch of RT channels with one verdict
// per spec: unlike EstablishAll's all-or-nothing decision, each spec is
// accepted or rejected on its own — the verdicts sequential Establish
// calls would produce — while the whole group costs close to one
// repartition and one verification sweep when it is feasible together,
// instead of one per spec. Sequential equivalence is exact for schemes
// that partition each channel independently of system state (SDPS,
// H-SDPS, FixedDPS); under the load-adaptive schemes (ADPS, H-ADPS) a
// merged group can occasionally admit a set of channels that some
// sequential order would have partially rejected — the group's joint
// repartition is what made them fit, and the committed state is
// verified feasible either way (the kernel contract in full:
// internal/admit.AdmitEach). This is the primitive behind the
// admission server's request coalescing: many concurrent clients merge
// into one kernel pass (compare AdmissionStats.Repartitions).
//
// The returned slices are parallel to specs: chs[i] is the established
// handle when errs[i] is nil; a rejected spec gets a nil handle and its
// own error (*AdmissionError for feasibility rejections). Like
// EstablishAll, the batch runs through the management plane — no wire
// handshake, no virtual time — on both topologies. On a closed network
// every verdict is ErrClosed.
func (n *Network) EstablishEach(specs []ChannelSpec) ([]*Channel, []error) {
	defer n.lk.unlock(n.lk.lock())
	chs := make([]*Channel, len(specs))
	if n.closed {
		errs := make([]error, len(specs))
		for i := range errs {
			errs[i] = ErrClosed
		}
		return chs, errs
	}
	ids, errs := n.be.establishEach(specs)
	for i, err := range errs {
		if err != nil {
			continue
		}
		ch := &Channel{net: n, id: ids[i], spec: specs[i]}
		n.handles[ids[i]] = ch
		chs[i] = ch
	}
	return chs, errs
}

// EstablishReq is one entry of a mixed establishment batch
// (EstablishEachMixed): a unicast channel request when Sinks is nil, a
// multicast one otherwise — Spec.Dst is then ignored and the committed
// channel reports Sinks[0] as Dst, exactly as EstablishMulticast.
type EstablishReq struct {
	Spec  ChannelSpec
	Sinks []NodeID
}

// EstablishEachMixed is EstablishEach over a mixed unicast/multicast
// batch: every request — point-to-point channel or distribution tree —
// is accepted or rejected on its own inside one merged kernel pass,
// with the same per-verdict semantics, decision-equivalence contract
// and cost profile as EstablishEach. This is the primitive behind the
// admission server's multicast-aware request coalescing: concurrent
// unicast and multicast clients merge into a single admission decision.
func (n *Network) EstablishEachMixed(reqs []EstablishReq) ([]*Channel, []error) {
	defer n.lk.unlock(n.lk.lock())
	chs := make([]*Channel, len(reqs))
	if n.closed {
		errs := make([]error, len(reqs))
		for i := range errs {
			errs[i] = ErrClosed
		}
		return chs, errs
	}
	creqs := make([]core.Req, len(reqs))
	for i, r := range reqs {
		creqs[i] = core.Req{Spec: r.Spec, Sinks: r.Sinks}
		if len(r.Sinks) > 0 {
			creqs[i].Spec.Dst = r.Sinks[0]
		}
	}
	ids, errs := n.be.establishEachReq(creqs)
	for i, err := range errs {
		if err != nil {
			continue
		}
		ch := &Channel{net: n, id: ids[i], spec: creqs[i].Spec}
		if len(reqs[i].Sinks) > 0 {
			ch.sinks = append([]NodeID(nil), reqs[i].Sinks...)
		}
		n.handles[ids[i]] = ch
		chs[i] = ch
	}
	return chs, errs
}

// Close shuts the network down: every established channel's traffic is
// stopped and its reservation released (measurements survive, as they
// do for any released channel), and every subsequent mutating call —
// Establish, EstablishAll, EstablishEach, AddNode, channel lifecycle
// methods — returns ErrClosed (handles also report ErrChannelClosed,
// since Close released them). RunFor, RunUntil and Schedule become
// no-ops and SendBestEffort reports false. Read-only queries keep
// serving the final state. Close is idempotent and safe to call
// concurrently with any other method; it always returns nil.
func (n *Network) Close() error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return nil
	}
	n.closed = true
	for _, id := range n.be.channelIDs() {
		if err := n.be.release(id); err != nil {
			// channelIDs just listed it and we hold the lock; a failed
			// release means admission state and the backend diverged.
			panic(fmt.Sprintf("rtether: Close: releasing channel %d: %v", id, err))
		}
		n.closeHandle(id)
	}
	return nil
}

// Lookup returns the handle of an established channel, or nil. Handles
// exist only for channels established through this Network value.
func (n *Network) Lookup(id ChannelID) *Channel {
	defer n.lk.runlock(n.lk.rlock())
	ch := n.handles[id]
	if ch == nil || ch.closed {
		return nil
	}
	return ch
}

// releaseChannel frees a channel through the management plane and closes
// its handle.
func (n *Network) releaseChannel(c *Channel) error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return ErrClosed
	}
	if c.closed {
		return ErrChannelClosed
	}
	if err := n.be.release(c.id); err != nil {
		return err
	}
	n.closeHandle(c.id)
	return nil
}

// teardownChannel initiates a wire-level teardown and closes the handle
// (the reservation itself is freed when the Teardown frame reaches the
// switch).
func (n *Network) teardownChannel(c *Channel) error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return ErrClosed
	}
	if c.closed {
		return ErrChannelClosed
	}
	if err := n.be.teardown(c.id); err != nil {
		return err
	}
	n.closeHandle(c.id)
	return nil
}

// startChannel attaches a channel's periodic source.
func (n *Network) startChannel(c *Channel, offset int64) error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return ErrClosed
	}
	if c.closed {
		return ErrChannelClosed
	}
	return n.be.startTraffic(c.id, offset)
}

// stopChannel detaches a channel's periodic source.
func (n *Network) stopChannel(c *Channel) error {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return ErrClosed
	}
	if c.closed {
		return ErrChannelClosed
	}
	return n.be.stopTraffic(c.id)
}

// channelBudgets reads a channel's committed per-hop budgets.
func (n *Network) channelBudgets(c *Channel) []int64 {
	defer n.lk.runlock(n.lk.rlock())
	if c.closed {
		return nil
	}
	_, budgets, _ := n.be.channelInfo(c.id)
	return budgets
}

// channelMetrics snapshots a channel's measurements.
func (n *Network) channelMetrics(c *Channel) *ChannelMetrics {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.metrics(c.id)
}

func (n *Network) closeHandle(id ChannelID) {
	if ch := n.handles[id]; ch != nil {
		ch.closed = true
		delete(n.handles, id)
	}
}

// SendBestEffort queues one non-real-time frame from src to dst through
// the FCFS path. It reports false if a bounded queue dropped the frame
// or the network does not carry best-effort traffic (fabrics model RT
// traffic only).
func (n *Network) SendBestEffort(src, dst NodeID, payload []byte) bool {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return false
	}
	return n.be.sendBestEffort(src, dst, payload)
}

// Schedule registers fn to run at the absolute slot t (clamped to the
// current time), for custom traffic generators and experiment drivers.
// fn runs on the goroutine driving the simulation with the network lock
// held and may call back into the Network and its channel handles.
func (n *Network) Schedule(t int64, fn func()) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return
	}
	n.be.schedule(t, fn)
}

// Now returns the current virtual time in slots.
func (n *Network) Now() int64 {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.now()
}

// RunFor advances the simulation by d slots.
func (n *Network) RunFor(d int64) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return
	}
	n.be.run(n.be.now() + d)
}

// RunUntil advances the simulation to the absolute slot t.
func (n *Network) RunUntil(t int64) {
	defer n.lk.unlock(n.lk.lock())
	if n.closed {
		return
	}
	n.be.run(t)
}

// Report snapshots all measurements: per-channel delays and misses,
// best-effort throughput and drops (star networks). The returned report
// is an independent copy — it does not change as the simulation
// continues.
func (n *Network) Report() *Report {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.report()
}

// GuaranteedDelay returns the delivery guarantee T_max = d + T_latency
// for a spec on this network (Eq. 18.1); on fabrics T_latency scales
// with the route's hop count. It returns 0 when the spec's endpoints
// have no route on this network — no guarantee can be stated for a
// channel admission control could never accept.
func (n *Network) GuaranteedDelay(spec ChannelSpec) int64 {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.guaranteedDelay(spec)
}

// LinkLoadUp returns the number of channels on a node's uplink — LL in
// the paper's ADPS definition.
func (n *Network) LinkLoadUp(id NodeID) int {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.linkLoadUp(id)
}

// LinkLoadDown returns the number of channels on a node's downlink.
func (n *Network) LinkLoadDown(id NodeID) int {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.linkLoadDown(id)
}

// AdmissionStats summarizes admission-control activity so far.
func (n *Network) AdmissionStats() AdmissionStats {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.admissionStats()
}

// WriteSnapshot serializes the established channels as indented JSON
// (star networks; see core snapshot format).
func (n *Network) WriteSnapshot(w io.Writer) error {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.writeSnapshot(w)
}

// Channels lists established channel IDs in establishment order.
func (n *Network) Channels() []ChannelID {
	defer n.lk.runlock(n.lk.rlock())
	return n.be.channelIDs()
}

type errUnknownChannel ChannelID

func (e errUnknownChannel) Error() string {
	return "rtether: unknown channel"
}
