// Package rtether is the public API of the switched-Ethernet real-time
// communication library, a reproduction of Hoang & Jonsson, "Real-Time
// Communication for Industrial Embedded Systems Using Switched Ethernet"
// (IPPS 2004).
//
// The library provides RT channels — virtual connections {P, C, d} with a
// guaranteed worst-case delivery delay — over a simulated full-duplex
// switched Ethernet star network. The switch performs admission control
// using per-link EDF feasibility analysis; both end-nodes and switch
// schedule real-time frames Earliest-Deadline-First while unmodified
// best-effort (TCP-like) traffic shares the wire through FCFS queues.
// Deadlines are split across uplink and downlink by a pluggable deadline
// partitioning scheme: symmetric (SDPS) or load-weighted asymmetric
// (ADPS), the paper's contribution.
//
// A minimal session:
//
//	net := rtether.New(rtether.WithADPS())
//	net.MustAddNode(1)
//	net.MustAddNode(2)
//	id, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
//	if err != nil { ... }           // admission control said no
//	net.StartTraffic(id, 0)         // C frames every P slots
//	net.RunFor(1000)                // advance virtual time
//	rep := net.Report()             // delays, misses, throughput
//
// All times are integer timeslots (one slot = the transmission time of
// one maximal Ethernet frame; see SlotNanos to convert). The simulation
// is fully deterministic: identical call sequences produce identical
// results.
package rtether

import (
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Re-exported core types. External users refer to them through these
// names; the internal packages stay private.
type (
	// NodeID identifies an end-node.
	NodeID = core.NodeID
	// ChannelID is the network-unique RT channel identifier (16 bits on
	// the wire).
	ChannelID = core.ChannelID
	// ChannelSpec is a channel request {Src, Dst, P, C, D} in slots.
	ChannelSpec = core.ChannelSpec
	// Partition is a deadline split {Up, Down}.
	Partition = core.Partition
	// DPS is a deadline partitioning scheme.
	DPS = core.DPS
	// Report is a measurement snapshot; see Network.Report.
	Report = netsim.Report
	// ChannelMetrics holds one channel's delivery measurements.
	ChannelMetrics = netsim.ChannelMetrics
	// DelayStats is a delay distribution summary.
	DelayStats = stats.Delay
)

// ErrInfeasible is returned when admission control rejects a channel.
var ErrInfeasible = core.ErrInfeasible

// SDPS returns the Symmetric Deadline Partitioning Scheme (d/2 each way).
func SDPS() DPS { return core.SDPS{} }

// ADPS returns the Asymmetric Deadline Partitioning Scheme (link-load
// weighted), the paper's preferred scheme.
func ADPS() DPS { return core.ADPS{} }

// SlotNanos converts one timeslot to nanoseconds for a link of the given
// rate in Mbit/s (e.g. 100 for Fast Ethernet): 1538 wire bytes per
// maximal frame including preamble and inter-frame gap.
func SlotNanos(mbps int64) int64 { return frame.SlotNanos(mbps) }

// Option configures a Network.
type Option func(*netsim.Config)

// WithDPS selects the deadline partitioning scheme (default SDPS).
func WithDPS(d DPS) Option { return func(c *netsim.Config) { c.DPS = d } }

// WithADPS is shorthand for WithDPS(ADPS()).
func WithADPS() Option { return WithDPS(core.ADPS{}) }

// WithShaping enables or disables the switch's release-guard regulator
// (enabled by default). Disabling reproduces the paper's plain
// work-conserving switch.
func WithShaping(enabled bool) Option {
	return func(c *netsim.Config) { c.DisableShaping = !enabled }
}

// WithNonRTQueueCap bounds every best-effort FCFS queue to the given
// number of frames (0 = unbounded, the default).
func WithNonRTQueueCap(frames int) Option {
	return func(c *netsim.Config) { c.NonRTQueueCap = frames }
}

// WithPropagation sets the per-hop propagation delay in whole slots
// (default 0). It contributes to T_latency in the delivery guarantee
// T_max = d + T_latency (Eq. 18.1 of the paper).
func WithPropagation(slots int64) Option {
	return func(c *netsim.Config) { c.Propagation = slots }
}

// Discipline selects the real-time queue ordering on every link.
type Discipline = sched.Discipline

// Queue disciplines. Admission control always models EDF; the weaker
// dispatchers exist for comparison experiments (an EDF-admitted set run
// under FIFO misses deadlines — see EXPERIMENTS.md E11).
const (
	DisciplineEDF  = sched.DisciplineEDF
	DisciplineFIFO = sched.DisciplineFIFO
	DisciplineDM   = sched.DisciplineDM
)

// WithDiscipline overrides the RT dispatcher (default EDF, the paper's).
func WithDiscipline(d Discipline) Option {
	return func(c *netsim.Config) { c.Discipline = d }
}

// Network is one simulated star network: a switch plus end-nodes. Not
// safe for concurrent use — drive it from one goroutine.
type Network struct {
	inner *netsim.Network
}

// New creates an empty network.
func New(opts ...Option) *Network {
	var cfg netsim.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &Network{inner: netsim.New(cfg)}
}

// AddNode attaches an end-node to the switch.
func (n *Network) AddNode(id NodeID) error {
	_, err := n.inner.AddNode(id)
	return err
}

// MustAddNode is AddNode panicking on error, for static topologies.
func (n *Network) MustAddNode(id NodeID) {
	n.inner.MustAddNode(id)
}

// Establish runs the RequestFrame/ResponseFrame handshake over the
// simulated wire and returns the assigned channel ID, or ErrInfeasible
// when the switch's feasibility test (or the destination) rejects it.
// Establishment consumes virtual time.
func (n *Network) Establish(spec ChannelSpec) (ChannelID, error) {
	return n.inner.EstablishChannel(spec)
}

// Release tears down an established channel and stops its traffic
// immediately through the management plane.
func (n *Network) Release(id ChannelID) error {
	return n.inner.ReleaseChannel(id)
}

// Teardown releases a channel over the wire: the source node stops its
// traffic and sends a Teardown control frame; the switch frees the
// reservation when the frame arrives (so teardown consumes virtual time,
// unlike Release). Extension — the paper defines establishment only.
func (n *Network) Teardown(id ChannelID) error {
	ch := n.inner.Controller().State().Get(id)
	if ch == nil {
		return errUnknownChannel(id)
	}
	return n.inner.Node(ch.Spec.Src).CloseChannel(id)
}

// StartTraffic attaches the periodic source of a channel: C maximal
// frames every P slots, first release `offset` slots from now.
func (n *Network) StartTraffic(id ChannelID, offset int64) error {
	ch := n.inner.Controller().State().Get(id)
	if ch == nil {
		return errUnknownChannel(id)
	}
	return n.inner.Node(ch.Spec.Src).StartTraffic(id, offset)
}

// SendBestEffort queues one non-real-time frame from src to dst through
// the FCFS path. It reports false if a bounded queue dropped the frame.
func (n *Network) SendBestEffort(src, dst NodeID, payload []byte) bool {
	node := n.inner.Node(src)
	if node == nil {
		return false
	}
	return node.SendNonRT(dst, payload)
}

// Now returns the current virtual time in slots.
func (n *Network) Now() int64 { return n.inner.Engine().Now() }

// RunFor advances the simulation by d slots.
func (n *Network) RunFor(d int64) { n.inner.Run(n.Now() + d) }

// RunUntil advances the simulation to the absolute slot t.
func (n *Network) RunUntil(t int64) { n.inner.Run(t) }

// Report snapshots all measurements: per-channel delays and misses,
// best-effort throughput and drops.
func (n *Network) Report() *Report { return n.inner.Report() }

// Channel returns the committed spec and current deadline partition of an
// established channel.
func (n *Network) Channel(id ChannelID) (ChannelSpec, Partition, bool) {
	ch := n.inner.Controller().State().Get(id)
	if ch == nil {
		return ChannelSpec{}, Partition{}, false
	}
	return ch.Spec, ch.Part, true
}

// Channels lists established channel IDs in establishment order.
func (n *Network) Channels() []ChannelID {
	chs := n.inner.Controller().State().Channels()
	out := make([]ChannelID, len(chs))
	for i, ch := range chs {
		out[i] = ch.ID
	}
	return out
}

// GuaranteedDelay returns the delivery guarantee T_max = d + T_latency
// for a spec on this network (Eq. 18.1).
func (n *Network) GuaranteedDelay(spec ChannelSpec) int64 {
	return spec.D + n.inner.ExtraLatency()
}

// LinkLoadUp returns the number of channels on a node's uplink — LL in
// the paper's ADPS definition.
func (n *Network) LinkLoadUp(id NodeID) int {
	return n.inner.Controller().State().LinkLoad(core.Uplink(id))
}

// LinkLoadDown returns the number of channels on a node's downlink.
func (n *Network) LinkLoadDown(id NodeID) int {
	return n.inner.Controller().State().LinkLoad(core.Downlink(id))
}

type errUnknownChannel ChannelID

func (e errUnknownChannel) Error() string {
	return "rtether: unknown channel"
}
