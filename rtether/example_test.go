package rtether_test

import (
	"errors"
	"fmt"

	"repro/rtether"
)

// The canonical session: build a star network, establish a guaranteed
// channel, run traffic, verify the guarantee.
func Example() {
	net := rtether.New(rtether.WithADPS())
	net.MustAddNode(1)
	net.MustAddNode(2)

	ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		fmt.Println("rejected:", err)
		return
	}
	ch.Start(0)
	net.RunFor(1000)

	m := ch.Metrics()
	fmt.Printf("misses=%d worst<=guarantee=%v\n",
		m.Misses, m.Delays.Max() <= ch.GuaranteedDelay())
	// Output: misses=0 worst<=guarantee=true
}

// Admission control rejects what it cannot guarantee — and says why: the
// seventh channel on one uplink under SDPS overloads link(1,up).
func ExampleNetwork_Establish_rejection() {
	net := rtether.New() // SDPS by default
	for id := rtether.NodeID(1); id <= 8; id++ {
		net.MustAddNode(id)
	}
	for i := 0; i < 7; i++ {
		_, err := net.Establish(rtether.ChannelSpec{
			Src: 1, Dst: rtether.NodeID(2 + i), C: 3, P: 100, D: 40,
		})
		var ae *rtether.AdmissionError
		if errors.As(err, &ae) {
			fmt.Printf("rejected at %s (hop %d): infeasible=%v\n",
				ae.Link, ae.Hop, errors.Is(err, rtether.ErrInfeasible))
		}
	}
	// Output: rejected at link(1,up) (hop 0): infeasible=true
}

// ADPS splits deadlines by link load: a master uplink carrying five
// channels gets five sixths of each deadline.
func ExampleADPS() {
	net := rtether.New(rtether.WithADPS())
	net.MustAddNode(1)
	for id := rtether.NodeID(10); id < 15; id++ {
		net.MustAddNode(id)
	}
	var last *rtether.Channel
	for id := rtether.NodeID(10); id < 15; id++ {
		ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: id, C: 3, P: 100, D: 40})
		if err != nil {
			panic(err)
		}
		last = ch
	}
	b := last.Budgets()
	fmt.Printf("up=%d down=%d\n", b[0], b[1])
	// Output: up=33 down=7
}

// A multi-switch topology routes channels across interconnected switches
// and splits deadlines per hop.
func ExampleWithTopology() {
	top := rtether.NewTopology()
	top.AddSwitch(0)
	top.AddSwitch(1)
	top.Trunk(0, 1)
	top.Attach(1, 0)
	top.Attach(2, 1)

	net := rtether.New(rtether.WithTopology(top), rtether.WithHDPS(rtether.HADPS()))
	ch, err := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 42})
	if err != nil {
		panic(err)
	}
	sum := int64(0)
	for _, b := range ch.Budgets() {
		sum += b
	}
	fmt.Printf("hops=%d sum=%d\n", len(ch.Budgets()), sum)
	// Output: hops=3 sum=42
}

// The flight recorder captures admission decisions and per-frame events.
func ExampleNetwork_SetTracer() {
	net := rtether.New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	tr := rtether.NewRingTracer(128)
	net.SetTracer(tr)

	ch, _ := net.Establish(rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 50, D: 20})
	ch.Start(0)
	net.RunFor(200)

	admits, delivers := 0, 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case rtether.EvAdmitted:
			admits++
		case rtether.EvDeliver:
			delivers++
		}
	}
	fmt.Printf("admits=%d delivered>0=%v\n", admits, delivers > 0)
	// Output: admits=1 delivered>0=true
}
