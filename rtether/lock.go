package rtether

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// netLock is the Network's reader/writer lock with one twist: it is
// reentrant for the goroutine that holds the write side. Callbacks
// registered with Network.Schedule run inside RunFor/RunUntil — on the
// driving goroutine, with the write lock held — and are allowed to call
// back into the Network (query metrics, establish or release channels);
// a plain RWMutex would self-deadlock there.
//
// Only the write side records an owner: read acquisitions never reenter
// each other (callbacks only ever run under the write lock), so readers
// stay on the RWMutex fast path plus one atomic load.
type netLock struct {
	mu    sync.RWMutex
	owner atomic.Int64 // goroutine ID of the write-lock holder, 0 when free
}

// lock acquires the write side unless the calling goroutine already
// holds it. It reports whether the lock was actually taken — pass the
// result to unlock.
func (l *netLock) lock() bool {
	id := goid()
	if l.owner.Load() == id {
		return false // reentrant: a Schedule callback calling back in
	}
	l.mu.Lock()
	l.owner.Store(id)
	return true
}

// unlock releases the write side when lock actually took it.
func (l *netLock) unlock(acquired bool) {
	if acquired {
		l.owner.Store(0)
		l.mu.Unlock()
	}
}

// rlock acquires the read side unless the calling goroutine holds the
// write side (reentrant read from a callback).
func (l *netLock) rlock() bool {
	if l.owner.Load() == goid() {
		return false
	}
	l.mu.RLock()
	return true
}

// runlock releases the read side when rlock actually took it.
func (l *netLock) runlock(acquired bool) {
	if acquired {
		l.mu.RUnlock()
	}
}

// goid returns the current goroutine's ID by parsing the first line of
// its stack trace ("goroutine 123 [running]:"). Goroutine IDs are never
// reused as 0, so 0 can mean "no owner". The parse costs on the order of
// a microsecond — noise against a simulated establishment handshake, and
// the price of letting simulation callbacks use the public API without a
// special re-entrant variant of every method.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
