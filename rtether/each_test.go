package rtether

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// coalesceSpecs draws count specs over 2*pairs nodes (1..pairs sources,
// pairs+1..2*pairs destinations), all feasible together at light load:
// long periods relative to the per-link channel count and deadlines
// roomy enough that the demand test passes for every prefix.
func coalesceSpecs(pairs, count int) []ChannelSpec {
	perLink := int64(count / pairs)
	p := 8 * perLink
	specs := make([]ChannelSpec, count)
	for i := range specs {
		specs[i] = ChannelSpec{
			Src: NodeID(1 + i%pairs), Dst: NodeID(pairs + 1 + (i/pairs)%pairs),
			C: 1, P: p, D: 2*perLink + int64(i%int(perLink)),
		}
	}
	return specs
}

// mixedSpecs draws a saturating workload with invalid and unroutable
// specs sprinkled in.
func mixedSpecs(rng *rand.Rand, nodes, count int) []ChannelSpec {
	specs := make([]ChannelSpec, count)
	for i := range specs {
		src := NodeID(1 + rng.Intn(nodes))
		dst := NodeID(1 + rng.Intn(nodes))
		for dst == src {
			dst = NodeID(1 + rng.Intn(nodes))
		}
		c := int64(1 + rng.Intn(2))
		specs[i] = ChannelSpec{Src: src, Dst: dst, C: c, P: int64(15 + rng.Intn(60)), D: 4*c + int64(rng.Intn(30))}
		switch rng.Intn(25) {
		case 0:
			specs[i].Dst = 99 // unknown node: no route
		case 1:
			specs[i].D = 1 // invalid
		}
	}
	return specs
}

// starNet builds a star with nodes 1..n.
func starNet(n int, opts ...Option) *Network {
	net := New(opts...)
	for i := 1; i <= n; i++ {
		net.MustAddNode(NodeID(i))
	}
	return net
}

// fingerprint serializes the committed channels with budgets.
func fingerprint(net *Network) string {
	out := ""
	for _, id := range net.Channels() {
		ch := net.Lookup(id)
		out += fmt.Sprintf("%d:%v:%v;", id, ch.Spec(), ch.Budgets())
	}
	return out
}

// TestEstablishEachMergedBatchCriterion is the PR acceptance criterion:
// a merged batch of 1000 establishes performs at most 1/10th the
// repartition passes of 1000 sequential establishes (asserted via
// AdmissionStats), and the per-spec verdicts are decision-equivalent to
// sequential submission — on the star and on a fabric.
func TestEstablishEachMergedBatchCriterion(t *testing.T) {
	// SDPS and H-SDPS partition each channel independently of the rest
	// of the system, which makes merged-group admission provably
	// decision-equivalent to sequential submission (the monotone-scheme
	// contract of internal/admit.AdmitEach); the load-adaptive schemes
	// are pinned separately in the core and topo equivalence suites.
	const n = 1000
	mkStar := func() *Network { return starNet(20) }
	mkFabric := func() *Network { return testFabricNet(t) }
	for _, tc := range []struct {
		name  string
		mk    func() *Network
		specs []ChannelSpec
	}{
		{"star", mkStar, coalesceSpecs(10, n)},
		{"fabric", mkFabric, coalesceSpecs(2, n)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			merged := tc.mk()
			chs, errs := merged.EstablishEach(tc.specs)
			mergedStats := merged.AdmissionStats()

			seq := tc.mk()
			accepted := 0
			for i, spec := range tc.specs {
				sch, serr := seq.EstablishAll([]ChannelSpec{spec}) // management plane, like the merged path
				if (serr == nil) != (errs[i] == nil) {
					t.Fatalf("spec %d (%v): merged err=%v, sequential err=%v", i, spec, errs[i], serr)
				}
				if serr != nil {
					continue
				}
				accepted++
				if chs[i].ID() != sch[0].ID() {
					t.Fatalf("spec %d: merged ID %d, sequential ID %d", i, chs[i].ID(), sch[0].ID())
				}
			}
			seqStats := seq.AdmissionStats()
			if got, want := fingerprint(merged), fingerprint(seq); got != want {
				t.Fatal("committed states differ between merged and sequential establishment")
			}
			if mergedStats.Requests != n || seqStats.Requests != n {
				t.Fatalf("requests: merged %d, sequential %d, want %d", mergedStats.Requests, seqStats.Requests, n)
			}
			if mergedStats.Repartitions*10 > seqStats.Repartitions {
				t.Fatalf("merged batch ran %d repartition passes, sequential %d — want <= 1/10th",
					mergedStats.Repartitions, seqStats.Repartitions)
			}
			t.Logf("%s: accepted %d/%d; repartition passes merged=%d sequential=%d (%.1fx)",
				tc.name, accepted, n, mergedStats.Repartitions, seqStats.Repartitions,
				float64(seqStats.Repartitions)/float64(mergedStats.Repartitions))
		})
	}
}

// TestEstablishEachMixedVerdicts replays a saturating workload with
// invalid and unroutable specs through EstablishEach and sequential
// management-plane establishment, star and fabric, and requires
// identical verdicts, error text, and rejection-reason counters.
func TestEstablishEachMixedVerdicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Network
	}{
		// Monotone schemes (the Network defaults, SDPS/H-SDPS): exact
		// sequential equivalence by construction.
		{"star", func() *Network { return starNet(6) }},
		{"fabric", func() *Network { return testFabricNet(t) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			nodes := 6
			if tc.name == "fabric" {
				nodes = 4
			}
			specs := mixedSpecs(rng, nodes, 300)

			merged := tc.mk()
			_, errs := merged.EstablishEach(specs)

			seq := tc.mk()
			var accepted, infeasible, noRoute, invalid int
			for i, spec := range specs {
				// Establish formats errors identically to the merged path
				// (EstablishAll wraps them in a batch prefix instead); on
				// stars it runs the wire handshake, whose admission
				// decisions are the same as the management plane's.
				_, serr := seq.Establish(spec)
				if (serr == nil) != (errs[i] == nil) {
					t.Fatalf("spec %d (%v): merged err=%v, sequential err=%v", i, spec, errs[i], serr)
				}
				if serr == nil {
					accepted++
					continue
				}
				if errs[i].Error() != serr.Error() {
					t.Fatalf("spec %d: errors differ:\n  merged     %v\n  sequential %v", i, errs[i], serr)
				}
				var ae *AdmissionError
				switch {
				case errors.As(errs[i], &ae):
					infeasible++
					if !errors.Is(errs[i], ErrInfeasible) {
						t.Fatalf("spec %d: AdmissionError does not unwrap to ErrInfeasible", i)
					}
				case spec.Dst == 99:
					noRoute++
				default:
					invalid++
				}
			}
			if accepted == 0 || infeasible == 0 || noRoute == 0 || invalid == 0 {
				t.Fatalf("workload not mixed enough: %d accepted, %d infeasible, %d no-route, %d invalid",
					accepted, infeasible, noRoute, invalid)
			}
			ms, ss := merged.AdmissionStats(), seq.AdmissionStats()
			if ms.RejectedNoRoute != noRoute || ss.RejectedNoRoute != noRoute {
				t.Errorf("RejectedNoRoute: merged %d, sequential %d, observed %d", ms.RejectedNoRoute, ss.RejectedNoRoute, noRoute)
			}
			if ms.Accepted != accepted || ms.Accepted != ss.Accepted {
				t.Errorf("Accepted: merged %d, sequential %d, observed %d", ms.Accepted, ss.Accepted, accepted)
			}
			if ms.RejectedInvalid != ss.RejectedInvalid || ms.RejectedInvalid != invalid {
				t.Errorf("RejectedInvalid: merged %d, sequential %d, observed %d", ms.RejectedInvalid, ss.RejectedInvalid, invalid)
			}
			t.Logf("%s: accepted %d infeasible %d no-route %d invalid %d", tc.name, accepted, infeasible, noRoute, invalid)
		})
	}
}
