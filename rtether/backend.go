package rtether

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/fabricsim"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// AdmissionStats summarizes admission-control activity: what was
// requested, what was admitted, and why rejections happened. Both
// backends report the full rejection breakdown, the cumulative per-link
// feasibility-test count and the repartition-pass count.
type AdmissionStats struct {
	Requests             int // establishment requests seen
	Accepted             int // channels admitted
	RejectedInvalid      int // spec validation failures
	RejectedNoRoute      int // unroutable/unknown-endpoint rejections
	RejectedUtilization  int // first-constraint (U > 1) rejections
	RejectedDemand       int // second-constraint (h(t) > t) rejections
	RejectedInconclusive int // analysis hit configured limits
	Released             int // channels torn down
	LinksChecked         int // cumulative per-link feasibility tests
	// VerifyCacheHits counts the LinksChecked answers the kernel's
	// generation-keyed verdict cache served without running the EDF
	// analysis (LinksChecked includes them, so the cache hit-rate is
	// VerifyCacheHits / LinksChecked).
	VerifyCacheHits int
	// SweepNs is the cumulative wall-clock time (nanoseconds) the kernel
	// spent inside verification sweeps. Unlike the deterministic
	// counters above it is measured, so it varies run to run.
	SweepNs int64
	// Repartitions counts the deadline-repartition passes the admission
	// kernel has run: one per scheme attempted per decision — a whole
	// batch (EstablishAll) counts once, and a merged EstablishEach group
	// counts once when it verifies as a whole — plus one per release.
	// It is the direct measure of how much work request coalescing saves
	// over sequential establishment.
	Repartitions int

	// Survivability counters, advanced by failure recovery
	// (Network.SetLinkUp, Network.SetSwitchUp; multi-switch networks
	// only). Rerouted includes channels that needed preemption to fit.
	Rerouted  int // channels re-admitted under their original contract
	Degraded  int // channels re-admitted with a relaxed deadline (FailDegrade)
	Preempted int // lower-priority victims evicted by FailPreempt
	Lost      int // channels the residual network could not keep

	MeanLinkUtilization float64 // mean utilization over loaded links
	LoadedLinks         int     // links carrying at least one channel
}

// backend is the topology-specific engine behind a Network: the
// cycle-accurate single-switch simulator (internal/netsim, full wire
// protocol) or the routed multi-switch simulator (internal/fabricsim).
type backend interface {
	addNode(id NodeID) error
	establish(spec ChannelSpec) (ChannelID, []int64, error)
	establishMulticast(spec MulticastSpec) (ChannelID, []int64, error)
	establishAll(specs []ChannelSpec) ([]ChannelID, error)
	establishEach(specs []ChannelSpec) ([]ChannelID, []error)
	establishEachReq(reqs []core.Req) ([]ChannelID, []error)
	setLinkUp(a, b SwitchID, up bool) (*FailoverReport, error)
	setSwitchUp(s SwitchID, up bool) (*FailoverReport, error)
	setNodeLinkUp(id NodeID, up bool) error
	release(id ChannelID) error
	teardown(id ChannelID) error
	startTraffic(id ChannelID, offset int64) error
	stopTraffic(id ChannelID) error
	sendBestEffort(src, dst NodeID, payload []byte) bool
	schedule(at int64, fn func())
	now() int64
	run(untilSlot int64)
	report() *Report
	channelInfo(id ChannelID) (ChannelSpec, []int64, bool)
	channelIDs() []ChannelID
	metrics(id ChannelID) *ChannelMetrics
	guaranteedDelay(spec ChannelSpec) int64
	linkLoadUp(id NodeID) int
	linkLoadDown(id NodeID) int
	setTracer(t Tracer) bool
	admissionStats() AdmissionStats
	writeSnapshot(w io.Writer) error
}

// ---------------------------------------------------------------------------
// Star backend: one switch, cycle-accurate, full wire protocol.

type starBackend struct {
	inner *netsim.Network
	// noRoute counts establishment attempts rejected before admission
	// control because an endpoint is not an attached node — the star
	// "no route" condition. The controller never sees these, so the
	// backend accounts them (and folds them into Requests) itself.
	noRoute int
}

func newStarBackend(cfg netsim.Config, nodes []NodeID) *starBackend {
	be := &starBackend{inner: netsim.New(cfg)}
	for _, id := range nodes {
		be.inner.MustAddNode(id)
	}
	return be
}

func (b *starBackend) addNode(id NodeID) error {
	_, err := b.inner.AddNode(id)
	return err
}

func (b *starBackend) establish(spec ChannelSpec) (ChannelID, []int64, error) {
	id, err := b.inner.EstablishChannel(spec)
	if err != nil {
		b.noteNoRoute(err)
		return 0, nil, starAdmissionError(spec, err)
	}
	_, budgets, _ := b.channelInfo(id)
	return id, budgets, nil
}

func (b *starBackend) establishMulticast(spec MulticastSpec) (ChannelID, []int64, error) {
	id, err := b.inner.EstablishMulticastChannel(spec)
	if err != nil {
		b.noteNoRoute(err)
		return 0, nil, starMulticastAdmissionError(spec, err)
	}
	_, budgets, _ := b.channelInfo(id)
	return id, budgets, nil
}

func (b *starBackend) establishAll(specs []ChannelSpec) ([]ChannelID, error) {
	ids, err := b.inner.EstablishChannels(specs)
	if err != nil {
		b.noteNoRoute(err)
		return nil, batchAdmissionError(specs, err)
	}
	return ids, nil
}

func (b *starBackend) establishEach(specs []ChannelSpec) ([]ChannelID, []error) {
	ids, errs := b.inner.EstablishEachChannels(specs)
	for i, err := range errs {
		if err == nil {
			continue
		}
		b.noteNoRoute(err)
		errs[i] = starAdmissionError(specs[i], err)
	}
	return ids, errs
}

// establishEachReq admits a mixed unicast/multicast batch with one
// verdict per request (netsim.Network.EstablishEachReqChannels).
func (b *starBackend) establishEachReq(reqs []core.Req) ([]ChannelID, []error) {
	ids, errs := b.inner.EstablishEachReqChannels(reqs)
	for i, err := range errs {
		if err == nil {
			continue
		}
		b.noteNoRoute(err)
		if len(reqs[i].Sinks) > 0 {
			errs[i] = starMulticastAdmissionError(reqs[i].MulticastSpec(), err)
		} else {
			errs[i] = starAdmissionError(reqs[i].Spec, err)
		}
	}
	return ids, errs
}

// noteNoRoute counts an unknown-endpoint rejection, which fails before
// reaching the admission controller's own counters.
func (b *starBackend) noteNoRoute(err error) {
	if errors.Is(err, netsim.ErrUnknownNode) {
		b.noRoute++
	}
}

// batchAdmissionError attributes a batch rejection to the batch spec that
// traverses the rejecting link (the failure may also sit on a link of a
// repartitioned pre-existing channel; then the first spec stands in).
func batchAdmissionError(specs []ChannelSpec, err error) error {
	rej, ok := err.(*core.RejectionError)
	if !ok || len(specs) == 0 {
		return err
	}
	spec := specs[0]
	for _, s := range specs {
		if (rej.Link.Dir == core.Up && s.Src == rej.Link.Node) ||
			(rej.Link.Dir == core.Down && s.Dst == rej.Link.Node) {
			spec = s
			break
		}
	}
	return starAdmissionError(spec, err)
}

func (b *starBackend) release(id ChannelID) error {
	return b.inner.ReleaseChannel(id)
}

func (b *starBackend) teardown(id ChannelID) error {
	ch := b.inner.Controller().State().Get(id)
	if ch == nil {
		return errUnknownChannel(id)
	}
	return b.inner.Node(ch.Spec.Src).CloseChannel(id)
}

func (b *starBackend) startTraffic(id ChannelID, offset int64) error {
	ch := b.inner.Controller().State().Get(id)
	if ch == nil {
		return errUnknownChannel(id)
	}
	return b.inner.Node(ch.Spec.Src).StartTraffic(id, offset)
}

func (b *starBackend) stopTraffic(id ChannelID) error {
	return b.inner.StopTraffic(id)
}

func (b *starBackend) sendBestEffort(src, dst NodeID, payload []byte) bool {
	node := b.inner.Node(src)
	if node == nil {
		return false
	}
	return node.SendNonRT(dst, payload)
}

func (b *starBackend) schedule(at int64, fn func()) {
	if now := b.inner.Engine().Now(); at < now {
		at = now
	}
	b.inner.Engine().At(at, fn)
}

func (b *starBackend) now() int64          { return b.inner.Engine().Now() }
func (b *starBackend) run(untilSlot int64) { b.inner.Run(untilSlot) }

// report snapshots the simulator's live report: the per-channel metrics
// the simulator keeps accumulating are deep-copied so the caller can
// read the report while the simulation advances on another goroutine.
func (b *starBackend) report() *Report {
	r := b.inner.Report()
	for id, m := range r.Channels {
		r.Channels[id] = cloneMetrics(m)
	}
	return r
}

// cloneMetrics deep-copies one channel's measurements.
func cloneMetrics(m *netsim.ChannelMetrics) *ChannelMetrics {
	if m == nil {
		return nil
	}
	return &ChannelMetrics{Delivered: m.Delivered, Misses: m.Misses, Delays: m.Delays.Clone()}
}

func (b *starBackend) channelInfo(id ChannelID) (ChannelSpec, []int64, bool) {
	ch := b.inner.Controller().State().Get(id)
	if ch == nil {
		return ChannelSpec{}, nil, false
	}
	return ch.Spec, []int64{ch.Part.Up, ch.Part.Down}, true
}

func (b *starBackend) channelIDs() []ChannelID {
	chs := b.inner.Controller().State().Channels()
	out := make([]ChannelID, len(chs))
	for i, ch := range chs {
		out[i] = ch.ID
	}
	return out
}

func (b *starBackend) metrics(id ChannelID) *ChannelMetrics {
	return cloneMetrics(b.inner.ChannelMetrics(id))
}

func (b *starBackend) guaranteedDelay(spec ChannelSpec) int64 {
	return spec.D + b.inner.ExtraLatency()
}

func (b *starBackend) linkLoadUp(id NodeID) int {
	return b.inner.Controller().State().LinkLoad(core.Uplink(id))
}

func (b *starBackend) linkLoadDown(id NodeID) int {
	return b.inner.Controller().State().LinkLoad(core.Downlink(id))
}

func (b *starBackend) setTracer(t Tracer) bool {
	b.inner.SetTracer(t)
	return true
}

func (b *starBackend) admissionStats() AdmissionStats {
	st := b.inner.Controller().Stats()
	state := b.inner.Controller().State()
	return AdmissionStats{
		Requests:             st.Requests + b.noRoute,
		Accepted:             st.Accepted,
		RejectedInvalid:      st.RejectedInvalid,
		RejectedNoRoute:      b.noRoute,
		RejectedUtilization:  st.RejectedUtilization,
		RejectedDemand:       st.RejectedDemand,
		RejectedInconclusive: st.RejectedInconclusive,
		Released:             st.Released,
		LinksChecked:         st.LinksChecked,
		VerifyCacheHits:      b.inner.Controller().SweepSkips(),
		SweepNs:              b.inner.Controller().SweepNs(),
		Repartitions:         st.Repartitions,
		MeanLinkUtilization:  state.MeanLinkUtilization(),
		LoadedLinks:          len(state.Links()),
	}
}

func (b *starBackend) writeSnapshot(w io.Writer) error {
	return b.inner.Controller().WriteSnapshot(w)
}

// ---------------------------------------------------------------------------
// Fabric backend: routed multi-switch topology, RT traffic simulation.

type fabricBackend struct {
	top  *Topology
	ctrl *topo.Controller
	sim  *fabricsim.Sim
	prop int64

	// policy is the survivability ladder rung applied when a
	// failure-affected channel cannot be re-admitted (WithFailurePolicy).
	policy FailurePolicy
	// deadEdges mirrors the graph's failure state as directed edges, the
	// granularity the simulator drops frames at. Maintained by
	// failAndRecover (failures) and refreshDeadEdges (repairs).
	deadEdges map[topo.Edge]bool

	stats AdmissionStats
}

func newFabricBackend(top *Topology, hdps topo.HDPS, cfg netsim.Config, policy FailurePolicy) *fabricBackend {
	if hdps == nil {
		hdps = topo.HSDPS{}
	}
	return &fabricBackend{
		top: top,
		ctrl: topo.NewController(top.inner, topo.Config{
			DPS:           hdps,
			Feasibility:   cfg.Feasibility,
			VerifyWorkers: cfg.VerifyWorkers,
			FullRecheck:   cfg.FullRecheck,
		}),
		sim:       fabricsim.NewSim(fabricsim.Config{DisableShaping: cfg.DisableShaping}),
		prop:      cfg.Propagation,
		policy:    policy,
		deadEdges: make(map[topo.Edge]bool),
	}
}

func (b *fabricBackend) addNode(id NodeID) error {
	return fmt.Errorf("rtether: node %d: attach end-nodes via Topology.Attach before New on a multi-switch network", id)
}

func (b *fabricBackend) establish(spec ChannelSpec) (ChannelID, []int64, error) {
	b.stats.Requests++
	ch, err := b.ctrl.Request(spec)
	if err != nil {
		b.noteRejection(spec.Src, err)
		route, _ := b.top.inner.Route(spec.Src, spec.Dst)
		return 0, nil, fabricAdmissionError(spec, err, route)
	}
	b.stats.Accepted++
	if err := b.sim.Install(ch); err != nil {
		// Admission and the simulator disagree on the channel's identity —
		// a programming error, not a runtime condition.
		panic(fmt.Sprintf("rtether: installing admitted channel: %v", err))
	}
	b.syncBudgets(b.ctrl.Repartitioned())
	return ch.ID, append([]int64(nil), ch.Hops...), nil
}

func (b *fabricBackend) establishMulticast(spec MulticastSpec) (ChannelID, []int64, error) {
	b.stats.Requests++
	ch, err := b.ctrl.RequestMulticast(spec)
	if err != nil {
		b.noteRejection(spec.Src, err)
		tree, parents, leaves, _ := b.top.inner.MulticastTree(spec.Src, spec.Sinks)
		return 0, nil, fabricMulticastAdmissionError(spec, err, tree, parents, leaves, spec.Sinks)
	}
	b.stats.Accepted++
	if err := b.sim.Install(ch); err != nil {
		panic(fmt.Sprintf("rtether: installing admitted channel: %v", err))
	}
	b.syncBudgets(b.ctrl.Repartitioned())
	return ch.ID, append([]int64(nil), ch.Hops...), nil
}

func (b *fabricBackend) establishAll(specs []ChannelSpec) ([]ChannelID, error) {
	b.stats.Requests += len(specs)
	chs, err := b.ctrl.RequestAll(specs)
	if err != nil {
		src := NodeID(0)
		if len(specs) > 0 {
			src = specs[0].Src
		}
		b.noteRejection(src, err)
		return nil, b.fabricBatchError(specs, err)
	}
	b.stats.Accepted += len(specs)
	ids := make([]ChannelID, len(chs))
	for i, ch := range chs {
		if err := b.sim.Install(ch); err != nil {
			panic(fmt.Sprintf("rtether: installing admitted channel: %v", err))
		}
		ids[i] = ch.ID
	}
	b.syncBudgets(b.ctrl.Repartitioned())
	return ids, nil
}

// fabricBatchError attributes a batch rejection to the batch spec whose
// route crosses the rejecting edge (falling back to the first spec when
// the failure sits on a repartitioned pre-existing channel's edge).
func (b *fabricBackend) fabricBatchError(specs []ChannelSpec, err error) error {
	rej, ok := err.(*topo.RejectionError)
	if !ok || len(specs) == 0 {
		return err
	}
	spec := specs[0]
	route, _ := b.top.inner.Route(spec.Src, spec.Dst)
	for _, s := range specs {
		r, rErr := b.top.inner.Route(s.Src, s.Dst)
		if rErr != nil {
			continue
		}
		for _, e := range r {
			if e == rej.Edge {
				return fabricAdmissionError(s, err, r)
			}
		}
	}
	return fabricAdmissionError(spec, err, route)
}

// establishEach admits a merged batch with one verdict per spec
// (topo.Controller.RequestEach): accepted channels are installed in the
// running simulation and rejected specs carry their own *AdmissionError,
// with a single budget re-sync for the whole group.
func (b *fabricBackend) establishEach(specs []ChannelSpec) ([]ChannelID, []error) {
	b.stats.Requests += len(specs)
	chs, errs := b.ctrl.RequestEach(specs)
	ids := make([]ChannelID, len(specs))
	for i, err := range errs {
		if err != nil {
			b.noteRejection(specs[i].Src, err)
			route, _ := b.top.inner.Route(specs[i].Src, specs[i].Dst)
			errs[i] = fabricAdmissionError(specs[i], err, route)
			continue
		}
		b.stats.Accepted++
		ch := chs[i]
		if err := b.sim.Install(ch); err != nil {
			panic(fmt.Sprintf("rtether: installing admitted channel: %v", err))
		}
		ids[i] = ch.ID
	}
	b.syncBudgets(b.ctrl.Repartitioned())
	return ids, errs
}

// establishEachReq admits a mixed unicast/multicast batch with one
// verdict per request (topo.Controller.RequestEachReq), installing
// accepted channels in the running simulation exactly as establishEach.
func (b *fabricBackend) establishEachReq(reqs []core.Req) ([]ChannelID, []error) {
	b.stats.Requests += len(reqs)
	chs, errs := b.ctrl.RequestEachReq(reqs)
	ids := make([]ChannelID, len(reqs))
	for i, err := range errs {
		if err != nil {
			b.noteRejection(reqs[i].Spec.Src, err)
			if len(reqs[i].Sinks) > 0 {
				spec := reqs[i].MulticastSpec()
				tree, parents, leaves, _ := b.top.inner.MulticastTree(spec.Src, spec.Sinks)
				errs[i] = fabricMulticastAdmissionError(spec, err, tree, parents, leaves, spec.Sinks)
			} else {
				route, _ := b.top.inner.Route(reqs[i].Spec.Src, reqs[i].Spec.Dst)
				errs[i] = fabricAdmissionError(reqs[i].Spec, err, route)
			}
			continue
		}
		b.stats.Accepted++
		ch := chs[i]
		if err := b.sim.Install(ch); err != nil {
			panic(fmt.Sprintf("rtether: installing admitted channel: %v", err))
		}
		ids[i] = ch.ID
	}
	b.syncBudgets(b.ctrl.Repartitioned())
	return ids, errs
}

func (b *fabricBackend) noteRejection(src NodeID, err error) {
	b.sim.TraceAdmission(src, 0, false, 0)
	rej, ok := err.(*topo.RejectionError)
	if !ok {
		if errors.Is(err, topo.ErrNoRoute) || errors.Is(err, topo.ErrUnknownNode) {
			b.stats.RejectedNoRoute++
		} else {
			b.stats.RejectedInvalid++
		}
		return
	}
	switch rej.Result.Verdict {
	case edf.InfeasibleUtilization:
		b.stats.RejectedUtilization++
	case edf.InfeasibleDemand:
		b.stats.RejectedDemand++
	default:
		b.stats.RejectedInconclusive++
	}
}

// syncBudgets pushes committed per-hop budgets into the running
// simulation for exactly the given channels — the controller reports the
// precise set a mutation repartitioned (Repartitioned), so establish and
// release touch only deltas instead of re-pushing all N channels.
func (b *fabricBackend) syncBudgets(ids []core.ChannelID) {
	st := b.ctrl.State()
	for _, id := range ids {
		hch := st.Get(id)
		if hch == nil {
			continue // repartition delta of a just-released channel
		}
		if err := b.sim.SetBudgets(hch.ID, hch.Hops); err != nil {
			panic(fmt.Sprintf("rtether: syncing hop budgets: %v", err))
		}
	}
}

func (b *fabricBackend) release(id ChannelID) error {
	if b.ctrl.State().Get(id) == nil {
		return errUnknownChannel(id)
	}
	if err := b.ctrl.Release(id); err != nil {
		return err
	}
	b.stats.Released++
	if err := b.sim.Remove(id); err != nil {
		// The controller released a channel the simulation does not know —
		// admission state and the running sim have diverged, which is a
		// programming error, not a runtime condition (same contract as the
		// Install panic in establish).
		panic(fmt.Sprintf("rtether: removing released channel from simulation: %v", err))
	}
	b.syncBudgets(b.ctrl.Repartitioned())
	return nil
}

// teardown on a fabric is release: the multi-switch model carries RT
// traffic only, so there is no wire-level teardown handshake to play out.
func (b *fabricBackend) teardown(id ChannelID) error { return b.release(id) }

func (b *fabricBackend) startTraffic(id ChannelID, offset int64) error {
	if b.ctrl.State().Get(id) == nil {
		return errUnknownChannel(id)
	}
	return b.sim.Start(id, offset)
}

func (b *fabricBackend) stopTraffic(id ChannelID) error {
	if b.ctrl.State().Get(id) == nil {
		return errUnknownChannel(id)
	}
	return b.sim.Stop(id)
}

// sendBestEffort is unsupported on fabrics: the multi-switch simulator
// models RT traffic only (the wire-level FCFS coexistence is validated on
// the star network).
func (b *fabricBackend) sendBestEffort(NodeID, NodeID, []byte) bool { return false }

func (b *fabricBackend) schedule(at int64, fn func()) { b.sim.Schedule(at, fn) }

func (b *fabricBackend) now() int64          { return b.sim.Now() }
func (b *fabricBackend) run(untilSlot int64) { b.sim.Run(untilSlot) }

func (b *fabricBackend) report() *Report {
	r := &Report{
		Now:        b.sim.Now(),
		Channels:   make(map[ChannelID]*ChannelMetrics),
		NonRTDelay: stats.NewDelay(0),
		LinkBusy:   make(map[core.Link]float64),
	}
	// Enumerate the simulator's channels, not the admission state's:
	// measurements survive release (the *Channel.Metrics contract), so a
	// channel torn down mid-run must still appear in the final report,
	// exactly as on the star backend.
	for _, id := range b.sim.ChannelIDs() {
		if m := b.metrics(id); m != nil {
			r.Channels[id] = m
		}
	}
	return r
}

func (b *fabricBackend) channelInfo(id ChannelID) (ChannelSpec, []int64, bool) {
	hch := b.ctrl.State().Get(id)
	if hch == nil {
		return ChannelSpec{}, nil, false
	}
	return hch.Spec, append([]int64(nil), hch.Hops...), true
}

func (b *fabricBackend) channelIDs() []ChannelID {
	chs := b.ctrl.State().Channels()
	out := make([]ChannelID, len(chs))
	for i, ch := range chs {
		out[i] = ch.ID
	}
	return out
}

func (b *fabricBackend) metrics(id ChannelID) *ChannelMetrics {
	m := b.sim.Channel(id)
	// A channel counts in reports as soon as it has any measurement —
	// gating on Delivered alone would make a channel whose every frame
	// missed its deadline vanish from Report() and undercount
	// TotalMisses().
	if m == nil || m.Delivered+m.Misses == 0 {
		return nil
	}
	return &ChannelMetrics{Delivered: m.Delivered, Misses: m.Misses, Delays: m.Delays.Clone()}
}

func (b *fabricBackend) guaranteedDelay(spec ChannelSpec) int64 {
	route, err := b.top.inner.Route(spec.Src, spec.Dst)
	if err != nil {
		// No route between the endpoints: there is no delivery guarantee
		// to state. Fabricating a hop count here would hand callers a
		// bound admission control can never back.
		return 0
	}
	return spec.D + int64(len(route))*b.prop
}

func (b *fabricBackend) linkLoadUp(id NodeID) int {
	home, ok := b.top.inner.Home(id)
	if !ok {
		return 0
	}
	return b.ctrl.State().LinkLoad(topo.Edge{From: topo.NodeEnd(id), To: topo.SwitchEnd(home)})
}

func (b *fabricBackend) linkLoadDown(id NodeID) int {
	home, ok := b.top.inner.Home(id)
	if !ok {
		return 0
	}
	return b.ctrl.State().LinkLoad(topo.Edge{From: topo.SwitchEnd(home), To: topo.NodeEnd(id)})
}

// setTracer installs the flight recorder on the fabric simulator: both
// backends stream the same netsim.TraceEvent vocabulary, so one
// consumer (rtether.RingTracer, rtetherd) serves either topology.
func (b *fabricBackend) setTracer(t Tracer) bool {
	b.sim.SetTracer(t)
	return true
}

func (b *fabricBackend) admissionStats() AdmissionStats {
	st := b.stats
	state := b.ctrl.State()
	st.LinksChecked = b.ctrl.LinksChecked()
	st.VerifyCacheHits = b.ctrl.SweepSkips()
	st.SweepNs = b.ctrl.SweepNs()
	st.Repartitions = b.ctrl.Repartitions()
	st.LoadedLinks = len(state.Edges())
	st.MeanLinkUtilization = state.MeanLinkUtilization()
	return st
}

func (b *fabricBackend) writeSnapshot(w io.Writer) error {
	return fmt.Errorf("rtether: snapshots are not supported on multi-switch networks yet")
}
