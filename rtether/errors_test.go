package rtether

import (
	"errors"
	"strings"
	"testing"
)

// saturate establishes spec-shaped channels from the given src/dst
// generator until one is rejected, returning the rejection.
func saturate(t *testing.T, net *Network, next func(i int) (NodeID, NodeID), spec ChannelSpec, max int) error {
	t.Helper()
	for i := 0; i < max; i++ {
		s := spec
		s.Src, s.Dst = next(i)
		if _, err := net.Establish(s); err != nil {
			return err
		}
	}
	t.Fatalf("no rejection within %d requests", max)
	return nil
}

func TestAdmissionErrorSaturatedUplink(t *testing.T) {
	net := New() // SDPS
	for id := NodeID(1); id <= 9; id++ {
		net.MustAddNode(id)
	}
	// All channels share uplink 1; destinations rotate.
	err := saturate(t, net,
		func(i int) (NodeID, NodeID) { return 1, NodeID(2 + i%8) },
		ChannelSpec{C: 3, P: 100, D: 40}, 20)

	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *AdmissionError", err, err)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Error("AdmissionError does not unwrap to ErrInfeasible")
	}
	if ae.Dir != DirUp || ae.Node != 1 {
		t.Errorf("rejecting link = %s node %d %s, want node 1 up", ae.Link, ae.Node, ae.Dir)
	}
	if ae.Hop != 0 {
		t.Errorf("Hop = %d, want 0 (source uplink)", ae.Hop)
	}
	if ae.Utilization <= 0 {
		t.Errorf("Utilization = %v, want > 0", ae.Utilization)
	}
	if ae.Slack >= 0 {
		t.Errorf("Slack = %d, want negative (demand overload)", ae.Slack)
	}
	if ae.Spec.Src != 1 {
		t.Errorf("Spec = %v, want the rejected request", ae.Spec)
	}
	if !strings.Contains(ae.Error(), "link(1,up)") {
		t.Errorf("message does not name the link: %s", ae.Error())
	}
}

func TestAdmissionErrorSaturatedDownlink(t *testing.T) {
	net := New() // SDPS
	for id := NodeID(1); id <= 9; id++ {
		net.MustAddNode(id)
	}
	// All channels share downlink 9; sources rotate.
	err := saturate(t, net,
		func(i int) (NodeID, NodeID) { return NodeID(1 + i%8), 9 },
		ChannelSpec{C: 3, P: 100, D: 40}, 20)

	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *AdmissionError", err, err)
	}
	if ae.Dir != DirDown || ae.Node != 9 {
		t.Errorf("rejecting link = %s node %d %s, want node 9 down", ae.Link, ae.Node, ae.Dir)
	}
	if ae.Hop != 1 {
		t.Errorf("Hop = %d, want 1 (destination downlink)", ae.Hop)
	}
	if ae.Slack >= 0 {
		t.Errorf("Slack = %d, want negative", ae.Slack)
	}
}

func TestAdmissionErrorUtilizationOverload(t *testing.T) {
	net := New()
	for id := NodeID(1); id <= 4; id++ {
		net.MustAddNode(id)
	}
	// Each channel consumes utilization 0.5 on downlink 4; the third
	// pushes U to 1.5 and fails the first constraint.
	err := saturate(t, net,
		func(i int) (NodeID, NodeID) { return NodeID(1 + i%3), 4 },
		ChannelSpec{C: 50, P: 100, D: 200}, 5)

	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *AdmissionError", err, err)
	}
	if ae.Utilization <= 1 {
		t.Errorf("Utilization = %v, want > 1", ae.Utilization)
	}
	if ae.Slack != 0 {
		t.Errorf("Slack = %d, want 0 for a first-constraint rejection", ae.Slack)
	}
	if !strings.Contains(ae.Reason, "utilization") {
		t.Errorf("Reason = %q, want a utilization verdict", ae.Reason)
	}
}

func TestAdmissionErrorSaturatedTrunk(t *testing.T) {
	top := NewTopology()
	for _, sw := range []SwitchID{0, 1} {
		if err := top.AddSwitch(sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.Trunk(0, 1); err != nil {
		t.Fatal(err)
	}
	for n := NodeID(0); n < 6; n++ {
		if err := top.Attach(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	for n := NodeID(100); n < 106; n++ {
		if err := top.Attach(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	net := New(WithTopology(top)) // H-SDPS

	// Distinct node pairs: edge links stay lightly loaded while every
	// channel crosses the one trunk, which saturates first.
	err := saturate(t, net,
		func(i int) (NodeID, NodeID) { return NodeID(i % 6), NodeID(100 + i%6) },
		ChannelSpec{C: 3, P: 100, D: 40}, 40)

	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v, want *AdmissionError", err, err)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Error("fabric AdmissionError does not unwrap to ErrInfeasible")
	}
	if ae.Dir != DirTrunk {
		t.Errorf("Dir = %s, want trunk", ae.Dir)
	}
	if ae.Hop != 1 {
		t.Errorf("Hop = %d, want 1 (the trunk is the middle hop)", ae.Hop)
	}
	if ae.Node != 0 {
		t.Errorf("Node = %d, want 0 for a trunk rejection", ae.Node)
	}
	if !strings.Contains(ae.Link, "sw0") || !strings.Contains(ae.Link, "sw1") {
		t.Errorf("Link = %q, want the trunk edge", ae.Link)
	}
	if ae.Utilization <= 0 {
		t.Errorf("Utilization = %v, want > 0", ae.Utilization)
	}
}

func TestInvalidSpecIsNotAdmissionError(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	_, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 5}) // D < 2C
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	var ae *AdmissionError
	if errors.As(err, &ae) {
		t.Errorf("validation failure surfaced as AdmissionError: %v", err)
	}
	if !strings.Contains(err.Error(), "store-and-forward") {
		t.Errorf("validation reason lost: %v", err)
	}
}
