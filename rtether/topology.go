package rtether

import (
	"repro/internal/topo"
)

// SwitchID identifies a switch in a multi-switch topology.
type SwitchID = topo.SwitchID

// HDPS is a hop-general deadline partitioning scheme for multi-switch
// topologies.
type HDPS = topo.HDPS

// HSDPS returns the equal-split hop partitioning scheme (SDPS
// generalized to h hops).
func HSDPS() HDPS { return topo.HSDPS{} }

// HADPS returns the link-load-weighted hop partitioning scheme (ADPS
// generalized to h hops).
func HADPS() HDPS { return topo.HADPS{} }

// Topology describes the physical layout of a network before it is
// brought up: switches, the full-duplex trunks between them, and which
// switch each end-node attaches to. Pass a completed Topology to New via
// WithTopology; a topology with a single switch (or none) is the
// degenerate star that New builds by default.
//
// A Topology must be complete before it is handed to New — mutating it
// afterwards has no effect on networks already built from it. The same
// Topology may be shared by several Networks (e.g. to compare
// partitioning schemes on identical layouts).
type Topology struct {
	inner    *topo.Topology
	switches []SwitchID
	trunks   int
	nodes    []NodeID // attachment order
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{inner: topo.NewTopology()}
}

// AddSwitch registers a switch.
func (t *Topology) AddSwitch(id SwitchID) error {
	if err := t.inner.AddSwitch(id); err != nil {
		return err
	}
	t.switches = append(t.switches, id)
	return nil
}

// Trunk connects two switches with a full-duplex inter-switch link.
func (t *Topology) Trunk(a, b SwitchID) error {
	if err := t.inner.ConnectSwitches(a, b); err != nil {
		return err
	}
	t.trunks++
	return nil
}

// Attach homes an end-node on a switch.
func (t *Topology) Attach(n NodeID, s SwitchID) error {
	if err := t.inner.AttachNode(n, s); err != nil {
		return err
	}
	t.nodes = append(t.nodes, n)
	return nil
}

// Switches returns the registered switch IDs in registration order.
func (t *Topology) Switches() []SwitchID {
	return append([]SwitchID(nil), t.switches...)
}

// Nodes returns the attached end-nodes in attachment order.
func (t *Topology) Nodes() []NodeID {
	return append([]NodeID(nil), t.nodes...)
}

// RouteLength returns the number of directed links a channel between the
// two nodes would traverse (useful to pre-check D >= hops*C before
// requesting).
func (t *Topology) RouteLength(src, dst NodeID) (int, error) {
	route, err := t.inner.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return len(route), nil
}

// isStar reports whether the topology degenerates to the paper's
// single-switch star network.
func (t *Topology) isStar() bool { return len(t.switches) <= 1 }
