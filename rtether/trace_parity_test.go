package rtether

import (
	"sort"
	"testing"
)

// traceKinds runs one identical workload — an admitted channel carrying
// traffic, then establishes repeated until the admission kernel rejects
// one — and returns the set of event kinds the tracer observed.
func traceKinds(t *testing.T, net *Network) map[EventKind]bool {
	t.Helper()
	defer net.Close()
	tr := NewRingTracer(4096)
	if !net.SetTracer(tr) {
		t.Fatal("SetTracer = false; every current topology streams trace events")
	}
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 50, D: 40})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	ch.Start(0)
	net.RunFor(200)
	// Pile on heavy channels until utilization overflows: the rejection
	// must reach the tracer as EvRejected on both backends.
	rejected := false
	for i := 0; i < 10 && !rejected; i++ {
		if _, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 20, P: 50, D: 45}); err != nil {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("no establish rejected; workload cannot exercise EvRejected")
	}
	kinds := map[EventKind]bool{}
	for _, e := range tr.Events() {
		kinds[e.Kind] = true
	}
	return kinds
}

// kindNames renders a kind set for failure messages.
func kindNames(ks map[EventKind]bool) []string {
	var out []string
	for k := range ks {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

// TestTracerParityStarFabric pins the tracer contract across backends:
// the star and the multi-switch fabric stream the same event-kind
// vocabulary for the same workload — admissions, rejections, frame
// releases and deliveries all reach the flight recorder on both.
func TestTracerParityStarFabric(t *testing.T) {
	star := New()
	star.MustAddNode(1)
	star.MustAddNode(2)
	starKinds := traceKinds(t, star)

	top := NewTopology()
	for s := SwitchID(0); s < 2; s++ {
		if err := top.AddSwitch(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.Trunk(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := top.Attach(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := top.Attach(2, 1); err != nil {
		t.Fatal(err)
	}
	fabKinds := traceKinds(t, New(WithTopology(top)))

	for _, k := range []EventKind{EvAdmitted, EvRejected, EvRelease, EvDeliver} {
		if !starKinds[k] {
			t.Errorf("star tracer missing %v", k)
		}
		if !fabKinds[k] {
			t.Errorf("fabric tracer missing %v", k)
		}
	}
	if len(starKinds) != len(fabKinds) {
		t.Fatalf("event-kind vocabulary diverged:\n  star   %v\n  fabric %v",
			kindNames(starKinds), kindNames(fabKinds))
	}
	for k := range starKinds {
		if !fabKinds[k] {
			t.Fatalf("star emitted %v but fabric did not:\n  star   %v\n  fabric %v",
				k, kindNames(starKinds), kindNames(fabKinds))
		}
	}
}
