// Binary transport: the latency-critical operations (establish,
// establishAll, multicast, release, reconfigure, stats) optionally
// travel over rtetherd's binary listener (wire binary framing) instead
// of HTTP/JSON. The selection is transparent — same methods, same typed
// errors (a feasibility rejection is still a *rtether.AdmissionError) —
// only the bytes on the socket change. Everything else (watch streams,
// topics, metrics, health) always uses HTTP/JSON.
//
// The transport keeps a small pool of persistent connections and
// pipelines concurrent requests on them with per-request IDs, so N
// goroutines issuing establishes present the server's coalescer with
// the same concurrency as N parallel HTTP requests — merged admission
// flights work identically under either transport.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/rtether"
	"repro/rtether/wire"
)

// Transport selects the wire encoding for the latency-critical calls.
type Transport int

const (
	// TransportJSON (the default) sends every call over HTTP/JSON.
	TransportJSON Transport = iota
	// TransportBinary sends establish/establishAll/multicast/release/
	// reconfigure/stats over the binary listener (WithBinaryAddr);
	// everything else stays on HTTP/JSON.
	TransportBinary
)

// ErrNoBinaryAddr is returned by binary-transport calls when no binary
// listener address was configured.
var ErrNoBinaryAddr = errors.New("client: binary transport selected but no binary address configured (WithBinaryAddr)")

// WithTransport selects the transport for the latency-critical calls.
func WithTransport(t Transport) Option {
	return func(c *Client) { c.transport = t }
}

// WithBinaryAddr sets the daemon's binary listener address
// ("host:port", rtetherd -binaddr).
func WithBinaryAddr(addr string) Option {
	return func(c *Client) { c.bin = newBinPool(addr) }
}

// binPool is a fixed-size pool of persistent pipelined connections.
// Requests round-robin across the pool; each connection multiplexes any
// number of in-flight requests by ID.
type binPool struct {
	addr string
	mu   sync.Mutex
	conn []*binConn
	next int
}

// binPoolSize is the number of persistent connections the pool grows
// to. Pipelining carries the concurrency; a few sockets are only there
// to spread kernel-side wakeups.
const binPoolSize = 4

func newBinPool(addr string) *binPool {
	return &binPool{addr: addr}
}

// get returns a live connection, dialing if the pool has room or the
// slot's previous connection died.
func (p *binPool) get() (*binConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.conn) > 0 {
		for range p.conn {
			bc := p.conn[p.next%len(p.conn)]
			p.next++
			if !bc.dead() {
				return bc, nil
			}
		}
		// Every pooled connection died (daemon restart): drop them all
		// and redial below.
		p.conn = p.conn[:0]
	}
	c, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing binary listener: %w", err)
	}
	bc := newBinConn(c)
	if len(p.conn) < binPoolSize {
		p.conn = append(p.conn, bc)
	}
	return bc, nil
}

// closeIdle tears the pool down; in-flight requests fail over to a
// fresh dial on the next call.
func (p *binPool) closeIdle() {
	p.mu.Lock()
	conns := p.conn
	p.conn = nil
	p.next = 0
	p.mu.Unlock()
	for _, bc := range conns {
		bc.close(errors.New("client: connection pool closed"))
	}
}

// binConn is one persistent pipelined connection: a writer side guarded
// by a mutex over a reused encode buffer, and a reader goroutine that
// demultiplexes reply frames to the waiting requests by ID.
type binConn struct {
	c    net.Conn
	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan wire.Frame
	err     error // set once the connection is dead
}

func newBinConn(c net.Conn) *binConn {
	bc := &binConn{c: c, pending: make(map[uint32]chan wire.Frame)}
	go bc.readLoop()
	return bc
}

func (bc *binConn) dead() bool {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.err != nil
}

// close marks the connection dead and fails every in-flight request:
// pending channels are closed, which waiters observe as a transport
// error.
func (bc *binConn) close(err error) {
	bc.mu.Lock()
	if bc.err == nil {
		bc.err = err
		for id, ch := range bc.pending {
			close(ch)
			delete(bc.pending, id)
		}
	}
	bc.mu.Unlock()
	bc.c.Close()
}

// readLoop demultiplexes reply frames until the connection dies.
func (bc *binConn) readLoop() {
	var buf []byte
	for {
		f, nbuf, err := wire.ReadFrame(bc.c, buf)
		buf = nbuf
		if err != nil {
			bc.close(fmt.Errorf("client: binary connection: %w", err))
			return
		}
		bc.mu.Lock()
		ch, ok := bc.pending[f.ReqID]
		delete(bc.pending, f.ReqID)
		bc.mu.Unlock()
		if !ok {
			continue // abandoned request (context canceled before the reply)
		}
		// The payload aliases the read buffer; copy for the waiter.
		ch <- wire.Frame{Type: f.Type, ReqID: f.ReqID, Payload: append([]byte(nil), f.Payload...)}
	}
}

// send registers a fresh request ID, encodes the frame with enc under
// the write lock and ships it, returning the reply channel.
func (bc *binConn) send(enc func(dst []byte, reqID uint32) []byte) (uint32, chan wire.Frame, error) {
	ch := make(chan wire.Frame, 1)
	bc.mu.Lock()
	if bc.err != nil {
		err := bc.err
		bc.mu.Unlock()
		return 0, nil, err
	}
	bc.nextID++
	id := bc.nextID
	bc.pending[id] = ch
	bc.mu.Unlock()

	bc.wmu.Lock()
	bc.wbuf = enc(bc.wbuf[:0], id)
	_, err := bc.c.Write(bc.wbuf)
	bc.wmu.Unlock()
	if err != nil {
		bc.close(fmt.Errorf("client: binary connection: %w", err))
		return 0, nil, err
	}
	return id, ch, nil
}

// abandon unregisters a request whose caller gave up waiting.
func (bc *binConn) abandon(id uint32) {
	bc.mu.Lock()
	delete(bc.pending, id)
	bc.mu.Unlock()
}

// binCall runs one binary round trip: encode with enc, wait for the
// reply frame, map MsgError to the typed error, and require wantType
// otherwise.
func (c *Client) binCall(ctx context.Context, wantType wire.MsgType, enc func(dst []byte, reqID uint32) []byte) (wire.Frame, error) {
	if c.bin == nil {
		return wire.Frame{}, ErrNoBinaryAddr
	}
	bc, err := c.bin.get()
	if err != nil {
		return wire.Frame{}, err
	}
	id, ch, err := bc.send(enc)
	if err != nil {
		return wire.Frame{}, err
	}
	select {
	case f, ok := <-ch:
		if !ok {
			bc.mu.Lock()
			err := bc.err
			bc.mu.Unlock()
			if err == nil {
				err = errors.New("client: binary connection closed")
			}
			return wire.Frame{}, err
		}
		if f.Type == wire.MsgError {
			we, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				return wire.Frame{}, fmt.Errorf("client: decoding error reply: %w", derr)
			}
			return wire.Frame{}, goError(we)
		}
		if f.Type != wantType {
			return wire.Frame{}, fmt.Errorf("client: unexpected reply type %#x (want %#x)", uint8(f.Type), uint8(wantType))
		}
		return f, nil
	case <-ctx.Done():
		bc.abandon(id)
		return wire.Frame{}, ctx.Err()
	}
}

// ---- binary counterparts of the latency-critical calls ----

func (c *Client) binEstablish(ctx context.Context, spec rtether.ChannelSpec) (Channel, error) {
	ws := wire.FromSpec(spec)
	f, err := c.binCall(ctx, wire.MsgChannel, func(dst []byte, id uint32) []byte {
		return wire.AppendEstablish(dst, id, ws)
	})
	if err != nil {
		return Channel{}, err
	}
	rep, err := wire.DecodeChannelReply(f.Payload)
	if err != nil {
		return Channel{}, fmt.Errorf("client: decoding channel reply: %w", err)
	}
	return channelOf(rep), nil
}

func (c *Client) binEstablishMulticast(ctx context.Context, spec rtether.MulticastSpec) (Channel, error) {
	ws := wire.FromMulticastSpec(spec)
	f, err := c.binCall(ctx, wire.MsgChannel, func(dst []byte, id uint32) []byte {
		return wire.AppendMulticast(dst, id, ws)
	})
	if err != nil {
		return Channel{}, err
	}
	rep, err := wire.DecodeChannelReply(f.Payload)
	if err != nil {
		return Channel{}, fmt.Errorf("client: decoding channel reply: %w", err)
	}
	return channelOf(rep), nil
}

func (c *Client) binEstablishAll(ctx context.Context, specs []rtether.ChannelSpec) ([]Channel, error) {
	wspecs := make([]wire.Spec, len(specs))
	for i, s := range specs {
		wspecs[i] = wire.FromSpec(s)
	}
	f, err := c.binCall(ctx, wire.MsgChannelList, func(dst []byte, id uint32) []byte {
		return wire.AppendEstablishAll(dst, id, wspecs)
	})
	if err != nil {
		return nil, err
	}
	rep, err := wire.DecodeChannelList(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: decoding channel list: %w", err)
	}
	chs := make([]Channel, len(rep.Channels))
	for i, ch := range rep.Channels {
		chs[i] = channelOf(ch)
	}
	return chs, nil
}

func (c *Client) binRelease(ctx context.Context, id rtether.ChannelID) error {
	_, err := c.binCall(ctx, wire.MsgReleased, func(dst []byte, req uint32) []byte {
		return wire.AppendRelease(dst, req, uint32(id))
	})
	return err
}

func (c *Client) binReconfigure(ctx context.Context, req wire.ReconfigureRequest) (Channel, error) {
	f, err := c.binCall(ctx, wire.MsgChannel, func(dst []byte, id uint32) []byte {
		return wire.AppendReconfigure(dst, id, req)
	})
	if err != nil {
		return Channel{}, err
	}
	rep, err := wire.DecodeChannelReply(f.Payload)
	if err != nil {
		return Channel{}, fmt.Errorf("client: decoding channel reply: %w", err)
	}
	return channelOf(rep), nil
}

func (c *Client) binStats(ctx context.Context) (wire.StatsReply, error) {
	f, err := c.binCall(ctx, wire.MsgStatsReply, wire.AppendStats)
	if err != nil {
		return wire.StatsReply{}, err
	}
	rep, err := wire.DecodeStatsReply(f.Payload)
	if err != nil {
		return wire.StatsReply{}, fmt.Errorf("client: decoding stats reply: %w", err)
	}
	return rep, nil
}
