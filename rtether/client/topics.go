package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/rtether"
	"repro/rtether/wire"
)

// Topic errors mirrored from the daemon's envelope codes.
var (
	// ErrUnknownTopic is returned for operations on a topic the daemon
	// does not have.
	ErrUnknownTopic = errors.New("client: unknown topic")
	// ErrDuplicateTopic is returned by CreateTopic when the name is
	// taken.
	ErrDuplicateTopic = errors.New("client: topic already exists")
)

// EstablishMulticast requests one multicast RT channel: a single
// distribution tree from spec.Src to every sink, admitted atomically. A
// feasibility rejection is a *rtether.AdmissionError whose Branch/Sink
// name the failing branch.
func (c *Client) EstablishMulticast(ctx context.Context, spec rtether.MulticastSpec) (Channel, error) {
	if c.transport == TransportBinary {
		return c.binEstablishMulticast(ctx, spec)
	}
	var rep wire.ChannelReply
	err := c.call(ctx, http.MethodPost, "/v1/multicast",
		wire.EstablishMulticastRequest{Spec: wire.FromMulticastSpec(spec)}, &rep)
	if err != nil {
		return Channel{}, err
	}
	return channelOf(rep), nil
}

// CreateTopic declares a pub/sub topic: a named publisher endpoint at
// src with the RT contract {C, P, D}. Nothing is reserved until the
// first subscriber joins.
func (c *Client) CreateTopic(ctx context.Context, name string, src rtether.NodeID, cBudget, period, deadline int64) error {
	return c.call(ctx, http.MethodPost, "/v1/topics",
		wire.CreateTopicRequest{Name: name, Src: uint16(src), C: cBudget, P: period, D: deadline}, nil)
}

// Topics lists the daemon's topics sorted by name.
func (c *Client) Topics(ctx context.Context) ([]wire.TopicInfo, error) {
	var rep wire.TopicsReply
	if err := c.getRetry(ctx, "/v1/topics", &rep); err != nil {
		return nil, err
	}
	return rep.Topics, nil
}

// Publish pushes one message to a topic's current subscribers and
// returns its sequence number in the topic's publish order plus the
// number of feeds it reached.
func (c *Client) Publish(ctx context.Context, topic, payload string) (wire.PublishReply, error) {
	var rep wire.PublishReply
	err := c.call(ctx, http.MethodPost, "/v1/topics/publish",
		wire.PublishRequest{Topic: topic, Payload: payload}, &rep)
	return rep, err
}

// TopicFeed is an open topic subscription stream.
type TopicFeed struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// SubscribeTopic joins node to a topic and opens its message feed. The
// join may grow the topic's multicast tree; a tree that does not fit
// comes back as a *rtether.AdmissionError and nothing changes for the
// existing subscribers. Cancel the context or Close the feed to leave
// the topic (shrinking the tree again).
func (c *Client) SubscribeTopic(ctx context.Context, topic string, node rtether.NodeID) (*TopicFeed, error) {
	path := fmt.Sprintf("/v1/topics/subscribe?topic=%s&node=%d", url.QueryEscape(topic), node)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var env wire.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return nil, fmt.Errorf("client: subscribe: HTTP %d", resp.StatusCode)
		}
		return nil, goError(env.Err)
	}
	return &TopicFeed{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Next blocks for the next published message. It returns io.EOF
// (possibly wrapped) when the feed ends; a gap in Seq on resubscribe
// means the feed fell behind and the daemon dropped it.
func (f *TopicFeed) Next() (wire.TopicEvent, error) {
	var ev wire.TopicEvent
	err := f.dec.Decode(&ev)
	return ev, err
}

// Close leaves the topic.
func (f *TopicFeed) Close() error { return f.body.Close() }
