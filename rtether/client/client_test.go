package client_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/client"
	"repro/rtether/wire"
)

// boot starts a daemon over a 4-node star and returns its client.
func boot(t *testing.T) (*client.Client, *server.Server) {
	t.Helper()
	net := rtether.New()
	for i := 1; i <= 4; i++ {
		net.MustAddNode(rtether.NodeID(i))
	}
	srv := server.New(server.Config{Network: net})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); _ = net.Close() })
	return client.New(ts.URL), srv
}

func TestContextCancellation(t *testing.T) {
	cl, _ := boot(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}); !errors.Is(err, context.Canceled) {
		t.Errorf("Establish with canceled context = %v", err)
	}
	if _, err := cl.Stats(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Stats with canceled context = %v", err)
	}
}

func TestClosedDaemonMapsToErrClosed(t *testing.T) {
	cl, srv := boot(t)
	srv.Close()
	_, err := cl.Establish(context.Background(), rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if !errors.Is(err, rtether.ErrClosed) {
		t.Errorf("establish against closed daemon = %v, want ErrClosed", err)
	}
}

func TestWatchCloseUnblocksNext(t *testing.T) {
	cl, _ := boot(t)
	w, err := cl.Watch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := w.Next()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = w.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Next returned an event after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock after Close")
	}
}

// TestWatchStreamsAcrossClients proves one client's operations are
// visible on another client's watch stream (the multi-client fan-out
// the daemon exists for).
func TestWatchStreamsAcrossClients(t *testing.T) {
	cl1, _ := boot(t)
	cl2 := cl1 // same daemon; a second Client value would behave identically
	ctx := context.Background()
	w, err := cl2.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ch, err := cl1.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != wire.EventAdmit || ev.ID != uint32(ch.ID) {
		t.Errorf("watch saw %+v, want admit of %d", ev, ch.ID)
	}
	if errors.Is(err, io.EOF) {
		t.Error("stream ended unexpectedly")
	}
}
