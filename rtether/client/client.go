// Package client is the typed Go client of the rtetherd admission
// service (internal/server, wire schema rtether/wire): establish,
// establishAll, release, reconfigure, stats, per-channel metrics and
// the streaming /v1/watch event feed, over plain HTTP/JSON with
// connection reuse and per-call context cancellation.
//
// Error fidelity matches the in-process API: a feasibility rejection
// comes back as a *rtether.AdmissionError reconstructed field-for-field
// from the wire, so errors.Is(err, rtether.ErrInfeasible) and
// errors.As(err, &admissionErr) work exactly as they do against a local
// rtether.Network; a draining daemon maps to rtether.ErrClosed and an
// unknown channel ID to ErrUnknownChannel.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/rtether"
	"repro/rtether/wire"
)

// ErrUnknownChannel is returned for operations on a channel ID the
// daemon does not have established.
var ErrUnknownChannel = errors.New("client: unknown channel")

// Channel describes one channel established through the daemon: the
// network-unique ID, the committed per-hop deadline budgets and the
// delivery guarantee T_max. It is a value, not a live handle — the
// daemon owns the rtether handles; remote callers operate by ID.
type Channel struct {
	ID              rtether.ChannelID
	Budgets         []int64
	GuaranteedDelay int64
}

// Client talks to one rtetherd instance. It is safe for concurrent use;
// the underlying http.Client reuses connections across calls.
type Client struct {
	base      string
	hc        *http.Client
	retries   int
	retryBase time.Duration

	// transport and bin select the binary fast path for the
	// latency-critical calls (binary.go); zero values mean HTTP/JSON.
	transport Transport
	bin       *binPool
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is a dedicated http.Client with keep-alives.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at addr ("host:port" or a full
// http:// base URL).
func New(addr string, opts ...Option) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// One daemon, many concurrent calls: keep enough idle connections
	// per host that fan-in load (rtload's worker pool) reuses sockets
	// instead of churning through ephemeral ports.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 128
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		hc:        &http.Client{Transport: tr},
		retries:   defaultRetries,
		retryBase: defaultRetryBase,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// CloseIdleConnections releases pooled connections on both transports.
func (c *Client) CloseIdleConnections() {
	c.hc.CloseIdleConnections()
	if c.bin != nil {
		c.bin.closeIdle()
	}
}

// goError maps a wire error envelope to the typed in-process error.
func goError(we *wire.Error) error {
	switch {
	case we == nil:
		return errors.New("client: malformed error response")
	case we.Code == wire.CodeInfeasible && we.Admission != nil:
		return we.Admission.AdmissionError()
	case we.Code == wire.CodeClosed:
		return fmt.Errorf("client: %s: %w", we.Message, rtether.ErrClosed)
	case we.Code == wire.CodeUnknownChannel:
		return fmt.Errorf("%w: %s", ErrUnknownChannel, we.Message)
	case we.Code == wire.CodeUnknownTopic:
		return fmt.Errorf("%w: %s", ErrUnknownTopic, we.Message)
	case we.Code == wire.CodeDuplicateTopic:
		return fmt.Errorf("%w: %s", ErrDuplicateTopic, we.Message)
	default:
		return we
	}
}

// call performs one JSON round trip. body may be nil (GET); out may be
// nil (reply discarded).
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env wire.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Err == nil {
			return &httpStatusError{method: method, path: path, status: resp.StatusCode}
		}
		return goError(env.Err)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// channelOf converts a wire reply to the client value.
func channelOf(rep wire.ChannelReply) Channel {
	return Channel{ID: rtether.ChannelID(rep.ID), Budgets: rep.Budgets, GuaranteedDelay: rep.GuaranteedDelay}
}

// Establish requests one RT channel. The daemon may coalesce the
// request with other clients' concurrent establishes into one merged
// admission pass; the verdict is this spec's own either way. A
// feasibility rejection is a *rtether.AdmissionError.
func (c *Client) Establish(ctx context.Context, spec rtether.ChannelSpec) (Channel, error) {
	if c.transport == TransportBinary {
		return c.binEstablish(ctx, spec)
	}
	var rep wire.ChannelReply
	err := c.call(ctx, http.MethodPost, "/v1/establish", wire.EstablishRequest{Spec: wire.FromSpec(spec)}, &rep)
	if err != nil {
		return Channel{}, err
	}
	return channelOf(rep), nil
}

// EstablishAll requests an atomic all-or-nothing batch: either every
// spec is admitted (channels returned in spec order) or none is.
func (c *Client) EstablishAll(ctx context.Context, specs []rtether.ChannelSpec) ([]Channel, error) {
	if c.transport == TransportBinary {
		return c.binEstablishAll(ctx, specs)
	}
	req := wire.EstablishAllRequest{Specs: make([]wire.Spec, len(specs))}
	for i, s := range specs {
		req.Specs[i] = wire.FromSpec(s)
	}
	var rep wire.EstablishAllReply
	if err := c.call(ctx, http.MethodPost, "/v1/establishAll", req, &rep); err != nil {
		return nil, err
	}
	chs := make([]Channel, len(rep.Channels))
	for i, ch := range rep.Channels {
		chs[i] = channelOf(ch)
	}
	return chs, nil
}

// Release frees an established channel.
func (c *Client) Release(ctx context.Context, id rtether.ChannelID) error {
	if c.transport == TransportBinary {
		return c.binRelease(ctx, id)
	}
	return c.call(ctx, http.MethodPost, "/v1/release", wire.ReleaseRequest{ID: uint32(id)}, nil)
}

// Reconfigure replaces a channel's parameters with the non-zero
// overrides applied (0 = keep), as release followed by re-establish —
// not one atomic decision. A rejected (or raced; see
// wire.ReconfigureRequest) reconfiguration leaves the channel released.
func (c *Client) Reconfigure(ctx context.Context, id rtether.ChannelID, overrideC, overrideP, overrideD int64) (Channel, error) {
	if c.transport == TransportBinary {
		return c.binReconfigure(ctx, wire.ReconfigureRequest{ID: uint32(id), C: overrideC, P: overrideP, D: overrideD})
	}
	var rep wire.ChannelReply
	err := c.call(ctx, http.MethodPost, "/v1/reconfigure",
		wire.ReconfigureRequest{ID: uint32(id), C: overrideC, P: overrideP, D: overrideD}, &rep)
	if err != nil {
		return Channel{}, err
	}
	return channelOf(rep), nil
}

// SetLinkUp fails (up=false) or repairs (up=true) the trunk between
// switches a and b on the daemon's network (POST /v1/fail). Failing a
// trunk triggers the server-side recovery pass — batch re-route and
// re-admission under the daemon's failure policy — and the reply
// summarizes every affected channel's fate; the same outcomes appear
// on the watch feed as reroute/degrade/preempt/lost events.
func (c *Client) SetLinkUp(ctx context.Context, a, b rtether.SwitchID, up bool) (wire.FailReply, error) {
	var rep wire.FailReply
	err := c.call(ctx, http.MethodPost, "/v1/fail",
		wire.FailRequest{Kind: "link", A: uint16(a), B: uint16(b), Up: up}, &rep)
	return rep, err
}

// SetSwitchUp fails or repairs a whole switch on the daemon's network
// (POST /v1/fail), with the same recovery semantics as SetLinkUp.
func (c *Client) SetSwitchUp(ctx context.Context, s rtether.SwitchID, up bool) (wire.FailReply, error) {
	var rep wire.FailReply
	err := c.call(ctx, http.MethodPost, "/v1/fail",
		wire.FailRequest{Kind: "switch", S: uint16(s), Up: up}, &rep)
	return rep, err
}

// Stats reads the daemon's admission and coalescing counters. Like all
// idempotent reads it retries transient transport and 5xx failures with
// jittered exponential backoff (see WithRetry).
func (c *Client) Stats(ctx context.Context) (wire.StatsReply, error) {
	if c.transport == TransportBinary {
		return c.binStats(ctx)
	}
	var rep wire.StatsReply
	err := c.getRetry(ctx, "/v1/stats", &rep)
	return rep, err
}

// Channels lists the daemon's established channels, retrying transient
// failures.
func (c *Client) Channels(ctx context.Context) ([]wire.ChannelInfo, error) {
	var rep wire.ChannelsReply
	if err := c.getRetry(ctx, "/v1/channels", &rep); err != nil {
		return nil, err
	}
	return rep.Channels, nil
}

// Metrics reads one channel's delivery measurements, retrying transient
// failures.
func (c *Client) Metrics(ctx context.Context, id rtether.ChannelID) (wire.MetricsReply, error) {
	var rep wire.MetricsReply
	err := c.getRetry(ctx, fmt.Sprintf("/v1/metrics?id=%d", id), &rep)
	return rep, err
}

// MetricsProm scrapes the daemon's Prometheus text exposition
// (GET /metrics) into a flat series → value map: the full
// `name{labels}` string (or the bare name when unlabeled) keys each
// sample. Scraping before and after a run and differencing the maps
// attributes server-side counters — cache hit-rate, flights, coalesce
// merges — to that run; the sweep daemon mode and rtload do exactly
// this.
func (c *Client) MetricsProm(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &httpStatusError{method: http.MethodGet, path: "/metrics", status: resp.StatusCode}
	}
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: parsing exposition: %w", err)
	}
	return m, nil
}

// Spans fetches the daemon's admission flight recorder (GET /v1/spans):
// the most recent coalesced flights with their wait / admit / verify /
// publish split, oldest first.
func (c *Client) Spans(ctx context.Context) (wire.SpansReply, error) {
	var rep wire.SpansReply
	err := c.getRetry(ctx, "/v1/spans", &rep)
	return rep, err
}

// Healthz probes daemon liveness, discarding the body. Use HealthzInfo
// for the operational summary.
func (c *Client) Healthz(ctx context.Context) error {
	return c.getRetry(ctx, "/v1/healthz", nil)
}

// HealthzInfo reads the daemon's liveness summary: uptime, build
// identity, watch-feed high-water mark and open channel/topic counts.
func (c *Client) HealthzInfo(ctx context.Context) (wire.HealthzReply, error) {
	var rep wire.HealthzReply
	err := c.getRetry(ctx, "/v1/healthz", &rep)
	return rep, err
}

// Watcher is an open /v1/watch stream.
type Watcher struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// Watch opens the admission event stream: admissions, rejections (with
// full diagnostics) and releases, in daemon event order. Cancel the
// context or Close the watcher to stop. A stream that falls too far
// behind is dropped by the daemon (Next returns io.EOF; Seq gaps on
// reconnect reveal the missed events).
func (c *Client) Watch(ctx context.Context) (*Watcher, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/watch", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var env wire.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return nil, fmt.Errorf("client: watch: HTTP %d", resp.StatusCode)
		}
		return nil, goError(env.Err)
	}
	return &Watcher{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Next blocks for the next event. It returns io.EOF (possibly wrapped)
// when the stream ends.
func (w *Watcher) Next() (wire.WatchEvent, error) {
	var ev wire.WatchEvent
	err := w.dec.Decode(&ev)
	return ev, err
}

// Close terminates the stream.
func (w *Watcher) Close() error { return w.body.Close() }
