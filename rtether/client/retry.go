package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/url"
	"time"

	"repro/rtether/wire"
)

// Retry policy defaults: idempotent reads survive a daemon restart or a
// transient transport failure without the caller seeing it, at a worst
// case of ~1 s of added latency.
const (
	defaultRetries   = 3
	defaultRetryBase = 50 * time.Millisecond
	retryCap         = time.Second
)

// WithRetry overrides the backoff policy for idempotent read calls
// (Stats, Channels, Metrics, Healthz): up to retries re-attempts after
// the first failure, with exponential backoff starting at base.
// WithRetry(0, 0) disables retrying entirely.
func WithRetry(retries int, base time.Duration) Option {
	return func(c *Client) {
		c.retries = retries
		c.retryBase = base
	}
}

// httpStatusError records a non-2xx response whose body carried no
// decodable wire envelope (a proxy error page, a half-dead daemon).
type httpStatusError struct {
	method string
	path   string
	status int
}

func (e *httpStatusError) Error() string {
	return "client: " + e.method + " " + e.path + ": HTTP " + http.StatusText(e.status)
}

// retryable reports whether err is worth re-attempting on an idempotent
// call: transport-level failures (connection refused/reset — the dial
// never reached a verdict) and 5xx-class server errors. Typed verdicts
// (rejections, unknown IDs, invalid specs) and context cancellation are
// final.
func retryable(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		// The request never produced a response; context errors come back
		// wrapped in *url.Error too, and those must not be retried.
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status >= 500
	}
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Code == wire.CodeInternal
	}
	return false
}

// getRetry performs an idempotent GET with jittered exponential
// backoff: attempt k sleeps a uniformly random duration in
// (0, base·2^k], capped at retryCap, so a thundering herd of readers
// decorrelates instead of re-arriving in lockstep.
func (c *Client) getRetry(ctx context.Context, path string, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.call(ctx, http.MethodGet, path, nil, out)
		if err == nil || attempt >= c.retries || !retryable(err) {
			return err
		}
		ceil := c.retryBase << attempt
		if ceil > retryCap || ceil <= 0 {
			ceil = retryCap
		}
		timer := time.NewTimer(time.Duration(1 + rand.Int63n(int64(ceil))))
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}
