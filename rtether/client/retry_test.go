package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/rtether/wire"
)

// flakyHandler fails the first fail requests, then serves stats.
func flakyHandler(fail int, mode string) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= int64(fail) {
			switch mode {
			case "plain500":
				// No wire envelope at all — a proxy error page.
				http.Error(w, "upstream sad", http.StatusInternalServerError)
			case "internal":
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				_ = json.NewEncoder(w).Encode(wire.Envelope{Err: &wire.Error{Code: wire.CodeInternal, Message: "transient"}})
			case "hangup":
				// Kill the connection mid-request: the client sees a
				// transport error, not a status.
				hj, ok := w.(http.Hijacker)
				if !ok {
					panic("no hijacker")
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					panic(err)
				}
				conn.Close()
			}
			return
		}
		_ = json.NewEncoder(w).Encode(wire.StatsReply{})
	}, &calls
}

// TestRetryTransient5xx proves idempotent reads survive a burst of
// transient failures: naked 5xx, enveloped internal errors, and
// connection hang-ups all retry until the daemon answers.
func TestRetryTransient5xx(t *testing.T) {
	for _, mode := range []string{"plain500", "internal", "hangup"} {
		t.Run(mode, func(t *testing.T) {
			h, calls := flakyHandler(2, mode)
			ts := httptest.NewServer(h)
			defer ts.Close()
			cl := New(ts.URL, WithRetry(3, time.Millisecond))
			if _, err := cl.Stats(context.Background()); err != nil {
				t.Fatalf("stats did not survive 2 transient failures: %v", err)
			}
			if got := calls.Load(); got != 3 {
				t.Errorf("server saw %d calls, want 3 (2 failures + 1 success)", got)
			}
		})
	}
}

// TestRetryGivesUp proves the retry budget is a cap, not a loop: a
// persistently failing daemon costs exactly 1+retries attempts and the
// last error surfaces.
func TestRetryGivesUp(t *testing.T) {
	h, calls := flakyHandler(1000, "plain500")
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := New(ts.URL, WithRetry(2, time.Millisecond))
	_, err := cl.Stats(context.Background())
	var se *httpStatusError
	if !errors.As(err, &se) || se.status != http.StatusInternalServerError {
		t.Fatalf("persistent 500 = %v, want httpStatusError 500", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestRetrySkipsFinalVerdicts proves typed verdicts are never retried:
// a 404 unknown-channel answer is final after exactly one attempt.
func TestRetrySkipsFinalVerdicts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(wire.Envelope{Err: &wire.Error{Code: wire.CodeUnknownChannel, Message: "nope"}})
	}))
	defer ts.Close()
	cl := New(ts.URL, WithRetry(5, time.Millisecond))
	if _, err := cl.Metrics(context.Background(), 7); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("metrics = %v, want ErrUnknownChannel", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls for a final verdict, want 1", got)
	}
}

// TestRetryHonorsContext proves cancellation cuts the backoff short:
// with a huge base delay, a canceled context returns promptly instead
// of sleeping out the schedule.
func TestRetryHonorsContext(t *testing.T) {
	h, _ := flakyHandler(1000, "plain500")
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := New(ts.URL, WithRetry(5, 10*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := cl.Stats(ctx); err == nil {
		t.Fatalf("stats succeeded against a dead daemon")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled retry took %v, want prompt return", elapsed)
	}
}
