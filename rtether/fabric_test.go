package rtether

import (
	"errors"
	"testing"
)

func lineFabric(t *testing.T, dps HDPS, switches int) *Fabric {
	t.Helper()
	f := NewFabric(dps)
	for i := 0; i < switches; i++ {
		if err := f.AddSwitch(SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < switches; i++ {
		if err := f.Trunk(SwitchID(i-1), SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFabricEstablishAcrossTrunk(t *testing.T) {
	f := lineFabric(t, HADPS(), 2)
	if err := f.AttachNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.AttachNode(2, 1); err != nil {
		t.Fatal(err)
	}
	hops, err := f.RouteLength(1, 2)
	if err != nil || hops != 3 {
		t.Fatalf("RouteLength = %d,%v, want 3", hops, err)
	}
	id, budgets, err := f.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 3 {
		t.Fatalf("budgets = %v", budgets)
	}
	var sum int64
	for _, b := range budgets {
		if b < 3 {
			t.Errorf("hop budget %d below C", b)
		}
		sum += b
	}
	if sum != 40 {
		t.Errorf("budgets sum to %d, want 40", sum)
	}
	if f.Accepted() != 1 {
		t.Error("Accepted() != 1")
	}
	if err := f.Release(id); err != nil {
		t.Fatal(err)
	}
	if f.Accepted() != 0 {
		t.Error("release did not clear")
	}
}

func TestFabricTopologyFreezes(t *testing.T) {
	f := lineFabric(t, nil, 1)
	f.AttachNode(1, 0)
	f.AttachNode(2, 0)
	if _, _, err := f.Establish(ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSwitch(9); err == nil {
		t.Error("AddSwitch after Establish accepted")
	}
	if err := f.Trunk(0, 9); err == nil {
		t.Error("Trunk after Establish accepted")
	}
	if err := f.AttachNode(9, 0); err == nil {
		t.Error("AttachNode after Establish accepted")
	}
}

func TestFabricRejectionSurfacesInfeasible(t *testing.T) {
	f := lineFabric(t, nil, 1)
	for n := NodeID(1); n <= 9; n++ {
		f.AttachNode(n, 0)
	}
	var lastErr error
	accepted := 0
	for i := 0; i < 9; i++ {
		_, _, err := f.Establish(ChannelSpec{Src: 1, Dst: NodeID(2 + i%8), C: 3, P: 100, D: 40})
		if err == nil {
			accepted++
		} else {
			lastErr = err
		}
	}
	if accepted != 6 {
		t.Errorf("star fabric accepted %d, want 6", accepted)
	}
	if !errors.Is(lastErr, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", lastErr)
	}
}

func TestFabricSimulate(t *testing.T) {
	f := lineFabric(t, HADPS(), 3)
	f.AttachNode(1, 0)
	f.AttachNode(2, 2)
	f.AttachNode(3, 2)
	var ids []ChannelID
	for _, dst := range []NodeID{2, 3} {
		id, _, err := f.Establish(ChannelSpec{Src: 1, Dst: dst, C: 2, P: 50, D: 40})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	run, err := f.Simulate(2000, map[ChannelID]int64{ids[1]: 13})
	if err != nil {
		t.Fatal(err)
	}
	if run.Delivered < 150 { // 2 channels x 2 frames x ~40 periods
		t.Errorf("delivered %d", run.Delivered)
	}
	if run.Misses != 0 {
		t.Errorf("misses %d", run.Misses)
	}
	if run.WorstDelay > 40 || run.WorstDelay < 4 {
		t.Errorf("worst delay %d outside (4, 40]", run.WorstDelay)
	}

	// Empty fabric simulates to zeros.
	empty := NewFabric(nil)
	if run, err := empty.Simulate(100, nil); err != nil || run != (FabricRun{}) {
		t.Errorf("empty fabric: %+v, %v", run, err)
	}
}

func TestFabricSimulateIncremental(t *testing.T) {
	// Channels admitted between Simulate calls carry traffic on the next
	// call.
	f := lineFabric(t, HADPS(), 2)
	f.AttachNode(1, 0)
	f.AttachNode(2, 1)
	f.AttachNode(3, 1)
	if _, _, err := f.Establish(ChannelSpec{Src: 1, Dst: 2, C: 2, P: 50, D: 40}); err != nil {
		t.Fatal(err)
	}
	run1, err := f.Simulate(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run1.Delivered == 0 {
		t.Fatal("first channel delivered nothing")
	}
	if _, _, err := f.Establish(ChannelSpec{Src: 1, Dst: 3, C: 2, P: 50, D: 40}); err != nil {
		t.Fatal(err)
	}
	run2, err := f.Simulate(2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Another 1000 slots with both channels: ~40 more frames each.
	if run2.Delivered < run1.Delivered+70 {
		t.Errorf("delivered %d → %d; the late-admitted channel carried no traffic",
			run1.Delivered, run2.Delivered)
	}
	if run2.Misses != 0 {
		t.Errorf("misses = %d", run2.Misses)
	}
}

func TestFabricReleaseBeforeEstablish(t *testing.T) {
	f := NewFabric(nil)
	if err := f.Release(1); err == nil {
		t.Error("release on closed fabric accepted")
	}
	if f.Accepted() != 0 {
		t.Error("Accepted on closed fabric != 0")
	}
}
