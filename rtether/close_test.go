package rtether

import (
	"errors"
	"testing"
)

// testFabricNet builds a small 2-switch fabric network.
func testFabricNet(t *testing.T) *Network {
	t.Helper()
	top := NewTopology()
	if err := top.AddSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := top.AddSwitch(1); err != nil {
		t.Fatal(err)
	}
	if err := top.Trunk(0, 1); err != nil {
		t.Fatal(err)
	}
	for n := NodeID(1); n <= 4; n++ {
		if err := top.Attach(n, SwitchID((n-1)%2)); err != nil {
			t.Fatal(err)
		}
	}
	return New(WithTopology(top))
}

// TestCloseStar pins the Close contract on a star network: traffic
// stops, channels release, mutators return ErrClosed, reads keep
// working, and Close is idempotent.
func TestCloseStar(t *testing.T) {
	net := New(WithADPS())
	net.MustAddNode(1)
	net.MustAddNode(2)
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 10, D: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Start(0); err != nil {
		t.Fatal(err)
	}
	net.RunFor(100)
	before := ch.Metrics()
	if before == nil || before.Delivered == 0 {
		t.Fatalf("channel delivered nothing before close: %+v", before)
	}

	if err := net.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 10, D: 8}); !errors.Is(err, ErrClosed) {
		t.Errorf("Establish after Close = %v, want ErrClosed", err)
	}
	if _, err := net.EstablishAll([]ChannelSpec{{Src: 1, Dst: 2, C: 1, P: 10, D: 8}}); !errors.Is(err, ErrClosed) {
		t.Errorf("EstablishAll after Close = %v, want ErrClosed", err)
	}
	if _, errs := net.EstablishEach([]ChannelSpec{{Src: 1, Dst: 2, C: 1, P: 10, D: 8}}); !errors.Is(errs[0], ErrClosed) {
		t.Errorf("EstablishEach after Close = %v, want ErrClosed", errs[0])
	}
	if err := net.AddNode(9); !errors.Is(err, ErrClosed) {
		t.Errorf("AddNode after Close = %v, want ErrClosed", err)
	}
	if err := ch.Start(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after Close = %v, want ErrClosed", err)
	}
	if err := ch.Release(); !errors.Is(err, ErrClosed) {
		t.Errorf("Release after Close = %v, want ErrClosed", err)
	}
	if net.SendBestEffort(1, 2, []byte("x")) {
		t.Error("SendBestEffort succeeded after Close")
	}
	if net.Lookup(ch.ID()) != nil {
		t.Error("Lookup returned a handle for a closed channel")
	}
	if got := len(net.Channels()); got != 0 {
		t.Errorf("%d channels still established after Close", got)
	}

	// The clock must not advance and callbacks must not run.
	now := net.Now()
	ran := false
	net.Schedule(now+10, func() { ran = true })
	net.RunFor(100)
	if net.Now() != now {
		t.Errorf("clock advanced after Close: %d → %d", now, net.Now())
	}
	if ran {
		t.Error("Schedule callback ran after Close")
	}

	// Reads survive: the released channel's measurements are retained.
	st := net.AdmissionStats()
	if st.Released != 1 {
		t.Errorf("Released = %d after Close, want 1", st.Released)
	}
	rep := net.Report()
	if rep == nil || rep.Channels[ch.ID()] == nil {
		t.Error("Report lost the released channel's measurements after Close")
	}
	if m := ch.Metrics(); m == nil || m.Delivered != before.Delivered {
		t.Errorf("Metrics after Close = %+v, want delivered %d", m, before.Delivered)
	}
}

// TestCloseFabric pins the same contract on a routed fabric.
func TestCloseFabric(t *testing.T) {
	net := testFabricNet(t)
	ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 10, D: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Start(0); err != nil {
		t.Fatal(err)
	}
	net.RunFor(50)

	if err := net.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 10, D: 8}); !errors.Is(err, ErrClosed) {
		t.Errorf("Establish after Close = %v, want ErrClosed", err)
	}
	if err := ch.Stop(); !errors.Is(err, ErrClosed) {
		t.Errorf("Stop after Close = %v, want ErrClosed", err)
	}
	if err := ch.Teardown(); !errors.Is(err, ErrClosed) {
		t.Errorf("Teardown after Close = %v, want ErrClosed", err)
	}
	if got := len(net.Channels()); got != 0 {
		t.Errorf("%d channels still established after Close", got)
	}
	// Fabric reads survive too (released channels keep measurements).
	if rep := net.Report(); rep == nil || rep.Channels[ch.ID()] == nil {
		t.Error("fabric Report lost the released channel's measurements after Close")
	}
}

// TestCloseConcurrent closes the network while other goroutines mutate
// and read it; run under -race this pins the lock discipline.
func TestCloseConcurrent(t *testing.T) {
	net := New()
	net.MustAddNode(1)
	net.MustAddNode(2)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ch, err := net.Establish(ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrInfeasible) {
						t.Errorf("Establish: %v", err)
					}
					continue
				}
				_ = net.AdmissionStats()
				_ = ch.Release()
			}
		}()
	}
	_ = net.Close()
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(net.Channels()); got != 0 {
		t.Errorf("%d channels left after concurrent Close", got)
	}
}
