package rtether

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestEstablishAllStarMatchesSequential verifies the batch API on a star
// network: a feasible batch commits exactly the channels (IDs, budgets)
// that sequential establishment commits.
func TestEstablishAllStarMatchesSequential(t *testing.T) {
	specs := make([]ChannelSpec, 0, 12)
	for i := 0; i < 12; i++ {
		specs = append(specs, ChannelSpec{
			Src: NodeID(i % 4), Dst: NodeID(4 + i%3), C: 2, P: 100, D: 40,
		})
	}
	build := func() *Network {
		n := New(WithADPS())
		for id := NodeID(0); id < 7; id++ {
			n.MustAddNode(id)
		}
		return n
	}

	seq := build()
	var seqChs []*Channel
	for i, s := range specs {
		ch, err := seq.Establish(s)
		if err != nil {
			t.Fatalf("sequential establish %d: %v", i, err)
		}
		seqChs = append(seqChs, ch)
	}

	batch := build()
	chs, err := batch.EstablishAll(specs)
	if err != nil {
		t.Fatalf("EstablishAll: %v", err)
	}
	if len(chs) != len(specs) {
		t.Fatalf("EstablishAll returned %d handles for %d specs", len(chs), len(specs))
	}
	for i, ch := range chs {
		if ch.ID() != seqChs[i].ID() {
			t.Errorf("channel %d: batch ID %d, sequential ID %d", i, ch.ID(), seqChs[i].ID())
		}
		if !reflect.DeepEqual(ch.Budgets(), seqChs[i].Budgets()) {
			t.Errorf("channel %d: batch budgets %v, sequential %v", i, ch.Budgets(), seqChs[i].Budgets())
		}
		if ch.Spec() != specs[i] {
			t.Errorf("channel %d: spec %v, want %v", i, ch.Spec(), specs[i])
		}
	}
	st := batch.AdmissionStats()
	if st.Requests != len(specs) || st.Accepted != len(specs) {
		t.Errorf("batch AdmissionStats = %+v", st)
	}
	// Handles are live: release through one.
	if err := chs[0].Release(); err != nil {
		t.Errorf("release of batch-established channel: %v", err)
	}
}

// TestEstablishAllFabricMatchesSequential verifies the batch API across a
// multi-switch fabric.
func TestEstablishAllFabricMatchesSequential(t *testing.T) {
	specs := []ChannelSpec{
		{Src: 0, Dst: 100, C: 3, P: 100, D: 60},
		{Src: 1, Dst: 101, C: 3, P: 100, D: 60},
		{Src: 100, Dst: 2, C: 3, P: 100, D: 60},
		{Src: 3, Dst: 4, C: 3, P: 100, D: 60},
	}
	build := func() *Network {
		return New(WithTopology(lineTopology(t, 3)), WithHDPS(HADPS()))
	}

	seq := build()
	var seqChs []*Channel
	for i, s := range specs {
		ch, err := seq.Establish(s)
		if err != nil {
			t.Fatalf("sequential establish %d: %v", i, err)
		}
		seqChs = append(seqChs, ch)
	}
	// Budgets must be read after the whole sequence: each establishment
	// may repartition earlier channels (the DPS is a function of the
	// system state).
	var seqBudgets [][]int64
	for _, ch := range seqChs {
		seqBudgets = append(seqBudgets, ch.Budgets())
	}

	batch := build()
	chs, err := batch.EstablishAll(specs)
	if err != nil {
		t.Fatalf("EstablishAll: %v", err)
	}
	for i, ch := range chs {
		if !reflect.DeepEqual(ch.Budgets(), seqBudgets[i]) {
			t.Errorf("channel %d: batch budgets %v, sequential %v", i, ch.Budgets(), seqBudgets[i])
		}
	}
	// The running simulation got the budgets too: traffic meets deadlines.
	for _, ch := range chs {
		if err := ch.Start(0); err != nil {
			t.Fatalf("start: %v", err)
		}
	}
	batch.RunFor(500)
	if misses := batch.Report().TotalMisses(); misses != 0 {
		t.Errorf("batch-established fabric traffic missed %d deadlines", misses)
	}
}

// TestEstablishAllAtomic verifies all-or-nothing semantics on both
// backends: one infeasible member rejects the whole batch, the rejection
// carries the usual AdmissionError diagnostics, and nothing commits.
func TestEstablishAllAtomic(t *testing.T) {
	hog := ChannelSpec{Src: 1, Dst: 2, C: 90, P: 100, D: 190}
	batchSpecs := []ChannelSpec{
		{Src: 1, Dst: 2, C: 3, P: 100, D: 40},
		hog, hog, hog, // three U=0.9 channels on uplink 1 can never fit
	}

	t.Run("star", func(t *testing.T) {
		n := New(WithADPS())
		for id := NodeID(1); id <= 3; id++ {
			n.MustAddNode(id)
		}
		chs, err := n.EstablishAll(batchSpecs)
		if err == nil {
			t.Fatal("infeasible batch accepted")
		}
		if chs != nil {
			t.Fatalf("rejected batch returned handles: %v", chs)
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("batch rejection is not ErrInfeasible: %v", err)
		}
		var ae *AdmissionError
		if !errors.As(err, &ae) {
			t.Fatalf("batch rejection is not an *AdmissionError: %v", err)
		}
		if got := len(n.Channels()); got != 0 {
			t.Fatalf("rejected batch left %d channels committed", got)
		}
		// The network still admits sequentially afterwards.
		if _, err := n.Establish(batchSpecs[0]); err != nil {
			t.Fatalf("network wedged after batch rejection: %v", err)
		}
	})

	t.Run("fabric", func(t *testing.T) {
		n := New(WithTopology(lineTopology(t, 2)), WithHDPS(HSDPS()))
		specs := []ChannelSpec{
			{Src: 0, Dst: 100, C: 3, P: 100, D: 60},
			{Src: 1, Dst: 2, C: 90, P: 100, D: 190},
			{Src: 1, Dst: 2, C: 90, P: 100, D: 190},
			{Src: 1, Dst: 2, C: 90, P: 100, D: 190},
		}
		if _, err := n.EstablishAll(specs); err == nil {
			t.Fatal("infeasible batch accepted")
		} else if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("batch rejection is not ErrInfeasible: %v", err)
		}
		if got := len(n.Channels()); got != 0 {
			t.Fatalf("rejected batch left %d channels committed", got)
		}
	})
}

// TestEstablishAllInvalidSpec verifies a validation failure inside a
// batch surfaces as the plain validation error, not a feasibility one.
func TestEstablishAllInvalidSpec(t *testing.T) {
	n := New()
	n.MustAddNode(1)
	n.MustAddNode(2)
	_, err := n.EstablishAll([]ChannelSpec{
		{Src: 1, Dst: 2, C: 3, P: 100, D: 40},
		{Src: 1, Dst: 1, C: 3, P: 100, D: 40}, // self-loop
	})
	if err == nil {
		t.Fatal("batch with invalid spec accepted")
	}
	if errors.Is(err, ErrInfeasible) {
		t.Fatalf("validation failure misreported as infeasibility: %v", err)
	}
	if got := len(n.Channels()); got != 0 {
		t.Fatalf("rejected batch left %d channels committed", got)
	}
}

// TestFabricAllMissChannelInReport pins the metrics-guard fix: a fabric
// channel whose only measurements are deadline misses must still appear
// in Report() and count toward TotalMisses(), not vanish because nothing
// was "delivered" on time yet.
func TestFabricAllMissChannelInReport(t *testing.T) {
	n := New(WithTopology(lineTopology(t, 2)), WithHDPS(HSDPS()))
	ch, err := n.Establish(ChannelSpec{Src: 0, Dst: 100, C: 3, P: 100, D: 60})
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := n.be.(*fabricBackend)
	if !ok {
		t.Fatalf("expected fabric backend, got %T", n.be)
	}
	// Force the all-miss accounting shape directly on the simulator's
	// metrics: misses recorded, nothing counted as delivered.
	m := fb.sim.Channel(ch.ID())
	if m == nil {
		t.Fatal("installed channel has no simulator metrics")
	}
	m.Misses = 4

	if got := ch.Metrics(); got == nil {
		t.Fatal("all-miss channel's Metrics() is nil")
	} else if got.Misses != 4 {
		t.Fatalf("Metrics().Misses = %d, want 4", got.Misses)
	}
	rep := n.Report()
	if _, ok := rep.Channels[ch.ID()]; !ok {
		t.Fatal("all-miss channel missing from Report()")
	}
	if got := rep.TotalMisses(); got != 4 {
		t.Fatalf("TotalMisses() = %d, want 4", got)
	}
}

// TestGuaranteedDelayNoRoute pins the unroutable-pair fix: with no route
// between the endpoints the guarantee is 0 ("no route"), not a bound
// fabricated from an assumed hop count.
func TestGuaranteedDelayNoRoute(t *testing.T) {
	top := NewTopology()
	for _, sw := range []SwitchID{0, 1, 2} {
		if err := top.AddSwitch(sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.Trunk(0, 1); err != nil { // switch 2 stays disconnected
		t.Fatal(err)
	}
	for n, sw := range map[NodeID]SwitchID{1: 0, 2: 1, 3: 2} {
		if err := top.Attach(n, sw); err != nil {
			t.Fatal(err)
		}
	}
	n := New(WithTopology(top), WithPropagation(5))

	routable := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 60}
	if got := n.GuaranteedDelay(routable); got != 60+3*5 {
		t.Errorf("routable GuaranteedDelay = %d, want %d", got, 60+3*5)
	}
	unroutable := ChannelSpec{Src: 1, Dst: 3, C: 3, P: 100, D: 60}
	if got := n.GuaranteedDelay(unroutable); got != 0 {
		t.Errorf("unroutable GuaranteedDelay = %d, want 0 (no route)", got)
	}
	unknown := ChannelSpec{Src: 1, Dst: 99, C: 3, P: 100, D: 60}
	if got := n.GuaranteedDelay(unknown); got != 0 {
		t.Errorf("unknown-destination GuaranteedDelay = %d, want 0 (no route)", got)
	}
}

// TestFabricReleaseDivergencePanics pins the release error contract: if
// the admission state releases a channel the running simulation does not
// know, the backend must fail loudly (matching establish's Install
// contract) instead of silently letting the two diverge.
func TestFabricReleaseDivergencePanics(t *testing.T) {
	n := New(WithTopology(lineTopology(t, 2)), WithHDPS(HSDPS()))
	ch, err := n.Establish(ChannelSpec{Src: 0, Dst: 100, C: 3, P: 100, D: 60})
	if err != nil {
		t.Fatal(err)
	}
	fb := n.be.(*fabricBackend)
	if err := fb.sim.Remove(ch.ID()); err != nil { // force divergence
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("release of a sim-unknown channel did not panic")
		}
		if !strings.Contains(r.(string), "diverged") && !strings.Contains(r.(string), "simulation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = ch.Release()
}
