package rtether

import "errors"

// ErrChannelClosed is returned by Channel methods after the channel has
// been released or torn down through any path.
var ErrChannelClosed = errors.New("rtether: channel is closed")

// Channel is the handle to one established RT channel. It is returned by
// Network.Establish and carries the channel's whole lifecycle — traffic
// control, introspection, and teardown — so callers never thread raw
// ChannelIDs through Network methods.
//
// A Channel is bound to the Network that created it and shares its
// concurrency contract: the handle is safe to use from any goroutine.
// Lifecycle methods (Start, Stop, Release, Teardown) serialize with the
// Network's management/simulation plane; queries (Spec, Budgets,
// Metrics, GuaranteedDelay) take the shared read lock.
type Channel struct {
	net  *Network
	id   ChannelID
	spec ChannelSpec
	// sinks is the full sink set of a multicast channel (nil for
	// unicast); immutable after establishment.
	sinks []NodeID

	// closed flips when the channel is released or torn down. It is
	// written under the network's write lock and read under either lock
	// side, so handle methods observe it coherently from any goroutine.
	closed bool
}

// ID returns the network-unique RT channel identifier (16 bits on the
// wire), for logs and for correlating with Report.Channels.
func (c *Channel) ID() ChannelID { return c.id }

// Spec returns the committed channel spec {Src, Dst, P, C, D}. For a
// multicast channel, Dst is the first sink; see Sinks for the full set.
func (c *Channel) Spec() ChannelSpec { return c.spec }

// Sinks returns the sink set of a multicast channel in request order,
// or nil for a unicast channel. The returned slice is a copy.
func (c *Channel) Sinks() []NodeID {
	if len(c.sinks) == 0 {
		return nil
	}
	return append([]NodeID(nil), c.sinks...)
}

// Multicast reports whether this channel was established with
// EstablishMulticast.
func (c *Channel) Multicast() bool { return len(c.sinks) > 0 }

// Budgets returns the channel's current per-hop deadline budgets, which
// sum to D: [d_up, d_down] on a star network, one entry per routed link
// on a fabric. The budgets may change when later admissions or releases
// repartition the system; Budgets returns the committed values at the
// time of the call.
func (c *Channel) Budgets() []int64 { return c.net.channelBudgets(c) }

// Start attaches the channel's periodic traffic source: C maximal frames
// every P slots, first release offset slots from now.
func (c *Channel) Start(offset int64) error { return c.net.startChannel(c, offset) }

// Stop detaches the traffic source without releasing the reservation;
// Start may be called again later.
func (c *Channel) Stop() error { return c.net.stopChannel(c) }

// Release tears the channel down through the management plane: traffic
// stops and the reservation is freed immediately, without consuming
// virtual time.
func (c *Channel) Release() error { return c.net.releaseChannel(c) }

// Teardown releases the channel over the wire: the source stops its
// traffic and sends a Teardown control frame; the switch frees the
// reservation when the frame arrives, so teardown consumes virtual time
// (unlike Release). On a multi-switch network — which models RT traffic
// only — Teardown is equivalent to Release.
func (c *Channel) Teardown() error { return c.net.teardownChannel(c) }

// Metrics returns an independent snapshot of the channel's delivery
// measurements as of the call, or nil when nothing has been measured yet
// — a channel with only deadline misses on record still reports them.
// Measurements survive release and teardown; the snapshot does not
// change as the simulation continues.
func (c *Channel) Metrics() *ChannelMetrics { return c.net.channelMetrics(c) }

// GuaranteedDelay returns the delivery guarantee for this channel,
// T_max = d + T_latency (Eq. 18.1). An established channel always has a
// route, so the value is positive (see Network.GuaranteedDelay for the
// 0 = "no route" convention on raw specs).
func (c *Channel) GuaranteedDelay() int64 { return c.net.GuaranteedDelay(c.spec) }
