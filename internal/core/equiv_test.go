package core_test

// Decision-equivalence tests for the copy-on-write admission engine: the
// incremental path (persistent per-link caches, delta repartitioning,
// changed-links verification) must be indistinguishable from the
// clone-everything FullRecheck reference — identical accept/reject
// verdicts, identical diagnostics, identical committed states and
// identical stats counters (only LinksChecked, the work metric the
// optimization exists to shrink, may differ).
//
// The tests live in an external package so they can replay the paper's
// Fig. 18.5 workload from internal/traffic, which itself imports core.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// snapshotOf serializes a controller's committed state for comparison.
func snapshotOf(t *testing.T, c *core.Controller) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.String()
}

// statsSansLinksChecked zeroes the one counter allowed to differ.
func statsSansLinksChecked(s core.Stats) core.Stats {
	s.LinksChecked = 0
	return s
}

// TestAdmissionDecisionEquivalence replays the Fig. 18.5 establishment
// sequence (extended past saturation, with interleaved releases) through
// the old-style full-recheck engine and the incremental engine, asserting
// identical decisions at every step and identical final state.
func TestAdmissionDecisionEquivalence(t *testing.T) {
	requests := traffic.PaperLayout.Requests(400, traffic.PaperSpec)
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}, core.FixedDPS{UpNum: 5, UpDen: 6}} {
		t.Run(dps.Name(), func(t *testing.T) {
			inc := core.NewController(core.Config{DPS: dps})
			full := core.NewController(core.Config{DPS: dps, FullRecheck: true})

			var accepted []core.ChannelID
			for i, spec := range requests {
				chI, errI := inc.Request(spec)
				chF, errF := full.Request(spec)
				if (errI == nil) != (errF == nil) {
					t.Fatalf("request %d (%v): incremental err=%v, full-recheck err=%v", i, spec, errI, errF)
				}
				if errI != nil {
					if errI.Error() != errF.Error() {
						t.Fatalf("request %d: rejection diagnostics diverge:\n  incremental: %v\n  full:        %v", i, errI, errF)
					}
					continue
				}
				if chI.ID != chF.ID {
					t.Fatalf("request %d: channel IDs diverge: %d vs %d", i, chI.ID, chF.ID)
				}
				accepted = append(accepted, chI.ID)
				// Interleave releases so the Release path (removal plus
				// repartition-if-feasible) is equivalence-checked too.
				if i%7 == 3 && len(accepted) > 2 {
					victim := accepted[len(accepted)/2]
					accepted = append(accepted[:len(accepted)/2], accepted[len(accepted)/2+1:]...)
					if err := inc.Release(victim); err != nil {
						t.Fatalf("request %d: incremental release: %v", i, err)
					}
					if err := full.Release(victim); err != nil {
						t.Fatalf("request %d: full-recheck release: %v", i, err)
					}
				}
			}

			if got, want := snapshotOf(t, inc), snapshotOf(t, full); got != want {
				t.Fatalf("committed states diverge:\nincremental:\n%s\nfull-recheck:\n%s", got, want)
			}
			gotStats := statsSansLinksChecked(inc.Stats())
			wantStats := statsSansLinksChecked(full.Stats())
			if gotStats != wantStats {
				t.Fatalf("stats diverge (LinksChecked excluded):\nincremental: %+v\nfull:        %+v", gotStats, wantStats)
			}
			if inc.Stats().LinksChecked >= full.Stats().LinksChecked {
				t.Errorf("incremental engine checked %d links, full recheck %d — expected strictly fewer",
					inc.Stats().LinksChecked, full.Stats().LinksChecked)
			}
		})
	}
}

// TestSweepCacheEquivalence replays a generation-invalidation churn
// workload — establishes, releases of recent and old channels, and
// immediate re-establishes that repeatedly flip the same links' task-set
// generations — through three engines: the default cached one, the
// cache-disabled one, and the FullRecheck reference. All three must make
// bit-identical decisions with bit-identical diagnostics and committed
// states; the verdict cache may only change how many EDF analyses
// actually run. Run under -race this also exercises the parallel sweep
// with the cache's skip protocol.
func TestSweepCacheEquivalence(t *testing.T) {
	requests := traffic.PaperLayout.Requests(400, traffic.PaperSpec)
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}} {
		t.Run(dps.Name(), func(t *testing.T) {
			cached := core.NewController(core.Config{DPS: dps})
			uncached := core.NewController(core.Config{DPS: dps, NoSweepCache: true})
			full := core.NewController(core.Config{DPS: dps, FullRecheck: true})
			ctrls := []*core.Controller{cached, uncached, full}
			names := []string{"cached", "uncached", "fullrecheck"}

			check := func(step string, errs []error, ids []core.ChannelID) {
				t.Helper()
				for i := 1; i < len(ctrls); i++ {
					if (errs[0] == nil) != (errs[i] == nil) {
						t.Fatalf("%s: %s err=%v, %s err=%v", step, names[0], errs[0], names[i], errs[i])
					}
					if errs[0] != nil && errs[0].Error() != errs[i].Error() {
						t.Fatalf("%s: diagnostics diverge:\n  %s: %v\n  %s: %v",
							step, names[0], errs[0], names[i], errs[i])
					}
					if ids != nil && ids[0] != ids[i] {
						t.Fatalf("%s: channel IDs diverge: %d vs %d", step, ids[0], ids[i])
					}
				}
			}

			var accepted []core.ChannelID
			for i, spec := range requests {
				errs := make([]error, len(ctrls))
				ids := make([]core.ChannelID, len(ctrls))
				for j, c := range ctrls {
					ch, err := c.Request(spec)
					errs[j] = err
					if err == nil {
						ids[j] = ch.ID
					}
				}
				check(fmt.Sprintf("request %d (%v)", i, spec), errs, ids)
				if errs[0] == nil {
					accepted = append(accepted, ids[0])
				}

				// Churn: release a mid-history victim and immediately
				// re-establish its spec, bumping the same links' generations
				// over and over — the invalidation pattern the cache must
				// never serve stale verdicts across.
				if i%5 == 4 && len(accepted) > 3 {
					victim := accepted[len(accepted)/3]
					accepted = append(accepted[:len(accepted)/3], accepted[len(accepted)/3+1:]...)
					rerrs := make([]error, len(ctrls))
					for j, c := range ctrls {
						rerrs[j] = c.Release(victim)
					}
					check(fmt.Sprintf("release %d after request %d", victim, i), rerrs, nil)

					re := spec
					rerrs = make([]error, len(ctrls))
					rids := make([]core.ChannelID, len(ctrls))
					for j, c := range ctrls {
						ch, err := c.Request(re)
						rerrs[j] = err
						if err == nil {
							rids[j] = ch.ID
						}
					}
					check(fmt.Sprintf("re-establish after request %d", i), rerrs, rids)
					if rerrs[0] == nil {
						accepted = append(accepted, rids[0])
					}
				}
			}

			for i := 1; i < len(ctrls); i++ {
				if got, want := snapshotOf(t, ctrls[i]), snapshotOf(t, ctrls[0]); got != want {
					t.Fatalf("committed states diverge (%s vs %s):\n%s\nvs\n%s", names[i], names[0], got, want)
				}
			}
			if g, u := statsSansLinksChecked(cached.Stats()), statsSansLinksChecked(uncached.Stats()); g != u {
				t.Fatalf("stats diverge:\ncached:   %+v\nuncached: %+v", g, u)
			}
			// Cached and uncached engines sweep the same link sequences, so
			// even LinksChecked must agree exactly — a cache hit is counted
			// as a check.
			if cached.Stats().LinksChecked != uncached.Stats().LinksChecked {
				t.Fatalf("LinksChecked diverge: cached %d, uncached %d",
					cached.Stats().LinksChecked, uncached.Stats().LinksChecked)
			}
			// No SweepSkips lower bound here: a star channel's partition is
			// the complementary pair {d_iu, d_id}, so when ADPS moves a
			// channel both hop tasks move with it and every swept link
			// really did change content — zero cache hits is the correct
			// outcome for 2-hop workloads. Positive hit-rate behavior is
			// pinned at kernel level (admit.TestSweepCacheSkipsUnchangedLinks)
			// and on the fabric's longer hop vectors
			// (topo.TestFabricSweepCacheEquivalence), where repartitions
			// leave interior budgets untouched.
			if uncached.SweepSkips() != 0 || full.SweepSkips() != 0 {
				t.Errorf("cache-disabled engines reported skips: uncached=%d full=%d",
					uncached.SweepSkips(), full.SweepSkips())
			}
		})
	}
}

// TestRejectionLeavesNoTrace verifies the copy-on-write rollback exactly:
// a controller that suffered rejections must be bit-identical (state,
// snapshot, subsequent IDs) to one that only ever saw the accepted
// requests.
func TestRejectionLeavesNoTrace(t *testing.T) {
	requests := traffic.PaperLayout.Requests(300, traffic.PaperSpec)

	dirty := core.NewController(core.Config{DPS: core.ADPS{}})
	clean := core.NewController(core.Config{DPS: core.ADPS{}})
	for _, spec := range requests {
		if _, err := dirty.Request(spec); err == nil {
			if _, err := clean.Request(spec); err != nil {
				t.Fatalf("clean controller rejected a spec the dirty one accepted: %v", err)
			}
		}
	}
	if dirty.Stats().Accepted == dirty.Stats().Requests {
		t.Fatal("workload saturated nothing — rejections were never exercised")
	}
	if got, want := snapshotOf(t, dirty), snapshotOf(t, clean); got != want {
		t.Fatalf("rejections left a trace in the committed state:\n%s\nvs\n%s", got, want)
	}
	// The ID allocator must have been rolled back too: the next accepted
	// channel gets the same ID on both.
	fresh := core.ChannelSpec{Src: 60, Dst: 61, C: 1, P: 1000, D: 100}
	chD, errD := dirty.Request(fresh)
	chC, errC := clean.Request(fresh)
	if errD != nil || errC != nil {
		t.Fatalf("fresh request rejected: %v / %v", errD, errC)
	}
	if chD.ID != chC.ID {
		t.Fatalf("ID allocator diverged after rejections: %d vs %d", chD.ID, chC.ID)
	}
}

// TestRequestAllMatchesSequential verifies the batch API: admitting a
// feasible batch in one RequestAll call must commit exactly the state a
// sequential establishment sequence produces — same IDs, same partitions.
func TestRequestAllMatchesSequential(t *testing.T) {
	requests := traffic.PaperLayout.Requests(50, traffic.PaperSpec)
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}} {
		t.Run(dps.Name(), func(t *testing.T) {
			seq := core.NewController(core.Config{DPS: dps})
			for i, spec := range requests {
				if _, err := seq.Request(spec); err != nil {
					t.Fatalf("sequential request %d rejected: %v", i, err)
				}
			}
			batch := core.NewController(core.Config{DPS: dps})
			chs, err := batch.RequestAll(requests)
			if err != nil {
				t.Fatalf("RequestAll rejected: %v", err)
			}
			if len(chs) != len(requests) {
				t.Fatalf("RequestAll returned %d channels for %d specs", len(chs), len(requests))
			}
			if got, want := snapshotOf(t, batch), snapshotOf(t, seq); got != want {
				t.Fatalf("batch and sequential committed states diverge:\n%s\nvs\n%s", got, want)
			}
			st := batch.Stats()
			if st.Requests != len(requests) || st.Accepted != len(requests) {
				t.Fatalf("batch stats: %+v", st)
			}
		})
	}
}

// TestRequestAllAtomic verifies all-or-nothing batch semantics: one
// infeasible member rejects the whole batch and leaves the controller
// untouched.
func TestRequestAllAtomic(t *testing.T) {
	ok := core.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	hog := core.ChannelSpec{Src: 1, Dst: 3, C: 90, P: 100, D: 190} // U=0.9 on uplink 1
	for _, full := range []bool{false, true} {
		ctrl := core.NewController(core.Config{DPS: core.ADPS{}, FullRecheck: full})
		// 3 uplink-1 channels of U=0.9 can never fit together.
		_, err := ctrl.RequestAll([]core.ChannelSpec{ok, hog, hog, hog})
		if err == nil {
			t.Fatalf("full=%v: infeasible batch accepted", full)
		}
		if ctrl.State().Len() != 0 {
			t.Fatalf("full=%v: rejected batch left %d channels committed", full, ctrl.State().Len())
		}
		st := ctrl.Stats()
		if st.Requests != 4 || st.Accepted != 0 {
			t.Fatalf("full=%v: batch stats %+v", full, st)
		}
		// The controller must still work afterwards.
		if _, err := ctrl.Request(ok); err != nil {
			t.Fatalf("full=%v: controller wedged after batch rejection: %v", full, err)
		}
	}
}
