package core_test

// Decision-equivalence tests for the copy-on-write admission engine: the
// incremental path (persistent per-link caches, delta repartitioning,
// changed-links verification) must be indistinguishable from the
// clone-everything FullRecheck reference — identical accept/reject
// verdicts, identical diagnostics, identical committed states and
// identical stats counters (only LinksChecked, the work metric the
// optimization exists to shrink, may differ).
//
// The tests live in an external package so they can replay the paper's
// Fig. 18.5 workload from internal/traffic, which itself imports core.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// snapshotOf serializes a controller's committed state for comparison.
func snapshotOf(t *testing.T, c *core.Controller) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.String()
}

// statsSansLinksChecked zeroes the one counter allowed to differ.
func statsSansLinksChecked(s core.Stats) core.Stats {
	s.LinksChecked = 0
	return s
}

// TestAdmissionDecisionEquivalence replays the Fig. 18.5 establishment
// sequence (extended past saturation, with interleaved releases) through
// the old-style full-recheck engine and the incremental engine, asserting
// identical decisions at every step and identical final state.
func TestAdmissionDecisionEquivalence(t *testing.T) {
	requests := traffic.PaperLayout.Requests(400, traffic.PaperSpec)
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}, core.FixedDPS{UpNum: 5, UpDen: 6}} {
		t.Run(dps.Name(), func(t *testing.T) {
			inc := core.NewController(core.Config{DPS: dps})
			full := core.NewController(core.Config{DPS: dps, FullRecheck: true})

			var accepted []core.ChannelID
			for i, spec := range requests {
				chI, errI := inc.Request(spec)
				chF, errF := full.Request(spec)
				if (errI == nil) != (errF == nil) {
					t.Fatalf("request %d (%v): incremental err=%v, full-recheck err=%v", i, spec, errI, errF)
				}
				if errI != nil {
					if errI.Error() != errF.Error() {
						t.Fatalf("request %d: rejection diagnostics diverge:\n  incremental: %v\n  full:        %v", i, errI, errF)
					}
					continue
				}
				if chI.ID != chF.ID {
					t.Fatalf("request %d: channel IDs diverge: %d vs %d", i, chI.ID, chF.ID)
				}
				accepted = append(accepted, chI.ID)
				// Interleave releases so the Release path (removal plus
				// repartition-if-feasible) is equivalence-checked too.
				if i%7 == 3 && len(accepted) > 2 {
					victim := accepted[len(accepted)/2]
					accepted = append(accepted[:len(accepted)/2], accepted[len(accepted)/2+1:]...)
					if err := inc.Release(victim); err != nil {
						t.Fatalf("request %d: incremental release: %v", i, err)
					}
					if err := full.Release(victim); err != nil {
						t.Fatalf("request %d: full-recheck release: %v", i, err)
					}
				}
			}

			if got, want := snapshotOf(t, inc), snapshotOf(t, full); got != want {
				t.Fatalf("committed states diverge:\nincremental:\n%s\nfull-recheck:\n%s", got, want)
			}
			gotStats := statsSansLinksChecked(inc.Stats())
			wantStats := statsSansLinksChecked(full.Stats())
			if gotStats != wantStats {
				t.Fatalf("stats diverge (LinksChecked excluded):\nincremental: %+v\nfull:        %+v", gotStats, wantStats)
			}
			if inc.Stats().LinksChecked >= full.Stats().LinksChecked {
				t.Errorf("incremental engine checked %d links, full recheck %d — expected strictly fewer",
					inc.Stats().LinksChecked, full.Stats().LinksChecked)
			}
		})
	}
}

// TestRejectionLeavesNoTrace verifies the copy-on-write rollback exactly:
// a controller that suffered rejections must be bit-identical (state,
// snapshot, subsequent IDs) to one that only ever saw the accepted
// requests.
func TestRejectionLeavesNoTrace(t *testing.T) {
	requests := traffic.PaperLayout.Requests(300, traffic.PaperSpec)

	dirty := core.NewController(core.Config{DPS: core.ADPS{}})
	clean := core.NewController(core.Config{DPS: core.ADPS{}})
	for _, spec := range requests {
		if _, err := dirty.Request(spec); err == nil {
			if _, err := clean.Request(spec); err != nil {
				t.Fatalf("clean controller rejected a spec the dirty one accepted: %v", err)
			}
		}
	}
	if dirty.Stats().Accepted == dirty.Stats().Requests {
		t.Fatal("workload saturated nothing — rejections were never exercised")
	}
	if got, want := snapshotOf(t, dirty), snapshotOf(t, clean); got != want {
		t.Fatalf("rejections left a trace in the committed state:\n%s\nvs\n%s", got, want)
	}
	// The ID allocator must have been rolled back too: the next accepted
	// channel gets the same ID on both.
	fresh := core.ChannelSpec{Src: 60, Dst: 61, C: 1, P: 1000, D: 100}
	chD, errD := dirty.Request(fresh)
	chC, errC := clean.Request(fresh)
	if errD != nil || errC != nil {
		t.Fatalf("fresh request rejected: %v / %v", errD, errC)
	}
	if chD.ID != chC.ID {
		t.Fatalf("ID allocator diverged after rejections: %d vs %d", chD.ID, chC.ID)
	}
}

// TestRequestAllMatchesSequential verifies the batch API: admitting a
// feasible batch in one RequestAll call must commit exactly the state a
// sequential establishment sequence produces — same IDs, same partitions.
func TestRequestAllMatchesSequential(t *testing.T) {
	requests := traffic.PaperLayout.Requests(50, traffic.PaperSpec)
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}} {
		t.Run(dps.Name(), func(t *testing.T) {
			seq := core.NewController(core.Config{DPS: dps})
			for i, spec := range requests {
				if _, err := seq.Request(spec); err != nil {
					t.Fatalf("sequential request %d rejected: %v", i, err)
				}
			}
			batch := core.NewController(core.Config{DPS: dps})
			chs, err := batch.RequestAll(requests)
			if err != nil {
				t.Fatalf("RequestAll rejected: %v", err)
			}
			if len(chs) != len(requests) {
				t.Fatalf("RequestAll returned %d channels for %d specs", len(chs), len(requests))
			}
			if got, want := snapshotOf(t, batch), snapshotOf(t, seq); got != want {
				t.Fatalf("batch and sequential committed states diverge:\n%s\nvs\n%s", got, want)
			}
			st := batch.Stats()
			if st.Requests != len(requests) || st.Accepted != len(requests) {
				t.Fatalf("batch stats: %+v", st)
			}
		})
	}
}

// TestRequestAllAtomic verifies all-or-nothing batch semantics: one
// infeasible member rejects the whole batch and leaves the controller
// untouched.
func TestRequestAllAtomic(t *testing.T) {
	ok := core.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	hog := core.ChannelSpec{Src: 1, Dst: 3, C: 90, P: 100, D: 190} // U=0.9 on uplink 1
	for _, full := range []bool{false, true} {
		ctrl := core.NewController(core.Config{DPS: core.ADPS{}, FullRecheck: full})
		// 3 uplink-1 channels of U=0.9 can never fit together.
		_, err := ctrl.RequestAll([]core.ChannelSpec{ok, hog, hog, hog})
		if err == nil {
			t.Fatalf("full=%v: infeasible batch accepted", full)
		}
		if ctrl.State().Len() != 0 {
			t.Fatalf("full=%v: rejected batch left %d channels committed", full, ctrl.State().Len())
		}
		st := ctrl.Stats()
		if st.Requests != 4 || st.Accepted != 0 {
			t.Fatalf("full=%v: batch stats %+v", full, st)
		}
		// The controller must still work afterwards.
		if _, err := ctrl.Request(ok); err != nil {
			t.Fatalf("full=%v: controller wedged after batch rejection: %v", full, err)
		}
	}
}
