package core

import (
	"fmt"
	"sort"

	"repro/internal/edf"
)

// State is the system state SS = {N, K} of §18.3.2: the set of currently
// active RT channels together with the link loads they induce. The node
// set N is implicit — any NodeID may appear; the star topology means a
// node's links exist as soon as a channel uses them.
//
// State is not safe for concurrent use; the admission Controller
// serializes access.
type State struct {
	channels map[ChannelID]*Channel
	order    []ChannelID // insertion order, for deterministic iteration
	loads    map[Link]int
	nextID   ChannelID
}

// NewState returns an empty system state.
func NewState() *State {
	return &State{
		channels: make(map[ChannelID]*Channel),
		loads:    make(map[Link]int),
		nextID:   1,
	}
}

// Len returns the number of active channels, size(K).
func (st *State) Len() int { return len(st.channels) }

// Get returns the channel with the given ID, or nil.
func (st *State) Get(id ChannelID) *Channel { return st.channels[id] }

// Channels returns the active channels in establishment order. The caller
// must not mutate the returned channels.
func (st *State) Channels() []*Channel {
	out := make([]*Channel, 0, len(st.order))
	for _, id := range st.order {
		if ch, ok := st.channels[id]; ok {
			out = append(out, ch)
		}
	}
	return out
}

// allocID returns the next unused network-unique channel ID. IDs wrap at
// 16 bits (the width of the RT channel ID field); allocID skips IDs still
// in use. It panics when all 65535 IDs are active, which a real switch
// could not handle either.
func (st *State) allocID() ChannelID {
	for i := 0; i < 1<<16; i++ {
		id := st.nextID
		st.nextID++
		if st.nextID == 0 { // reserve 0 as "unset" (request frames carry 0)
			st.nextID = 1
		}
		if _, used := st.channels[id]; !used && id != 0 {
			return id
		}
	}
	panic("core: all 65535 RT channel IDs in use")
}

// add inserts a channel and updates link loads. The channel's ID must be
// unused.
func (st *State) add(ch *Channel) {
	if _, dup := st.channels[ch.ID]; dup {
		panic(fmt.Sprintf("core: duplicate channel ID %d", ch.ID))
	}
	st.channels[ch.ID] = ch
	st.order = append(st.order, ch.ID)
	for _, l := range LinksOf(ch.Spec) {
		st.loads[l]++
	}
}

// remove deletes a channel and updates link loads. It reports whether the
// channel existed.
func (st *State) remove(id ChannelID) bool {
	ch, ok := st.channels[id]
	if !ok {
		return false
	}
	delete(st.channels, id)
	for _, l := range LinksOf(ch.Spec) {
		if st.loads[l]--; st.loads[l] == 0 {
			delete(st.loads, l)
		}
	}
	// Compact the order slice lazily: rebuild when over half are gone.
	if len(st.order) >= 2*len(st.channels)+8 {
		kept := st.order[:0]
		for _, oid := range st.order {
			if _, alive := st.channels[oid]; alive {
				kept = append(kept, oid)
			}
		}
		st.order = kept
	}
	return true
}

// LinkLoad returns LL(l): the number of channels traversing the link
// (§18.4.2). Links with no channels have load zero.
func (st *State) LinkLoad(l Link) int { return st.loads[l] }

// Links returns every link with at least one channel, in a deterministic
// order (by node, uplinks before downlinks).
func (st *State) Links() []Link {
	out := make([]Link, 0, len(st.loads))
	for l := range st.loads {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// TasksOn derives the supposed periodic task set of one link
// pseudo-processor (Eqs. 18.6-18.7): for every channel whose uplink is l,
// the task {C_i, P_i, d_iu}; for every channel whose downlink is l, the
// task {C_i, P_i, d_id}.
func (st *State) TasksOn(l Link) []edf.Task {
	var tasks []edf.Task
	for _, id := range st.order {
		ch, ok := st.channels[id]
		if !ok {
			continue
		}
		switch {
		case l.Dir == Up && ch.Spec.Src == l.Node:
			tasks = append(tasks, edf.Task{
				C: ch.Spec.C, P: ch.Spec.P, D: ch.Part.Up,
				Tag: fmt.Sprintf("RT#%d", ch.ID),
			})
		case l.Dir == Down && ch.Spec.Dst == l.Node:
			tasks = append(tasks, edf.Task{
				C: ch.Spec.C, P: ch.Spec.P, D: ch.Part.Down,
				Tag: fmt.Sprintf("RT#%d", ch.ID),
			})
		}
	}
	return tasks
}

// clone returns a deep copy of the state sharing nothing with the
// original. Channel structs are copied so tentative partitions can be
// applied without touching the committed state.
func (st *State) clone() *State {
	cp := &State{
		channels: make(map[ChannelID]*Channel, len(st.channels)),
		order:    append([]ChannelID(nil), st.order...),
		loads:    make(map[Link]int, len(st.loads)),
		nextID:   st.nextID,
	}
	for id, ch := range st.channels {
		c := *ch
		cp.channels[id] = &c
	}
	for l, n := range st.loads {
		cp.loads[l] = n
	}
	return cp
}

// TotalUtilization returns the sum over all links of each link's
// utilization divided by the number of links — a coarse load metric used
// in reports. Returns 0 for an empty state.
func (st *State) TotalUtilization() float64 {
	links := st.Links()
	if len(links) == 0 {
		return 0
	}
	var sum float64
	for _, l := range links {
		sum += edf.UtilizationFloat(st.TasksOn(l))
	}
	return sum / float64(len(links))
}
