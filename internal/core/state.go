package core

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/edf"
)

var ratOne = big.NewRat(1, 1)

// State is the system state SS = {N, K} of §18.3.2: the set of currently
// active RT channels together with the link loads they induce. The node
// set N is implicit — any NodeID may appear; the star topology means a
// node's links exist as soon as a channel uses them.
//
// Alongside the channel set, State maintains two per-link caches that the
// admission hot path depends on: byLink maps every loaded link to the
// channels traversing it (in establishment order, the per-link restriction
// of the global order), and taskCache holds the materialized EDF task set
// of a link. Both are maintained incrementally by add/remove/setPart, so
// TasksOn and MeanLinkUtilization never scan the full channel map.
//
// State is not safe for concurrent use; the admission Controller
// serializes access.
type State struct {
	channels map[ChannelID]*Channel
	order    []ChannelID // insertion order, for deterministic iteration
	loads    map[Link]int
	nextID   ChannelID

	// byLink lists the channels traversing each loaded link, in
	// establishment order.
	byLink map[Link][]*Channel
	// taskCache memoizes TasksOn per link; entries are invalidated
	// whenever a channel on the link is added, removed or repartitioned.
	taskCache map[Link][]edf.Task
	// utilSum maintains each loaded link's exact rational utilization
	// sum(C/P) incrementally (partitions do not affect it). Rational
	// arithmetic is exact, so the running sum always equals a fresh
	// edf.Utilization over the link's task set.
	utilSum map[Link]*big.Rat
}

// NewState returns an empty system state.
func NewState() *State {
	return &State{
		channels:  make(map[ChannelID]*Channel),
		loads:     make(map[Link]int),
		nextID:    1,
		byLink:    make(map[Link][]*Channel),
		taskCache: make(map[Link][]edf.Task),
		utilSum:   make(map[Link]*big.Rat),
	}
}

// Len returns the number of active channels, size(K).
func (st *State) Len() int { return len(st.channels) }

// Get returns the channel with the given ID, or nil.
func (st *State) Get(id ChannelID) *Channel { return st.channels[id] }

// Channels returns the active channels in establishment order. The caller
// must not mutate the returned channels.
func (st *State) Channels() []*Channel {
	out := make([]*Channel, 0, len(st.order))
	for _, id := range st.order {
		if ch, ok := st.channels[id]; ok {
			out = append(out, ch)
		}
	}
	return out
}

// channelsOn returns the channels traversing a link in establishment
// order. The returned slice is the live cache — callers must not mutate
// or retain it.
func (st *State) channelsOn(l Link) []*Channel { return st.byLink[l] }

// allocID returns the next unused network-unique channel ID. IDs wrap at
// 16 bits (the width of the RT channel ID field); allocID skips IDs still
// in use. It panics when all 65535 IDs are active, which a real switch
// could not handle either.
func (st *State) allocID() ChannelID {
	for i := 0; i < 1<<16; i++ {
		id := st.nextID
		st.nextID++
		if st.nextID == 0 { // reserve 0 as "unset" (request frames carry 0)
			st.nextID = 1
		}
		if _, used := st.channels[id]; !used && id != 0 {
			return id
		}
	}
	panic("core: all 65535 RT channel IDs in use")
}

// add inserts a channel and updates link loads and per-link caches. The
// channel's ID must be unused.
func (st *State) add(ch *Channel) {
	if _, dup := st.channels[ch.ID]; dup {
		panic(fmt.Sprintf("core: duplicate channel ID %d", ch.ID))
	}
	st.channels[ch.ID] = ch
	st.order = append(st.order, ch.ID)
	for _, l := range LinksOf(ch.Spec) {
		st.loads[l]++
		st.byLink[l] = append(st.byLink[l], ch)
		delete(st.taskCache, l)
		st.addUtil(l, ch.Spec)
	}
}

// addUtil folds one channel's C/P into a link's running utilization sum.
func (st *State) addUtil(l Link, s ChannelSpec) {
	u := st.utilSum[l]
	if u == nil {
		u = new(big.Rat)
		st.utilSum[l] = u
	}
	u.Add(u, new(big.Rat).SetFrac64(s.C, s.P))
}

// subUtil removes one channel's C/P from a link's running utilization sum,
// dropping the entry when the link is no longer loaded.
func (st *State) subUtil(l Link, s ChannelSpec) {
	if st.loads[l] == 0 {
		delete(st.utilSum, l)
		return
	}
	if u := st.utilSum[l]; u != nil {
		u.Sub(u, new(big.Rat).SetFrac64(s.C, s.P))
	}
}

// utilExceedsOne reports the exact first-constraint answer (U > 1) for a
// link from the incrementally maintained sum.
func (st *State) utilExceedsOne(l Link) bool {
	u := st.utilSum[l]
	return u != nil && u.Cmp(ratOne) > 0
}

// undoAdd reverses the most recent add exactly: the channel must be the
// last one added and still present. Unlike remove it restores the order
// slice verbatim, so a rolled-back tentative admission leaves no trace.
func (st *State) undoAdd(ch *Channel) {
	if len(st.order) == 0 || st.order[len(st.order)-1] != ch.ID {
		panic(fmt.Sprintf("core: undoAdd of RT#%d out of order", ch.ID))
	}
	delete(st.channels, ch.ID)
	st.order = st.order[:len(st.order)-1]
	for _, l := range LinksOf(ch.Spec) {
		if st.loads[l]--; st.loads[l] == 0 {
			delete(st.loads, l)
		}
		chans := st.byLink[l]
		if len(chans) == 1 {
			delete(st.byLink, l)
		} else {
			st.byLink[l] = chans[:len(chans)-1]
		}
		delete(st.taskCache, l)
		st.subUtil(l, ch.Spec)
	}
}

// remove deletes a channel and updates link loads and per-link caches. It
// reports whether the channel existed.
func (st *State) remove(id ChannelID) bool {
	ch, ok := st.channels[id]
	if !ok {
		return false
	}
	delete(st.channels, id)
	for _, l := range LinksOf(ch.Spec) {
		if st.loads[l]--; st.loads[l] == 0 {
			delete(st.loads, l)
		}
		chans := st.byLink[l]
		kept := chans[:0]
		for _, c := range chans {
			if c.ID != id {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			delete(st.byLink, l)
		} else {
			st.byLink[l] = kept
		}
		delete(st.taskCache, l)
		st.subUtil(l, ch.Spec)
	}
	// Compact the order slice lazily: rebuild when over half are gone.
	if len(st.order) >= 2*len(st.channels)+8 {
		kept := st.order[:0]
		for _, oid := range st.order {
			if _, alive := st.channels[oid]; alive {
				kept = append(kept, oid)
			}
		}
		st.order = kept
	}
	return true
}

// setPart installs a new deadline partition on a channel and invalidates
// the task caches of its links. All repartitioning goes through here so
// the caches can never go stale.
func (st *State) setPart(ch *Channel, p Partition) {
	ch.Part = p
	for _, l := range LinksOf(ch.Spec) {
		delete(st.taskCache, l)
	}
}

// LinkLoad returns LL(l): the number of channels traversing the link
// (§18.4.2). Links with no channels have load zero.
func (st *State) LinkLoad(l Link) int { return st.loads[l] }

// Links returns every link with at least one channel, in a deterministic
// order (by node, uplinks before downlinks).
func (st *State) Links() []Link {
	out := make([]Link, 0, len(st.loads))
	for l := range st.loads {
		out = append(out, l)
	}
	sortLinks(out)
	return out
}

// sortLinks orders links by node, uplinks before downlinks — the
// deterministic verification order.
func sortLinks(out []Link) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Dir < out[j].Dir
	})
}

// TasksOn derives the supposed periodic task set of one link
// pseudo-processor (Eqs. 18.6-18.7): for every channel whose uplink is l,
// the task {C_i, P_i, d_iu}; for every channel whose downlink is l, the
// task {C_i, P_i, d_id}. The returned slice is freshly allocated; the
// internal cache backing it is maintained incrementally.
func (st *State) TasksOn(l Link) []edf.Task {
	cached := st.tasksCached(l)
	if cached == nil {
		return nil
	}
	return append([]edf.Task(nil), cached...)
}

// tasksCached returns the memoized task set of a link, rebuilding it from
// the per-link channel list when stale. The returned slice is shared —
// internal read-only callers (the feasibility test) use it to avoid the
// defensive copy TasksOn makes.
func (st *State) tasksCached(l Link) []edf.Task {
	if tasks, ok := st.taskCache[l]; ok {
		return tasks
	}
	chans := st.byLink[l]
	if len(chans) == 0 {
		return nil
	}
	tasks := make([]edf.Task, 0, len(chans))
	for _, ch := range chans {
		d := ch.Part.Up
		if l.Dir == Down {
			d = ch.Part.Down
		}
		tasks = append(tasks, edf.Task{
			C: ch.Spec.C, P: ch.Spec.P, D: d,
			Tag: ch.taskTag(),
		})
	}
	st.taskCache[l] = tasks
	return tasks
}

// clone returns a deep copy of the state sharing nothing with the
// original. Channel structs are copied so tentative partitions can be
// applied without touching the committed state. The task cache starts
// empty and is rebuilt lazily.
func (st *State) clone() *State {
	cp := &State{
		channels:  make(map[ChannelID]*Channel, len(st.channels)),
		order:     append([]ChannelID(nil), st.order...),
		loads:     make(map[Link]int, len(st.loads)),
		nextID:    st.nextID,
		byLink:    make(map[Link][]*Channel, len(st.byLink)),
		taskCache: make(map[Link][]edf.Task),
		utilSum:   make(map[Link]*big.Rat, len(st.utilSum)),
	}
	for id, ch := range st.channels {
		c := *ch
		cp.channels[id] = &c
	}
	for l, n := range st.loads {
		cp.loads[l] = n
	}
	for l, chans := range st.byLink {
		cs := make([]*Channel, len(chans))
		for i, ch := range chans {
			cs[i] = cp.channels[ch.ID]
		}
		cp.byLink[l] = cs
	}
	for l, u := range st.utilSum {
		cp.utilSum[l] = new(big.Rat).Set(u)
	}
	return cp
}

// MeanLinkUtilization returns the mean of the per-link task-set
// utilizations over all loaded links — a coarse load metric used in
// reports. Returns 0 for an empty state.
func (st *State) MeanLinkUtilization() float64 {
	links := st.Links()
	if len(links) == 0 {
		return 0
	}
	var sum float64
	for _, l := range links {
		sum += edf.UtilizationFloat(st.tasksCached(l))
	}
	return sum / float64(len(links))
}

// TotalUtilization returns the mean per-link utilization.
//
// Deprecated: the name was misleading — the value has always been a mean
// over loaded links, not a total. Use MeanLinkUtilization.
func (st *State) TotalUtilization() float64 { return st.MeanLinkUtilization() }
