package core

import (
	"fmt"

	"repro/internal/admit"
	"repro/internal/edf"
)

// coreOps teaches the generic admission kernel (internal/admit) the star
// vocabulary: a unicast channel traverses exactly two links — its source
// uplink (hop 0) and destination downlink (hop 1) — and its partition is
// the two-way split {d_iu, d_id}. A multicast channel traverses the
// source uplink (hop 0) plus one downlink per sink (hops 1..N), all
// sharing the same {d_iu, d_id} split — the data crosses the uplink once
// and is copied onto every sink downlink by the switch.
var coreOps = &admit.Ops[Link, *Channel, Partition]{
	ID:     func(ch *Channel) admit.ID { return ch.ID },
	UtilCP: func(ch *Channel) (int64, int64) { return ch.Spec.C, ch.Spec.P },
	Links: func(ch *Channel) []Link {
		if !ch.Multicast() {
			ls := LinksOf(ch.Spec)
			return ls[:]
		}
		links := make([]Link, 0, 1+len(ch.Sinks))
		links = append(links, Uplink(ch.Spec.Src))
		for _, sink := range ch.Sinks {
			links = append(links, Downlink(sink))
		}
		return links
	},
	Task: func(ch *Channel, hop int) edf.Task {
		d := ch.Part.Up
		if hop >= 1 {
			d = ch.Part.Down
		}
		return edf.Task{C: ch.Spec.C, P: ch.Spec.P, D: d, Tag: ch.taskTag()}
	},
	Less: func(a, b Link) bool {
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Dir < b.Dir
	},
	Part:    func(ch *Channel) Partition { return ch.Part },
	SetPart: func(ch *Channel, p Partition) { ch.Part = p },
	HasPart: func(ch *Channel, p Partition) bool { return ch.Part == p },
	Validate: func(ch *Channel, p Partition) {
		if !p.ValidFor(ch.Spec) {
			panic(fmt.Sprintf("core: DPS partition %+v violates conditions (8)/(9) for %v", p, ch))
		}
	},
	Clone: func(ch *Channel) *Channel {
		c := *ch
		return &c
	},
}

// State is the system state SS = {N, K} of §18.3.2: the set of currently
// active RT channels together with the link loads they induce. The node
// set N is implicit — any NodeID may appear; the star topology means a
// node's links exist as soon as a channel uses them.
//
// State is a thin view over the shared copy-on-write admission kernel
// (internal/admit), which maintains the per-link channel lists, the
// memoized EDF task sets and the exact rational utilization sums
// incrementally — so TasksOn and MeanLinkUtilization never scan the full
// channel map.
//
// State is not safe for concurrent use; the admission Controller (and
// above it, rtether.Network's lock) serializes access.
type State struct {
	k *admit.State[Link, *Channel, Partition]
}

// NewState returns an empty system state.
func NewState() *State {
	return &State{k: admit.NewState(coreOps)}
}

// Len returns the number of active channels, size(K).
func (st *State) Len() int { return st.k.Len() }

// Get returns the channel with the given ID, or nil.
func (st *State) Get(id ChannelID) *Channel { return st.k.Get(id) }

// Channels returns the active channels in establishment order. The caller
// must not mutate the returned channels.
func (st *State) Channels() []*Channel { return st.k.Channels() }

// channelsOn returns the channel hops traversing a link in establishment
// order. The returned slice is the live kernel cache — callers must not
// mutate or retain it.
func (st *State) channelsOn(l Link) []admit.Ref[*Channel] { return st.k.ChannelsOn(l) }

// allocID returns the next unused network-unique channel ID (see
// admit.State.AllocID for the wrap-around rules).
func (st *State) allocID() ChannelID { return st.k.AllocID() }

// add inserts a channel and updates link loads and per-link caches. The
// channel's ID must be unused.
func (st *State) add(ch *Channel) { st.k.Add(ch) }

// undoAdd reverses the most recent add exactly; see admit.State.UndoAdd.
func (st *State) undoAdd(ch *Channel) { st.k.UndoAdd(ch) }

// remove deletes a channel and updates link loads and per-link caches. It
// reports whether the channel existed.
func (st *State) remove(id ChannelID) bool { return st.k.Remove(id) }

// setPart installs a new deadline partition on a channel and invalidates
// the task caches of its links. All repartitioning goes through here so
// the caches can never go stale.
func (st *State) setPart(ch *Channel, p Partition) { st.k.SetPart(ch, p) }

// utilExceedsOne reports the exact first-constraint answer (U > 1) for a
// link from the incrementally maintained sum.
func (st *State) utilExceedsOne(l Link) bool { return st.k.UtilExceedsOne(l) }

// LinkLoad returns LL(l): the number of channels traversing the link
// (§18.4.2). Links with no channels have load zero.
func (st *State) LinkLoad(l Link) int { return st.k.LinkLoad(l) }

// Links returns every link with at least one channel, in a deterministic
// order (by node, uplinks before downlinks).
func (st *State) Links() []Link { return st.k.Links() }

// TasksOn derives the supposed periodic task set of one link
// pseudo-processor (Eqs. 18.6-18.7): for every channel whose uplink is l,
// the task {C_i, P_i, d_iu}; for every channel whose downlink is l, the
// task {C_i, P_i, d_id}. The returned slice is freshly allocated; the
// internal cache backing it is maintained incrementally.
func (st *State) TasksOn(l Link) []edf.Task { return st.k.TasksOn(l) }

// tasksCached returns the memoized task set of a link. The returned slice
// is shared — internal read-only callers use it to avoid the defensive
// copy TasksOn makes.
func (st *State) tasksCached(l Link) []edf.Task { return st.k.TasksShared(l) }

// clone returns a deep copy of the state sharing nothing mutable with the
// original.
func (st *State) clone() *State { return &State{k: st.k.Clone()} }

// MeanLinkUtilization returns the mean of the per-link task-set
// utilizations over all loaded links — a coarse load metric used in
// reports. Returns 0 for an empty state.
func (st *State) MeanLinkUtilization() float64 { return st.k.MeanLinkUtilization() }
