package core

import (
	"errors"
	"fmt"

	"repro/internal/admit"
	"repro/internal/edf"
)

// ErrInfeasible is the sentinel wrapped by every feasibility-based
// rejection, so callers can errors.Is(err, ErrInfeasible) regardless of
// which link or constraint failed.
var ErrInfeasible = errors.New("core: RT channel not feasible")

// RejectionError reports which link failed the admission test and why.
type RejectionError struct {
	Link   Link
	Result edf.Result
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("core: RT channel not feasible on %v: %v", e.Link, e.Result)
}

// Unwrap lets errors.Is match ErrInfeasible.
func (e *RejectionError) Unwrap() error { return ErrInfeasible }

// Stats counts admission outcomes, mirroring what the switch's RT channel
// management software would expose.
type Stats struct {
	Requests             int // total Request calls
	Accepted             int // channels admitted
	RejectedInvalid      int // spec validation failures
	RejectedUtilization  int // first-constraint rejections
	RejectedDemand       int // second-constraint rejections
	RejectedInconclusive int // analysis hit configured limits
	Released             int // channels torn down
	LinksChecked         int // cumulative feasibility tests run
	Repartitions         int // repartition passes run by the kernel
}

// Config tunes the admission controller.
type Config struct {
	// DPS is the deadline partitioning scheme; nil means SDPS (the paper's
	// baseline).
	DPS DPS
	// Fallbacks are additional schemes tried in order when the primary
	// DPS yields an infeasible partitioning for a request. The paper
	// frames a DPS as one point in a vector field of possible splits;
	// searching a handful of points before rejecting squeezes out extra
	// capacity at the cost of extra feasibility tests (experiment E9).
	// The committed state always reflects exactly one scheme's output.
	Fallbacks []DPS
	// Feasibility passes through to the per-link EDF test.
	Feasibility edf.Options
	// FullRecheck forces every loaded link to be re-verified on each
	// request. The default re-verifies only links whose task set changed
	// (the new channel's links plus any link holding a repartitioned
	// channel), which is equivalent but cheaper; FullRecheck exists for the
	// ablation benchmark and as a belt-and-braces mode.
	FullRecheck bool
	// NoSweepCache disables the kernel's generation-keyed feasibility-
	// verdict cache (links whose task-set content is unchanged since they
	// were last proven feasible are skipped by default). Decisions are
	// identical either way; the switch exists for ablation benchmarks and
	// the equivalence replays.
	NoSweepCache bool
	// Latency is T_latency of Eq. 18.1: the constant medium propagation
	// plus access delay added to every guarantee, in slots.
	Latency int64
	// VerifyWorkers bounds the verification worker pool used for large
	// changed-link sweeps (batch admissions); 0 means GOMAXPROCS, 1 forces
	// the sequential sweep. Decisions, diagnostics and LinksChecked are
	// identical for every worker count.
	VerifyWorkers int
}

// Controller is the switch-resident admission control of §18.2.2/§18.3:
// it owns the system state, applies the configured DPS to (re)partition
// deadlines, and accepts a new RT channel only if every affected link
// remains EDF-feasible.
//
// The decision machinery — copy-on-write state, delta repartitioning,
// rollback, changed-links verification, and the clone-everything
// reference engine — lives in the shared kernel (internal/admit); this
// type contributes spec validation, the DPS plug-in glue and the stats.
//
// Controller is not safe for concurrent use; the surrounding switch model
// (and, above it, rtether.Network's lock) serializes establishment
// traffic as a single management process would.
type Controller struct {
	cfg     Config
	eng     *admit.Engine[Link, *Channel, Partition]
	schemes []admit.Scheme[Link, *Channel, Partition]
	stats   Stats
}

// NewController returns a Controller with the given configuration.
func NewController(cfg Config) *Controller {
	if cfg.DPS == nil {
		cfg.DPS = SDPS{}
	}
	cfg.Feasibility.SkipValidation = true // specs are validated on entry
	c := &Controller{cfg: cfg}
	c.eng = admit.NewEngine(coreOps, admit.Config{
		Feasibility:  cfg.Feasibility,
		FullRecheck:  cfg.FullRecheck,
		NoSweepCache: cfg.NoSweepCache,
		Workers:      cfg.VerifyWorkers,
	})
	for _, d := range append([]DPS{cfg.DPS}, cfg.Fallbacks...) {
		c.schemes = append(c.schemes, kernelScheme(d))
	}
	return c
}

// kernelScheme adapts a DPS to the kernel's scheme vocabulary. A scheme
// implementing IncrementalDPS gets a PartitionTouched hook, enabling the
// kernel's copy-on-write engine.
func kernelScheme(d DPS) admit.Scheme[Link, *Channel, Partition] {
	s := admit.Scheme[Link, *Channel, Partition]{
		Partition: func(k *admit.State[Link, *Channel, Partition]) map[ChannelID]Partition {
			return d.Partition(&State{k: k})
		},
	}
	if inc, ok := d.(IncrementalDPS); ok {
		s.PartitionTouched = func(k *admit.State[Link, *Channel, Partition], touched []Link) map[ChannelID]Partition {
			return inc.PartitionTouched(&State{k: k}, touched)
		}
	}
	return s
}

// DPS returns the active deadline partitioning scheme.
func (c *Controller) DPS() DPS { return c.cfg.DPS }

// Stats returns a copy of the admission counters.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.LinksChecked = c.eng.LinksChecked()
	s.Repartitions = c.eng.Repartitions()
	return s
}

// SweepSkips returns how many of the LinksChecked feasibility answers
// came from the kernel's generation-keyed verdict cache instead of a
// fresh EDF analysis. Always 0 with NoSweepCache or FullRecheck.
func (c *Controller) SweepSkips() int { return c.eng.SweepSkips() }

// SweepNs returns the cumulative wall-clock nanoseconds the engine has
// spent inside verification sweeps (observability accounting; measured,
// not deterministic).
func (c *Controller) SweepNs() int64 { return c.eng.SweepNs() }

// State returns the live system state. Callers must treat it as read-only.
func (c *Controller) State() *State { return &State{k: c.eng.State()} }

// Repartitioned returns the IDs (ascending) of the channels whose
// partitions changed in the last successful Request, RequestAll or
// Release — establishments include the new channels. The slice is
// invalidated by the next state mutation.
func (c *Controller) Repartitioned() []ChannelID { return c.eng.Repartitioned() }

// GuaranteedDelay returns T_maxdelay,i = d_i + T_latency (Eq. 18.1) for an
// accepted spec.
func (c *Controller) GuaranteedDelay(s ChannelSpec) int64 { return s.D + c.cfg.Latency }

// Request runs the admission test for a new RT channel and, if feasible,
// commits it and returns the established channel. The decision procedure
// follows §18.3.2 and §18.4:
//
//  1. Validate the spec (including D >= 2C, condition (9)).
//  2. Build the tentative state: current channels plus the new one.
//  3. Apply the DPS to the (tentative) system state — the DPS is a
//     function of the system state, so existing channels may be
//     repartitioned.
//  4. Test EDF feasibility of every link whose task set changed (or every
//     link under FullRecheck). If any link fails, reject and leave the
//     committed state untouched.
//
// With an IncrementalDPS (SDPS/ADPS/FixedDPS) and FullRecheck off, steps
// 2-4 run copy-on-write on the live state: only channels the DPS actually
// repartitions are touched and rolled back on rejection, instead of
// deep-cloning all N channels per request. Decisions are identical either
// way — only Stats.LinksChecked can differ from FullRecheck mode.
func (c *Controller) Request(spec ChannelSpec) (*Channel, error) {
	c.stats.Requests++
	if err := spec.Validate(); err != nil {
		c.stats.RejectedInvalid++
		return nil, err
	}
	chs, rej := c.admit([]ChannelSpec{spec})
	if rej != nil {
		c.noteRejection(rej)
		return nil, rej
	}
	c.stats.Accepted++
	return chs[0], nil
}

// RequestAll runs one admission test for a whole batch of RT channels:
// the batch is validated, added to a single tentative state, partitioned
// once, and every affected link verified once — one repartition instead
// of len(specs). Either every channel commits (returned in spec order) or
// none does and the first failure is returned.
//
// Stats account the batch as len(specs) requests; on success all are
// accepted, on rejection one rejection is recorded for the batch (the
// constraint that failed first).
func (c *Controller) RequestAll(specs []ChannelSpec) ([]*Channel, error) {
	c.stats.Requests += len(specs)
	if len(specs) == 0 {
		return nil, nil
	}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			c.stats.RejectedInvalid++
			return nil, fmt.Errorf("batch spec %d (%v): %w", i, spec, err)
		}
	}
	chs, rej := c.admit(specs)
	if rej != nil {
		c.noteRejection(rej)
		return nil, rej
	}
	c.stats.Accepted += len(specs)
	return chs, nil
}

// RequestEach runs per-spec admission for a merged batch: every spec
// gets its own accept/reject verdict (unlike RequestAll's all-or-nothing
// decision), while the kernel runs far fewer repartition passes than
// len(specs) sequential Requests — greedy bisection tries the whole
// group first and only narrows down around failures
// (admit.Engine.AdmitEach). Verdicts are decision-equivalent to
// submitting the specs one by one with Request; see AdmitEach for the
// exactness contract per scheme.
//
// The returned slices are parallel to specs: chs[i] is the committed
// channel when errs[i] is nil, and errs[i] is the spec's own validation
// error or *RejectionError otherwise. Stats account the batch as
// len(specs) requests with per-spec outcomes.
func (c *Controller) RequestEach(specs []ChannelSpec) ([]*Channel, []error) {
	c.stats.Requests += len(specs)
	chs := make([]*Channel, len(specs))
	errs := make([]error, len(specs))
	valid := make([]int, 0, len(specs))
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			c.stats.RejectedInvalid++
			errs[i] = err
			continue
		}
		valid = append(valid, i)
	}
	got, rejs := c.eng.AdmitEach(len(valid), func(i int, id ChannelID) *Channel {
		return &Channel{ID: id, Spec: specs[valid[i]]}
	}, c.schemes)
	for vi, i := range valid {
		if rej := rejs[vi]; rej != nil {
			re := &RejectionError{Link: rej.Link, Result: rej.Result}
			c.noteRejection(re)
			errs[i] = re
			continue
		}
		c.stats.Accepted++
		chs[i] = got[vi]
	}
	return chs, errs
}

// Req is one entry of a mixed establishment batch handed to
// RequestEachReq: a unicast channel when Sinks is nil, a multicast tree
// otherwise (Spec is then the MulticastSpec's ChannelSpec projection,
// Dst = Sinks[0]).
type Req struct {
	Spec  ChannelSpec
	Sinks []NodeID
	// ID, when KeepID is set, is committed as the channel's ID instead
	// of a freshly allocated one. The ID must not be in use: failure
	// recovery releases affected channels and re-admits them under their
	// old IDs so handles held by callers stay valid.
	ID     ChannelID
	KeepID bool
}

// MulticastSpec reconstructs the multicast spec of a multicast Req.
func (r Req) MulticastSpec() MulticastSpec {
	return MulticastSpec{Src: r.Spec.Src, Sinks: r.Sinks, P: r.Spec.P, C: r.Spec.C, D: r.Spec.D, Priority: r.Spec.Priority}
}

// RequestEachReq is RequestEach over a mixed unicast/multicast batch:
// every request is validated and decided on its own with the same
// merged-batch kernel machinery (greedy bisection, undo-on-reject
// rollback, decision-equivalence with sequential submission). It is the
// primitive behind both multicast-aware request coalescing and
// post-failure batch re-admission.
//
// The returned slices are parallel to reqs, exactly as in RequestEach.
func (c *Controller) RequestEachReq(reqs []Req) ([]*Channel, []error) {
	c.stats.Requests += len(reqs)
	chs := make([]*Channel, len(reqs))
	errs := make([]error, len(reqs))
	valid := make([]int, 0, len(reqs))
	for i, r := range reqs {
		var err error
		if len(r.Sinks) == 0 {
			err = r.Spec.Validate()
		} else {
			err = r.MulticastSpec().Validate()
		}
		if err != nil {
			c.stats.RejectedInvalid++
			errs[i] = err
			continue
		}
		valid = append(valid, i)
	}
	got, rejs := c.eng.AdmitEach(len(valid), func(vi int, id ChannelID) *Channel {
		r := reqs[valid[vi]]
		if r.KeepID {
			id = r.ID
		}
		ch := &Channel{ID: id, Spec: r.Spec}
		if len(r.Sinks) > 0 {
			ch.Sinks = append([]NodeID(nil), r.Sinks...)
		}
		return ch
	}, c.schemes)
	for vi, i := range valid {
		if rej := rejs[vi]; rej != nil {
			re := &RejectionError{Link: rej.Link, Result: rej.Result}
			c.noteRejection(re)
			errs[i] = re
			continue
		}
		c.stats.Accepted++
		chs[i] = got[vi]
	}
	return chs, errs
}

// admit runs the kernel decision for pre-validated specs.
func (c *Controller) admit(specs []ChannelSpec) ([]*Channel, *RejectionError) {
	chs, rej := c.eng.Admit(len(specs), func(i int, id ChannelID) *Channel {
		return &Channel{ID: id, Spec: specs[i]}
	}, c.schemes)
	if rej != nil {
		return nil, &RejectionError{Link: rej.Link, Result: rej.Result}
	}
	return chs, nil
}

// noteRejection classifies a feasibility rejection into the stats
// counters.
func (c *Controller) noteRejection(rej *RejectionError) {
	switch rej.Result.Verdict {
	case edf.InfeasibleUtilization:
		c.stats.RejectedUtilization++
	case edf.InfeasibleDemand:
		c.stats.RejectedDemand++
	default:
		c.stats.RejectedInconclusive++
	}
}

// ForceAdd installs a channel without any feasibility test, using the
// given partition (or the DPS split for a singleton state when zero).
// It exists for experiments that need to compare guaranteed operation
// against deliberately over-admitted systems (e.g. showing that a
// utilization-only admission test is unsound for d < P); production
// callers use Request.
func (c *Controller) ForceAdd(spec ChannelSpec, part Partition) (*Channel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if part == (Partition{}) {
		part = clampPartition(spec, spec.D/2)
	}
	if !part.ValidFor(spec) {
		return nil, fmt.Errorf("core: forced partition %+v violates conditions (8)/(9) for %v", part, spec)
	}
	st := c.eng.State()
	ch := &Channel{ID: st.AllocID(), Spec: spec, Part: part}
	st.Add(ch)
	return ch, nil
}

// Release tears down an established channel. The remaining channels are
// repartitioned (the DPS depends on the system state); in the unlikely
// event that repartitioning a smaller system makes some link infeasible,
// the previous partitions are kept — removing load can never invalidate
// the schedule under unchanged partitions. Like Request, Release runs
// copy-on-write when the primary DPS is incremental.
func (c *Controller) Release(id ChannelID) error {
	if !c.eng.Release(id, c.schemes[0]) {
		return fmt.Errorf("core: release of unknown RT channel %d", id)
	}
	c.stats.Released++
	return nil
}
