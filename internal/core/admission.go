package core

import (
	"errors"
	"fmt"

	"repro/internal/edf"
)

// ErrInfeasible is the sentinel wrapped by every feasibility-based
// rejection, so callers can errors.Is(err, ErrInfeasible) regardless of
// which link or constraint failed.
var ErrInfeasible = errors.New("core: RT channel not feasible")

// RejectionError reports which link failed the admission test and why.
type RejectionError struct {
	Link   Link
	Result edf.Result
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("core: RT channel not feasible on %v: %v", e.Link, e.Result)
}

// Unwrap lets errors.Is match ErrInfeasible.
func (e *RejectionError) Unwrap() error { return ErrInfeasible }

// Stats counts admission outcomes, mirroring what the switch's RT channel
// management software would expose.
type Stats struct {
	Requests             int // total Request calls
	Accepted             int // channels admitted
	RejectedInvalid      int // spec validation failures
	RejectedUtilization  int // first-constraint rejections
	RejectedDemand       int // second-constraint rejections
	RejectedInconclusive int // analysis hit configured limits
	Released             int // channels torn down
	LinksChecked         int // cumulative feasibility tests run
}

// Config tunes the admission controller.
type Config struct {
	// DPS is the deadline partitioning scheme; nil means SDPS (the paper's
	// baseline).
	DPS DPS
	// Fallbacks are additional schemes tried in order when the primary
	// DPS yields an infeasible partitioning for a request. The paper
	// frames a DPS as one point in a vector field of possible splits;
	// searching a handful of points before rejecting squeezes out extra
	// capacity at the cost of extra feasibility tests (experiment E9).
	// The committed state always reflects exactly one scheme's output.
	Fallbacks []DPS
	// Feasibility passes through to the per-link EDF test.
	Feasibility edf.Options
	// FullRecheck forces every loaded link to be re-verified on each
	// request. The default re-verifies only links whose task set changed
	// (the new channel's links plus any link holding a repartitioned
	// channel), which is equivalent but cheaper; FullRecheck exists for the
	// ablation benchmark and as a belt-and-braces mode.
	FullRecheck bool
	// Latency is T_latency of Eq. 18.1: the constant medium propagation
	// plus access delay added to every guarantee, in slots.
	Latency int64
}

// Controller is the switch-resident admission control of §18.2.2/§18.3:
// it owns the system state, applies the configured DPS to (re)partition
// deadlines, and accepts a new RT channel only if every affected link
// remains EDF-feasible.
//
// Controller is not safe for concurrent use; the surrounding switch model
// serializes establishment traffic (as a single management process would).
type Controller struct {
	cfg   Config
	state *State
	stats Stats
}

// NewController returns a Controller with the given configuration.
func NewController(cfg Config) *Controller {
	if cfg.DPS == nil {
		cfg.DPS = SDPS{}
	}
	cfg.Feasibility.SkipValidation = true // specs are validated on entry
	return &Controller{cfg: cfg, state: NewState()}
}

// DPS returns the active deadline partitioning scheme.
func (c *Controller) DPS() DPS { return c.cfg.DPS }

// Stats returns a copy of the admission counters.
func (c *Controller) Stats() Stats { return c.stats }

// State returns the live system state. Callers must treat it as read-only.
func (c *Controller) State() *State { return c.state }

// GuaranteedDelay returns T_maxdelay,i = d_i + T_latency (Eq. 18.1) for an
// accepted spec.
func (c *Controller) GuaranteedDelay(s ChannelSpec) int64 { return s.D + c.cfg.Latency }

// schemes returns the primary DPS followed by the configured fallbacks.
func (c *Controller) schemes() []DPS {
	return append([]DPS{c.cfg.DPS}, c.cfg.Fallbacks...)
}

// incremental reports whether the controller can run the copy-on-write
// admission path: every configured scheme must support incremental
// repartitioning, and FullRecheck (the ablation/belt-and-braces mode,
// which wants to see the whole tentative state) must be off.
func (c *Controller) incremental() bool {
	if c.cfg.FullRecheck {
		return false
	}
	for _, d := range c.schemes() {
		if _, ok := d.(IncrementalDPS); !ok {
			return false
		}
	}
	return true
}

// Request runs the admission test for a new RT channel and, if feasible,
// commits it and returns the established channel. The decision procedure
// follows §18.3.2 and §18.4:
//
//  1. Validate the spec (including D >= 2C, condition (9)).
//  2. Build the tentative state: current channels plus the new one.
//  3. Apply the DPS to the (tentative) system state — the DPS is a
//     function of the system state, so existing channels may be
//     repartitioned.
//  4. Test EDF feasibility of every link whose task set changed (or every
//     link under FullRecheck). If any link fails, reject and leave the
//     committed state untouched.
//
// With an IncrementalDPS (SDPS/ADPS/FixedDPS) and FullRecheck off, steps
// 2-4 run copy-on-write on the live state: only channels the DPS actually
// repartitions are touched and rolled back on rejection, instead of
// deep-cloning all N channels per request. Decisions are identical either
// way — only Stats.LinksChecked can differ from FullRecheck mode.
func (c *Controller) Request(spec ChannelSpec) (*Channel, error) {
	c.stats.Requests++
	if err := spec.Validate(); err != nil {
		c.stats.RejectedInvalid++
		return nil, err
	}
	var chs []*Channel
	var rej *RejectionError
	if c.incremental() {
		chs, rej = c.admitDelta([]ChannelSpec{spec})
	} else {
		chs, rej = c.admitClone([]ChannelSpec{spec})
	}
	if rej != nil {
		c.noteRejection(rej)
		return nil, rej
	}
	c.stats.Accepted++
	return chs[0], nil
}

// RequestAll runs one admission test for a whole batch of RT channels:
// the batch is validated, added to a single tentative state, partitioned
// once, and every affected link verified once — one repartition instead
// of len(specs). Either every channel commits (returned in spec order) or
// none does and the first failure is returned.
//
// Stats account the batch as len(specs) requests; on success all are
// accepted, on rejection one rejection is recorded for the batch (the
// constraint that failed first).
func (c *Controller) RequestAll(specs []ChannelSpec) ([]*Channel, error) {
	c.stats.Requests += len(specs)
	if len(specs) == 0 {
		return nil, nil
	}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			c.stats.RejectedInvalid++
			return nil, fmt.Errorf("batch spec %d (%v): %w", i, spec, err)
		}
	}
	var chs []*Channel
	var rej *RejectionError
	if c.incremental() {
		chs, rej = c.admitDelta(specs)
	} else {
		chs, rej = c.admitClone(specs)
	}
	if rej != nil {
		c.noteRejection(rej)
		return nil, rej
	}
	c.stats.Accepted += len(specs)
	return chs, nil
}

// noteRejection classifies a feasibility rejection into the stats
// counters.
func (c *Controller) noteRejection(rej *RejectionError) {
	switch rej.Result.Verdict {
	case edf.InfeasibleUtilization:
		c.stats.RejectedUtilization++
	case edf.InfeasibleDemand:
		c.stats.RejectedDemand++
	default:
		c.stats.RejectedInconclusive++
	}
}

// admitClone is the clone-based admission engine: build a full tentative
// copy of the state per scheme, repartition everything, verify, and swap
// the state pointer on acceptance. It remains the reference path for
// FullRecheck mode and for custom non-incremental DPS implementations.
func (c *Controller) admitClone(specs []ChannelSpec) ([]*Channel, *RejectionError) {
	var firstRej *RejectionError
	for _, dps := range c.schemes() {
		tentative := c.state.clone()
		chs := make([]*Channel, len(specs))
		for i, spec := range specs {
			ch := &Channel{ID: tentative.allocID(), Spec: spec}
			tentative.add(ch)
			chs[i] = ch
		}

		parts := dps.Partition(tentative)
		changed := applyPartitions(tentative, parts)

		rej := c.verify(tentative, changed)
		if rej == nil {
			c.state = tentative
			return chs, nil
		}
		if firstRej == nil {
			firstRej = rej
		}
	}
	return nil, firstRej
}

// admitDelta is the copy-on-write admission engine: mutate the live state
// tentatively (add the channels, repartition only what the DPS says can
// have moved), verify only the changed links, and roll everything back on
// rejection. The ID allocator is restored too, so a rejected request
// leaves no observable trace — decisions and committed states are
// bit-identical to admitClone.
func (c *Controller) admitDelta(specs []ChannelSpec) ([]*Channel, *RejectionError) {
	var firstRej *RejectionError
	for _, dps := range c.schemes() {
		inc := dps.(IncrementalDPS)
		savedNext := c.state.nextID
		chs := make([]*Channel, len(specs))
		touched := make([]Link, 0, 2*len(specs))
		for i, spec := range specs {
			ch := &Channel{ID: c.state.allocID(), Spec: spec}
			c.state.add(ch)
			chs[i] = ch
			ls := LinksOf(spec)
			touched = append(touched, ls[0], ls[1])
		}

		parts := inc.PartitionTouched(c.state, touched)
		undo, changed := applyPartitionsDelta(c.state, parts)

		rej := c.verifyChanged(c.state, changed)
		if rej == nil {
			return chs, nil
		}
		rollbackPartitions(c.state, undo)
		for i := len(chs) - 1; i >= 0; i-- {
			c.state.undoAdd(chs[i])
		}
		c.state.nextID = savedNext
		if firstRej == nil {
			firstRej = rej
		}
	}
	return nil, firstRej
}

// ForceAdd installs a channel without any feasibility test, using the
// given partition (or the DPS split for a singleton state when zero).
// It exists for experiments that need to compare guaranteed operation
// against deliberately over-admitted systems (e.g. showing that a
// utilization-only admission test is unsound for d < P); production
// callers use Request.
func (c *Controller) ForceAdd(spec ChannelSpec, part Partition) (*Channel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if part == (Partition{}) {
		part = clampPartition(spec, spec.D/2)
	}
	if !part.ValidFor(spec) {
		return nil, fmt.Errorf("core: forced partition %+v violates conditions (8)/(9) for %v", part, spec)
	}
	ch := &Channel{ID: c.state.allocID(), Spec: spec, Part: part}
	c.state.add(ch)
	return ch, nil
}

// Release tears down an established channel. The remaining channels are
// repartitioned (the DPS depends on the system state); in the unlikely
// event that repartitioning a smaller system makes some link infeasible,
// the previous partitions are kept — removing load can never invalidate
// the schedule under unchanged partitions. Like Request, Release runs
// copy-on-write when the primary DPS is incremental.
func (c *Controller) Release(id ChannelID) error {
	ch := c.state.Get(id)
	if ch == nil {
		return fmt.Errorf("core: release of unknown RT channel %d", id)
	}
	inc, ok := c.cfg.DPS.(IncrementalDPS)
	if ok && !c.cfg.FullRecheck {
		c.state.remove(id)
		ls := LinksOf(ch.Spec)
		parts := inc.PartitionTouched(c.state, ls[:])
		undo, changed := applyPartitionsDelta(c.state, parts)
		if rej := c.verifyChanged(c.state, changed); rej != nil {
			rollbackPartitions(c.state, undo)
		}
		c.stats.Released++
		return nil
	}

	next := c.state.clone()
	next.remove(id)

	repartitioned := next.clone()
	parts := c.cfg.DPS.Partition(repartitioned)
	changed := applyPartitions(repartitioned, parts)
	if rej := c.verify(repartitioned, changed); rej == nil {
		c.state = repartitioned
	} else {
		c.state = next
	}
	c.stats.Released++
	return nil
}

// verify tests feasibility of the given links (or all loaded links under
// FullRecheck) and returns a RejectionError for the first failure. The
// links are visited in deterministic order.
func (c *Controller) verify(st *State, changed map[Link]struct{}) *RejectionError {
	links := st.Links()
	for _, l := range links {
		if !c.cfg.FullRecheck {
			if _, ok := changed[l]; !ok {
				continue
			}
		}
		c.stats.LinksChecked++
		res := edf.Test(st.tasksCached(l), c.cfg.Feasibility)
		if !res.OK() {
			return &RejectionError{Link: l, Result: res}
		}
	}
	return nil
}

// verifyChanged tests feasibility of exactly the changed links, visited in
// the same deterministic order verify uses (sorted by node, uplinks before
// downlinks — the sorted restriction of the full link sequence, so the
// first failure reported is identical). Links whose task sets did not
// change were feasible at the previous commit and cannot have become
// infeasible, which is what makes the restriction decision-preserving.
func (c *Controller) verifyChanged(st *State, changed map[Link]struct{}) *RejectionError {
	links := make([]Link, 0, len(changed))
	for l := range changed {
		links = append(links, l)
	}
	sortLinks(links)
	opts := c.cfg.Feasibility
	for _, l := range links {
		c.stats.LinksChecked++
		// The first constraint (U > 1, exact) comes from the state's
		// incrementally maintained per-link sum — rational arithmetic is
		// exact, so the answer matches a fresh summation bit for bit.
		exceeds := st.utilExceedsOne(l)
		opts.UtilizationExceeds = &exceeds
		res := edf.Test(st.tasksCached(l), opts)
		if !res.OK() {
			return &RejectionError{Link: l, Result: res}
		}
	}
	return nil
}
