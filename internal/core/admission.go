package core

import (
	"errors"
	"fmt"

	"repro/internal/edf"
)

// ErrInfeasible is the sentinel wrapped by every feasibility-based
// rejection, so callers can errors.Is(err, ErrInfeasible) regardless of
// which link or constraint failed.
var ErrInfeasible = errors.New("core: RT channel not feasible")

// RejectionError reports which link failed the admission test and why.
type RejectionError struct {
	Link   Link
	Result edf.Result
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("core: RT channel not feasible on %v: %v", e.Link, e.Result)
}

// Unwrap lets errors.Is match ErrInfeasible.
func (e *RejectionError) Unwrap() error { return ErrInfeasible }

// Stats counts admission outcomes, mirroring what the switch's RT channel
// management software would expose.
type Stats struct {
	Requests             int // total Request calls
	Accepted             int // channels admitted
	RejectedInvalid      int // spec validation failures
	RejectedUtilization  int // first-constraint rejections
	RejectedDemand       int // second-constraint rejections
	RejectedInconclusive int // analysis hit configured limits
	Released             int // channels torn down
	LinksChecked         int // cumulative feasibility tests run
}

// Config tunes the admission controller.
type Config struct {
	// DPS is the deadline partitioning scheme; nil means SDPS (the paper's
	// baseline).
	DPS DPS
	// Fallbacks are additional schemes tried in order when the primary
	// DPS yields an infeasible partitioning for a request. The paper
	// frames a DPS as one point in a vector field of possible splits;
	// searching a handful of points before rejecting squeezes out extra
	// capacity at the cost of extra feasibility tests (experiment E9).
	// The committed state always reflects exactly one scheme's output.
	Fallbacks []DPS
	// Feasibility passes through to the per-link EDF test.
	Feasibility edf.Options
	// FullRecheck forces every loaded link to be re-verified on each
	// request. The default re-verifies only links whose task set changed
	// (the new channel's links plus any link holding a repartitioned
	// channel), which is equivalent but cheaper; FullRecheck exists for the
	// ablation benchmark and as a belt-and-braces mode.
	FullRecheck bool
	// Latency is T_latency of Eq. 18.1: the constant medium propagation
	// plus access delay added to every guarantee, in slots.
	Latency int64
}

// Controller is the switch-resident admission control of §18.2.2/§18.3:
// it owns the system state, applies the configured DPS to (re)partition
// deadlines, and accepts a new RT channel only if every affected link
// remains EDF-feasible.
//
// Controller is not safe for concurrent use; the surrounding switch model
// serializes establishment traffic (as a single management process would).
type Controller struct {
	cfg   Config
	state *State
	stats Stats
}

// NewController returns a Controller with the given configuration.
func NewController(cfg Config) *Controller {
	if cfg.DPS == nil {
		cfg.DPS = SDPS{}
	}
	cfg.Feasibility.SkipValidation = true // specs are validated on entry
	return &Controller{cfg: cfg, state: NewState()}
}

// DPS returns the active deadline partitioning scheme.
func (c *Controller) DPS() DPS { return c.cfg.DPS }

// Stats returns a copy of the admission counters.
func (c *Controller) Stats() Stats { return c.stats }

// State returns the live system state. Callers must treat it as read-only.
func (c *Controller) State() *State { return c.state }

// GuaranteedDelay returns T_maxdelay,i = d_i + T_latency (Eq. 18.1) for an
// accepted spec.
func (c *Controller) GuaranteedDelay(s ChannelSpec) int64 { return s.D + c.cfg.Latency }

// Request runs the admission test for a new RT channel and, if feasible,
// commits it and returns the established channel. The decision procedure
// follows §18.3.2 and §18.4:
//
//  1. Validate the spec (including D >= 2C, condition (9)).
//  2. Build the tentative state: current channels plus the new one.
//  3. Apply the DPS to the whole tentative state — the DPS is a function
//     of the system state, so existing channels may be repartitioned.
//  4. Test EDF feasibility of every link whose task set changed (or every
//     link under FullRecheck). If any link fails, reject and leave the
//     committed state untouched.
func (c *Controller) Request(spec ChannelSpec) (*Channel, error) {
	c.stats.Requests++
	if err := spec.Validate(); err != nil {
		c.stats.RejectedInvalid++
		return nil, err
	}

	var firstRej *RejectionError
	for _, dps := range append([]DPS{c.cfg.DPS}, c.cfg.Fallbacks...) {
		tentative := c.state.clone()
		ch := &Channel{ID: tentative.allocID(), Spec: spec}
		tentative.add(ch)

		parts := dps.Partition(tentative)
		changed := applyPartitions(tentative, parts)

		rej := c.verify(tentative, changed)
		if rej == nil {
			c.state = tentative
			c.stats.Accepted++
			return ch, nil
		}
		if firstRej == nil {
			firstRej = rej
		}
	}

	switch firstRej.Result.Verdict {
	case edf.InfeasibleUtilization:
		c.stats.RejectedUtilization++
	case edf.InfeasibleDemand:
		c.stats.RejectedDemand++
	default:
		c.stats.RejectedInconclusive++
	}
	return nil, firstRej
}

// ForceAdd installs a channel without any feasibility test, using the
// given partition (or the DPS split for a singleton state when zero).
// It exists for experiments that need to compare guaranteed operation
// against deliberately over-admitted systems (e.g. showing that a
// utilization-only admission test is unsound for d < P); production
// callers use Request.
func (c *Controller) ForceAdd(spec ChannelSpec, part Partition) (*Channel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if part == (Partition{}) {
		part = clampPartition(spec, spec.D/2)
	}
	if !part.ValidFor(spec) {
		return nil, fmt.Errorf("core: forced partition %+v violates conditions (8)/(9) for %v", part, spec)
	}
	ch := &Channel{ID: c.state.allocID(), Spec: spec, Part: part}
	c.state.add(ch)
	return ch, nil
}

// Release tears down an established channel. The remaining channels are
// repartitioned (the DPS depends on the system state); in the unlikely
// event that repartitioning a smaller system makes some link infeasible,
// the previous partitions are kept — removing load can never invalidate
// the schedule under unchanged partitions.
func (c *Controller) Release(id ChannelID) error {
	if c.state.Get(id) == nil {
		return fmt.Errorf("core: release of unknown RT channel %d", id)
	}
	next := c.state.clone()
	next.remove(id)

	repartitioned := next.clone()
	parts := c.cfg.DPS.Partition(repartitioned)
	changed := applyPartitions(repartitioned, parts)
	if rej := c.verify(repartitioned, changed); rej == nil {
		c.state = repartitioned
	} else {
		c.state = next
	}
	c.stats.Released++
	return nil
}

// verify tests feasibility of the given links (or all loaded links under
// FullRecheck) and returns a RejectionError for the first failure. The
// links are visited in deterministic order.
func (c *Controller) verify(st *State, changed map[Link]struct{}) *RejectionError {
	links := st.Links()
	for _, l := range links {
		if !c.cfg.FullRecheck {
			if _, ok := changed[l]; !ok {
				continue
			}
		}
		c.stats.LinksChecked++
		res := edf.Test(st.TasksOn(l), c.cfg.Feasibility)
		if !res.OK() {
			return &RejectionError{Link: l, Result: res}
		}
	}
	return nil
}
