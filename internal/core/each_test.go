package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// randomStarSpecs draws a mixed workload over nodes 1..n: mostly valid
// specs at pressure high enough to force rejections, plus a sprinkle of
// invalid ones (self-loops, D < 2C).
func randomStarSpecs(rng *rand.Rand, nodes, count int) []ChannelSpec {
	specs := make([]ChannelSpec, count)
	for i := range specs {
		src := NodeID(1 + rng.Intn(nodes))
		dst := NodeID(1 + rng.Intn(nodes))
		for dst == src {
			dst = NodeID(1 + rng.Intn(nodes))
		}
		c := int64(1 + rng.Intn(3))
		p := int64(10 + rng.Intn(90))
		d := 2*c + int64(rng.Intn(40))
		switch rng.Intn(20) {
		case 0:
			dst = src // invalid: self-loop
		case 1:
			d = 2*c - 1 // invalid: deadline below store-and-forward bound
		}
		specs[i] = ChannelSpec{Src: src, Dst: dst, C: c, P: p, D: d}
	}
	return specs
}

// stateFingerprint serializes the committed channels (ID, spec,
// partition) in establishment order.
func stateFingerprint(c *Controller) string {
	out := ""
	for _, ch := range c.State().Channels() {
		out += fmt.Sprintf("%d:%v:%d/%d;", ch.ID, ch.Spec, ch.Part.Up, ch.Part.Down)
	}
	return out
}

// TestRequestEachMatchesSequential replays the same merged workload
// through RequestEach and through sequential Request calls on a fresh
// controller, for both shipped schemes, and requires identical per-spec
// verdicts, rejection diagnostics and committed state — the
// decision-equivalence half of the coalescing acceptance criterion on
// the star topology. SDPS equivalence is exact by construction
// (state-independent per-channel partitions are monotone); the ADPS
// subtest pins the equivalence observed on this fixed seeded workload —
// load-adaptive schemes can in principle admit a merged group some
// sequential order would partially reject (admit.AdmitEach documents
// the contract), so if a kernel change fails only the ADPS subtest,
// inspect whether the new verdicts are a legitimate group decision
// rather than assuming a bug.
func TestRequestEachMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		dps  DPS
	}{
		{"SDPS", SDPS{}},
		{"ADPS", ADPS{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			specs := randomStarSpecs(rng, 8, 400)

			merged := NewController(Config{DPS: tc.dps})
			chs, errs := merged.RequestEach(specs)

			seq := NewController(Config{DPS: tc.dps})
			accepted, rejected, invalid := 0, 0, 0
			for i, spec := range specs {
				sch, serr := seq.Request(spec)
				if (serr == nil) != (errs[i] == nil) {
					t.Fatalf("spec %d (%v): merged err=%v, sequential err=%v", i, spec, errs[i], serr)
				}
				if serr != nil {
					var mrej, srej *RejectionError
					if errors.As(errs[i], &mrej) != errors.As(serr, &srej) {
						t.Fatalf("spec %d: error kinds differ: %v vs %v", i, errs[i], serr)
					}
					if mrej != nil {
						rejected++
						if mrej.Link != srej.Link || mrej.Result.String() != srej.Result.String() {
							t.Fatalf("spec %d: diagnostics differ:\n  merged     %v\n  sequential %v", i, mrej, srej)
						}
					} else {
						invalid++
						if errs[i].Error() != serr.Error() {
							t.Fatalf("spec %d: validation errors differ: %q vs %q", i, errs[i], serr)
						}
					}
					continue
				}
				accepted++
				if chs[i].ID != sch.ID {
					t.Fatalf("spec %d: merged ID %d, sequential ID %d", i, chs[i].ID, sch.ID)
				}
			}
			if accepted == 0 || rejected == 0 || invalid == 0 {
				t.Fatalf("workload not mixed enough: %d accepted, %d rejected, %d invalid", accepted, rejected, invalid)
			}
			if got, want := stateFingerprint(merged), stateFingerprint(seq); got != want {
				t.Fatalf("committed states differ:\n  merged     %s\n  sequential %s", got, want)
			}
			ms, ss := merged.Stats(), seq.Stats()
			ms.LinksChecked, ss.LinksChecked = 0, 0
			ms.Repartitions, ss.Repartitions = 0, 0
			if ms != ss {
				t.Fatalf("stats differ (ex. kernel-effort counters):\n  merged     %+v\n  sequential %+v", ms, ss)
			}
			t.Logf("%s: accepted %d rejected %d invalid %d; repartition passes merged=%d sequential=%d",
				tc.name, accepted, rejected, invalid, merged.Stats().Repartitions, seq.Stats().Repartitions)
		})
	}
}

// TestRequestEachFeasibleBatchOnePass pins the scaling contract: a
// merged group that is feasible as a whole costs exactly one
// repartition pass, where sequential submission costs one per spec.
func TestRequestEachFeasibleBatchOnePass(t *testing.T) {
	specs := make([]ChannelSpec, 100)
	for i := range specs {
		specs[i] = ChannelSpec{Src: NodeID(1 + i%4), Dst: NodeID(5 + i%4), C: 1, P: 1000, D: 400}
	}
	c := NewController(Config{DPS: ADPS{}})
	_, errs := c.RequestEach(specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d rejected: %v", i, err)
		}
	}
	if got := c.Stats().Repartitions; got != 1 {
		t.Fatalf("Repartitions = %d after one feasible merged group, want 1", got)
	}
}
