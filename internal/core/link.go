package core

import "fmt"

// Direction distinguishes the two independent pseudo-processors of one
// full-duplex physical link (§18.3.2): the uplink carries frames from an
// end-node to the switch, the downlink from the switch to the end-node.
type Direction uint8

const (
	// Up is the end-node → switch direction, scheduled by the end-node.
	Up Direction = iota
	// Down is the switch → end-node direction, scheduled by the switch.
	Down
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Link identifies one directed pseudo-processor: the physical link of one
// end-node in one direction. In the star topology every RT channel
// traverses exactly two Links: Uplink(src) and Downlink(dst).
type Link struct {
	Node NodeID
	Dir  Direction
}

// Uplink returns the end-node→switch link of a node.
func Uplink(n NodeID) Link { return Link{Node: n, Dir: Up} }

// Downlink returns the switch→end-node link of a node.
func Downlink(n NodeID) Link { return Link{Node: n, Dir: Down} }

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("link(%d,%s)", l.Node, l.Dir)
}

// LinksOf returns the two directed links traversed by a channel with the
// given spec: its source uplink and destination downlink.
func LinksOf(s ChannelSpec) [2]Link {
	return [2]Link{Uplink(s.Src), Downlink(s.Dst)}
}
