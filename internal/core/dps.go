package core

import "fmt"

// DPS is a deadline partitioning scheme (§18.4): a function that maps the
// deadline d_i of every channel in a system state into the pair
// {d_iu, d_id} such that d_iu + d_id = d_i (condition (8)). The paper
// stresses that a DPS is not optional — the system cannot operate without
// one — and that it is a function of the whole system state, so Partition
// receives the full (tentative) state and returns a split for every
// channel in it.
//
// Implementations must be deterministic and must return partitions
// satisfying ValidFor for every channel (the helper clampPartition takes
// care of condition (9) rounding at the boundaries).
type DPS interface {
	// Name identifies the scheme in reports ("SDPS", "ADPS", ...).
	Name() string
	// Partition computes {d_iu, d_id} for every channel in st.
	Partition(st *State) map[ChannelID]Partition
}

// clampPartition builds the partition with the requested uplink share,
// clamped so that both halves respect condition (9): d_iu, d_id >= C_i.
// The spec must already satisfy D >= 2C (checked at validation), so a
// valid clamp always exists.
func clampPartition(s ChannelSpec, up int64) Partition {
	if up < s.C {
		up = s.C
	}
	if max := s.D - s.C; up > max {
		up = max
	}
	return Partition{Up: up, Down: s.D - up}
}

// SDPS is the Symmetric Deadline Partitioning Scheme (§18.4.1): every
// channel's deadline is split in half, d_iu = d_id = d_i/2, regardless of
// the system state. With integer slots an odd deadline gives the floor to
// the uplink and the remainder to the downlink.
//
// Viewed as the paper's vector field, SDPS is the constant vector 0.5.
type SDPS struct{}

// Name implements DPS.
func (SDPS) Name() string { return "SDPS" }

// Partition implements DPS.
func (SDPS) Partition(st *State) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = clampPartition(ch.Spec, ch.Spec.D/2)
	}
	return parts
}

// ADPS is the Asymmetric Deadline Partitioning Scheme (§18.4.2): the
// deadline budget is distributed to where it is most needed, in proportion
// to the link loads of the two links the channel traverses:
//
//	U_part,i = LL(Source_i) / (LL(Source_i) + LL(Destination_i))   (Eq. 18.16)
//	D_part,i = LL(Destination_i) / (LL(Source_i) + LL(Destination_i))
//
// where LL is the number of channels traversing a link. A bottlenecked
// uplink (many channels, as on a master node's uplink in master-slave
// traffic) therefore receives a larger share of every deadline that
// crosses it, relieving the bottleneck.
type ADPS struct{}

// Name implements DPS.
func (ADPS) Name() string { return "ADPS" }

// Partition implements DPS.
func (ADPS) Partition(st *State) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition, st.Len())
	for _, ch := range st.Channels() {
		llUp := int64(st.LinkLoad(Uplink(ch.Spec.Src)))
		llDown := int64(st.LinkLoad(Downlink(ch.Spec.Dst)))
		total := llUp + llDown
		var up int64
		if total == 0 {
			// Unreachable for channels inside st (their own traversal
			// counts), but keep a sane symmetric fallback.
			up = ch.Spec.D / 2
		} else {
			up = ch.Spec.D * llUp / total
		}
		parts[ch.ID] = clampPartition(ch.Spec, up)
	}
	return parts
}

// FixedDPS assigns every channel the same uplink fraction of its deadline.
// It is not part of the paper; it generalizes SDPS (fraction 0.5) and is
// used by ablation experiments to show that no static split matches ADPS
// on asymmetric workloads.
type FixedDPS struct {
	// UpNum/UpDen is the uplink fraction, e.g. 5/6.
	UpNum, UpDen int64
}

// Name implements DPS.
func (f FixedDPS) Name() string { return fmt.Sprintf("Fixed(%d/%d)", f.UpNum, f.UpDen) }

// Partition implements DPS.
func (f FixedDPS) Partition(st *State) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition, st.Len())
	for _, ch := range st.Channels() {
		up := ch.Spec.D * f.UpNum / f.UpDen
		parts[ch.ID] = clampPartition(ch.Spec, up)
	}
	return parts
}

// applyPartitions installs the computed splits into the state's channels,
// returning the set of links whose task sets changed (any link touched by
// a channel whose partition moved). It panics if a partition violates
// conditions (8)/(9) — that would be a DPS implementation bug, not an
// admission rejection.
func applyPartitions(st *State, parts map[ChannelID]Partition) map[Link]struct{} {
	changed := make(map[Link]struct{})
	for _, ch := range st.Channels() {
		p, ok := parts[ch.ID]
		if !ok {
			panic(fmt.Sprintf("core: DPS returned no partition for %v", ch))
		}
		if !p.ValidFor(ch.Spec) {
			panic(fmt.Sprintf("core: DPS partition %+v violates conditions (8)/(9) for %v", p, ch))
		}
		if ch.Part == p {
			continue
		}
		ch.Part = p
		for _, l := range LinksOf(ch.Spec) {
			changed[l] = struct{}{}
		}
	}
	return changed
}
