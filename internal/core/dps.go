package core

import "fmt"

// DPS is a deadline partitioning scheme (§18.4): a function that maps the
// deadline d_i of every channel in a system state into the pair
// {d_iu, d_id} such that d_iu + d_id = d_i (condition (8)). The paper
// stresses that a DPS is not optional — the system cannot operate without
// one — and that it is a function of the whole system state, so Partition
// receives the full (tentative) state and returns a split for every
// channel in it.
//
// Implementations must be deterministic and must return partitions
// satisfying ValidFor for every channel (the helper clampPartition takes
// care of condition (9) rounding at the boundaries).
type DPS interface {
	// Name identifies the scheme in reports ("SDPS", "ADPS", ...).
	Name() string
	// Partition computes {d_iu, d_id} for every channel in st.
	Partition(st *State) map[ChannelID]Partition
}

// IncrementalDPS is an optional refinement of DPS for schemes whose split
// for a channel depends only on that channel's own spec and the loads of
// the two links it traverses (true for SDPS, ADPS and FixedDPS). Such a
// scheme can repartition incrementally: after a mutation that touched a
// set of links, only channels traversing a touched link can have a
// different split, so the admission controller skips the full-state
// Partition call and clones nothing.
type IncrementalDPS interface {
	DPS
	// PartitionTouched returns new partitions after a mutation that
	// touched the given links. For each returned channel the value must
	// equal what Partition(st) would return, and every channel omitted
	// must already hold exactly that value — the controller relies on
	// both halves of the contract to keep incremental decisions
	// bit-identical to full repartitioning.
	PartitionTouched(st *State, touched []Link) map[ChannelID]Partition
}

// clampPartition builds the partition with the requested uplink share,
// clamped so that both halves respect condition (9): d_iu, d_id >= C_i.
// The spec must already satisfy D >= 2C (checked at validation), so a
// valid clamp always exists.
func clampPartition(s ChannelSpec, up int64) Partition {
	if up < s.C {
		up = s.C
	}
	if max := s.D - s.C; up > max {
		up = max
	}
	return Partition{Up: up, Down: s.D - up}
}

// SDPS is the Symmetric Deadline Partitioning Scheme (§18.4.1): every
// channel's deadline is split in half, d_iu = d_id = d_i/2, regardless of
// the system state. With integer slots an odd deadline gives the floor to
// the uplink and the remainder to the downlink.
//
// Viewed as the paper's vector field, SDPS is the constant vector 0.5.
type SDPS struct{}

// Name implements DPS.
func (SDPS) Name() string { return "SDPS" }

// Partition implements DPS.
func (SDPS) Partition(st *State) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = clampPartition(ch.Spec, ch.Spec.D/2)
	}
	return parts
}

// partitionTouched is the shared shell of every IncrementalDPS
// implementation: collect the split of each channel traversing a touched
// link, deduplicating channels that traverse two of them.
func partitionTouched(st *State, touched []Link, split func(*Channel) Partition) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition)
	for _, l := range touched {
		for _, r := range st.channelsOn(l) {
			ch := r.Ch
			if _, done := parts[ch.ID]; done {
				continue
			}
			parts[ch.ID] = split(ch)
		}
	}
	return parts
}

// partitionTouchedNew is partitionTouched for schemes whose split depends
// only on the channel's own spec: a committed channel's partition can
// never change under such a scheme, so only channels that carry no
// partition yet — the ones the current request just added — need a
// split, keeping incremental admission O(new channels) per request. It
// assumes every committed partition was produced by this scheme, which
// holds for all Request/Release traffic; experiments that mix ForceAdd
// with further Requests should run FullRecheck.
func partitionTouchedNew(st *State, touched []Link, split func(*Channel) Partition) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition)
	for _, l := range touched {
		for _, r := range st.channelsOn(l) {
			ch := r.Ch
			if ch.Part != (Partition{}) {
				continue
			}
			if _, done := parts[ch.ID]; done {
				continue
			}
			parts[ch.ID] = split(ch)
		}
	}
	return parts
}

// PartitionTouched implements IncrementalDPS. The symmetric split depends
// only on the spec, so beyond the request's own new channels nothing can
// move.
func (SDPS) PartitionTouched(st *State, touched []Link) map[ChannelID]Partition {
	return partitionTouchedNew(st, touched, func(ch *Channel) Partition {
		return clampPartition(ch.Spec, ch.Spec.D/2)
	})
}

// ADPS is the Asymmetric Deadline Partitioning Scheme (§18.4.2): the
// deadline budget is distributed to where it is most needed, in proportion
// to the link loads of the two links the channel traverses:
//
//	U_part,i = LL(Source_i) / (LL(Source_i) + LL(Destination_i))   (Eq. 18.16)
//	D_part,i = LL(Destination_i) / (LL(Source_i) + LL(Destination_i))
//
// where LL is the number of channels traversing a link. A bottlenecked
// uplink (many channels, as on a master node's uplink in master-slave
// traffic) therefore receives a larger share of every deadline that
// crosses it, relieving the bottleneck.
type ADPS struct{}

// Name implements DPS.
func (ADPS) Name() string { return "ADPS" }

// Partition implements DPS.
func (a ADPS) Partition(st *State) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = a.partitionOf(st, ch)
	}
	return parts
}

// partitionOf computes the load-weighted split of one channel (Eq. 18.16)
// — shared by the full and incremental paths so they agree bit for bit.
// For a multicast channel the downlink weight is the load of its most
// loaded sink downlink: the shared d_id must hold on every branch, so
// the bottleneck branch sets the asymmetry.
func (ADPS) partitionOf(st *State, ch *Channel) Partition {
	llUp := int64(st.LinkLoad(Uplink(ch.Spec.Src)))
	llDown := int64(st.LinkLoad(Downlink(ch.Spec.Dst)))
	for _, sink := range ch.Sinks {
		if ll := int64(st.LinkLoad(Downlink(sink))); ll > llDown {
			llDown = ll
		}
	}
	total := llUp + llDown
	var up int64
	if total == 0 {
		// Unreachable for channels inside st (their own traversal
		// counts), but keep a sane symmetric fallback.
		up = ch.Spec.D / 2
	} else {
		up = ch.Spec.D * llUp / total
	}
	return clampPartition(ch.Spec, up)
}

// PartitionTouched implements IncrementalDPS. A channel's split depends on
// the loads of its own two links only, so after a mutation that touched a
// link set, exactly the channels traversing those links can move.
func (a ADPS) PartitionTouched(st *State, touched []Link) map[ChannelID]Partition {
	return partitionTouched(st, touched, func(ch *Channel) Partition {
		return a.partitionOf(st, ch)
	})
}

// FixedDPS assigns every channel the same uplink fraction of its deadline.
// It is not part of the paper; it generalizes SDPS (fraction 0.5) and is
// used by ablation experiments to show that no static split matches ADPS
// on asymmetric workloads.
type FixedDPS struct {
	// UpNum/UpDen is the uplink fraction, e.g. 5/6.
	UpNum, UpDen int64
}

// Name implements DPS.
func (f FixedDPS) Name() string { return fmt.Sprintf("Fixed(%d/%d)", f.UpNum, f.UpDen) }

// Partition implements DPS.
func (f FixedDPS) Partition(st *State) map[ChannelID]Partition {
	parts := make(map[ChannelID]Partition, st.Len())
	for _, ch := range st.Channels() {
		up := ch.Spec.D * f.UpNum / f.UpDen
		parts[ch.ID] = clampPartition(ch.Spec, up)
	}
	return parts
}

// PartitionTouched implements IncrementalDPS: like SDPS the split depends
// only on the spec, so only the request's own new channels matter.
func (f FixedDPS) PartitionTouched(st *State, touched []Link) map[ChannelID]Partition {
	return partitionTouchedNew(st, touched, func(ch *Channel) Partition {
		return clampPartition(ch.Spec, ch.Spec.D*f.UpNum/f.UpDen)
	})
}

// Partition installation — writing the computed splits into the state,
// tracking which links changed, and rolling back rejected repartitions —
// is the shared kernel's job; see internal/admit.Engine.
