package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/edf"
)

func TestMulticastSpecValidate(t *testing.T) {
	ok := MulticastSpec{Src: 1, Sinks: []NodeID{2, 3}, C: 2, P: 20, D: 10}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec MulticastSpec
		want error
	}{
		{"no sinks", MulticastSpec{Src: 1, C: 2, P: 20, D: 10}, ErrNoSinks},
		{"self loop", MulticastSpec{Src: 1, Sinks: []NodeID{2, 1}, C: 2, P: 20, D: 10}, ErrSelfLoop},
		{"dup sink", MulticastSpec{Src: 1, Sinks: []NodeID{2, 3, 2}, C: 2, P: 20, D: 10}, ErrDuplicateSink},
		{"bad C", MulticastSpec{Src: 1, Sinks: []NodeID{2}, C: 0, P: 20, D: 10}, ErrNonPositiveC},
		{"bad P", MulticastSpec{Src: 1, Sinks: []NodeID{2}, C: 2, P: 0, D: 10}, ErrNonPositiveP},
		{"C > P", MulticastSpec{Src: 1, Sinks: []NodeID{2}, C: 21, P: 20, D: 50}, ErrCExceedsP},
		{"D < 2C", MulticastSpec{Src: 1, Sinks: []NodeID{2}, C: 3, P: 20, D: 5}, ErrDeadlineTooShort},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// starRef is a hand-built reference admission model for star multicast:
// per-link task multisets with sequential per-branch admission — add the
// uplink task once, then one downlink task per sink in order, testing
// EDF feasibility after each addition, and roll everything back on the
// first failure. RequestMulticast must make exactly the same decisions.
type starRef struct {
	tasks map[Link][]edf.Task
}

func newStarRef() *starRef { return &starRef{tasks: make(map[Link][]edf.Task)} }

// admitMulticast runs the sequential per-branch reference decision.
func (r *starRef) admitMulticast(spec MulticastSpec) (Partition, bool) {
	part := clampPartition(spec.ChannelSpec(), spec.D/2) // SDPS
	type add struct{ l Link }
	var adds []add
	addCheck := func(l Link, d int64) bool {
		r.tasks[l] = append(r.tasks[l], edf.Task{C: spec.C, P: spec.P, D: d})
		adds = append(adds, add{l})
		return edf.Test(r.tasks[l], edf.Options{}).OK()
	}
	ok := addCheck(Uplink(spec.Src), part.Up)
	if ok {
		for _, sink := range spec.Sinks {
			if !addCheck(Downlink(sink), part.Down) {
				ok = false
				break
			}
		}
	}
	if !ok {
		for i := len(adds) - 1; i >= 0; i-- {
			s := r.tasks[adds[i].l]
			r.tasks[adds[i].l] = s[:len(s)-1]
		}
		return Partition{}, false
	}
	return part, true
}

// linkFingerprint renders the admission-relevant state — link loads,
// per-link task sets, channel count and the next channel ID — so tests
// can assert bit-identity across a rejected request.
func linkFingerprint(st *State) string {
	var b strings.Builder
	fmt.Fprintf(&b, "len=%d next=%d\n", st.Len(), st.k.NextID())
	for _, l := range st.Links() {
		fmt.Fprintf(&b, "%v load=%d tasks=%v\n", l, st.LinkLoad(l), st.TasksOn(l))
	}
	return b.String()
}

// TestRequestMulticastDecisionEquivalence drives a seeded random mix of
// multicast requests through the controller under SDPS and checks every
// verdict (and every committed partition) against the sequential
// per-branch reference, plus bit-identity of the admission state across
// each rejection.
func TestRequestMulticastDecisionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewController(Config{DPS: SDPS{}})
	ref := newStarRef()
	const nodes = 6
	accepted, rejected := 0, 0
	for i := 0; i < 250; i++ {
		src := NodeID(rng.Intn(nodes) + 1)
		nSinks := rng.Intn(4) + 1
		var sinks []NodeID
		for _, p := range rng.Perm(nodes) {
			id := NodeID(p + 1)
			if id == src {
				continue
			}
			sinks = append(sinks, id)
			if len(sinks) == nSinks {
				break
			}
		}
		cap := int64(rng.Intn(3) + 1)
		period := int64(rng.Intn(30) + 10)
		d := 2*cap + int64(rng.Intn(20))
		spec := MulticastSpec{Src: src, Sinks: sinks, C: cap, P: period, D: d}

		before := linkFingerprint(c.State())
		statsBefore := c.Stats()
		ch, err := c.RequestMulticast(spec)
		wantPart, wantOK := ref.admitMulticast(spec)

		if wantOK != (err == nil) {
			t.Fatalf("request %d %v: controller says err=%v, reference says ok=%v", i, spec, err, wantOK)
		}
		if err == nil {
			if ch.Part != wantPart {
				t.Fatalf("request %d %v: partition %+v, reference %+v", i, spec, ch.Part, wantPart)
			}
			if got := ch.Sinks; len(got) != len(sinks) {
				t.Fatalf("request %d: channel records %d sinks, want %d", i, len(got), len(sinks))
			}
			accepted++
			continue
		}
		var rej *RejectionError
		if !errors.As(err, &rej) {
			t.Fatalf("request %d: rejection is %T, want *RejectionError", i, err)
		}
		if after := linkFingerprint(c.State()); after != before {
			t.Fatalf("request %d: rejected tree mutated admission state:\nbefore:\n%s\nafter:\n%s", i, before, after)
		}
		if st := c.Stats(); st.Accepted != statsBefore.Accepted || st.Released != statsBefore.Released {
			t.Fatalf("request %d: rejection moved accept/release counters: %+v -> %+v", i, statsBefore, st)
		}
		rejected++
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate run: accepted=%d rejected=%d — want both outcomes exercised", accepted, rejected)
	}
}

// TestRequestMulticastSharedUplinkBudget pins the tentpole property on
// the star: N sinks consume one uplink task, not N.
func TestRequestMulticastSharedUplinkBudget(t *testing.T) {
	c := NewController(Config{DPS: SDPS{}})
	spec := MulticastSpec{Src: 1, Sinks: []NodeID{2, 3, 4}, C: 2, P: 20, D: 12}
	ch, err := c.RequestMulticast(spec)
	if err != nil {
		t.Fatalf("RequestMulticast: %v", err)
	}
	st := c.State()
	if got := len(st.TasksOn(Uplink(1))); got != 1 {
		t.Fatalf("uplink carries %d tasks, want 1 (shared trunk budget)", got)
	}
	if got := st.LinkLoad(Uplink(1)); got != 1 {
		t.Fatalf("uplink load %d, want 1", got)
	}
	for _, sink := range spec.Sinks {
		tasks := st.TasksOn(Downlink(sink))
		if len(tasks) != 1 {
			t.Fatalf("downlink %d carries %d tasks, want 1", sink, len(tasks))
		}
		if tasks[0].D != ch.Part.Down {
			t.Fatalf("downlink %d budget %d, want %d", sink, tasks[0].D, ch.Part.Down)
		}
	}
	if err := c.Release(ch.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := st.Len(); got != 0 {
		t.Fatalf("after release %d channels remain", got)
	}
}

// TestRequestMulticastADPSBottleneck checks the ADPS generalization:
// the down budget is driven by the most loaded sink downlink.
func TestRequestMulticastADPSBottleneck(t *testing.T) {
	c := NewController(Config{DPS: ADPS{}})
	// Preload downlink 3 so it is the bottleneck branch.
	for i := 0; i < 3; i++ {
		if _, err := c.Request(ChannelSpec{Src: NodeID(10 + i), Dst: 3, C: 1, P: 40, D: 20}); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}
	mc, err := c.RequestMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2, 3}, C: 2, P: 40, D: 20})
	if err != nil {
		t.Fatalf("RequestMulticast: %v", err)
	}
	if !mc.Multicast() {
		t.Fatalf("channel does not report multicast")
	}
	// ADPS gives the loaded direction the larger share: LL(up)=1,
	// LL(bottleneck down)=4 — the down budget must exceed the up budget.
	if mc.Part.Down <= mc.Part.Up {
		t.Fatalf("ADPS ignored the bottleneck sink: partition %+v", mc.Part)
	}
	if mc.Part.Up+mc.Part.Down != 20 || mc.Part.Up < 2 || mc.Part.Down < 2 {
		t.Fatalf("invalid partition %+v", mc.Part)
	}
}

// TestMulticastSnapshotRoundTrip checks that multicast channels survive
// the snapshot/restore cycle with their sink sets intact.
func TestMulticastSnapshotRoundTrip(t *testing.T) {
	c := NewController(Config{DPS: SDPS{}})
	if _, err := c.RequestMulticast(MulticastSpec{Src: 1, Sinks: []NodeID{2, 3}, C: 2, P: 20, D: 12}); err != nil {
		t.Fatalf("RequestMulticast: %v", err)
	}
	if _, err := c.Request(ChannelSpec{Src: 4, Dst: 5, C: 1, P: 10, D: 6}); err != nil {
		t.Fatalf("Request: %v", err)
	}
	recs := c.Snapshot()
	c2 := NewController(Config{DPS: SDPS{}})
	if err := c2.Restore(recs); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := linkFingerprint(c2.State()), linkFingerprint(c.State()); got != want {
		t.Fatalf("restored state differs:\n%s\nvs\n%s", got, want)
	}
	ch := c2.State().Channels()[0]
	if !ch.Multicast() || len(ch.Sinks) != 2 {
		t.Fatalf("restored channel lost its sinks: %+v", ch)
	}
}
