package core

import (
	"bytes"
	"errors"
	"testing"
)

func loadedController(t *testing.T) *Controller {
	t.Helper()
	c := NewController(Config{DPS: ADPS{}})
	for _, s := range masterSlaveRequests(80) {
		_, _ = c.Request(s)
	}
	if c.Stats().Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	return c
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := loadedController(t)
	snap := c.Snapshot()
	if len(snap) != c.State().Len() {
		t.Fatalf("snapshot has %d records for %d channels", len(snap), c.State().Len())
	}

	restored := NewController(Config{DPS: ADPS{}})
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.State().Len() != c.State().Len() {
		t.Fatalf("restored %d channels, want %d", restored.State().Len(), c.State().Len())
	}
	for _, ch := range c.State().Channels() {
		got := restored.State().Get(ch.ID)
		if got == nil || got.Spec != ch.Spec || got.Part != ch.Part {
			t.Fatalf("channel %d mismatch: %v vs %v", ch.ID, got, ch)
		}
	}
	// The restored controller keeps admitting where the original would.
	_, errOrig := c.Request(paperSpec(9, 149))
	_, errRest := restored.Request(paperSpec(9, 149))
	if (errOrig == nil) != (errRest == nil) {
		t.Errorf("post-restore divergence: %v vs %v", errOrig, errRest)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := loadedController(t)
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != c.State().Len() {
		t.Fatalf("parsed %d records", len(records))
	}
	restored := NewController(Config{})
	if err := restored.Restore(records); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreValidation(t *testing.T) {
	good := ChannelRecord{ID: 1, Src: 1, Dst: 2, C: 3, P: 100, D: 40, Up: 20, Down: 20}
	cases := []struct {
		name    string
		records []ChannelRecord
	}{
		{"zero ID", []ChannelRecord{{ID: 0, Src: 1, Dst: 2, C: 3, P: 100, D: 40, Up: 20, Down: 20}}},
		{"duplicate ID", []ChannelRecord{good, good}},
		{"invalid spec", []ChannelRecord{{ID: 1, Src: 1, Dst: 1, C: 3, P: 100, D: 40, Up: 20, Down: 20}}},
		{"partition sum", []ChannelRecord{{ID: 1, Src: 1, Dst: 2, C: 3, P: 100, D: 40, Up: 20, Down: 19}}},
		{"partition below C", []ChannelRecord{{ID: 1, Src: 1, Dst: 2, C: 3, P: 100, D: 40, Up: 2, Down: 38}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewController(Config{})
			if err := c.Restore(tc.records); err == nil {
				t.Error("corrupt snapshot accepted")
			}
		})
	}
}

func TestRestoreRejectsInfeasibleSnapshot(t *testing.T) {
	// Seven paper channels on one uplink with d_iu = 20: h(20) = 21 > 20.
	var records []ChannelRecord
	for i := 0; i < 7; i++ {
		records = append(records, ChannelRecord{
			ID: ChannelID(i + 1), Src: 1, Dst: NodeID(100 + i),
			C: 3, P: 100, D: 40, Up: 20, Down: 20,
		})
	}
	c := NewController(Config{})
	err := c.Restore(records)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if c.State().Len() != 0 {
		t.Error("failed restore left partial state")
	}
}

func TestRestoreOnNonEmptyControllerFails(t *testing.T) {
	c := NewController(Config{})
	if _, err := c.Request(paperSpec(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(nil); err == nil {
		t.Error("Restore on loaded controller accepted")
	}
}

func TestRestorePreservesIDAllocation(t *testing.T) {
	c := NewController(Config{})
	if err := c.Restore([]ChannelRecord{
		{ID: 40, Src: 1, Dst: 2, C: 3, P: 100, D: 40, Up: 20, Down: 20},
	}); err != nil {
		t.Fatal(err)
	}
	ch, err := c.Request(paperSpec(3, 101))
	if err != nil {
		t.Fatal(err)
	}
	if ch.ID <= 40 {
		t.Errorf("new channel ID %d collides with restored ID space", ch.ID)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte(`{"not":"a list"}`))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte(`[{"id":1,"bogus":2}]`))); err == nil {
		t.Error("unknown field accepted")
	}
}
