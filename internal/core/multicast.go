package core

import (
	"errors"
	"fmt"
)

// Multicast validation errors.
var (
	// ErrNoSinks marks a multicast spec with an empty sink set.
	ErrNoSinks = errors.New("core: multicast spec needs at least one sink")
	// ErrDuplicateSink marks a multicast spec listing the same sink twice.
	ErrDuplicateSink = errors.New("core: multicast spec lists a sink twice")
)

// MulticastSpec is a request for a one-to-many RT channel: one source,
// N sink end-nodes, and the {P_i, C_i, d_i} triple shared by every
// branch. The paper's channels are strictly unicast; a multicast
// channel generalizes them by fanning the same periodic data out at the
// switch, so the source uplink carries the data once while every sink's
// downlink carries its own copy. The deadline is end-to-end for every
// sink: each sink must receive within D slots of release.
type MulticastSpec struct {
	Src   NodeID   // source end-node
	Sinks []NodeID // sink end-nodes (at least one, no duplicates)
	P     int64    // period of data
	C     int64    // amount of data per period (in maximal-sized frames)
	D     int64    // relative end-to-end deadline (per sink)

	// Priority orders channels for the survivability policy ladder; see
	// ChannelSpec.Priority. Defaults to 0.
	Priority int32
}

// Validate checks the spec against the paper's constraints, extended to
// the multicast shape: a non-empty duplicate-free sink set that does not
// include the source, and D >= 2C exactly as for unicast — on a star
// every branch is the same two-hop store-and-forward path.
func (s MulticastSpec) Validate() error {
	if len(s.Sinks) == 0 {
		return ErrNoSinks
	}
	seen := make(map[NodeID]bool, len(s.Sinks))
	for _, sink := range s.Sinks {
		if sink == s.Src {
			return fmt.Errorf("%w (node %d)", ErrSelfLoop, s.Src)
		}
		if seen[sink] {
			return fmt.Errorf("%w (node %d)", ErrDuplicateSink, sink)
		}
		seen[sink] = true
	}
	switch {
	case s.C <= 0:
		return fmt.Errorf("%w (C=%d)", ErrNonPositiveC, s.C)
	case s.P <= 0:
		return fmt.Errorf("%w (P=%d)", ErrNonPositiveP, s.P)
	case s.C > s.P:
		return fmt.Errorf("%w (C=%d > P=%d)", ErrCExceedsP, s.C, s.P)
	case s.D < 2*s.C:
		return fmt.Errorf("%w (D=%d < 2C=%d)", ErrDeadlineTooShort, s.D, 2*s.C)
	}
	return nil
}

// ChannelSpec projects the multicast spec onto the unicast shape the
// rest of the state machinery stores: Dst is the first sink (the full
// sink set lives on Channel.Sinks).
func (s MulticastSpec) ChannelSpec() ChannelSpec {
	return ChannelSpec{Src: s.Src, Dst: s.Sinks[0], C: s.C, P: s.P, D: s.D, Priority: s.Priority}
}

// String implements fmt.Stringer. Priority is shown only when set.
func (s MulticastSpec) String() string {
	if s.Priority != 0 {
		return fmt.Sprintf("mcast{%d→%v C=%d P=%d D=%d pri=%d}", s.Src, s.Sinks, s.C, s.P, s.D, s.Priority)
	}
	return fmt.Sprintf("mcast{%d→%v C=%d P=%d D=%d}", s.Src, s.Sinks, s.C, s.P, s.D)
}

// RequestMulticast runs the admission test for a new multicast RT
// channel and, if feasible, commits it. The whole sink tree — the
// source uplink plus one downlink per sink — is one admission object:
// the kernel builds a single tentative channel whose task appears on
// every traversed link, verifies every affected link, and on any
// rejection rolls the entire tree back, leaving the committed state
// bit-identical to before the request. The partition is shared: the
// uplink carries the data once with budget d_iu and every sink downlink
// schedules its copy with the same d_id = D - d_iu, so shared capacity
// is reserved once rather than once per sink.
func (c *Controller) RequestMulticast(spec MulticastSpec) (*Channel, error) {
	c.stats.Requests++
	if err := spec.Validate(); err != nil {
		c.stats.RejectedInvalid++
		return nil, err
	}
	chs, rej := c.eng.Admit(1, func(_ int, id ChannelID) *Channel {
		return &Channel{
			ID:    id,
			Spec:  spec.ChannelSpec(),
			Sinks: append([]NodeID(nil), spec.Sinks...),
		}
	}, c.schemes)
	if rej != nil {
		re := &RejectionError{Link: rej.Link, Result: rej.Result}
		c.noteRejection(re)
		return nil, re
	}
	c.stats.Accepted++
	return chs[0], nil
}
