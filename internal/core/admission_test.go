package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/edf"
)

// paperSpec is the Fig. 18.5 channel: C=3, P=100, d=40.
func paperSpec(src, dst NodeID) ChannelSpec {
	return ChannelSpec{Src: src, Dst: dst, C: 3, P: 100, D: 40}
}

// masterSlaveRequests yields n requests in the paper's master-slave
// pattern: 10 masters (nodes 0..9), 50 slaves (nodes 100..149), channel k
// from master k%10 to slave 100+k%50.
func masterSlaveRequests(n int) []ChannelSpec {
	specs := make([]ChannelSpec, n)
	for k := 0; k < n; k++ {
		specs[k] = paperSpec(NodeID(k%10), NodeID(100+k%50))
	}
	return specs
}

func acceptedCount(c *Controller, specs []ChannelSpec) int {
	accepted := 0
	for _, s := range specs {
		if _, err := c.Request(s); err == nil {
			accepted++
		}
	}
	return accepted
}

func TestAdmissionSDPSMasterCapacityIsSix(t *testing.T) {
	// Analytic anchor: with SDPS the master uplink tasks are
	// {C=3, P=100, D=20}; exactly 6 fit (h(20)=18<=20, busy period 18).
	c := NewController(Config{DPS: SDPS{}})
	for i := 0; i < 6; i++ {
		if _, err := c.Request(paperSpec(1, NodeID(100+i))); err != nil {
			t.Fatalf("channel %d rejected: %v", i, err)
		}
	}
	_, err := c.Request(paperSpec(1, 107))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("seventh channel: err = %v, want ErrInfeasible", err)
	}
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err %T is not a *RejectionError", err)
	}
	if rej.Link != Uplink(1) {
		t.Errorf("rejection on %v, want master uplink", rej.Link)
	}
	if rej.Result.Verdict != edf.InfeasibleDemand {
		t.Errorf("verdict = %v, want demand violation", rej.Result.Verdict)
	}
}

func TestAdmissionFig185Anchors(t *testing.T) {
	// The headline comparison: on the paper's 10-master/50-slave workload
	// SDPS saturates at 60 accepted channels while ADPS accepts
	// substantially more (the paper's figure shows ≈110).
	requests := masterSlaveRequests(200)

	sdps := acceptedCount(NewController(Config{DPS: SDPS{}}), requests)
	if sdps != 60 {
		t.Errorf("SDPS accepted %d of 200, want exactly 60 (6 per master)", sdps)
	}

	adps := acceptedCount(NewController(Config{DPS: ADPS{}}), requests)
	if adps <= sdps {
		t.Errorf("ADPS accepted %d, SDPS %d: ADPS must dominate", adps, sdps)
	}
	if adps < 90 {
		t.Errorf("ADPS accepted %d, want >= 90 (paper shows ≈110)", adps)
	}
	t.Logf("accepted of 200 requested: SDPS=%d ADPS=%d", sdps, adps)
}

func TestAdmissionBelowSaturationAllAccepted(t *testing.T) {
	for _, scheme := range []DPS{SDPS{}, ADPS{}} {
		c := NewController(Config{DPS: scheme})
		if got := acceptedCount(c, masterSlaveRequests(40)); got != 40 {
			t.Errorf("%s: accepted %d of 40 light requests, want all", scheme.Name(), got)
		}
	}
}

func TestAdmissionInvalidSpecCounted(t *testing.T) {
	c := NewController(Config{})
	_, err := c.Request(ChannelSpec{Src: 1, Dst: 1, C: 1, P: 10, D: 10})
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
	st := c.Stats()
	if st.Requests != 1 || st.RejectedInvalid != 1 || st.Accepted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmissionStateUntouchedOnReject(t *testing.T) {
	c := NewController(Config{DPS: SDPS{}})
	for i := 0; i < 6; i++ {
		if _, err := c.Request(paperSpec(1, NodeID(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	before := c.State().Len()
	if _, err := c.Request(paperSpec(1, 120)); err == nil {
		t.Fatal("expected rejection")
	}
	if c.State().Len() != before {
		t.Error("rejected request mutated committed state")
	}
	// The still-committed channels must keep valid partitions.
	for _, ch := range c.State().Channels() {
		if !ch.Part.ValidFor(ch.Spec) {
			t.Errorf("channel %v has invalid partition after rejection", ch)
		}
	}
}

func TestAdmissionReleaseFreesCapacity(t *testing.T) {
	c := NewController(Config{DPS: SDPS{}})
	ids := make([]ChannelID, 0, 6)
	for i := 0; i < 6; i++ {
		ch, err := c.Request(paperSpec(1, NodeID(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ch.ID)
	}
	if _, err := c.Request(paperSpec(1, 120)); err == nil {
		t.Fatal("link should be full")
	}
	if err := c.Release(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(paperSpec(1, 120)); err != nil {
		t.Errorf("request after release rejected: %v", err)
	}
	if err := c.Release(9999); err == nil {
		t.Error("release of unknown channel did not error")
	}
}

func TestAdmissionUtilizationRejection(t *testing.T) {
	// Implicit deadlines (D == P) trigger the Liu & Layland shortcut: the
	// only possible rejection is utilization.
	c := NewController(Config{DPS: SDPS{}})
	// D == P == 2C: each channel uses C/P = 1/2 of both links... with SDPS
	// the per-link task has D = P/2 < P though. Use ADPS-free direct
	// utilization overload instead: C=50, P=100, D=200 (D/2=100=P).
	spec := ChannelSpec{Src: 1, Dst: 2, C: 50, P: 100, D: 200}
	if _, err := c.Request(spec); err != nil {
		t.Fatalf("first half-utilization channel rejected: %v", err)
	}
	if _, err := c.Request(spec.withDst(3)); err != nil {
		t.Fatalf("second half-utilization channel rejected: %v", err)
	}
	_, err := c.Request(spec.withDst(4))
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Result.Verdict != edf.InfeasibleUtilization {
		t.Fatalf("third channel err = %v, want utilization rejection", err)
	}
	if got := c.Stats().RejectedUtilization; got != 1 {
		t.Errorf("RejectedUtilization = %d, want 1", got)
	}
}

func (s ChannelSpec) withDst(d NodeID) ChannelSpec { s.Dst = d; return s }

func TestAdmissionIncrementalMatchesFullRecheck(t *testing.T) {
	// The incremental changed-links optimization must agree decision-for-
	// decision with re-verifying every link.
	rng := rand.New(rand.NewSource(5))
	specs := make([]ChannelSpec, 300)
	for i := range specs {
		c := int64(rng.Intn(4) + 1)
		specs[i] = ChannelSpec{
			Src: NodeID(rng.Intn(6)),
			Dst: NodeID(10 + rng.Intn(12)),
			C:   c,
			P:   int64(rng.Intn(150) + 50),
			D:   2*c + int64(rng.Intn(60)),
		}
		if specs[i].P < specs[i].C {
			specs[i].P = specs[i].C
		}
	}
	for _, scheme := range []DPS{SDPS{}, ADPS{}} {
		inc := NewController(Config{DPS: scheme})
		full := NewController(Config{DPS: scheme, FullRecheck: true})
		for i, s := range specs {
			_, errInc := inc.Request(s)
			_, errFull := full.Request(s)
			if (errInc == nil) != (errFull == nil) {
				t.Fatalf("%s request %d: incremental err=%v, full err=%v", scheme.Name(), i, errInc, errFull)
			}
		}
		if inc.Stats().Accepted != full.Stats().Accepted {
			t.Fatalf("%s: incremental accepted %d, full %d", scheme.Name(), inc.Stats().Accepted, full.Stats().Accepted)
		}
		if inc.Stats().LinksChecked >= full.Stats().LinksChecked {
			t.Errorf("%s: incremental checked %d links, full %d — optimization had no effect",
				scheme.Name(), inc.Stats().LinksChecked, full.Stats().LinksChecked)
		}
	}
}

// TestAdmissionCommittedStateAlwaysFeasible is the safety property: after
// any sequence of requests and releases, every loaded link in the
// committed state passes the EDF feasibility test.
func TestAdmissionCommittedStateAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, scheme := range []DPS{SDPS{}, ADPS{}} {
		c := NewController(Config{DPS: scheme})
		var live []ChannelID
		for step := 0; step < 400; step++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(live))
				if err := c.Release(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				cc := int64(rng.Intn(4) + 1)
				spec := ChannelSpec{
					Src: NodeID(rng.Intn(5)),
					Dst: NodeID(8 + rng.Intn(10)),
					C:   cc,
					P:   int64(rng.Intn(120) + 40),
					D:   2*cc + int64(rng.Intn(50)),
				}
				if ch, err := c.Request(spec); err == nil {
					live = append(live, ch.ID)
				}
			}
			for _, l := range c.State().Links() {
				if res := edf.TestDefault(c.State().TasksOn(l)); !res.OK() {
					t.Fatalf("%s step %d: committed state infeasible on %v: %v", scheme.Name(), step, l, res)
				}
			}
		}
	}
}

func TestGuaranteedDelay(t *testing.T) {
	c := NewController(Config{Latency: 2})
	spec := paperSpec(1, 100)
	if got := c.GuaranteedDelay(spec); got != 42 {
		t.Errorf("GuaranteedDelay = %d, want D + T_latency = 42", got)
	}
}

func TestFallbackDPSRescuesRejections(t *testing.T) {
	// Primary SDPS saturates master uplinks at 6 channels; an ADPS
	// fallback must rescue requests SDPS alone rejects.
	requests := masterSlaveRequests(200)
	plain := acceptedCount(NewController(Config{DPS: SDPS{}}), requests)
	withFallback := acceptedCount(NewController(Config{
		DPS:       SDPS{},
		Fallbacks: []DPS{ADPS{}},
	}), requests)
	if plain != 60 {
		t.Fatalf("SDPS-only accepted %d, want 60", plain)
	}
	if withFallback <= plain {
		t.Errorf("fallback accepted %d, want > %d", withFallback, plain)
	}
}

// TestFallbackMonotonePerRequest pins the correct monotonicity property:
// from an identical committed state, any request the primary-only
// controller accepts is also accepted with fallbacks configured (the
// primary is tried first). Whole *sequences* are not monotone — an extra
// early acceptance can block several later requests — which is exactly
// why experiment E9 reports sequence-level numbers separately.
func TestFallbackMonotonePerRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rescues, agreements := 0, 0
	for trial := 0; trial < 20; trial++ {
		primary := NewController(Config{DPS: ADPS{}})
		search := NewController(Config{
			DPS:       ADPS{},
			Fallbacks: []DPS{SDPS{}, FixedDPS{UpNum: 2, UpDen: 3}, FixedDPS{UpNum: 1, UpDen: 3}},
		})
		for step := 0; step < 120; step++ {
			cc := int64(rng.Intn(4) + 1)
			spec := ChannelSpec{
				Src: NodeID(rng.Intn(5)),
				Dst: NodeID(10 + rng.Intn(10)),
				C:   cc,
				P:   int64(rng.Intn(150) + 50),
				D:   2*cc + int64(rng.Intn(50)),
			}
			_, errP := primary.Request(spec)
			_, errS := search.Request(spec)
			if errP == nil {
				agreements++
				if errS != nil {
					t.Fatalf("trial %d step %d: primary accepted %v but search rejected: %v",
						trial, step, spec, errS)
				}
				continue
			}
			if errS == nil {
				// A genuine rescue; states now diverge, end the trial.
				rescues++
				break
			}
		}
	}
	if agreements == 0 {
		t.Fatal("fuzz produced no accepted requests")
	}
	t.Logf("per-request agreement on %d accepts; %d fallback rescues observed", agreements, rescues)
}

func TestFallbackCommittedStateStaysFeasible(t *testing.T) {
	ctrl := NewController(Config{
		DPS:       SDPS{},
		Fallbacks: []DPS{ADPS{}, FixedDPS{UpNum: 5, UpDen: 6}},
	})
	for _, s := range masterSlaveRequests(200) {
		_, _ = ctrl.Request(s)
	}
	for _, l := range ctrl.State().Links() {
		if res := edf.TestDefault(ctrl.State().TasksOn(l)); !res.OK() {
			t.Fatalf("committed state infeasible on %v after fallback search: %v", l, res)
		}
	}
	for _, ch := range ctrl.State().Channels() {
		if !ch.Part.ValidFor(ch.Spec) {
			t.Fatalf("channel %v has invalid partition", ch)
		}
	}
}

func TestFallbackRejectionReportsPrimaryReason(t *testing.T) {
	ctrl := NewController(Config{DPS: SDPS{}, Fallbacks: []DPS{ADPS{}}})
	// Saturate utterly: C=50/P=100 channels, two fill each link direction.
	spec := ChannelSpec{Src: 1, Dst: 2, C: 50, P: 100, D: 200}
	for i := 0; i < 2; i++ {
		if _, err := ctrl.Request(spec.withDst(NodeID(2 + i))); err != nil {
			t.Fatal(err)
		}
	}
	_, err := ctrl.Request(spec.withDst(9))
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectionError after all schemes fail", err)
	}
}

func TestForceAddBypassesFeasibility(t *testing.T) {
	c := NewController(Config{DPS: SDPS{}})
	// Cram 10 channels onto one uplink; Request would stop at 6.
	for i := 0; i < 10; i++ {
		if _, err := c.ForceAdd(paperSpec(1, NodeID(100+i)), Partition{}); err != nil {
			t.Fatal(err)
		}
	}
	if c.State().Len() != 10 {
		t.Errorf("forced state has %d channels, want 10", c.State().Len())
	}
	// Invalid spec and invalid partition still rejected.
	if _, err := c.ForceAdd(ChannelSpec{Src: 1, Dst: 1, C: 1, P: 2, D: 2}, Partition{}); err == nil {
		t.Error("ForceAdd accepted an invalid spec")
	}
	if _, err := c.ForceAdd(paperSpec(1, 120), Partition{Up: 1, Down: 39}); err == nil {
		t.Error("ForceAdd accepted a partition violating condition (9)")
	}
}

func TestControllerDefaultsToSDPS(t *testing.T) {
	c := NewController(Config{})
	if c.DPS().Name() != "SDPS" {
		t.Errorf("default DPS = %q, want SDPS", c.DPS().Name())
	}
}
