package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestChannelSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ChannelSpec
		want error
	}{
		{"valid paper spec", ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}, nil},
		{"valid minimal deadline", ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 6}, nil},
		{"self loop", ChannelSpec{Src: 5, Dst: 5, C: 1, P: 10, D: 10}, ErrSelfLoop},
		{"zero C", ChannelSpec{Src: 1, Dst: 2, C: 0, P: 10, D: 10}, ErrNonPositiveC},
		{"negative C", ChannelSpec{Src: 1, Dst: 2, C: -2, P: 10, D: 10}, ErrNonPositiveC},
		{"zero P", ChannelSpec{Src: 1, Dst: 2, C: 1, P: 0, D: 10}, ErrNonPositiveP},
		{"C over P", ChannelSpec{Src: 1, Dst: 2, C: 11, P: 10, D: 30}, ErrCExceedsP},
		{"deadline below 2C", ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 5}, ErrDeadlineTooShort},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(_, %v)", err, tc.want)
			}
		})
	}
}

func TestPartitionValidFor(t *testing.T) {
	spec := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	cases := []struct {
		name string
		p    Partition
		want bool
	}{
		{"symmetric", Partition{20, 20}, true},
		{"asymmetric", Partition{33, 7}, true},
		{"extreme valid", Partition{37, 3}, true},
		{"sum mismatch", Partition{20, 19}, false},
		{"up below C", Partition{2, 38}, false},
		{"down below C", Partition{38, 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.ValidFor(spec); got != tc.want {
				t.Errorf("ValidFor = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPartitionUpFraction(t *testing.T) {
	if got := (Partition{20, 20}).UpFraction(); got != 0.5 {
		t.Errorf("UpFraction(20,20) = %v, want 0.5", got)
	}
	if got := (Partition{30, 10}).UpFraction(); got != 0.75 {
		t.Errorf("UpFraction(30,10) = %v, want 0.75", got)
	}
	if got := (Partition{}).UpFraction(); got != 0 {
		t.Errorf("UpFraction(zero) = %v, want 0", got)
	}
}

func TestSpecAndChannelString(t *testing.T) {
	spec := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	ch := &Channel{ID: 7, Spec: spec, Part: Partition{33, 7}}
	s := ch.String()
	for _, want := range []string{"RT#7", "1→2", "up=33", "down=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("Channel.String() = %q, missing %q", s, want)
		}
	}
}

func TestLinkHelpers(t *testing.T) {
	if Uplink(3) != (Link{Node: 3, Dir: Up}) {
		t.Error("Uplink mismatch")
	}
	if Downlink(3) != (Link{Node: 3, Dir: Down}) {
		t.Error("Downlink mismatch")
	}
	spec := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	links := LinksOf(spec)
	if links[0] != Uplink(1) || links[1] != Downlink(2) {
		t.Errorf("LinksOf = %v", links)
	}
	if got := Uplink(9).String(); !strings.Contains(got, "up") {
		t.Errorf("Link.String() = %q", got)
	}
	if got := Direction(9).String(); !strings.Contains(got, "dir(9)") {
		t.Errorf("unknown Direction.String() = %q", got)
	}
}

func TestClampPartitionProperties(t *testing.T) {
	// For any valid spec and any proposed up share, the clamped partition
	// must satisfy conditions (8) and (9).
	f := func(c, dExtra uint8, up int16) bool {
		spec := ChannelSpec{
			Src: 1, Dst: 2,
			C: int64(c%20) + 1,
		}
		spec.D = 2*spec.C + int64(dExtra)
		spec.P = spec.D + 100
		p := clampPartition(spec, int64(up))
		return p.ValidFor(spec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
