package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/edf"
)

// ChannelRecord is the serialized form of one established channel, used
// for switch-management snapshots (warm restart of the RT channel
// management software without renegotiating every channel).
type ChannelRecord struct {
	ID   ChannelID `json:"id"`
	Src  NodeID    `json:"src"`
	Dst  NodeID    `json:"dst"`
	C    int64     `json:"c"`
	P    int64     `json:"p"`
	D    int64     `json:"d"`
	Up   int64     `json:"up"`   // committed d_iu
	Down int64     `json:"down"` // committed d_id
	// Sinks is the full sink set of a multicast channel (Dst is then
	// Sinks[0]); absent for unicast channels.
	Sinks []NodeID `json:"sinks,omitempty"`
}

// Snapshot exports all established channels in establishment order.
func (c *Controller) Snapshot() []ChannelRecord {
	chs := c.eng.State().Channels()
	out := make([]ChannelRecord, 0, len(chs))
	for _, ch := range chs {
		out = append(out, ChannelRecord{
			ID: ch.ID, Src: ch.Spec.Src, Dst: ch.Spec.Dst,
			C: ch.Spec.C, P: ch.Spec.P, D: ch.Spec.D,
			Up: ch.Part.Up, Down: ch.Part.Down,
			Sinks: append([]NodeID(nil), ch.Sinks...),
		})
	}
	return out
}

// WriteSnapshot serializes the snapshot as indented JSON.
func (c *Controller) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot())
}

// Restore rebuilds the controller state from a snapshot. The controller
// must be empty. Every record is validated (spec constraints, partition
// conditions (8)/(9), unique IDs) and the assembled state must pass the
// per-link feasibility test — a corrupted or hand-edited snapshot cannot
// smuggle an unschedulable system past the switch.
func (c *Controller) Restore(records []ChannelRecord) error {
	if n := c.eng.State().Len(); n != 0 {
		return fmt.Errorf("core: Restore on a non-empty controller (%d channels)", n)
	}
	st := NewState()
	for i, r := range records {
		if r.ID == 0 {
			return fmt.Errorf("core: record %d: channel ID 0 is reserved", i)
		}
		if st.Get(r.ID) != nil {
			return fmt.Errorf("core: record %d: duplicate channel ID %d", i, r.ID)
		}
		spec := ChannelSpec{Src: r.Src, Dst: r.Dst, C: r.C, P: r.P, D: r.D}
		if len(r.Sinks) > 0 {
			ms := MulticastSpec{Src: r.Src, Sinks: r.Sinks, C: r.C, P: r.P, D: r.D}
			if err := ms.Validate(); err != nil {
				return fmt.Errorf("core: record %d: %w", i, err)
			}
			if r.Dst != r.Sinks[0] {
				return fmt.Errorf("core: record %d: multicast dst %d is not sinks[0]=%d", i, r.Dst, r.Sinks[0])
			}
		} else if err := spec.Validate(); err != nil {
			return fmt.Errorf("core: record %d: %w", i, err)
		}
		part := Partition{Up: r.Up, Down: r.Down}
		if !part.ValidFor(spec) {
			return fmt.Errorf("core: record %d: partition {%d %d} violates conditions (8)/(9)", i, r.Up, r.Down)
		}
		st.add(&Channel{ID: r.ID, Spec: spec, Part: part, Sinks: append([]NodeID(nil), r.Sinks...)})
		if r.ID >= st.k.NextID() {
			next := r.ID + 1
			if next == 0 {
				next = 1
			}
			st.k.SetNextID(next)
		}
	}
	for _, l := range st.Links() {
		res := edf.Test(st.TasksOn(l), c.cfg.Feasibility)
		if !res.OK() {
			return &RejectionError{Link: l, Result: res}
		}
	}
	c.eng.ReplaceState(st.k)
	return nil
}

// ReadSnapshot parses a JSON snapshot.
func ReadSnapshot(r io.Reader) ([]ChannelRecord, error) {
	var records []ChannelRecord
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&records); err != nil {
		return nil, fmt.Errorf("core: snapshot parse: %w", err)
	}
	return records, nil
}
