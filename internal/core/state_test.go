package core

import (
	"testing"
)

func testChannel(id ChannelID, src, dst NodeID) *Channel {
	return &Channel{
		ID:   id,
		Spec: ChannelSpec{Src: src, Dst: dst, C: 3, P: 100, D: 40},
		Part: Partition{20, 20},
	}
}

func TestStateAddRemove(t *testing.T) {
	st := NewState()
	if st.Len() != 0 {
		t.Fatal("new state not empty")
	}
	ch := testChannel(1, 1, 2)
	st.add(ch)
	if st.Len() != 1 || st.Get(1) != ch {
		t.Fatal("add/get mismatch")
	}
	if st.LinkLoad(Uplink(1)) != 1 || st.LinkLoad(Downlink(2)) != 1 {
		t.Error("link loads not updated on add")
	}
	if st.LinkLoad(Uplink(2)) != 0 || st.LinkLoad(Downlink(1)) != 0 {
		t.Error("unrelated link loads non-zero")
	}
	if !st.remove(1) {
		t.Fatal("remove returned false for existing channel")
	}
	if st.remove(1) {
		t.Fatal("remove returned true for missing channel")
	}
	if st.Len() != 0 || st.LinkLoad(Uplink(1)) != 0 {
		t.Error("state not empty after remove")
	}
}

func TestStateChannelsOrdered(t *testing.T) {
	st := NewState()
	for i := ChannelID(1); i <= 5; i++ {
		st.add(testChannel(i, NodeID(i), NodeID(i+10)))
	}
	st.remove(3)
	got := st.Channels()
	want := []ChannelID{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Channels() length %d, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("Channels() order %v, want IDs %v", got, want)
		}
	}
}

func TestStateAllocIDSkipsUsed(t *testing.T) {
	st := NewState()
	id1 := st.allocID()
	st.add(testChannel(id1, 1, 2))
	id2 := st.allocID()
	if id1 == id2 {
		t.Fatalf("allocID repeated %d", id1)
	}
	if id1 == 0 || id2 == 0 {
		t.Fatal("allocID returned reserved ID 0")
	}
}

func TestStateAllocIDWrapsAround(t *testing.T) {
	st := NewState()
	st.k.SetNextID(65535)
	st.add(testChannel(65535, 1, 2))
	id := st.allocID()
	if id == 0 || id == 65535 {
		t.Fatalf("allocID after wrap = %d", id)
	}
}

func TestStateDuplicateAddPanics(t *testing.T) {
	st := NewState()
	st.add(testChannel(1, 1, 2))
	defer func() {
		if recover() == nil {
			t.Error("duplicate add did not panic")
		}
	}()
	st.add(testChannel(1, 3, 4))
}

func TestStateLinksDeterministic(t *testing.T) {
	st := NewState()
	st.add(testChannel(1, 5, 2))
	st.add(testChannel(2, 2, 5))
	st.add(testChannel(3, 5, 9))
	links := st.Links()
	want := []Link{Uplink(2), Downlink(2), Uplink(5), Downlink(5), Downlink(9)}
	if len(links) != len(want) {
		t.Fatalf("Links() = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("Links() = %v, want %v", links, want)
		}
	}
}

func TestStateTasksOn(t *testing.T) {
	st := NewState()
	a := &Channel{ID: 1, Spec: ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}, Part: Partition{33, 7}}
	b := &Channel{ID: 2, Spec: ChannelSpec{Src: 1, Dst: 3, C: 2, P: 50, D: 20}, Part: Partition{10, 10}}
	c := &Channel{ID: 3, Spec: ChannelSpec{Src: 4, Dst: 1, C: 1, P: 10, D: 8}, Part: Partition{4, 4}}
	st.add(a)
	st.add(b)
	st.add(c)

	up1 := st.TasksOn(Uplink(1))
	if len(up1) != 2 {
		t.Fatalf("TasksOn(up1) = %v, want 2 tasks", up1)
	}
	if up1[0].D != 33 || up1[1].D != 10 {
		t.Errorf("uplink tasks use d_iu: got D=%d,%d want 33,10", up1[0].D, up1[1].D)
	}
	down1 := st.TasksOn(Downlink(1))
	if len(down1) != 1 || down1[0].D != 4 {
		t.Errorf("TasksOn(down1) = %v, want one task with D=4 (d_id)", down1)
	}
	if got := st.TasksOn(Uplink(99)); len(got) != 0 {
		t.Errorf("TasksOn(unused link) = %v, want empty", got)
	}
}

func TestStateCloneIndependence(t *testing.T) {
	st := NewState()
	st.add(testChannel(1, 1, 2))
	cp := st.clone()
	cp.add(testChannel(2, 3, 4))
	cp.Get(1).Part = Partition{30, 10}

	if st.Len() != 1 {
		t.Error("clone add leaked into original")
	}
	if st.Get(1).Part != (Partition{20, 20}) {
		t.Error("clone partition mutation leaked into original")
	}
	if st.LinkLoad(Uplink(3)) != 0 {
		t.Error("clone load leaked into original")
	}
	if cp.Len() != 2 || cp.LinkLoad(Uplink(3)) != 1 {
		t.Error("clone did not apply its own mutations")
	}
}

func TestStateRemoveCompactsOrder(t *testing.T) {
	st := NewState()
	for i := ChannelID(1); i <= 64; i++ {
		st.add(testChannel(i, NodeID(i), NodeID(i+100)))
	}
	for i := ChannelID(1); i <= 60; i++ {
		st.remove(i)
	}
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want 4", st.Len())
	}
	if st.k.OrderLen() > 2*st.Len()+8 {
		t.Errorf("order slice not compacted: len=%d for %d channels", st.k.OrderLen(), st.Len())
	}
	got := st.Channels()
	if len(got) != 4 || got[0].ID != 61 || got[3].ID != 64 {
		t.Errorf("Channels() after compaction = %v", got)
	}
}

func TestMeanLinkUtilization(t *testing.T) {
	st := NewState()
	if st.MeanLinkUtilization() != 0 {
		t.Error("empty state utilization != 0")
	}
	st.add(testChannel(1, 1, 2)) // C=3 P=100 on two links: U=0.03 each
	got := st.MeanLinkUtilization()
	if got < 0.029 || got > 0.031 {
		t.Errorf("MeanLinkUtilization = %v, want ~0.03", got)
	}
}
