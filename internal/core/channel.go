// Package core implements the primary contribution of Hoang & Jonsson
// (IPPS 2004): real-time channels over full-duplex switched Ethernet with
// EDF scheduling, switch-side admission control based on per-link EDF
// feasibility analysis, and deadline partitioning schemes (SDPS and ADPS)
// that split each channel's end-to-end deadline across its uplink and
// downlink.
//
// Terminology follows the paper: an RT channel i is a virtual connection
// {P_i, C_i, d_i} between two end-nodes, with all three quantities in
// maximal-sized-frame timeslots. A star topology is assumed: every channel
// traverses exactly two physical links, source→switch (uplink) and
// switch→destination (downlink); each full-duplex link direction is an
// independent pseudo-processor from the scheduling point of view (§18.3.2).
package core

import (
	"errors"
	"fmt"

	"repro/internal/admit"
)

// NodeID identifies an end-node in the star network.
type NodeID uint16

// ChannelID is the network-unique RT channel identifier assigned by the
// switch during establishment. The 16-bit width matches the RT channel ID
// field of the establishment frames and of the stamped IP destination
// address (§18.2.2). It aliases the admission kernel's ID type so the
// star and fabric controllers share one allocator implementation.
type ChannelID = admit.ID

// ChannelSpec is a request for an RT channel: the {P_i, C_i, d_i} triple of
// §18.2.2 plus the endpoints. All quantities are integer timeslots where
// one slot is the transmission time of one maximal-sized frame.
type ChannelSpec struct {
	Src NodeID // source end-node
	Dst NodeID // destination end-node
	P   int64  // period of data
	C   int64  // amount of data per period (in maximal-sized frames)
	D   int64  // relative end-to-end deadline

	// Priority orders channels for the survivability policy ladder:
	// after a link or switch failure, a preempting policy may evict
	// strictly lower-priority channels to make room for re-routed ones.
	// Higher is more important; 0 (the default) preserves the paper's
	// priority-free behavior. Priority never influences admission or EDF
	// scheduling on a healthy network.
	Priority int32
}

// Validation errors for channel specs.
var (
	ErrSelfLoop         = errors.New("core: source and destination are the same node")
	ErrNonPositiveC     = errors.New("core: capacity C must be positive")
	ErrNonPositiveP     = errors.New("core: period P must be positive")
	ErrCExceedsP        = errors.New("core: capacity C exceeds period P")
	ErrDeadlineTooShort = errors.New("core: deadline D below 2C (store-and-forward lower bound, condition (9))")
)

// Validate checks the spec against the paper's constraints. In particular
// D >= 2C must hold: the deadline is split across two links and each part
// must be at least the capacity (conditions (8) and (9), §18.4) — a channel
// with D < 2C "cannot, by definition, be EDF-feasible for a
// store-and-forward switch".
func (s ChannelSpec) Validate() error {
	switch {
	case s.Src == s.Dst:
		return fmt.Errorf("%w (node %d)", ErrSelfLoop, s.Src)
	case s.C <= 0:
		return fmt.Errorf("%w (C=%d)", ErrNonPositiveC, s.C)
	case s.P <= 0:
		return fmt.Errorf("%w (P=%d)", ErrNonPositiveP, s.P)
	case s.C > s.P:
		return fmt.Errorf("%w (C=%d > P=%d)", ErrCExceedsP, s.C, s.P)
	case s.D < 2*s.C:
		return fmt.Errorf("%w (D=%d < 2C=%d)", ErrDeadlineTooShort, s.D, 2*s.C)
	}
	return nil
}

// String implements fmt.Stringer. Priority is shown only when set, so
// priority-free specs render exactly as they always did.
func (s ChannelSpec) String() string {
	if s.Priority != 0 {
		return fmt.Sprintf("chan{%d→%d C=%d P=%d D=%d pri=%d}", s.Src, s.Dst, s.C, s.P, s.D, s.Priority)
	}
	return fmt.Sprintf("chan{%d→%d C=%d P=%d D=%d}", s.Src, s.Dst, s.C, s.P, s.D)
}

// Partition is one channel's deadline split {d_iu, d_id} produced by a
// deadline partitioning scheme. Invariant (condition (8)): Up + Down == D.
// Invariant (condition (9)): Up >= C and Down >= C.
type Partition struct {
	Up   int64 // d_iu: guaranteed worst-case delivery time on the uplink
	Down int64 // d_id: guaranteed worst-case delivery time on the downlink
}

// ValidFor reports whether the partition upholds conditions (8) and (9)
// for the given spec.
func (p Partition) ValidFor(s ChannelSpec) bool {
	return p.Up+p.Down == s.D && p.Up >= s.C && p.Down >= s.C
}

// UpFraction returns U_part,i = d_iu / d_i (Eq. 18.11), the normalized form
// the paper uses to describe a DPS as a vector field.
func (p Partition) UpFraction() float64 {
	total := p.Up + p.Down
	if total == 0 {
		return 0
	}
	return float64(p.Up) / float64(total)
}

// Channel is an established RT channel: the accepted spec, the network
// unique ID assigned by the switch, and the current deadline partition.
type Channel struct {
	ID   ChannelID
	Spec ChannelSpec
	Part Partition

	// Sinks is the full sink set of a multicast channel (Spec.Dst is then
	// Sinks[0]); nil for the paper's unicast channels. The slice is
	// immutable after establishment — clones share it.
	Sinks []NodeID

	// tag memoizes the task-set label "RT#<id>" — formatting it on every
	// per-link task rebuild showed up in admission profiles.
	tag string
}

// Multicast reports whether the channel is a one-to-many channel.
func (c *Channel) Multicast() bool { return len(c.Sinks) > 0 }

// taskTag returns the cached "RT#<id>" label for the channel's tasks.
func (c *Channel) taskTag() string {
	if c.tag == "" {
		c.tag = fmt.Sprintf("RT#%d", c.ID)
	}
	return c.tag
}

// String implements fmt.Stringer.
func (c *Channel) String() string {
	return fmt.Sprintf("RT#%d %v up=%d down=%d", c.ID, c.Spec, c.Part.Up, c.Part.Down)
}
