package core

import (
	"math/rand"
	"testing"
)

// buildState constructs a state holding the given specs with fresh IDs and
// placeholder partitions.
func buildState(specs []ChannelSpec) *State {
	st := NewState()
	for _, s := range specs {
		ch := &Channel{ID: st.allocID(), Spec: s, Part: Partition{Up: s.C, Down: s.D - s.C}}
		st.add(ch)
	}
	return st
}

func TestSDPSSplitsInHalf(t *testing.T) {
	st := buildState([]ChannelSpec{
		{Src: 1, Dst: 2, C: 3, P: 100, D: 40},
		{Src: 1, Dst: 3, C: 3, P: 100, D: 41}, // odd deadline
	})
	parts := SDPS{}.Partition(st)
	chs := st.Channels()
	if p := parts[chs[0].ID]; p != (Partition{20, 20}) {
		t.Errorf("even deadline: %+v, want {20 20}", p)
	}
	if p := parts[chs[1].ID]; p != (Partition{20, 21}) {
		t.Errorf("odd deadline: %+v, want {20 21} (floor to uplink)", p)
	}
}

func TestSDPSIsStateInvariant(t *testing.T) {
	// The paper: SDPS "doesn't take into consideration what the system
	// looks like" — the partition of a channel must not depend on what
	// else is in the state.
	spec := ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40}
	small := buildState([]ChannelSpec{spec})
	big := buildState([]ChannelSpec{spec,
		{Src: 1, Dst: 3, C: 3, P: 100, D: 40},
		{Src: 1, Dst: 4, C: 3, P: 100, D: 40},
		{Src: 5, Dst: 2, C: 3, P: 100, D: 40},
	})
	pSmall := SDPS{}.Partition(small)[small.Channels()[0].ID]
	pBig := SDPS{}.Partition(big)[big.Channels()[0].ID]
	if pSmall != pBig {
		t.Errorf("SDPS depends on state: %+v vs %+v", pSmall, pBig)
	}
}

func TestSDPSClampsTightDeadline(t *testing.T) {
	// D=7, C=3: naive halves {3,4}; clamp must keep both >= C.
	st := buildState([]ChannelSpec{{Src: 1, Dst: 2, C: 3, P: 100, D: 7}})
	p := SDPS{}.Partition(st)[st.Channels()[0].ID]
	if !p.ValidFor(st.Channels()[0].Spec) {
		t.Errorf("clamped SDPS partition invalid: %+v", p)
	}
}

func TestADPSFavorsLoadedUplink(t *testing.T) {
	// One master (node 1) sending to five slaves: the master uplink has
	// LL=5, each slave downlink LL=1, so U_part = 5/6 and d_iu = 33.
	specs := make([]ChannelSpec, 5)
	for i := range specs {
		specs[i] = ChannelSpec{Src: 1, Dst: NodeID(10 + i), C: 3, P: 100, D: 40}
	}
	st := buildState(specs)
	parts := ADPS{}.Partition(st)
	for _, ch := range st.Channels() {
		p := parts[ch.ID]
		if p != (Partition{33, 7}) {
			t.Errorf("ADPS partition for %v = %+v, want {33 7}", ch, p)
		}
	}
}

func TestADPSFavorsLoadedDownlink(t *testing.T) {
	// Five masters all sending to one slave: the slave downlink has LL=5,
	// each master uplink LL=1, so D_part = 5/6 and d_id = 34.
	specs := make([]ChannelSpec, 5)
	for i := range specs {
		specs[i] = ChannelSpec{Src: NodeID(i), Dst: 99, C: 3, P: 100, D: 40}
	}
	st := buildState(specs)
	parts := ADPS{}.Partition(st)
	for _, ch := range st.Channels() {
		p := parts[ch.ID]
		if p != (Partition{6, 34}) {
			t.Errorf("ADPS partition for %v = %+v, want {6 34}", ch, p)
		}
	}
}

func TestADPSSymmetricLoadGivesHalf(t *testing.T) {
	// Equal loads on both sides: LL(src)=LL(dst)=1 → d_iu = D/2.
	st := buildState([]ChannelSpec{{Src: 1, Dst: 2, C: 3, P: 100, D: 40}})
	p := ADPS{}.Partition(st)[st.Channels()[0].ID]
	if p != (Partition{20, 20}) {
		t.Errorf("ADPS balanced partition = %+v, want {20 20}", p)
	}
}

func TestADPSRespectsConditionNine(t *testing.T) {
	// Heavily loaded uplink, tight deadline: raw share would push the
	// downlink below C; clamp must hold d_id >= C.
	specs := make([]ChannelSpec, 20)
	for i := range specs {
		specs[i] = ChannelSpec{Src: 1, Dst: NodeID(10 + i), C: 3, P: 1000, D: 7}
	}
	st := buildState(specs)
	parts := ADPS{}.Partition(st)
	for _, ch := range st.Channels() {
		p := parts[ch.ID]
		if !p.ValidFor(ch.Spec) {
			t.Fatalf("ADPS violated (8)/(9): %+v for %v", p, ch)
		}
		if p.Down != 3 {
			t.Errorf("expected clamp to d_id=C=3, got %+v", p)
		}
	}
}

func TestFixedDPS(t *testing.T) {
	st := buildState([]ChannelSpec{{Src: 1, Dst: 2, C: 3, P: 100, D: 40}})
	f := FixedDPS{UpNum: 5, UpDen: 6}
	p := f.Partition(st)[st.Channels()[0].ID]
	if p != (Partition{33, 7}) {
		t.Errorf("FixedDPS(5/6) = %+v, want {33 7}", p)
	}
	if f.Name() != "Fixed(5/6)" {
		t.Errorf("Name() = %q", f.Name())
	}
}

func TestDPSNames(t *testing.T) {
	if (SDPS{}).Name() != "SDPS" || (ADPS{}).Name() != "ADPS" {
		t.Error("scheme names changed; reports depend on them")
	}
}

// TestDPSInvariantsRandom fuzzes both schemes over random states: every
// returned partition must satisfy conditions (8) and (9) and cover every
// channel.
func TestDPSInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	schemes := []DPS{SDPS{}, ADPS{}, FixedDPS{UpNum: 1, UpDen: 3}, FixedDPS{UpNum: 9, UpDen: 10}}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30) + 1
		specs := make([]ChannelSpec, 0, n)
		for i := 0; i < n; i++ {
			c := int64(rng.Intn(5) + 1)
			d := 2*c + int64(rng.Intn(50))
			src := NodeID(rng.Intn(8))
			dst := NodeID(rng.Intn(8) + 8)
			specs = append(specs, ChannelSpec{Src: src, Dst: dst, C: c, P: d + int64(rng.Intn(100)), D: d})
		}
		st := buildState(specs)
		for _, scheme := range schemes {
			parts := scheme.Partition(st)
			if len(parts) != st.Len() {
				t.Fatalf("%s returned %d partitions for %d channels", scheme.Name(), len(parts), st.Len())
			}
			for _, ch := range st.Channels() {
				p, ok := parts[ch.ID]
				if !ok {
					t.Fatalf("%s missing partition for %v", scheme.Name(), ch)
				}
				if !p.ValidFor(ch.Spec) {
					t.Fatalf("%s produced invalid partition %+v for %v", scheme.Name(), p, ch)
				}
			}
		}
	}
}

// TestADPSLocality: a channel's ADPS partition depends only on the loads
// of its own two links, so adding channels between unrelated nodes must
// not move it.
func TestADPSLocality(t *testing.T) {
	base := []ChannelSpec{{Src: 1, Dst: 2, C: 3, P: 100, D: 40}}
	small := buildState(base)
	pSmall := ADPS{}.Partition(small)[small.Channels()[0].ID]

	big := buildState(append(base,
		ChannelSpec{Src: 3, Dst: 4, C: 3, P: 100, D: 40},
		ChannelSpec{Src: 3, Dst: 5, C: 3, P: 100, D: 40},
		ChannelSpec{Src: 6, Dst: 4, C: 3, P: 100, D: 40},
	))
	pBig := ADPS{}.Partition(big)[big.Channels()[0].ID]
	if pSmall != pBig {
		t.Errorf("unrelated channels moved an ADPS partition: %+v vs %+v", pSmall, pBig)
	}

	// But a channel sharing the uplink must move it.
	shared := buildState(append(base, ChannelSpec{Src: 1, Dst: 5, C: 3, P: 100, D: 40}))
	pShared := ADPS{}.Partition(shared)[shared.Channels()[0].ID]
	if pShared == pSmall {
		t.Error("shared-uplink channel did not shift the ADPS partition")
	}
}

// Partition installation (changed-link tracking, missing/invalid
// partition panics) moved into the shared kernel; see the apply tests in
// internal/admit.
