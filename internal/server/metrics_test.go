package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/wire"
)

// TestMetricsExposition drives one admit, one reject and one release
// through the daemon and checks that GET /metrics exposes the event
// counters, the per-endpoint request series and the promoted
// admission-kernel counters — the same series the CI smoke job greps
// for under load.
func TestMetricsExposition(t *testing.T) {
	cl, _ := newTestServer(t, starNet(4))
	ctx := context.Background()

	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	// An undeliverable deadline rejects without touching feasibility.
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 30, P: 100, D: 4}); err == nil {
		t.Fatal("infeasible establish accepted")
	}
	if err := cl.Release(ctx, ch.ID); err != nil {
		t.Fatalf("release: %v", err)
	}

	m, err := cl.MetricsProm(ctx)
	if err != nil {
		t.Fatalf("MetricsProm: %v", err)
	}
	atLeast := map[string]float64{
		"rtether_admit_total":                                         1,
		"rtether_reject_total":                                        1,
		"rtether_release_total":                                       1,
		"rtether_admit_requests_total":                                2,
		"rtether_links_checked_total":                                 1,
		"rtether_flights_total":                                       1,
		"rtether_establishes_total":                                   2,
		"rtether_flight_merged_count":                                 1,
		`rtether_requests_total{endpoint="/v1/establish"}`:            2,
		`rtether_request_duration_ns_count{endpoint="/v1/establish"}`: 2,
		`rtether_requests_total{endpoint="/v1/release"}`:              1,
	}
	for k, want := range atLeast {
		got, ok := m[k]
		if !ok {
			t.Errorf("series %q missing from exposition", k)
			continue
		}
		if got < want {
			t.Errorf("%s = %v, want >= %v", k, got, want)
		}
	}
	// The verdict cache and sweep-time series must be present even when
	// zero — their absence means the promotion broke.
	for _, k := range []string{"rtether_verify_cache_hits_total", "rtether_sweep_seconds_total", "rtether_repartitions_total"} {
		if _, ok := m[k]; !ok {
			t.Errorf("series %q missing from exposition", k)
		}
	}
	if got := m["rtether_channels"]; got != 0 {
		t.Errorf("rtether_channels = %v after release, want 0", got)
	}
}

// TestSpansFlightRecorder checks that every coalesced flight lands in
// the /v1/spans ring with its verdict split and timing fields.
func TestSpansFlightRecorder(t *testing.T) {
	cl, _ := newTestServer(t, starNet(4))
	ctx := context.Background()
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}); err != nil {
		t.Fatalf("establish: %v", err)
	}
	rep, err := cl.Spans(ctx)
	if err != nil {
		t.Fatalf("Spans: %v", err)
	}
	if len(rep.Spans) < 1 {
		t.Fatalf("spans = %d, want >= 1", len(rep.Spans))
	}
	sp := rep.Spans[len(rep.Spans)-1]
	if sp.Flight < 1 || sp.Merged < 1 || sp.Accepted < 1 {
		t.Fatalf("span = %+v, want flight/merged/accepted >= 1", sp)
	}
	if sp.AdmitNs <= 0 || sp.StartUnixNano <= 0 {
		t.Fatalf("span = %+v, want positive admitNs and startUnixNano", sp)
	}
}

// TestHeartbeat checks the periodic watch-feed heartbeat: it must
// arrive without any admission traffic, carry the feed's sequence
// number and the current channel count, and be typed EventHeartbeat.
func TestHeartbeat(t *testing.T) {
	cl, _ := newTestServer(t, starNet(4), func(c *server.Config) {
		c.HeartbeatInterval = 5 * time.Millisecond
	})
	ctx := context.Background()
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}); err != nil {
		t.Fatalf("establish: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	w, err := cl.Watch(wctx)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer w.Close()
	for {
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("no heartbeat before timeout: %v", err)
		}
		if ev.Type != wire.EventHeartbeat {
			continue
		}
		if ev.Seq == 0 {
			t.Fatalf("heartbeat seq = 0, want the feed high-water mark")
		}
		if ev.Channels != 1 {
			t.Fatalf("heartbeat channels = %d, want 1", ev.Channels)
		}
		return
	}
}
