package server

import (
	"sync"
	"sync/atomic"

	"repro/rtether/wire"
)

// subBuffer is each /v1/watch subscriber's event buffer. A subscriber
// that falls this far behind the live feed is disconnected rather than
// allowed to backpressure the admission plane.
const subBuffer = 256

// subscriber is one connected watch stream.
type subscriber struct {
	events chan wire.WatchEvent
	// dropped closes when the hub evicted the subscriber for falling
	// behind; the handler terminates the response so the client can
	// reconnect and observe the sequence gap.
	dropped chan struct{}
}

// hub fans admission events out to the connected /v1/watch streams. It
// assigns the daemon-wide event sequence numbers; publishing never
// blocks on a slow subscriber.
type hub struct {
	mu     sync.Mutex
	seq    uint64
	subs   map[*subscriber]struct{}
	closed bool
	// evictions counts subscribers dropped for falling behind (not
	// clean unsubscribes or shutdown) — promoted into /metrics.
	evictions atomic.Int64
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a new stream; it returns nil after close.
func (h *hub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &subscriber{
		events:  make(chan wire.WatchEvent, subBuffer),
		dropped: make(chan struct{}),
	}
	h.subs[s] = struct{}{}
	return s
}

// unsubscribe removes a stream (idempotent).
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, s)
}

// publish stamps the event with the next sequence number and offers it
// to every subscriber; full subscribers are evicted.
func (h *hub) publish(ev wire.WatchEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	for s := range h.subs {
		select {
		case s.events <- ev:
		default:
			delete(h.subs, s)
			close(s.dropped)
			h.evictions.Add(1)
		}
	}
}

// lastSeq returns the sequence number of the most recently published
// event (0 before the first): the feed's high-water mark, reported by
// /v1/healthz.
func (h *hub) lastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// count returns the number of connected streams.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// close evicts every subscriber and refuses new ones.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.dropped)
	}
}
