package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/rtether"
	"repro/rtether/wire"
)

// ServeBinary accepts connections on l and serves the binary framing of
// rtether/wire (the latency-critical subset: establish, establishAll,
// multicast, release, reconfigure, stats) until the listener closes or
// the server is Closed. Each connection carries pipelined frames: every
// request frame is dispatched in its own goroutine — so concurrent
// frames from one connection coalesce into merged admission flights
// exactly like concurrent HTTP requests — and replies are written back
// whenever their verdict lands, matched by request ID, not in request
// order.
//
// Verdicts feed the same watch hub, log and counters as the HTTP
// handlers; the two listeners are one service on one network.
func (s *Server) ServeBinary(l net.Listener) error {
	s.binMu.Lock()
	if s.binClosed {
		s.binMu.Unlock()
		l.Close()
		return rtether.ErrClosed
	}
	s.binListeners = append(s.binListeners, l)
	s.binMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.binMu.Lock()
		if s.binClosed {
			s.binMu.Unlock()
			conn.Close()
			return nil
		}
		if s.binConns == nil {
			s.binConns = make(map[net.Conn]struct{})
		}
		s.binConns[conn] = struct{}{}
		s.binMu.Unlock()
		go s.serveBinaryConn(conn)
	}
}

// closeBinary tears down every binary listener and connection. Called
// from Close.
func (s *Server) closeBinary() {
	s.binMu.Lock()
	s.binClosed = true
	ls, conns := s.binListeners, s.binConns
	s.binListeners, s.binConns = nil, nil
	s.binMu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for c := range conns {
		c.Close()
	}
}

// dropBinaryConn unregisters a finished connection.
func (s *Server) dropBinaryConn(c net.Conn) {
	s.binMu.Lock()
	delete(s.binConns, c)
	s.binMu.Unlock()
}

// binConn serializes reply writes for one connection: request handlers
// run concurrently, so the write side is a mutex around one reused
// encode buffer.
type binConn struct {
	s    *Server
	conn net.Conn
	wmu  sync.Mutex
	wbuf []byte
}

// send encodes one reply frame under the write lock and ships it. A
// write failure kills the connection; the reader loop notices and winds
// the connection down.
func (bc *binConn) send(enc func(dst []byte) []byte) {
	bc.wmu.Lock()
	bc.wbuf = enc(bc.wbuf[:0])
	_, err := bc.conn.Write(bc.wbuf)
	bc.wmu.Unlock()
	if err != nil {
		bc.conn.Close()
	}
}

// sendErr ships an error envelope reply.
func (bc *binConn) sendErr(reqID uint32, we *wire.Error) {
	bc.send(func(dst []byte) []byte { return wire.AppendError(dst, reqID, we) })
}

// serveBinaryConn runs one connection's read loop. The per-connection
// context cancels when the connection goes away, so establishes queued
// in the coalescer for a vanished peer are released like abandoned HTTP
// requests.
func (s *Server) serveBinaryConn(conn net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		conn.Close()
		s.dropBinaryConn(conn)
		wg.Wait()
	}()
	bc := &binConn{s: s, conn: conn}
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		f, nbuf, err := wire.ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			// Framing is stateful: after a bad or truncated frame the byte
			// stream cannot be trusted, so the connection ends here. (A
			// clean peer close lands here as io.EOF.)
			return
		}
		// The payload aliases the read buffer, which the next ReadFrame
		// reuses — copy before handing it to a concurrent handler.
		payload := append([]byte(nil), f.Payload...)
		wg.Add(1)
		go func(t wire.MsgType, reqID uint32, p []byte) {
			defer wg.Done()
			bc.dispatch(ctx, t, reqID, p)
		}(f.Type, f.ReqID, payload)
	}
}

// badFrame builds the bad_request envelope for an undecodable payload.
func badFrame(t wire.MsgType, err error) *wire.Error {
	return &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("rtetherd: decoding %#x frame: %v", uint8(t), err)}
}

// dispatch decodes and executes one request frame, writing exactly one
// reply frame with the same request ID.
func (bc *binConn) dispatch(ctx context.Context, t wire.MsgType, reqID uint32, payload []byte) {
	s := bc.s
	if h := s.metrics.binDur[t]; h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start).Nanoseconds()) }()
	}
	switch t {
	case wire.MsgEstablish:
		spec, err := wire.DecodeEstablish(payload)
		if err != nil {
			bc.sendErr(reqID, badFrame(t, err))
			return
		}
		ch, err := s.coal.establish(ctx, spec.ChannelSpec())
		if err != nil {
			bc.sendErr(reqID, errorBody(err))
			return
		}
		rep := channelReply(ch)
		bc.send(func(dst []byte) []byte { return wire.AppendChannelReply(dst, reqID, rep) })

	case wire.MsgMulticast:
		spec, err := wire.DecodeMulticast(payload)
		if err != nil {
			bc.sendErr(reqID, badFrame(t, err))
			return
		}
		ch, err := s.coal.establishMulticast(ctx, spec.MulticastSpec())
		if err != nil {
			bc.sendErr(reqID, errorBody(err))
			return
		}
		rep := channelReply(ch)
		bc.send(func(dst []byte) []byte { return wire.AppendChannelReply(dst, reqID, rep) })

	case wire.MsgEstablishAll:
		wspecs, err := wire.DecodeEstablishAll(payload)
		if err != nil {
			bc.sendErr(reqID, badFrame(t, err))
			return
		}
		specs := make([]rtether.ChannelSpec, len(wspecs))
		for i, sp := range wspecs {
			specs[i] = sp.ChannelSpec()
		}
		rep, we := s.doEstablishAll(specs)
		if we != nil {
			bc.sendErr(reqID, we)
			return
		}
		bc.send(func(dst []byte) []byte { return wire.AppendChannelList(dst, reqID, rep) })

	case wire.MsgRelease:
		id, err := wire.DecodeRelease(payload)
		if err != nil {
			bc.sendErr(reqID, badFrame(t, err))
			return
		}
		if we := s.doRelease(id); we != nil {
			bc.sendErr(reqID, we)
			return
		}
		bc.send(func(dst []byte) []byte { return wire.AppendReleased(dst, reqID) })

	case wire.MsgReconfigure:
		req, err := wire.DecodeReconfigure(payload)
		if err != nil {
			bc.sendErr(reqID, badFrame(t, err))
			return
		}
		rep, we := s.doReconfigure(ctx, req)
		if we != nil {
			bc.sendErr(reqID, we)
			return
		}
		bc.send(func(dst []byte) []byte { return wire.AppendChannelReply(dst, reqID, rep) })

	case wire.MsgStats:
		rep := s.statsReply()
		bc.send(func(dst []byte) []byte { return wire.AppendStatsReply(dst, reqID, rep) })

	default:
		bc.sendErr(reqID, &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("rtetherd: unknown message type %#x", uint8(t))})
	}
}
