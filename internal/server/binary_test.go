package server_test

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/client"
	"repro/rtether/wire"
)

// newBinaryTestServer boots a Server with both listeners and returns a
// binary-transport client for it.
func newBinaryTestServer(t *testing.T, rtnet *rtether.Network) (*client.Client, *server.Server) {
	t.Helper()
	srv := server.New(server.Config{Network: rtnet})
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ServeBinary(ln)
	}()
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		<-done
		_ = rtnet.Close()
	})
	cl := client.New(ts.URL, client.WithTransport(client.TransportBinary), client.WithBinaryAddr(ln.Addr().String()))
	t.Cleanup(cl.CloseIdleConnections)
	return cl, srv
}

// TestBinaryEstablishReleaseRoundTrip drives the full establish →
// stats → release lifecycle over the binary transport.
func TestBinaryEstablishReleaseRoundTrip(t *testing.T) {
	cl, _ := newBinaryTestServer(t, starNet(4))
	ctx := context.Background()

	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	if ch.ID == 0 || len(ch.Budgets) != 2 || ch.Budgets[0]+ch.Budgets[1] != 40 {
		t.Fatalf("bad reply: %+v", ch)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Admission.Accepted != 1 || st.Server.Channels != 1 {
		t.Fatalf("stats = %+v", st)
	}

	if err := cl.Release(ctx, ch.ID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := cl.Release(ctx, ch.ID); !errors.Is(err, client.ErrUnknownChannel) {
		t.Fatalf("double release = %v, want ErrUnknownChannel", err)
	}
}

// TestBinaryTypedErrorFidelity pins that a feasibility rejection over
// the binary transport reconstructs the exact same typed
// *rtether.AdmissionError as the JSON transport (and as the in-process
// API): errors.Is/errors.As work identically.
func TestBinaryTypedErrorFidelity(t *testing.T) {
	rtnet := starNet(4)
	srv := server.New(server.Config{Network: rtnet})
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeBinary(ln) }()
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		_ = rtnet.Close()
	})
	binCl := client.New(ts.URL, client.WithTransport(client.TransportBinary), client.WithBinaryAddr(ln.Addr().String()))
	jsonCl := client.New(ts.URL)
	t.Cleanup(binCl.CloseIdleConnections)
	t.Cleanup(jsonCl.CloseIdleConnections)
	ctx := context.Background()

	// Saturate node 1's uplink, then ask for one channel too many on each
	// transport: the two rejections must be identical, field for field.
	fill := rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 2, D: 2}
	if _, err := binCl.Establish(ctx, fill); err != nil {
		t.Fatalf("fill: %v", err)
	}
	over := rtether.ChannelSpec{Src: 1, Dst: 3, C: 1, P: 2, D: 2}

	_, binErr := binCl.Establish(ctx, over)
	_, jsonErr := jsonCl.Establish(ctx, over)
	if binErr == nil || jsonErr == nil {
		t.Fatalf("overload accepted: bin=%v json=%v", binErr, jsonErr)
	}
	var binAE, jsonAE *rtether.AdmissionError
	if !errors.As(binErr, &binAE) {
		t.Fatalf("binary rejection is not a *rtether.AdmissionError: %v", binErr)
	}
	if !errors.As(jsonErr, &jsonAE) {
		t.Fatalf("json rejection is not a *rtether.AdmissionError: %v", jsonErr)
	}
	if *binAE != *jsonAE {
		t.Errorf("transports disagree on the rejection:\n bin  %+v\n json %+v", binAE, jsonAE)
	}
	if binErr.Error() != jsonErr.Error() {
		t.Errorf("rejection strings diverge:\n bin  %s\n json %s", binErr, jsonErr)
	}

	// Invalid spec and unknown channel map to the same typed errors too.
	if _, err := binCl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 1, C: 1, P: 10, D: 5}); err == nil {
		t.Error("self-loop accepted over binary")
	}
	if err := binCl.Release(ctx, 9999); !errors.Is(err, client.ErrUnknownChannel) {
		t.Errorf("unknown release = %v, want ErrUnknownChannel", err)
	}
}

// TestBinaryEstablishAllAndMulticast covers the batch and multicast
// frames end to end.
func TestBinaryEstablishAllAndMulticast(t *testing.T) {
	cl, _ := newBinaryTestServer(t, starNet(6))
	ctx := context.Background()

	specs := []rtether.ChannelSpec{
		{Src: 1, Dst: 2, C: 1, P: 100, D: 40},
		{Src: 2, Dst: 3, C: 1, P: 100, D: 40},
		{Src: 3, Dst: 4, C: 1, P: 100, D: 40},
	}
	chs, err := cl.EstablishAll(ctx, specs)
	if err != nil {
		t.Fatalf("establishAll: %v", err)
	}
	if len(chs) != len(specs) {
		t.Fatalf("got %d channels for %d specs", len(chs), len(specs))
	}

	mch, err := cl.EstablishMulticast(ctx, rtether.MulticastSpec{Src: 5, Sinks: []rtether.NodeID{1, 2, 3}, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatalf("multicast: %v", err)
	}
	if mch.ID == 0 {
		t.Fatalf("bad multicast reply: %+v", mch)
	}

	// Reconfigure over binary: release + re-establish semantics.
	rch, err := cl.Reconfigure(ctx, chs[0].ID, 0, 0, 60)
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if rch.GuaranteedDelay != 60 {
		t.Errorf("reconfigure delay = %d, want 60", rch.GuaranteedDelay)
	}
}

// TestBinaryPipelinedConcurrency fans 32 concurrent establishes through
// the binary transport: pipelining must present the coalescer with real
// concurrency (merged flights), and every caller still gets its own
// verdict.
func TestBinaryPipelinedConcurrency(t *testing.T) {
	cl, _ := newBinaryTestServer(t, starNet(66))
	ctx := context.Background()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	ids := make([]rtether.ChannelID, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, err := cl.Establish(ctx, rtether.ChannelSpec{
				Src: rtether.NodeID(1 + i), Dst: rtether.NodeID(33 + i), C: 1, P: 100, D: 40,
			})
			errs[i], ids[i] = err, ch.ID
		}(i)
	}
	wg.Wait()
	seen := map[rtether.ChannelID]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("establish %d: %v", i, errs[i])
		}
		if seen[ids[i]] {
			t.Fatalf("duplicate channel ID %d", ids[i])
		}
		seen[ids[i]] = true
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Accepted != n {
		t.Fatalf("accepted = %d, want %d", st.Admission.Accepted, n)
	}
	if st.Server.Flights > st.Server.Establishes {
		t.Fatalf("flights %d > establishes %d", st.Server.Flights, st.Server.Establishes)
	}
}

// TestBinaryVerdictsReachWatchFeed proves the two listeners are one
// service: verdicts decided over the binary transport appear on the
// HTTP watch stream.
func TestBinaryVerdictsReachWatchFeed(t *testing.T) {
	cl, _ := newBinaryTestServer(t, starNet(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	w, err := cl.Watch(ctx) // watch always travels over HTTP
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != wire.EventAdmit || ev.ID != uint32(ch.ID) {
		t.Fatalf("watch event = %+v, want admit of %d", ev, ch.ID)
	}
}

// TestBinaryServerCloseFailsCalls pins shutdown behavior: after Close,
// binary calls fail with rtether.ErrClosed semantics (via the closed
// coalescer) or a transport error — never hang.
func TestBinaryServerCloseFailsCalls(t *testing.T) {
	rtnet := starNet(4)
	srv := server.New(server.Config{Network: rtnet})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.ServeBinary(ln) }()
	cl := client.New("127.0.0.1:0", client.WithTransport(client.TransportBinary), client.WithBinaryAddr(ln.Addr().String()))
	t.Cleanup(func() { cl.CloseIdleConnections(); _ = rtnet.Close() })

	ctx := context.Background()
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}); err != nil {
		t.Fatalf("pre-close establish: %v", err)
	}
	srv.Close()
	<-done // ServeBinary returns once Close tears the listener down
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 3, C: 1, P: 100, D: 40}); err == nil {
		t.Fatal("establish after Close succeeded")
	}
}
