package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/client"
	"repro/rtether/wire"
)

// newTestServer boots a Server over net behind an httptest listener and
// returns a typed client for it.
func newTestServer(t *testing.T, net *rtether.Network, cfg ...func(*server.Config)) (*client.Client, *server.Server) {
	t.Helper()
	sc := server.Config{Network: net}
	for _, f := range cfg {
		f(&sc)
	}
	srv := server.New(sc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		_ = net.Close()
	})
	return client.New(ts.URL), srv
}

// starNet builds a star with nodes 1..n.
func starNet(n int) *rtether.Network {
	net := rtether.New()
	for i := 1; i <= n; i++ {
		net.MustAddNode(rtether.NodeID(i))
	}
	return net
}

func TestEstablishReleaseRoundTrip(t *testing.T) {
	cl, _ := newTestServer(t, starNet(4))
	ctx := context.Background()

	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	if ch.ID == 0 || len(ch.Budgets) != 2 || ch.Budgets[0]+ch.Budgets[1] != 40 {
		t.Fatalf("bad reply: %+v", ch)
	}
	if ch.GuaranteedDelay != 40 {
		t.Errorf("GuaranteedDelay = %d, want 40", ch.GuaranteedDelay)
	}

	infos, err := cl.Channels(ctx)
	if err != nil || len(infos) != 1 || infos[0].ID != uint32(ch.ID) {
		t.Fatalf("channels = %+v, %v", infos, err)
	}
	m, err := cl.Metrics(ctx, ch.ID)
	if err != nil || m.Delivered != 0 {
		t.Fatalf("metrics = %+v, %v", m, err)
	}

	if err := cl.Release(ctx, ch.ID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := cl.Release(ctx, ch.ID); !errors.Is(err, client.ErrUnknownChannel) {
		t.Fatalf("double release = %v, want ErrUnknownChannel", err)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Accepted != 1 || st.Admission.Released != 1 || st.Server.Establishes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAdmissionErrorWireRoundTrip proves every *AdmissionError field
// survives the encode/decode round trip: the remote rejection must
// equal the in-process rejection of an identical twin network, field
// for field.
func TestAdmissionErrorWireRoundTrip(t *testing.T) {
	load := func(n *rtether.Network) error {
		// Saturate node 2's downlink (two C=3/D_down=6 tasks fill t=6
		// exactly), so the next channel to node 2 overflows it.
		for _, src := range []rtether.NodeID{1, 4} {
			if _, err := n.EstablishAll([]rtether.ChannelSpec{{Src: src, Dst: 2, C: 3, P: 10, D: 12}}); err != nil {
				return err
			}
		}
		return nil
	}
	overflow := rtether.ChannelSpec{Src: 3, Dst: 2, C: 3, P: 10, D: 12}

	local := starNet(4)
	defer local.Close()
	if err := load(local); err != nil {
		t.Fatal(err)
	}
	_, wantErr := local.EstablishAll([]rtether.ChannelSpec{overflow})
	var want *rtether.AdmissionError
	if !errors.As(wantErr, &want) {
		t.Fatalf("local overflow did not reject with AdmissionError: %v", wantErr)
	}

	remote := starNet(4)
	cl, _ := newTestServer(t, remote)
	if err := load(remote); err != nil {
		t.Fatal(err)
	}
	_, gotErr := cl.Establish(context.Background(), overflow)
	var got *rtether.AdmissionError
	if !errors.As(gotErr, &got) {
		t.Fatalf("remote overflow = %v, want AdmissionError", gotErr)
	}
	if !errors.Is(gotErr, rtether.ErrInfeasible) {
		t.Error("remote AdmissionError does not unwrap to ErrInfeasible")
	}
	if *got != *want {
		t.Fatalf("AdmissionError did not round-trip:\n  remote %+v\n  local  %+v", got, want)
	}
}

// TestCoalescingManyConcurrentClients is the server half of the PR
// acceptance criterion: 1000 concurrent client establishes merge into
// few kernel passes — at most 1/10th the repartition passes sequential
// submission would cost — with every client accepted.
func TestCoalescingManyConcurrentClients(t *testing.T) {
	const n = 1000
	specs := make([]rtether.ChannelSpec, n)
	for i := range specs {
		specs[i] = rtether.ChannelSpec{
			Src: rtether.NodeID(1 + i%10), Dst: rtether.NodeID(11 + i%10),
			C: 1, P: 800, D: int64(200 + i%100),
		}
	}
	// A small coalescing window absorbs the arrival jitter real HTTP
	// transport adds on top of the in-flight merging.
	cl, _ := newTestServer(t, starNet(20), func(c *server.Config) {
		c.CoalesceWindow = 5 * time.Millisecond
	})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Establish(ctx, specs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d rejected: %v", i, err)
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Accepted != n {
		t.Fatalf("accepted %d, want %d", st.Admission.Accepted, n)
	}
	// Sequential submission costs one repartition pass per request.
	if st.Admission.Repartitions*10 > n {
		t.Fatalf("1000 concurrent establishes cost %d repartition passes, want <= %d (1/10th of sequential)",
			st.Admission.Repartitions, n/10)
	}
	if st.Server.Flights >= st.Server.Establishes/10 {
		t.Errorf("coalescer merged %d establishes into %d flights — expected at least 10x merging",
			st.Server.Establishes, st.Server.Flights)
	}
	t.Logf("merged %d establishes into %d flights (max merged %d), %d repartition passes",
		st.Server.Establishes, st.Server.Flights, st.Server.MaxMerged, st.Admission.Repartitions)
}

// TestConcurrentMixedOps hammers the server with mixed EstablishAll,
// coalesced Establish, Release, Report-style reads and stats from many
// goroutines; under -race this pins the whole server path.
func TestConcurrentMixedOps(t *testing.T) {
	cl, _ := newTestServer(t, starNet(12))
	ctx := context.Background()
	const goroutines = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rtether.NodeID(1 + g%6)
			dst := rtether.NodeID(7 + g%6)
			for i := 0; i < 25; i++ {
				spec := rtether.ChannelSpec{Src: src, Dst: dst, C: 1, P: 500, D: int64(100 + i)}
				var ids []rtether.ChannelID
				if i%2 == 0 {
					ch, err := cl.Establish(ctx, spec)
					if err != nil {
						t.Errorf("g%d establish: %v", g, err)
						continue
					}
					ids = []rtether.ChannelID{ch.ID}
				} else {
					chs, err := cl.EstablishAll(ctx, []rtether.ChannelSpec{spec, {Src: src, Dst: dst, C: 1, P: 600, D: int64(120 + i)}})
					if err != nil {
						t.Errorf("g%d establishAll: %v", g, err)
						continue
					}
					for _, ch := range chs {
						ids = append(ids, ch.ID)
					}
				}
				if _, err := cl.Channels(ctx); err != nil {
					t.Errorf("g%d channels: %v", g, err)
				}
				if _, err := cl.Stats(ctx); err != nil {
					t.Errorf("g%d stats: %v", g, err)
				}
				if _, err := cl.Metrics(ctx, ids[0]); err != nil {
					t.Errorf("g%d metrics: %v", g, err)
				}
				for _, id := range ids {
					if err := cl.Release(ctx, id); err != nil {
						t.Errorf("g%d release: %v", g, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Accepted != st.Admission.Released {
		t.Errorf("accepted %d != released %d after drain", st.Admission.Accepted, st.Admission.Released)
	}
	if st.Server.Channels != 0 {
		t.Errorf("%d channels left established", st.Server.Channels)
	}
}

// TestWatchFeed subscribes to /v1/watch and checks that admissions,
// rejections (with diagnostics) and releases stream in order with
// increasing sequence numbers.
func TestWatchFeed(t *testing.T) {
	cl, _ := newTestServer(t, starNet(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	w, err := cl.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 10, D: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate then reject.
	for {
		if _, err = cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 10, D: 12}); err != nil {
			break
		}
	}
	if err := cl.Release(ctx, ch.ID); err != nil {
		t.Fatal(err)
	}

	var events []wire.WatchEvent
	deadline := time.After(5 * time.Second)
	for len(events) == 0 || events[len(events)-1].Type != wire.EventRelease {
		type res struct {
			ev  wire.WatchEvent
			err error
		}
		got := make(chan res, 1)
		go func() {
			ev, err := w.Next()
			got <- res{ev, err}
		}()
		select {
		case r := <-got:
			if r.err != nil {
				t.Fatalf("watch ended early: %v (events so far: %+v)", r.err, events)
			}
			events = append(events, r.ev)
		case <-deadline:
			t.Fatalf("timed out; events so far: %+v", events)
		}
	}

	var admits, rejects, releases int
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Errorf("sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case wire.EventAdmit:
			admits++
			if ev.Spec == nil || len(ev.Budgets) == 0 || ev.ID == 0 {
				t.Errorf("admit event incomplete: %+v", ev)
			}
		case wire.EventReject:
			rejects++
			if ev.Error == nil || ev.Error.Code != wire.CodeInfeasible || ev.Error.Admission == nil {
				t.Errorf("reject event lacks diagnostics: %+v", ev)
			} else if ev.Error.Admission.Reason == "" || ev.Error.Admission.Link == "" {
				t.Errorf("reject diagnostics incomplete: %+v", ev.Error.Admission)
			}
		case wire.EventRelease:
			releases++
			if ev.ID != uint32(ch.ID) {
				t.Errorf("release names channel %d, want %d", ev.ID, ch.ID)
			}
		}
	}
	if admits == 0 || rejects == 0 || releases != 1 {
		t.Errorf("event mix: %d admits, %d rejects, %d releases", admits, rejects, releases)
	}
}

// TestErrorMapping pins the HTTP status and code for each error class.
func TestErrorMapping(t *testing.T) {
	net := starNet(2)
	srv := server.New(server.Config{Network: net})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); _ = net.Close() })

	post := func(path, body string) (int, wire.Envelope) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env wire.Envelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env
	}

	if code, env := post("/v1/establish", "{nope"); code != http.StatusBadRequest || env.Err == nil || env.Err.Code != wire.CodeBadRequest {
		t.Errorf("bad JSON → %d %+v", code, env.Err)
	}
	if code, env := post("/v1/establish", `{"spec":{"src":1,"dst":1,"c":1,"p":10,"d":10}}`); code != http.StatusUnprocessableEntity || env.Err.Code != wire.CodeInvalidSpec {
		t.Errorf("self-loop → %d %+v", code, env.Err)
	}
	if code, env := post("/v1/establish", `{"spec":{"src":1,"dst":99,"c":1,"p":10,"d":10}}`); code != http.StatusUnprocessableEntity || env.Err.Code != wire.CodeNoRoute {
		t.Errorf("unknown node → %d %+v", code, env.Err)
	}
	if code, env := post("/v1/release", `{"id":404}`); code != http.StatusNotFound || env.Err.Code != wire.CodeUnknownChannel {
		t.Errorf("unknown channel → %d %+v", code, env.Err)
	}

	// A closed server answers establishes with the closed error.
	srv.Close()
	if code, env := post("/v1/establish", `{"spec":{"src":1,"dst":2,"c":1,"p":10,"d":10}}`); code != http.StatusServiceUnavailable || env.Err.Code != wire.CodeClosed {
		t.Errorf("closed server → %d %+v", code, env.Err)
	}
}

// TestReconfigure exercises the release-and-reestablish path.
func TestReconfigure(t *testing.T) {
	cl, _ := newTestServer(t, starNet(4))
	ctx := context.Background()
	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	nch, err := cl.Reconfigure(ctx, ch.ID, 0, 0, 60)
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if nch.Budgets[0]+nch.Budgets[1] != 60 {
		t.Errorf("budgets %v do not sum to the new deadline 60", nch.Budgets)
	}
	if _, err := cl.Reconfigure(ctx, 12345, 0, 0, 50); !errors.Is(err, client.ErrUnknownChannel) {
		t.Errorf("reconfigure unknown = %v", err)
	}
	infos, err := cl.Channels(ctx)
	if err != nil || len(infos) != 1 {
		t.Fatalf("channels after reconfigure = %+v, %v", infos, err)
	}
	if infos[0].Spec.D != 60 {
		t.Errorf("spec after reconfigure = %+v", infos[0].Spec)
	}
}
