package server_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rtether"
	"repro/rtether/client"
	"repro/rtether/wire"
)

// ringNet builds a 4-switch ring fabric (0-1, 1-2, 2-3, 3-0) with two
// nodes per switch (node n on switch (n-1)/2) behind HADPS, so a single
// trunk failure always leaves a detour to re-route over.
func ringNet(t *testing.T, opts ...rtether.Option) *rtether.Network {
	t.Helper()
	top := rtether.NewTopology()
	for s := rtether.SwitchID(0); s < 4; s++ {
		if err := top.AddSwitch(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][2]rtether.SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := top.Trunk(tr[0], tr[1]); err != nil {
			t.Fatal(err)
		}
	}
	for n := rtether.NodeID(1); n <= 8; n++ {
		if err := top.Attach(n, rtether.SwitchID((n-1)/2)); err != nil {
			t.Fatal(err)
		}
	}
	return rtether.New(append([]rtether.Option{rtether.WithTopology(top), rtether.WithHDPS(rtether.HADPS())}, opts...)...)
}

// collectUntil drains watch events until pred is satisfied (or times
// out), returning everything seen.
func collectUntil(t *testing.T, w *client.Watcher, pred func([]wire.WatchEvent) bool) []wire.WatchEvent {
	t.Helper()
	var events []wire.WatchEvent
	deadline := time.After(5 * time.Second)
	for !pred(events) {
		type res struct {
			ev  wire.WatchEvent
			err error
		}
		got := make(chan res, 1)
		go func() {
			ev, err := w.Next()
			got <- res{ev, err}
		}()
		select {
		case r := <-got:
			if r.err != nil {
				t.Fatalf("watch ended early: %v (events so far: %+v)", r.err, events)
			}
			events = append(events, r.ev)
		case <-deadline:
			t.Fatalf("timed out; events so far: %+v", events)
		}
	}
	return events
}

// TestFailEndpointEndToEnd drives POST /v1/fail through the typed
// client against a live fabric daemon: the recovery pass re-routes what
// it can and loses what it cannot, the reply carries per-channel
// verdicts, each outcome streams on /v1/watch with its failure cause,
// and the survivability counters land in /v1/stats.
func TestFailEndpointEndToEnd(t *testing.T) {
	cl, _ := newTestServer(t, ringNet(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	w, err := cl.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Both cross trunk 0-1; only the first fits on the 5-hop detour.
	agile, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 3, C: 2, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 2, Dst: 4, C: 10, P: 100, D: 34})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := cl.SetLinkUp(ctx, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 2 || len(rep.Outcomes) != 2 {
		t.Fatalf("fail reply = %+v, want 2 affected with outcomes", rep)
	}
	fates := map[uint32]string{}
	for _, oc := range rep.Outcomes {
		fates[oc.ID] = oc.Outcome
	}
	if fates[uint32(agile.ID)] != "rerouted" || fates[uint32(doomed.ID)] != "lost" {
		t.Fatalf("fates = %v, want %d rerouted and %d lost", fates, agile.ID, doomed.ID)
	}

	// Every outcome streams on the watch feed, tagged with its cause.
	done := func(evs []wire.WatchEvent) bool {
		seen := map[string]bool{}
		for _, ev := range evs {
			seen[ev.Type] = true
		}
		return seen[wire.EventReroute] && seen[wire.EventLost]
	}
	for _, ev := range collectUntil(t, w, done) {
		switch ev.Type {
		case wire.EventReroute:
			if ev.ID != uint32(agile.ID) || ev.Cause != "trunk 0-1 down" {
				t.Errorf("reroute event = %+v, want id %d cause \"trunk 0-1 down\"", ev, agile.ID)
			}
		case wire.EventLost:
			if ev.ID != uint32(doomed.ID) || ev.Error == nil {
				t.Errorf("lost event = %+v, want id %d with error", ev, doomed.ID)
			}
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Rerouted != 1 || st.Admission.Lost != 1 {
		t.Fatalf("stats = %+v, want Rerouted=1 Lost=1", st.Admission)
	}

	// Repair is a pure flip with an empty report; the lost channel is
	// gone from the channel table, the survivor is not.
	rep, err = cl.SetLinkUp(ctx, 0, 1, true)
	if err != nil || rep.Affected != 0 {
		t.Fatalf("repair = %+v, %v, want empty report", rep, err)
	}
	infos, err := cl.Channels(ctx)
	if err != nil || len(infos) != 1 || infos[0].ID != uint32(agile.ID) {
		t.Fatalf("channels after recovery = %+v, %v, want only %d", infos, err, agile.ID)
	}
}

// TestFailEndpointSwitchAndErrors covers the switch kind plus the error
// paths: bad kind, unknown trunk, and a star daemon without a fabric.
func TestFailEndpointSwitchAndErrors(t *testing.T) {
	ctx := context.Background()
	cl, _ := newTestServer(t, ringNet(t))
	rep, err := cl.SetSwitchUp(ctx, 2, false)
	if err != nil || rep.Affected != 0 {
		t.Fatalf("idle switch failure = %+v, %v, want clean empty report", rep, err)
	}
	if _, err := cl.SetLinkUp(ctx, 0, 2, false); err == nil {
		t.Fatal("failing unknown trunk succeeded")
	}

	star, _ := newTestServer(t, starNet(4))
	if _, err := star.SetLinkUp(ctx, 0, 1, false); err == nil {
		t.Fatal("trunk failure on a star daemon succeeded")
	}
}

// TestCoalescingMixedMulticast extends the 1000-concurrent-client
// acceptance criterion to a mixed workload: unicast establishes and
// multicast trees race into the same merge queue, every request gets
// its own verdict, and the batch still collapses into a small number of
// kernel passes.
func TestCoalescingMixedMulticast(t *testing.T) {
	const n = 1000
	cl, _ := newTestServer(t, starNet(40), func(c *server.Config) {
		c.CoalesceWindow = 5 * time.Millisecond
	})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, n)
	multicasts := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		if i%4 == 3 {
			multicasts++
			spec := rtether.MulticastSpec{
				Src:   rtether.NodeID(1 + i%20),
				Sinks: []rtether.NodeID{rtether.NodeID(21 + i%20), rtether.NodeID(21 + (i+7)%20)},
				C:     1, P: 800, D: int64(200 + i%100),
			}
			go func(i int) {
				defer wg.Done()
				ch, err := cl.EstablishMulticast(ctx, spec)
				if err == nil && ch.ID == 0 {
					err = errors.New("multicast reply without channel ID")
				}
				errs[i] = err
			}(i)
			continue
		}
		spec := rtether.ChannelSpec{
			Src: rtether.NodeID(1 + i%20), Dst: rtether.NodeID(21 + i%20),
			C: 1, P: 800, D: int64(200 + i%100),
		}
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Establish(ctx, spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d rejected: %v", i, err)
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Accepted != n {
		t.Fatalf("accepted %d, want %d", st.Admission.Accepted, n)
	}
	if st.Admission.Repartitions*10 > n {
		t.Fatalf("mixed burst cost %d repartition passes, want <= %d", st.Admission.Repartitions, n/10)
	}
	if st.Server.Flights >= st.Server.Establishes/10 {
		t.Errorf("coalescer merged %d mixed establishes into %d flights — expected at least 10x merging",
			st.Server.Establishes, st.Server.Flights)
	}
	t.Logf("merged %d establishes (%d multicast) into %d flights, %d repartition passes",
		st.Server.Establishes, multicasts, st.Server.Flights, st.Admission.Repartitions)
}
