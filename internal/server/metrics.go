package server

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/rtether"
	"repro/rtether/wire"
)

// serverMetrics is the daemon's observability surface: one obs.Registry
// backing GET /metrics and one span ring backing GET /v1/spans. Event
// counters (admit/reject/release) are plain obs counters incremented
// where the event happens; everything the daemon already counts
// elsewhere — admission stats, coalescer atomics, watch-hub state — is
// promoted into the exposition through CounterFunc/GaugeFunc collectors
// that read the existing counters only at scrape time, so the admission
// hot path gains no new work.
type serverMetrics struct {
	reg   *obs.Registry
	spans *obs.SpanRing

	admits      *obs.Counter
	rejects     *obs.Counter
	releases    *obs.Counter
	topicAdmits *obs.Counter
	heartbeats  *obs.Counter

	flightMerged *obs.Histogram
	flightWait   *obs.Histogram
	flightAdmit  *obs.Histogram

	binDur map[wire.MsgType]*obs.Histogram

	// lastSweepNs attributes verification-sweep time to flights by
	// differencing the kernel's cumulative sweep counter. Only the
	// coalescer's single dispatcher goroutine touches it, so no lock;
	// concurrent non-coalesced passes (establishAll, failover) make the
	// attribution approximate, never wrong in total.
	lastSweepNs int64
}

// spanRingDefault is the flight recorder's default capacity.
const spanRingDefault = 256

// newServerMetrics builds the registry and registers every series that
// is not per-endpoint (mountRoutes registers those). s.net, s.coal,
// s.hub and s.topics must already be set.
func newServerMetrics(s *Server, spanCap int) *serverMetrics {
	if spanCap <= 0 {
		spanCap = spanRingDefault
	}
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r, spans: obs.NewSpanRing(spanCap)}

	m.admits = r.Counter("rtether_admit_total", "Channels admitted (establish, multicast, batch and topic re-admissions).")
	m.rejects = r.Counter("rtether_reject_total", "Establish requests rejected.")
	m.releases = r.Counter("rtether_release_total", "Channels released.")
	m.topicAdmits = r.Counter("rtether_topic_admissions_total", "Topic-tree (re-)admissions driven by pub/sub membership changes.")
	m.heartbeats = r.Counter("rtether_heartbeats_total", "Heartbeat events published on the watch feed.")

	// Admission-kernel counters, promoted from rtether.AdmissionStats.
	stat := func(f func(rtether.AdmissionStats) float64) func() float64 {
		return func() float64 { return f(s.net.AdmissionStats()) }
	}
	r.CounterFunc("rtether_admit_requests_total", "Channel requests decided by the admission kernel.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.Requests) }))
	r.CounterFunc("rtether_links_checked_total", "Per-link feasibility verifications, cached verdicts included.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.LinksChecked) }))
	r.CounterFunc("rtether_verify_cache_hits_total", "Per-link verifications answered by the generation-keyed verdict cache.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.VerifyCacheHits) }))
	r.CounterFunc("rtether_repartitions_total", "Deadline-repartition passes run by the kernel.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.Repartitions) }))
	r.CounterFunc("rtether_sweep_seconds_total", "Wall-clock time spent in EDF verification sweeps.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.SweepNs) / 1e9 }))
	r.CounterFunc("rtether_failover_outcomes_total", "Channels rerouted by failure recovery.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.Rerouted) }),
		obs.Label{Key: "outcome", Value: "rerouted"})
	r.CounterFunc("rtether_failover_outcomes_total", "Channels degraded by failure recovery.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.Degraded) }),
		obs.Label{Key: "outcome", Value: "degraded"})
	r.CounterFunc("rtether_failover_outcomes_total", "Channels preempted by failure recovery.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.Preempted) }),
		obs.Label{Key: "outcome", Value: "preempted"})
	r.CounterFunc("rtether_failover_outcomes_total", "Channels lost to failure recovery.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.Lost) }),
		obs.Label{Key: "outcome", Value: "lost"})
	r.GaugeFunc("rtether_mean_link_utilization", "Mean utilization across loaded links.",
		stat(func(a rtether.AdmissionStats) float64 { return a.MeanLinkUtilization }))
	r.GaugeFunc("rtether_loaded_links", "Links carrying at least one RT channel.",
		stat(func(a rtether.AdmissionStats) float64 { return float64(a.LoadedLinks) }))

	// Coalescer and watch-hub state, promoted from their own counters.
	r.CounterFunc("rtether_establishes_total", "Establish requests submitted to the coalescing front-end.",
		func() float64 { return float64(s.coal.establishes.Load()) })
	r.CounterFunc("rtether_flights_total", "Merged admission flights dispatched.",
		func() float64 { return float64(s.coal.flights.Load()) })
	r.GaugeFunc("rtether_flight_max_merged", "Largest number of requests merged into one flight.",
		func() float64 { return float64(s.coal.maxMerged.Load()) })
	r.GaugeFunc("rtether_channels", "Currently established channels.",
		func() float64 { return float64(len(s.net.Channels())) })
	r.GaugeFunc("rtether_topics", "Declared pub/sub topics.",
		func() float64 { return float64(s.topics.Len()) })
	r.GaugeFunc("rtether_watch_subscribers", "Connected /v1/watch streams.",
		func() float64 { return float64(s.hub.count()) })
	r.GaugeFunc("rtether_watch_seq", "High-water sequence number of the watch feed.",
		func() float64 { return float64(s.hub.lastSeq()) })
	r.CounterFunc("rtether_watch_evictions_total", "Watch streams evicted for falling behind.",
		func() float64 { return float64(s.hub.evictions.Load()) })

	// Flight-shape histograms, fed by the coalescer's flight records.
	m.flightMerged = r.Histogram("rtether_flight_merged", "Establish requests merged per flight.")
	m.flightWait = r.Histogram("rtether_flight_wait_ns", "Longest coalesce-queue wait per flight.")
	m.flightAdmit = r.Histogram("rtether_flight_admit_ns", "Merged kernel admission pass duration per flight.")

	// Binary-transport dispatch latency, one series per message type.
	m.binDur = make(map[wire.MsgType]*obs.Histogram)
	for _, mt := range []struct {
		t    wire.MsgType
		name string
	}{
		{wire.MsgEstablish, "establish"},
		{wire.MsgMulticast, "multicast"},
		{wire.MsgEstablishAll, "establishAll"},
		{wire.MsgRelease, "release"},
		{wire.MsgReconfigure, "reconfigure"},
		{wire.MsgStats, "stats"},
	} {
		m.binDur[mt.t] = r.Histogram("rtether_binary_request_duration_ns",
			"Binary frame dispatch duration by message type.",
			obs.Label{Key: "msg", Value: mt.name})
	}
	return m
}

// onFlight records one coalesced flight into the span ring and the
// flight-shape histograms. Called from the coalescer's dispatcher
// goroutine, once per flight.
func (s *Server) onFlight(fr flightRecord) {
	m := s.metrics
	sweep := s.net.AdmissionStats().SweepNs
	verify := sweep - m.lastSweepNs
	m.lastSweepNs = sweep
	m.flightMerged.Observe(int64(fr.merged))
	m.flightWait.Observe(fr.waitNs)
	m.flightAdmit.Observe(fr.admitNs)
	m.spans.Record(obs.Span{
		Flight:    s.coal.flights.Load(),
		Start:     fr.start,
		Merged:    fr.merged,
		WaitNs:    fr.waitNs,
		AdmitNs:   fr.admitNs,
		VerifyNs:  verify,
		PublishNs: fr.publishNs,
		Accepted:  fr.accepted,
		Rejected:  fr.rejected,
	})
}

// route pairs one mux pattern with its handler for instrumented
// mounting.
type route struct {
	pattern string
	fn      http.HandlerFunc
}

// mountRoutes registers every route on the mux wrapped in the
// per-endpoint request counter and duration histogram. All counters are
// registered before all histograms so each family stays contiguous in
// the exposition (one HELP/TYPE header per family). For streaming
// endpoints (watch, subscribe) the recorded duration spans the whole
// stream lifetime.
func (s *Server) mountRoutes(routes []route) {
	reg := s.metrics.reg
	counters := make([]*obs.Counter, len(routes))
	for i, rt := range routes {
		counters[i] = reg.Counter("rtether_requests_total", "HTTP requests served by endpoint.",
			obs.Label{Key: "endpoint", Value: endpointOf(rt.pattern)})
	}
	durs := make([]*obs.Histogram, len(routes))
	for i, rt := range routes {
		durs[i] = reg.Histogram("rtether_request_duration_ns", "HTTP request duration by endpoint.",
			obs.Label{Key: "endpoint", Value: endpointOf(rt.pattern)})
	}
	for i, rt := range routes {
		c, h, fn := counters[i], durs[i], rt.fn
		s.mux.HandleFunc(rt.pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			fn(w, r)
			c.Inc()
			h.Observe(time.Since(start).Nanoseconds())
		})
	}
}

// endpointOf strips the method from a "METHOD /path" mux pattern.
func endpointOf(pattern string) string {
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		return pattern[i+1:]
	}
	return pattern
}

// handlePromMetrics serves the Prometheus text exposition
// (GET /metrics).
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// MetricsHandler exposes the Prometheus exposition handler for mounting
// on an additional listener (rtetherd -metrics-addr), so scrapers need
// no access to the admission API.
func (s *Server) MetricsHandler() http.HandlerFunc { return s.handlePromMetrics }

// handleSpans dumps the flight recorder (GET /v1/spans), oldest first.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	spans := s.metrics.spans.Snapshot()
	rep := wire.SpansReply{Spans: make([]wire.SpanInfo, len(spans))}
	for i, sp := range spans {
		rep.Spans[i] = wire.SpanInfo{
			Flight:        sp.Flight,
			StartUnixNano: sp.Start.UnixNano(),
			Merged:        sp.Merged,
			WaitNs:        sp.WaitNs,
			AdmitNs:       sp.AdmitNs,
			VerifyNs:      sp.VerifyNs,
			PublishNs:     sp.PublishNs,
			Accepted:      sp.Accepted,
			Rejected:      sp.Rejected,
		}
	}
	writeJSON(w, rep)
}

// heartbeatLoop publishes one heartbeat watch event per interval until
// the server closes: a liveness beacon carrying the feed's sequence
// high-water mark (the event's own seq) and the current channel count,
// so a quiet fabric still proves the stream is alive.
func (s *Server) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.hbQuit:
			return
		case <-t.C:
			s.hub.publish(wire.WatchEvent{
				Type:     wire.EventHeartbeat,
				Channels: len(s.net.Channels()),
			})
			s.metrics.heartbeats.Inc()
		}
	}
}
