// Package server implements rtetherd's HTTP/JSON admission service: a
// long-running daemon hosting one rtether.Network and serving channel
// establishment, release, reconfiguration, stats, per-channel metrics
// and a streaming event feed to many concurrent clients over the wire
// schema of rtether/wire (prose reference: docs/server.md).
//
// The heart is the coalescing front-end: concurrent POST /v1/establish
// requests that arrive while a merged admission pass is in flight (or
// within Config.CoalesceWindow) are batched into one per-spec kernel
// decision (Network.EstablishEach), so N clients cost approximately one
// repartition and one verification sweep instead of N — while every
// client still receives exactly its own verdict, with the full
// *rtether.AdmissionError diagnostics round-tripped on rejection.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/topo"
	"repro/rtether"
	"repro/rtether/wire"
)

// Config assembles a Server.
type Config struct {
	// Network is the hosted network. The Server does not close it;
	// ownership stays with the caller (cmd/rtetherd closes it after
	// draining HTTP).
	Network *rtether.Network
	// CoalesceWindow additionally holds the first establish request of
	// a batch back up to this long so more concurrent requests can
	// join. 0 (the default, recommended) adds no idle latency: a batch
	// merges exactly the requests that queued while the previous merged
	// pass ran.
	CoalesceWindow time.Duration
	// MaxBatch caps how many establish requests merge into one pass
	// (default 1024).
	MaxBatch int
	// HeartbeatInterval, when positive, publishes a periodic heartbeat
	// event on the /v1/watch feed carrying the feed's sequence
	// high-water mark and the current channel count. 0 disables
	// heartbeats.
	HeartbeatInterval time.Duration
	// SpanRingSize caps the flight recorder served by GET /v1/spans
	// (default 256).
	SpanRingSize int
	// Log receives one line per lifecycle event; nil disables logging.
	Log *log.Logger
}

// Server is the HTTP admission service. Create it with New, mount
// Handler, and Close it when done.
type Server struct {
	net       *rtether.Network
	mux       *http.ServeMux
	coal      *coalescer
	hub       *hub
	topics    *pubsub.Registry
	metrics   *serverMetrics
	log       *log.Logger
	start     time.Time
	hbQuit    chan struct{}
	closeOnce sync.Once

	// Binary transport state (binary.go): the listeners ServeBinary is
	// draining and the live connections, torn down on Close.
	binMu        sync.Mutex
	binListeners []net.Listener
	binConns     map[net.Conn]struct{}
	binClosed    bool
}

// New builds a Server over the given network and starts its coalescing
// dispatcher.
func New(cfg Config) *Server {
	s := &Server{
		net:    cfg.Network,
		mux:    http.NewServeMux(),
		hub:    newHub(),
		log:    cfg.Log,
		start:  time.Now(),
		hbQuit: make(chan struct{}),
	}
	s.coal = newCoalescer(cfg.Network, cfg.CoalesceWindow, cfg.MaxBatch, s.noteVerdict, s.noteRelease, s.onFlight)
	// Topic channel lifecycle republishes on the /v1/watch feed so a
	// watcher sees membership-driven re-admissions like any other verdict.
	s.topics = pubsub.NewRegistry(cfg.Network, pubsub.Hooks{
		Admitted: func(topic string, ch *rtether.Channel) {
			ws := wire.FromSpec(ch.Spec())
			s.logf("admit RT#%d topic %q sinks=%v budgets=%v", ch.ID(), topic, ch.Sinks(), ch.Budgets())
			s.metrics.admits.Inc()
			s.metrics.topicAdmits.Inc()
			s.hub.publish(wire.WatchEvent{Type: wire.EventAdmit, ID: uint32(ch.ID()), Spec: &ws, Budgets: ch.Budgets()})
		},
		Released: func(topic string, id rtether.ChannelID) {
			s.logf("release RT#%d topic %q", id, topic)
			s.metrics.releases.Inc()
			s.hub.publish(wire.WatchEvent{Type: wire.EventRelease, ID: uint32(id)})
		},
	})
	s.metrics = newServerMetrics(s, cfg.SpanRingSize)
	s.mountRoutes([]route{
		{"POST /v1/establish", s.handleEstablish},
		{"POST /v1/establishAll", s.handleEstablishAll},
		{"POST /v1/multicast", s.handleEstablishMulticast},
		{"POST /v1/fail", s.handleFail},
		{"POST /v1/release", s.handleRelease},
		{"POST /v1/reconfigure", s.handleReconfigure},
		{"GET /v1/stats", s.handleStats},
		{"GET /v1/channels", s.handleChannels},
		{"GET /v1/metrics", s.handleMetrics},
		{"GET /v1/watch", s.handleWatch},
		{"GET /v1/healthz", s.handleHealthz},
		{"GET /v1/spans", s.handleSpans},
		{"POST /v1/topics", s.handleCreateTopic},
		{"GET /v1/topics", s.handleListTopics},
		{"POST /v1/topics/publish", s.handlePublish},
		{"GET /v1/topics/subscribe", s.handleSubscribe},
	})
	// The exposition endpoint itself is unwrapped: scrapes should not
	// perturb the request metrics they read.
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	if cfg.HeartbeatInterval > 0 {
		go s.heartbeatLoop(cfg.HeartbeatInterval)
	}
	return s
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the coalescing dispatcher (queued establishes fail with
// the "closed" error) and disconnects every watch stream. It does not
// close the hosted Network. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.hbQuit)
		s.coal.close()
		s.topics.Close()
		s.hub.close()
		s.closeBinary()
		s.logf("closed: %d establishes in %d flights (max merged %d)",
			s.coal.establishes.Load(), s.coal.flights.Load(), s.coal.maxMerged.Load())
	})
}

// logf writes one log line when logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// noteVerdict publishes one coalesced establish verdict on the watch
// feed and the log. sinks is non-nil for multicast requests.
func (s *Server) noteVerdict(spec rtether.ChannelSpec, sinks []rtether.NodeID, ch *rtether.Channel, err error) {
	ws := wire.FromSpec(spec)
	if ch != nil {
		if len(sinks) > 0 {
			s.logf("admit RT#%d %v sinks=%v budgets=%v", ch.ID(), spec, sinks, ch.Budgets())
		} else {
			s.logf("admit RT#%d %v budgets=%v", ch.ID(), spec, ch.Budgets())
		}
		s.metrics.admits.Inc()
		s.hub.publish(wire.WatchEvent{Type: wire.EventAdmit, ID: uint32(ch.ID()), Spec: &ws, Budgets: ch.Budgets()})
		return
	}
	s.logf("reject %v: %v", spec, err)
	s.metrics.rejects.Inc()
	s.hub.publish(wire.WatchEvent{Type: wire.EventReject, Spec: &ws, Error: errorBody(err)})
}

// noteFailover publishes every channel outcome of a failure-recovery
// pass on the watch feed and the log.
func (s *Server) noteFailover(cause string, rep *rtether.FailoverReport) {
	for _, oc := range rep.Outcomes {
		ws := wire.FromSpec(oc.Spec)
		ev := wire.WatchEvent{ID: uint32(oc.ID), Spec: &ws, Cause: cause}
		switch oc.Outcome {
		case rtether.Rerouted:
			ev.Type = wire.EventReroute
		case rtether.Degraded:
			ev.Type = wire.EventDegrade
			ev.NewD = oc.NewD
		case rtether.Preempted:
			ev.Type = wire.EventPreempt
		case rtether.Lost:
			ev.Type = wire.EventLost
			if oc.Err != nil {
				ev.Error = errorBody(oc.Err)
			}
		}
		s.logf("%s RT#%d (%s)", ev.Type, oc.ID, cause)
		s.hub.publish(ev)
	}
}

// noteRelease publishes one release on the watch feed and the log.
func (s *Server) noteRelease(id rtether.ChannelID) {
	s.logf("release RT#%d", id)
	s.metrics.releases.Inc()
	s.hub.publish(wire.WatchEvent{Type: wire.EventRelease, ID: uint32(id)})
}

// errorBody classifies an error into the wire envelope: the code, the
// message, and — for feasibility rejections — the full admission
// diagnostics.
func errorBody(err error) *wire.Error {
	var ae *rtether.AdmissionError
	switch {
	case errors.As(err, &ae):
		return &wire.Error{Code: wire.CodeInfeasible, Message: err.Error(), Admission: wire.FromAdmissionError(ae)}
	case errors.Is(err, rtether.ErrClosed):
		return &wire.Error{Code: wire.CodeClosed, Message: err.Error()}
	case errors.Is(err, rtether.ErrChannelClosed):
		// A racing duplicate release/reconfigure lost to the winner after
		// both passed Lookup — to the loser the channel is simply gone.
		return &wire.Error{Code: wire.CodeUnknownChannel, Message: err.Error()}
	case errors.Is(err, topo.ErrNoRoute), errors.Is(err, topo.ErrUnknownNode), errors.Is(err, netsim.ErrUnknownNode):
		return &wire.Error{Code: wire.CodeNoRoute, Message: err.Error()}
	case errors.Is(err, topo.ErrUnknownSwitch), errors.Is(err, topo.ErrUnknownLink),
		errors.Is(err, rtether.ErrNoFabric), errors.Is(err, rtether.ErrNoNodeLinks):
		return &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()}
	case errors.Is(err, pubsub.ErrUnknownTopic):
		return &wire.Error{Code: wire.CodeUnknownTopic, Message: err.Error()}
	case errors.Is(err, pubsub.ErrDuplicateTopic):
		return &wire.Error{Code: wire.CodeDuplicateTopic, Message: err.Error()}
	case errors.Is(err, pubsub.ErrClosed):
		return &wire.Error{Code: wire.CodeClosed, Message: err.Error()}
	case isSpecError(err):
		return &wire.Error{Code: wire.CodeInvalidSpec, Message: err.Error()}
	default:
		return &wire.Error{Code: wire.CodeInternal, Message: err.Error()}
	}
}

// isSpecError reports whether err is a channel-spec validation failure.
func isSpecError(err error) bool {
	for _, sentinel := range []error{
		core.ErrSelfLoop, core.ErrNonPositiveC, core.ErrNonPositiveP,
		core.ErrCExceedsP, core.ErrDeadlineTooShort,
		core.ErrNoSinks, core.ErrDuplicateSink,
		topo.ErrDeadlineTooShortForRoute,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// statusOf maps a wire error code to its HTTP status (documented in
// docs/server.md).
func statusOf(code string) int {
	switch code {
	case wire.CodeBadRequest:
		return http.StatusBadRequest
	case wire.CodeInvalidSpec, wire.CodeNoRoute:
		return http.StatusUnprocessableEntity
	case wire.CodeInfeasible, wire.CodeDuplicateTopic:
		return http.StatusConflict
	case wire.CodeUnknownChannel, wire.CodeUnknownTopic:
		return http.StatusNotFound
	case wire.CodeClosed:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON emits a 200 response body.
func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

// writeErr emits the error envelope for err.
func writeErr(w http.ResponseWriter, err error) {
	writeWireErr(w, errorBody(err))
}

// writeWireErr emits a pre-built error envelope.
func writeWireErr(w http.ResponseWriter, we *wire.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusOf(we.Code))
	_ = json.NewEncoder(w).Encode(wire.Envelope{Err: we})
}

// decode parses a JSON request body, reporting a bad_request envelope
// on failure.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeWireErr(w, &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("parsing request body: %v", err)})
		return false
	}
	return true
}

// channelReply assembles the wire description of an established handle.
func channelReply(ch *rtether.Channel) wire.ChannelReply {
	return wire.ChannelReply{
		ID:              uint32(ch.ID()),
		Budgets:         ch.Budgets(),
		GuaranteedDelay: ch.GuaranteedDelay(),
	}
}

// handleEstablish admits one channel through the coalescing front-end.
func (s *Server) handleEstablish(w http.ResponseWriter, r *http.Request) {
	var req wire.EstablishRequest
	if !decode(w, r, &req) {
		return
	}
	ch, err := s.coal.establish(r.Context(), req.Spec.ChannelSpec())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, channelReply(ch))
}

// handleEstablishMulticast admits one multicast tree through the same
// coalescing front-end as unicast establishes: the tree joins the next
// merged flight and is decided inside one mixed kernel pass
// (Network.EstablishEachMixed) with its own atomic verdict — all links
// of all branches admit or roll back together. Verdicts reach the
// watch feed like unicast ones.
func (s *Server) handleEstablishMulticast(w http.ResponseWriter, r *http.Request) {
	var req wire.EstablishMulticastRequest
	if !decode(w, r, &req) {
		return
	}
	ch, err := s.coal.establishMulticast(r.Context(), req.Spec.MulticastSpec())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, channelReply(ch))
}

// handleFail changes topology health (POST /v1/fail): failing a trunk
// or switch triggers the batch re-route/re-admit recovery pass and the
// configured policy ladder; every channel outcome is published on the
// watch feed (reroute/degrade/preempt/lost) before the reply returns.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req wire.FailRequest
	if !decode(w, r, &req) {
		return
	}
	var (
		rep   *rtether.FailoverReport
		err   error
		cause string
	)
	switch req.Kind {
	case "link":
		rep, err = s.net.SetLinkUp(rtether.SwitchID(req.A), rtether.SwitchID(req.B), req.Up)
		cause = fmt.Sprintf("trunk %d-%d %s", req.A, req.B, upDown(req.Up))
	case "switch":
		rep, err = s.net.SetSwitchUp(rtether.SwitchID(req.S), req.Up)
		cause = fmt.Sprintf("switch %d %s", req.S, upDown(req.Up))
	default:
		writeWireErr(w, &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("rtetherd: unknown fail kind %q (want \"link\" or \"switch\")", req.Kind)})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.logf("%s: %d affected", cause, rep.Affected)
	s.noteFailover(cause, rep)
	reply := wire.FailReply{Affected: rep.Affected}
	for _, oc := range rep.Outcomes {
		reply.Outcomes = append(reply.Outcomes, wire.FailOutcome{
			ID:      uint32(oc.ID),
			Outcome: oc.Outcome.String(),
			NewD:    oc.NewD,
		})
	}
	writeJSON(w, reply)
}

// upDown renders a health flag for logs and watch causes.
func upDown(up bool) string {
	if up {
		return "up"
	}
	return "down"
}

// handleEstablishAll admits an explicit atomic batch, bypassing the
// coalescer: all-or-nothing is the caller's requested semantic.
func (s *Server) handleEstablishAll(w http.ResponseWriter, r *http.Request) {
	var req wire.EstablishAllRequest
	if !decode(w, r, &req) {
		return
	}
	specs := make([]rtether.ChannelSpec, len(req.Specs))
	for i, sp := range req.Specs {
		specs[i] = sp.ChannelSpec()
	}
	rep, we := s.doEstablishAll(specs)
	if we != nil {
		writeWireErr(w, we)
		return
	}
	writeJSON(w, rep)
}

// doEstablishAll decides an atomic batch and publishes the verdicts —
// the transport-independent core shared by the HTTP handler and the
// binary dispatcher.
func (s *Server) doEstablishAll(specs []rtether.ChannelSpec) (wire.EstablishAllReply, *wire.Error) {
	chs, err := s.net.EstablishAll(specs)
	if err != nil {
		// Every rejection reaches the watch feed, whatever its class:
		// feasibility failures name the attributed spec, other errors
		// (no-route, invalid spec, closed) the batch's first.
		rejected := rtether.ChannelSpec{}
		if len(specs) > 0 {
			rejected = specs[0]
		}
		var ae *rtether.AdmissionError
		if errors.As(err, &ae) {
			rejected = ae.Spec
		}
		ws := wire.FromSpec(rejected)
		we := errorBody(err)
		s.metrics.rejects.Inc()
		s.hub.publish(wire.WatchEvent{Type: wire.EventReject, Spec: &ws, Error: we})
		return wire.EstablishAllReply{}, we
	}
	rep := wire.EstablishAllReply{Channels: make([]wire.ChannelReply, len(chs))}
	for i, ch := range chs {
		rep.Channels[i] = channelReply(ch)
		s.noteVerdict(specs[i], nil, ch, nil)
	}
	return rep, nil
}

// handleRelease frees one channel by ID.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseRequest
	if !decode(w, r, &req) {
		return
	}
	if we := s.doRelease(req.ID); we != nil {
		writeWireErr(w, we)
		return
	}
	writeJSON(w, wire.ReleaseReply{})
}

// doRelease frees one channel by ID; nil means success. Shared by the
// HTTP handler and the binary dispatcher.
func (s *Server) doRelease(id uint32) *wire.Error {
	ch := s.net.Lookup(rtether.ChannelID(id))
	if ch == nil {
		return unknownChannel(id)
	}
	if err := ch.Release(); err != nil {
		return errorBody(err)
	}
	s.noteRelease(rtether.ChannelID(id))
	return nil
}

// handleReconfigure replaces a channel's {C, P, D}: release the old
// reservation, then request the new spec through the coalescing
// front-end. The two steps are not one atomic decision (see
// wire.ReconfigureRequest); as with the scenario format's reconfigure
// event, a rejected reconfiguration leaves the channel released — the
// old bandwidth was already given up (the 409 envelope carries the
// rejection; the release event precedes it on the watch feed).
func (s *Server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	var req wire.ReconfigureRequest
	if !decode(w, r, &req) {
		return
	}
	rep, we := s.doReconfigure(r.Context(), req)
	if we != nil {
		writeWireErr(w, we)
		return
	}
	writeJSON(w, rep)
}

// doReconfigure runs the release-then-re-establish sequence. Shared by
// the HTTP handler and the binary dispatcher.
func (s *Server) doReconfigure(ctx context.Context, req wire.ReconfigureRequest) (wire.ChannelReply, *wire.Error) {
	ch := s.net.Lookup(rtether.ChannelID(req.ID))
	if ch == nil {
		return wire.ChannelReply{}, unknownChannel(req.ID)
	}
	spec := ch.Spec()
	if req.C != 0 {
		spec.C = req.C
	}
	if req.P != 0 {
		spec.P = req.P
	}
	if req.D != 0 {
		spec.D = req.D
	}
	if err := ch.Release(); err != nil {
		return wire.ChannelReply{}, errorBody(err)
	}
	s.noteRelease(rtether.ChannelID(req.ID))
	nch, err := s.coal.establish(ctx, spec)
	if err != nil {
		return wire.ChannelReply{}, errorBody(err)
	}
	return channelReply(nch), nil
}

// unknownChannel builds the 404 envelope for a channel ID.
func unknownChannel(id uint32) *wire.Error {
	return &wire.Error{Code: wire.CodeUnknownChannel, Message: fmt.Sprintf("rtetherd: unknown channel %d", id)}
}

// handleStats reports admission and daemon counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.statsReply())
}

// statsReply snapshots the admission and daemon counters. Shared by the
// HTTP handler and the binary dispatcher.
func (s *Server) statsReply() wire.StatsReply {
	return wire.StatsReply{
		Admission: s.net.AdmissionStats(),
		Server: wire.ServerStats{
			Establishes: s.coal.establishes.Load(),
			Flights:     s.coal.flights.Load(),
			MaxMerged:   s.coal.maxMerged.Load(),
			Watchers:    int64(s.hub.count()),
			Channels:    int64(len(s.net.Channels())),
		},
	}
}

// handleChannels lists established channels.
func (s *Server) handleChannels(w http.ResponseWriter, r *http.Request) {
	ids := s.net.Channels()
	rep := wire.ChannelsReply{Channels: make([]wire.ChannelInfo, 0, len(ids))}
	for _, id := range ids {
		ch := s.net.Lookup(id)
		if ch == nil {
			continue // raced a release
		}
		rep.Channels = append(rep.Channels, wire.ChannelInfo{
			ID:      uint32(id),
			Spec:    wire.FromSpec(ch.Spec()),
			Budgets: ch.Budgets(),
		})
	}
	writeJSON(w, rep)
}

// handleMetrics reports one channel's delivery measurements.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeWireErr(w, &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("rtetherd: bad channel id %q", raw)})
		return
	}
	ch := s.net.Lookup(rtether.ChannelID(id))
	if ch == nil {
		writeWireErr(w, unknownChannel(uint32(id)))
		return
	}
	writeJSON(w, wire.FromMetrics(ch.ID(), ch.Metrics()))
}

// handleWatch streams admission events as newline-delimited JSON until
// the client disconnects, the stream falls behind, or the server
// closes.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	sub := s.hub.subscribe()
	if sub == nil {
		writeWireErr(w, &wire.Error{Code: wire.CodeClosed, Message: "rtetherd: server is closed"})
		return
	}
	defer s.hub.unsubscribe(sub)
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case ev := <-sub.events:
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-sub.dropped:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz answers liveness probes with a JSON operational
// summary: uptime, build identity, the watch feed's sequence high-water
// mark, and the open channel / topic counts.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, wire.HealthzReply{
		Status:     "ok",
		UptimeSecs: time.Since(s.start).Seconds(),
		GoVersion:  runtime.Version(),
		Build:      buildID(),
		WatchSeq:   s.hub.lastSeq(),
		Channels:   len(s.net.Channels()),
		Topics:     s.topics.Len(),
	})
}

// buildID describes the running binary from the embedded build info:
// the main module version, plus the VCS revision when the binary was
// built inside a checkout.
func buildID() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	id := info.Main.Version
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			rev := kv.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			id += "+" + rev
			break
		}
	}
	return id
}

// handleCreateTopic declares a pub/sub topic (POST /v1/topics). The
// topic reserves nothing until its first subscriber joins.
func (s *Server) handleCreateTopic(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateTopicRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.topics.Create(req.Name, rtether.NodeID(req.Src), req.C, req.P, req.D); err != nil {
		writeErr(w, err)
		return
	}
	s.logf("topic %q src=%d c=%d p=%d d=%d", req.Name, req.Src, req.C, req.P, req.D)
	writeJSON(w, wire.TopicInfo{Name: req.Name, Src: req.Src, C: req.C, P: req.P, D: req.D})
}

// handleListTopics lists every topic sorted by name (GET /v1/topics).
func (s *Server) handleListTopics(w http.ResponseWriter, r *http.Request) {
	infos := s.topics.Snapshot()
	rep := wire.TopicsReply{Topics: make([]wire.TopicInfo, len(infos))}
	for i, info := range infos {
		ti := wire.TopicInfo{
			Name: info.Name, Src: uint16(info.Src),
			C: info.C, P: info.P, D: info.D,
			ChannelID: uint32(info.ChannelID),
			Published: info.Published,
		}
		for _, n := range info.Subscribers {
			ti.Subscribers = append(ti.Subscribers, uint16(n))
		}
		rep.Topics[i] = ti
	}
	writeJSON(w, rep)
}

// handlePublish pushes one message to a topic's subscribers
// (POST /v1/topics/publish).
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req wire.PublishRequest
	if !decode(w, r, &req) {
		return
	}
	seq, delivered, err := s.topics.Publish(req.Topic, req.Payload)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, wire.PublishReply{Seq: seq, Delivered: delivered})
}

// handleSubscribe joins a node to a topic and streams its feed as
// newline-delimited JSON (GET /v1/topics/subscribe?topic=T&node=N). The
// join may grow the topic's multicast tree — the re-admission verdict
// comes back as this response's status (409 with the failing branch on
// rejection). Disconnecting unsubscribes, shrinking the tree again.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("topic")
	rawNode := r.URL.Query().Get("node")
	node, err := strconv.ParseUint(rawNode, 10, 16)
	if err != nil {
		writeWireErr(w, &wire.Error{Code: wire.CodeBadRequest, Message: fmt.Sprintf("rtetherd: bad subscriber node %q", rawNode)})
		return
	}
	sub, err := s.topics.Subscribe(name, rtether.NodeID(node))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer s.topics.Unsubscribe(sub)
	s.logf("subscribe node %d to topic %q", node, name)
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case ev := <-sub.Events:
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-sub.Dropped:
			return
		case <-r.Context().Done():
			return
		}
	}
}
