package server_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/rtether"
	"repro/rtether/client"
	"repro/rtether/wire"
)

// nextEvent reads one feed event with a timeout.
func nextEvent(t *testing.T, f *client.TopicFeed) wire.TopicEvent {
	t.Helper()
	type res struct {
		ev  wire.TopicEvent
		err error
	}
	got := make(chan res, 1)
	go func() {
		ev, err := f.Next()
		got <- res{ev, err}
	}()
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("feed ended early: %v", r.err)
		}
		return r.ev
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for a feed event")
		return wire.TopicEvent{}
	}
}

// topicByName polls GET /v1/topics for the named topic.
func topicByName(t *testing.T, cl *client.Client, name string) wire.TopicInfo {
	t.Helper()
	infos, err := cl.Topics(context.Background())
	if err != nil {
		t.Fatalf("topics: %v", err)
	}
	for _, info := range infos {
		if info.Name == name {
			return info
		}
	}
	t.Fatalf("topic %q not listed in %+v", name, infos)
	return wire.TopicInfo{}
}

// TestPubSubEndToEnd is the PR acceptance criterion for the control
// plane: two subscribers join a topic over HTTP, a publish reaches both
// through their watch-style feeds, and a third subscriber triggers a
// re-admission of the topic's multicast tree (observable as a new
// channel ID carrying the grown sink set).
func TestPubSubEndToEnd(t *testing.T) {
	cl, _ := newTestServer(t, starNet(5))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if err := cl.CreateTopic(ctx, "telemetry", 1, 1, 20, 10); err != nil {
		t.Fatalf("create topic: %v", err)
	}
	if err := cl.CreateTopic(ctx, "telemetry", 1, 1, 20, 10); !errors.Is(err, client.ErrDuplicateTopic) {
		t.Fatalf("duplicate create = %v, want ErrDuplicateTopic", err)
	}
	if info := topicByName(t, cl, "telemetry"); len(info.Subscribers) != 0 || info.ChannelID != 0 {
		t.Fatalf("fresh topic holds a reservation: %+v", info)
	}

	feedA, err := cl.SubscribeTopic(ctx, "telemetry", 2)
	if err != nil {
		t.Fatalf("subscribe node 2: %v", err)
	}
	defer feedA.Close()
	feedB, err := cl.SubscribeTopic(ctx, "telemetry", 3)
	if err != nil {
		t.Fatalf("subscribe node 3: %v", err)
	}
	defer feedB.Close()

	info := topicByName(t, cl, "telemetry")
	if len(info.Subscribers) != 2 || info.Subscribers[0] != 2 || info.Subscribers[1] != 3 {
		t.Fatalf("subscribers = %v, want [2 3]", info.Subscribers)
	}
	if info.ChannelID == 0 {
		t.Fatalf("two subscribers but no live multicast channel: %+v", info)
	}
	firstTree := info.ChannelID

	rep, err := cl.Publish(ctx, "telemetry", "hello")
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if rep.Seq != 1 || rep.Delivered != 2 {
		t.Fatalf("publish reply = %+v, want seq 1 delivered 2", rep)
	}
	for name, feed := range map[string]*client.TopicFeed{"A": feedA, "B": feedB} {
		ev := nextEvent(t, feed)
		if ev.Seq != 1 || ev.Topic != "telemetry" || ev.Payload != "hello" {
			t.Fatalf("feed %s event = %+v", name, ev)
		}
	}

	// Third subscriber: the sink set grows, so the daemon must re-admit
	// the tree — a new channel over {2, 3, 4} replaces the old one.
	feedC, err := cl.SubscribeTopic(ctx, "telemetry", 4)
	if err != nil {
		t.Fatalf("subscribe node 4: %v", err)
	}
	defer feedC.Close()
	info = topicByName(t, cl, "telemetry")
	if len(info.Subscribers) != 3 {
		t.Fatalf("subscribers after third join = %v", info.Subscribers)
	}
	if info.ChannelID == 0 || info.ChannelID == firstTree {
		t.Fatalf("third join did not re-admit the tree: channel %d (was %d)", info.ChannelID, firstTree)
	}

	rep, err = cl.Publish(ctx, "telemetry", "fanout")
	if err != nil {
		t.Fatalf("second publish: %v", err)
	}
	if rep.Seq != 2 || rep.Delivered != 3 {
		t.Fatalf("second publish reply = %+v, want seq 2 delivered 3", rep)
	}
	for name, feed := range map[string]*client.TopicFeed{"A": feedA, "B": feedB, "C": feedC} {
		if ev := nextEvent(t, feed); ev.Seq != 2 || ev.Payload != "fanout" {
			t.Fatalf("feed %s second event = %+v", name, ev)
		}
	}

	// The daemon's multicast channel really carries the subscriber set.
	infos, err := cl.Channels(ctx)
	if err != nil || len(infos) != 1 {
		t.Fatalf("channels = %+v, %v", infos, err)
	}

	if _, err := cl.Publish(ctx, "nope", "x"); !errors.Is(err, client.ErrUnknownTopic) {
		t.Fatalf("publish to unknown topic = %v, want ErrUnknownTopic", err)
	}
}

// TestPubSubRejectedJoin pins the membership→re-admission contract: a
// join whose grown tree is infeasible is rejected with the failing
// branch named, and the previous subscribers keep their channel.
func TestPubSubRejectedJoin(t *testing.T) {
	net := starNet(5)
	cl, _ := newTestServer(t, net)
	ctx := context.Background()

	// Saturate node 5's downlink: two {C=3, D_down=6} tasks fill t=6.
	for _, src := range []rtether.NodeID{2, 3} {
		if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: src, Dst: 5, C: 3, P: 10, D: 12}); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	if err := cl.CreateTopic(ctx, "alarms", 1, 3, 10, 12); err != nil {
		t.Fatalf("create topic: %v", err)
	}
	feed, err := cl.SubscribeTopic(ctx, "alarms", 2)
	if err != nil {
		t.Fatalf("subscribe node 2: %v", err)
	}
	defer feed.Close()
	before := topicByName(t, cl, "alarms")

	_, err = cl.SubscribeTopic(ctx, "alarms", 5)
	var ae *rtether.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("join over saturated downlink = %v, want *AdmissionError", err)
	}
	if ae.Sink != 5 || ae.Branch < 0 {
		t.Fatalf("rejection does not name the failing branch: %+v", ae)
	}

	// The surviving subscriber's service is untouched: same-size sink
	// set, live channel, publishes still delivered.
	after := topicByName(t, cl, "alarms")
	if len(after.Subscribers) != len(before.Subscribers) || after.ChannelID == 0 {
		t.Fatalf("rejected join disturbed the topic: before %+v after %+v", before, after)
	}
	rep, err := cl.Publish(ctx, "alarms", "still-on")
	if err != nil || rep.Delivered != 1 {
		t.Fatalf("publish after rejected join = %+v, %v", rep, err)
	}
	if ev := nextEvent(t, feed); ev.Payload != "still-on" {
		t.Fatalf("survivor feed event = %+v", ev)
	}
}

// TestEstablishMulticastHTTP drives POST /v1/multicast through the
// typed client: admission with budgets, and a branch-annotated
// rejection round-tripped field for field.
func TestEstablishMulticastHTTP(t *testing.T) {
	cl, _ := newTestServer(t, starNet(5))
	ctx := context.Background()

	ch, err := cl.EstablishMulticast(ctx, rtether.MulticastSpec{Src: 1, Sinks: []rtether.NodeID{2, 3, 4}, C: 1, P: 20, D: 10})
	if err != nil {
		t.Fatalf("establish multicast: %v", err)
	}
	if ch.ID == 0 || len(ch.Budgets) != 2 || ch.Budgets[0]+ch.Budgets[1] != 10 {
		t.Fatalf("bad multicast reply: %+v", ch)
	}

	// Saturate node 5's downlink, then ask for a tree touching it.
	for _, src := range []rtether.NodeID{2, 3} {
		if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: src, Dst: 5, C: 3, P: 10, D: 12}); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	_, err = cl.EstablishMulticast(ctx, rtether.MulticastSpec{Src: 1, Sinks: []rtether.NodeID{4, 5}, C: 3, P: 10, D: 12})
	var ae *rtether.AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("overload = %v, want *AdmissionError", err)
	}
	if ae.Branch != 1 || ae.Sink != 5 || ae.Dir != rtether.DirDown {
		t.Fatalf("branch attribution lost on the wire: %+v", ae)
	}
	if !errors.Is(err, rtether.ErrInfeasible) {
		t.Fatalf("remote rejection does not unwrap to ErrInfeasible")
	}
}

// TestHealthzJSON pins the upgraded /v1/healthz body.
func TestHealthzJSON(t *testing.T) {
	cl, _ := newTestServer(t, starNet(3))
	ctx := context.Background()

	if err := cl.CreateTopic(ctx, "t0", 1, 1, 20, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}); err != nil {
		t.Fatal(err)
	}

	hz, err := cl.HealthzInfo(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hz.Status != "ok" {
		t.Errorf("status = %q", hz.Status)
	}
	if hz.GoVersion == "" {
		t.Errorf("missing go version")
	}
	if hz.UptimeSecs < 0 {
		t.Errorf("negative uptime %f", hz.UptimeSecs)
	}
	if hz.Channels != 1 {
		t.Errorf("channels = %d, want 1", hz.Channels)
	}
	if hz.Topics != 1 {
		t.Errorf("topics = %d, want 1", hz.Topics)
	}
	// The establish above reached the watch feed, so the high-water mark
	// has moved even with no watcher connected.
	if hz.WatchSeq == 0 {
		t.Errorf("watch seq high-water mark = 0 after an admission")
	}
}
