package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/rtether"
)

// pending is one establish request waiting to be merged into a flight:
// a unicast channel when sinks is nil, a multicast tree otherwise.
type pending struct {
	spec  rtether.ChannelSpec
	sinks []rtether.NodeID
	ctx   context.Context
	out   chan verdict // buffered(1); the flight posts exactly one verdict
	enq   time.Time    // when the request entered the queue (coalesce-wait accounting)
}

// flightRecord summarizes one merged admission flight for the
// observability layer: how many requests merged, the longest queue wait
// among them, how long the kernel pass and verdict fan-out took, and
// the accept/reject split. One record per flight — off the per-request
// hot path.
type flightRecord struct {
	start     time.Time
	merged    int
	waitNs    int64
	admitNs   int64
	publishNs int64
	accepted  int
	rejected  int
}

// verdict is the per-request outcome of a flight.
type verdict struct {
	ch  *rtether.Channel
	err error
}

// coalescer is the merging front-end for establish requests: concurrent
// requests — unicast and multicast alike — that arrive while a merged
// admission pass ("flight") is in progress, or within the configured
// window, are batched into one Network.EstablishEachMixed call, so N
// clients cost one repartition and one verification sweep instead of N. Each request still receives its own
// accept/reject verdict (the kernel's per-spec batch admission), so
// coalescing is invisible to callers except in latency and in
// AdmissionStats.Repartitions.
//
// A single dispatcher goroutine owns the batching loop; requests queue
// on a buffered channel, which is what makes "merge while in flight"
// happen naturally — everything that queued during the previous
// EstablishEach is drained into the next flight in one gulp.
type coalescer struct {
	net      *rtether.Network
	window   time.Duration
	maxBatch int
	// note receives every verdict and noteRelease every
	// released-after-cancel channel (for the watch feed); either may be
	// nil.
	note        func(spec rtether.ChannelSpec, sinks []rtether.NodeID, ch *rtether.Channel, err error)
	noteRelease func(id rtether.ChannelID)
	// noteFlight receives one record per merged flight, after its
	// verdicts posted; nil disables flight recording.
	noteFlight func(flightRecord)

	reqs     chan *pending
	quit     chan struct{}
	done     chan struct{}
	quitOnce sync.Once

	establishes atomic.Int64
	flights     atomic.Int64
	maxMerged   atomic.Int64
}

// newCoalescer starts the dispatcher. window > 0 additionally holds the
// first request of a batch back up to that long to let more requests
// join; window == 0 (the recommended default) merges exactly what
// queued while the previous flight ran, adding no idle latency.
func newCoalescer(net *rtether.Network, window time.Duration, maxBatch int, note func(rtether.ChannelSpec, []rtether.NodeID, *rtether.Channel, error), noteRelease func(rtether.ChannelID), noteFlight func(flightRecord)) *coalescer {
	if maxBatch <= 0 {
		maxBatch = 1024
	}
	c := &coalescer{
		net:         net,
		window:      window,
		maxBatch:    maxBatch,
		note:        note,
		noteRelease: noteRelease,
		noteFlight:  noteFlight,
		reqs:        make(chan *pending, maxBatch),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go c.run()
	return c
}

// establish submits one spec and blocks until its verdict arrives, the
// context is canceled, or the coalescer shuts down. If the context is
// canceled after the request joined a flight, the flight still decides
// it — and releases the channel again if it was admitted, so a vanished
// client cannot leak a reservation.
func (c *coalescer) establish(ctx context.Context, spec rtether.ChannelSpec) (*rtether.Channel, error) {
	return c.submit(&pending{spec: spec, ctx: ctx, out: make(chan verdict, 1)})
}

// establishMulticast submits one multicast request into the same merge
// queue as unicast establishes: the distribution tree joins the next
// flight and is decided inside the merged kernel pass with its own
// verdict (Network.EstablishEachMixed).
func (c *coalescer) establishMulticast(ctx context.Context, spec rtether.MulticastSpec) (*rtether.Channel, error) {
	return c.submit(&pending{spec: spec.ChannelSpec(), sinks: spec.Sinks, ctx: ctx, out: make(chan verdict, 1)})
}

// submit enqueues one request and blocks until its verdict arrives, the
// context is canceled, or the coalescer shuts down.
func (c *coalescer) submit(p *pending) (*rtether.Channel, error) {
	ctx := p.ctx
	p.enq = time.Now()
	c.establishes.Add(1)
	select {
	case <-c.quit:
		return nil, rtether.ErrClosed
	default:
	}
	select {
	case c.reqs <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.quit:
		return nil, rtether.ErrClosed
	}
	select {
	case v := <-p.out:
		return v.ch, v.err
	case <-ctx.Done():
		// Once enqueued, the request is answered exactly once — by a
		// flight or by the shutdown drain. Wait for that verdict even
		// though the caller is gone: if it was an admission, the
		// reservation must be given back, never stranded unread.
		select {
		case v := <-p.out:
			c.releaseOrphan(v)
			return nil, ctx.Err()
		case <-c.done:
			if v, ok := c.takeVerdict(p); ok {
				c.releaseOrphan(v)
			}
			return nil, ctx.Err()
		}
	case <-c.done:
		// Shutdown raced the enqueue. The dispatcher's final drain may
		// already have passed before our request landed in the queue, so
		// only a posted verdict counts — never block on one.
		if v, ok := c.takeVerdict(p); ok {
			return v.ch, v.err
		}
		return nil, rtether.ErrClosed
	}
}

// takeVerdict reads a posted verdict without blocking.
func (c *coalescer) takeVerdict(p *pending) (verdict, bool) {
	select {
	case v := <-p.out:
		return v, true
	default:
		return verdict{}, false
	}
}

// releaseOrphan gives back a channel admitted for a caller that is no
// longer listening.
func (c *coalescer) releaseOrphan(v verdict) {
	if v.ch == nil {
		return
	}
	id := v.ch.ID()
	if v.ch.Release() == nil && c.noteRelease != nil {
		c.noteRelease(id)
	}
}

// close stops the dispatcher and fails queued requests with ErrClosed.
// Idempotent.
func (c *coalescer) close() {
	c.quitOnce.Do(func() { close(c.quit) })
	<-c.done
}

// run is the dispatcher loop: wait for one request, gather the batch,
// fly it, repeat.
func (c *coalescer) run() {
	defer close(c.done)
	for {
		select {
		case <-c.quit:
			c.failQueued()
			return
		case p := <-c.reqs:
			c.fly(c.gather([]*pending{p}))
		}
	}
}

// gather accumulates requests into the batch: everything already queued
// always joins (that is the merge-while-in-flight behaviour); with a
// positive window the dispatcher also waits up to window for more.
func (c *coalescer) gather(batch []*pending) []*pending {
	for len(batch) < c.maxBatch {
		select {
		case p := <-c.reqs:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if c.window <= 0 || len(batch) >= c.maxBatch {
		return batch
	}
	timer := time.NewTimer(c.window)
	defer timer.Stop()
	for len(batch) < c.maxBatch {
		select {
		case p := <-c.reqs:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-c.quit:
			return batch
		}
	}
	return batch
}

// fly decides one merged batch. Requests whose context died while
// queued are answered with their context error without entering the
// kernel; requests whose context died during the flight are decided,
// then released if admitted.
func (c *coalescer) fly(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.out <- verdict{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	reqs := make([]rtether.EstablishReq, len(live))
	start := time.Now()
	var waitNs int64
	for i, p := range live {
		reqs[i] = rtether.EstablishReq{Spec: p.spec, Sinks: p.sinks}
		if w := start.Sub(p.enq).Nanoseconds(); w > waitNs {
			waitNs = w
		}
	}
	c.flights.Add(1)
	if n := int64(len(live)); n > c.maxMerged.Load() {
		c.maxMerged.Store(n)
	}
	chs, errs := c.net.EstablishEachMixed(reqs)
	admitDone := time.Now()
	accepted := 0
	for i, p := range live {
		ch, err := chs[i], errs[i]
		if ch != nil {
			accepted++
		}
		if c.note != nil {
			c.note(p.spec, p.sinks, ch, err)
		}
		if ch != nil && p.ctx.Err() != nil {
			// Admitted for a client that hung up: give the bandwidth back.
			id := ch.ID()
			if ch.Release() == nil && c.noteRelease != nil {
				c.noteRelease(id)
			}
			p.out <- verdict{err: p.ctx.Err()}
			continue
		}
		p.out <- verdict{ch: ch, err: err}
	}
	if c.noteFlight != nil {
		c.noteFlight(flightRecord{
			start:     start,
			merged:    len(live),
			waitNs:    waitNs,
			admitNs:   admitDone.Sub(start).Nanoseconds(),
			publishNs: time.Since(admitDone).Nanoseconds(),
			accepted:  accepted,
			rejected:  len(live) - accepted,
		})
	}
}

// failQueued rejects everything still queued at shutdown.
func (c *coalescer) failQueued() {
	for {
		select {
		case p := <-c.reqs:
			p.out <- verdict{err: rtether.ErrClosed}
		default:
			return
		}
	}
}
