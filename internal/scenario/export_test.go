package scenario

import (
	"strings"
	"testing"
)

const exportDoc = `{
  "name": "export",
  "slots": 1000,
  "seed": 3,
  "nodes": [1, 2, 3],
  "channels": [
    {"name": "a", "src": 1, "dst": 2, "c": 1, "p": 100, "d": 40},
    {"src": 2, "dst": 3, "c": 1, "p": 100, "d": 40},
    {"name": "late", "src": 1, "dst": 3, "c": 1, "p": 100, "d": 40}
  ],
  "events": [
    {"at": 100, "kind": "establish", "channel": "late"},
    {"at": 200, "kind": "release", "channel": "a"},
    {"at": 300, "kind": "reconfigure", "channel": "late", "d": 60}
  ],
  "churn": [
    {"name": "g", "rate": 0.05, "holdMean": 100, "sources": [1], "destinations": [2, 3],
     "c": 1, "p": 100, "d": 40}
  ]
}`

func TestBuildNetwork(t *testing.T) {
	sc, err := Load(strings.NewReader(exportDoc))
	if err != nil {
		t.Fatal(err)
	}
	net, err := sc.BuildNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	// The network is configured but unloaded: nodes exist, channels don't.
	if got := len(net.Channels()); got != 0 {
		t.Errorf("BuildNetwork established %d channels, want 0", got)
	}
	if _, err := net.Establish(sc.Channels[0].spec()); err != nil {
		t.Errorf("declared node missing from built network: %v", err)
	}
}

func TestBuildNetworkRejectsInvalidDoc(t *testing.T) {
	sc := &Scenario{Slots: 100} // no nodes
	if _, err := sc.BuildNetwork(0); err == nil {
		t.Error("invalid document built a network")
	}
}

func TestWorkload(t *testing.T) {
	sc, err := Load(strings.NewReader(exportDoc))
	if err != nil {
		t.Fatal(err)
	}
	items, skipped, err := sc.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the reconfigure)", skipped)
	}
	// Static channels first: "a" and the unnamed one ("late" is deferred
	// to its timeline establish).
	if len(items) < 4 {
		t.Fatalf("only %d items: %+v", len(items), items)
	}
	if items[0].Name != "a" || items[0].Release || items[1].Name != "" {
		t.Errorf("static load items wrong: %+v", items[:2])
	}
	seenLate, seenReleaseA, churnItems := false, false, 0
	established := map[string]bool{"a": true, "": true}
	for _, it := range items[2:] {
		if it.Release {
			if !established[it.Name] {
				t.Errorf("release of %q before its establish", it.Name)
			}
			established[it.Name] = false
			if it.Name == "a" {
				seenReleaseA = true
			}
			continue
		}
		established[it.Name] = true
		if it.Name == "late" {
			seenLate = true
			if it.At != 100 || it.Optional {
				t.Errorf("late item wrong: %+v", it)
			}
		}
		if strings.HasPrefix(it.Name, "g#") {
			churnItems++
			if !it.Optional {
				t.Errorf("churn arrival not optional: %+v", it)
			}
		}
	}
	if !seenLate || !seenReleaseA || churnItems == 0 {
		t.Errorf("workload incomplete: late=%v releaseA=%v churn=%d", seenLate, seenReleaseA, churnItems)
	}
	// Items must be replayable in order: At never decreases after the
	// static prefix.
	last := int64(0)
	for _, it := range items[2:] {
		if it.At < last {
			t.Fatalf("timeline out of order: %d after %d", it.At, last)
		}
		last = it.At
	}
}
