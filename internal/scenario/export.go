package scenario

import (
	"encoding/json"
	"fmt"

	"repro/rtether"
)

// Clone returns an independent deep copy of the document. The sweep
// orchestrator (internal/sweep) derives one variant per grid cell —
// overriding the scheme, churn rates, failure policy or seed — without
// mutating the loaded base scenario; the copy still needs Validate (or
// any runner, which validates implicitly) after its overrides land.
func (s *Scenario) Clone() *Scenario {
	// A Scenario is plain data (its own JSON document); the round trip
	// cannot fail and copies every nested slice.
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: clone marshal: %v", err))
	}
	var out Scenario
	if err := json.Unmarshal(b, &out); err != nil {
		panic(fmt.Sprintf("scenario: clone unmarshal: %v", err))
	}
	return &out
}

// BuildNetwork validates the document and constructs its configured —
// but unloaded — network: the layout (nodes or topology section), the
// partitioning scheme, discipline, shaping and propagation, with the
// admission verification pool sized by verifyWorkers (0 = GOMAXPROCS).
// extra options apply on top of the document's (cmd/rtetherd passes
// rtether.WithFullRecheck for -fullrecheck). No channel is established
// and no timeline event plays; this is how cmd/rtetherd hosts a
// scenario-described topology and lets clients drive the admission
// plane over the wire instead.
func (s *Scenario) BuildNetwork(verifyWorkers int, extra ...rtether.Option) (*rtether.Network, error) {
	if _, err := s.compile(); err != nil {
		return nil, err
	}
	return s.build(verifyWorkers, extra...)
}

// WorkItem is one flattened admission operation of a scenario: an
// establish (with the full spec) or a release of an earlier establish,
// identified by the channel's scenario name. Load generators
// (cmd/rtload) replay these against a remote daemon.
type WorkItem struct {
	// At is the scenario slot the operation was scheduled for. Load
	// generators are free to ignore it and replay at full speed; the
	// relative order of items sharing a Name must be preserved.
	At int64
	// Release marks a release of the named channel; otherwise the item
	// is an establish of Spec.
	Release bool
	// Name is the scenario channel name. It may be empty for statically
	// declared unnamed channels, which are never released later.
	Name string
	// Spec is the requested channel (establish items).
	Spec rtether.ChannelSpec
	// Sinks marks a multicast establish: one distribution tree from
	// Spec.Src over every sink, requested atomically (Spec.Dst is 0).
	Sinks []rtether.NodeID
	// Optional marks establishes whose rejection the scenario
	// tolerates (churn arrivals, optional channels).
	Optional bool
}

// Workload validates the document, synthesizes its churn generators and
// flattens the result into a replayable establish/release stream: first
// the static channel population in declaration order, then every
// timeline establish, establishAll (one item per batch member) and
// release in deterministic playback order. Reconfigure and
// setBackground events have no wire-operation equivalent and are
// counted in skipped instead.
func (s *Scenario) Workload() (items []WorkItem, skipped int, err error) {
	tl, err := s.compile()
	if err != nil {
		return nil, 0, err
	}
	for _, ch := range s.Channels {
		if ch.Name != "" && tl.deferred[ch.Name] {
			continue
		}
		items = append(items, WorkItem{
			Name: ch.Name, Spec: ch.spec(), Sinks: ch.mspec().Sinks, Optional: ch.Optional,
		})
	}
	for _, ev := range tl.events {
		switch ev.kind {
		case KindEstablish, KindEstablishAll:
			for _, name := range ev.names {
				def := tl.defs[name]
				items = append(items, WorkItem{
					At: ev.at, Name: name,
					Spec:     def.spec(),
					Sinks:    def.mspec().Sinks,
					Optional: ev.optional || def.Optional,
				})
			}
		case KindRelease:
			items = append(items, WorkItem{At: ev.at, Release: true, Name: ev.names[0]})
		default:
			skipped++
		}
	}
	return items, skipped, nil
}
