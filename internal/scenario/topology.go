package scenario

import (
	"fmt"

	"repro/rtether"
)

// TopologyDef is the declarative form of rtether.Topology: the switches,
// the full-duplex trunks between them, and which switch every end-node
// attaches to. A topology with a single switch is the degenerate star; a
// larger one turns the scenario into a routed multi-switch fabric whose
// deadlines are partitioned per hop (the scenario's "dps" maps to the
// hop-general H-SDPS/H-ADPS schemes).
type TopologyDef struct {
	Switches    []uint16    `json:"switches"`
	Trunks      [][2]uint16 `json:"trunks,omitempty"`
	Attachments []AttachDef `json:"attachments"`
}

// AttachDef homes one end-node on one switch.
type AttachDef struct {
	Node   uint16 `json:"node"`
	Switch uint16 `json:"switch"`
}

// validate checks the section and returns the set of attached end-nodes.
func (t *TopologyDef) validate() (map[uint16]bool, error) {
	if len(t.Switches) == 0 {
		return nil, fmt.Errorf("scenario: topology: no switches")
	}
	switches := make(map[uint16]bool, len(t.Switches))
	for _, sw := range t.Switches {
		if switches[sw] {
			return nil, fmt.Errorf("scenario: topology: duplicate switch %d", sw)
		}
		switches[sw] = true
	}
	for i, tr := range t.Trunks {
		if tr[0] == tr[1] {
			return nil, fmt.Errorf("scenario: topology: trunk %d connects switch %d to itself", i, tr[0])
		}
		for _, sw := range tr {
			if !switches[sw] {
				return nil, fmt.Errorf("scenario: topology: trunk %d references unknown switch %d", i, sw)
			}
		}
	}
	if len(t.Attachments) == 0 {
		return nil, fmt.Errorf("scenario: topology: no attachments (a scenario needs end-nodes)")
	}
	nodes := make(map[uint16]bool, len(t.Attachments))
	for i, at := range t.Attachments {
		if !switches[at.Switch] {
			return nil, fmt.Errorf("scenario: topology: attachment %d references unknown switch %d", i, at.Switch)
		}
		if nodes[at.Node] {
			return nil, fmt.Errorf("scenario: topology: node %d attached twice", at.Node)
		}
		nodes[at.Node] = true
	}
	return nodes, nil
}

// build materializes the section as an rtether.Topology.
func (t *TopologyDef) build() (*rtether.Topology, error) {
	top := rtether.NewTopology()
	for _, sw := range t.Switches {
		if err := top.AddSwitch(rtether.SwitchID(sw)); err != nil {
			return nil, fmt.Errorf("scenario: topology: %w", err)
		}
	}
	for _, tr := range t.Trunks {
		if err := top.Trunk(rtether.SwitchID(tr[0]), rtether.SwitchID(tr[1])); err != nil {
			return nil, fmt.Errorf("scenario: topology: %w", err)
		}
	}
	for _, at := range t.Attachments {
		if err := top.Attach(rtether.NodeID(at.Node), rtether.SwitchID(at.Switch)); err != nil {
			return nil, fmt.Errorf("scenario: topology: %w", err)
		}
	}
	return top, nil
}
