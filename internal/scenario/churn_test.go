package scenario

import (
	"fmt"
	"strings"
	"testing"
)

func churnDoc(gen string) string {
	return `{"slots":5000,"seed":3,"nodes":[1,2,3,4],"channels":[],"churn":[` + gen + `]}`
}

func TestChurnValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		gen  string
		want string
	}{
		{"no name", `{"rate":0.1,"holdMean":100,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "needs a name"},
		{"hash name", `{"name":"a#b","rate":0.1,"holdMean":100,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "'#'"},
		{"bad rate", `{"name":"g","rate":0,"holdMean":100,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "rate must be positive"},
		{"bad hold", `{"name":"g","rate":0.1,"holdMean":0,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "holdMean must be positive"},
		{"bad window", `{"name":"g","rate":0.1,"holdMean":100,"start":400,"end":300,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "window"},
		{"window past horizon", `{"name":"g","rate":0.1,"holdMean":100,"end":9000,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "window"},
		{"no sources", `{"name":"g","rate":0.1,"holdMean":100,"sources":[],"destinations":[2],"c":1,"p":100,"d":40}`, "sources and destinations"},
		{"unknown source", `{"name":"g","rate":0.1,"holdMean":100,"sources":[9],"destinations":[2],"c":1,"p":100,"d":40}`, "undeclared node"},
		{"unknown destination", `{"name":"g","rate":0.1,"holdMean":100,"sources":[1],"destinations":[9],"c":1,"p":100,"d":40}`, "undeclared node"},
		{"degenerate pools", `{"name":"g","rate":0.1,"holdMean":100,"sources":[1],"destinations":[1],"c":1,"p":100,"d":40}`, "source equals"},
		{"invalid template", `{"name":"g","rate":0.1,"holdMean":100,"sources":[1],"destinations":[2],"c":3,"p":100,"d":4}`, "template"},
		{"negative cap", `{"name":"g","rate":0.1,"holdMean":100,"maxConcurrent":-1,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`, "maxConcurrent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loadErr(t, churnDoc(tc.gen), tc.want)
		})
	}
	t.Run("overlapping pools accepted", func(t *testing.T) {
		// Sources[0] equals the only destination, but source 2 still has
		// a valid pair — the generator must load (synthesis skips the
		// degenerate draws).
		doc := churnDoc(`{"name":"g","rate":0.1,"holdMean":100,"sources":[1,2],"destinations":[1],"c":1,"p":100,"d":40}`)
		if _, err := Load(strings.NewReader(doc)); err != nil {
			t.Errorf("overlapping pools rejected: %v", err)
		}
	})
	t.Run("duplicate generator", func(t *testing.T) {
		g := `{"name":"g","rate":0.1,"holdMean":100,"sources":[1],"destinations":[2],"c":1,"p":100,"d":40}`
		loadErr(t, churnDoc(g+","+g), "duplicate generator")
	})
}

func TestChurnSynthesisDeterministic(t *testing.T) {
	doc := churnDoc(`{"name":"g","rate":0.05,"holdMean":400,"sources":[1,2],"destinations":[3,4],"c":1,"p":200,"d":80}`)
	expand := func() []timedEvent {
		s, err := Load(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		tl, err := s.timeline()
		if err != nil {
			t.Fatal(err)
		}
		return tl.events
	}
	a, b := expand(), expand()
	if len(a) == 0 {
		t.Fatal("generator produced no events")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same document expanded to different event streams")
	}
}

func TestChurnSeedChangesStream(t *testing.T) {
	gen := `{"name":"g","rate":0.05,"holdMean":400,"sources":[1,2],"destinations":[3,4],"c":1,"p":200,"d":80`
	load := func(extra string) []timedEvent {
		s, err := Load(strings.NewReader(churnDoc(gen + extra + `}`)))
		if err != nil {
			t.Fatal(err)
		}
		tl, err := s.timeline()
		if err != nil {
			t.Fatal(err)
		}
		return tl.events
	}
	if fmt.Sprint(load(``)) == fmt.Sprint(load(`,"seed":99`)) {
		t.Error("explicit seed did not change the stream")
	}
}

func TestChurnPairsEstablishAndRelease(t *testing.T) {
	doc := churnDoc(`{"name":"g","rate":0.05,"holdMean":200,"sources":[1,2],"destinations":[3,4],"c":1,"p":200,"d":80}`)
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.timeline()
	if err != nil {
		t.Fatal(err)
	}
	established := make(map[string]int64)
	for _, ev := range tl.events {
		name := ev.names[0]
		switch ev.kind {
		case KindEstablish:
			if !ev.optional {
				t.Errorf("churn establish %q not optional by default", name)
			}
			if _, dup := established[name]; dup {
				t.Errorf("channel %q established twice", name)
			}
			established[name] = ev.at
			def, ok := tl.defs[name]
			if !ok {
				t.Fatalf("no definition for churn channel %q", name)
			}
			if def.Src == def.Dst {
				t.Errorf("degenerate endpoints for %q", name)
			}
			if !tl.deferred[name] {
				t.Errorf("churn channel %q not deferred", name)
			}
		case KindRelease:
			at, ok := established[name]
			if !ok {
				t.Errorf("release of unestablished %q", name)
			}
			if ev.at <= at {
				t.Errorf("channel %q held for %d slots", name, ev.at-at)
			}
			if ev.at >= s.Slots {
				t.Errorf("release of %q past the horizon at %d", name, ev.at)
			}
		default:
			t.Errorf("churn synthesized a %s event", ev.kind)
		}
	}
	if len(established) == 0 {
		t.Fatal("no churn arrivals")
	}
}

func TestChurnMaxConcurrent(t *testing.T) {
	doc := churnDoc(`{"name":"g","rate":0.2,"holdMean":600,"maxConcurrent":2,"sources":[1,2],"destinations":[3,4],"c":1,"p":200,"d":80}`)
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.timeline()
	if err != nil {
		t.Fatal(err)
	}
	active, peak := 0, 0
	for _, ev := range tl.events {
		switch ev.kind {
		case KindEstablish:
			active++
		case KindRelease:
			active--
		}
		if active > peak {
			peak = active
		}
	}
	// Channels never released before the horizon stay active; the cap
	// bounds simultaneously-held channels at every instant.
	if peak > 2 {
		t.Errorf("concurrency peak %d exceeds cap 2", peak)
	}
}

func TestChurnWindowRespected(t *testing.T) {
	doc := churnDoc(`{"name":"g","rate":0.2,"holdMean":100,"start":1000,"end":2000,"sources":[1,2],"destinations":[3,4],"c":1,"p":200,"d":80}`)
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := s.timeline()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tl.events {
		if ev.kind == KindEstablish && (ev.at < 1000 || ev.at >= 2000) {
			t.Errorf("arrival at %d outside window [1000, 2000)", ev.at)
		}
	}
}

// TestChurnScenarioRuns drives a churn workload end to end on the star
// backend: arrivals establish over the wire mid-simulation, hold, and
// release, with admission rejections tolerated.
func TestChurnScenarioRuns(t *testing.T) {
	doc := `{"slots":3000,"seed":11,"nodes":[1,2,3,4],
		"channels":[{"src":1,"dst":3,"c":1,"p":100,"d":40}],
		"churn":[{"name":"g","rate":0.02,"holdMean":500,"sources":[1,2],"destinations":[3,4],"c":1,"p":200,"d":80}]}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no churn events played")
	}
	if res.Report.TotalMisses() != 0 {
		t.Errorf("misses: %d", res.Report.TotalMisses())
	}
	accepted, _, _ := res.EventCounts()
	if accepted == 0 {
		t.Error("no churn arrival was admitted")
	}
}
