// Package scenario loads declarative experiment descriptions from JSON
// and turns them into configured, loaded rtether networks. It exists so
// that experiments can be shared as data: cmd/rtsim -scenario plant.json
// runs the exact same deterministic simulation everywhere, and
// cmd/rtadmit -scenario plant.json replays the same timeline against the
// admission kernel alone.
//
// A scenario file describes
//
//   - the physical layout: either a flat "nodes" list (the paper's
//     single-switch star) or a "topology" section with switches, trunks
//     and node attachments (a routed multi-switch fabric),
//   - a static channel population established before time starts,
//   - optional best-effort background flows (star networks),
//   - an "events" timeline — establish, establishAll, release,
//     reconfigure and setBackground actions applied at given slots
//     mid-simulation, and
//   - "churn" generators — seeded arrival/holding-time processes that
//     synthesize establish/release event streams, for sustained
//     add/remove workloads at 10k+ channel scale.
//
// A minimal static scenario:
//
//	{
//	  "name": "packaging line",
//	  "dps": "adps",
//	  "slots": 5000,
//	  "nodes": [1, 2, 3],
//	  "channels": [
//	    {"src": 1, "dst": 2, "c": 3, "p": 100, "d": 40},
//	    {"src": 1, "dst": 3, "c": 2, "p": 50,  "d": 20, "offset": 7}
//	  ],
//	  "background": [
//	    {"src": 1, "dst": 3, "rate": 0.1}
//	  ]
//	}
//
// See docs/scenario-format.md for the complete schema reference,
// including a runnable dynamic multi-hop example.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/traffic"
	"repro/rtether"
)

// ChannelDef is one requested RT channel. Named channels can be referred
// to by timeline events; a channel whose first referencing event is an
// establishment is deferred to that event, every other channel is
// established before the measurement horizon starts.
type ChannelDef struct {
	// Name makes the channel addressable from the events timeline. Names
	// must be unique and must not contain '#' (reserved for channels
	// synthesized by churn generators).
	Name string `json:"name,omitempty"`
	Src  uint16 `json:"src"`
	Dst  uint16 `json:"dst"`
	// Sinks turns the channel into a multicast channel: one distribution
	// tree from Src to every listed sink, admitted atomically (dst must
	// be omitted). Multicast channels model publisher-driven topics:
	// their traffic source idles until a publish event triggers a burst.
	Sinks  []uint16 `json:"sinks,omitempty"`
	C      int64    `json:"c"`
	P      int64    `json:"p"`
	D      int64    `json:"d"`
	Offset int64    `json:"offset,omitempty"` // release phase, slots
	// Priority orders channels for failure recovery: a preempting
	// failure policy may evict strictly lower-priority channels to
	// re-home ones displaced by a linkDown/switchDown event. Higher is
	// more important; 0 (the default) preserves the paper's
	// priority-free behavior. Never consulted on a healthy network.
	Priority int32 `json:"priority,omitempty"`
	// Optional tolerates rejection: by default a rejected channel fails
	// the scenario (declared channels are presumed load-bearing).
	Optional bool `json:"optional,omitempty"`
}

// spec returns the channel's admission request.
func (c ChannelDef) spec() core.ChannelSpec {
	return core.ChannelSpec{
		Src: core.NodeID(c.Src), Dst: core.NodeID(c.Dst),
		C: c.C, P: c.P, D: c.D, Priority: c.Priority,
	}
}

// multicast reports whether the definition declares a sink set.
func (c ChannelDef) multicast() bool { return len(c.Sinks) > 0 }

// mspec returns the multicast admission request of a sinks-bearing
// definition.
func (c ChannelDef) mspec() core.MulticastSpec {
	sinks := make([]core.NodeID, len(c.Sinks))
	for i, s := range c.Sinks {
		sinks[i] = core.NodeID(s)
	}
	return core.MulticastSpec{Src: core.NodeID(c.Src), Sinks: sinks, C: c.C, P: c.P, D: c.D, Priority: c.Priority}
}

// BackgroundDef is one Poisson best-effort flow (star networks only; the
// fabric simulator carries RT traffic exclusively). Its rate can be
// changed mid-run by a setBackground event.
type BackgroundDef struct {
	Src  uint16  `json:"src"`
	Dst  uint16  `json:"dst"`
	Rate float64 `json:"rate"` // frames per slot
}

// Scenario is the root document.
type Scenario struct {
	Name          string `json:"name"`
	DPS           string `json:"dps,omitempty"`        // "sdps" (default) | "adps"; maps to H-SDPS/H-ADPS on fabrics
	Discipline    string `json:"discipline,omitempty"` // "edf" (default) | "fifo" | "dm"; star only
	Shaping       *bool  `json:"shaping,omitempty"`    // default true
	NonRTQueueCap int    `json:"nonRTQueueCap,omitempty"`
	Propagation   int64  `json:"propagation,omitempty"`
	Slots         int64  `json:"slots"`
	Seed          int64  `json:"seed,omitempty"`

	// FailurePolicy picks the network's degradation ladder for channels
	// displaced by linkDown/switchDown events that no longer fit:
	// "reject" (default) drops them, "degrade" retries each with a
	// relaxed deadline, "preempt" additionally evicts strictly
	// lower-priority channels to make room.
	FailurePolicy string `json:"failurePolicy,omitempty"`

	// Exactly one of Nodes and Topology describes the layout: a flat node
	// list is the paper's single-switch star, a topology section routes
	// channels across a fabric of switches.
	Nodes    []uint16     `json:"nodes,omitempty"`
	Topology *TopologyDef `json:"topology,omitempty"`

	Channels   []ChannelDef    `json:"channels"`
	Background []BackgroundDef `json:"background,omitempty"`
	// BackgroundTrace names a trace file (internal/traffic CSV or ndjson
	// format) whose timestamped arrivals are replayed as best-effort
	// frames on top of any declared Poisson flows — recorded load instead
	// of (or alongside) synthetic load. Star networks only, like the
	// background section. The path is resolved relative to the process
	// working directory; events at or past the scenario horizon are
	// dropped.
	BackgroundTrace string     `json:"backgroundTrace,omitempty"`
	Events          []EventDef `json:"events,omitempty"`
	Churn           []ChurnDef `json:"churn,omitempty"`
}

// Load parses and validates a scenario document.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the document for internal consistency: layout, channel
// specs, background flows, the events timeline (kinds, references, and
// the establish/release state machine) and the churn generators.
func (s *Scenario) Validate() error {
	_, err := s.compile()
	return err
}

// compile validates the document and returns its compiled timeline —
// validation and churn synthesis share the work, so runners pay for it
// once per execution.
func (s *Scenario) compile() (*timeline, error) {
	if s.Slots <= 0 {
		return nil, fmt.Errorf("scenario: slots must be positive, got %d", s.Slots)
	}
	nodeSet, err := s.nodeSet()
	if err != nil {
		return nil, err
	}
	if _, err := s.dps(); err != nil {
		return nil, err
	}
	if _, err := s.discipline(); err != nil {
		return nil, err
	}
	if _, err := s.failurePolicy(); err != nil {
		return nil, err
	}
	if s.Fabric() {
		if s.Discipline != "" && strings.ToLower(s.Discipline) != "edf" {
			return nil, fmt.Errorf("scenario: discipline %q: multi-switch topologies schedule EDF only", s.Discipline)
		}
		if s.NonRTQueueCap != 0 {
			return nil, fmt.Errorf("scenario: nonRTQueueCap: multi-switch topologies carry RT traffic only")
		}
		if len(s.Background) > 0 {
			return nil, fmt.Errorf("scenario: background flows need a star network (multi-switch topologies carry RT traffic only)")
		}
		if s.BackgroundTrace != "" {
			return nil, fmt.Errorf("scenario: backgroundTrace needs a star network (multi-switch topologies carry RT traffic only)")
		}
	}
	names := make(map[string]bool, len(s.Channels))
	for i, ch := range s.Channels {
		if ch.multicast() {
			if ch.Dst != 0 {
				return nil, fmt.Errorf("scenario: channel %d: dst and sinks are mutually exclusive", i)
			}
			if !nodeSet[ch.Src] {
				return nil, fmt.Errorf("scenario: channel %d references undeclared node", i)
			}
			for _, sink := range ch.Sinks {
				if !nodeSet[sink] {
					return nil, fmt.Errorf("scenario: channel %d: undeclared sink %d", i, sink)
				}
			}
			if err := ch.mspec().Validate(); err != nil {
				return nil, fmt.Errorf("scenario: channel %d: %w", i, err)
			}
		} else {
			if !nodeSet[ch.Src] || !nodeSet[ch.Dst] {
				return nil, fmt.Errorf("scenario: channel %d references undeclared node", i)
			}
			if err := ch.spec().Validate(); err != nil {
				return nil, fmt.Errorf("scenario: channel %d: %w", i, err)
			}
		}
		if ch.Offset < 0 {
			return nil, fmt.Errorf("scenario: channel %d: negative offset", i)
		}
		if ch.Name != "" {
			if strings.Contains(ch.Name, "#") {
				return nil, fmt.Errorf("scenario: channel %d: name %q contains '#' (reserved for churn channels)", i, ch.Name)
			}
			if names[ch.Name] {
				return nil, fmt.Errorf("scenario: duplicate channel name %q", ch.Name)
			}
			names[ch.Name] = true
		}
	}
	for i, bg := range s.Background {
		if !nodeSet[bg.Src] || !nodeSet[bg.Dst] {
			return nil, fmt.Errorf("scenario: background flow %d references undeclared node", i)
		}
		if bg.Rate <= 0 {
			return nil, fmt.Errorf("scenario: background flow %d: rate must be positive", i)
		}
	}
	var trace *traffic.Trace
	if s.BackgroundTrace != "" {
		tr, err := traffic.ReadTraceFile(s.BackgroundTrace)
		if err != nil {
			return nil, fmt.Errorf("scenario: backgroundTrace: %w", err)
		}
		for i, ev := range tr.Events {
			if !nodeSet[ev.Src] || !nodeSet[ev.Dst] {
				return nil, fmt.Errorf("scenario: backgroundTrace: event %d (slot %d) references undeclared node (%d→%d)", i, ev.At, ev.Src, ev.Dst)
			}
		}
		trace = tr
	}
	if err := s.validateEvents(names, nodeSet); err != nil {
		return nil, err
	}
	if err := s.validateChurn(nodeSet); err != nil {
		return nil, err
	}
	// The state machine needs the full synthesized timeline (declared
	// events and churn streams interleave on the same channels table).
	tl, err := s.timeline()
	if err != nil {
		return nil, err
	}
	tl.trace = trace
	return tl, nil
}

// Fabric reports whether the scenario runs on a routed multi-switch
// topology rather than the degenerate single-switch star — and is
// therefore subject to the fabric backend's limits: RT traffic only,
// EDF only, and no channel snapshots.
func (s *Scenario) Fabric() bool {
	return s.Topology != nil && len(s.Topology.Switches) > 1
}

// nodeSet collects the declared end-nodes from whichever layout section
// is present, validating the layout along the way.
func (s *Scenario) nodeSet() (map[uint16]bool, error) {
	if s.Topology != nil {
		if len(s.Nodes) > 0 {
			return nil, fmt.Errorf("scenario: nodes and topology are mutually exclusive (attach nodes in the topology section)")
		}
		return s.Topology.validate()
	}
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("scenario: no nodes")
	}
	set := make(map[uint16]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		if set[n] {
			return nil, fmt.Errorf("scenario: duplicate node %d", n)
		}
		set[n] = true
	}
	return set, nil
}

func (s *Scenario) dps() (core.DPS, error) {
	switch strings.ToLower(s.DPS) {
	case "", "sdps":
		return core.SDPS{}, nil
	case "adps":
		return core.ADPS{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown dps %q", s.DPS)
	}
}

func (s *Scenario) discipline() (sched.Discipline, error) {
	switch strings.ToLower(s.Discipline) {
	case "", "edf":
		return sched.DisciplineEDF, nil
	case "fifo":
		return sched.DisciplineFIFO, nil
	case "dm":
		return sched.DisciplineDM, nil
	default:
		return 0, fmt.Errorf("scenario: unknown discipline %q", s.Discipline)
	}
}

// failurePolicy resolves the declared degradation ladder.
func (s *Scenario) failurePolicy() (rtether.FailurePolicy, error) {
	switch strings.ToLower(s.FailurePolicy) {
	case "", "reject":
		return rtether.FailReject, nil
	case "degrade":
		return rtether.FailDegrade, nil
	case "preempt":
		return rtether.FailPreempt, nil
	default:
		return 0, fmt.Errorf("scenario: unknown failurePolicy %q", s.FailurePolicy)
	}
}

// build constructs the configured (but still unloaded) network for this
// scenario. verifyWorkers sizes the admission verification pool (0 =
// GOMAXPROCS); it never changes a decision. extra options apply after
// the document's own.
func (s *Scenario) build(verifyWorkers int, extra ...rtether.Option) (*rtether.Network, error) {
	dps, err := s.dps()
	if err != nil {
		return nil, err
	}
	disc, err := s.discipline()
	if err != nil {
		return nil, err
	}
	policy, err := s.failurePolicy()
	if err != nil {
		return nil, err
	}
	opts := []rtether.Option{
		rtether.WithDPS(dps),
		rtether.WithDiscipline(disc),
		rtether.WithFailurePolicy(policy),
		rtether.WithNonRTQueueCap(s.NonRTQueueCap),
		rtether.WithPropagation(s.Propagation),
		rtether.WithVerifyWorkers(verifyWorkers),
	}
	if s.Shaping != nil {
		opts = append(opts, rtether.WithShaping(*s.Shaping))
	}
	if s.Topology != nil {
		top, err := s.Topology.build()
		if err != nil {
			return nil, err
		}
		opts = append(opts, rtether.WithTopology(top))
	}
	opts = append(opts, extra...)
	net := rtether.New(opts...)
	if s.Topology == nil {
		for _, n := range s.Nodes {
			if err := net.AddNode(rtether.NodeID(n)); err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
		}
	}
	return net, nil
}
