// Package scenario loads declarative simulation descriptions from JSON
// and turns them into configured, loaded networks. It exists so that
// experiments can be shared as data: cmd/rtsim -scenario plant.json runs
// the exact same deterministic simulation everywhere.
//
// A scenario file:
//
//	{
//	  "name": "packaging line",
//	  "dps": "adps",
//	  "discipline": "edf",
//	  "nonRTQueueCap": 256,
//	  "slots": 5000,
//	  "nodes": [1, 2, 3],
//	  "channels": [
//	    {"src": 1, "dst": 2, "c": 3, "p": 100, "d": 40},
//	    {"src": 1, "dst": 3, "c": 2, "p": 50,  "d": 20, "offset": 7}
//	  ],
//	  "background": [
//	    {"src": 1, "dst": 3, "rate": 0.1}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// ChannelDef is one requested RT channel.
type ChannelDef struct {
	Src    uint16 `json:"src"`
	Dst    uint16 `json:"dst"`
	C      int64  `json:"c"`
	P      int64  `json:"p"`
	D      int64  `json:"d"`
	Offset int64  `json:"offset,omitempty"` // release phase, slots
	// Optional toleration of rejection: by default a rejected channel
	// fails the scenario (declared channels are presumed load-bearing).
	Optional bool `json:"optional,omitempty"`
}

// BackgroundDef is one Poisson best-effort flow.
type BackgroundDef struct {
	Src  uint16  `json:"src"`
	Dst  uint16  `json:"dst"`
	Rate float64 `json:"rate"` // frames per slot
}

// Scenario is the root document.
type Scenario struct {
	Name          string          `json:"name"`
	DPS           string          `json:"dps,omitempty"`        // "sdps" (default) | "adps"
	Discipline    string          `json:"discipline,omitempty"` // "edf" (default) | "fifo" | "dm"
	Shaping       *bool           `json:"shaping,omitempty"`    // default true
	NonRTQueueCap int             `json:"nonRTQueueCap,omitempty"`
	Propagation   int64           `json:"propagation,omitempty"`
	Slots         int64           `json:"slots"`
	Seed          int64           `json:"seed,omitempty"`
	Nodes         []uint16        `json:"nodes"`
	Channels      []ChannelDef    `json:"channels"`
	Background    []BackgroundDef `json:"background,omitempty"`
}

// Load parses and validates a scenario document.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the document for internal consistency.
func (s *Scenario) Validate() error {
	if s.Slots <= 0 {
		return fmt.Errorf("scenario: slots must be positive, got %d", s.Slots)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("scenario: no nodes")
	}
	nodeSet := make(map[uint16]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		if nodeSet[n] {
			return fmt.Errorf("scenario: duplicate node %d", n)
		}
		nodeSet[n] = true
	}
	if _, err := s.dps(); err != nil {
		return err
	}
	if _, err := s.discipline(); err != nil {
		return err
	}
	for i, ch := range s.Channels {
		if !nodeSet[ch.Src] || !nodeSet[ch.Dst] {
			return fmt.Errorf("scenario: channel %d references undeclared node", i)
		}
		spec := core.ChannelSpec{
			Src: core.NodeID(ch.Src), Dst: core.NodeID(ch.Dst),
			C: ch.C, P: ch.P, D: ch.D,
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("scenario: channel %d: %w", i, err)
		}
		if ch.Offset < 0 {
			return fmt.Errorf("scenario: channel %d: negative offset", i)
		}
	}
	for i, bg := range s.Background {
		if !nodeSet[bg.Src] || !nodeSet[bg.Dst] {
			return fmt.Errorf("scenario: background flow %d references undeclared node", i)
		}
		if bg.Rate <= 0 {
			return fmt.Errorf("scenario: background flow %d: rate must be positive", i)
		}
	}
	return nil
}

func (s *Scenario) dps() (core.DPS, error) {
	switch strings.ToLower(s.DPS) {
	case "", "sdps":
		return core.SDPS{}, nil
	case "adps":
		return core.ADPS{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown dps %q", s.DPS)
	}
}

func (s *Scenario) discipline() (sched.Discipline, error) {
	switch strings.ToLower(s.Discipline) {
	case "", "edf":
		return sched.DisciplineEDF, nil
	case "fifo":
		return sched.DisciplineFIFO, nil
	case "dm":
		return sched.DisciplineDM, nil
	default:
		return 0, fmt.Errorf("scenario: unknown discipline %q", s.Discipline)
	}
}

// Result is a completed scenario run.
type Result struct {
	Network  *netsim.Network
	Accepted []core.ChannelID
	Rejected int
	BgSent   int
	Report   *netsim.Report
}

// Run builds the network, establishes every channel over the wire,
// schedules background traffic and runs to the configured horizon.
func (s *Scenario) Run() (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dps, _ := s.dps()
	disc, _ := s.discipline()
	cfg := netsim.Config{
		DPS:           dps,
		Discipline:    disc,
		NonRTQueueCap: s.NonRTQueueCap,
		Propagation:   s.Propagation,
	}
	if s.Shaping != nil && !*s.Shaping {
		cfg.DisableShaping = true
	}
	net := netsim.New(cfg)
	for _, n := range s.Nodes {
		net.MustAddNode(core.NodeID(n))
	}

	res := &Result{Network: net}
	for i, ch := range s.Channels {
		spec := core.ChannelSpec{
			Src: core.NodeID(ch.Src), Dst: core.NodeID(ch.Dst),
			C: ch.C, P: ch.P, D: ch.D,
		}
		id, err := net.EstablishChannel(spec)
		if err != nil {
			if ch.Optional {
				res.Rejected++
				continue
			}
			return nil, fmt.Errorf("scenario: channel %d (%v) rejected: %w", i, spec, err)
		}
		if err := net.Node(spec.Src).StartTraffic(id, ch.Offset); err != nil {
			return nil, fmt.Errorf("scenario: channel %d: %w", i, err)
		}
		res.Accepted = append(res.Accepted, id)
	}

	start := net.Engine().Now()
	rng := rand.New(rand.NewSource(s.Seed + 1))
	for _, bg := range s.Background {
		src, dst := core.NodeID(bg.Src), core.NodeID(bg.Dst)
		for _, at := range traffic.PoissonArrivals(rng, bg.Rate, s.Slots) {
			src, dst := src, dst
			net.Engine().At(start+at, func() { net.Node(src).SendNonRT(dst, []byte("bg")) })
			res.BgSent++
		}
	}
	net.Run(start + s.Slots)
	res.Report = net.Report()
	return res, nil
}
