package scenario

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/traffic"
)

// ChurnDef is a parameterized channel churn generator: a seeded Poisson
// arrival process over a window of the run, where every arrival
// establishes a fresh channel (endpoints drawn from the configured
// pools, parameters from the template) and holds it for an
// exponentially distributed time before releasing it. Generators
// synthesize plain establish/release timeline events at load time, so a
// churn workload replays deterministically — same document, same seed,
// same event stream — and scales to 10k+ channels without a single
// hand-written event.
type ChurnDef struct {
	// Name prefixes the synthesized channels ("<name>#<k>" for arrival
	// k); it must be unique among generators and non-empty.
	Name string `json:"name"`
	// Seed seeds this generator's private random stream. 0 derives one
	// from the scenario seed and the generator's position, so distinct
	// generators never share a stream.
	Seed int64 `json:"seed,omitempty"`
	// Rate is the mean channel arrival rate in channels per slot.
	Rate float64 `json:"rate"`
	// HoldMean is the mean holding time in slots (exponentially
	// distributed, minimum 1 slot). A channel whose holding time crosses
	// the scenario horizon is simply never released.
	HoldMean int64 `json:"holdMean"`
	// Start and End bound the arrival window in slots; End 0 means the
	// scenario horizon.
	Start int64 `json:"start,omitempty"`
	End   int64 `json:"end,omitempty"`
	// Sources and Destinations are the endpoint pools arrivals draw from
	// (uniformly, source and destination always distinct when the pools
	// allow it).
	Sources      []uint16 `json:"sources"`
	Destinations []uint16 `json:"destinations"`
	// C, P, D is the channel template every arrival requests.
	C int64 `json:"c"`
	P int64 `json:"p"`
	D int64 `json:"d"`
	// MaxConcurrent caps the generator's simultaneously-held channels;
	// arrivals past the cap are dropped. 0 = uncapped.
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// Mandatory makes admission rejections fatal to the run. By default
	// churn arrivals are optional — saturating the network is usually the
	// point of a churn experiment, and rejected arrivals are reported in
	// the per-event outcomes.
	Mandatory bool `json:"mandatory,omitempty"`
}

// validateChurn checks every generator definition.
func (s *Scenario) validateChurn(nodeSet map[uint16]bool) error {
	names := make(map[string]bool, len(s.Churn))
	for i, g := range s.Churn {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("scenario: churn %d (%q): %s", i, g.Name, fmt.Sprintf(format, args...))
		}
		if g.Name == "" {
			return fmt.Errorf("scenario: churn %d: generator needs a name", i)
		}
		if strings.Contains(g.Name, "#") {
			return fail("name contains '#'")
		}
		if names[g.Name] {
			return fail("duplicate generator name")
		}
		names[g.Name] = true
		if g.Rate <= 0 {
			return fail("rate must be positive")
		}
		if g.HoldMean <= 0 {
			return fail("holdMean must be positive")
		}
		end := g.End
		if end == 0 {
			end = s.Slots
		}
		if g.Start < 0 || end > s.Slots || g.Start >= end {
			return fail("window [%d, %d) outside [0, %d)", g.Start, end, s.Slots)
		}
		if len(g.Sources) == 0 || len(g.Destinations) == 0 {
			return fail("needs sources and destinations")
		}
		for _, n := range g.Sources {
			if !nodeSet[n] {
				return fail("source %d references undeclared node", n)
			}
		}
		for _, n := range g.Destinations {
			if !nodeSet[n] {
				return fail("destination %d references undeclared node", n)
			}
		}
		if g.MaxConcurrent < 0 {
			return fail("negative maxConcurrent")
		}
		// Template validity, endpoint-independent: run the spec check on
		// the first non-degenerate (src, dst) pair anywhere in the pools
		// (synthesis skips degenerate draws, so one valid pair suffices).
		src, dst, ok := pairFrom(g.Sources, g.Destinations)
		if !ok {
			return fail("every source equals every destination")
		}
		spec := core.ChannelSpec{Src: core.NodeID(src), Dst: core.NodeID(dst), C: g.C, P: g.P, D: g.D}
		if err := spec.Validate(); err != nil {
			return fail("template: %v", err)
		}
	}
	return nil
}

// pairFrom returns the first distinct (src, dst) pair across the two
// pools, if any.
func pairFrom(sources, dests []uint16) (src, dst uint16, ok bool) {
	for _, s := range sources {
		for _, d := range dests {
			if s != d {
				return s, d, true
			}
		}
	}
	return 0, 0, false
}

// releaseHeap orders pending release slots, for the MaxConcurrent
// accounting during synthesis.
type releaseHeap []int64

func (h releaseHeap) Len() int           { return len(h) }
func (h releaseHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h releaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *releaseHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// synthesize expands one generator (the gen'th, numbering events from
// seq) into establish/release events and channel definitions appended to
// the timeline. It returns the number of events emitted. Everything is
// driven by the generator's private seeded stream, so the expansion is a
// pure function of the document.
func (g *ChurnDef) synthesize(s *Scenario, gen, seq int, tl *timeline) (int, error) {
	seed := g.Seed
	if seed == 0 {
		// Mix the scenario seed with the generator index so generators
		// get distinct deterministic streams.
		seed = s.Seed*1_000_003 + int64(gen) + 1
	}
	rng := rand.New(rand.NewSource(seed))
	end := g.End
	if end == 0 {
		end = s.Slots
	}
	optional := !g.Mandatory
	var active releaseHeap
	emitted := 0
	for k, at := range traffic.PoissonArrivals(rng, g.Rate, end-g.Start) {
		at += g.Start
		// Endpoints first, holding time second: the draw order is part of
		// the format's determinism contract, so keep it stable.
		src := g.Sources[rng.Intn(len(g.Sources))]
		dst := g.Destinations[rng.Intn(len(g.Destinations))]
		for tries := 0; src == dst && tries < 16; tries++ {
			dst = g.Destinations[rng.Intn(len(g.Destinations))]
		}
		hold := int64(rng.ExpFloat64() * float64(g.HoldMean))
		if hold < 1 {
			hold = 1
		}
		if src == dst {
			continue // degenerate pools; the draw still consumed rng state
		}
		for len(active) > 0 && active[0] <= at {
			heap.Pop(&active)
		}
		if g.MaxConcurrent > 0 && len(active) >= g.MaxConcurrent {
			continue
		}
		name := fmt.Sprintf("%s#%d", g.Name, k)
		tl.defs[name] = ChannelDef{
			Name: name, Src: src, Dst: dst,
			C: g.C, P: g.P, D: g.D, Optional: optional,
		}
		tl.deferred[name] = true
		tl.events = append(tl.events, timedEvent{
			at: at, seq: seq + emitted, kind: KindEstablish,
			names: []string{name}, optional: optional,
		})
		emitted++
		release := at + hold
		if release < s.Slots {
			tl.events = append(tl.events, timedEvent{
				at: release, seq: seq + emitted, kind: KindRelease,
				names: []string{name},
			})
			emitted++
			heap.Push(&active, release)
		} else {
			heap.Push(&active, s.Slots)
		}
	}
	return emitted, nil
}
