package scenario

import (
	"strings"
	"testing"
)

// ringDoc is a 4-switch ring scenario skeleton: nodes 1..8, two per
// switch, with %s slots for failurePolicy (may be empty), channel list
// and event list.
const ringDoc = `{
	"name": "ring-failures",
	"dps": "adps",
	"slots": 1500,
	%s
	"topology": {
		"switches": [0, 1, 2, 3],
		"trunks": [[0, 1], [1, 2], [2, 3], [3, 0]],
		"attachments": [
			{"node": 1, "switch": 0}, {"node": 2, "switch": 0},
			{"node": 3, "switch": 1}, {"node": 4, "switch": 1},
			{"node": 5, "switch": 2}, {"node": 6, "switch": 2},
			{"node": 7, "switch": 3}, {"node": 8, "switch": 3}
		]
	},
	"channels": %s,
	"events": %s
}`

// TestRunFailureTimeline drives a linkDown/repair cycle through a full
// scenario run: the reroutable channel survives, the tight one is lost
// under the default reject policy, later events on the lost channel are
// skipped rather than failing the run, and repair applies cleanly.
func TestRunFailureTimeline(t *testing.T) {
	channels := `[
		{"name": "agile", "src": 1, "dst": 3, "c": 2, "p": 100, "d": 40},
		{"name": "doomed", "src": 2, "dst": 4, "c": 10, "p": 100, "d": 34}
	]`
	events := `[
		{"at": 300, "kind": "linkDown", "link": [0, 1]},
		{"at": 600, "kind": "release", "channel": "doomed"},
		{"at": 900, "kind": "repair", "link": [0, 1]},
		{"at": 1200, "kind": "release", "channel": "agile"}
	]`
	s, err := Load(strings.NewReader(sprintfDoc("", channels, events)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 2 {
		t.Fatalf("static accepted %d, want 2", len(res.Accepted))
	}
	down := res.Events[0]
	if !down.Accepted || down.Subject != "trunk 0-1" {
		t.Fatalf("linkDown outcome = %+v", down)
	}
	if !strings.Contains(down.Detail, "2 affected") ||
		!strings.Contains(down.Detail, "1 rerouted") ||
		!strings.Contains(down.Detail, "1 lost") {
		t.Fatalf("linkDown detail = %q, want 2 affected: 1 rerouted, 1 lost", down.Detail)
	}
	if rel := res.Events[1]; !rel.Skipped || !strings.Contains(rel.Detail, "closed by failure recovery") {
		t.Fatalf("release of lost channel = %+v, want skip", rel)
	}
	if rep := res.Events[2]; !rep.Accepted || !strings.Contains(rep.Detail, "no channels affected") {
		t.Fatalf("repair outcome = %+v", rep)
	}
	if rel := res.Events[3]; !rel.Accepted {
		t.Fatalf("release of surviving channel = %+v", rel)
	}
}

// TestRunFailurePolicies exercises the declared policy ladder: the same
// squeeze degrades under "degrade" and preempts a lower-priority victim
// under "preempt".
func TestRunFailurePolicies(t *testing.T) {
	t.Run("degrade", func(t *testing.T) {
		channels := `[{"name": "tight", "src": 2, "dst": 4, "c": 10, "p": 100, "d": 34}]`
		events := `[{"at": 300, "kind": "linkDown", "link": [0, 1]}]`
		s, err := Load(strings.NewReader(sprintfDoc(`"failurePolicy": "degrade",`, channels, events)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if d := res.Events[0].Detail; !strings.Contains(d, "1 degraded") {
			t.Fatalf("degrade detail = %q", d)
		}
	})
	t.Run("preempt", func(t *testing.T) {
		channels := `[
			{"name": "victim", "src": 2, "dst": 8, "c": 9, "p": 10, "d": 40},
			{"name": "vip", "src": 1, "dst": 3, "c": 2, "p": 10, "d": 40, "priority": 5}
		]`
		events := `[{"at": 300, "kind": "linkDown", "link": [0, 1]}]`
		s, err := Load(strings.NewReader(sprintfDoc(`"failurePolicy": "preempt",`, channels, events)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		d := res.Events[0].Detail
		if !strings.Contains(d, "1 rerouted") || !strings.Contains(d, "1 preempted") {
			t.Fatalf("preempt detail = %q, want 1 rerouted + 1 preempted", d)
		}
	})
}

// sprintfDoc fills the ringDoc skeleton without pulling fmt's %-escape
// rules into the JSON literals.
func sprintfDoc(policy, channels, events string) string {
	doc := strings.Replace(ringDoc, "%s", policy, 1)
	doc = strings.Replace(doc, "%s", channels, 1)
	return strings.Replace(doc, "%s", events, 1)
}

// TestFailureEventValidation table-drives the load-time checks on
// failure events and the failurePolicy field.
func TestFailureEventValidation(t *testing.T) {
	okChannels := `[{"name": "a", "src": 1, "dst": 3, "c": 2, "p": 100, "d": 40}]`
	cases := []struct {
		name   string
		policy string
		events string
		want   string
	}{
		{"linkDown without link", "", `[{"at":10,"kind":"linkDown"}]`, "link pair"},
		{"linkDown with switch", "", `[{"at":10,"kind":"linkDown","switch":1}]`, "link pair"},
		{"switchDown without switch", "", `[{"at":10,"kind":"switchDown"}]`, "takes a switch"},
		{"switchDown with link", "", `[{"at":10,"kind":"switchDown","link":[0,1]}]`, "takes a switch"},
		{"repair with both", "", `[{"at":10,"kind":"repair","link":[0,1],"switch":1}]`, "exactly one"},
		{"repair with neither", "", `[{"at":10,"kind":"repair"}]`, "exactly one"},
		{"unknown trunk", "", `[{"at":10,"kind":"linkDown","link":[0,2]}]`, "no trunk"},
		{"malformed link", "", `[{"at":10,"kind":"linkDown","link":[0,1,2]}]`, "switch pair"},
		{"unknown switch", "", `[{"at":10,"kind":"switchDown","switch":9}]`, "unknown switch"},
		{"channel on failure", "", `[{"at":10,"kind":"linkDown","link":[0,1],"channel":"a"}]`, "not channels"},
		{"link on establish", "", `[{"at":10,"kind":"release","channel":"a","link":[0,1]}]`, "does not take link"},
		{"bad policy", `"failurePolicy": "panic",`, `[]`, "failurePolicy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loadErr(t, sprintfDoc(tc.policy, okChannels, tc.events), tc.want)
		})
	}

	// Failure events need a fabric: the same timeline on a star is
	// rejected at load time.
	starDoc := `{"slots":1000,"nodes":[1,2],
		"channels":[{"name":"a","src":1,"dst":2,"c":2,"p":100,"d":40}],
		"events":[{"at":10,"kind":"linkDown","link":[0,1]}]}`
	loadErr(t, starDoc, "multi-switch")
}
