package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/traffic"
	"repro/rtether"
)

// EventOutcome records what one timeline event did when it was applied.
type EventOutcome struct {
	At      int64  // scenario slot the event was scheduled for
	Kind    string // event kind (KindEstablish, ...)
	Subject string // channel name(s), or "src→dst" for setBackground
	// Accepted is true when the event applied cleanly (admission said
	// yes, the release went through, the rate change was recorded).
	Accepted bool
	// Skipped marks a release or reconfigure of a channel whose earlier
	// optional establishment was rejected — there is nothing to act on.
	Skipped bool
	// Detail carries the admission outcome: assigned IDs and per-hop
	// budgets on acceptance, the *AdmissionError text on rejection.
	Detail string
}

// Result is a completed scenario run (or admission-only replay).
type Result struct {
	Network *rtether.Network
	// Accepted and Rejected cover the static load phase: the channels
	// established before the measurement horizon starts.
	Accepted []rtether.ChannelID
	Rejected int
	// Events holds one outcome per timeline event, in playback order.
	Events []EventOutcome
	// BgSent counts scheduled best-effort frames (full runs only).
	BgSent int
	// Report is the final measurement snapshot; nil for Replay, which
	// never advances virtual time.
	Report *rtether.Report
}

// String renders the outcome as one fixed-width report line:
//
//	slot 200    establish     video            ACCEPT RT#7[6+16+16+10]
func (ev EventOutcome) String() string {
	verdict := "REJECT"
	switch {
	case ev.Skipped:
		verdict = "SKIP"
	case ev.Accepted:
		verdict = "OK"
		if ev.Kind == KindEstablish || ev.Kind == KindEstablishAll || ev.Kind == KindReconfigure {
			verdict = "ACCEPT"
		}
	}
	line := fmt.Sprintf("slot %-6d %-13s %-16s %s", ev.At, ev.Kind, ev.Subject, verdict)
	if ev.Detail != "" {
		line += " " + ev.Detail
	}
	return line
}

// EventCounts sums the timeline outcomes: events that applied cleanly,
// admission rejections (tolerated ones — fatal rejections abort the
// run), and events skipped because their channel was never established.
func (r *Result) EventCounts() (accepted, rejected, skipped int) {
	for _, ev := range r.Events {
		switch {
		case ev.Skipped:
			skipped++
		case ev.Accepted:
			accepted++
		default:
			rejected++
		}
	}
	return
}

// Run builds the network, establishes the static channel population over
// the wire, schedules background traffic, plays the event timeline at
// its slots, and runs the simulation to the configured horizon.
//
// Runs are deterministic: the same document produces byte-identical
// results everywhere, including the synthesized churn streams.
func (s *Scenario) Run() (*Result, error) {
	return s.execute(0, true)
}

// Replay plays the same timeline against admission control alone: every
// establishment goes through the management plane (no wire handshake),
// no traffic source is started, and no virtual time passes. It answers
// "which decisions would this workload produce" at full speed — the
// what-if mode of cmd/rtadmit -scenario and the engine under
// BenchmarkScenarioChurn. verifyWorkers sizes the admission verification
// pool (0 = GOMAXPROCS); decisions are identical at every setting.
func (s *Scenario) Replay(verifyWorkers int) (*Result, error) {
	return s.execute(verifyWorkers, false)
}

func (s *Scenario) execute(verifyWorkers int, simulate bool) (*Result, error) {
	// One compile pass covers validation and churn synthesis.
	tl, err := s.compile()
	if err != nil {
		return nil, err
	}
	net, err := s.build(verifyWorkers)
	if err != nil {
		return nil, err
	}
	res := &Result{Network: net}
	handles := make(map[string]*rtether.Channel, len(tl.defs))

	// Static load phase: every channel not deferred to a timeline event,
	// in declaration order. Establishment runs over the wire on stars —
	// the paper's protocol — so it consumes virtual time; Replay takes
	// the management plane instead.
	for i, ch := range s.Channels {
		if ch.Name != "" && tl.deferred[ch.Name] {
			continue
		}
		h, err := s.establishDef(net, ch, simulate)
		if err != nil {
			if ch.Optional {
				res.Rejected++
				continue
			}
			return nil, fmt.Errorf("scenario: channel %d (%v) rejected: %w", i, ch.spec(), err)
		}
		if ch.Name != "" {
			handles[ch.Name] = h
		}
		// Multicast sources stay idle until a publish event triggers a
		// burst; unicast channels stream periodically from the start.
		if simulate && !ch.multicast() {
			if err := h.Start(ch.Offset); err != nil {
				return nil, fmt.Errorf("scenario: channel %d: %w", i, err)
			}
		}
		res.Accepted = append(res.Accepted, h.ID())
	}

	start := net.Now()
	if simulate {
		res.BgSent = s.scheduleBackground(net, tl, start)
	}

	for _, ev := range tl.events {
		if simulate {
			net.RunUntil(start + ev.at)
		}
		out, err := s.applyEvent(net, tl, handles, ev, simulate)
		res.Events = append(res.Events, out)
		if err != nil {
			return nil, err
		}
	}

	if simulate {
		net.RunUntil(start + s.Slots)
		res.Report = net.Report()
	}
	return res, nil
}

// establishOne requests a single channel: over the wire when simulating
// (stars play the establishment handshake; fabrics have none), through
// the management-plane batch path in replay mode so no virtual time
// passes. The admission decision is the same either way — both paths run
// the same kernel.
func (s *Scenario) establishOne(net *rtether.Network, spec rtether.ChannelSpec, simulate bool) (*rtether.Channel, error) {
	if simulate {
		return net.Establish(spec)
	}
	chs, err := net.EstablishAll([]rtether.ChannelSpec{spec})
	if err != nil {
		return nil, err
	}
	return chs[0], nil
}

// establishDef requests a declared channel, dispatching on its kind:
// multicast definitions admit their whole distribution tree atomically
// through the management plane (there is no wire handshake for trees,
// so no virtual time passes in either mode).
func (s *Scenario) establishDef(net *rtether.Network, def ChannelDef, simulate bool) (*rtether.Channel, error) {
	if def.multicast() {
		return net.EstablishMulticast(def.mspec())
	}
	return s.establishOne(net, def.spec(), simulate)
}

// applyEvent executes one timeline event against the live network. The
// returned error is non-nil only for fatal conditions (a mandatory
// rejection or an internal inconsistency); tolerated rejections land in
// the outcome.
func (s *Scenario) applyEvent(net *rtether.Network, tl *timeline, handles map[string]*rtether.Channel, ev timedEvent, simulate bool) (EventOutcome, error) {
	out := EventOutcome{At: ev.at, Kind: ev.kind, Subject: strings.Join(ev.names, ",")}
	fatal := func(err error) (EventOutcome, error) {
		out.Detail = err.Error()
		return out, fmt.Errorf("scenario: slot %d: %s %s rejected: %w", ev.at, ev.kind, out.Subject, err)
	}
	switch ev.kind {
	case KindEstablish:
		name := ev.names[0]
		def := tl.defs[name]
		h, err := s.establishDef(net, def, simulate)
		if err != nil {
			if !ev.optional {
				return fatal(err)
			}
			out.Detail = err.Error()
			return out, nil
		}
		handles[name] = h
		if simulate && !def.multicast() {
			if err := h.Start(startOffset(ev, def)); err != nil {
				return fatal(err)
			}
		}
		out.Accepted = true
		out.Detail = describe(h)
	case KindEstablishAll:
		specs := make([]rtether.ChannelSpec, len(ev.names))
		for i, name := range ev.names {
			specs[i] = tl.defs[name].spec()
		}
		chs, err := net.EstablishAll(specs)
		if err != nil {
			if !ev.optional {
				return fatal(err)
			}
			out.Detail = err.Error()
			return out, nil
		}
		ids := make([]string, len(chs))
		for i, h := range chs {
			name := ev.names[i]
			handles[name] = h
			if simulate {
				if err := h.Start(startOffset(ev, tl.defs[name])); err != nil {
					return fatal(err)
				}
			}
			ids[i] = describe(h)
		}
		out.Accepted = true
		out.Detail = strings.Join(ids, " ")
	case KindRelease:
		name := ev.names[0]
		h := handles[name]
		if h == nil {
			out.Skipped = true
			out.Detail = "never established"
			return out, nil
		}
		if err := h.Release(); err != nil {
			// The channel was torn down behind the scenario's back by a
			// failure-recovery pass (preempted or lost); nothing to free.
			if errors.Is(err, rtether.ErrChannelClosed) {
				delete(handles, name)
				out.Skipped = true
				out.Detail = "closed by failure recovery"
				return out, nil
			}
			return fatal(err)
		}
		delete(handles, name)
		out.Accepted = true
	case KindReconfigure:
		name := ev.names[0]
		h := handles[name]
		if h == nil {
			out.Skipped = true
			out.Detail = "never established"
			return out, nil
		}
		spec := reconfigured(h.Spec(), ev)
		if err := h.Release(); err != nil {
			if errors.Is(err, rtether.ErrChannelClosed) {
				delete(handles, name)
				out.Skipped = true
				out.Detail = "closed by failure recovery"
				return out, nil
			}
			return fatal(err)
		}
		delete(handles, name)
		nh, err := s.establishOne(net, spec, simulate)
		if err != nil {
			// The old reservation is already gone; a tolerated rejection
			// leaves the channel released.
			if !ev.optional {
				return fatal(err)
			}
			out.Detail = err.Error()
			return out, nil
		}
		handles[name] = nh
		if simulate {
			if err := nh.Start(startOffset(ev, tl.defs[name])); err != nil {
				return fatal(err)
			}
		}
		out.Accepted = true
		out.Detail = describe(nh)
	case KindPublish:
		name := ev.names[0]
		h := handles[name]
		if h == nil {
			out.Skipped = true
			out.Detail = "never established"
			return out, nil
		}
		count := ev.count
		if count == 0 {
			count = 1
		}
		out.Detail = fmt.Sprintf("%d msg", count)
		if simulate {
			// A burst is the channel's periodic source running for count
			// periods: attach it now, detach it after the last release.
			// Validation guarantees bursts on one channel never overlap; a
			// mid-burst release just makes the scheduled stop a no-op.
			if err := h.Start(ev.offset); err != nil {
				if errors.Is(err, rtether.ErrChannelClosed) {
					out.Skipped = true
					out.Detail = "closed by failure recovery"
					return out, nil
				}
				return fatal(err)
			}
			stopAt := net.Now() + ev.offset + (count-1)*h.Spec().P + 1
			net.Schedule(stopAt, func() { _ = h.Stop() })
		}
		out.Accepted = true
	case KindSetBackground:
		// The rate change itself was folded into the pre-scheduled
		// arrival processes (scheduleBackground); in replay mode there is
		// no traffic at all. Either way the event just records itself.
		out.Subject = fmt.Sprintf("%d→%d", ev.src, ev.dst)
		out.Accepted = true
		out.Detail = fmt.Sprintf("rate=%g", ev.rate)
	case KindLinkDown, KindSwitchDown, KindRepair:
		up := ev.kind == KindRepair
		var rep *rtether.FailoverReport
		var err error
		if ev.sw != nil {
			out.Subject = fmt.Sprintf("switch %d", *ev.sw)
			rep, err = net.SetSwitchUp(rtether.SwitchID(*ev.sw), up)
		} else {
			out.Subject = fmt.Sprintf("trunk %d-%d", ev.link[0], ev.link[1])
			rep, err = net.SetLinkUp(rtether.SwitchID(ev.link[0]), rtether.SwitchID(ev.link[1]), up)
		}
		if err != nil {
			return fatal(err)
		}
		// A failure event applies cleanly even when the policy ladder
		// loses channels — that is the declared policy deciding, not the
		// scenario failing. Handles closed here surface as SKIP on later
		// events that reference them.
		out.Accepted = true
		out.Detail = summarizeFailover(rep)
	}
	return out, nil
}

// summarizeFailover condenses a recovery pass for the event log:
// "3 affected: 2 rerouted, 1 lost".
func summarizeFailover(rep *rtether.FailoverReport) string {
	if rep.Affected == 0 {
		return "no channels affected"
	}
	var parts []string
	for _, o := range []rtether.FailoverOutcome{
		rtether.Rerouted, rtether.Degraded, rtether.Preempted, rtether.Lost,
	} {
		if n := rep.Count(o); n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, o))
		}
	}
	return fmt.Sprintf("%d affected: %s", rep.Affected, strings.Join(parts, ", "))
}

// startOffset picks the traffic release phase for a (re)established
// channel: the event's offset when given, the channel's declared one
// otherwise.
func startOffset(ev timedEvent, def ChannelDef) int64 {
	if ev.offset > 0 {
		return ev.offset
	}
	return def.Offset
}

// describe formats a channel's identity and committed per-hop budgets
// for event outcomes: "RT#3[20+20]".
func describe(h *rtether.Channel) string {
	parts := h.Budgets()
	strs := make([]string, len(parts))
	for i, b := range parts {
		strs[i] = fmt.Sprintf("%d", b)
	}
	return fmt.Sprintf("RT#%d[%s]", h.ID(), strings.Join(strs, "+"))
}

// bgSegment is one constant-rate stretch of a background flow.
type bgSegment struct {
	from, to int64
	rate     float64
}

// scheduleBackground pre-schedules every best-effort arrival for the
// whole run. Flows are piecewise-constant-rate processes: the declared
// background section sets the initial rates and setBackground events
// switch a flow's rate at their slot. Arrivals are drawn flow by flow,
// segment by segment from one seeded stream, so the same document always
// produces the same arrival slots (and a document without setBackground
// events draws exactly the sequence older single-rate scenarios did).
func (s *Scenario) scheduleBackground(net *rtether.Network, tl *timeline, start int64) int {
	type flow struct {
		src, dst uint16
		segs     []bgSegment
	}
	var flows []*flow
	index := make(map[[2]uint16]*flow)
	ensure := func(src, dst uint16, initial float64) *flow {
		key := [2]uint16{src, dst}
		if f := index[key]; f != nil {
			return f
		}
		f := &flow{src: src, dst: dst, segs: []bgSegment{{from: 0, to: s.Slots, rate: initial}}}
		index[key] = f
		flows = append(flows, f)
		return f
	}
	for _, bg := range s.Background {
		ensure(bg.Src, bg.Dst, bg.Rate)
	}
	for _, ev := range tl.events {
		if ev.kind != KindSetBackground {
			continue
		}
		f := ensure(ev.src, ev.dst, 0)
		last := &f.segs[len(f.segs)-1]
		if last.from == ev.at {
			last.rate = ev.rate // same-slot override: the later event wins
			continue
		}
		last.to = ev.at
		f.segs = append(f.segs, bgSegment{from: ev.at, to: s.Slots, rate: ev.rate})
	}

	rng := rand.New(rand.NewSource(s.Seed + 1))
	sent := 0
	for _, f := range flows {
		src, dst := rtether.NodeID(f.src), rtether.NodeID(f.dst)
		for _, seg := range f.segs {
			if seg.rate <= 0 || seg.to <= seg.from {
				continue
			}
			for _, at := range traffic.PoissonArrivals(rng, seg.rate, seg.to-seg.from) {
				t := start + seg.from + at
				net.Schedule(t, func() { net.SendBestEffort(src, dst, []byte("bg")) })
				sent++
			}
		}
	}
	// Recorded load on top: the backgroundTrace arrivals replay at their
	// recorded slots, no randomness involved — the same file always
	// injects the identical frame sequence. Events past the horizon are
	// dropped (they could never be delivered inside the run).
	if tl.trace != nil {
		for _, ev := range tl.trace.Events {
			if ev.At >= s.Slots {
				break // the trace is time-ordered; nothing later fits either
			}
			src, dst := rtether.NodeID(ev.Src), rtether.NodeID(ev.Dst)
			net.Schedule(start+ev.At, func() { net.SendBestEffort(src, dst, []byte("bg")) })
			sent++
		}
	}
	return sent
}
