package scenario

import (
	"strings"
	"testing"

	"repro/rtether"
)

// TestMulticastPublishRun runs a scenario with a sinks-bearing channel
// and two publish bursts, and checks the fan-out arithmetic: every
// burst message reaches every sink within the deadline.
func TestMulticastPublishRun(t *testing.T) {
	doc := `{
		"name": "fanout",
		"slots": 200,
		"nodes": [1, 2, 3, 4],
		"channels": [
			{"name": "fan", "src": 1, "sinks": [2, 3], "c": 1, "p": 10, "d": 8},
			{"src": 4, "dst": 2, "c": 1, "p": 50, "d": 25}
		],
		"events": [
			{"at": 10, "kind": "publish", "channel": "fan", "count": 3},
			{"at": 50, "kind": "publish", "channel": "fan", "count": 2}
		]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	defer res.Network.Close()
	if len(res.Accepted) != 2 {
		t.Fatalf("accepted %d channels, want 2", len(res.Accepted))
	}
	accepted, rejected, skipped := res.EventCounts()
	if accepted != 2 || rejected != 0 || skipped != 0 {
		t.Fatalf("event counts = %d/%d/%d, want 2 accepted", accepted, rejected, skipped)
	}
	fan := res.Network.Lookup(res.Accepted[0])
	if fan == nil || !fan.Multicast() {
		t.Fatalf("first accepted channel is not the multicast handle")
	}
	m := fan.Metrics()
	if m == nil {
		t.Fatalf("no deliveries on the multicast channel")
	}
	// Bursts of 3 and 2 messages, each fanned out to 2 sinks.
	if m.Delivered != 10 {
		t.Fatalf("Delivered = %d, want exactly (3+2 msgs)×2 sinks = 10", m.Delivered)
	}
	if m.Misses != 0 {
		t.Fatalf("%d deadline misses on an admitted tree", m.Misses)
	}
}

// TestMulticastPublishFabric runs the same publisher pattern across a
// routed two-switch fabric.
func TestMulticastPublishFabric(t *testing.T) {
	doc := `{
		"name": "fanout fabric",
		"dps": "adps",
		"slots": 300,
		"topology": {
			"switches": [0, 1],
			"trunks": [[0, 1]],
			"attachments": [
				{"node": 1, "switch": 0},
				{"node": 2, "switch": 0},
				{"node": 3, "switch": 1}
			]
		},
		"channels": [
			{"name": "fan", "src": 1, "sinks": [2, 3], "c": 1, "p": 20, "d": 16}
		],
		"events": [
			{"at": 20, "kind": "publish", "channel": "fan", "count": 4}
		]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	defer res.Network.Close()
	fan := res.Network.Lookup(res.Accepted[0])
	if m := fan.Metrics(); m == nil || m.Delivered != 8 || m.Misses != 0 {
		t.Fatalf("fabric fan-out metrics = %+v, want 4×2 deliveries, 0 misses", m)
	}
}

// TestMulticastScenarioValidation pins the load-time rejections of the
// multicast schema extensions.
func TestMulticastScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"dst and sinks together",
			`{"slots": 10, "nodes": [1,2,3], "channels": [{"src":1,"dst":2,"sinks":[3],"c":1,"p":10,"d":8}]}`,
			"mutually exclusive",
		},
		{
			"undeclared sink",
			`{"slots": 10, "nodes": [1,2], "channels": [{"src":1,"sinks":[9],"c":1,"p":10,"d":8}]}`,
			"undeclared sink",
		},
		{
			"duplicate sink",
			`{"slots": 10, "nodes": [1,2], "channels": [{"src":1,"sinks":[2,2],"c":1,"p":10,"d":8}]}`,
			"twice",
		},
		{
			"publish on unicast",
			`{"slots": 10, "nodes": [1,2], "channels": [{"name":"u","src":1,"dst":2,"c":1,"p":10,"d":8}],
			  "events": [{"at":1,"kind":"publish","channel":"u"}]}`,
			"unicast",
		},
		{
			"overlapping bursts",
			`{"slots": 100, "nodes": [1,2], "channels": [{"name":"m","src":1,"sinks":[2],"c":1,"p":10,"d":8}],
			  "events": [{"at":1,"kind":"publish","channel":"m","count":3},
			             {"at":5,"kind":"publish","channel":"m"}]}`,
			"burst",
		},
		{
			"multicast in establishAll",
			`{"slots": 100, "nodes": [1,2,3], "channels": [{"name":"m","src":1,"sinks":[2],"c":1,"p":10,"d":8},
			                                               {"name":"u","src":1,"dst":3,"c":1,"p":10,"d":8}],
			  "events": [{"at":1,"kind":"establishAll","channels":["m","u"]}]}`,
			"atomic",
		},
		{
			"reconfigure multicast",
			`{"slots": 100, "nodes": [1,2], "channels": [{"name":"m","src":1,"sinks":[2],"c":1,"p":10,"d":8}],
			  "events": [{"at":1,"kind":"reconfigure","channel":"m","d":9}]}`,
			"reconfigured",
		},
		{
			"count on establish",
			`{"slots": 100, "nodes": [1,2], "channels": [{"name":"u","src":1,"dst":2,"c":1,"p":10,"d":8}],
			  "events": [{"at":1,"kind":"release","channel":"u","count":2}]}`,
			"count",
		},
		{
			"publish after release",
			`{"slots": 100, "nodes": [1,2], "channels": [{"name":"m","src":1,"sinks":[2],"c":1,"p":10,"d":8}],
			  "events": [{"at":0,"kind":"release","channel":"m"},
			             {"at":1,"kind":"publish","channel":"m"}]}`,
			"not established",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Load = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestMulticastWorkload checks the flattened load-generator export: a
// multicast establish carries its sink set; publish events have no wire
// operation and are skipped.
func TestMulticastWorkload(t *testing.T) {
	doc := `{
		"slots": 100,
		"nodes": [1, 2, 3],
		"channels": [{"name": "m", "src": 1, "sinks": [2, 3], "c": 1, "p": 10, "d": 8}],
		"events": [
			{"at": 5, "kind": "publish", "channel": "m", "count": 2},
			{"at": 20, "kind": "release", "channel": "m"}
		]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	items, skipped, err := s.Workload()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the publish)", skipped)
	}
	if len(items) != 2 {
		t.Fatalf("items = %+v, want establish + release", items)
	}
	if got := items[0].Sinks; len(got) != 2 || got[0] != rtether.NodeID(2) || got[1] != rtether.NodeID(3) {
		t.Errorf("establish item sinks = %v, want [2 3]", got)
	}
	if !items[1].Release {
		t.Errorf("second item is not the release: %+v", items[1])
	}
}
