package scenario

import (
	"strings"
	"testing"
)

const validDoc = `{
  "name": "packaging line",
  "dps": "adps",
  "slots": 2000,
  "nodes": [1, 2, 3],
  "channels": [
    {"src": 1, "dst": 2, "c": 3, "p": 100, "d": 40},
    {"src": 1, "dst": 3, "c": 2, "p": 50, "d": 20, "offset": 7}
  ],
  "background": [
    {"src": 1, "dst": 3, "rate": 0.05}
  ]
}`

func TestLoadValid(t *testing.T) {
	s, err := Load(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "packaging line" || len(s.Channels) != 2 || len(s.Nodes) != 3 {
		t.Errorf("parsed: %+v", s)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	doc := `{"slots": 100, "nodes": [1], "channels": [], "typo_field": 1}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no slots", `{"nodes":[1],"channels":[]}`, "slots"},
		{"no nodes", `{"slots":10,"nodes":[],"channels":[]}`, "no nodes"},
		{"dup node", `{"slots":10,"nodes":[1,1],"channels":[]}`, "duplicate node"},
		{"bad dps", `{"slots":10,"dps":"xyz","nodes":[1],"channels":[]}`, "unknown dps"},
		{"bad discipline", `{"slots":10,"discipline":"lifo","nodes":[1],"channels":[]}`, "unknown discipline"},
		{
			"undeclared endpoint",
			`{"slots":10,"nodes":[1],"channels":[{"src":1,"dst":9,"c":1,"p":10,"d":10}]}`,
			"undeclared node",
		},
		{
			"invalid channel",
			`{"slots":10,"nodes":[1,2],"channels":[{"src":1,"dst":2,"c":3,"p":10,"d":4}]}`,
			"store-and-forward",
		},
		{
			"negative offset",
			`{"slots":10,"nodes":[1,2],"channels":[{"src":1,"dst":2,"c":1,"p":10,"d":10,"offset":-1}]}`,
			"negative offset",
		},
		{
			"bad background",
			`{"slots":10,"nodes":[1,2],"channels":[],"background":[{"src":1,"dst":2,"rate":0}]}`,
			"rate",
		},
		{
			"background undeclared node",
			`{"slots":10,"nodes":[1,2],"channels":[],"background":[{"src":1,"dst":9,"rate":1}]}`,
			"undeclared node",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRunScenario(t *testing.T) {
	s, err := Load(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 2 || res.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d", len(res.Accepted), res.Rejected)
	}
	if res.Report.TotalMisses() != 0 {
		t.Errorf("misses: %d", res.Report.TotalMisses())
	}
	if res.Report.TotalDelivered() == 0 {
		t.Error("no RT traffic")
	}
	if res.BgSent == 0 || res.Report.NonRTDelivered == 0 {
		t.Error("no background traffic")
	}
}

func TestRunScenarioMandatoryRejection(t *testing.T) {
	// Seven channels on one uplink under SDPS: the seventh is mandatory
	// and rejected, so the run fails loudly.
	var b strings.Builder
	b.WriteString(`{"slots":500,"nodes":[1,2,3,4,5,6,7,8],"channels":[`)
	for i := 0; i < 7; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"src":1,"dst":` + string(rune('2'+i)) + `,"c":3,"p":100,"d":40}`)
	}
	b.WriteString(`]}`)
	s, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("mandatory rejection not surfaced: %v", err)
	}
}

func TestRunScenarioOptionalRejection(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"slots":500,"nodes":[1,2,3,4,5,6,7,8],"channels":[`)
	for i := 0; i < 7; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"src":1,"dst":` + string(rune('2'+i)) + `,"c":3,"p":100,"d":40,"optional":true}`)
	}
	b.WriteString(`]}`)
	s, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 6 || res.Rejected != 1 {
		t.Errorf("accepted %d rejected %d, want 6/1", len(res.Accepted), res.Rejected)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	run := func() int64 {
		s, err := Load(strings.NewReader(validDoc))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		_, worst := res.Report.WorstDelay()
		return res.Report.TotalDelivered()*1_000_000 + int64(res.Report.NonRTDelivered)*1000 + worst
	}
	if a, b := run(), run(); a != b {
		t.Errorf("scenario runs diverged: %d vs %d", a, b)
	}
}
