package scenario

import (
	"strings"
	"testing"
)

// loadErr asserts that a document is rejected with an error mentioning
// want.
func loadErr(t *testing.T, doc, want string) {
	t.Helper()
	_, err := Load(strings.NewReader(doc))
	if err == nil {
		t.Fatalf("accepted, want error mentioning %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("err %q, want mention of %q", err, want)
	}
}

func TestEventValidationErrors(t *testing.T) {
	base := `{"slots":1000,"nodes":[1,2,3],"channels":[
		{"name":"a","src":1,"dst":2,"c":3,"p":100,"d":40},
		{"name":"b","src":1,"dst":3,"c":2,"p":50,"d":20}],`
	cases := []struct {
		name   string
		events string
		want   string
	}{
		{"unknown kind", `[{"at":10,"kind":"explode","channel":"a"}]`, "unknown event kind"},
		{"undefined channel", `[{"at":10,"kind":"release","channel":"zz"}]`, "undefined channel"},
		{"undefined in batch", `[{"at":10,"kind":"establishAll","channels":["a","zz"]}]`, "undefined channel"},
		{"no channel", `[{"at":10,"kind":"establish"}]`, "needs a channel name"},
		{"empty batch", `[{"at":10,"kind":"establishAll"}]`, "needs a channels list"},
		{"batch duplicate", `[{"at":10,"kind":"establishAll","channels":["a","a"]}]`, "listed twice"},
		{"out of range", `[{"at":1000,"kind":"release","channel":"a"}]`, "outside [0, 1000)"},
		{"negative at", `[{"at":-1,"kind":"release","channel":"a"}]`, "outside"},
		{"establish with params", `[{"at":10,"kind":"establish","channel":"a","c":1}]`, "use reconfigure"},
		{"reconfigure no-op", `[{"at":10,"kind":"reconfigure","channel":"a"}]`, "changes nothing"},
		{"reconfigure negative", `[{"at":10,"kind":"reconfigure","channel":"a","d":-4}]`, "negative channel parameter"},
		{"negative offset", `[{"at":10,"kind":"release","channel":"a","offset":-2}]`, "negative offset"},
		{"setBackground bad node", `[{"at":10,"kind":"setBackground","src":1,"dst":9,"rate":0.1}]`, "undeclared node"},
		{"setBackground negative rate", `[{"at":10,"kind":"setBackground","src":1,"dst":2,"rate":-1}]`, "negative rate"},
		{"setBackground with channel", `[{"at":10,"kind":"setBackground","src":1,"dst":2,"rate":1,"channel":"a"}]`, "not channels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loadErr(t, base+`"events":`+tc.events+`}`, tc.want)
		})
	}
}

func TestTimelineStateMachineErrors(t *testing.T) {
	base := `{"slots":1000,"nodes":[1,2,3],"channels":[
		{"name":"a","src":1,"dst":2,"c":3,"p":100,"d":40}],`
	cases := []struct {
		name   string
		events string
		want   string
	}{
		{
			"double establish",
			`[{"at":10,"kind":"establish","channel":"a"},{"at":20,"kind":"establish","channel":"a"}]`,
			"twice",
		},
		{
			// "a" is static (first reference is the release), so releasing
			// twice without re-establishing is impossible.
			"double release",
			`[{"at":10,"kind":"release","channel":"a"},{"at":20,"kind":"release","channel":"a"}]`,
			"not established",
		},
		{
			"reconfigure after release",
			`[{"at":10,"kind":"release","channel":"a"},{"at":20,"kind":"reconfigure","channel":"a","d":60}]`,
			"not established",
		},
		{
			"reconfigure into invalid spec",
			`[{"at":10,"kind":"reconfigure","channel":"a","d":2}]`,
			"invalid spec",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loadErr(t, base+`"events":`+tc.events+`}`, tc.want)
		})
	}
}

func TestReestablishResetsDeclaredSpec(t *testing.T) {
	// A re-established channel requests its declared definition, not the
	// parameters a pre-release reconfigure left behind: the d=6
	// reconfigure must not poison the post-re-establishment state, so
	// the final c=3 (valid against the declared d=50) must pass.
	doc := `{"slots":1000,"nodes":[1,2],"channels":[
		{"name":"a","src":1,"dst":2,"c":1,"p":100,"d":50}],
		"events":[
			{"at":10,"kind":"reconfigure","channel":"a","d":6},
			{"at":20,"kind":"release","channel":"a"},
			{"at":30,"kind":"establish","channel":"a"},
			{"at":40,"kind":"reconfigure","channel":"a","c":3}]}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("valid re-establishment timeline rejected: %v", err)
	}
	if _, err := s.Run(); err != nil {
		t.Errorf("run failed: %v", err)
	}
	// The inverse: a reconfigure invalid against the declared spec must
	// be caught at load time even when it would have been valid against
	// the stale pre-release parameters (c=6 fits d=50 but not the
	// declared d=10).
	bad := `{"slots":1000,"nodes":[1,2],"channels":[
		{"name":"a","src":1,"dst":2,"c":1,"p":100,"d":10}],
		"events":[
			{"at":10,"kind":"reconfigure","channel":"a","d":50},
			{"at":20,"kind":"release","channel":"a"},
			{"at":30,"kind":"establish","channel":"a"},
			{"at":40,"kind":"reconfigure","channel":"a","c":6}]}`
	loadErr(t, bad, "invalid spec")
}

func TestTopologyValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"trunk unknown switch",
			`{"slots":10,"topology":{"switches":[0,1],"trunks":[[0,7]],
				"attachments":[{"node":1,"switch":0}]},"channels":[]}`,
			"unknown switch",
		},
		{
			"attachment unknown switch",
			`{"slots":10,"topology":{"switches":[0],
				"attachments":[{"node":1,"switch":3}]},"channels":[]}`,
			"unknown switch",
		},
		{
			"duplicate switch",
			`{"slots":10,"topology":{"switches":[0,0],
				"attachments":[{"node":1,"switch":0}]},"channels":[]}`,
			"duplicate switch",
		},
		{
			"self trunk",
			`{"slots":10,"topology":{"switches":[0],"trunks":[[0,0]],
				"attachments":[{"node":1,"switch":0}]},"channels":[]}`,
			"to itself",
		},
		{
			"node attached twice",
			`{"slots":10,"topology":{"switches":[0,1],"trunks":[[0,1]],
				"attachments":[{"node":1,"switch":0},{"node":1,"switch":1}]},"channels":[]}`,
			"attached twice",
		},
		{
			"no attachments",
			`{"slots":10,"topology":{"switches":[0]},"channels":[]}`,
			"no attachments",
		},
		{
			"nodes and topology",
			`{"slots":10,"nodes":[1],"topology":{"switches":[0],
				"attachments":[{"node":1,"switch":0}]},"channels":[]}`,
			"mutually exclusive",
		},
		{
			"background on fabric",
			`{"slots":10,"topology":{"switches":[0,1],"trunks":[[0,1]],
				"attachments":[{"node":1,"switch":0},{"node":2,"switch":1}]},
				"channels":[],"background":[{"src":1,"dst":2,"rate":0.1}]}`,
			"star network",
		},
		{
			"setBackground on fabric",
			`{"slots":10,"topology":{"switches":[0,1],"trunks":[[0,1]],
				"attachments":[{"node":1,"switch":0},{"node":2,"switch":1}]},
				"channels":[],"events":[{"at":1,"kind":"setBackground","src":1,"dst":2,"rate":0.1}]}`,
			"star network",
		},
		{
			"discipline on fabric",
			`{"slots":10,"discipline":"fifo","topology":{"switches":[0,1],"trunks":[[0,1]],
				"attachments":[{"node":1,"switch":0},{"node":2,"switch":1}]},"channels":[]}`,
			"EDF only",
		},
		{
			"queue cap on fabric",
			`{"slots":10,"nonRTQueueCap":16,"topology":{"switches":[0,1],"trunks":[[0,1]],
				"attachments":[{"node":1,"switch":0},{"node":2,"switch":1}]},"channels":[]}`,
			"RT traffic only",
		},
		{
			"duplicate channel name",
			`{"slots":10,"nodes":[1,2],"channels":[
				{"name":"x","src":1,"dst":2,"c":1,"p":10,"d":10},
				{"name":"x","src":2,"dst":1,"c":1,"p":10,"d":10}]}`,
			"duplicate channel name",
		},
		{
			"reserved name",
			`{"slots":10,"nodes":[1,2],"channels":[
				{"name":"x#1","src":1,"dst":2,"c":1,"p":10,"d":10}]}`,
			"reserved",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loadErr(t, tc.doc, tc.want)
		})
	}
}

const dynamicStarDoc = `{
  "name": "dynamic star",
  "slots": 2000,
  "seed": 9,
  "nodes": [1, 2, 3],
  "channels": [
    {"name": "a", "src": 1, "dst": 2, "c": 3, "p": 100, "d": 40},
    {"name": "b", "src": 1, "dst": 3, "c": 2, "p": 50, "d": 20}
  ],
  "events": [
    {"at": 100,  "kind": "establish", "channel": "b"},
    {"at": 400,  "kind": "reconfigure", "channel": "a", "d": 60},
    {"at": 800,  "kind": "release", "channel": "b"},
    {"at": 900,  "kind": "setBackground", "src": 1, "dst": 2, "rate": 0.05},
    {"at": 1500, "kind": "setBackground", "src": 1, "dst": 2, "rate": 0}
  ]
}`

func TestRunDynamicStar(t *testing.T) {
	s, err := Load(strings.NewReader(dynamicStarDoc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// "b" is deferred to its establish event: only "a" loads statically.
	if len(res.Accepted) != 1 || res.Rejected != 0 {
		t.Fatalf("static accepted %d rejected %d, want 1/0", len(res.Accepted), res.Rejected)
	}
	if len(res.Events) != 5 {
		t.Fatalf("outcomes: %d, want 5", len(res.Events))
	}
	accepted, rejected, skipped := res.EventCounts()
	if accepted != 5 || rejected != 0 || skipped != 0 {
		t.Errorf("counts %d/%d/%d, want 5/0/0", accepted, rejected, skipped)
	}
	// The background flow exists only through setBackground events.
	if res.BgSent == 0 || res.Report.NonRTDelivered == 0 {
		t.Errorf("event-introduced background did not flow: sent %d delivered %d",
			res.BgSent, res.Report.NonRTDelivered)
	}
	if res.Report.TotalMisses() != 0 {
		t.Errorf("misses: %d", res.Report.TotalMisses())
	}
	if res.Report.TotalDelivered() == 0 {
		t.Error("no RT traffic")
	}
}

func TestOptionalEstablishRejectionSkipsRelease(t *testing.T) {
	// Six static channels saturate node 1's uplink under SDPS; the
	// seventh is established by an optional event and must be rejected,
	// and its later release skipped.
	var b strings.Builder
	b.WriteString(`{"slots":500,"nodes":[1,2,3,4,5,6,7,8],"channels":[`)
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"src":1,"dst":` + string(rune('2'+i)) + `,"c":3,"p":100,"d":40}`)
	}
	b.WriteString(`,{"name":"extra","src":1,"dst":8,"c":3,"p":100,"d":40}],
		"events":[
			{"at":100,"kind":"establish","channel":"extra","optional":true},
			{"at":200,"kind":"release","channel":"extra"}]}`)
	s, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	accepted, rejected, skipped := res.EventCounts()
	if accepted != 0 || rejected != 1 || skipped != 1 {
		t.Errorf("counts %d/%d/%d, want 0/1/1\n%v", accepted, rejected, skipped, res.Events)
	}
	if !res.Events[1].Skipped || res.Events[1].Detail != "never established" {
		t.Errorf("release outcome: %+v", res.Events[1])
	}
}

func TestMandatoryEventRejectionFailsRun(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"slots":500,"nodes":[1,2,3,4,5,6,7,8],"channels":[`)
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"src":1,"dst":` + string(rune('2'+i)) + `,"c":3,"p":100,"d":40}`)
	}
	b.WriteString(`,{"name":"extra","src":1,"dst":8,"c":3,"p":100,"d":40}],
		"events":[{"at":100,"kind":"establish","channel":"extra"}]}`)
	s, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("mandatory event rejection not surfaced: %v", err)
	}
}

func TestEstablishAllEventIsAtomic(t *testing.T) {
	// Two batch members; the second overloads the shared uplink, so the
	// whole batch must be rejected and neither channel established.
	doc := `{"slots":500,"nodes":[1,2,3,4,5,6,7],"channels":[
		{"src":1,"dst":2,"c":3,"p":100,"d":40},
		{"src":1,"dst":3,"c":3,"p":100,"d":40},
		{"src":1,"dst":4,"c":3,"p":100,"d":40},
		{"src":1,"dst":5,"c":3,"p":100,"d":40},
		{"src":1,"dst":6,"c":3,"p":100,"d":40},
		{"name":"x","src":1,"dst":7,"c":3,"p":100,"d":40},
		{"name":"y","src":1,"dst":7,"c":3,"p":100,"d":40}],
		"events":[
			{"at":100,"kind":"establishAll","channels":["x","y"],"optional":true},
			{"at":200,"kind":"release","channel":"x"}]}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 5 static fit (uplink holds 6 under SDPS): batch of 2 would make 7.
	if got := len(res.Accepted); got != 5 {
		t.Fatalf("static accepted %d, want 5", got)
	}
	if res.Events[0].Accepted {
		t.Errorf("overloading batch accepted: %+v", res.Events[0])
	}
	if !res.Events[1].Skipped {
		t.Errorf("release of rejected batch member not skipped: %+v", res.Events[1])
	}
}

func TestRunFabricScenario(t *testing.T) {
	doc := `{
		"name": "fabric",
		"dps": "adps",
		"slots": 1500,
		"topology": {
			"switches": [0, 1],
			"trunks": [[0, 1]],
			"attachments": [
				{"node": 1, "switch": 0},
				{"node": 2, "switch": 1}
			]
		},
		"channels": [{"name": "x", "src": 1, "dst": 2, "c": 2, "p": 100, "d": 60}],
		"events": [
			{"at": 300, "kind": "reconfigure", "channel": "x", "d": 90},
			{"at": 900, "kind": "release", "channel": "x"}
		]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("static accepted %d, want 1", len(res.Accepted))
	}
	// Reconfigure on a 3-hop route: budgets must sum to the new deadline.
	if !strings.Contains(res.Events[0].Detail, "[") {
		t.Errorf("reconfigure outcome carries no budgets: %+v", res.Events[0])
	}
	if res.Report.TotalMisses() != 0 {
		t.Errorf("misses: %d", res.Report.TotalMisses())
	}
	if res.Report.TotalDelivered() == 0 {
		t.Error("no RT traffic delivered on the fabric")
	}
}

func TestReplayMatchesRunDecisions(t *testing.T) {
	s, err := Load(strings.NewReader(dynamicStarDoc))
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s.Replay(1)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Report != nil {
		t.Error("replay produced a measurement report")
	}
	if len(run.Events) != len(replay.Events) {
		t.Fatalf("event counts differ: run %d, replay %d", len(run.Events), len(replay.Events))
	}
	for i := range run.Events {
		r, p := run.Events[i], replay.Events[i]
		if r.Accepted != p.Accepted || r.Skipped != p.Skipped || r.Kind != p.Kind || r.Subject != p.Subject {
			t.Errorf("event %d diverged: run %+v, replay %+v", i, r, p)
		}
	}
}
