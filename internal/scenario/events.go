package scenario

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/traffic"
)

// Event kinds of the timeline. All times are slots relative to the
// scenario start (after the static channel population is established).
const (
	// KindEstablish requests one named channel. On a star network the
	// establishment handshake runs over the simulated wire (and consumes
	// virtual time); on a fabric the channel is routed and verified
	// through the management plane.
	KindEstablish = "establish"
	// KindEstablishAll requests a batch of named channels as one atomic
	// all-or-nothing admission decision (Network.EstablishAll): one
	// repartition and one verification sweep, no wire handshake, no
	// virtual time even on stars.
	KindEstablishAll = "establishAll"
	// KindRelease frees a named channel through the management plane.
	KindRelease = "release"
	// KindReconfigure atomically replaces a named channel's {C, P, d}:
	// the old reservation is released and the new one requested in its
	// place. A rejected reconfiguration leaves the channel released — the
	// bandwidth was already given up (declare the event optional to
	// tolerate that, otherwise it fails the scenario).
	KindReconfigure = "reconfigure"
	// KindSetBackground changes the rate of one best-effort background
	// flow from the event's slot on (star networks only). A flow that was
	// not declared in the background section starts at rate 0; rate 0
	// silences a flow.
	KindSetBackground = "setBackground"
	// KindPublish releases a burst of count messages (default 1) on a
	// named multicast channel, one per period starting at the event's
	// slot (plus offset). The channel must be established and idle at
	// that slot — multicast sources idle between publish bursts, so
	// bursts on one channel must not overlap: the next may start no
	// earlier than offset + count*P after this one.
	KindPublish = "publish"
	// KindLinkDown fails the trunk named by the event's link pair
	// (multi-switch topologies only). Channels routed over the trunk are
	// re-routed and re-admitted as a batch; the ones the residual
	// network cannot carry go through the scenario's failurePolicy
	// ladder. In-flight frames on the trunk are dropped and counted as
	// deadline misses.
	KindLinkDown = "linkDown"
	// KindSwitchDown fails a whole switch: every trunk at the switch and
	// every node attached to it go dark, with the same recovery pass as
	// linkDown.
	KindSwitchDown = "switchDown"
	// KindRepair brings a failed trunk (link pair) or switch back up.
	// Routes become available again for later admissions and failures;
	// surviving channels are not moved back.
	KindRepair = "repair"
)

// EventDef is one timeline entry. Which fields apply depends on Kind;
// validation rejects stray ones so typos cannot silently change an
// experiment.
type EventDef struct {
	At   int64  `json:"at"`
	Kind string `json:"kind"`

	// Channel names the subject of establish, release and reconfigure;
	// Channels lists the batch of an establishAll.
	Channel  string   `json:"channel,omitempty"`
	Channels []string `json:"channels,omitempty"`

	// C, P, D override the named channel's parameters on reconfigure
	// (0 = keep the current value).
	C int64 `json:"c,omitempty"`
	P int64 `json:"p,omitempty"`
	D int64 `json:"d,omitempty"`

	// Offset delays the restarted traffic source (establish, establishAll
	// and reconfigure) by the given slots past the event; 0 uses the
	// channel's declared offset.
	Offset int64 `json:"offset,omitempty"`

	// Count sizes a publish burst (messages, one per period); 0 means 1.
	Count int64 `json:"count,omitempty"`

	// Optional tolerates an admission rejection: the outcome is recorded
	// and the run continues. Default false — a rejected timeline event
	// fails the scenario.
	Optional bool `json:"optional,omitempty"`

	// Src, Dst and Rate define a setBackground flow change.
	Src  uint16  `json:"src,omitempty"`
	Dst  uint16  `json:"dst,omitempty"`
	Rate float64 `json:"rate,omitempty"`

	// Link names the trunk of a linkDown or repair event as its [a, b]
	// switch pair (either order).
	Link []uint16 `json:"link,omitempty"`
	// Switch names the subject of a switchDown or repair event. A
	// pointer so switch 0 stays distinguishable from an absent field.
	Switch *uint16 `json:"switch,omitempty"`
}

// timedEvent is one compiled timeline entry: a declared EventDef or one
// synthesized by a churn generator, normalized for playback.
type timedEvent struct {
	at   int64
	seq  int // stable tiebreak: declared events first, then churn streams
	kind string

	names    []string // subject channel name(s)
	c, p, d  int64    // reconfigure overrides
	count    int64    // publish burst size
	offset   int64
	optional bool

	src, dst uint16  // setBackground
	rate     float64 // setBackground

	link [2]uint16 // linkDown / link repair trunk pair
	sw   *uint16   // switchDown / switch repair subject
}

// timeline is the compiled dynamic part of a scenario: every event in
// deterministic playback order plus the synthesized channel table.
type timeline struct {
	events []timedEvent
	// defs maps every addressable channel name — declared or churn-made —
	// to its definition.
	defs map[string]ChannelDef
	// deferred marks channels established by a timeline event rather than
	// during the static load phase.
	deferred map[string]bool
	// trace is the parsed backgroundTrace recording (nil without one);
	// compile loads and validates it once so playback does not reread the
	// file.
	trace *traffic.Trace
}

// validateEvents checks every declared event in isolation (kinds, field
// usage, references). The cross-event state machine runs in timeline().
func (s *Scenario) validateEvents(names map[string]bool, nodeSet map[uint16]bool) error {
	defs := make(map[string]ChannelDef, len(s.Channels))
	for _, ch := range s.Channels {
		if ch.Name != "" {
			defs[ch.Name] = ch
		}
	}
	for i, ev := range s.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("scenario: event %d (at %d): %s", i, ev.At, fmt.Sprintf(format, args...))
		}
		if ev.At < 0 || ev.At >= s.Slots {
			return fail("slot outside [0, %d)", s.Slots)
		}
		switch ev.Kind {
		case KindEstablish, KindRelease, KindReconfigure:
			if ev.Channel == "" {
				return fail("%s needs a channel name", ev.Kind)
			}
			if !names[ev.Channel] {
				return fail("references undefined channel %q", ev.Channel)
			}
			if len(ev.Channels) > 0 {
				return fail("%s takes one channel, not a channels list", ev.Kind)
			}
			if ev.Kind == KindReconfigure {
				if defs[ev.Channel].multicast() {
					return fail("multicast channel %q cannot be reconfigured (release and re-establish)", ev.Channel)
				}
				if ev.C < 0 || ev.P < 0 || ev.D < 0 {
					return fail("negative channel parameter")
				}
				if ev.C == 0 && ev.P == 0 && ev.D == 0 {
					return fail("reconfigure changes nothing (set c, p or d)")
				}
			} else if ev.C != 0 || ev.P != 0 || ev.D != 0 {
				return fail("%s does not take c/p/d (use reconfigure)", ev.Kind)
			}
		case KindPublish:
			if ev.Channel == "" {
				return fail("publish needs a channel name")
			}
			if !names[ev.Channel] {
				return fail("references undefined channel %q", ev.Channel)
			}
			if !defs[ev.Channel].multicast() {
				return fail("publish targets unicast channel %q (publish needs a sinks-bearing channel)", ev.Channel)
			}
			if len(ev.Channels) > 0 {
				return fail("publish takes one channel, not a channels list")
			}
			if ev.C != 0 || ev.P != 0 || ev.D != 0 {
				return fail("publish does not take c/p/d")
			}
			if ev.Count < 0 {
				return fail("negative count")
			}
		case KindEstablishAll:
			if len(ev.Channels) == 0 {
				return fail("establishAll needs a channels list")
			}
			if ev.Channel != "" {
				return fail("establishAll takes a channels list, not a single channel")
			}
			seen := make(map[string]bool, len(ev.Channels))
			for _, name := range ev.Channels {
				if !names[name] {
					return fail("references undefined channel %q", name)
				}
				if seen[name] {
					return fail("channel %q listed twice", name)
				}
				if defs[name].multicast() {
					return fail("establishAll member %q is multicast (a tree is already one atomic decision; use establish)", name)
				}
				seen[name] = true
			}
			if ev.C != 0 || ev.P != 0 || ev.D != 0 {
				return fail("establishAll does not take c/p/d (use reconfigure)")
			}
		case KindSetBackground:
			if s.Fabric() {
				return fail("setBackground needs a star network (multi-switch topologies carry RT traffic only)")
			}
			if !nodeSet[ev.Src] || !nodeSet[ev.Dst] {
				return fail("references undeclared node")
			}
			if ev.Rate < 0 {
				return fail("negative rate")
			}
			if ev.Channel != "" || len(ev.Channels) > 0 {
				return fail("setBackground takes src/dst/rate, not channels")
			}
		case KindLinkDown, KindSwitchDown, KindRepair:
			if !s.Fabric() {
				return fail("%s needs a multi-switch topology", ev.Kind)
			}
			if ev.Channel != "" || len(ev.Channels) > 0 {
				return fail("%s takes link/switch, not channels", ev.Kind)
			}
			if ev.C != 0 || ev.P != 0 || ev.D != 0 {
				return fail("%s does not take c/p/d", ev.Kind)
			}
			switch ev.Kind {
			case KindLinkDown:
				if len(ev.Link) == 0 || ev.Switch != nil {
					return fail("linkDown takes a link pair (use switchDown for switches)")
				}
			case KindSwitchDown:
				if ev.Switch == nil || len(ev.Link) > 0 {
					return fail("switchDown takes a switch (use linkDown for trunks)")
				}
			case KindRepair:
				if (len(ev.Link) > 0) == (ev.Switch != nil) {
					return fail("repair takes exactly one of link and switch")
				}
			}
			if len(ev.Link) > 0 {
				if len(ev.Link) != 2 {
					return fail("link must be an [a, b] switch pair")
				}
				if !s.hasTrunk(ev.Link[0], ev.Link[1]) {
					return fail("no trunk between switches %d and %d", ev.Link[0], ev.Link[1])
				}
			}
			if ev.Switch != nil && !s.hasSwitch(*ev.Switch) {
				return fail("unknown switch %d", *ev.Switch)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown event kind %q", i, ev.Kind)
		}
		if ev.Offset < 0 {
			return fail("negative offset")
		}
		if ev.Count != 0 && ev.Kind != KindPublish {
			return fail("%s does not take count (publish only)", ev.Kind)
		}
		if len(ev.Link) > 0 || ev.Switch != nil {
			switch ev.Kind {
			case KindLinkDown, KindSwitchDown, KindRepair:
			default:
				return fail("%s does not take link/switch", ev.Kind)
			}
		}
	}
	return nil
}

// hasTrunk reports whether the declared topology carries a trunk
// between switches a and b (either order).
func (s *Scenario) hasTrunk(a, b uint16) bool {
	if s.Topology == nil {
		return false
	}
	for _, tr := range s.Topology.Trunks {
		if (tr[0] == a && tr[1] == b) || (tr[0] == b && tr[1] == a) {
			return true
		}
	}
	return false
}

// hasSwitch reports whether the declared topology contains switch sw.
func (s *Scenario) hasSwitch(sw uint16) bool {
	if s.Topology == nil {
		return false
	}
	for _, have := range s.Topology.Switches {
		if have == sw {
			return true
		}
	}
	return false
}

// timeline compiles the declared events and every churn generator into
// one deterministically ordered event stream, then replays the
// establish/release state machine over it so impossible timelines
// (double establishment, releasing a never-established channel, a
// reconfiguration that yields an invalid spec) are rejected at load time
// rather than mid-run.
func (s *Scenario) timeline() (*timeline, error) {
	tl := &timeline{
		defs:     make(map[string]ChannelDef),
		deferred: make(map[string]bool),
	}
	for _, ch := range s.Channels {
		if ch.Name != "" {
			tl.defs[ch.Name] = ch
		}
	}
	for i, ev := range s.Events {
		te := timedEvent{
			at: ev.At, seq: i, kind: ev.Kind,
			c: ev.C, p: ev.P, d: ev.D, count: ev.Count,
			offset: ev.Offset, optional: ev.Optional,
			src: ev.Src, dst: ev.Dst, rate: ev.Rate,
			sw: ev.Switch,
		}
		if len(ev.Link) == 2 {
			te.link = [2]uint16{ev.Link[0], ev.Link[1]}
		}
		switch ev.Kind {
		case KindEstablishAll:
			te.names = ev.Channels
		case KindSetBackground, KindLinkDown, KindSwitchDown, KindRepair:
		default:
			te.names = []string{ev.Channel}
		}
		tl.events = append(tl.events, te)
	}
	seq := len(s.Events)
	for i := range s.Churn {
		n, err := s.Churn[i].synthesize(s, i, seq, tl)
		if err != nil {
			return nil, err
		}
		seq += n
	}
	sort.SliceStable(tl.events, func(a, b int) bool {
		if tl.events[a].at != tl.events[b].at {
			return tl.events[a].at < tl.events[b].at
		}
		return tl.events[a].seq < tl.events[b].seq
	})

	// A named channel is deferred when the timeline's first reference to
	// it is an establishment; otherwise it is part of the static load and
	// events may release (and later re-establish) it.
	seen := make(map[string]bool)
	for _, ev := range tl.events {
		for _, name := range ev.names {
			if seen[name] {
				continue
			}
			seen[name] = true
			if ev.kind == KindEstablish || ev.kind == KindEstablishAll {
				tl.deferred[name] = true
			}
		}
	}

	// State machine: track establishment and the current spec of every
	// addressable channel through the timeline.
	established := make(map[string]bool, len(tl.defs))
	specs := make(map[string]core.ChannelSpec, len(tl.defs))
	// publishUntil tracks, per multicast channel, the first slot after
	// its latest publish burst — bursts must not overlap because each
	// (re)attaches the channel's single periodic source.
	publishUntil := make(map[string]int64)
	for name, def := range tl.defs {
		established[name] = !tl.deferred[name]
		specs[name] = def.spec()
	}
	for _, ev := range tl.events {
		switch ev.kind {
		case KindEstablish, KindEstablishAll:
			for _, name := range ev.names {
				if established[name] {
					return nil, fmt.Errorf("scenario: timeline: slot %d establishes channel %q twice (release it first)", ev.at, name)
				}
				established[name] = true
				// Re-establishment requests the declared definition, not
				// the parameters a pre-release reconfigure left behind —
				// mirror that here so validation tracks runtime exactly.
				specs[name] = tl.defs[name].spec()
			}
		case KindRelease:
			name := ev.names[0]
			if !established[name] {
				return nil, fmt.Errorf("scenario: timeline: slot %d releases channel %q, which is not established then", ev.at, name)
			}
			established[name] = false
			delete(publishUntil, name) // releasing cuts any running burst short
		case KindPublish:
			name := ev.names[0]
			if !established[name] {
				return nil, fmt.Errorf("scenario: timeline: slot %d publishes on channel %q, which is not established then", ev.at, name)
			}
			if until, busy := publishUntil[name]; busy && ev.at < until {
				return nil, fmt.Errorf("scenario: timeline: slot %d publishes on channel %q while its previous burst runs until slot %d", ev.at, name, until)
			}
			count := ev.count
			if count == 0 {
				count = 1
			}
			publishUntil[name] = ev.at + ev.offset + (count-1)*specs[name].P + 1
		case KindReconfigure:
			name := ev.names[0]
			if !established[name] {
				return nil, fmt.Errorf("scenario: timeline: slot %d reconfigures channel %q, which is not established then", ev.at, name)
			}
			spec := reconfigured(specs[name], ev)
			if err := spec.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: timeline: slot %d reconfigures channel %q into an invalid spec: %w", ev.at, name, err)
			}
			specs[name] = spec
		}
	}
	return tl, nil
}

// reconfigured applies a reconfigure event's non-zero overrides to a
// channel spec.
func reconfigured(spec core.ChannelSpec, ev timedEvent) core.ChannelSpec {
	if ev.c != 0 {
		spec.C = ev.c
	}
	if ev.p != 0 {
		spec.P = ev.p
	}
	if ev.d != 0 {
		spec.D = ev.d
	}
	return spec
}
