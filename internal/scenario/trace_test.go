package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/traffic"
)

// writeTrace writes a synthetic trace file and returns its path.
func writeTrace(t *testing.T, dir string, seed int64, flows [][2]uint16, rate float64, horizon int64) string {
	t.Helper()
	tr := traffic.SyntheticTrace(rand.New(rand.NewSource(seed)), flows, rate, horizon)
	if len(tr.Events) == 0 {
		t.Fatal("synthetic trace is empty")
	}
	path := filepath.Join(dir, fmt.Sprintf("trace_%d.csv", seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// starDoc renders a small star scenario with the given background
// sections spliced in.
func starDoc(background string) string {
	return fmt.Sprintf(`{
		"name": "trace bg",
		"slots": 1500,
		"seed": 5,
		"nonRTQueueCap": 2,
		"nodes": [1, 2, 3],
		"channels": [
			{"src": 1, "dst": 2, "c": 3, "p": 100, "d": 40},
			{"src": 2, "dst": 3, "c": 2, "p": 50, "d": 20}
		]%s
	}`, background)
}

// fingerprint condenses a run into the comparable miss/load profile.
func fingerprint(t *testing.T, doc string) string {
	t.Helper()
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	var misses, delivered int64
	for _, m := range rep.Channels {
		misses += m.Misses
		delivered += m.Delivered
	}
	return fmt.Sprintf("bgSent=%d nonRT=%d drops=%d rtDelivered=%d rtMisses=%d nonRTMean=%.4f",
		res.BgSent, rep.NonRTDelivered, rep.NonRTDrops, delivered, misses, rep.NonRTDelay.Mean())
}

// TestBackgroundTraceVsPoisson pins the trace-driven load source: a
// recorded trace and a Poisson process produce different load profiles,
// and each is exactly reproducible run over run.
func TestBackgroundTraceVsPoisson(t *testing.T) {
	dir := t.TempDir()
	trace := writeTrace(t, dir, 99, [][2]uint16{{1, 3}, {3, 2}}, 0.4, 1500)

	poisson := starDoc(`, "background": [{"src": 1, "dst": 3, "rate": 0.1}]`)
	traced := starDoc(fmt.Sprintf(`, "backgroundTrace": %q`, trace))

	p1, p2 := fingerprint(t, poisson), fingerprint(t, poisson)
	if p1 != p2 {
		t.Errorf("Poisson background not reproducible:\n%s\n%s", p1, p2)
	}
	t1, t2 := fingerprint(t, traced), fingerprint(t, traced)
	if t1 != t2 {
		t.Errorf("trace background not reproducible:\n%s\n%s", t1, t2)
	}
	if p1 == t1 {
		t.Errorf("trace and Poisson background produced identical profiles: %s", p1)
	}
}

// TestBackgroundTraceStacksOnPoisson checks both sources can coexist:
// the trace arrivals add to the declared flows' frames.
func TestBackgroundTraceStacksOnPoisson(t *testing.T) {
	dir := t.TempDir()
	trace := writeTrace(t, dir, 7, [][2]uint16{{1, 3}}, 0.2, 1500)
	both := starDoc(fmt.Sprintf(`, "background": [{"src": 1, "dst": 3, "rate": 0.05}], "backgroundTrace": %q`, trace))
	poissonOnly := starDoc(`, "background": [{"src": 1, "dst": 3, "rate": 0.05}]`)

	load := func(doc string) int {
		s, err := Load(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.BgSent
	}
	if b, p := load(both), load(poissonOnly); b <= p {
		t.Errorf("stacked run sent %d bg frames, Poisson-only sent %d — trace added nothing", b, p)
	}
}

// TestBackgroundTraceValidation covers the load-time rejections: fabric
// topologies, missing files, malformed lines (with their line number)
// and undeclared endpoints.
func TestBackgroundTraceValidation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("0,1,2\nnot,a,line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stranger := filepath.Join(dir, "stranger.csv")
	if err := os.WriteFile(stranger, []byte("0,1,99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fabric := fmt.Sprintf(`{
		"name": "fabric trace", "slots": 100, "backgroundTrace": %q,
		"topology": {
			"switches": [0, 1], "trunks": [[0, 1]],
			"attachments": [{"node": 1, "switch": 0}, {"node": 2, "switch": 1}]
		},
		"channels": []
	}`, stranger)

	cases := []struct {
		name, doc, wantErr string
	}{
		{"fabric", fabric, "star network"},
		{"missing file", starDoc(fmt.Sprintf(`, "backgroundTrace": %q`, filepath.Join(dir, "nope.csv"))), "backgroundTrace"},
		{"malformed line", starDoc(fmt.Sprintf(`, "backgroundTrace": %q`, bad)), "line 2"},
		{"undeclared node", starDoc(fmt.Sprintf(`, "backgroundTrace": %q`, stranger)), "undeclared node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestCloneIsDeep pins the sweep's export hook: mutating a clone's
// nested sections leaves the base document untouched.
func TestCloneIsDeep(t *testing.T) {
	doc := `{
		"name": "base", "dps": "sdps", "slots": 1000, "seed": 3,
		"nodes": [1, 2, 3],
		"channels": [{"name": "a", "src": 1, "dst": 2, "c": 1, "p": 100, "d": 40}],
		"churn": [{"name": "g", "rate": 0.1, "holdMean": 50,
			"sources": [1, 2], "destinations": [2, 3], "c": 1, "p": 200, "d": 60}]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.DPS = "adps"
	c.Seed = 99
	c.Churn[0].Rate = 9.5
	c.Channels[0].C = 7
	if s.DPS != "sdps" || s.Seed != 3 || s.Churn[0].Rate != 0.1 || s.Channels[0].C != 1 {
		t.Errorf("clone mutation leaked into base: %+v", s)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("mutated clone does not validate: %v", err)
	}
}
