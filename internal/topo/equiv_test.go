package topo

// Decision-equivalence tests for the fabric copy-on-write admission
// engine: the incremental path must match the clone-based reference
// engine decision for decision, state for state. The reference engine is
// forced by hiding the scheme's IncrementalHDPS methods behind a plain
// HDPS wrapper.

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// cloneOnly strips the incremental interface off a scheme: interface
// embedding promotes only Name and Partition, so the controller falls
// back to the clone engine.
type cloneOnly struct{ HDPS }

// equivFabric is a 3-switch line with two nodes per switch.
func equivFabric() *Topology {
	top := Line(3)
	for n := core.NodeID(1); n <= 6; n++ {
		if err := top.AttachNode(n, SwitchID((n-1)/2)); err != nil {
			panic(err)
		}
	}
	return top
}

// equivRequests is a cross-fabric workload heavy enough to saturate
// trunks and produce rejections.
func equivRequests(n int) []core.ChannelSpec {
	out := make([]core.ChannelSpec, 0, n)
	for k := 0; k < n; k++ {
		src := core.NodeID(1 + k%6)
		dst := core.NodeID(1 + (k+3)%6)
		out = append(out, core.ChannelSpec{Src: src, Dst: dst, C: 2, P: 100, D: 36})
	}
	return out
}

func fabricStateKey(st *State) string {
	s := ""
	for _, ch := range st.Channels() {
		s += fmt.Sprintf("%d:%v:%v;", ch.ID, ch.Spec, ch.Hops)
	}
	return s
}

// TestFabricDecisionEquivalence replays a saturating workload (with
// interleaved releases) through the incremental and the clone engines.
func TestFabricDecisionEquivalence(t *testing.T) {
	for _, scheme := range []HDPS{HSDPS{}, HADPS{}} {
		t.Run(scheme.Name(), func(t *testing.T) {
			if _, ok := scheme.(IncrementalHDPS); !ok {
				t.Fatalf("%s must implement IncrementalHDPS for this test to compare engines", scheme.Name())
			}
			if _, ok := interface{}(cloneOnly{scheme}).(IncrementalHDPS); ok {
				t.Fatal("cloneOnly wrapper failed to hide the incremental interface")
			}
			inc := NewController(equivFabric(), Config{DPS: scheme})
			ref := NewController(equivFabric(), Config{DPS: cloneOnly{scheme}})

			var accepted []core.ChannelID
			rejections := 0
			for i, spec := range equivRequests(300) {
				chI, errI := inc.Request(spec)
				chR, errR := ref.Request(spec)
				if (errI == nil) != (errR == nil) {
					t.Fatalf("request %d (%v): incremental err=%v, clone err=%v", i, spec, errI, errR)
				}
				if errI != nil {
					rejections++
					if errI.Error() != errR.Error() {
						t.Fatalf("request %d: rejection diagnostics diverge:\n  incremental: %v\n  clone:       %v", i, errI, errR)
					}
					continue
				}
				if chI.ID != chR.ID {
					t.Fatalf("request %d: channel IDs diverge: %d vs %d", i, chI.ID, chR.ID)
				}
				accepted = append(accepted, chI.ID)
				if i%5 == 2 && len(accepted) > 2 {
					victim := accepted[len(accepted)/2]
					accepted = append(accepted[:len(accepted)/2], accepted[len(accepted)/2+1:]...)
					if err := inc.Release(victim); err != nil {
						t.Fatalf("incremental release: %v", err)
					}
					if err := ref.Release(victim); err != nil {
						t.Fatalf("clone release: %v", err)
					}
				}
			}
			if rejections == 0 {
				t.Fatal("workload never saturated — rejection path not exercised")
			}
			if got, want := fabricStateKey(inc.State()), fabricStateKey(ref.State()); got != want {
				t.Fatalf("committed states diverge:\nincremental: %s\nclone:       %s", got, want)
			}
			if inc.Accepted() != ref.Accepted() || inc.Requests() != ref.Requests() {
				t.Fatalf("counters diverge: %d/%d vs %d/%d",
					inc.Accepted(), inc.Requests(), ref.Accepted(), ref.Requests())
			}
		})
	}
}

// TestFabricSweepCacheEquivalence replays a churn workload through the
// cached (default), cache-disabled and FullRecheck fabric controllers:
// identical verdicts, diagnostics and committed states, with the cache
// actually hitting. Releases that trigger kept-back partitions and
// immediate re-establishes keep the same trunks' generations churning.
func TestFabricSweepCacheEquivalence(t *testing.T) {
	for _, scheme := range []HDPS{HSDPS{}, HADPS{}} {
		t.Run(scheme.Name(), func(t *testing.T) {
			cached := NewController(equivFabric(), Config{DPS: scheme})
			uncached := NewController(equivFabric(), Config{DPS: scheme, NoSweepCache: true})
			full := NewController(equivFabric(), Config{DPS: scheme, FullRecheck: true})
			ctrls := []*Controller{cached, uncached, full}
			names := []string{"cached", "uncached", "fullrecheck"}

			var accepted []core.ChannelID
			for i, spec := range equivRequests(300) {
				errs := make([]error, len(ctrls))
				ids := make([]core.ChannelID, len(ctrls))
				for j, c := range ctrls {
					ch, err := c.Request(spec)
					errs[j] = err
					if err == nil {
						ids[j] = ch.ID
					}
				}
				for j := 1; j < len(ctrls); j++ {
					if (errs[0] == nil) != (errs[j] == nil) {
						t.Fatalf("request %d: %s err=%v, %s err=%v", i, names[0], errs[0], names[j], errs[j])
					}
					if errs[0] != nil && errs[0].Error() != errs[j].Error() {
						t.Fatalf("request %d: diagnostics diverge:\n  %s: %v\n  %s: %v",
							i, names[0], errs[0], names[j], errs[j])
					}
					if errs[0] == nil && ids[0] != ids[j] {
						t.Fatalf("request %d: IDs diverge: %d vs %d", i, ids[0], ids[j])
					}
				}
				if errs[0] == nil {
					accepted = append(accepted, ids[0])
				}
				if i%4 == 1 && len(accepted) > 2 {
					victim := accepted[len(accepted)/2]
					accepted = append(accepted[:len(accepted)/2], accepted[len(accepted)/2+1:]...)
					for j, c := range ctrls {
						if err := c.Release(victim); err != nil {
							t.Fatalf("request %d: %s release: %v", i, names[j], err)
						}
					}
				}
			}

			for j := 1; j < len(ctrls); j++ {
				if got, want := fabricStateKey(ctrls[j].State()), fabricStateKey(ctrls[0].State()); got != want {
					t.Fatalf("states diverge (%s vs %s):\n%s\nvs\n%s", names[j], names[0], got, want)
				}
				if ctrls[j].Accepted() != ctrls[0].Accepted() {
					t.Fatalf("accept counts diverge: %s %d vs %s %d",
						names[j], ctrls[j].Accepted(), names[0], ctrls[0].Accepted())
				}
			}
			if cached.LinksChecked() != uncached.LinksChecked() {
				t.Fatalf("LinksChecked diverge: cached %d, uncached %d",
					cached.LinksChecked(), uncached.LinksChecked())
			}
			// H-SDPS is static: existing channels are never repartitioned,
			// so a sweep never contains a content-unchanged link and zero
			// cache hits is the correct (and desirable) outcome. Only the
			// adaptive scheme produces touched-but-unmoved links to skip.
			if _, adaptive := scheme.(HADPS); adaptive && cached.SweepSkips() == 0 {
				t.Error("verdict cache never hit on the adaptive fabric workload")
			}
			if uncached.SweepSkips() != 0 || full.SweepSkips() != 0 {
				t.Errorf("cache-disabled engines reported skips: uncached=%d full=%d",
					uncached.SweepSkips(), full.SweepSkips())
			}
		})
	}
}

// TestFabricRequestAllMatchesSequential verifies the fabric batch path
// commits exactly the sequential state for a feasible batch.
func TestFabricRequestAllMatchesSequential(t *testing.T) {
	specs := equivRequests(12)
	for _, scheme := range []HDPS{HSDPS{}, HADPS{}} {
		t.Run(scheme.Name(), func(t *testing.T) {
			seq := NewController(equivFabric(), Config{DPS: scheme})
			for i, spec := range specs {
				if _, err := seq.Request(spec); err != nil {
					t.Fatalf("sequential request %d rejected: %v", i, err)
				}
			}
			batch := NewController(equivFabric(), Config{DPS: scheme})
			chs, err := batch.RequestAll(specs)
			if err != nil {
				t.Fatalf("RequestAll rejected: %v", err)
			}
			if len(chs) != len(specs) {
				t.Fatalf("RequestAll returned %d channels for %d specs", len(chs), len(specs))
			}
			if got, want := fabricStateKey(batch.State()), fabricStateKey(seq.State()); got != want {
				t.Fatalf("batch and sequential states diverge:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestRepartitionedReportsExactDelta verifies the changed-channel set the
// controller reports is precisely what a full comparison of hop vectors
// yields — the contract the simulation budget sync relies on.
func TestRepartitionedReportsExactDelta(t *testing.T) {
	ctrl := NewController(equivFabric(), Config{DPS: HADPS{}})
	prev := map[core.ChannelID][]int64{}
	for i, spec := range equivRequests(40) {
		ch, err := ctrl.Request(spec)
		if err != nil {
			continue
		}
		_ = ch
		reported := map[core.ChannelID]bool{}
		for _, id := range ctrl.Repartitioned() {
			reported[id] = true
		}
		cur := map[core.ChannelID][]int64{}
		for _, hch := range ctrl.State().Channels() {
			cur[hch.ID] = append([]int64(nil), hch.Hops...)
			if equalVec(prev[hch.ID], hch.Hops) == reported[hch.ID] {
				t.Fatalf("request %d: channel %d changed=%v but reported=%v (prev=%v cur=%v)",
					i, hch.ID, !equalVec(prev[hch.ID], hch.Hops), reported[hch.ID], prev[hch.ID], hch.Hops)
			}
		}
		prev = cur
	}
}
