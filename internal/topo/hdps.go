package topo

import (
	"fmt"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/edf"
)

// HChannel is an RT channel routed across the fabric: the spec, its
// route, and the per-hop deadline split. For a unicast channel Route is
// a chain and d_i = sum(Hops); for a multicast channel Route is a
// shortest-path tree (Parents gives its shape) and every root→leaf
// path's budgets sum to d_i, so shared-prefix edges carry one budget
// rather than one per sink.
type HChannel struct {
	ID    core.ChannelID
	Spec  core.ChannelSpec
	Route []Edge
	Hops  []int64 // per-hop deadline budget, len == len(Route)

	// Parents encodes the tree shape of a multicast route: Parents[i] is
	// the index of the edge feeding Route[i], -1 for the root (source
	// uplink). Edges are ordered so that Parents[i] < i. Nil for unicast
	// chains (edge i-1 feeds edge i).
	Parents []int
	// Sinks is the sink set of a multicast channel (nil for unicast);
	// Leaves[k] is the index of the edge delivering to Sinks[k].
	Sinks  []core.NodeID
	Leaves []int

	// tags memoizes the per-hop task labels "HRT#<id>/<hop>" — formatting
	// them on every per-edge task rebuild showed up in admission profiles.
	tags []string
}

// String implements fmt.Stringer.
func (c *HChannel) String() string {
	return fmt.Sprintf("HRT#%d %v hops=%v", c.ID, c.Spec, c.Hops)
}

// Multicast reports whether the channel is a one-to-many tree.
func (c *HChannel) Multicast() bool { return len(c.Sinks) > 0 }

// parentOf returns the index of the edge feeding Route[i], -1 at the
// root — uniform over chains and trees.
func (c *HChannel) parentOf(i int) int {
	if c.Parents == nil {
		return i - 1
	}
	return c.Parents[i]
}

// PathTo returns the edge indices of the root→leaf path delivering to
// the k'th sink, in root-first order. For a unicast channel k must be 0
// and the path is the whole route.
func (c *HChannel) PathTo(k int) []int {
	if !c.Multicast() {
		path := make([]int, len(c.Route))
		for i := range path {
			path[i] = i
		}
		return path
	}
	var rev []int
	for e := c.Leaves[k]; e >= 0; e = c.parentOf(e) {
		rev = append(rev, e)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// taskTag returns the cached task label of one hop.
func (c *HChannel) taskTag(hop int) string {
	if c.tags == nil {
		c.tags = make([]string, len(c.Route))
	}
	if c.tags[hop] == "" {
		c.tags[hop] = fmt.Sprintf("HRT#%d/%d", c.ID, hop)
	}
	return c.tags[hop]
}

// topoOps teaches the generic admission kernel (internal/admit) the
// fabric vocabulary: a channel traverses the directed edges of its route,
// and its partition is the per-hop deadline budget vector.
var topoOps = &admit.Ops[Edge, *HChannel, []int64]{
	ID:     func(ch *HChannel) admit.ID { return ch.ID },
	UtilCP: func(ch *HChannel) (int64, int64) { return ch.Spec.C, ch.Spec.P },
	Links:  func(ch *HChannel) []Edge { return ch.Route },
	Task: func(ch *HChannel, hop int) edf.Task {
		return edf.Task{C: ch.Spec.C, P: ch.Spec.P, D: ch.Hops[hop], Tag: ch.taskTag(hop)}
	},
	Less: edgeLess,
	Part: func(ch *HChannel) []int64 { return append([]int64(nil), ch.Hops...) },
	SetPart: func(ch *HChannel, v []int64) {
		ch.Hops = append(ch.Hops[:0], v...)
	},
	HasPart:  func(ch *HChannel, v []int64) bool { return equalVec(ch.Hops, v) },
	Validate: validateVector,
	Clone: func(ch *HChannel) *HChannel {
		c := *ch
		c.Hops = append([]int64(nil), ch.Hops...)
		return &c
	},
}

// State holds the routed channels and per-edge loads of a fabric.
//
// Like the star state (core.State), it is a thin view over the shared
// copy-on-write admission kernel (internal/admit), which maintains the
// per-edge channel lists, memoized EDF task sets and exact rational
// utilization sums incrementally — so TasksOn and the admission verify
// sweep never scan the full channel map.
type State struct {
	k *admit.State[Edge, *HChannel, []int64]
}

// NewState returns an empty fabric state.
func NewState() *State {
	return &State{k: admit.NewState(topoOps)}
}

// Len returns the number of routed channels.
func (st *State) Len() int { return st.k.Len() }

// Get returns a channel by ID, or nil.
func (st *State) Get(id core.ChannelID) *HChannel { return st.k.Get(id) }

// Channels returns channels in establishment order.
func (st *State) Channels() []*HChannel { return st.k.Channels() }

// LinkLoad returns the number of channels traversing the directed edge.
func (st *State) LinkLoad(e Edge) int { return st.k.LinkLoad(e) }

// Edges returns every loaded edge in deterministic order.
func (st *State) Edges() []Edge { return st.k.Links() }

// edgeLess is the deterministic verification order on directed edges.
func edgeLess(a, b Edge) bool {
	less := func(a, b Endpoint) int {
		switch {
		case a.Switch != b.Switch:
			if !a.Switch {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		default:
			return 0
		}
	}
	c := less(a.From, b.From)
	if c == 0 {
		c = less(a.To, b.To)
	}
	return c < 0
}

// TasksOn derives the supposed task set of one directed edge. The
// returned slice is freshly allocated; the internal cache backing it is
// maintained incrementally.
func (st *State) TasksOn(e Edge) []edf.Task { return st.k.TasksOn(e) }

// tasksCached returns the memoized task set of an edge. The returned
// slice is shared — internal read-only callers use it to avoid the
// defensive copy TasksOn makes.
func (st *State) tasksCached(e Edge) []edf.Task { return st.k.TasksShared(e) }

// channelsOn returns the channel hops traversing an edge in establishment
// order. The returned slice is the live kernel cache — callers must not
// mutate or retain it.
func (st *State) channelsOn(e Edge) []admit.Ref[*HChannel] { return st.k.ChannelsOn(e) }

// MeanLinkUtilization returns the mean of the per-edge task-set
// utilizations over all loaded edges. Returns 0 for an empty state.
func (st *State) MeanLinkUtilization() float64 { return st.k.MeanLinkUtilization() }

// add, remove and clone delegate to the kernel (tests use them to build
// states directly).
func (st *State) add(ch *HChannel)              { st.k.Add(ch) }
func (st *State) remove(id core.ChannelID) bool { return st.k.Remove(id) }
func (st *State) allocID() core.ChannelID       { return st.k.AllocID() }
func (st *State) clone() *State                 { return &State{k: st.k.Clone()} }

// setHops installs a new hop-budget vector on a channel and invalidates
// the task caches of its route edges.
func (st *State) setHops(ch *HChannel, v []int64) { st.k.SetPart(ch, v) }

// HDPS is a hop-count-general deadline partitioning scheme: it assigns a
// per-hop deadline vector to every channel in the state such that the
// vector sums to d_i (condition (8) generalized) and every element is at
// least C_i (condition (9) generalized).
type HDPS interface {
	// Name identifies the scheme in reports.
	Name() string
	// Partition returns per-hop deadline vectors for all channels.
	Partition(st *State) map[core.ChannelID][]int64
}

// IncrementalHDPS is an optional refinement of HDPS for schemes whose
// vector for a channel depends only on that channel's own spec/route and
// the loads of the edges it traverses (true for HSDPS and HADPS). The
// fabric admission controller uses it to repartition copy-on-write.
type IncrementalHDPS interface {
	HDPS
	// PartitionTouched returns new vectors after a mutation that touched
	// the given edges. For each returned channel the value must equal
	// what Partition(st) would return, and every channel omitted must
	// already hold exactly that value.
	PartitionTouched(st *State, touched []Edge) map[core.ChannelID][]int64
}

// HSDPS splits every channel's deadline equally over its hops —
// SDPS generalized (on two-hop routes it reduces to SDPS exactly).
type HSDPS struct{}

// Name implements HDPS.
func (HSDPS) Name() string { return "H-SDPS" }

// vectorOf computes the equal split of one channel — shared by the full
// and incremental paths so they agree bit for bit. Unicast chains use
// splitDeadline exactly as before; multicast trees use the tree
// recursion with unit weights.
func (HSDPS) vectorOf(ch *HChannel) []int64 {
	weights := make([]int64, len(ch.Route))
	for i := range weights {
		weights[i] = 1
	}
	if ch.Multicast() {
		return splitDeadlineTree(ch, weights)
	}
	return splitDeadline(ch.Spec.D, ch.Spec.C, weights)
}

// Partition implements HDPS.
func (h HSDPS) Partition(st *State) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = h.vectorOf(ch)
	}
	return parts
}

// partitionTouched is the shared shell of every IncrementalHDPS
// implementation: collect the vector of each channel traversing a
// touched edge, deduplicating channels that traverse several of them.
func partitionTouched(st *State, touched []Edge, vector func(*HChannel) []int64) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64)
	for _, e := range touched {
		for _, r := range st.channelsOn(e) {
			if _, done := parts[r.Ch.ID]; done {
				continue
			}
			parts[r.Ch.ID] = vector(r.Ch)
		}
	}
	return parts
}

// partitionTouchedNew is partitionTouched for schemes whose vector
// depends only on the channel's own spec and route: committed vectors
// can never change, so only channels without one — the request's own new
// channels — need computing, keeping incremental admission O(new
// channels) per request.
func partitionTouchedNew(st *State, touched []Edge, vector func(*HChannel) []int64) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64)
	for _, e := range touched {
		for _, r := range st.channelsOn(e) {
			if len(r.Ch.Hops) != 0 {
				continue
			}
			if _, done := parts[r.Ch.ID]; done {
				continue
			}
			parts[r.Ch.ID] = vector(r.Ch)
		}
	}
	return parts
}

// PartitionTouched implements IncrementalHDPS. The equal split depends
// only on the spec and hop count, so beyond the request's own new
// channels nothing can move.
func (h HSDPS) PartitionTouched(st *State, touched []Edge) map[core.ChannelID][]int64 {
	return partitionTouchedNew(st, touched, h.vectorOf)
}

// HADPS weights each hop's share by that directed edge's link load —
// ADPS generalized (on two-hop routes it reduces to ADPS up to rounding).
type HADPS struct{}

// Name implements HDPS.
func (HADPS) Name() string { return "H-ADPS" }

// vectorOf computes the load-weighted split of one channel — shared by
// the full and incremental paths so they agree bit for bit. Unicast
// chains use splitDeadline exactly as before; multicast trees use the
// tree recursion with per-edge link-load weights.
func (HADPS) vectorOf(st *State, ch *HChannel) []int64 {
	weights := make([]int64, len(ch.Route))
	for i, e := range ch.Route {
		weights[i] = int64(st.LinkLoad(e))
	}
	if ch.Multicast() {
		return splitDeadlineTree(ch, weights)
	}
	return splitDeadline(ch.Spec.D, ch.Spec.C, weights)
}

// Partition implements HDPS.
func (h HADPS) Partition(st *State) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = h.vectorOf(st, ch)
	}
	return parts
}

// PartitionTouched implements IncrementalHDPS. A channel's vector depends
// on the loads of its own route edges only, so after a mutation that
// touched an edge set, exactly the channels traversing those edges can
// move.
func (h HADPS) PartitionTouched(st *State, touched []Edge) map[core.ChannelID][]int64 {
	return partitionTouched(st, touched, func(ch *HChannel) []int64 {
		return h.vectorOf(st, ch)
	})
}

// splitDeadline distributes D over len(weights) hops proportionally to
// the weights, with every hop getting at least C, summing exactly to D.
// Requires D >= len(weights)*C (checked by admission). Deterministic.
func splitDeadline(d, c int64, weights []int64) []int64 {
	h := len(weights)
	out := make([]int64, h)
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	if totalW == 0 {
		totalW = int64(h)
		for i := range weights {
			weights[i] = 1
		}
	}
	var acc int64
	for i, w := range weights {
		share := d * w / totalW
		if share < c {
			share = c
		}
		out[i] = share
		acc += share
	}
	// Rebalance to sum exactly to D: shave overweight hops round-robin,
	// then pour any remainder round-robin.
	for i := 0; acc > d; i = (i + 1) % h {
		if out[i] > c {
			out[i]--
			acc--
		}
	}
	for i := 0; acc < d; i = (i + 1) % h {
		out[i]++
		acc++
	}
	return out
}

// splitDeadlineTree distributes D over the edges of a multicast tree so
// that every root→leaf path's budgets sum exactly to D and every edge
// gets at least C — the tree generalization of splitDeadline (to which
// it reduces on a chain, up to rounding). It recurses top-down: at an
// edge with remaining deadline R it splits R over the deepest
// descendant chain through that edge (weight-proportionally, via
// splitDeadline), keeps the chain's first share for itself, and hands
// R minus that share to every child subtree; a leaf edge absorbs all
// remaining deadline, which is what makes each path sum exact. Shared
// prefix edges are budgeted once — the whole point of tree admission.
// Requires D >= depth*C along every path (checked at validation) and
// Parents[i] < i. Deterministic.
func splitDeadlineTree(ch *HChannel, weights []int64) []int64 {
	n := len(ch.Route)
	children := make([][]int, n)
	root := 0
	for i := 0; i < n; i++ {
		if p := ch.parentOf(i); p < 0 {
			root = i
		} else {
			children[p] = append(children[p], i)
		}
	}
	// depth[i] is the longest chain length from edge i to a leaf,
	// inclusive; children have higher indices, so one reverse pass works.
	depth := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		depth[i] = 1
		for _, c := range children[i] {
			if depth[c]+1 > depth[i] {
				depth[i] = depth[c] + 1
			}
		}
	}
	out := make([]int64, n)
	var assign func(e int, r int64)
	assign = func(e int, r int64) {
		if len(children[e]) == 0 {
			out[e] = r
			return
		}
		// Weight chain down the deepest descendant path (ties: first
		// child in edge order) — the path that constrains e's share most.
		chain := make([]int64, 0, depth[e])
		for cur := e; ; {
			chain = append(chain, weights[cur])
			if len(children[cur]) == 0 {
				break
			}
			best := children[cur][0]
			for _, c := range children[cur][1:] {
				if depth[c] > depth[best] {
					best = c
				}
			}
			cur = best
		}
		share := splitDeadline(r, ch.Spec.C, chain)[0]
		out[e] = share
		for _, c := range children[e] {
			assign(c, r-share)
		}
	}
	assign(root, ch.Spec.D)
	return out
}
