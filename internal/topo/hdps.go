package topo

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/core"
	"repro/internal/edf"
)

var ratOne = big.NewRat(1, 1)

// HChannel is an RT channel routed across the fabric: the spec, its
// route, and the per-hop deadline split d_i = sum(Hops).
type HChannel struct {
	ID    core.ChannelID
	Spec  core.ChannelSpec
	Route []Edge
	Hops  []int64 // per-hop deadline budget, len == len(Route)

	// tags memoizes the per-hop task labels "HRT#<id>/<hop>" — formatting
	// them on every per-edge task rebuild showed up in admission profiles.
	tags []string
}

// String implements fmt.Stringer.
func (c *HChannel) String() string {
	return fmt.Sprintf("HRT#%d %v hops=%v", c.ID, c.Spec, c.Hops)
}

// taskTag returns the cached task label of one hop.
func (c *HChannel) taskTag(hop int) string {
	if c.tags == nil {
		c.tags = make([]string, len(c.Route))
	}
	if c.tags[hop] == "" {
		c.tags[hop] = fmt.Sprintf("HRT#%d/%d", c.ID, hop)
	}
	return c.tags[hop]
}

// edgeRef locates one hop of one channel on an edge's task list.
type edgeRef struct {
	ch  *HChannel
	hop int
}

// State holds the routed channels and per-edge loads of a fabric.
//
// Like the star state (core.State), it maintains per-edge caches
// incrementally: byEdge maps every loaded edge to the channel hops
// traversing it (in establishment order), taskCache memoizes each edge's
// EDF task set, and utilSum keeps each edge's exact rational utilization —
// so TasksOn and the admission verify loop never scan the full channel
// map.
type State struct {
	channels map[core.ChannelID]*HChannel
	order    []core.ChannelID
	loads    map[Edge]int
	nextID   core.ChannelID

	byEdge    map[Edge][]edgeRef
	taskCache map[Edge][]edf.Task
	utilSum   map[Edge]*big.Rat
}

// NewState returns an empty fabric state.
func NewState() *State {
	return &State{
		channels:  make(map[core.ChannelID]*HChannel),
		loads:     make(map[Edge]int),
		nextID:    1,
		byEdge:    make(map[Edge][]edgeRef),
		taskCache: make(map[Edge][]edf.Task),
		utilSum:   make(map[Edge]*big.Rat),
	}
}

// Len returns the number of routed channels.
func (st *State) Len() int { return len(st.channels) }

// Get returns a channel by ID, or nil.
func (st *State) Get(id core.ChannelID) *HChannel { return st.channels[id] }

// Channels returns channels in establishment order.
func (st *State) Channels() []*HChannel {
	out := make([]*HChannel, 0, len(st.order))
	for _, id := range st.order {
		if ch, ok := st.channels[id]; ok {
			out = append(out, ch)
		}
	}
	return out
}

// LinkLoad returns the number of channels traversing the directed edge.
func (st *State) LinkLoad(e Edge) int { return st.loads[e] }

// Edges returns every loaded edge in deterministic order.
func (st *State) Edges() []Edge {
	out := make([]Edge, 0, len(st.loads))
	for e := range st.loads {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(edges []Edge) {
	less := func(a, b Endpoint) int {
		switch {
		case a.Switch != b.Switch:
			if !a.Switch {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		default:
			return 0
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		c := less(a.From, b.From)
		if c == 0 {
			c = less(a.To, b.To)
		}
		return c < 0
	})
}

// TasksOn derives the supposed task set of one directed edge. The
// returned slice is freshly allocated; the internal cache backing it is
// maintained incrementally.
func (st *State) TasksOn(e Edge) []edf.Task {
	cached := st.tasksCached(e)
	if cached == nil {
		return nil
	}
	return append([]edf.Task(nil), cached...)
}

// tasksCached returns the memoized task set of an edge, rebuilding it from
// the per-edge hop list when stale. The returned slice is shared —
// internal read-only callers (the feasibility test) use it to avoid the
// defensive copy TasksOn makes.
func (st *State) tasksCached(e Edge) []edf.Task {
	if tasks, ok := st.taskCache[e]; ok {
		return tasks
	}
	refs := st.byEdge[e]
	if len(refs) == 0 {
		return nil
	}
	tasks := make([]edf.Task, 0, len(refs))
	for _, r := range refs {
		tasks = append(tasks, edf.Task{
			C: r.ch.Spec.C, P: r.ch.Spec.P, D: r.ch.Hops[r.hop],
			Tag: r.ch.taskTag(r.hop),
		})
	}
	st.taskCache[e] = tasks
	return tasks
}

// channelsOn returns the channels traversing an edge in establishment
// order. The returned slice is the live cache — callers must not mutate
// or retain it.
func (st *State) channelsOn(e Edge) []edgeRef { return st.byEdge[e] }

// MeanLinkUtilization returns the mean of the per-edge task-set
// utilizations over all loaded edges. Returns 0 for an empty state.
func (st *State) MeanLinkUtilization() float64 {
	edges := st.Edges()
	if len(edges) == 0 {
		return 0
	}
	var sum float64
	for _, e := range edges {
		sum += edf.UtilizationFloat(st.tasksCached(e))
	}
	return sum / float64(len(edges))
}

func (st *State) add(ch *HChannel) {
	st.channels[ch.ID] = ch
	st.order = append(st.order, ch.ID)
	for i, e := range ch.Route {
		st.loads[e]++
		st.byEdge[e] = append(st.byEdge[e], edgeRef{ch: ch, hop: i})
		delete(st.taskCache, e)
		st.addUtil(e, ch.Spec)
	}
}

// undoAdd reverses the most recent add exactly: the channel must be the
// last one added and still present, so a rolled-back tentative admission
// leaves no trace.
func (st *State) undoAdd(ch *HChannel) {
	if len(st.order) == 0 || st.order[len(st.order)-1] != ch.ID {
		panic(fmt.Sprintf("topo: undoAdd of HRT#%d out of order", ch.ID))
	}
	delete(st.channels, ch.ID)
	st.order = st.order[:len(st.order)-1]
	for _, e := range ch.Route {
		if st.loads[e]--; st.loads[e] == 0 {
			delete(st.loads, e)
		}
		refs := st.byEdge[e]
		if len(refs) == 1 {
			delete(st.byEdge, e)
		} else {
			st.byEdge[e] = refs[:len(refs)-1]
		}
		delete(st.taskCache, e)
		st.subUtil(e, ch.Spec)
	}
}

func (st *State) remove(id core.ChannelID) bool {
	ch, ok := st.channels[id]
	if !ok {
		return false
	}
	delete(st.channels, id)
	for _, e := range ch.Route {
		if st.loads[e]--; st.loads[e] == 0 {
			delete(st.loads, e)
		}
		refs := st.byEdge[e]
		kept := refs[:0]
		for _, r := range refs {
			if r.ch.ID != id {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(st.byEdge, e)
		} else {
			st.byEdge[e] = kept
		}
		delete(st.taskCache, e)
		st.subUtil(e, ch.Spec)
	}
	if len(st.order) >= 2*len(st.channels)+8 {
		kept := st.order[:0]
		for _, oid := range st.order {
			if _, alive := st.channels[oid]; alive {
				kept = append(kept, oid)
			}
		}
		st.order = kept
	}
	return true
}

// setHops installs a new hop-budget vector on a channel and invalidates
// the task caches of its route edges. All repartitioning goes through
// here so the caches can never go stale.
func (st *State) setHops(ch *HChannel, v []int64) {
	ch.Hops = append(ch.Hops[:0], v...)
	for _, e := range ch.Route {
		delete(st.taskCache, e)
	}
}

// addUtil folds one channel's C/P into an edge's running utilization sum.
func (st *State) addUtil(e Edge, s core.ChannelSpec) {
	u := st.utilSum[e]
	if u == nil {
		u = new(big.Rat)
		st.utilSum[e] = u
	}
	u.Add(u, new(big.Rat).SetFrac64(s.C, s.P))
}

// subUtil removes one channel's C/P from an edge's running sum, dropping
// the entry when the edge is no longer loaded.
func (st *State) subUtil(e Edge, s core.ChannelSpec) {
	if st.loads[e] == 0 {
		delete(st.utilSum, e)
		return
	}
	if u := st.utilSum[e]; u != nil {
		u.Sub(u, new(big.Rat).SetFrac64(s.C, s.P))
	}
}

// utilExceedsOne reports the exact first-constraint answer (U > 1) for an
// edge from the incrementally maintained sum.
func (st *State) utilExceedsOne(e Edge) bool {
	u := st.utilSum[e]
	return u != nil && u.Cmp(ratOne) > 0
}

func (st *State) allocID() core.ChannelID {
	for i := 0; i < 1<<16; i++ {
		id := st.nextID
		st.nextID++
		if st.nextID == 0 {
			st.nextID = 1
		}
		if _, used := st.channels[id]; !used && id != 0 {
			return id
		}
	}
	panic("topo: all channel IDs in use")
}

func (st *State) clone() *State {
	cp := &State{
		channels:  make(map[core.ChannelID]*HChannel, len(st.channels)),
		order:     append([]core.ChannelID(nil), st.order...),
		loads:     make(map[Edge]int, len(st.loads)),
		nextID:    st.nextID,
		byEdge:    make(map[Edge][]edgeRef, len(st.byEdge)),
		taskCache: make(map[Edge][]edf.Task),
		utilSum:   make(map[Edge]*big.Rat, len(st.utilSum)),
	}
	for id, ch := range st.channels {
		c := *ch
		c.Hops = append([]int64(nil), ch.Hops...)
		cp.channels[id] = &c
	}
	for e, n := range st.loads {
		cp.loads[e] = n
	}
	for e, refs := range st.byEdge {
		rs := make([]edgeRef, len(refs))
		for i, r := range refs {
			rs[i] = edgeRef{ch: cp.channels[r.ch.ID], hop: r.hop}
		}
		cp.byEdge[e] = rs
	}
	for e, u := range st.utilSum {
		cp.utilSum[e] = new(big.Rat).Set(u)
	}
	return cp
}

// HDPS is a hop-count-general deadline partitioning scheme: it assigns a
// per-hop deadline vector to every channel in the state such that the
// vector sums to d_i (condition (8) generalized) and every element is at
// least C_i (condition (9) generalized).
type HDPS interface {
	// Name identifies the scheme in reports.
	Name() string
	// Partition returns per-hop deadline vectors for all channels.
	Partition(st *State) map[core.ChannelID][]int64
}

// IncrementalHDPS is an optional refinement of HDPS for schemes whose
// vector for a channel depends only on that channel's own spec/route and
// the loads of the edges it traverses (true for HSDPS and HADPS). The
// fabric admission controller uses it to repartition copy-on-write.
type IncrementalHDPS interface {
	HDPS
	// PartitionTouched returns new vectors after a mutation that touched
	// the given edges. For each returned channel the value must equal
	// what Partition(st) would return, and every channel omitted must
	// already hold exactly that value.
	PartitionTouched(st *State, touched []Edge) map[core.ChannelID][]int64
}

// HSDPS splits every channel's deadline equally over its hops —
// SDPS generalized (on two-hop routes it reduces to SDPS exactly).
type HSDPS struct{}

// Name implements HDPS.
func (HSDPS) Name() string { return "H-SDPS" }

// vectorOf computes the equal split of one channel — shared by the full
// and incremental paths so they agree bit for bit.
func (HSDPS) vectorOf(ch *HChannel) []int64 {
	weights := make([]int64, len(ch.Route))
	for i := range weights {
		weights[i] = 1
	}
	return splitDeadline(ch.Spec.D, ch.Spec.C, weights)
}

// Partition implements HDPS.
func (h HSDPS) Partition(st *State) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = h.vectorOf(ch)
	}
	return parts
}

// partitionTouched is the shared shell of every IncrementalHDPS
// implementation: collect the vector of each channel traversing a
// touched edge, deduplicating channels that traverse several of them.
func partitionTouched(st *State, touched []Edge, vector func(*HChannel) []int64) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64)
	for _, e := range touched {
		for _, r := range st.channelsOn(e) {
			if _, done := parts[r.ch.ID]; done {
				continue
			}
			parts[r.ch.ID] = vector(r.ch)
		}
	}
	return parts
}

// partitionTouchedNew is partitionTouched for schemes whose vector
// depends only on the channel's own spec and route: committed vectors
// can never change, so only channels without one — the request's own new
// channels — need computing, keeping incremental admission O(new
// channels) per request.
func partitionTouchedNew(st *State, touched []Edge, vector func(*HChannel) []int64) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64)
	for _, e := range touched {
		for _, r := range st.channelsOn(e) {
			if len(r.ch.Hops) != 0 {
				continue
			}
			if _, done := parts[r.ch.ID]; done {
				continue
			}
			parts[r.ch.ID] = vector(r.ch)
		}
	}
	return parts
}

// PartitionTouched implements IncrementalHDPS. The equal split depends
// only on the spec and hop count, so beyond the request's own new
// channels nothing can move.
func (h HSDPS) PartitionTouched(st *State, touched []Edge) map[core.ChannelID][]int64 {
	return partitionTouchedNew(st, touched, h.vectorOf)
}

// HADPS weights each hop's share by that directed edge's link load —
// ADPS generalized (on two-hop routes it reduces to ADPS up to rounding).
type HADPS struct{}

// Name implements HDPS.
func (HADPS) Name() string { return "H-ADPS" }

// vectorOf computes the load-weighted split of one channel — shared by
// the full and incremental paths so they agree bit for bit.
func (HADPS) vectorOf(st *State, ch *HChannel) []int64 {
	weights := make([]int64, len(ch.Route))
	for i, e := range ch.Route {
		weights[i] = int64(st.LinkLoad(e))
	}
	return splitDeadline(ch.Spec.D, ch.Spec.C, weights)
}

// Partition implements HDPS.
func (h HADPS) Partition(st *State) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64, st.Len())
	for _, ch := range st.Channels() {
		parts[ch.ID] = h.vectorOf(st, ch)
	}
	return parts
}

// PartitionTouched implements IncrementalHDPS. A channel's vector depends
// on the loads of its own route edges only, so after a mutation that
// touched an edge set, exactly the channels traversing those edges can
// move.
func (h HADPS) PartitionTouched(st *State, touched []Edge) map[core.ChannelID][]int64 {
	return partitionTouched(st, touched, func(ch *HChannel) []int64 {
		return h.vectorOf(st, ch)
	})
}

// splitDeadline distributes D over len(weights) hops proportionally to
// the weights, with every hop getting at least C, summing exactly to D.
// Requires D >= len(weights)*C (checked by admission). Deterministic.
func splitDeadline(d, c int64, weights []int64) []int64 {
	h := len(weights)
	out := make([]int64, h)
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	if totalW == 0 {
		totalW = int64(h)
		for i := range weights {
			weights[i] = 1
		}
	}
	var acc int64
	for i, w := range weights {
		share := d * w / totalW
		if share < c {
			share = c
		}
		out[i] = share
		acc += share
	}
	// Rebalance to sum exactly to D: shave overweight hops round-robin,
	// then pour any remainder round-robin.
	for i := 0; acc > d; i = (i + 1) % h {
		if out[i] > c {
			out[i]--
			acc--
		}
	}
	for i := 0; acc < d; i = (i + 1) % h {
		out[i]++
		acc++
	}
	return out
}
