package topo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/edf"
)

// HChannel is an RT channel routed across the fabric: the spec, its
// route, and the per-hop deadline split d_i = sum(Hops).
type HChannel struct {
	ID    core.ChannelID
	Spec  core.ChannelSpec
	Route []Edge
	Hops  []int64 // per-hop deadline budget, len == len(Route)
}

// String implements fmt.Stringer.
func (c *HChannel) String() string {
	return fmt.Sprintf("HRT#%d %v hops=%v", c.ID, c.Spec, c.Hops)
}

// State holds the routed channels and per-edge loads of a fabric.
type State struct {
	channels map[core.ChannelID]*HChannel
	order    []core.ChannelID
	loads    map[Edge]int
	nextID   core.ChannelID
}

// NewState returns an empty fabric state.
func NewState() *State {
	return &State{
		channels: make(map[core.ChannelID]*HChannel),
		loads:    make(map[Edge]int),
		nextID:   1,
	}
}

// Len returns the number of routed channels.
func (st *State) Len() int { return len(st.channels) }

// Get returns a channel by ID, or nil.
func (st *State) Get(id core.ChannelID) *HChannel { return st.channels[id] }

// Channels returns channels in establishment order.
func (st *State) Channels() []*HChannel {
	out := make([]*HChannel, 0, len(st.order))
	for _, id := range st.order {
		if ch, ok := st.channels[id]; ok {
			out = append(out, ch)
		}
	}
	return out
}

// LinkLoad returns the number of channels traversing the directed edge.
func (st *State) LinkLoad(e Edge) int { return st.loads[e] }

// Edges returns every loaded edge in deterministic order.
func (st *State) Edges() []Edge {
	out := make([]Edge, 0, len(st.loads))
	for e := range st.loads {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(edges []Edge) {
	less := func(a, b Endpoint) int {
		switch {
		case a.Switch != b.Switch:
			if !a.Switch {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		default:
			return 0
		}
	}
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j-1], edges[j]
			c := less(a.From, b.From)
			if c == 0 {
				c = less(a.To, b.To)
			}
			if c <= 0 {
				break
			}
			edges[j-1], edges[j] = edges[j], edges[j-1]
		}
	}
}

// TasksOn derives the supposed task set of one directed edge.
func (st *State) TasksOn(e Edge) []edf.Task {
	var tasks []edf.Task
	for _, id := range st.order {
		ch, ok := st.channels[id]
		if !ok {
			continue
		}
		for i, hop := range ch.Route {
			if hop == e {
				tasks = append(tasks, edf.Task{
					C: ch.Spec.C, P: ch.Spec.P, D: ch.Hops[i],
					Tag: fmt.Sprintf("HRT#%d/%d", ch.ID, i),
				})
			}
		}
	}
	return tasks
}

func (st *State) add(ch *HChannel) {
	st.channels[ch.ID] = ch
	st.order = append(st.order, ch.ID)
	for _, e := range ch.Route {
		st.loads[e]++
	}
}

func (st *State) remove(id core.ChannelID) bool {
	ch, ok := st.channels[id]
	if !ok {
		return false
	}
	delete(st.channels, id)
	for _, e := range ch.Route {
		if st.loads[e]--; st.loads[e] == 0 {
			delete(st.loads, e)
		}
	}
	if len(st.order) >= 2*len(st.channels)+8 {
		kept := st.order[:0]
		for _, oid := range st.order {
			if _, alive := st.channels[oid]; alive {
				kept = append(kept, oid)
			}
		}
		st.order = kept
	}
	return true
}

func (st *State) allocID() core.ChannelID {
	for i := 0; i < 1<<16; i++ {
		id := st.nextID
		st.nextID++
		if st.nextID == 0 {
			st.nextID = 1
		}
		if _, used := st.channels[id]; !used && id != 0 {
			return id
		}
	}
	panic("topo: all channel IDs in use")
}

func (st *State) clone() *State {
	cp := &State{
		channels: make(map[core.ChannelID]*HChannel, len(st.channels)),
		order:    append([]core.ChannelID(nil), st.order...),
		loads:    make(map[Edge]int, len(st.loads)),
		nextID:   st.nextID,
	}
	for id, ch := range st.channels {
		c := *ch
		c.Hops = append([]int64(nil), ch.Hops...)
		cp.channels[id] = &c
	}
	for e, n := range st.loads {
		cp.loads[e] = n
	}
	return cp
}

// HDPS is a hop-count-general deadline partitioning scheme: it assigns a
// per-hop deadline vector to every channel in the state such that the
// vector sums to d_i (condition (8) generalized) and every element is at
// least C_i (condition (9) generalized).
type HDPS interface {
	// Name identifies the scheme in reports.
	Name() string
	// Partition returns per-hop deadline vectors for all channels.
	Partition(st *State) map[core.ChannelID][]int64
}

// HSDPS splits every channel's deadline equally over its hops —
// SDPS generalized (on two-hop routes it reduces to SDPS exactly).
type HSDPS struct{}

// Name implements HDPS.
func (HSDPS) Name() string { return "H-SDPS" }

// Partition implements HDPS.
func (HSDPS) Partition(st *State) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64, st.Len())
	for _, ch := range st.Channels() {
		weights := make([]int64, len(ch.Route))
		for i := range weights {
			weights[i] = 1
		}
		parts[ch.ID] = splitDeadline(ch.Spec.D, ch.Spec.C, weights)
	}
	return parts
}

// HADPS weights each hop's share by that directed edge's link load —
// ADPS generalized (on two-hop routes it reduces to ADPS up to rounding).
type HADPS struct{}

// Name implements HDPS.
func (HADPS) Name() string { return "H-ADPS" }

// Partition implements HDPS.
func (HADPS) Partition(st *State) map[core.ChannelID][]int64 {
	parts := make(map[core.ChannelID][]int64, st.Len())
	for _, ch := range st.Channels() {
		weights := make([]int64, len(ch.Route))
		for i, e := range ch.Route {
			weights[i] = int64(st.LinkLoad(e))
		}
		parts[ch.ID] = splitDeadline(ch.Spec.D, ch.Spec.C, weights)
	}
	return parts
}

// splitDeadline distributes D over len(weights) hops proportionally to
// the weights, with every hop getting at least C, summing exactly to D.
// Requires D >= len(weights)*C (checked by admission). Deterministic.
func splitDeadline(d, c int64, weights []int64) []int64 {
	h := len(weights)
	out := make([]int64, h)
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	if totalW == 0 {
		totalW = int64(h)
		for i := range weights {
			weights[i] = 1
		}
	}
	var acc int64
	for i, w := range weights {
		share := d * w / totalW
		if share < c {
			share = c
		}
		out[i] = share
		acc += share
	}
	// Rebalance to sum exactly to D: shave overweight hops round-robin,
	// then pour any remainder round-robin.
	for i := 0; acc > d; i = (i + 1) % h {
		if out[i] > c {
			out[i]--
			acc--
		}
	}
	for i := 0; acc < d; i = (i + 1) % h {
		out[i]++
		acc++
	}
	return out
}
