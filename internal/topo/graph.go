// Package topo extends the paper's star network to the multi-switch
// topologies its future-work section calls for (§18.5: "networks
// consisting of many interconnected Switches"). End-nodes attach to
// switches, switches interconnect arbitrarily, channels are routed by a
// pluggable route.Router (deterministic shortest paths by default), and
// the deadline of a channel is partitioned over every directed link of
// its route — generalizing SDPS/ADPS from two hops to h hops. Admission
// control tests EDF feasibility of every directed link, exactly as in
// the star case.
//
// All graph and path computation lives in internal/route; this package
// re-exports the vocabulary types (SwitchID, Endpoint, Edge) as aliases
// and layers deadline partitioning plus EDF admission on top. The
// underlying route.Graph is mutable at runtime — SetLinkUp/SetSwitchUp
// flip element availability for survivability scenarios — while the
// admission state keeps the routes channels were admitted with until the
// owner explicitly re-routes them.
//
// The package is analysis-level (like the paper's own evaluation): it
// decides acceptance; the cycle-accurate simulator remains single-switch.
package topo

import (
	"repro/internal/core"
	"repro/internal/route"
)

// SwitchID identifies a switch in the fabric.
type SwitchID = route.SwitchID

// Endpoint is one end of a directed link: either an end-node or a switch.
type Endpoint = route.Endpoint

// Edge is one directed link (one pseudo-processor, as in §18.3.2 — each
// full-duplex physical link contributes two Edges).
type Edge = route.Edge

// NodeEnd returns the endpoint of an end-node.
func NodeEnd(n core.NodeID) Endpoint { return route.NodeEnd(n) }

// SwitchEnd returns the endpoint of a switch.
func SwitchEnd(s SwitchID) Endpoint { return route.SwitchEnd(s) }

// Topology construction errors, shared with internal/route (errors.Is
// matches across both packages).
var (
	// ErrUnknownSwitch marks an operation naming a switch that was never added.
	ErrUnknownSwitch = route.ErrUnknownSwitch
	// ErrUnknownNode marks a routing request for a node that was never attached.
	ErrUnknownNode = route.ErrUnknownNode
	// ErrDuplicate marks re-registration of an existing element.
	ErrDuplicate = route.ErrDuplicate
	// ErrNoRoute marks a (src, dst) pair with no connecting path left.
	ErrNoRoute = route.ErrNoRoute
	// ErrUnknownLink marks SetLinkUp on a trunk that does not exist.
	ErrUnknownLink = route.ErrUnknownLink
)

// Topology is the physical layout: switches, inter-switch links and node
// attachments, owned by a route.Graph, plus the Router that picks paths
// over it. Construction and mutation are not safe for concurrent use.
type Topology struct {
	graph  *route.Graph
	router route.Router
}

// NewTopology returns an empty fabric routed by route.Shortest.
func NewTopology() *Topology {
	return &Topology{graph: route.NewGraph(), router: route.Shortest{}}
}

// Graph exposes the underlying mutable route.Graph.
func (t *Topology) Graph() *route.Graph { return t.graph }

// Router returns the active routing policy.
func (t *Topology) Router() route.Router { return t.router }

// SetRouter swaps the routing policy. Existing admitted channels keep
// the routes they were admitted with; only new routing calls change.
func (t *Topology) SetRouter(r route.Router) {
	if r == nil {
		r = route.Shortest{}
	}
	t.router = r
}

// AddSwitch registers a switch.
func (t *Topology) AddSwitch(id SwitchID) error { return t.graph.AddSwitch(id) }

// ConnectSwitches adds a full-duplex trunk between two switches.
func (t *Topology) ConnectSwitches(a, b SwitchID) error { return t.graph.ConnectSwitches(a, b) }

// AttachNode homes an end-node on a switch.
func (t *Topology) AttachNode(n core.NodeID, s SwitchID) error { return t.graph.AttachNode(n, s) }

// Home returns the switch a node attaches to.
func (t *Topology) Home(n core.NodeID) (SwitchID, bool) { return t.graph.Home(n) }

// SetLinkUp marks the trunk between a and b as up or down, reporting
// whether the state changed. Routes computed before a flip are not
// recomputed here; the admission owner decides what to re-route.
func (t *Topology) SetLinkUp(a, b SwitchID, up bool) (bool, error) {
	return t.graph.SetLinkUp(a, b, up)
}

// SetSwitchUp marks a switch as up or down, reporting whether the state
// changed.
func (t *Topology) SetSwitchUp(s SwitchID, up bool) (bool, error) {
	return t.graph.SetSwitchUp(s, up)
}

// Version counts route-invalidating graph mutations (see route.Graph.Version).
func (t *Topology) Version() uint64 { return t.graph.Version() }

// Route returns the directed links of the active router's path from src
// to dst: src→home(src), a trunk sequence, and home(dst)→dst. The
// default route.Shortest uses BFS with sorted adjacency, making the
// choice deterministic among equal-length paths.
func (t *Topology) Route(src, dst core.NodeID) ([]Edge, error) {
	return t.router.Route(t.graph, src, dst)
}

// MulticastTree routes a distribution tree from src to every sink via
// the active router (deterministic shortest-path tree by default, with
// shared prefixes deduped into single tree edges). It returns the tree's
// directed edges (edge 0 is the source uplink), the parent index of each
// edge (-1 for the root; always parents[i] < i), and for each sink the
// index of its delivering leaf edge.
func (t *Topology) MulticastTree(src core.NodeID, sinks []core.NodeID) (route []Edge, parents []int, leaves []int, err error) {
	return t.router.Tree(t.graph, src, sinks)
}

// Line builds a chain of k switches (IDs 0..k-1) with trunks between
// neighbours — the canonical multi-switch evaluation fabric.
func Line(k int) *Topology {
	t := NewTopology()
	for i := 0; i < k; i++ {
		if err := t.AddSwitch(SwitchID(i)); err != nil {
			panic(err)
		}
	}
	for i := 1; i < k; i++ {
		if err := t.ConnectSwitches(SwitchID(i-1), SwitchID(i)); err != nil {
			panic(err)
		}
	}
	return t
}
