// Package topo extends the paper's star network to the multi-switch
// topologies its future-work section calls for (§18.5: "networks
// consisting of many interconnected Switches"). End-nodes attach to
// switches, switches interconnect arbitrarily, channels are routed along
// shortest paths, and the deadline of a channel is partitioned over every
// directed link of its route — generalizing SDPS/ADPS from two hops to h
// hops. Admission control tests EDF feasibility of every directed link,
// exactly as in the star case.
//
// The package is analysis-level (like the paper's own evaluation): it
// decides acceptance; the cycle-accurate simulator remains single-switch.
package topo

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// SwitchID identifies a switch in the fabric.
type SwitchID uint16

// Endpoint is one end of a directed link: either an end-node or a switch.
type Endpoint struct {
	Switch bool
	ID     uint16
}

// NodeEnd returns the endpoint of an end-node.
func NodeEnd(n core.NodeID) Endpoint { return Endpoint{ID: uint16(n)} }

// SwitchEnd returns the endpoint of a switch.
func SwitchEnd(s SwitchID) Endpoint { return Endpoint{Switch: true, ID: uint16(s)} }

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	if e.Switch {
		return fmt.Sprintf("sw%d", e.ID)
	}
	return fmt.Sprintf("n%d", e.ID)
}

// Edge is one directed link (one pseudo-processor, as in §18.3.2 — each
// full-duplex physical link contributes two Edges).
type Edge struct {
	From, To Endpoint
}

// String implements fmt.Stringer.
func (e Edge) String() string { return e.From.String() + "→" + e.To.String() }

// Topology is the physical layout: switches, inter-switch links and node
// attachments. Construction is not safe for concurrent use.
type Topology struct {
	switches map[SwitchID]struct{}
	adj      map[SwitchID][]SwitchID    // sorted adjacency, both directions
	home     map[core.NodeID]SwitchID   // node → attachment switch
	nodesAt  map[SwitchID][]core.NodeID // reverse, sorted
}

// Topology construction errors.
var (
	ErrUnknownSwitch = errors.New("topo: unknown switch")
	ErrUnknownNode   = errors.New("topo: unknown node")
	ErrDuplicate     = errors.New("topo: duplicate element")
	ErrNoRoute       = errors.New("topo: no route between nodes")
)

// NewTopology returns an empty fabric.
func NewTopology() *Topology {
	return &Topology{
		switches: make(map[SwitchID]struct{}),
		adj:      make(map[SwitchID][]SwitchID),
		home:     make(map[core.NodeID]SwitchID),
		nodesAt:  make(map[SwitchID][]core.NodeID),
	}
}

// AddSwitch registers a switch.
func (t *Topology) AddSwitch(id SwitchID) error {
	if _, dup := t.switches[id]; dup {
		return fmt.Errorf("%w: switch %d", ErrDuplicate, id)
	}
	t.switches[id] = struct{}{}
	return nil
}

// ConnectSwitches adds a full-duplex trunk between two switches.
func (t *Topology) ConnectSwitches(a, b SwitchID) error {
	if _, ok := t.switches[a]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, a)
	}
	if _, ok := t.switches[b]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, b)
	}
	if a == b {
		return fmt.Errorf("%w: self-link on switch %d", ErrDuplicate, a)
	}
	for _, n := range t.adj[a] {
		if n == b {
			return fmt.Errorf("%w: trunk %d-%d", ErrDuplicate, a, b)
		}
	}
	t.adj[a] = insertSorted(t.adj[a], b)
	t.adj[b] = insertSorted(t.adj[b], a)
	return nil
}

func insertSorted(s []SwitchID, v SwitchID) []SwitchID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// AttachNode homes an end-node on a switch.
func (t *Topology) AttachNode(n core.NodeID, s SwitchID) error {
	if _, ok := t.switches[s]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, s)
	}
	if _, dup := t.home[n]; dup {
		return fmt.Errorf("%w: node %d", ErrDuplicate, n)
	}
	t.home[n] = s
	t.nodesAt[s] = append(t.nodesAt[s], n)
	sort.Slice(t.nodesAt[s], func(i, j int) bool { return t.nodesAt[s][i] < t.nodesAt[s][j] })
	return nil
}

// Home returns the switch a node attaches to.
func (t *Topology) Home(n core.NodeID) (SwitchID, bool) {
	s, ok := t.home[n]
	return s, ok
}

// Route returns the directed links of the shortest path from src to dst:
// src→home(src), a shortest switch-to-switch trunk sequence, and
// home(dst)→dst. BFS with sorted adjacency makes the choice deterministic
// among equal-length paths.
func (t *Topology) Route(src, dst core.NodeID) ([]Edge, error) {
	if src == dst {
		return nil, fmt.Errorf("topo: route from node %d to itself", src)
	}
	sSrc, ok := t.home[src]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	sDst, ok := t.home[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}
	swPath, err := t.switchPath(sSrc, sDst)
	if err != nil {
		return nil, err
	}
	edges := make([]Edge, 0, len(swPath)+1)
	edges = append(edges, Edge{From: NodeEnd(src), To: SwitchEnd(sSrc)})
	for i := 1; i < len(swPath); i++ {
		edges = append(edges, Edge{From: SwitchEnd(swPath[i-1]), To: SwitchEnd(swPath[i])})
	}
	edges = append(edges, Edge{From: SwitchEnd(sDst), To: NodeEnd(dst)})
	return edges, nil
}

// MulticastTree routes a shortest-path tree from src to every sink: one
// BFS from home(src) fixes a deterministic shortest path to every
// switch, each sink's path is read off the same predecessor map, and
// shared prefixes therefore dedupe into single tree edges. It returns
// the tree's directed edges (edge 0 is the source uplink), the parent
// index of each edge (-1 for the root; always parents[i] < i), and for
// each sink the index of its delivering leaf edge.
func (t *Topology) MulticastTree(src core.NodeID, sinks []core.NodeID) (route []Edge, parents []int, leaves []int, err error) {
	sSrc, ok := t.home[src]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	// Full BFS from the source switch; prev[s] is s's predecessor on the
	// unique (deterministic, sorted-adjacency) shortest path from sSrc.
	prev := map[SwitchID]SwitchID{sSrc: sSrc}
	queue := []SwitchID{sSrc}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range t.adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			queue = append(queue, next)
		}
	}
	route = append(route, Edge{From: NodeEnd(src), To: SwitchEnd(sSrc)})
	parents = append(parents, -1)
	// treeAt maps a switch already spanned by the tree to the index of
	// the edge that delivers into it.
	treeAt := map[SwitchID]int{sSrc: 0}
	for _, sink := range sinks {
		if sink == src {
			return nil, nil, nil, fmt.Errorf("topo: multicast from node %d to itself", src)
		}
		sDst, ok := t.home[sink]
		if !ok {
			return nil, nil, nil, fmt.Errorf("%w: %d", ErrUnknownNode, sink)
		}
		if _, reached := prev[sDst]; !reached {
			return nil, nil, nil, fmt.Errorf("%w: sw%d to sw%d", ErrNoRoute, sSrc, sDst)
		}
		// Walk back to the source switch, then graft the not-yet-spanned
		// suffix onto the tree front to back.
		var path []SwitchID
		for at := sDst; at != sSrc; at = prev[at] {
			path = append(path, at)
		}
		for i := len(path) - 1; i >= 0; i-- {
			s := path[i]
			if _, spanned := treeAt[s]; spanned {
				continue
			}
			route = append(route, Edge{From: SwitchEnd(prev[s]), To: SwitchEnd(s)})
			parents = append(parents, treeAt[prev[s]])
			treeAt[s] = len(route) - 1
		}
		route = append(route, Edge{From: SwitchEnd(sDst), To: NodeEnd(sink)})
		parents = append(parents, treeAt[sDst])
		leaves = append(leaves, len(route)-1)
	}
	return route, parents, leaves, nil
}

// switchPath runs BFS over the trunk graph.
func (t *Topology) switchPath(from, to SwitchID) ([]SwitchID, error) {
	if from == to {
		return []SwitchID{from}, nil
	}
	prev := map[SwitchID]SwitchID{from: from}
	queue := []SwitchID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range t.adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []SwitchID
				for at := to; ; at = prev[at] {
					path = append(path, at)
					if at == from {
						break
					}
				}
				// Reverse in place.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("%w: sw%d to sw%d", ErrNoRoute, from, to)
}

// Line builds a chain of k switches (IDs 0..k-1) with trunks between
// neighbours — the canonical multi-switch evaluation fabric.
func Line(k int) *Topology {
	t := NewTopology()
	for i := 0; i < k; i++ {
		if err := t.AddSwitch(SwitchID(i)); err != nil {
			panic(err)
		}
	}
	for i := 1; i < k; i++ {
		if err := t.ConnectSwitches(SwitchID(i-1), SwitchID(i)); err != nil {
			panic(err)
		}
	}
	return t
}
