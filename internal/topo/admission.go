package topo

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/edf"
)

// ErrDeadlineTooShortForRoute generalizes condition (9): a channel
// crossing h store-and-forward hops needs D >= h*C.
var ErrDeadlineTooShortForRoute = errors.New("topo: deadline below hops*C for the route")

// RejectionError reports the edge that failed admission.
type RejectionError struct {
	Edge   Edge
	Result edf.Result
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("topo: channel not feasible on %v: %v", e.Edge, e.Result)
}

// Unwrap lets errors.Is match core.ErrInfeasible.
func (e *RejectionError) Unwrap() error { return core.ErrInfeasible }

// Config tunes the fabric admission controller.
type Config struct {
	// DPS is the hop partitioning scheme; nil means HSDPS.
	DPS HDPS
	// Feasibility passes through to the per-edge EDF test.
	Feasibility edf.Options
}

// Controller is the fabric-wide admission control: route, partition the
// deadline over the route's directed links, and verify EDF feasibility of
// every affected link — §18.3.2 generalized to many switches.
type Controller struct {
	topo  *Topology
	cfg   Config
	state *State

	requests int
	accepted int
}

// NewController builds a controller over a fixed topology.
func NewController(t *Topology, cfg Config) *Controller {
	if cfg.DPS == nil {
		cfg.DPS = HSDPS{}
	}
	cfg.Feasibility.SkipValidation = true
	return &Controller{topo: t, cfg: cfg, state: NewState()}
}

// State exposes the committed state (read-only for callers).
func (c *Controller) State() *State { return c.state }

// DPS returns the active partitioning scheme.
func (c *Controller) DPS() HDPS { return c.cfg.DPS }

// Accepted returns how many requests have been admitted.
func (c *Controller) Accepted() int { return c.accepted }

// Requests returns how many requests have been made.
func (c *Controller) Requests() int { return c.requests }

// Request routes and admission-tests a channel; on success it is
// committed and returned.
func (c *Controller) Request(spec core.ChannelSpec) (*HChannel, error) {
	c.requests++
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	route, err := c.topo.Route(spec.Src, spec.Dst)
	if err != nil {
		return nil, err
	}
	if spec.D < int64(len(route))*spec.C {
		return nil, fmt.Errorf("%w (D=%d, hops=%d, C=%d)",
			ErrDeadlineTooShortForRoute, spec.D, len(route), spec.C)
	}

	tentative := c.state.clone()
	ch := &HChannel{ID: tentative.allocID(), Spec: spec, Route: route}
	tentative.add(ch)

	parts := c.cfg.DPS.Partition(tentative)
	changed := applyHops(tentative, parts)

	for _, e := range tentative.Edges() {
		if _, ok := changed[e]; !ok {
			continue
		}
		res := edf.Test(tentative.TasksOn(e), c.cfg.Feasibility)
		if !res.OK() {
			return nil, &RejectionError{Edge: e, Result: res}
		}
	}
	c.state = tentative
	c.accepted++
	return ch, nil
}

// Release tears down a channel; remaining channels are repartitioned when
// that keeps every edge feasible, otherwise partitions stay as they were.
func (c *Controller) Release(id core.ChannelID) error {
	if c.state.Get(id) == nil {
		return fmt.Errorf("topo: release of unknown channel %d", id)
	}
	next := c.state.clone()
	next.remove(id)

	repart := next.clone()
	parts := c.cfg.DPS.Partition(repart)
	changed := applyHops(repart, parts)
	ok := true
	for _, e := range repart.Edges() {
		if _, hit := changed[e]; !hit {
			continue
		}
		if !edf.Test(repart.TasksOn(e), c.cfg.Feasibility).OK() {
			ok = false
			break
		}
	}
	if ok {
		c.state = repart
	} else {
		c.state = next
	}
	return nil
}

// applyHops installs partition vectors, returning edges whose task sets
// changed. Invalid vectors panic — they are HDPS bugs, not rejections.
func applyHops(st *State, parts map[core.ChannelID][]int64) map[Edge]struct{} {
	changed := make(map[Edge]struct{})
	for _, ch := range st.Channels() {
		v, ok := parts[ch.ID]
		if !ok {
			panic(fmt.Sprintf("topo: HDPS returned no vector for %v", ch))
		}
		if len(v) != len(ch.Route) {
			panic(fmt.Sprintf("topo: HDPS vector length %d for %d hops", len(v), len(ch.Route)))
		}
		var sum int64
		for _, hop := range v {
			if hop < ch.Spec.C {
				panic(fmt.Sprintf("topo: hop budget %d below C=%d for %v", hop, ch.Spec.C, ch))
			}
			sum += hop
		}
		if sum != ch.Spec.D {
			panic(fmt.Sprintf("topo: hop budgets sum %d != D=%d for %v", sum, ch.Spec.D, ch))
		}
		if equalVec(ch.Hops, v) {
			continue
		}
		ch.Hops = append(ch.Hops[:0], v...)
		for _, e := range ch.Route {
			changed[e] = struct{}{}
		}
	}
	return changed
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
