package topo

import (
	"errors"
	"fmt"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/edf"
)

// ErrDeadlineTooShortForRoute generalizes condition (9): a channel
// crossing h store-and-forward hops needs D >= h*C.
var ErrDeadlineTooShortForRoute = errors.New("topo: deadline below hops*C for the route")

// RejectionError reports the edge that failed admission.
type RejectionError struct {
	Edge   Edge
	Result edf.Result
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("topo: channel not feasible on %v: %v", e.Edge, e.Result)
}

// Unwrap lets errors.Is match core.ErrInfeasible.
func (e *RejectionError) Unwrap() error { return core.ErrInfeasible }

// Config tunes the fabric admission controller.
type Config struct {
	// DPS is the hop partitioning scheme; nil means HSDPS.
	DPS HDPS
	// Feasibility passes through to the per-edge EDF test.
	Feasibility edf.Options
	// FullRecheck forces every loaded edge to be re-verified on each
	// request instead of only edges whose task set changed — equivalent
	// decisions, more checks. It exists for decision-equivalence tests
	// and as a belt-and-braces mode, mirroring the star controller's
	// core.Config.FullRecheck.
	FullRecheck bool
	// NoSweepCache disables the kernel's generation-keyed feasibility-
	// verdict cache, mirroring core.Config.NoSweepCache. Decisions are
	// identical either way.
	NoSweepCache bool
	// VerifyWorkers bounds the verification worker pool used for large
	// changed-edge sweeps (batch admissions); 0 means GOMAXPROCS, 1
	// forces the sequential sweep. Decisions and diagnostics are
	// identical for every worker count.
	VerifyWorkers int
}

// Controller is the fabric-wide admission control: route, partition the
// deadline over the route's directed links, and verify EDF feasibility of
// every affected link — §18.3.2 generalized to many switches.
//
// The copy-on-write decision machinery is the shared kernel
// (internal/admit), the same engine the star controller runs on: with an
// IncrementalHDPS (HSDPS/HADPS) a request mutates the live state
// tentatively, repartitions only the channels whose hop vectors can have
// moved, and rolls back on rejection; custom schemes fall back to the
// clone-based reference engine with identical decisions.
type Controller struct {
	topo   *Topology
	cfg    Config
	eng    *admit.Engine[Edge, *HChannel, []int64]
	scheme admit.Scheme[Edge, *HChannel, []int64]

	requests int
	accepted int
}

// NewController builds a controller over a fixed topology.
func NewController(t *Topology, cfg Config) *Controller {
	if cfg.DPS == nil {
		cfg.DPS = HSDPS{}
	}
	cfg.Feasibility.SkipValidation = true
	c := &Controller{topo: t, cfg: cfg}
	c.eng = admit.NewEngine(topoOps, admit.Config{
		Feasibility:  cfg.Feasibility,
		FullRecheck:  cfg.FullRecheck,
		NoSweepCache: cfg.NoSweepCache,
		Workers:      cfg.VerifyWorkers,
	})
	c.scheme = admit.Scheme[Edge, *HChannel, []int64]{
		Partition: func(k *admit.State[Edge, *HChannel, []int64]) map[core.ChannelID][]int64 {
			return cfg.DPS.Partition(&State{k: k})
		},
	}
	if inc, ok := cfg.DPS.(IncrementalHDPS); ok {
		c.scheme.PartitionTouched = func(k *admit.State[Edge, *HChannel, []int64], touched []Edge) map[core.ChannelID][]int64 {
			return inc.PartitionTouched(&State{k: k}, touched)
		}
	}
	return c
}

// State exposes the committed state (read-only for callers).
func (c *Controller) State() *State { return &State{k: c.eng.State()} }

// DPS returns the active partitioning scheme.
func (c *Controller) DPS() HDPS { return c.cfg.DPS }

// Accepted returns how many requests have been admitted.
func (c *Controller) Accepted() int { return c.accepted }

// Requests returns how many requests have been made.
func (c *Controller) Requests() int { return c.requests }

// Repartitioned returns the IDs (ascending) of the channels whose hop
// budgets changed in the last successful Request, RequestAll,
// RequestEach or Release — the precise set a running simulation must
// re-sync. The slice is invalidated by the next state mutation.
func (c *Controller) Repartitioned() []core.ChannelID { return c.eng.Repartitioned() }

// LinksChecked returns the cumulative number of per-edge feasibility
// tests the controller has run (deterministic and worker-count
// independent; see admit.Engine.LinksChecked).
func (c *Controller) LinksChecked() int { return c.eng.LinksChecked() }

// Repartitions returns the cumulative number of repartition passes the
// controller has run — one per admission decision (a batch counts once)
// plus one per release (see admit.Engine.Repartitions).
func (c *Controller) Repartitions() int { return c.eng.Repartitions() }

// SweepSkips returns how many of the LinksChecked feasibility answers
// came from the kernel's generation-keyed verdict cache instead of a
// fresh EDF analysis (see admit.Engine.SweepSkips).
func (c *Controller) SweepSkips() int { return c.eng.SweepSkips() }

// SweepNs returns the cumulative wall-clock nanoseconds the engine has
// spent inside verification sweeps (observability accounting; measured,
// not deterministic).
func (c *Controller) SweepNs() int64 { return c.eng.SweepNs() }

// validate routes a spec and checks the route-generalized deadline
// condition, returning the route.
func (c *Controller) validate(spec core.ChannelSpec) ([]Edge, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	route, err := c.topo.Route(spec.Src, spec.Dst)
	if err != nil {
		return nil, err
	}
	if spec.D < int64(len(route))*spec.C {
		return nil, fmt.Errorf("%w (D=%d, hops=%d, C=%d)",
			ErrDeadlineTooShortForRoute, spec.D, len(route), spec.C)
	}
	return route, nil
}

// Request routes and admission-tests a channel; on success it is
// committed and returned.
func (c *Controller) Request(spec core.ChannelSpec) (*HChannel, error) {
	c.requests++
	route, err := c.validate(spec)
	if err != nil {
		return nil, err
	}
	chs, rej := c.admit([]core.ChannelSpec{spec}, [][]Edge{route})
	if rej != nil {
		return nil, rej
	}
	c.accepted++
	return chs[0], nil
}

// RequestAll routes and admission-tests a batch of channels as one
// decision: all specs are validated and routed, added to one tentative
// state, partitioned once, and every affected edge verified once — one
// repartition instead of len(specs). Either every channel commits
// (returned in spec order) or none does and the first failure is
// returned.
func (c *Controller) RequestAll(specs []core.ChannelSpec) ([]*HChannel, error) {
	c.requests += len(specs)
	if len(specs) == 0 {
		return nil, nil
	}
	routes := make([][]Edge, len(specs))
	for i, spec := range specs {
		route, err := c.validate(spec)
		if err != nil {
			return nil, fmt.Errorf("batch spec %d (%v): %w", i, spec, err)
		}
		routes[i] = route
	}
	chs, rej := c.admit(specs, routes)
	if rej != nil {
		return nil, rej
	}
	c.accepted += len(specs)
	return chs, nil
}

// RequestEach runs per-spec admission for a merged batch: every spec is
// validated, routed and decided on its own (unlike RequestAll's
// all-or-nothing decision), while the kernel runs far fewer repartition
// passes than len(specs) sequential Requests — greedy bisection tries
// the whole group first and narrows down around failures
// (admit.Engine.AdmitEach, which also states the decision-equivalence
// contract with sequential submission).
//
// The returned slices are parallel to specs: chs[i] is the committed
// channel when errs[i] is nil, and errs[i] is the spec's validation or
// routing error, or a *RejectionError, otherwise.
func (c *Controller) RequestEach(specs []core.ChannelSpec) ([]*HChannel, []error) {
	c.requests += len(specs)
	chs := make([]*HChannel, len(specs))
	errs := make([]error, len(specs))
	valid := make([]int, 0, len(specs))
	routes := make([][]Edge, 0, len(specs))
	for i, spec := range specs {
		route, err := c.validate(spec)
		if err != nil {
			errs[i] = err
			continue
		}
		valid = append(valid, i)
		routes = append(routes, route)
	}
	got, rejs := c.eng.AdmitEach(len(valid), func(i int, id core.ChannelID) *HChannel {
		return &HChannel{ID: id, Spec: specs[valid[i]], Route: routes[i]}
	}, []admit.Scheme[Edge, *HChannel, []int64]{c.scheme})
	for vi, i := range valid {
		if rej := rejs[vi]; rej != nil {
			errs[i] = &RejectionError{Edge: rej.Link, Result: rej.Result}
			continue
		}
		c.accepted++
		chs[i] = got[vi]
	}
	return chs, errs
}

// validateMulticast validates a multicast spec, routes its distribution
// tree via the active router and checks the tree-generalized deadline
// condition: every root→leaf path needs D >= hops*C.
func (c *Controller) validateMulticast(spec core.MulticastSpec) (route []Edge, parents []int, leaves []int, err error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, nil, err
	}
	route, parents, leaves, err = c.topo.MulticastTree(spec.Src, spec.Sinks)
	if err != nil {
		return nil, nil, nil, err
	}
	maxDepth := 0
	for _, leaf := range leaves {
		depth := 0
		for e := leaf; e >= 0; e = parents[e] {
			depth++
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if spec.D < int64(maxDepth)*spec.C {
		return nil, nil, nil, fmt.Errorf("%w (D=%d, deepest path hops=%d, C=%d)",
			ErrDeadlineTooShortForRoute, spec.D, maxDepth, spec.C)
	}
	return route, parents, leaves, nil
}

// Req is one entry of a mixed establishment batch handed to
// RequestEachReq: a unicast channel when Sinks is nil, a multicast tree
// otherwise (Spec is then the MulticastSpec's ChannelSpec projection,
// Dst = Sinks[0]). KeepID re-admits a released channel under its old ID
// — see core.Req.
type Req = core.Req

// RequestEachReq is RequestEach over a mixed unicast/multicast batch:
// every request is validated, routed via the active router and decided
// on its own through the same merged-batch kernel machinery (greedy
// bisection, undo-on-reject rollback, decision-equivalence with
// sequential submission). It is the primitive behind multicast-aware
// request coalescing and behind post-failure batch re-admission, where
// KeepID keeps released channels' IDs stable across the re-route.
//
// The returned slices are parallel to reqs, exactly as in RequestEach.
func (c *Controller) RequestEachReq(reqs []Req) ([]*HChannel, []error) {
	c.requests += len(reqs)
	chs := make([]*HChannel, len(reqs))
	errs := make([]error, len(reqs))
	type routed struct {
		i       int // index into reqs
		route   []Edge
		parents []int
		leaves  []int
	}
	valid := make([]routed, 0, len(reqs))
	for i, r := range reqs {
		if len(r.Sinks) == 0 {
			rt, err := c.validate(r.Spec)
			if err != nil {
				errs[i] = err
				continue
			}
			valid = append(valid, routed{i: i, route: rt})
			continue
		}
		rt, parents, leaves, err := c.validateMulticast(r.MulticastSpec())
		if err != nil {
			errs[i] = err
			continue
		}
		valid = append(valid, routed{i: i, route: rt, parents: parents, leaves: leaves})
	}
	got, rejs := c.eng.AdmitEach(len(valid), func(vi int, id core.ChannelID) *HChannel {
		v := valid[vi]
		r := reqs[v.i]
		if r.KeepID {
			id = r.ID
		}
		hc := &HChannel{ID: id, Spec: r.Spec, Route: v.route, Parents: v.parents, Leaves: v.leaves}
		if len(r.Sinks) > 0 {
			hc.Sinks = append([]core.NodeID(nil), r.Sinks...)
		}
		return hc
	}, []admit.Scheme[Edge, *HChannel, []int64]{c.scheme})
	for vi, v := range valid {
		if rej := rejs[vi]; rej != nil {
			errs[v.i] = &RejectionError{Edge: rej.Link, Result: rej.Result}
			continue
		}
		c.accepted++
		chs[v.i] = got[vi]
	}
	return chs, errs
}

// admit runs the kernel decision for pre-routed specs.
func (c *Controller) admit(specs []core.ChannelSpec, routes [][]Edge) ([]*HChannel, *RejectionError) {
	chs, rej := c.eng.Admit(len(specs), func(i int, id core.ChannelID) *HChannel {
		return &HChannel{ID: id, Spec: specs[i], Route: routes[i]}
	}, []admit.Scheme[Edge, *HChannel, []int64]{c.scheme})
	if rej != nil {
		return nil, &RejectionError{Edge: rej.Link, Result: rej.Result}
	}
	return chs, nil
}

// RequestMulticast routes a shortest-path tree from the spec's source to
// every sink and admission-tests the whole tree as one decision: a
// single tentative channel whose task appears on every tree edge, one
// repartition pass, one verification sweep over the affected edges, and
// on any rejection a rollback that leaves the committed state
// bit-identical to before the request. Each root→leaf path's budgets
// sum to D (the deadline is end-to-end per sink), while shared-prefix
// edges — the source uplink and any common trunks — carry a single
// budget and a single task, not one per sink.
func (c *Controller) RequestMulticast(spec core.MulticastSpec) (*HChannel, error) {
	c.requests++
	route, parents, leaves, err := c.validateMulticast(spec)
	if err != nil {
		return nil, err
	}
	chs, rej := c.eng.Admit(1, func(_ int, id core.ChannelID) *HChannel {
		return &HChannel{
			ID:      id,
			Spec:    spec.ChannelSpec(),
			Route:   route,
			Parents: parents,
			Sinks:   append([]core.NodeID(nil), spec.Sinks...),
			Leaves:  leaves,
		}
	}, []admit.Scheme[Edge, *HChannel, []int64]{c.scheme})
	if rej != nil {
		return nil, &RejectionError{Edge: rej.Link, Result: rej.Result}
	}
	c.accepted++
	return chs[0], nil
}

// Release tears down a channel; remaining channels are repartitioned when
// that keeps every edge feasible, otherwise partitions stay as they were.
func (c *Controller) Release(id core.ChannelID) error {
	if !c.eng.Release(id, c.scheme) {
		return fmt.Errorf("topo: release of unknown channel %d", id)
	}
	return nil
}

// validateVector panics when a hop-budget vector violates the generalized
// conditions (8)/(9) — an HDPS bug, not an admission rejection. On a
// unicast chain the whole vector must sum to D; on a multicast tree
// every root→leaf path must sum to D.
func validateVector(ch *HChannel, v []int64) {
	if len(v) != len(ch.Route) {
		panic(fmt.Sprintf("topo: HDPS vector length %d for %d hops", len(v), len(ch.Route)))
	}
	for _, hop := range v {
		if hop < ch.Spec.C {
			panic(fmt.Sprintf("topo: hop budget %d below C=%d for %v", hop, ch.Spec.C, ch))
		}
	}
	if !ch.Multicast() {
		var sum int64
		for _, hop := range v {
			sum += hop
		}
		if sum != ch.Spec.D {
			panic(fmt.Sprintf("topo: hop budgets sum %d != D=%d for %v", sum, ch.Spec.D, ch))
		}
		return
	}
	for k := range ch.Sinks {
		var sum int64
		for e := ch.Leaves[k]; e >= 0; e = ch.parentOf(e) {
			sum += v[e]
		}
		if sum != ch.Spec.D {
			panic(fmt.Sprintf("topo: path budgets to sink %d sum %d != D=%d for %v", ch.Sinks[k], sum, ch.Spec.D, ch))
		}
	}
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
