package topo

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/edf"
)

// ErrDeadlineTooShortForRoute generalizes condition (9): a channel
// crossing h store-and-forward hops needs D >= h*C.
var ErrDeadlineTooShortForRoute = errors.New("topo: deadline below hops*C for the route")

// RejectionError reports the edge that failed admission.
type RejectionError struct {
	Edge   Edge
	Result edf.Result
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("topo: channel not feasible on %v: %v", e.Edge, e.Result)
}

// Unwrap lets errors.Is match core.ErrInfeasible.
func (e *RejectionError) Unwrap() error { return core.ErrInfeasible }

// Config tunes the fabric admission controller.
type Config struct {
	// DPS is the hop partitioning scheme; nil means HSDPS.
	DPS HDPS
	// Feasibility passes through to the per-edge EDF test.
	Feasibility edf.Options
}

// Controller is the fabric-wide admission control: route, partition the
// deadline over the route's directed links, and verify EDF feasibility of
// every affected link — §18.3.2 generalized to many switches.
//
// With an IncrementalHDPS (HSDPS/HADPS) the controller works
// copy-on-write: a request mutates the live state tentatively,
// repartitions only the channels whose hop vectors can have moved, and
// rolls back on rejection — no full-state clone, identical decisions.
type Controller struct {
	topo  *Topology
	cfg   Config
	state *State

	requests int
	accepted int

	// repartitioned records which channels' hop vectors changed in the
	// last committed mutation (establishments include the new channels),
	// so callers syncing budgets into a running simulation touch only
	// deltas.
	repartitioned []core.ChannelID
}

// NewController builds a controller over a fixed topology.
func NewController(t *Topology, cfg Config) *Controller {
	if cfg.DPS == nil {
		cfg.DPS = HSDPS{}
	}
	cfg.Feasibility.SkipValidation = true
	return &Controller{topo: t, cfg: cfg, state: NewState()}
}

// State exposes the committed state (read-only for callers).
func (c *Controller) State() *State { return c.state }

// DPS returns the active partitioning scheme.
func (c *Controller) DPS() HDPS { return c.cfg.DPS }

// Accepted returns how many requests have been admitted.
func (c *Controller) Accepted() int { return c.accepted }

// Requests returns how many requests have been made.
func (c *Controller) Requests() int { return c.requests }

// Repartitioned returns the IDs (ascending) of the channels whose hop
// budgets changed in the last successful Request, RequestAll or Release —
// the precise set a running simulation must re-sync. The slice is
// invalidated by the next state mutation.
func (c *Controller) Repartitioned() []core.ChannelID { return c.repartitioned }

// validate routes a spec and checks the route-generalized deadline
// condition, returning the route.
func (c *Controller) validate(spec core.ChannelSpec) ([]Edge, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	route, err := c.topo.Route(spec.Src, spec.Dst)
	if err != nil {
		return nil, err
	}
	if spec.D < int64(len(route))*spec.C {
		return nil, fmt.Errorf("%w (D=%d, hops=%d, C=%d)",
			ErrDeadlineTooShortForRoute, spec.D, len(route), spec.C)
	}
	return route, nil
}

// Request routes and admission-tests a channel; on success it is
// committed and returned.
func (c *Controller) Request(spec core.ChannelSpec) (*HChannel, error) {
	c.requests++
	route, err := c.validate(spec)
	if err != nil {
		return nil, err
	}
	chs, rej := c.admit([]core.ChannelSpec{spec}, [][]Edge{route})
	if rej != nil {
		return nil, rej
	}
	c.accepted++
	return chs[0], nil
}

// RequestAll routes and admission-tests a batch of channels as one
// decision: all specs are validated and routed, added to one tentative
// state, partitioned once, and every affected edge verified once — one
// repartition instead of len(specs). Either every channel commits
// (returned in spec order) or none does and the first failure is
// returned.
func (c *Controller) RequestAll(specs []core.ChannelSpec) ([]*HChannel, error) {
	c.requests += len(specs)
	if len(specs) == 0 {
		return nil, nil
	}
	routes := make([][]Edge, len(specs))
	for i, spec := range specs {
		route, err := c.validate(spec)
		if err != nil {
			return nil, fmt.Errorf("batch spec %d (%v): %w", i, spec, err)
		}
		routes[i] = route
	}
	chs, rej := c.admit(specs, routes)
	if rej != nil {
		return nil, rej
	}
	c.accepted += len(specs)
	return chs, nil
}

// admit runs the feasibility decision for pre-routed specs, committing on
// success and recording the repartitioned set. It picks the
// copy-on-write engine when the scheme supports it, else the clone-based
// reference engine.
func (c *Controller) admit(specs []core.ChannelSpec, routes [][]Edge) ([]*HChannel, *RejectionError) {
	if inc, ok := c.cfg.DPS.(IncrementalHDPS); ok {
		return c.admitDelta(inc, specs, routes)
	}
	return c.admitClone(specs, routes)
}

// admitClone is the clone-based reference engine for custom HDPS
// implementations: full tentative copy, full repartition, swap on accept.
func (c *Controller) admitClone(specs []core.ChannelSpec, routes [][]Edge) ([]*HChannel, *RejectionError) {
	tentative := c.state.clone()
	chs := make([]*HChannel, len(specs))
	for i, spec := range specs {
		ch := &HChannel{ID: tentative.allocID(), Spec: spec, Route: routes[i]}
		tentative.add(ch)
		chs[i] = ch
	}

	parts := c.cfg.DPS.Partition(tentative)
	changed, changedIDs := applyHops(tentative, parts)

	if rej := c.verifyChanged(tentative, changed); rej != nil {
		return nil, rej
	}
	c.state = tentative
	c.repartitioned = changedIDs
	return chs, nil
}

// admitDelta is the copy-on-write engine: mutate the live state
// tentatively, repartition only channels on the touched edges, verify
// only the changed edges, roll back on rejection. Decisions and committed
// states are bit-identical to admitClone.
func (c *Controller) admitDelta(inc IncrementalHDPS, specs []core.ChannelSpec, routes [][]Edge) ([]*HChannel, *RejectionError) {
	savedNext := c.state.nextID
	chs := make([]*HChannel, len(specs))
	var touched []Edge
	for i, spec := range specs {
		ch := &HChannel{ID: c.state.allocID(), Spec: spec, Route: routes[i]}
		c.state.add(ch)
		chs[i] = ch
		touched = append(touched, routes[i]...)
	}

	parts := inc.PartitionTouched(c.state, touched)
	undo, changed, changedIDs := applyHopsDelta(c.state, parts)

	if rej := c.verifyChanged(c.state, changed); rej != nil {
		rollbackHops(c.state, undo)
		for i := len(chs) - 1; i >= 0; i-- {
			c.state.undoAdd(chs[i])
		}
		c.state.nextID = savedNext
		return nil, rej
	}
	c.repartitioned = changedIDs
	return chs, nil
}

// verifyChanged tests feasibility of exactly the changed edges, visited
// in the deterministic Edges() order (the sorted restriction of the full
// edge sequence — unchanged edges were feasible at the previous commit
// and cannot have become infeasible, so the first failure reported is
// identical to a full sweep).
func (c *Controller) verifyChanged(st *State, changed map[Edge]struct{}) *RejectionError {
	edges := make([]Edge, 0, len(changed))
	for e := range changed {
		edges = append(edges, e)
	}
	sortEdges(edges)
	opts := c.cfg.Feasibility
	for _, e := range edges {
		// The first constraint (U > 1, exact) comes from the state's
		// incrementally maintained per-edge sum.
		exceeds := st.utilExceedsOne(e)
		opts.UtilizationExceeds = &exceeds
		res := edf.Test(st.tasksCached(e), opts)
		if !res.OK() {
			return &RejectionError{Edge: e, Result: res}
		}
	}
	return nil
}

// Release tears down a channel; remaining channels are repartitioned when
// that keeps every edge feasible, otherwise partitions stay as they were.
func (c *Controller) Release(id core.ChannelID) error {
	ch := c.state.Get(id)
	if ch == nil {
		return fmt.Errorf("topo: release of unknown channel %d", id)
	}
	if inc, ok := c.cfg.DPS.(IncrementalHDPS); ok {
		c.state.remove(id)
		parts := inc.PartitionTouched(c.state, ch.Route)
		undo, changed, changedIDs := applyHopsDelta(c.state, parts)
		if rej := c.verifyChanged(c.state, changed); rej != nil {
			rollbackHops(c.state, undo)
			changedIDs = nil
		}
		c.repartitioned = changedIDs
		return nil
	}

	next := c.state.clone()
	next.remove(id)

	repart := next.clone()
	parts := c.cfg.DPS.Partition(repart)
	changed, changedIDs := applyHops(repart, parts)
	if rej := c.verifyChanged(repart, changed); rej == nil {
		c.state = repart
		c.repartitioned = changedIDs
	} else {
		c.state = next
		c.repartitioned = nil
	}
	return nil
}

// validateVector panics when a hop-budget vector violates the generalized
// conditions (8)/(9) — an HDPS bug, not an admission rejection.
func validateVector(ch *HChannel, v []int64) {
	if len(v) != len(ch.Route) {
		panic(fmt.Sprintf("topo: HDPS vector length %d for %d hops", len(v), len(ch.Route)))
	}
	var sum int64
	for _, hop := range v {
		if hop < ch.Spec.C {
			panic(fmt.Sprintf("topo: hop budget %d below C=%d for %v", hop, ch.Spec.C, ch))
		}
		sum += hop
	}
	if sum != ch.Spec.D {
		panic(fmt.Sprintf("topo: hop budgets sum %d != D=%d for %v", sum, ch.Spec.D, ch))
	}
}

// applyHops installs partition vectors on every channel, returning the
// edges whose task sets changed and the IDs of the channels that moved
// (ascending, matching the Repartitioned contract).
func applyHops(st *State, parts map[core.ChannelID][]int64) (map[Edge]struct{}, []core.ChannelID) {
	changed := make(map[Edge]struct{})
	var changedIDs []core.ChannelID
	for _, ch := range st.Channels() {
		v, ok := parts[ch.ID]
		if !ok {
			panic(fmt.Sprintf("topo: HDPS returned no vector for %v", ch))
		}
		validateVector(ch, v)
		if equalVec(ch.Hops, v) {
			continue
		}
		st.setHops(ch, v)
		changedIDs = append(changedIDs, ch.ID)
		for _, e := range ch.Route {
			changed[e] = struct{}{}
		}
	}
	sort.Slice(changedIDs, func(i, j int) bool { return changedIDs[i] < changedIDs[j] })
	return changed, changedIDs
}

// hopsUndo records one channel's previous hop vector for rollback.
type hopsUndo struct {
	ch  *HChannel
	old []int64
}

// applyHopsDelta installs the vectors of an incremental repartition
// directly into the live state, returning an undo log, the changed edge
// set, and the IDs of the channels that moved (ascending).
func applyHopsDelta(st *State, parts map[core.ChannelID][]int64) ([]hopsUndo, map[Edge]struct{}, []core.ChannelID) {
	var undo []hopsUndo
	changed := make(map[Edge]struct{})
	var changedIDs []core.ChannelID
	for id, v := range parts {
		ch := st.channels[id]
		if ch == nil {
			panic(fmt.Sprintf("topo: HDPS returned a vector for unknown channel %d", id))
		}
		validateVector(ch, v)
		if equalVec(ch.Hops, v) {
			continue
		}
		undo = append(undo, hopsUndo{ch: ch, old: append([]int64(nil), ch.Hops...)})
		st.setHops(ch, v)
		changedIDs = append(changedIDs, ch.ID)
		for _, e := range ch.Route {
			changed[e] = struct{}{}
		}
	}
	sort.Slice(changedIDs, func(i, j int) bool { return changedIDs[i] < changedIDs[j] })
	return undo, changed, changedIDs
}

// rollbackHops restores the previous vectors recorded by applyHopsDelta.
func rollbackHops(st *State, undo []hopsUndo) {
	for _, u := range undo {
		st.setHops(u.ch, u.old)
	}
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
