package topo

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/edf"
)

func TestTopologyConstruction(t *testing.T) {
	tp := NewTopology()
	if err := tp.AddSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSwitch(0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate switch: %v", err)
	}
	if err := tp.ConnectSwitches(0, 9); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("unknown trunk end: %v", err)
	}
	if err := tp.ConnectSwitches(0, 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("self trunk: %v", err)
	}
	if err := tp.AddSwitch(1); err != nil {
		t.Fatal(err)
	}
	if err := tp.ConnectSwitches(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.ConnectSwitches(1, 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate trunk: %v", err)
	}
	if err := tp.AttachNode(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AttachNode(5, 1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate node: %v", err)
	}
	if err := tp.AttachNode(6, 7); !errors.Is(err, ErrUnknownSwitch) {
		t.Errorf("attach to unknown switch: %v", err)
	}
	if home, ok := tp.Home(5); !ok || home != 0 {
		t.Errorf("Home(5) = %d,%v", home, ok)
	}
}

func TestRouteSameSwitch(t *testing.T) {
	tp := Line(1)
	tp.AttachNode(1, 0)
	tp.AttachNode(2, 0)
	route, err := tp.Route(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two hops: n1→sw0, sw0→n2 — the star case.
	if len(route) != 2 {
		t.Fatalf("route = %v, want 2 hops", route)
	}
	if route[0] != (Edge{From: NodeEnd(1), To: SwitchEnd(0)}) || route[1] != (Edge{From: SwitchEnd(0), To: NodeEnd(2)}) {
		t.Errorf("route = %v", route)
	}
}

func TestRouteAcrossLine(t *testing.T) {
	tp := Line(4)
	tp.AttachNode(1, 0)
	tp.AttachNode(2, 3)
	route, err := tp.Route(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// n1→sw0→sw1→sw2→sw3→n2: 5 hops.
	if len(route) != 5 {
		t.Fatalf("route = %v, want 5 hops", route)
	}
	if route[2] != (Edge{From: SwitchEnd(1), To: SwitchEnd(2)}) {
		t.Errorf("middle hop = %v", route[2])
	}
}

func TestRouteErrors(t *testing.T) {
	tp := Line(2)
	tp.AttachNode(1, 0)
	if _, err := tp.Route(1, 1); err == nil {
		t.Error("self route accepted")
	}
	if _, err := tp.Route(1, 9); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown dst: %v", err)
	}
	// Disconnected fabric.
	tp2 := NewTopology()
	tp2.AddSwitch(0)
	tp2.AddSwitch(1)
	tp2.AttachNode(1, 0)
	tp2.AttachNode(2, 1)
	if _, err := tp2.Route(1, 2); !errors.Is(err, ErrNoRoute) {
		t.Errorf("disconnected: %v", err)
	}
}

func TestRouteShortestAndDeterministic(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3; BFS with sorted adjacency must always
	// pick via switch 1.
	tp := NewTopology()
	for i := 0; i < 4; i++ {
		tp.AddSwitch(SwitchID(i))
	}
	tp.ConnectSwitches(0, 1)
	tp.ConnectSwitches(0, 2)
	tp.ConnectSwitches(1, 3)
	tp.ConnectSwitches(2, 3)
	tp.AttachNode(1, 0)
	tp.AttachNode(2, 3)
	for trial := 0; trial < 5; trial++ {
		route, err := tp.Route(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(route) != 4 {
			t.Fatalf("route length %d, want 4", len(route))
		}
		if route[1] != (Edge{From: SwitchEnd(0), To: SwitchEnd(1)}) {
			t.Fatalf("non-deterministic or non-sorted route: %v", route)
		}
	}
}

func TestSplitDeadlineProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 2000; trial++ {
		h := rng.Intn(5) + 1
		c := int64(rng.Intn(5) + 1)
		d := int64(h)*c + int64(rng.Intn(60))
		weights := make([]int64, h)
		for i := range weights {
			weights[i] = int64(rng.Intn(10)) // zeros allowed
		}
		out := splitDeadline(d, c, weights)
		var sum int64
		for _, hop := range out {
			if hop < c {
				t.Fatalf("hop %d below C=%d (d=%d, w=%v → %v)", hop, c, d, weights, out)
			}
			sum += hop
		}
		if sum != d {
			t.Fatalf("sum %d != D=%d (w=%v → %v)", sum, d, weights, out)
		}
	}
}

func TestHSDPSReducesToSDPSOnStar(t *testing.T) {
	tp := Line(1)
	tp.AttachNode(1, 0)
	tp.AttachNode(2, 0)
	c := NewController(tp, Config{DPS: HSDPS{}})
	ch, err := c.Request(core.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Hops[0] != 20 || ch.Hops[1] != 20 {
		t.Errorf("H-SDPS on star = %v, want [20 20]", ch.Hops)
	}
}

func TestFabricAdmissionStarMatchesCore(t *testing.T) {
	// On a single-switch fabric the multi-hop controller must accept the
	// same channel count as the star controller: 6 per master under
	// H-SDPS for the paper workload.
	tp := Line(1)
	for n := 1; n <= 10; n++ {
		tp.AttachNode(core.NodeID(n), 0)
	}
	c := NewController(tp, Config{DPS: HSDPS{}})
	accepted := 0
	for i := 0; i < 10; i++ {
		dst := core.NodeID(2 + i%9)
		if dst == 1 {
			dst = 10
		}
		if _, err := c.Request(core.ChannelSpec{Src: 1, Dst: dst, C: 3, P: 100, D: 40}); err == nil {
			accepted++
		}
	}
	if accepted != 6 {
		t.Errorf("fabric star accepted %d, want 6 (parity with core SDPS)", accepted)
	}
}

func TestFabricDeadlineTooShortForRoute(t *testing.T) {
	tp := Line(3)
	tp.AttachNode(1, 0)
	tp.AttachNode(2, 2)
	c := NewController(tp, Config{})
	// 4 hops * C=3 = 12 > D=11.
	_, err := c.Request(core.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 11})
	if !errors.Is(err, ErrDeadlineTooShortForRoute) {
		t.Errorf("err = %v, want ErrDeadlineTooShortForRoute", err)
	}
	// 12 exactly fits the floor.
	if _, err := c.Request(core.ChannelSpec{Src: 1, Dst: 2, C: 3, P: 100, D: 12}); err != nil {
		t.Errorf("floor deadline rejected: %v", err)
	}
}

func TestHADPSRelievesTrunkBottleneck(t *testing.T) {
	// Two switches; all traffic crosses the single trunk sw0→sw1. The
	// trunk is the bottleneck: H-ADPS should give it the lion's share of
	// each deadline and admit more channels than H-SDPS.
	build := func() *Topology {
		tp := Line(2)
		for m := 0; m < 6; m++ {
			tp.AttachNode(core.NodeID(m), 0)
		}
		for s := 0; s < 6; s++ {
			tp.AttachNode(core.NodeID(100+s), 1)
		}
		return tp
	}
	count := func(dps HDPS) int {
		c := NewController(build(), Config{DPS: dps})
		accepted := 0
		for k := 0; k < 120; k++ {
			spec := core.ChannelSpec{
				Src: core.NodeID(k % 6), Dst: core.NodeID(100 + k%6),
				C: 3, P: 300, D: 60,
			}
			if _, err := c.Request(spec); err == nil {
				accepted++
			}
		}
		return accepted
	}
	sdps := count(HSDPS{})
	adps := count(HADPS{})
	if adps <= sdps {
		t.Errorf("H-ADPS accepted %d <= H-SDPS %d; load-weighting should relieve the trunk", adps, sdps)
	}
}

// TestFabricCommittedStateAlwaysFeasible is the safety property in the
// multi-switch setting.
func TestFabricCommittedStateAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tp := Line(3)
	for n := 0; n < 4; n++ {
		tp.AttachNode(core.NodeID(n), 0)
		tp.AttachNode(core.NodeID(100+n), 1)
		tp.AttachNode(core.NodeID(200+n), 2)
	}
	all := []core.NodeID{0, 1, 2, 3, 100, 101, 102, 103, 200, 201, 202, 203}
	for _, dps := range []HDPS{HSDPS{}, HADPS{}} {
		c := NewController(tp, Config{DPS: dps})
		var live []core.ChannelID
		for step := 0; step < 250; step++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(live))
				if err := c.Release(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				src := all[rng.Intn(len(all))]
				dst := all[rng.Intn(len(all))]
				if src == dst {
					continue
				}
				cc := int64(rng.Intn(3) + 1)
				spec := core.ChannelSpec{
					Src: src, Dst: dst, C: cc,
					P: int64(rng.Intn(200) + 100),
					D: 5*cc + int64(rng.Intn(80)),
				}
				if ch, err := c.Request(spec); err == nil {
					live = append(live, ch.ID)
				}
			}
			for _, e := range c.State().Edges() {
				if res := edf.TestDefault(c.State().TasksOn(e)); !res.OK() {
					t.Fatalf("%s step %d: committed state infeasible on %v: %v", dps.Name(), step, e, res)
				}
			}
		}
		if c.Accepted() == 0 {
			t.Fatalf("%s accepted nothing in the fuzz", dps.Name())
		}
	}
}

func TestEndpointAndEdgeStrings(t *testing.T) {
	e := Edge{From: NodeEnd(3), To: SwitchEnd(1)}
	if e.String() != "n3→sw1" {
		t.Errorf("Edge.String() = %q", e.String())
	}
}

func TestReleaseUnknown(t *testing.T) {
	c := NewController(Line(1), Config{})
	if err := c.Release(7); err == nil {
		t.Error("release of unknown channel accepted")
	}
}
