package topo

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/edf"
)

// mcastFabric is the tree-shaped evaluation fabric: a source switch with
// two subtrees, so multicast routes share a real trunk prefix.
//
//	      sw0 ── n1 (source side)
//	     /   \
//	   sw1   sw2
//	  /   \     \
//	sw3   sw4   sw5
//
// Nodes: n1@sw0, n2@sw3, n3@sw4, n4@sw5, n5@sw1.
func mcastFabric(t testing.TB) *Topology {
	top := NewTopology()
	for s := SwitchID(0); s <= 5; s++ {
		if err := top.AddSwitch(s); err != nil {
			t.Fatalf("AddSwitch: %v", err)
		}
	}
	for _, tr := range [][2]SwitchID{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}} {
		if err := top.ConnectSwitches(tr[0], tr[1]); err != nil {
			t.Fatalf("ConnectSwitches: %v", err)
		}
	}
	for n, s := range map[core.NodeID]SwitchID{1: 0, 2: 3, 3: 4, 4: 5, 5: 1} {
		if err := top.AttachNode(n, s); err != nil {
			t.Fatalf("AttachNode: %v", err)
		}
	}
	return top
}

func TestMulticastTreeSharedPrefixAndDeterminism(t *testing.T) {
	top := mcastFabric(t)
	sinks := []core.NodeID{2, 3, 4}
	route, parents, leaves, err := top.MulticastTree(1, sinks)
	if err != nil {
		t.Fatalf("MulticastTree: %v", err)
	}
	// Paths: n1→sw0→sw1→sw3→n2 (4 edges), n1→sw0→sw1→sw4→n3 (shares
	// n1→sw0 and sw0→sw1), n1→sw0→sw2→sw5→n4 (shares n1→sw0). Union:
	// 9 edges, versus 4+4+4 = 12 on independent per-sink paths.
	if len(route) != 9 {
		t.Fatalf("tree has %d edges, want 9 (shared prefix must dedupe): %v", len(route), route)
	}
	if parents[0] != -1 {
		t.Fatalf("root parent = %d, want -1", parents[0])
	}
	for i, p := range parents {
		if i > 0 && (p < 0 || p >= i) {
			t.Fatalf("parents[%d] = %d violates parents[i] < i", i, p)
		}
	}
	if len(leaves) != len(sinks) {
		t.Fatalf("%d leaves for %d sinks", len(leaves), len(sinks))
	}
	for k, leaf := range leaves {
		e := route[leaf]
		if e.To.Switch || core.NodeID(e.To.ID) != sinks[k] {
			t.Fatalf("leaf %d delivers to %v, want node %d", k, e.To, sinks[k])
		}
	}
	// Determinism: same call, same answer; and permuting the sink list
	// yields the same edge set (different order/leaf mapping allowed).
	r2, p2, l2, err := top.MulticastTree(1, sinks)
	if err != nil {
		t.Fatalf("MulticastTree (repeat): %v", err)
	}
	if !reflect.DeepEqual(route, r2) || !reflect.DeepEqual(parents, p2) || !reflect.DeepEqual(leaves, l2) {
		t.Fatalf("MulticastTree is not deterministic")
	}
	r3, _, _, err := top.MulticastTree(1, []core.NodeID{4, 2, 3})
	if err != nil {
		t.Fatalf("MulticastTree (permuted): %v", err)
	}
	set := func(edges []Edge) map[Edge]bool {
		m := make(map[Edge]bool, len(edges))
		for _, e := range edges {
			m[e] = true
		}
		return m
	}
	if !reflect.DeepEqual(set(route), set(r3)) {
		t.Fatalf("edge set depends on sink order:\n%v\nvs\n%v", route, r3)
	}
}

func TestMulticastTreeErrors(t *testing.T) {
	top := mcastFabric(t)
	if _, _, _, err := top.MulticastTree(1, []core.NodeID{1}); err == nil {
		t.Fatalf("self-sink accepted")
	}
	if _, _, _, err := top.MulticastTree(1, []core.NodeID{99}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown sink: got %v, want ErrUnknownNode", err)
	}
	if _, _, _, err := top.MulticastTree(99, []core.NodeID{2}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown source: got %v, want ErrUnknownNode", err)
	}
	// A disconnected island is unreachable.
	if err := top.AddSwitch(9); err != nil {
		t.Fatalf("AddSwitch: %v", err)
	}
	if err := top.AttachNode(9, 9); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	if _, _, _, err := top.MulticastTree(1, []core.NodeID{2, 9}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unreachable sink: got %v, want ErrNoRoute", err)
	}
}

// TestSplitDeadlineTreeInvariants fuzzes the tree partitioner over
// seeded random trees and weights: every root→leaf path must sum to
// exactly D and every edge must get at least C.
func TestSplitDeadlineTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	top := mcastFabric(t)
	allSinks := []core.NodeID{2, 3, 4, 5}
	for iter := 0; iter < 200; iter++ {
		rng.Shuffle(len(allSinks), func(i, j int) { allSinks[i], allSinks[j] = allSinks[j], allSinks[i] })
		sinks := append([]core.NodeID(nil), allSinks[:rng.Intn(len(allSinks))+1]...)
		route, parents, leaves, err := top.MulticastTree(1, sinks)
		if err != nil {
			t.Fatalf("MulticastTree: %v", err)
		}
		c := int64(rng.Intn(3) + 1)
		maxDepth := 0
		for _, leaf := range leaves {
			d := 0
			for e := leaf; e >= 0; e = parents[e] {
				d++
			}
			if d > maxDepth {
				maxDepth = d
			}
		}
		d := int64(maxDepth)*c + int64(rng.Intn(25))
		ch := &HChannel{
			Spec:    core.ChannelSpec{Src: 1, Dst: sinks[0], C: c, P: 100, D: d},
			Route:   route,
			Parents: parents,
			Sinks:   sinks,
			Leaves:  leaves,
		}
		weights := make([]int64, len(route))
		for i := range weights {
			weights[i] = int64(rng.Intn(5)) // zeros allowed
		}
		v := splitDeadlineTree(ch, weights)
		for i, b := range v {
			if b < c {
				t.Fatalf("iter %d: edge %d budget %d < C=%d (v=%v, parents=%v)", iter, i, b, c, v, parents)
			}
		}
		for k := range sinks {
			var sum int64
			for _, e := range ch.PathTo(k) {
				sum += v[e]
			}
			if sum != d {
				t.Fatalf("iter %d: path to sink %d sums to %d, want D=%d (v=%v)", iter, sinks[k], sum, d, v)
			}
		}
	}
}

// fabricRef is the sequential per-branch reference for fabric multicast
// admission under H-SDPS: the tree vector is fixed by spec and tree
// shape, each branch's not-yet-added edges gain their task in root→leaf
// order with an EDF test after every addition, and the first failure
// rolls back everything.
type fabricRef struct {
	top   *Topology
	tasks map[Edge][]edf.Task
}

func (r *fabricRef) admitMulticast(spec core.MulticastSpec) ([]int64, bool) {
	route, parents, leaves, err := r.top.MulticastTree(spec.Src, spec.Sinks)
	if err != nil {
		return nil, false
	}
	ch := &HChannel{Spec: spec.ChannelSpec(), Route: route, Parents: parents, Sinks: spec.Sinks, Leaves: leaves}
	for _, leaf := range leaves {
		d := 0
		for e := leaf; e >= 0; e = parents[e] {
			d++
		}
		if spec.D < int64(d)*spec.C {
			return nil, false
		}
	}
	v := HSDPS{}.vectorOf(ch)
	var adds []Edge
	added := make(map[int]bool)
	ok := true
branches:
	for k := range spec.Sinks {
		for _, e := range ch.PathTo(k) {
			if added[e] {
				continue // shared prefix: one task, not one per sink
			}
			added[e] = true
			edge := route[e]
			r.tasks[edge] = append(r.tasks[edge], edf.Task{C: spec.C, P: spec.P, D: v[e]})
			adds = append(adds, edge)
			if !edf.Test(r.tasks[edge], edf.Options{}).OK() {
				ok = false
				break branches
			}
		}
	}
	if !ok {
		for i := len(adds) - 1; i >= 0; i-- {
			s := r.tasks[adds[i]]
			r.tasks[adds[i]] = s[:len(s)-1]
		}
		return nil, false
	}
	return v, true
}

// edgeFingerprint renders the admission-relevant fabric state for
// bit-identity assertions across rejected requests.
func edgeFingerprint(st *State) string {
	var b strings.Builder
	fmt.Fprintf(&b, "len=%d next=%d\n", st.Len(), st.k.NextID())
	for _, e := range st.Edges() {
		fmt.Fprintf(&b, "%v load=%d tasks=%v\n", e, st.LinkLoad(e), st.TasksOn(e))
	}
	return b.String()
}

// TestRequestMulticastFabricDecisionEquivalence drives a seeded random
// multicast workload through the fabric controller under H-SDPS and
// checks every verdict and committed hop vector against the sequential
// per-branch reference, plus bit-identity of the committed state across
// each rejection.
func TestRequestMulticastFabricDecisionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	top := mcastFabric(t)
	c := NewController(top, Config{DPS: HSDPS{}})
	ref := &fabricRef{top: top, tasks: make(map[Edge][]edf.Task)}
	allSinks := []core.NodeID{2, 3, 4, 5}
	accepted, rejected := 0, 0
	for i := 0; i < 200; i++ {
		rng.Shuffle(len(allSinks), func(a, b int) { allSinks[a], allSinks[b] = allSinks[b], allSinks[a] })
		sinks := append([]core.NodeID(nil), allSinks[:rng.Intn(len(allSinks))+1]...)
		cap := int64(rng.Intn(2) + 1)
		spec := core.MulticastSpec{
			Src:   1,
			Sinks: sinks,
			C:     cap,
			P:     int64(rng.Intn(30) + 12),
			D:     4*cap + int64(rng.Intn(30)),
		}
		before := edgeFingerprint(c.State())
		ch, err := c.RequestMulticast(spec)
		wantVec, wantOK := ref.admitMulticast(spec)
		if wantOK != (err == nil) {
			t.Fatalf("request %d %v: controller err=%v, reference ok=%v", i, spec, err, wantOK)
		}
		if err == nil {
			if !reflect.DeepEqual(ch.Hops, wantVec) {
				t.Fatalf("request %d %v: hops %v, reference %v", i, spec, ch.Hops, wantVec)
			}
			accepted++
			continue
		}
		if after := edgeFingerprint(c.State()); after != before {
			t.Fatalf("request %d: rejected tree mutated fabric state:\nbefore:\n%s\nafter:\n%s", i, before, after)
		}
		rejected++
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate run: accepted=%d rejected=%d — want both outcomes exercised", accepted, rejected)
	}
}

// TestRequestMulticastSharedTrunkOneTask pins the tentpole property on
// the fabric: a shared trunk carries one task for the whole tree.
func TestRequestMulticastSharedTrunkOneTask(t *testing.T) {
	top := mcastFabric(t)
	c := NewController(top, Config{DPS: HSDPS{}})
	// Sinks 2 (via sw1→sw3) and 3 (via sw1→sw4) share n1→sw0 and sw0→sw1.
	ch, err := c.RequestMulticast(core.MulticastSpec{Src: 1, Sinks: []core.NodeID{2, 3}, C: 2, P: 50, D: 20})
	if err != nil {
		t.Fatalf("RequestMulticast: %v", err)
	}
	trunk := Edge{From: SwitchEnd(0), To: SwitchEnd(1)}
	if got := len(c.State().TasksOn(trunk)); got != 1 {
		t.Fatalf("shared trunk carries %d tasks, want 1", got)
	}
	for k := range ch.Sinks {
		var sum int64
		for _, e := range ch.PathTo(k) {
			sum += ch.Hops[e]
		}
		if sum != 20 {
			t.Fatalf("path to sink %d sums to %d, want 20 (hops=%v)", ch.Sinks[k], sum, ch.Hops)
		}
	}
	if err := c.Release(ch.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := len(c.State().TasksOn(trunk)); got != 0 {
		t.Fatalf("trunk still carries %d tasks after release", got)
	}
}

// TestRequestMulticastHADPS smoke-checks the load-weighted tree variant:
// admission succeeds and the tree invariants hold under H-ADPS too.
func TestRequestMulticastHADPS(t *testing.T) {
	top := mcastFabric(t)
	c := NewController(top, Config{DPS: HADPS{}})
	// Preload the sw0→sw2 trunk so weights are non-uniform.
	if _, err := c.Request(core.ChannelSpec{Src: 1, Dst: 4, C: 1, P: 40, D: 24}); err != nil {
		t.Fatalf("preload: %v", err)
	}
	ch, err := c.RequestMulticast(core.MulticastSpec{Src: 1, Sinks: []core.NodeID{2, 4}, C: 2, P: 60, D: 30})
	if err != nil {
		t.Fatalf("RequestMulticast: %v", err)
	}
	for k := range ch.Sinks {
		var sum int64
		for _, e := range ch.PathTo(k) {
			if ch.Hops[e] < 2 {
				t.Fatalf("edge %d budget %d < C", e, ch.Hops[e])
			}
			sum += ch.Hops[e]
		}
		if sum != 30 {
			t.Fatalf("path to sink %d sums to %d, want 30", ch.Sinks[k], sum)
		}
	}
}

// TestRequestMulticastDeadlineTooShort rejects before touching state
// when D cannot cover the deepest root→leaf path.
func TestRequestMulticastDeadlineTooShort(t *testing.T) {
	top := mcastFabric(t)
	c := NewController(top, Config{DPS: HSDPS{}})
	before := edgeFingerprint(c.State())
	// Deepest path to sink 2 has 4 edges; D = 7 < 4*2.
	_, err := c.RequestMulticast(core.MulticastSpec{Src: 1, Sinks: []core.NodeID{2}, C: 2, P: 50, D: 7})
	if !errors.Is(err, ErrDeadlineTooShortForRoute) {
		t.Fatalf("got %v, want ErrDeadlineTooShortForRoute", err)
	}
	if after := edgeFingerprint(c.State()); after != before {
		t.Fatalf("early rejection mutated state")
	}
}
