package topo

// Seeded failure-churn replay: random trunk down/repair cycles over a
// 4-switch ring fabric, with the affected channels re-routed and batch
// re-admitted under their old IDs after every failure — the same cycle
// the rtether failover layer drives. The test asserts two properties:
//
//  1. determinism — the same seed replays to the byte-identical event
//     log (routes included), and
//  2. decision equivalence — the incremental engine, the clone-based
//     reference engine and the FullRecheck variant agree verdict for
//     verdict and state for state across every down/repair cycle.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/edf"
)

// ringFabric is a 4-switch ring (0-1, 1-2, 2-3, 3-0) with two nodes per
// switch, so every trunk failure leaves a detour.
func ringFabric() *Topology {
	top := NewTopology()
	for s := SwitchID(0); s < 4; s++ {
		if err := top.AddSwitch(s); err != nil {
			panic(err)
		}
	}
	for _, tr := range [][2]SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := top.ConnectSwitches(tr[0], tr[1]); err != nil {
			panic(err)
		}
	}
	for n := core.NodeID(1); n <= 8; n++ {
		if err := top.AttachNode(n, SwitchID((n-1)/2)); err != nil {
			panic(err)
		}
	}
	return top
}

// crossesTrunk reports whether a route uses the trunk a-b in either
// direction.
func crossesTrunk(route []Edge, a, b SwitchID) bool {
	ea, eb := SwitchEnd(a), SwitchEnd(b)
	for _, e := range route {
		if (e.From == ea && e.To == eb) || (e.From == eb && e.To == ea) {
			return true
		}
	}
	return false
}

// deepStateKey extends fabricStateKey with the per-edge view the EDF
// verifier actually consumes (loads and derived task sets), so engine
// divergence is caught at the step that corrupts auxiliary state, not
// at the later decision it skews.
func deepStateKey(st *State) string {
	s := fabricStateKey(st)
	for _, e := range st.Edges() {
		s += fmt.Sprintf("|%v:%d:%v", e, st.LinkLoad(e), st.TasksOn(e))
	}
	return s
}

// churnWorld is one engine variant's fabric plus controller.
type churnWorld struct {
	name string
	top  *Topology
	ctrl *Controller
}

// failTrunk replays one failure on a single world: down the trunk,
// release every channel routed over it (ID order), and re-admit the
// batch under the old IDs. The returned string captures the verdicts and
// the recomputed routes.
func (w *churnWorld) failTrunk(t *testing.T, a, b SwitchID) string {
	t.Helper()
	if changed, err := w.top.SetLinkUp(a, b, false); err != nil || !changed {
		t.Fatalf("%s: SetLinkUp(%d,%d,false) = %v, %v", w.name, a, b, changed, err)
	}
	var affected []*HChannel
	for _, hch := range w.ctrl.State().Channels() {
		if crossesTrunk(hch.Route, a, b) {
			affected = append(affected, hch)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].ID < affected[j].ID })
	reqs := make([]Req, len(affected))
	for i, hch := range affected {
		if err := w.ctrl.Release(hch.ID); err != nil {
			t.Fatalf("%s: release affected %d: %v", w.name, hch.ID, err)
		}
		reqs[i] = Req{Spec: hch.Spec, Sinks: hch.Sinks, ID: hch.ID, KeepID: true}
	}
	chs, errs := w.ctrl.RequestEachReq(reqs)
	var sb strings.Builder
	fmt.Fprintf(&sb, "fail %d-%d affected=%d:", a, b, len(affected))
	for i := range reqs {
		if errs[i] != nil {
			fmt.Fprintf(&sb, " %d=rej(%v)", reqs[i].ID, errs[i])
			continue
		}
		if chs[i].ID != reqs[i].ID {
			t.Fatalf("%s: re-admission changed channel ID %d to %d", w.name, reqs[i].ID, chs[i].ID)
		}
		fmt.Fprintf(&sb, " %d=%v", chs[i].ID, chs[i].Route)
	}
	return sb.String()
}

// repairTrunk restores a trunk on one world. Channels stay where the
// recovery pass put them — repair only re-opens the routes.
func (w *churnWorld) repairTrunk(t *testing.T, a, b SwitchID) {
	t.Helper()
	if changed, err := w.top.SetLinkUp(a, b, true); err != nil || !changed {
		t.Fatalf("%s: repair %d-%d: %v, %v", w.name, a, b, changed, err)
	}
}

// replayChurn drives the full seeded workload over all three engine
// variants in lockstep and returns the combined event log.
func replayChurn(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	worlds := []*churnWorld{
		{name: "incremental"},
		{name: "clone"},
		{name: "fullrecheck"},
	}
	for _, w := range worlds {
		w.top = ringFabric()
		cfg := Config{DPS: HADPS{}}
		if w.name == "clone" {
			cfg.DPS = cloneOnly{cfg.DPS}
		}
		if w.name == "fullrecheck" {
			cfg.FullRecheck = true
		}
		w.ctrl = NewController(w.top, cfg)
	}
	// step drives one operation through every world and asserts the
	// outcome (and the committed state) is identical everywhere.
	step := func(what string, op func(w *churnWorld) string) string {
		t.Helper()
		ref := op(worlds[0])
		for _, w := range worlds[1:] {
			if got := op(w); got != ref {
				t.Fatalf("%s: %s diverges from incremental:\n%s\nvs\n%s", w.name, what, got, ref)
			}
			if got, want := deepStateKey(w.ctrl.State()), deepStateKey(worlds[0].ctrl.State()); got != want {
				t.Fatalf("%s: state diverges after %s:\n%s\nvs\n%s", w.name, what, got, want)
			}
		}
		for _, e := range worlds[0].ctrl.State().Edges() {
			if res := edf.TestDefault(worlds[0].ctrl.State().TasksOn(e)); !res.OK() {
				t.Fatalf("after %s: committed state infeasible on %v: %v", what, e, res)
			}
		}
		return ref
	}

	trunks := [][2]SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	var log strings.Builder
	var live []core.ChannelID
	rejected := 0
	for round := 0; round < 24; round++ {
		// A few establishments, every fifth one a 2-sink multicast tree.
		for k := 0; k < 1+rng.Intn(3); k++ {
			src := core.NodeID(1 + rng.Intn(8))
			spec := core.ChannelSpec{Src: src, C: 2, P: 100, D: int64(28 + rng.Intn(20))}
			var sinks []core.NodeID
			if (round+k)%5 == 4 {
				for len(sinks) < 2 {
					s := core.NodeID(1 + rng.Intn(8))
					if s != src && (len(sinks) == 0 || sinks[0] != s) {
						sinks = append(sinks, s)
					}
				}
				spec.Dst = sinks[0]
			} else {
				for {
					dst := core.NodeID(1 + rng.Intn(8))
					if dst != src {
						spec.Dst = dst
						break
					}
				}
			}
			line := step("establish", func(w *churnWorld) string {
				chs, errs := w.ctrl.RequestEachReq([]Req{{Spec: spec, Sinks: sinks}})
				if errs[0] != nil {
					return fmt.Sprintf("est %v sinks=%v rej(%v)", spec, sinks, errs[0])
				}
				return fmt.Sprintf("est %v sinks=%v id=%d route=%v", spec, sinks, chs[0].ID, chs[0].Route)
			})
			if strings.Contains(line, "rej(") {
				rejected++
			} else {
				var id core.ChannelID
				fmt.Sscanf(line[strings.Index(line, "id="):], "id=%d", &id)
				live = append(live, id)
			}
			log.WriteString(line + "\n")
		}
		// Occasional release keeps headroom so later rounds still admit.
		if len(live) > 6 && rng.Intn(2) == 0 {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			step("release", func(w *churnWorld) string {
				if err := w.ctrl.Release(id); err != nil {
					t.Fatalf("%s: release %d: %v", w.name, id, err)
				}
				return fmt.Sprintf("rel %d", id)
			})
			fmt.Fprintf(&log, "rel %d\n", id)
		}
		// Every third round: a down/repair cycle on a random ring trunk.
		if round%3 == 2 {
			tr := trunks[rng.Intn(len(trunks))]
			line := step("failover", func(w *churnWorld) string {
				return w.failTrunk(t, tr[0], tr[1])
			})
			log.WriteString(line + "\n")
			// Channels the residual ring could not carry are gone; drop
			// them from the live set.
			alive := map[core.ChannelID]bool{}
			for _, hch := range worlds[0].ctrl.State().Channels() {
				alive[hch.ID] = true
			}
			kept := live[:0]
			for _, id := range live {
				if alive[id] {
					kept = append(kept, id)
				}
			}
			live = kept
			step("repair", func(w *churnWorld) string {
				w.repairTrunk(t, tr[0], tr[1])
				return "repair"
			})
			fmt.Fprintf(&log, "repair %d-%d\n", tr[0], tr[1])
		}
	}
	if rejected == 0 {
		t.Fatal("workload never saturated — rejection equivalence not exercised")
	}
	if !strings.Contains(log.String(), "affected=") {
		t.Fatal("no failure ever hit a routed channel")
	}
	return log.String()
}

// TestFailureChurnReplayEquivalence is the seeded survivability replay:
// byte-identical logs for the same seed, engine-equivalent decisions
// throughout (the per-step assertions live in replayChurn).
func TestFailureChurnReplayEquivalence(t *testing.T) {
	first := replayChurn(t, 7)
	second := replayChurn(t, 7)
	if first != second {
		t.Fatalf("same seed replayed differently:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// A different seed must still be internally equivalent (asserted in
	// replayChurn) — and, almost surely, produce a different history.
	if other := replayChurn(t, 8); other == first {
		t.Fatal("different seeds produced identical histories (suspicious workload generator)")
	}
}
