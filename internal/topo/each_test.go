package topo

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// eachTestTopology builds a 3-switch line with nodes 1-2 on switch 0,
// 3-4 on switch 1, 5-6 on switch 2, and node 9 unattached (no-route
// specs reference it).
func eachTestTopology(t *testing.T) *Topology {
	t.Helper()
	top := NewTopology()
	for sw := 0; sw < 3; sw++ {
		if err := top.AddSwitch(SwitchID(sw)); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.ConnectSwitches(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := top.ConnectSwitches(1, 2); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 6; n++ {
		if err := top.AttachNode(core.NodeID(n), SwitchID((n-1)/2)); err != nil {
			t.Fatal(err)
		}
	}
	return top
}

// randomFabricSpecs draws a mixed routed workload: valid specs under
// pressure, a few no-route specs (unattached node 9) and a few invalid
// ones.
func randomFabricSpecs(rng *rand.Rand, count int) []core.ChannelSpec {
	specs := make([]core.ChannelSpec, count)
	for i := range specs {
		src := core.NodeID(1 + rng.Intn(6))
		dst := core.NodeID(1 + rng.Intn(6))
		for dst == src {
			dst = core.NodeID(1 + rng.Intn(6))
		}
		c := int64(1 + rng.Intn(2))
		p := int64(20 + rng.Intn(100))
		d := 4*c + int64(rng.Intn(30))
		switch rng.Intn(20) {
		case 0:
			dst = 9 // no route: node 9 is unattached
		case 1:
			d = 2*c - 1 // invalid spec
		}
		specs[i] = core.ChannelSpec{Src: src, Dst: dst, C: c, P: p, D: d}
	}
	return specs
}

// hchFingerprint serializes committed channels with their hop vectors.
func hchFingerprint(c *Controller) string {
	out := ""
	for _, ch := range c.State().Channels() {
		out += fmt.Sprintf("%d:%v:%v;", ch.ID, ch.Spec, ch.Hops)
	}
	return out
}

// TestRequestEachMatchesSequentialFabric replays the same merged
// workload through RequestEach and sequential Request on fresh
// controllers for both hop-general schemes, requiring identical
// verdicts, diagnostics and committed hop vectors — the fabric half of
// the coalescing decision-equivalence criterion. H-SDPS equivalence is
// exact by construction (monotone scheme); the H-ADPS subtest pins the
// equivalence observed on this fixed seeded workload (see
// admit.AdmitEach for why load-adaptive schemes can in principle
// diverge on merged groups).
func TestRequestEachMatchesSequentialFabric(t *testing.T) {
	for _, tc := range []struct {
		name string
		dps  HDPS
	}{
		{"HSDPS", HSDPS{}},
		{"HADPS", HADPS{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			specs := randomFabricSpecs(rng, 300)

			merged := NewController(eachTestTopology(t), Config{DPS: tc.dps})
			chs, errs := merged.RequestEach(specs)

			seq := NewController(eachTestTopology(t), Config{DPS: tc.dps})
			accepted, rejected, noRoute, invalid := 0, 0, 0, 0
			for i, spec := range specs {
				sch, serr := seq.Request(spec)
				if (serr == nil) != (errs[i] == nil) {
					t.Fatalf("spec %d (%v): merged err=%v, sequential err=%v", i, spec, errs[i], serr)
				}
				if serr != nil {
					switch {
					case errors.Is(serr, ErrNoRoute), errors.Is(serr, ErrUnknownNode):
						noRoute++
					case errors.As(serr, new(*RejectionError)):
						rejected++
						var mrej, srej *RejectionError
						errors.As(errs[i], &mrej)
						errors.As(serr, &srej)
						if mrej == nil || mrej.Edge != srej.Edge || mrej.Result.String() != srej.Result.String() {
							t.Fatalf("spec %d: diagnostics differ:\n  merged     %v\n  sequential %v", i, errs[i], serr)
						}
					default:
						invalid++
					}
					if errs[i].Error() != serr.Error() {
						t.Fatalf("spec %d: errors differ: %q vs %q", i, errs[i], serr)
					}
					continue
				}
				accepted++
				if chs[i].ID != sch.ID {
					t.Fatalf("spec %d: merged ID %d, sequential ID %d", i, chs[i].ID, sch.ID)
				}
			}
			if accepted == 0 || rejected == 0 || noRoute == 0 || invalid == 0 {
				t.Fatalf("workload not mixed enough: %d accepted, %d rejected, %d no-route, %d invalid",
					accepted, rejected, noRoute, invalid)
			}
			if got, want := hchFingerprint(merged), hchFingerprint(seq); got != want {
				t.Fatalf("committed states differ:\n  merged     %s\n  sequential %s", got, want)
			}
			if merged.Accepted() != seq.Accepted() || merged.Requests() != seq.Requests() {
				t.Fatalf("counters differ: merged %d/%d, sequential %d/%d",
					merged.Accepted(), merged.Requests(), seq.Accepted(), seq.Requests())
			}
			t.Logf("%s: accepted %d rejected %d no-route %d invalid %d; repartition passes merged=%d sequential=%d",
				tc.name, accepted, rejected, noRoute, invalid, merged.Repartitions(), seq.Repartitions())
		})
	}
}
