package sim

import (
	"testing"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, func() { got = append(got, 5) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.RunUntil(10)
	want := []int{1, 3, 5}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d, want horizon 10", e.Now())
	}
}

func TestEnginePriorityPhases(t *testing.T) {
	e := NewEngine()
	var got []string
	e.AtPrio(2, PrioDecide, func() { got = append(got, "decide") })
	e.AtPrio(2, PrioDeliver, func() { got = append(got, "deliver") })
	e.AtPrio(2, PrioRelease, func() { got = append(got, "release") })
	e.RunUntil(2)
	want := []string{"deliver", "release", "decide"}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOWithinSamePriority(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		e.AtPrio(1, PrioDeliver, func() { got = append(got, i) })
	}
	e.RunUntil(1)
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO broken: %v", got)
		}
	}
}

func TestEngineEventsScheduledDuringStep(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(1, func() {
		got = append(got, "a")
		e.At(1, func() { got = append(got, "same-slot") }) // same instant, later seq
		e.At(2, func() { got = append(got, "next-slot") })
	})
	e.RunUntil(5)
	want := []string{"a", "same-slot", "next-slot"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(3, func() {})
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	fired := int64(-1)
	e.At(4, func() {
		e.After(3, func() { fired = e.Now() })
	})
	e.RunUntil(10)
	if fired != 7 {
		t.Errorf("After(3) from t=4 fired at %d, want 7", fired)
	}
}

func TestEngineRunUntilHonorsHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(99)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if !fired {
		t.Error("event at horizon did not fire")
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

func TestEngineStepRunsWholeInstant(t *testing.T) {
	e := NewEngine()
	count := 0
	e.AtPrio(3, PrioDeliver, func() { count++ })
	e.AtPrio(3, PrioDecide, func() { count++ })
	e.At(9, func() { count += 10 })
	if !e.Step() {
		t.Fatal("Step returned false")
	}
	if count != 2 || e.Now() != 3 {
		t.Errorf("after first Step: count=%d now=%d, want 2 and 3", count, e.Now())
	}
}

// TestEngineExecutionOrderProperty fuzzes random schedules: execution
// order must be exactly (time, priority, scheduling sequence).
func TestEngineExecutionOrderProperty(t *testing.T) {
	type key struct {
		at   int64
		prio Priority
		seq  int
	}
	for trial := 0; trial < 100; trial++ {
		e := NewEngine()
		var got []key
		n := 50
		keys := make([]key, n)
		for i := 0; i < n; i++ {
			k := key{
				at:   int64((i * 7919) % 13),
				prio: Priority((i * 31) % 3),
				seq:  i,
			}
			keys[i] = k
			kk := k
			e.AtPrio(kk.at, kk.prio, func() { got = append(got, kk) })
		}
		e.RunUntil(20)
		if len(got) != n {
			t.Fatalf("trial %d: executed %d of %d", trial, len(got), n)
		}
		for i := 1; i < n; i++ {
			a, b := got[i-1], got[i]
			ok := a.at < b.at ||
				(a.at == b.at && a.prio < b.prio) ||
				(a.at == b.at && a.prio == b.prio && a.seq < b.seq)
			if !ok {
				t.Fatalf("trial %d: order violated at %d: %+v then %+v", trial, i, a, b)
			}
		}
	}
}

func TestEngineDrain(t *testing.T) {
	e := NewEngine()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < 5 {
			e.After(1, reschedule)
		}
	}
	e.At(0, reschedule)
	if !e.Drain(100) {
		t.Error("Drain did not empty a finite chain")
	}
	if n != 5 {
		t.Errorf("chain ran %d times, want 5", n)
	}

	// Infinite chain: budget must stop it.
	var forever func()
	forever = func() { e.After(1, forever) }
	e.After(1, forever)
	if e.Drain(50) {
		t.Error("Drain claimed to empty an infinite chain")
	}
	if e.Fired() == 0 {
		t.Error("Fired counter not advancing")
	}
}
