// Package sim provides a deterministic discrete-event simulation engine in
// integer virtual time. Time is measured in timeslots (one slot = the
// transmission time of one maximal-sized Ethernet frame), matching the
// unit system of the paper's analysis. Determinism is total: events at the
// same instant run in (priority, scheduling order), so two runs of the
// same scenario produce identical traces — the property that makes a Go
// reproduction of a hard-real-time system meaningful despite GC jitter.
package sim

import (
	"container/heap"
	"fmt"
)

// Priority orders events that fire at the same instant. Lower runs first.
// The network model uses three phases per slot boundary: frame deliveries
// land first, then traffic sources release new frames, then transmitters
// decide what to send in the coming slot — so a decision always sees every
// frame that exists at that instant.
type Priority int

// Standard phases of one slot boundary.
const (
	PrioDeliver Priority = 0 // frame receptions, shaper releases
	PrioRelease Priority = 1 // periodic source releases
	PrioDecide  Priority = 2 // transmit decisions
)

type event struct {
	at   int64
	prio Priority
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the whole simulation runs on one goroutine (shared
// memory never races because nothing is shared across goroutines — "do
// not communicate by sharing memory" taken to its deterministic extreme).
// Concurrency lives one layer up: rtether.Network serializes every entry
// into the simulation behind its lock, so the engine always observes the
// single-goroutine discipline it assumes.
type Engine struct {
	now   int64
	seq   uint64
	queue eventHeap
	fired int64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in slots.
func (e *Engine) Now() int64 { return e.now }

// Fired returns the total number of events executed (diagnostics).
func (e *Engine) Fired() int64 { return e.fired }

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute time t with PrioDeliver. Scheduling in the
// past panics — that is always a model bug.
func (e *Engine) At(t int64, fn func()) { e.AtPrio(t, PrioDeliver, fn) }

// AtPrio schedules fn at absolute time t in the given phase.
func (e *Engine) AtPrio(t int64, prio Priority, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	ev := &event{at: t, prio: prio, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
}

// After schedules fn d slots from now (d >= 0) with PrioDeliver.
func (e *Engine) After(d int64, fn func()) { e.AtPrio(e.now+d, PrioDeliver, fn) }

// Step runs every event at the earliest pending instant (all priorities)
// and advances the clock to it. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	t := e.queue[0].at
	e.now = t
	for len(e.queue) > 0 && e.queue[0].at == t {
		ev := heap.Pop(&e.queue).(*event)
		e.fired++
		ev.fn()
	}
	return true
}

// RunUntil executes all events with time <= horizon and then sets the
// clock to horizon. Events scheduled during execution are honored if they
// fall within the horizon.
func (e *Engine) RunUntil(horizon int64) {
	for len(e.queue) > 0 && e.queue[0].at <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Drain runs events until none remain or the event budget is exhausted,
// returning true if the queue emptied. The budget guards against
// self-perpetuating models (periodic sources never stop by themselves).
func (e *Engine) Drain(budget int64) bool {
	for i := int64(0); i < budget; i++ {
		if !e.Step() {
			return true
		}
	}
	return len(e.queue) == 0
}
