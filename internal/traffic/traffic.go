// Package traffic generates the workloads of the paper's evaluation: the
// master-slave request pattern of §18.4.2 (10 masters, 50 slaves, uniform
// channels C=3, P=100, d=40), randomized channel populations for
// robustness experiments, and arrival processes for background
// best-effort load.
package traffic

import (
	"math/rand"

	"repro/internal/core"
)

// PaperSpec is the uniform channel of Fig. 18.5: C_i = 3, P_i = 100,
// d_i = 40 (endpoints filled per request).
var PaperSpec = core.ChannelSpec{C: 3, P: 100, D: 40}

// MasterSlaveLayout describes the node population of the paper's
// experiment: master nodes 0..Masters-1 and slave nodes
// SlaveBase..SlaveBase+Slaves-1.
type MasterSlaveLayout struct {
	Masters   int
	Slaves    int
	SlaveBase core.NodeID
}

// PaperLayout is the configuration of §18.4.2: 10 masters and 50 slaves.
var PaperLayout = MasterSlaveLayout{Masters: 10, Slaves: 50, SlaveBase: 100}

// Nodes returns every node ID in the layout, masters first.
func (l MasterSlaveLayout) Nodes() []core.NodeID {
	ids := make([]core.NodeID, 0, l.Masters+l.Slaves)
	for m := 0; m < l.Masters; m++ {
		ids = append(ids, core.NodeID(m))
	}
	for s := 0; s < l.Slaves; s++ {
		ids = append(ids, l.SlaveBase+core.NodeID(s))
	}
	return ids
}

// Master returns the ID of master m.
func (l MasterSlaveLayout) Master(m int) core.NodeID { return core.NodeID(m % l.Masters) }

// Slave returns the ID of slave s.
func (l MasterSlaveLayout) Slave(s int) core.NodeID {
	return l.SlaveBase + core.NodeID(s%l.Slaves)
}

// Requests produces n channel requests in the paper's round-robin
// master-slave pattern: request k goes from master k mod Masters to slave
// k mod Slaves, with the given per-channel parameters.
func (l MasterSlaveLayout) Requests(n int, params core.ChannelSpec) []core.ChannelSpec {
	out := make([]core.ChannelSpec, n)
	for k := 0; k < n; k++ {
		s := params
		s.Src = l.Master(k)
		s.Dst = l.Slave(k)
		out[k] = s
	}
	return out
}

// ReverseRequests produces slave→master channels (the response direction
// of a master-slave protocol), same round-robin pairing.
func (l MasterSlaveLayout) ReverseRequests(n int, params core.ChannelSpec) []core.ChannelSpec {
	out := make([]core.ChannelSpec, n)
	for k := 0; k < n; k++ {
		s := params
		s.Src = l.Slave(k)
		s.Dst = l.Master(k)
		out[k] = s
	}
	return out
}

// RandomOptions bounds the random spec generator.
type RandomOptions struct {
	Sources      []core.NodeID
	Destinations []core.NodeID
	CMin, CMax   int64 // capacity range, inclusive
	PMin, PMax   int64 // period range, inclusive
	// DSlackMax bounds the deadline above its 2C floor: D = 2C + U(0, DSlackMax).
	DSlackMax int64
}

// Validate fills defaults and rejects impossible bounds.
func (o *RandomOptions) defaults() {
	if o.CMin <= 0 {
		o.CMin = 1
	}
	if o.CMax < o.CMin {
		o.CMax = o.CMin + 4
	}
	if o.PMin <= 0 {
		o.PMin = 50
	}
	if o.PMax < o.PMin {
		o.PMax = o.PMin + 150
	}
	if o.DSlackMax < 0 {
		o.DSlackMax = 0
	}
}

// RandomSpecs generates n random valid channel specs. Endpoints are drawn
// uniformly from the option sets (source and destination always differ
// when the sets allow it). Deterministic for a given rng state.
func RandomSpecs(rng *rand.Rand, n int, opts RandomOptions) []core.ChannelSpec {
	opts.defaults()
	out := make([]core.ChannelSpec, 0, n)
	for k := 0; k < n; k++ {
		src := opts.Sources[rng.Intn(len(opts.Sources))]
		dst := opts.Destinations[rng.Intn(len(opts.Destinations))]
		for tries := 0; src == dst && tries < 16; tries++ {
			dst = opts.Destinations[rng.Intn(len(opts.Destinations))]
		}
		if src == dst {
			continue // degenerate option sets
		}
		c := opts.CMin + rng.Int63n(opts.CMax-opts.CMin+1)
		d := 2*c + rng.Int63n(opts.DSlackMax+1)
		p := opts.PMin + rng.Int63n(opts.PMax-opts.PMin+1)
		if p < c {
			p = c
		}
		if d > p*2 { // keep deadlines in a realistic band
			d = p * 2
		}
		out = append(out, core.ChannelSpec{Src: src, Dst: dst, C: c, P: p, D: d})
	}
	return out
}

// PoissonArrivals returns arrival slots of a Poisson process with the
// given mean rate (frames per slot) over [0, horizon). Deterministic for
// a given rng state.
func PoissonArrivals(rng *rand.Rand, rate float64, horizon int64) []int64 {
	if rate <= 0 || horizon <= 0 {
		return nil
	}
	var arrivals []int64
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if int64(t) >= horizon {
			return arrivals
		}
		arrivals = append(arrivals, int64(t))
	}
}

// UniformOffsets returns n release offsets drawn uniformly from
// [0, maxOffset]; offset 0 for maxOffset <= 0. The synchronous case
// (all zero) is the analysis' worst case; random offsets model unsynced
// stations.
func UniformOffsets(rng *rand.Rand, n int, maxOffset int64) []int64 {
	out := make([]int64, n)
	if maxOffset <= 0 {
		return out
	}
	for i := range out {
		out[i] = rng.Int63n(maxOffset + 1)
	}
	return out
}
