package traffic

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestParseTraceGolden pins the exact event sequence a known file
// replays to, in both line formats and mixed.
func TestParseTraceGolden(t *testing.T) {
	const input = `at,src,dst
# warm-up burst
0,1,2
0,1,3
{"at": 4, "src": 2, "dst": 1}
17,1,2

250,3,1
`
	tr, err := ParseTrace(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceEvent{
		{At: 0, Src: 1, Dst: 2},
		{At: 0, Src: 1, Dst: 3},
		{At: 4, Src: 2, Dst: 1},
		{At: 17, Src: 1, Dst: 2},
		{At: 250, Src: 3, Dst: 1},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %+v", len(tr.Events), len(want), tr.Events)
	}
	for i, ev := range want {
		if tr.Events[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, tr.Events[i], ev)
		}
	}
	if tr.Horizon() != 251 {
		t.Errorf("Horizon() = %d, want 251", tr.Horizon())
	}
}

// TestParseTraceMalformed pins the line numbers malformed inputs are
// rejected with.
func TestParseTraceMalformed(t *testing.T) {
	cases := []struct {
		name     string
		input    string
		wantLine int
		wantMsg  string
	}{
		{"too few fields", "0,1,2\n5,9\n", 2, "want 3 CSV fields"},
		{"too many fields", "0,1,2,3\n", 1, "want 3 CSV fields"},
		{"bad at", "x,1,2\n", 1, "bad at"},
		{"bad src", "0,notanode,2\n", 1, "bad src"},
		{"bad dst", "0,1,70000\n", 1, "bad dst"},
		{"negative slot", "0,1,2\n-4,1,2\n", 2, "negative slot"},
		{"bad json", `{"at": "zero"}` + "\n", 1, "bad JSON event"},
		{"unknown json field", `{"at": 0, "src": 1, "dst": 2, "size": 64}` + "\n", 1, "bad JSON event"},
		{"json trailing data", `{"at": 0, "src": 1, "dst": 2} extra` + "\n", 1, "trailing data"},
		{"out of order", "9,1,2\n3,1,2\n", 2, "out of order"},
		{"header not on line 1", "0,1,2\nat,src,dst\n", 2, "bad at"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.input))
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("err = %v, want *TraceError", err)
			}
			if te.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (%v)", te.Line, tc.wantLine, te)
			}
			if !strings.Contains(te.Msg, tc.wantMsg) {
				t.Errorf("msg = %q, want substring %q", te.Msg, tc.wantMsg)
			}
		})
	}
}

// TestTraceRoundTrip writes a trace out in both formats and reads each
// back to the identical event sequence.
func TestTraceRoundTrip(t *testing.T) {
	orig := &Trace{Events: []TraceEvent{
		{At: 0, Src: 1, Dst: 2}, {At: 0, Src: 2, Dst: 1}, {At: 99, Src: 3, Dst: 4},
	}}
	for _, form := range []struct {
		name  string
		write func(*Trace, *bytes.Buffer) error
	}{
		{"csv", func(tr *Trace, b *bytes.Buffer) error { return tr.WriteCSV(b) }},
		{"ndjson", func(tr *Trace, b *bytes.Buffer) error { return tr.WriteNDJSON(b) }},
	} {
		t.Run(form.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := form.write(orig, &buf); err != nil {
				t.Fatal(err)
			}
			back, err := ParseTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("round trip failed: %v\n%s", err, buf.String())
			}
			if len(back.Events) != len(orig.Events) {
				t.Fatalf("round trip lost events: %+v", back.Events)
			}
			for i := range orig.Events {
				if back.Events[i] != orig.Events[i] {
					t.Errorf("event %d = %+v, want %+v", i, back.Events[i], orig.Events[i])
				}
			}
		})
	}
}

// TestSyntheticTraceDeterministic pins the generator: same seed, same
// trace; the output is ordered and parseable.
func TestSyntheticTraceDeterministic(t *testing.T) {
	gen := func() *Trace {
		rng := rand.New(rand.NewSource(42))
		return SyntheticTrace(rng, [][2]uint16{{1, 2}, {3, 4}}, 0.2, 500)
	}
	a, b := gen(), gen()
	if len(a.Events) == 0 {
		t.Fatal("synthetic trace is empty")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths diverged: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("synthetic trace does not parse back: %v", err)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("synthetic trace out of order at %d", i)
		}
	}
}
