package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
)

// TraceEvent is one recorded best-effort arrival: a frame entering the
// network at slot At, from Src to Dst. Traces let background load come
// from recorded (or synthesized-and-saved) arrival processes instead of
// live Poisson draws, so the exact same frame sequence can be replayed
// across runs, machines and sweep cells.
type TraceEvent struct {
	At  int64  `json:"at"`
	Src uint16 `json:"src"`
	Dst uint16 `json:"dst"`
}

// Trace is a timestamped arrival recording: events in non-decreasing
// slot order. The zero value is an empty trace.
type Trace struct {
	Events []TraceEvent
}

// TraceError reports a malformed trace input, pointing at the offending
// line (1-based).
type TraceError struct {
	Line int    // 1-based input line
	Msg  string // what was wrong with it
}

// Error renders the diagnostic with its line number.
func (e *TraceError) Error() string {
	return fmt.Sprintf("trace: line %d: %s", e.Line, e.Msg)
}

// ParseTrace reads a trace recording. Two line formats are accepted and
// may even be mixed (each line is sniffed independently):
//
//   - CSV: "at,src,dst" — three non-negative integers. A header line
//     "at,src,dst" is allowed and skipped. Blank lines and lines
//     starting with '#' are comments.
//   - ndjson: {"at": 17, "src": 1, "dst": 9} — one JSON object per
//     line, unknown fields rejected.
//
// Malformed lines are rejected with a *TraceError naming the 1-based
// line number; events must arrive in non-decreasing slot order (a
// recorded process is ordered by construction, so disorder means the
// file is corrupt).
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		var ev TraceEvent
		if strings.HasPrefix(raw, "{") {
			dec := json.NewDecoder(strings.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&ev); err != nil {
				return nil, &TraceError{Line: line, Msg: fmt.Sprintf("bad JSON event: %v", err)}
			}
			// Trailing garbage after the object is as malformed as a bad field.
			if dec.More() {
				return nil, &TraceError{Line: line, Msg: "trailing data after JSON event"}
			}
		} else {
			fields := strings.Split(raw, ",")
			if len(fields) != 3 {
				return nil, &TraceError{Line: line, Msg: fmt.Sprintf("want 3 CSV fields (at,src,dst), got %d", len(fields))}
			}
			if line == 1 && strings.TrimSpace(fields[0]) == "at" {
				continue // header
			}
			at, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
			if err != nil {
				return nil, &TraceError{Line: line, Msg: fmt.Sprintf("bad at %q", fields[0])}
			}
			src, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 10, 16)
			if err != nil {
				return nil, &TraceError{Line: line, Msg: fmt.Sprintf("bad src %q", fields[1])}
			}
			dst, err := strconv.ParseUint(strings.TrimSpace(fields[2]), 10, 16)
			if err != nil {
				return nil, &TraceError{Line: line, Msg: fmt.Sprintf("bad dst %q", fields[2])}
			}
			ev = TraceEvent{At: at, Src: uint16(src), Dst: uint16(dst)}
		}
		if ev.At < 0 {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("negative slot %d", ev.At)}
		}
		if n := len(tr.Events); n > 0 && ev.At < tr.Events[n-1].At {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("out of order: slot %d after %d", ev.At, tr.Events[n-1].At)}
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadTraceFile is ParseTrace over a file, with the path woven into any
// error.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// WriteCSV emits the trace in the CSV line format ParseTrace reads
// back, header included — the canonical on-disk form.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "at,src,dst"); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", ev.At, ev.Src, ev.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNDJSON emits the trace as one JSON object per line.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Horizon returns the slot just past the last event (0 for an empty
// trace).
func (t *Trace) Horizon() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At + 1
}

// SyntheticTrace records a Poisson arrival process per flow over
// [0, horizon) and merges them into one time-ordered trace —
// the generator for trace files when no real capture is at hand.
// Deterministic for a given rng state: flows draw their arrival streams
// in declaration order, and the merge is stable (earlier-declared flows
// win slot ties).
func SyntheticTrace(rng *rand.Rand, flows [][2]uint16, rate float64, horizon int64) *Trace {
	tr := &Trace{}
	for _, f := range flows {
		for _, at := range PoissonArrivals(rng, rate, horizon) {
			tr.Events = append(tr.Events, TraceEvent{At: at, Src: f[0], Dst: f[1]})
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
	return tr
}
