package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestPaperLayoutNodes(t *testing.T) {
	ids := PaperLayout.Nodes()
	if len(ids) != 60 {
		t.Fatalf("paper layout has %d nodes, want 60", len(ids))
	}
	if ids[0] != 0 || ids[9] != 9 || ids[10] != 100 || ids[59] != 149 {
		t.Errorf("node IDs = %v...", ids[:12])
	}
}

func TestRequestsRoundRobin(t *testing.T) {
	reqs := PaperLayout.Requests(200, PaperSpec)
	if len(reqs) != 200 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for k, r := range reqs {
		if r.Src != core.NodeID(k%10) {
			t.Fatalf("request %d src = %d, want %d", k, r.Src, k%10)
		}
		if r.Dst != core.NodeID(100+k%50) {
			t.Fatalf("request %d dst = %d, want %d", k, r.Dst, 100+k%50)
		}
		if r.C != 3 || r.P != 100 || r.D != 40 {
			t.Fatalf("request %d params = %v", k, r)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", k, err)
		}
	}
	// Round-robin spreads evenly: each master sources exactly 20 of 200.
	counts := map[core.NodeID]int{}
	for _, r := range reqs {
		counts[r.Src]++
	}
	for m := 0; m < 10; m++ {
		if counts[core.NodeID(m)] != 20 {
			t.Errorf("master %d sources %d channels, want 20", m, counts[core.NodeID(m)])
		}
	}
}

func TestReverseRequests(t *testing.T) {
	reqs := PaperLayout.ReverseRequests(50, PaperSpec)
	for k, r := range reqs {
		if r.Src != core.NodeID(100+k%50) || r.Dst != core.NodeID(k%10) {
			t.Fatalf("reverse request %d = %v", k, r)
		}
	}
}

func TestRandomSpecsValidAndDeterministic(t *testing.T) {
	opts := RandomOptions{
		Sources:      []core.NodeID{0, 1, 2},
		Destinations: []core.NodeID{10, 11, 12, 13},
		CMin:         1, CMax: 5,
		PMin: 50, PMax: 200,
		DSlackMax: 60,
	}
	a := RandomSpecs(rand.New(rand.NewSource(3)), 200, opts)
	b := RandomSpecs(rand.New(rand.NewSource(3)), 200, opts)
	if len(a) != 200 {
		t.Fatalf("generated %d specs", len(a))
	}
	for i, s := range a {
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v (%v)", i, err, s)
		}
		if s != b[i] {
			t.Fatal("RandomSpecs not deterministic for equal seeds")
		}
		if s.C < 1 || s.C > 5 || s.P < 50 || s.P > 200 {
			t.Fatalf("spec %d out of bounds: %v", i, s)
		}
	}
}

func TestRandomSpecsAvoidsSelfLoops(t *testing.T) {
	opts := RandomOptions{
		Sources:      []core.NodeID{1, 2},
		Destinations: []core.NodeID{1, 2},
	}
	specs := RandomSpecs(rand.New(rand.NewSource(8)), 500, opts)
	for _, s := range specs {
		if s.Src == s.Dst {
			t.Fatalf("self loop generated: %v", s)
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arr := PoissonArrivals(rng, 0.1, 100000)
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	// Mean rate 0.1/slot over 100k slots: expect ~10000, allow wide band.
	if len(arr) < 8000 || len(arr) > 12000 {
		t.Errorf("got %d arrivals, want ≈10000", len(arr))
	}
	prev := int64(-1)
	for _, a := range arr {
		if a < prev || a >= 100000 {
			t.Fatalf("arrival %d out of order or range", a)
		}
		prev = a
	}
	if got := PoissonArrivals(rng, 0, 100); got != nil {
		t.Error("zero rate produced arrivals")
	}
}

func TestUniformOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	offs := UniformOffsets(rng, 100, 99)
	if len(offs) != 100 {
		t.Fatal("wrong count")
	}
	varied := false
	for _, o := range offs {
		if o < 0 || o > 99 {
			t.Fatalf("offset %d out of range", o)
		}
		if o != offs[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("offsets not varied")
	}
	for _, o := range UniformOffsets(rng, 5, 0) {
		if o != 0 {
			t.Error("maxOffset 0 must give synchronous releases")
		}
	}
}
