package stats

import (
	"math"
	"strings"
	"testing"
)

func TestDelayEmpty(t *testing.T) {
	d := NewDelay(0)
	if d.Count() != 0 || d.Min() != 0 || d.Max() != 0 || d.Mean() != 0 || d.StdDev() != 0 {
		t.Error("empty Delay aggregates non-zero")
	}
	if d.Percentile(50) != 0 {
		t.Error("empty percentile non-zero")
	}
	if !strings.Contains(d.String(), "empty") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDelayAggregates(t *testing.T) {
	d := NewDelay(0)
	for _, v := range []int64{4, 2, 8, 6} {
		d.Observe(v)
	}
	if d.Count() != 4 || d.Min() != 2 || d.Max() != 8 {
		t.Errorf("count=%d min=%d max=%d", d.Count(), d.Min(), d.Max())
	}
	if d.Mean() != 5 {
		t.Errorf("mean = %v, want 5", d.Mean())
	}
	// Population stddev of {4,2,8,6} = sqrt(5).
	if math.Abs(d.StdDev()-math.Sqrt(5)) > 1e-9 {
		t.Errorf("stddev = %v, want sqrt(5)", d.StdDev())
	}
}

func TestDelayPercentiles(t *testing.T) {
	d := NewDelay(1000)
	for v := int64(1); v <= 100; v++ {
		d.Observe(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100},
	}
	for _, tc := range cases {
		if got := d.Percentile(tc.p); got != tc.want {
			t.Errorf("P%.0f = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestDelayReservoirBounded(t *testing.T) {
	d := NewDelay(64)
	for v := int64(0); v < 100000; v++ {
		d.Observe(v % 1000)
	}
	if len(d.samples) > 64 {
		t.Errorf("sample buffer grew to %d, cap 64", len(d.samples))
	}
	if d.Count() != 100000 {
		t.Errorf("count = %d", d.Count())
	}
	// Percentile must still be a real observed value.
	p := d.Percentile(50)
	if p < 0 || p >= 1000 {
		t.Errorf("P50 = %d out of observed range", p)
	}
	// Exact aggregates are unaffected by sampling.
	if d.Min() != 0 || d.Max() != 999 {
		t.Errorf("min=%d max=%d", d.Min(), d.Max())
	}
}

func TestDelayObserveAfterPercentileKeepsSorting(t *testing.T) {
	d := NewDelay(16)
	d.Observe(5)
	d.Observe(1)
	if d.Percentile(100) != 5 {
		t.Fatal("P100 wrong")
	}
	d.Observe(9)
	if d.Percentile(100) != 9 {
		t.Error("percentile stale after new observation")
	}
}

func TestDelayMerge(t *testing.T) {
	a := NewDelay(100)
	b := NewDelay(100)
	for v := int64(1); v <= 10; v++ {
		a.Observe(v)
	}
	for v := int64(11); v <= 20; v++ {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 20 || a.Min() != 1 || a.Max() != 20 {
		t.Errorf("merged count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	if a.Mean() != 10.5 {
		t.Errorf("merged mean = %v, want 10.5", a.Mean())
	}
	if got := a.Percentile(100); got != 20 {
		t.Errorf("merged P100 = %d, want 20", got)
	}
	// Merging nil or empty is a no-op.
	before := a.Count()
	a.Merge(nil)
	a.Merge(NewDelay(0))
	if a.Count() != before {
		t.Error("empty merge changed count")
	}
}

func TestDelayMergeRespectsSampleCap(t *testing.T) {
	a := NewDelay(8)
	b := NewDelay(1000)
	for v := int64(0); v < 500; v++ {
		b.Observe(v)
	}
	a.Merge(b)
	if len(a.samples) > 8 {
		t.Errorf("merged samples = %d, cap 8", len(a.samples))
	}
	if a.Count() != 500 {
		t.Errorf("merged count = %d", a.Count())
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable("Fig 18.5", "requested", "SDPS", "ADPS")
	tb.AddRowf(20, 20, 20)
	tb.AddRowf(200, 60, 110)
	s := tb.String()
	for _, want := range []string{"Fig 18.5", "requested", "SDPS", "ADPS", "200", "60", "110"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTableRowsCopy(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("x")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "x" {
		t.Error("Rows() exposed internal storage")
	}
}

func TestTableAddRowfFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRowf(1.23456)
	if got := tb.Rows()[0][0]; got != "1.235" {
		t.Errorf("float cell = %q, want 3 decimals", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "plain")
	tb.AddRow("2", `has,comma and "quote"`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,plain" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], `"has,comma and ""quote"""`) {
		t.Errorf("row 2 not quoted correctly: %q", lines[2])
	}
}
