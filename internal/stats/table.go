package stats

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned text table or CSV. It is
// deliberately tiny: the experiment harness prints the same rows/series
// the paper reports, and benchmarks log them.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the row data (for tests and machine consumption).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders an aligned ASCII table.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		for i := 0; i < ncol; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeCSVRow(t.Headers)
	}
	for _, r := range t.rows {
		writeCSVRow(r)
	}
	return b.String()
}
