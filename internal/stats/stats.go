// Package stats provides the measurement primitives used by the network
// simulator and the experiment harness: streaming delay statistics,
// fixed-capacity sampling for percentiles, and simple aligned-table /
// CSV rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Delay accumulates integer delay observations (in slots) with O(1)
// memory for the streaming aggregates plus a bounded sample buffer for
// percentile estimates.
type Delay struct {
	count int64
	sum   int64
	sumSq float64
	min   int64
	max   int64

	samples   []int64
	sampleCap int
	seen      int64
	rng       uint64 // xorshift state for reservoir sampling
	sorted    bool
}

// NewDelay returns a Delay keeping at most sampleCap observations for
// percentile queries (0 picks a default of 4096).
func NewDelay(sampleCap int) *Delay {
	if sampleCap <= 0 {
		sampleCap = 4096
	}
	return &Delay{min: math.MaxInt64, sampleCap: sampleCap, rng: 0x9E3779B97F4A7C15}
}

// Observe records one delay value.
func (d *Delay) Observe(v int64) {
	d.count++
	d.sum += v
	d.sumSq += float64(v) * float64(v)
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	// Algorithm R reservoir sampling keeps percentiles unbiased under any
	// arrival pattern while bounding memory.
	d.seen++
	if len(d.samples) < d.sampleCap {
		d.samples = append(d.samples, v)
		d.sorted = false
		return
	}
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	if idx := d.rng % uint64(d.seen); idx < uint64(d.sampleCap) {
		d.samples[idx] = v
		d.sorted = false
	}
}

// Count returns the number of observations.
func (d *Delay) Count() int64 { return d.count }

// Min returns the smallest observation (0 when empty).
func (d *Delay) Min() int64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest observation (0 when empty).
func (d *Delay) Max() int64 { return d.max }

// Mean returns the arithmetic mean (0 when empty).
func (d *Delay) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// StdDev returns the population standard deviation (0 when empty).
func (d *Delay) StdDev() float64 {
	if d.count == 0 {
		return 0
	}
	m := d.Mean()
	v := d.sumSq/float64(d.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0 <= p <= 100) from the sample
// buffer, 0 when empty.
func (d *Delay) Percentile(p float64) int64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

// Merge folds another Delay into this one. Count, sum, min, max and
// standard deviation merge exactly; percentile samples are unioned and
// re-sampled down to capacity.
func (d *Delay) Merge(o *Delay) {
	if o == nil || o.count == 0 {
		return
	}
	d.count += o.count
	d.sum += o.sum
	d.sumSq += o.sumSq
	if o.min < d.min {
		d.min = o.min
	}
	if o.max > d.max {
		d.max = o.max
	}
	d.seen += o.seen
	for _, s := range o.samples {
		if len(d.samples) < d.sampleCap {
			d.samples = append(d.samples, s)
			continue
		}
		d.rng ^= d.rng << 13
		d.rng ^= d.rng >> 7
		d.rng ^= d.rng << 17
		if idx := d.rng % uint64(len(d.samples)); int(idx) < d.sampleCap {
			d.samples[idx] = s
		}
	}
	d.sorted = false
}

// Clone returns an independent deep copy: the snapshot keeps answering
// queries (including the sample-sorting Percentile) while the original
// continues accumulating.
func (d *Delay) Clone() *Delay {
	if d == nil {
		return nil
	}
	cp := *d
	cp.samples = append([]int64(nil), d.samples...)
	return &cp
}

// String implements fmt.Stringer.
func (d *Delay) String() string {
	if d.count == 0 {
		return "delay{empty}"
	}
	return fmt.Sprintf("delay{n=%d min=%d mean=%.2f p99=%d max=%d}",
		d.count, d.Min(), d.Mean(), d.Percentile(99), d.Max())
}
