package edf

import "math"

// Saturating integer arithmetic. Demand analysis over adversarial task
// parameters (P or C near the int64 ceiling) must never wrap silently:
// a wrapped demand sum could make an infeasible set look feasible. All
// accumulation below clamps at math.MaxInt64 instead; a clamped value
// is a LOWER bound on the true quantity, so "h > t" conclusions drawn
// from it remain sound, and the busy-period iteration reports the
// overflow explicitly so the caller returns an Inconclusive verdict
// rather than an unsound "feasible".

// addSat returns a+b clamped to math.MaxInt64, for a, b >= 0.
func addSat(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// mulSat returns a*b clamped to math.MaxInt64, for a, b >= 0.
func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// Demand computes the processor demand function h(t) of the task set: the
// total capacity of all jobs with both release and absolute deadline inside
// [0, t] under the synchronous release pattern. This is the paper's workload
// function h(n, t) (Eq. 18.3):
//
//	h(t) = sum over tasks with D_i <= t of (1 + floor((t - D_i)/P_i)) * C_i
//
// Demand(tasks, t) is nondecreasing in t and Demand(tasks, 0) == 0. The sum
// saturates at math.MaxInt64 instead of wrapping, so a returned h is always
// a lower bound on the true demand.
func Demand(tasks []Task, t int64) int64 {
	var h int64
	for _, task := range tasks {
		if task.D > t {
			continue
		}
		jobs := addSat(1, (t-task.D)/task.P)
		h = addSat(h, mulSat(jobs, task.C))
	}
	return h
}

// BusyPeriodLimit caps the fixed-point iteration in BusyPeriod. The
// iteration converges whenever U <= 1; the limit only guards against
// pathological inputs (U > 1) where the workload never drains.
const BusyPeriodLimit = 1 << 20

// BusyPeriod returns the length of the first synchronous busy period: the
// least fixed point L of
//
//	L(0)   = sum C_i
//	L(k+1) = sum ceil(L(k)/P_i) * C_i
//
// It is the interval during which the link is continuously non-idle when
// every task releases a job at time 0. If the iteration does not converge
// within BusyPeriodLimit rounds (only possible when U > 1), or the
// workload sum overflows int64 (clamped, never wrapped), ok is false and
// the caller must treat the analysis as inconclusive.
//
// Per Stankovic et al. (the paper's reference [6]), any EDF deadline miss
// under the synchronous pattern occurs within this interval, so the demand
// criterion h(t) <= t only needs checking for t <= BusyPeriod (Eq. 18.4).
func BusyPeriod(tasks []Task) (length int64, ok bool) {
	if len(tasks) == 0 {
		return 0, true
	}
	l := TotalCapacity(tasks)
	for iter := 0; iter < BusyPeriodLimit; iter++ {
		var next int64
		for _, t := range tasks {
			next = addSat(next, mulSat(ceilDiv(l, t.P), t.C))
		}
		if next == math.MaxInt64 {
			// Saturated: the true fixed point (if any) is beyond what the
			// demand sweep can examine without wrapping.
			return 0, false
		}
		if next == l {
			return l, true
		}
		l = next
	}
	return 0, false
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0, without intermediate
// overflow (the naive (a+b-1)/b wraps when a+b exceeds int64).
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// deadlineHeap merges the per-task arithmetic progressions of absolute
// deadlines t = m*P_i + D_i (Eq. 18.5) in increasing order without
// materializing them. It is a hand-rolled binary min-heap rather than
// container/heap: the interface-based API boxes every popped cursor into
// an interface value, which costs one allocation per checkpoint — fatal
// for the admission sweep's 0 allocs/op budget.
type deadlineHeap []deadlineCursor

type deadlineCursor struct {
	next   int64 // next checkpoint value for this task
	period int64
	c      int64 // task capacity, added to the running demand per instance
}

// initHeap establishes the heap invariant over an arbitrary slice.
func (h deadlineHeap) initHeap() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// down restores the invariant after h[i] grew.
func (h deadlineHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].next < h[l].next {
			m = r
		}
		if h[i].next <= h[m].next {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Scratch holds reusable buffers for repeated feasibility testing. A
// verification worker owns one Scratch and passes it to TestScratch so
// batch sweeps over thousands of links run allocation-free; the zero
// value is ready to use. A Scratch must not be shared between goroutines.
type Scratch struct {
	heap deadlineHeap
}

// Checkpoints calls fn for every distinct t in {m*P_i + D_i : m >= 0} with
// t <= bound, in strictly increasing order. Iteration stops early when fn
// returns false. These are the only instants at which the demand function
// increases, so they are the only instants the demand criterion must be
// evaluated at.
func Checkpoints(tasks []Task, bound int64, fn func(t int64) bool) {
	demandCheckpoints(tasks, bound, nil, func(t, _ int64) bool { return fn(t) })
}

// demandCheckpoints enumerates the distinct checkpoints t <= bound in
// strictly increasing order and calls fn(t, h) with h == Demand(tasks, t),
// maintained incrementally: every deadline instance popped off the merged
// progressions adds its task's capacity to the running sum exactly once.
// This turns the full feasibility sweep from O(m*n) (m checkpoints, each
// recomputing the n-task demand sum) into O(m log n), which is the
// difference between milliseconds and seconds on the admission
// controller's verify-bound links (n ≈ m ≈ thousands).
//
// Iteration stops early when fn returns false. s may be nil; a non-nil
// Scratch makes repeated sweeps allocation-free.
func demandCheckpoints(tasks []Task, bound int64, s *Scratch, fn func(t, h int64) bool) {
	var h deadlineHeap
	if s != nil {
		h = s.heap[:0]
	} else {
		h = make(deadlineHeap, 0, len(tasks))
	}
	for _, t := range tasks {
		if t.D <= bound {
			h = append(h, deadlineCursor{next: t.D, period: t.P, c: t.C})
		}
	}
	if s != nil {
		s.heap = h // retain the (possibly grown) buffer for reuse
	}
	h.initHeap()
	var demand int64
	for len(h) > 0 {
		t := h[0].next
		if t > bound {
			return // min exceeds bound, so every cursor does
		}
		// Consume every coincident instance at t before evaluating: h(t)
		// includes all jobs whose deadline is exactly t.
		for len(h) > 0 && h[0].next == t {
			demand = addSat(demand, h[0].c)
			if nxt := addSat(t, h[0].period); nxt <= bound {
				h[0].next = nxt
				h.down(0)
			} else {
				n := len(h) - 1
				h[0] = h[n]
				h = h[:n]
				h.down(0)
			}
		}
		if !fn(t, demand) {
			return
		}
	}
}

// CheckpointCount returns the number of distinct checkpoints in [1, bound].
// It is used for diagnostics and complexity reporting.
func CheckpointCount(tasks []Task, bound int64) int {
	n := 0
	Checkpoints(tasks, bound, func(int64) bool { n++; return true })
	return n
}
