package edf

import "container/heap"

// Demand computes the processor demand function h(t) of the task set: the
// total capacity of all jobs with both release and absolute deadline inside
// [0, t] under the synchronous release pattern. This is the paper's workload
// function h(n, t) (Eq. 18.3):
//
//	h(t) = sum over tasks with D_i <= t of (1 + floor((t - D_i)/P_i)) * C_i
//
// Demand(tasks, t) is nondecreasing in t and Demand(tasks, 0) == 0.
func Demand(tasks []Task, t int64) int64 {
	var h int64
	for _, task := range tasks {
		if task.D > t {
			continue
		}
		h += (1 + (t-task.D)/task.P) * task.C
	}
	return h
}

// BusyPeriodLimit caps the fixed-point iteration in BusyPeriod. The
// iteration converges whenever U <= 1; the limit only guards against
// pathological inputs (U > 1) where the workload never drains.
const BusyPeriodLimit = 1 << 20

// BusyPeriod returns the length of the first synchronous busy period: the
// least fixed point L of
//
//	L(0)   = sum C_i
//	L(k+1) = sum ceil(L(k)/P_i) * C_i
//
// It is the interval during which the link is continuously non-idle when
// every task releases a job at time 0. If the iteration does not converge
// within BusyPeriodLimit rounds (only possible when U > 1), ok is false.
//
// Per Stankovic et al. (the paper's reference [6]), any EDF deadline miss
// under the synchronous pattern occurs within this interval, so the demand
// criterion h(t) <= t only needs checking for t <= BusyPeriod (Eq. 18.4).
func BusyPeriod(tasks []Task) (length int64, ok bool) {
	if len(tasks) == 0 {
		return 0, true
	}
	l := TotalCapacity(tasks)
	for iter := 0; iter < BusyPeriodLimit; iter++ {
		var next int64
		for _, t := range tasks {
			next += ceilDiv(l, t.P) * t.C
		}
		if next == l {
			return l, true
		}
		l = next
	}
	return 0, false
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// deadlineHeap iterates the absolute-deadline checkpoints t = m*P_i + D_i
// (Eq. 18.5) in increasing order, merging the per-task arithmetic
// progressions without materializing them.
type deadlineHeap []deadlineCursor

type deadlineCursor struct {
	next   int64 // next checkpoint value for this task
	period int64
}

func (h deadlineHeap) Len() int            { return len(h) }
func (h deadlineHeap) Less(i, j int) bool  { return h[i].next < h[j].next }
func (h deadlineHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x interface{}) { *h = append(*h, x.(deadlineCursor)) }
func (h *deadlineHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// Scratch holds reusable buffers for repeated feasibility testing. A
// verification worker owns one Scratch and passes it to TestScratch so
// batch sweeps over thousands of links run allocation-free; the zero
// value is ready to use. A Scratch must not be shared between goroutines.
type Scratch struct {
	heap deadlineHeap
}

// Checkpoints calls fn for every distinct t in {m*P_i + D_i : m >= 0} with
// t <= bound, in strictly increasing order. Iteration stops early when fn
// returns false. These are the only instants at which the demand function
// increases, so they are the only instants the demand criterion must be
// evaluated at.
func Checkpoints(tasks []Task, bound int64, fn func(t int64) bool) {
	checkpoints(tasks, bound, fn, nil)
}

// checkpoints is Checkpoints with an optional caller-owned heap buffer.
func checkpoints(tasks []Task, bound int64, fn func(t int64) bool, s *Scratch) {
	var h deadlineHeap
	if s != nil {
		h = s.heap[:0]
	} else {
		h = make(deadlineHeap, 0, len(tasks))
	}
	for _, t := range tasks {
		if t.D <= bound {
			h = append(h, deadlineCursor{next: t.D, period: t.P})
		}
	}
	if s != nil {
		s.heap = h // retain the (possibly grown) buffer for reuse
	}
	heap.Init(&h)
	last := int64(-1)
	for h.Len() > 0 {
		cur := h[0]
		t := cur.next
		if t > bound {
			heap.Pop(&h)
			continue
		}
		next := t + cur.period
		if next <= bound {
			h[0].next = next
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if t == last {
			continue // deduplicate coincident deadlines
		}
		last = t
		if !fn(t) {
			return
		}
	}
}

// CheckpointCount returns the number of distinct checkpoints in [1, bound].
// It is used for diagnostics and complexity reporting.
func CheckpointCount(tasks []Task, bound int64) int {
	n := 0
	Checkpoints(tasks, bound, func(int64) bool { n++; return true })
	return n
}
