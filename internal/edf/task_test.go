package edf

import (
	"errors"
	"strings"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		want error
	}{
		{"valid", Task{C: 3, P: 100, D: 40}, nil},
		{"valid implicit deadline", Task{C: 1, P: 10, D: 10}, nil},
		{"valid C equals D", Task{C: 5, P: 20, D: 5}, nil},
		{"zero C", Task{C: 0, P: 10, D: 10}, ErrNonPositiveC},
		{"negative C", Task{C: -1, P: 10, D: 10}, ErrNonPositiveC},
		{"zero P", Task{C: 1, P: 0, D: 10}, ErrNonPositiveP},
		{"negative P", Task{C: 1, P: -5, D: 10}, ErrNonPositiveP},
		{"zero D", Task{C: 1, P: 10, D: 0}, ErrNonPositiveD},
		{"negative D", Task{C: 1, P: 10, D: -3}, ErrNonPositiveD},
		{"C exceeds P", Task{C: 11, P: 10, D: 12}, ErrCExceedsP},
		{"C exceeds D", Task{C: 5, P: 10, D: 4}, ErrCExceedsD},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.task.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(_, %v)", err, tc.want)
			}
		})
	}
}

func TestValidateTasksReportsIndex(t *testing.T) {
	tasks := []Task{
		{C: 1, P: 10, D: 10},
		{C: 0, P: 10, D: 10},
	}
	err := ValidateTasks(tasks)
	if err == nil {
		t.Fatal("ValidateTasks() = nil, want error")
	}
	if !errors.Is(err, ErrNonPositiveC) {
		t.Fatalf("ValidateTasks() = %v, want ErrNonPositiveC", err)
	}
	if !strings.Contains(err.Error(), "task 1") {
		t.Fatalf("error %q does not name the offending index", err)
	}
}

func TestTaskString(t *testing.T) {
	got := Task{C: 3, P: 100, D: 40, Tag: "ch7"}.String()
	for _, want := range []string{"ch7", "C=3", "P=100", "D=40"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	plain := Task{C: 1, P: 2, D: 2}.String()
	if strings.Contains(plain, "[") {
		t.Errorf("untagged String() = %q, should not contain tag brackets", plain)
	}
}

func TestTotalCapacity(t *testing.T) {
	if got := TotalCapacity(nil); got != 0 {
		t.Errorf("TotalCapacity(nil) = %d, want 0", got)
	}
	tasks := []Task{{C: 3, P: 10, D: 10}, {C: 4, P: 20, D: 20}, {C: 5, P: 30, D: 15}}
	if got := TotalCapacity(tasks); got != 12 {
		t.Errorf("TotalCapacity = %d, want 12", got)
	}
}

func TestImplicitDeadlines(t *testing.T) {
	if !ImplicitDeadlines(nil) {
		t.Error("ImplicitDeadlines(nil) = false, want true")
	}
	if !ImplicitDeadlines([]Task{{C: 1, P: 10, D: 10}, {C: 2, P: 5, D: 5}}) {
		t.Error("ImplicitDeadlines(all D==P) = false, want true")
	}
	if ImplicitDeadlines([]Task{{C: 1, P: 10, D: 10}, {C: 2, P: 5, D: 4}}) {
		t.Error("ImplicitDeadlines(one D<P) = true, want false")
	}
}

func TestSortByDeadline(t *testing.T) {
	tasks := []Task{
		{C: 2, P: 50, D: 30, Tag: "b"},
		{C: 1, P: 40, D: 10, Tag: "a"},
		{C: 3, P: 20, D: 30, Tag: "c"},
		{C: 1, P: 20, D: 30, Tag: "d"},
	}
	got := SortByDeadline(tasks)
	wantOrder := []string{"a", "d", "c", "b"}
	for i, tag := range wantOrder {
		if got[i].Tag != tag {
			t.Fatalf("SortByDeadline order = %v, want tags %v", got, wantOrder)
		}
	}
	// Input must be untouched.
	if tasks[0].Tag != "b" {
		t.Error("SortByDeadline mutated its input")
	}
}
