package edf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteDemand recomputes h(t) by expanding jobs explicitly.
func bruteDemand(tasks []Task, t int64) int64 {
	var h int64
	for _, task := range tasks {
		for release := int64(0); release+task.D <= t; release += task.P {
			h += task.C
		}
	}
	return h
}

func TestDemandBasics(t *testing.T) {
	tasks := []Task{{C: 3, P: 100, D: 40}}
	cases := []struct{ t, want int64 }{
		{0, 0}, {39, 0}, {40, 3}, {139, 3}, {140, 6}, {240, 9},
	}
	for _, tc := range cases {
		if got := Demand(tasks, tc.t); got != tc.want {
			t.Errorf("Demand(t=%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestDemandEmpty(t *testing.T) {
	if got := Demand(nil, 1000); got != 0 {
		t.Errorf("Demand(nil) = %d, want 0", got)
	}
}

func TestDemandMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		tasks := randomTaskSet(rng, 5, 30)
		for _, tt := range []int64{0, 1, 7, 29, 30, 31, 57, 100, 301} {
			if got, want := Demand(tasks, tt), bruteDemand(tasks, tt); got != want {
				t.Fatalf("trial %d: Demand(%v, %d) = %d, brute = %d", trial, tasks, tt, got, want)
			}
		}
	}
}

func TestDemandMonotone(t *testing.T) {
	f := func(seed int64, probe uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := randomTaskSet(rng, 4, 20)
		t1 := int64(probe % 200)
		t2 := t1 + int64(probe%17)
		return Demand(tasks, t1) <= Demand(tasks, t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusyPeriodKnownValues(t *testing.T) {
	cases := []struct {
		name  string
		tasks []Task
		want  int64
	}{
		{"empty", nil, 0},
		{"single", []Task{{C: 3, P: 100, D: 40}}, 3},
		{"six masters worth", repeatTask(Task{C: 3, P: 100, D: 20}, 6), 18},
		{"seven overflows deadline", repeatTask(Task{C: 3, P: 100, D: 20}, 7), 21},
		// L0 = 3, then sum ceil(3/P_i)*C_i = 2 + 1 = 3: fixed point right away.
		{"fixed point at first iterate", []Task{{C: 2, P: 3, D: 3}, {C: 1, P: 4, D: 4}}, 3},
		// L0 = 4, L1 = ceil(4/3)*2 + ceil(4/8)*2 = 6, L2 = 4 + 2 = 6: two rounds.
		{"grows past first estimate", []Task{{C: 2, P: 3, D: 3}, {C: 2, P: 8, D: 8}}, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := BusyPeriod(tc.tasks)
			if !ok {
				t.Fatal("BusyPeriod did not converge")
			}
			if got != tc.want {
				t.Errorf("BusyPeriod = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestBusyPeriodFixedPointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		tasks := randomFeasibleUtilSet(rng, 5, 30)
		l, ok := BusyPeriod(tasks)
		if !ok {
			t.Fatalf("trial %d: busy period diverged for U<=1 set %v", trial, tasks)
		}
		if len(tasks) == 0 {
			continue
		}
		// l is a fixed point: sum ceil(l/P)*C == l.
		var next int64
		for _, task := range tasks {
			next += ceilDiv(l, task.P) * task.C
		}
		if next != l {
			t.Fatalf("trial %d: BusyPeriod=%d is not a fixed point (next=%d) for %v", trial, l, next, tasks)
		}
		// And it is at least the total capacity.
		if l < TotalCapacity(tasks) {
			t.Fatalf("trial %d: busy period %d < total capacity %d", trial, l, TotalCapacity(tasks))
		}
	}
}

func TestBusyPeriodDivergesWhenOverloaded(t *testing.T) {
	tasks := []Task{{C: 3, P: 4, D: 4}, {C: 2, P: 4, D: 4}} // U = 5/4
	if _, ok := BusyPeriod(tasks); ok {
		t.Error("BusyPeriod converged for U > 1")
	}
}

func TestCheckpointsEnumeration(t *testing.T) {
	tasks := []Task{
		{C: 1, P: 10, D: 4},
		{C: 1, P: 6, D: 6},
	}
	var got []int64
	Checkpoints(tasks, 30, func(t int64) bool {
		got = append(got, t)
		return true
	})
	want := []int64{4, 6, 12, 14, 18, 24, 30}
	if len(got) != len(want) {
		t.Fatalf("Checkpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Checkpoints = %v, want %v", got, want)
		}
	}
}

func TestCheckpointsDeduplicates(t *testing.T) {
	tasks := []Task{{C: 1, P: 5, D: 5}, {C: 1, P: 5, D: 5}, {C: 1, P: 10, D: 5}}
	var got []int64
	Checkpoints(tasks, 20, func(t int64) bool {
		got = append(got, t)
		return true
	})
	want := []int64{5, 10, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("Checkpoints = %v, want %v (duplicates must be merged)", got, want)
	}
}

func TestCheckpointsEarlyStop(t *testing.T) {
	tasks := []Task{{C: 1, P: 2, D: 2}}
	calls := 0
	Checkpoints(tasks, 100, func(t int64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop: fn called %d times, want 3", calls)
	}
}

func TestCheckpointsStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		tasks := randomTaskSet(rng, 6, 25)
		prev := int64(0)
		Checkpoints(tasks, 200, func(cp int64) bool {
			if cp <= prev {
				t.Fatalf("trial %d: checkpoint %d not strictly after %d", trial, cp, prev)
			}
			prev = cp
			return true
		})
	}
}

func TestCheckpointCount(t *testing.T) {
	tasks := []Task{{C: 1, P: 10, D: 10}}
	if got := CheckpointCount(tasks, 35); got != 3 {
		t.Errorf("CheckpointCount = %d, want 3 (t=10,20,30)", got)
	}
	if got := CheckpointCount(nil, 100); got != 0 {
		t.Errorf("CheckpointCount(nil) = %d, want 0", got)
	}
}

// TestDemandLinearBound pins the classic inequality linking the demand
// function to utilization: h(t) <= U*t + sum(C) for all t >= 0 (each task
// contributes at most ceil(t/P)*C <= (t/P)*C + C once t >= D).
func TestDemandLinearBound(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		tasks := randomTaskSet(rng, 6, 25)
		if len(tasks) == 0 {
			continue
		}
		u := UtilizationFloat(tasks)
		bound := func(tt int64) float64 { return u*float64(tt) + float64(TotalCapacity(tasks)) }
		for _, tt := range []int64{0, 1, 13, 50, 199, 1000} {
			if h := Demand(tasks, tt); float64(h) > bound(tt)+1e-6 {
				t.Fatalf("trial %d: h(%d)=%d exceeds U*t+sumC=%.2f for %v",
					trial, tt, h, bound(tt), tasks)
			}
		}
	}
}

// TestDemandSubadditiveInTaskSets: demand of a union is the sum of
// demands — h is linear over disjoint task multisets.
func TestDemandAdditiveOverUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		a := randomTaskSet(rng, 4, 20)
		b := randomTaskSet(rng, 4, 20)
		union := append(append([]Task{}, a...), b...)
		for _, tt := range []int64{0, 5, 17, 60, 240} {
			if Demand(union, tt) != Demand(a, tt)+Demand(b, tt) {
				t.Fatalf("trial %d: demand not additive at t=%d", trial, tt)
			}
		}
	}
}

// randomTaskSet generates up to n random valid tasks with P in [1, maxP].
func randomTaskSet(rng *rand.Rand, n, maxP int) []Task {
	k := rng.Intn(n + 1)
	tasks := make([]Task, 0, k)
	for i := 0; i < k; i++ {
		p := int64(rng.Intn(maxP) + 1)
		c := int64(rng.Intn(int(p)) + 1)
		d := c + int64(rng.Intn(int(p)))
		tasks = append(tasks, Task{C: c, P: p, D: d})
	}
	return tasks
}

// randomFeasibleUtilSet generates tasks and drops entries until U <= 1.
func randomFeasibleUtilSet(rng *rand.Rand, n, maxP int) []Task {
	tasks := randomTaskSet(rng, n, maxP)
	for len(tasks) > 0 && UtilizationExceedsOne(tasks) {
		tasks = tasks[:len(tasks)-1]
	}
	return tasks
}

func repeatTask(t Task, n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = t
	}
	return out
}
