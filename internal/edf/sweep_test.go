package edf

import (
	"math"
	"math/rand"
	"testing"
)

// --- Incremental demand sweep: the running h maintained by
// demandCheckpoints must equal a fresh Demand() at every checkpoint. ---

func TestIncrementalDemandMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		tasks := randomTaskSet(rng, 8, 40)
		bound := int64(rng.Intn(400))
		var s Scratch
		demandCheckpoints(tasks, bound, &s, func(cp, h int64) bool {
			if want := Demand(tasks, cp); h != want {
				t.Fatalf("trial %d: incremental h(%d)=%d, Demand=%d for %v (bound %d)",
					trial, cp, h, want, tasks, bound)
			}
			return true
		})
	}
}

func TestIncrementalDemandEarlyStopLeavesScratchReusable(t *testing.T) {
	tasks := []Task{{C: 1, P: 2, D: 2}, {C: 1, P: 3, D: 3}}
	var s Scratch
	demandCheckpoints(tasks, 100, &s, func(cp, h int64) bool { return cp < 4 })
	// A second sweep with the same scratch must see the full sequence again.
	var got []int64
	demandCheckpoints(tasks, 12, &s, func(cp, h int64) bool {
		got = append(got, cp)
		if want := Demand(tasks, cp); h != want {
			t.Fatalf("after early stop: h(%d)=%d, want %d", cp, h, want)
		}
		return true
	})
	want := []int64{2, 3, 4, 6, 8, 9, 10, 12}
	if len(got) != len(want) {
		t.Fatalf("checkpoints after reuse = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints after reuse = %v, want %v", got, want)
		}
	}
}

// --- MinSlack diagnostics. ---

func TestResultMinSlack(t *testing.T) {
	// Single task C=3 D=4 P=10: checkpoints 4, 14, 24 within busy period 3?
	// Busy period is 3 (< D), so no checkpoints: MinSlack stays MaxInt64.
	r := TestDefault([]Task{{C: 3, P: 10, D: 4}})
	if !r.OK() || r.MinSlack != math.MaxInt64 {
		t.Fatalf("no-checkpoint set: %+v", r)
	}

	// Two tasks tight at t=4: h(4) = 2+2 = 4, slack 0.
	r = TestDefault([]Task{{C: 2, P: 10, D: 4}, {C: 2, P: 10, D: 4}})
	if !r.OK() || r.MinSlack != 0 {
		t.Fatalf("tight set: verdict=%v MinSlack=%d, want feasible slack 0", r.Verdict, r.MinSlack)
	}

	// Implicit deadlines short-circuit: MinSlack untouched.
	r = TestDefault([]Task{{C: 1, P: 4, D: 4}})
	if !r.ShortCircuit || r.MinSlack != math.MaxInt64 {
		t.Fatalf("shortcut set: %+v", r)
	}
}

func TestMinSlackMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		tasks := randomFeasibleUtilSet(rng, 6, 25)
		r := TestDefault(tasks)
		if !r.OK() || r.ShortCircuit || r.Checked == 0 {
			continue
		}
		min := int64(math.MaxInt64)
		Checkpoints(tasks, r.BusyPeriod, func(cp int64) bool {
			if s := cp - Demand(tasks, cp); s < min {
				min = s
			}
			return true
		})
		if r.MinSlack != min {
			t.Fatalf("trial %d: MinSlack=%d, brute=%d for %v", trial, r.MinSlack, min, tasks)
		}
	}
}

// --- Overflow guards: saturating arithmetic at the int64 boundary. ---

const bigP = int64(math.MaxInt64)

func TestSaturatingHelpers(t *testing.T) {
	if got := addSat(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Fatalf("addSat wrapped: %d", got)
	}
	if got := addSat(math.MaxInt64-5, 5); got != math.MaxInt64 {
		t.Fatalf("addSat boundary: %d", got)
	}
	if got := addSat(3, 4); got != 7 {
		t.Fatalf("addSat(3,4)=%d", got)
	}
	if got := mulSat(math.MaxInt64/2+1, 2); got != math.MaxInt64 {
		t.Fatalf("mulSat wrapped: %d", got)
	}
	if got := mulSat(0, math.MaxInt64); got != 0 {
		t.Fatalf("mulSat zero: %d", got)
	}
	if got := mulSat(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Fatalf("mulSat identity: %d", got)
	}
}

func TestCeilDivNoOverflow(t *testing.T) {
	// The naive (a+b-1)/b wraps negative here; the guarded version must not.
	if got := ceilDiv(math.MaxInt64, 2); got != math.MaxInt64/2+1 {
		t.Fatalf("ceilDiv(MaxInt64, 2) = %d", got)
	}
	if got := ceilDiv(math.MaxInt64, math.MaxInt64); got != 1 {
		t.Fatalf("ceilDiv(max, max) = %d", got)
	}
	if got := ceilDiv(10, 3); got != 4 {
		t.Fatalf("ceilDiv(10,3) = %d", got)
	}
	if got := ceilDiv(9, 3); got != 3 {
		t.Fatalf("ceilDiv(9,3) = %d", got)
	}
}

func TestDemandSaturatesInsteadOfWrapping(t *testing.T) {
	// Two tasks each demanding ~MaxInt64 of capacity at t=MaxInt64: the
	// naive sum wraps negative (which would pass h <= t); the saturating
	// sum clamps at MaxInt64.
	tasks := []Task{
		{C: math.MaxInt64 - 1, P: bigP, D: math.MaxInt64 - 1},
		{C: math.MaxInt64 - 1, P: bigP, D: math.MaxInt64 - 1},
	}
	if got := Demand(tasks, math.MaxInt64); got != math.MaxInt64 {
		t.Fatalf("Demand wrapped: %d", got)
	}
	if got := Demand(tasks, 10); got != 0 {
		t.Fatalf("Demand below deadline: %d", got)
	}
}

func TestTotalCapacitySaturates(t *testing.T) {
	tasks := []Task{{C: math.MaxInt64 - 1, P: bigP, D: bigP}, {C: 100, P: bigP, D: bigP}}
	if got := TotalCapacity(tasks); got != math.MaxInt64 {
		t.Fatalf("TotalCapacity wrapped: %d", got)
	}
}

func TestBusyPeriodOverflowReportsNotOK(t *testing.T) {
	// Total capacity alone saturates, so the fixed point is unrepresentable.
	tasks := []Task{
		{C: math.MaxInt64 - 1, P: bigP, D: bigP},
		{C: math.MaxInt64 - 1, P: bigP, D: bigP},
	}
	if l, ok := BusyPeriod(tasks); ok {
		t.Fatalf("BusyPeriod converged on saturated workload: %d", l)
	}
}

func TestFeasibilityAtBoundaryIsExplicit(t *testing.T) {
	// Large-parameter set whose busy-period iteration saturates: the test
	// must return an explicit non-feasible verdict, never a wrapped
	// "feasible". (D < P forces the demand path past the L&L shortcut;
	// two huge-C tasks saturate the workload sum.)
	tasks := []Task{
		{C: math.MaxInt64 - 2, P: math.MaxInt64 - 1, D: math.MaxInt64 - 2},
		{C: math.MaxInt64 - 2, P: math.MaxInt64 - 1, D: math.MaxInt64 - 2},
	}
	r := TestDefault(tasks)
	if r.OK() {
		t.Fatalf("overflowing set reported feasible: %+v", r)
	}
	// Either the exact utilization constraint catches it (U > 1 here) or
	// the busy period reports divergence; both are sound rejections.
	if r.Verdict != InfeasibleUtilization && r.Verdict != Inconclusive {
		t.Fatalf("unexpected verdict %v", r.Verdict)
	}

	// A single huge task (U < 1, D < P): checkpoints at D only; must stay
	// conclusive and feasible with exact arithmetic.
	single := []Task{{C: 1 << 40, P: math.MaxInt64 - 1, D: math.MaxInt64 - 2}}
	r = TestDefault(single)
	if !r.OK() {
		t.Fatalf("single huge task rejected: %+v", r)
	}
}
