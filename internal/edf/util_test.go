package edf

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestUtilizationExact(t *testing.T) {
	cases := []struct {
		name  string
		tasks []Task
		want  *big.Rat
	}{
		{"empty", nil, big.NewRat(0, 1)},
		{"single", []Task{{C: 3, P: 100, D: 40}}, big.NewRat(3, 100)},
		{"sums", []Task{{C: 1, P: 3, D: 3}, {C: 1, P: 6, D: 6}}, big.NewRat(1, 2)},
		{"exactly one", []Task{{C: 1, P: 2, D: 2}, {C: 1, P: 2, D: 2}}, big.NewRat(1, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Utilization(tc.tasks); got.Cmp(tc.want) != 0 {
				t.Errorf("Utilization = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestUtilizationExceedsOneExactBoundary(t *testing.T) {
	// Three tasks of 1/3 each sum to exactly one: not exceeding.
	atOne := []Task{{C: 1, P: 3, D: 3}, {C: 1, P: 3, D: 3}, {C: 1, P: 3, D: 3}}
	if UtilizationExceedsOne(atOne) {
		t.Error("U == 1 reported as exceeding one")
	}
	// Floating point would struggle with 1/3*3 + tiny; exact must not.
	over := append(append([]Task{}, atOne...), Task{C: 1, P: math.MaxInt64 - 1, D: math.MaxInt64 - 1})
	if !UtilizationExceedsOne(over) {
		t.Error("U = 1 + epsilon reported as not exceeding one")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {18, 12, 6},
		{7, 13, 1}, {-12, 18, 6}, {12, -18, 6}, {100, 100, 100},
	}
	for _, tc := range cases {
		if got := GCD(tc.a, tc.b); got != tc.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, 5, 0, true}, {4, 6, 12, true}, {100, 100, 100, true},
		{7, 13, 91, true}, {math.MaxInt64, 2, 0, false},
	}
	for _, tc := range cases {
		got, ok := LCM(tc.a, tc.b)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("LCM(%d, %d) = (%d, %v), want (%d, %v)", tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

func TestHyperperiod(t *testing.T) {
	h, ok := Hyperperiod(nil)
	if !ok || h != 1 {
		t.Errorf("Hyperperiod(nil) = (%d, %v), want (1, true)", h, ok)
	}
	tasks := []Task{{C: 1, P: 4, D: 4}, {C: 1, P: 6, D: 6}, {C: 1, P: 10, D: 10}}
	h, ok = Hyperperiod(tasks)
	if !ok || h != 60 {
		t.Errorf("Hyperperiod = (%d, %v), want (60, true)", h, ok)
	}
	huge := []Task{{C: 1, P: math.MaxInt64 - 1, D: 1}, {C: 1, P: math.MaxInt64 - 2, D: 1}}
	if _, ok := Hyperperiod(huge); ok {
		t.Error("Hyperperiod overflow not detected")
	}
}

func TestGCDLCMProperties(t *testing.T) {
	// For positive a, b within a safe range: gcd*lcm == a*b.
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		l, ok := LCM(x, y)
		if !ok {
			return false
		}
		return GCD(x, y)*l == x*y && l%x == 0 && l%y == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilizationMatchesFloat(t *testing.T) {
	f := func(specs []struct{ C, P uint8 }) bool {
		var tasks []Task
		for _, s := range specs {
			c, p := int64(s.C%16)+1, int64(s.P%64)+16
			if c > p {
				c = p
			}
			tasks = append(tasks, Task{C: c, P: p, D: p})
		}
		exact, _ := Utilization(tasks).Float64()
		approx := UtilizationFloat(tasks)
		return math.Abs(exact-approx) < 1e-9*(1+math.Abs(exact))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
