// Package edf implements Earliest-Deadline-First schedulability theory for
// sets of periodic tasks, as used by the switch admission control in the
// switched-Ethernet real-time network of Hoang & Jonsson (IPPS 2004).
//
// Every physical link direction in the network is modelled as a
// pseudo-processor; the uplink or downlink part of an RT channel is a
// periodic task on that processor. All quantities are integer timeslots,
// where one slot is the transmission time of one maximal-sized Ethernet
// frame. The package provides:
//
//   - exact utilization computation (Liu & Layland first constraint),
//   - the processor demand function h(t) (the paper's workload function
//     h(n,t), Eq. 18.3),
//   - the synchronous busy period used to bound the demand check (Eq. 18.4),
//   - checkpoint enumeration t = m*P_i + d_i (Eq. 18.5), and
//   - the combined feasibility test.
package edf

import (
	"errors"
	"fmt"
	"sort"
)

// Task is one periodic task on a link pseudo-processor. For an RT channel
// {P_i, C_i, d_i} the uplink task is {C: C_i, P: P_i, D: d_iu} and the
// downlink task is {C: C_i, P: P_i, D: d_id}, per Eqs. 18.6-18.7.
type Task struct {
	C   int64  // capacity (worst-case transmission demand) per period, in slots; > 0
	P   int64  // period, in slots; >= C
	D   int64  // relative deadline, in slots; >= C
	Tag string // optional label used in diagnostics (e.g. channel ID)
}

// Validation errors returned by Task.Validate and ValidateTasks.
var (
	ErrNonPositiveC = errors.New("edf: task capacity C must be positive")
	ErrNonPositiveP = errors.New("edf: task period P must be positive")
	ErrNonPositiveD = errors.New("edf: task deadline D must be positive")
	ErrCExceedsP    = errors.New("edf: task capacity C exceeds period P")
	ErrCExceedsD    = errors.New("edf: task capacity C exceeds deadline D")
)

// Validate reports whether the task parameters are internally consistent.
// A task whose capacity exceeds its deadline can never meet that deadline
// (the capacity is the WCET of the supposed task, §18.4), and a capacity
// exceeding the period alone makes the task infeasible on any link.
func (t Task) Validate() error {
	switch {
	case t.C <= 0:
		return fmt.Errorf("%w (C=%d, tag=%q)", ErrNonPositiveC, t.C, t.Tag)
	case t.P <= 0:
		return fmt.Errorf("%w (P=%d, tag=%q)", ErrNonPositiveP, t.P, t.Tag)
	case t.D <= 0:
		return fmt.Errorf("%w (D=%d, tag=%q)", ErrNonPositiveD, t.D, t.Tag)
	case t.C > t.P:
		return fmt.Errorf("%w (C=%d > P=%d, tag=%q)", ErrCExceedsP, t.C, t.P, t.Tag)
	case t.C > t.D:
		return fmt.Errorf("%w (C=%d > D=%d, tag=%q)", ErrCExceedsD, t.C, t.D, t.Tag)
	}
	return nil
}

// String implements fmt.Stringer.
func (t Task) String() string {
	if t.Tag != "" {
		return fmt.Sprintf("task[%s]{C=%d P=%d D=%d}", t.Tag, t.C, t.P, t.D)
	}
	return fmt.Sprintf("task{C=%d P=%d D=%d}", t.C, t.P, t.D)
}

// ValidateTasks validates every task in the set, returning the first error.
func ValidateTasks(tasks []Task) error {
	for i, t := range tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	return nil
}

// TotalCapacity returns the sum of all task capacities, i.e. the length of
// the initial synchronous workload burst L(0) used to seed the busy-period
// iteration. The sum saturates at math.MaxInt64 rather than wrapping.
func TotalCapacity(tasks []Task) int64 {
	var sum int64
	for _, t := range tasks {
		sum = addSat(sum, t.C)
	}
	return sum
}

// ImplicitDeadlines reports whether every task has D == P. In that case the
// Liu & Layland utilization bound (first constraint) is both necessary and
// sufficient for EDF feasibility and the demand check can be skipped, as
// the paper notes in §18.3.2.
func ImplicitDeadlines(tasks []Task) bool {
	for _, t := range tasks {
		if t.D != t.P {
			return false
		}
	}
	return true
}

// SortByDeadline returns a copy of tasks ordered by increasing relative
// deadline, breaking ties by period then capacity. Diagnostic output uses
// this ordering so that reports are stable across runs.
func SortByDeadline(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].D != out[j].D {
			return out[i].D < out[j].D
		}
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].C < out[j].C
	})
	return out
}
