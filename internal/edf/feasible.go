package edf

import (
	"errors"
	"fmt"
	"math"
)

// Verdict classifies the outcome of a feasibility test.
type Verdict int

const (
	// Feasible: the task set is EDF-schedulable on one link direction.
	Feasible Verdict = iota
	// InfeasibleUtilization: first constraint violated (U > 1).
	InfeasibleUtilization
	// InfeasibleDemand: second constraint violated (h(t) > t for some t).
	InfeasibleDemand
	// InvalidTask: a task failed parameter validation.
	InvalidTask
	// Inconclusive: analysis exceeded configured limits; callers must treat
	// this as a rejection for admission-control purposes.
	Inconclusive
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Feasible:
		return "feasible"
	case InfeasibleUtilization:
		return "infeasible(utilization)"
	case InfeasibleDemand:
		return "infeasible(demand)"
	case InvalidTask:
		return "invalid-task"
	case Inconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result carries the verdict of a feasibility test plus diagnostics.
type Result struct {
	Verdict      Verdict
	Err          error   // non-nil for InvalidTask and Inconclusive
	Utilization  float64 // total utilization of the set (approximate, reporting only)
	BusyPeriod   int64   // synchronous busy period, 0 when not computed
	ViolationAt  int64   // first t with h(t) > t, when Verdict == InfeasibleDemand
	DemandAt     int64   // h(ViolationAt)
	MinSlack     int64   // min over evaluated checkpoints of t - h(t); math.MaxInt64 when none was evaluated
	Checked      int     // number of checkpoints evaluated
	ShortCircuit bool    // true when the Liu & Layland D==P shortcut applied
}

// OK reports whether the task set was proven feasible.
func (r Result) OK() bool { return r.Verdict == Feasible }

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r.Verdict {
	case InfeasibleDemand:
		return fmt.Sprintf("%v at t=%d (h=%d), U=%.4f", r.Verdict, r.ViolationAt, r.DemandAt, r.Utilization)
	case InfeasibleUtilization:
		return fmt.Sprintf("%v U=%.4f", r.Verdict, r.Utilization)
	default:
		return fmt.Sprintf("%v U=%.4f busy=%d checked=%d", r.Verdict, r.Utilization, r.BusyPeriod, r.Checked)
	}
}

// Options configures the feasibility test.
type Options struct {
	// MaxCheckpoints bounds the number of demand evaluations; 0 means
	// DefaultMaxCheckpoints. If the bound is hit the test returns
	// Inconclusive rather than an unsound "feasible".
	MaxCheckpoints int
	// SkipValidation omits per-task parameter validation (callers that have
	// already validated can save the pass).
	SkipValidation bool
	// UtilizationExceeds, when non-nil, supplies the exact answer to the
	// first constraint (U > 1) so Test can skip summing the rational
	// utilization of the whole set. Callers that maintain a per-link
	// utilization sum incrementally (the admission controller's hot path)
	// use this; the value must equal UtilizationExceedsOne(tasks) exactly —
	// rational arithmetic is exact, so an incrementally maintained sum
	// matches a fresh one bit for bit. Result.Utilization (the float
	// reporting value) is computed from the tasks either way.
	UtilizationExceeds *bool
}

// DefaultMaxCheckpoints is the default cap on demand evaluations per test.
// The Fig. 18.5 workload needs well under a thousand.
const DefaultMaxCheckpoints = 1 << 22

// ErrTooManyCheckpoints is wrapped in Result.Err when a test gives up.
var ErrTooManyCheckpoints = errors.New("edf: checkpoint limit exceeded")

// ErrBusyPeriodDiverged is wrapped in Result.Err when the busy-period
// iteration fails to converge (only possible for U > 1 inputs, which the
// utilization constraint catches first under exact arithmetic).
var ErrBusyPeriodDiverged = errors.New("edf: busy period iteration diverged")

// Test runs the two-step feasibility test of §18.3.2 on one link direction:
//
//  1. First constraint: U <= 1 (exact rational arithmetic).
//  2. Second constraint: h(t) <= t for every checkpoint t = m*P_i + D_i in
//     [1, busy period].
//
// When every task has D == P the first constraint alone is necessary and
// sufficient (Liu & Layland) and step 2 is skipped.
func Test(tasks []Task, opts Options) Result {
	return TestScratch(tasks, opts, nil)
}

// TestScratch is Test with a caller-owned Scratch for allocation-free
// repeated testing (one Scratch per verification worker); nil behaves
// like Test. Results are identical either way.
func TestScratch(tasks []Task, opts Options, scratch *Scratch) Result {
	res := Result{Verdict: Feasible, MinSlack: math.MaxInt64}
	if !opts.SkipValidation {
		if err := ValidateTasks(tasks); err != nil {
			return Result{Verdict: InvalidTask, Err: err, MinSlack: math.MaxInt64}
		}
	}
	if len(tasks) == 0 {
		return res
	}
	res.Utilization = UtilizationFloat(tasks)

	// First constraint (Eq. 18.2): utilization at most 100%.
	exceeds := false
	if opts.UtilizationExceeds != nil {
		exceeds = *opts.UtilizationExceeds
	} else {
		exceeds = UtilizationExceedsOne(tasks)
	}
	if exceeds {
		res.Verdict = InfeasibleUtilization
		return res
	}

	// Liu & Layland shortcut: with implicit deadlines the utilization test
	// is exact, as the paper notes.
	if ImplicitDeadlines(tasks) {
		res.ShortCircuit = true
		return res
	}

	// Second constraint (Eq. 18.3-18.5): demand criterion over the first
	// synchronous busy period, evaluated only at absolute deadlines.
	bp, ok := BusyPeriod(tasks)
	if !ok {
		return Result{Verdict: Inconclusive, Err: ErrBusyPeriodDiverged, Utilization: res.Utilization, MinSlack: math.MaxInt64}
	}
	res.BusyPeriod = bp

	maxChecks := opts.MaxCheckpoints
	if maxChecks <= 0 {
		maxChecks = DefaultMaxCheckpoints
	}
	exceeded := false
	// The sweep maintains h(t) incrementally across checkpoints (each
	// deadline instance contributes its C once), so the whole test is
	// O(m log n) instead of O(m*n) calls into Demand.
	demandCheckpoints(tasks, bp, scratch, func(t, h int64) bool {
		if res.Checked >= maxChecks {
			exceeded = true
			return false
		}
		res.Checked++
		if h > t {
			res.Verdict = InfeasibleDemand
			res.ViolationAt = t
			res.DemandAt = h
			return false
		}
		if slack := t - h; slack < res.MinSlack {
			res.MinSlack = slack
		}
		return true
	})
	if exceeded {
		return Result{
			Verdict:     Inconclusive,
			Err:         fmt.Errorf("%w (limit %d, busy period %d)", ErrTooManyCheckpoints, maxChecks, bp),
			Utilization: res.Utilization,
			BusyPeriod:  bp,
			MinSlack:    math.MaxInt64,
			Checked:     res.Checked,
		}
	}
	return res
}

// TestDefault runs Test with default options.
func TestDefault(tasks []Task) Result {
	return Test(tasks, Options{})
}

// FeasibleSet is a convenience wrapper returning only the boolean verdict.
func FeasibleSet(tasks []Task) bool {
	return TestDefault(tasks).OK()
}
