package edf

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// simulateEDF runs a literal slot-by-slot preemptive EDF schedule of the
// synchronous release pattern over [0, horizon) and reports whether every
// job meets its absolute deadline. It is the ground truth the analytical
// test is checked against.
func simulateEDF(tasks []Task, horizon int64) bool {
	type job struct {
		deadline  int64
		remaining int64
	}
	var pending []job
	for now := int64(0); now < horizon; now++ {
		for _, t := range tasks {
			if now%t.P == 0 {
				pending = append(pending, job{deadline: now + t.D, remaining: t.C})
			}
		}
		// Pick the earliest-deadline pending job.
		best := -1
		for i := range pending {
			if pending[i].remaining == 0 {
				continue
			}
			if best == -1 || pending[i].deadline < pending[best].deadline {
				best = i
			}
		}
		if best >= 0 {
			pending[best].remaining--
		}
		// Any unfinished job whose deadline passed is a miss.
		for i := range pending {
			if pending[i].remaining > 0 && pending[i].deadline <= now+1 {
				return false
			}
		}
		// Compact finished jobs occasionally to bound memory.
		if len(pending) > 4*len(tasks)+8 {
			kept := pending[:0]
			for _, j := range pending {
				if j.remaining > 0 {
					kept = append(kept, j)
				}
			}
			pending = kept
		}
	}
	return true
}

// simulationHorizon picks a horizon long enough that the synchronous
// pattern either misses within it or is feasible: hyperperiod + max D.
func simulationHorizon(tasks []Task) int64 {
	h, ok := Hyperperiod(tasks)
	if !ok {
		return 0
	}
	var maxD int64
	for _, t := range tasks {
		if t.D > maxD {
			maxD = t.D
		}
	}
	return h + maxD
}

func TestFeasibleEmptySet(t *testing.T) {
	res := TestDefault(nil)
	if !res.OK() {
		t.Fatalf("empty set: %v, want feasible", res)
	}
}

func TestFeasibleKnownCases(t *testing.T) {
	cases := []struct {
		name  string
		tasks []Task
		want  Verdict
	}{
		{
			"six SDPS master channels fit",
			repeatTask(Task{C: 3, P: 100, D: 20}, 6),
			Feasible,
		},
		{
			"seventh SDPS master channel violates demand",
			repeatTask(Task{C: 3, P: 100, D: 20}, 7),
			InfeasibleDemand,
		},
		{
			"eleven ADPS master channels fit",
			repeatTask(Task{C: 3, P: 100, D: 33}, 11),
			Feasible,
		},
		{
			"twelfth ADPS master channel violates demand",
			repeatTask(Task{C: 3, P: 100, D: 33}, 12),
			InfeasibleDemand,
		},
		{
			"utilization overload",
			repeatTask(Task{C: 3, P: 100, D: 100}, 34),
			InfeasibleUtilization,
		},
		{
			"exactly full utilization implicit deadlines",
			repeatTask(Task{C: 4, P: 100, D: 100}, 25),
			Feasible,
		},
		{
			"invalid task",
			[]Task{{C: 0, P: 10, D: 10}},
			InvalidTask,
		},
		{
			"tight constrained deadlines fit exactly",
			// h(5) = 5, h(10) = 9 <= 10, busy period 9.
			[]Task{{C: 5, P: 10, D: 5}, {C: 4, P: 10, D: 10}},
			Feasible,
		},
		{
			"tight constrained deadlines overflow",
			// h(7) = 5 + 3 = 8 > 7.
			[]Task{{C: 5, P: 10, D: 5}, {C: 3, P: 10, D: 7}},
			InfeasibleDemand,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := TestDefault(tc.tasks)
			if res.Verdict != tc.want {
				t.Fatalf("Test() = %v, want %v", res, tc.want)
			}
		})
	}
}

func TestFeasibleDiagnostics(t *testing.T) {
	res := TestDefault(repeatTask(Task{C: 3, P: 100, D: 20}, 7))
	if res.Verdict != InfeasibleDemand {
		t.Fatalf("verdict = %v, want InfeasibleDemand", res.Verdict)
	}
	if res.ViolationAt != 20 || res.DemandAt != 21 {
		t.Errorf("violation at t=%d h=%d, want t=20 h=21", res.ViolationAt, res.DemandAt)
	}
	if !strings.Contains(res.String(), "t=20") {
		t.Errorf("Result.String() = %q, should mention the violating instant", res.String())
	}
}

func TestFeasibleShortCircuitImplicitDeadlines(t *testing.T) {
	res := TestDefault(repeatTask(Task{C: 1, P: 4, D: 4}, 4))
	if !res.OK() || !res.ShortCircuit {
		t.Fatalf("implicit-deadline set: %v, want feasible via Liu&Layland shortcut", res)
	}
	if res.Checked != 0 {
		t.Errorf("shortcut evaluated %d checkpoints, want 0", res.Checked)
	}
}

func TestFeasibleBusyPeriodShorterThanFirstDeadline(t *testing.T) {
	// Six C=3 tasks have busy period 18 < D=20: no checkpoints inside the
	// busy period at all, so the demand loop must accept.
	res := TestDefault(repeatTask(Task{C: 3, P: 100, D: 20}, 6))
	if !res.OK() {
		t.Fatalf("got %v, want feasible", res)
	}
	if res.BusyPeriod != 18 {
		t.Errorf("busy period = %d, want 18", res.BusyPeriod)
	}
	if res.Checked != 0 {
		t.Errorf("checked %d checkpoints, want 0 (none <= busy period)", res.Checked)
	}
}

func TestFeasibleCheckpointLimit(t *testing.T) {
	// U = 3/4, busy period 3, checkpoints {2, 3}: the second one trips the cap.
	tasks := []Task{{C: 2, P: 4, D: 2}, {C: 1, P: 4, D: 3}}
	res := Test(tasks, Options{MaxCheckpoints: 1})
	if res.Verdict != Inconclusive {
		t.Fatalf("verdict = %v, want Inconclusive with MaxCheckpoints=1", res.Verdict)
	}
	if !errors.Is(res.Err, ErrTooManyCheckpoints) {
		t.Errorf("err = %v, want ErrTooManyCheckpoints", res.Err)
	}
	if res.OK() {
		t.Error("Inconclusive result must not report OK")
	}
}

func TestFeasibleSkipValidation(t *testing.T) {
	// With SkipValidation the caller vouches for the tasks; a valid set must
	// still produce the same verdict.
	tasks := repeatTask(Task{C: 3, P: 100, D: 40}, 5)
	a := Test(tasks, Options{})
	b := Test(tasks, Options{SkipValidation: true})
	if a.Verdict != b.Verdict {
		t.Errorf("SkipValidation changed verdict: %v vs %v", a.Verdict, b.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Feasible:              "feasible",
		InfeasibleUtilization: "infeasible(utilization)",
		InfeasibleDemand:      "infeasible(demand)",
		InvalidTask:           "invalid-task",
		Inconclusive:          "inconclusive",
		Verdict(42):           "verdict(42)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

// TestFeasibleAgreesWithSimulation is the central soundness/completeness
// check: on random small task sets the analytical verdict must match a
// literal EDF simulation over hyperperiod + max deadline.
func TestFeasibleAgreesWithSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	agreeFeasible, agreeInfeasible := 0, 0
	for trial := 0; trial < 400; trial++ {
		tasks := randomTaskSet(rng, 4, 12)
		if len(tasks) == 0 {
			continue
		}
		res := TestDefault(tasks)
		if res.Verdict == Inconclusive || res.Verdict == InvalidTask {
			t.Fatalf("trial %d: unexpected verdict %v for %v", trial, res, tasks)
		}
		if res.Verdict == InfeasibleUtilization {
			// A U > 1 set misses eventually, but with D > P the first miss
			// can fall beyond any fixed finite horizon; theory is the
			// authority here, so skip the simulation cross-check.
			continue
		}
		horizon := simulationHorizon(tasks)
		if horizon == 0 || horizon > 1<<16 {
			continue
		}
		simOK := simulateEDF(tasks, horizon)
		if res.OK() != simOK {
			t.Fatalf("trial %d: analysis=%v simulation=%v for %v", trial, res, simOK, tasks)
		}
		if simOK {
			agreeFeasible++
		} else {
			agreeInfeasible++
		}
	}
	if agreeFeasible == 0 || agreeInfeasible == 0 {
		t.Fatalf("degenerate trial mix: feasible=%d infeasible=%d; want both exercised", agreeFeasible, agreeInfeasible)
	}
}

// TestDemandCheckpointSufficiency verifies that checking h(t) <= t only at
// checkpoints is equivalent to checking every integer t in [1, busy period].
func TestDemandCheckpointSufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		tasks := randomFeasibleUtilSet(rng, 5, 15)
		if len(tasks) == 0 {
			continue
		}
		bp, ok := BusyPeriod(tasks)
		if !ok || bp > 1<<12 {
			continue
		}
		bruteOK := true
		var bruteT int64
		for tt := int64(1); tt <= bp; tt++ {
			if Demand(tasks, tt) > tt {
				bruteOK = false
				bruteT = tt
				break
			}
		}
		res := TestDefault(tasks)
		if res.Verdict == InfeasibleUtilization {
			continue
		}
		if res.OK() != bruteOK {
			t.Fatalf("trial %d: checkpoint test=%v brute(all t)=%v (first brute violation t=%d) for %v",
				trial, res, bruteOK, bruteT, tasks)
		}
	}
}

func TestFeasibleSetWrapper(t *testing.T) {
	if !FeasibleSet(repeatTask(Task{C: 3, P: 100, D: 20}, 6)) {
		t.Error("FeasibleSet(six) = false, want true")
	}
	if FeasibleSet(repeatTask(Task{C: 3, P: 100, D: 20}, 7)) {
		t.Error("FeasibleSet(seven) = true, want false")
	}
}
