package edf

import (
	"math"
	"math/big"
)

// Utilization returns the exact total utilization U = sum(C_i/P_i) of the
// task set as a rational number (Eq. 18.2). The zero-value result for an
// empty set is 0/1.
func Utilization(tasks []Task) *big.Rat {
	u := new(big.Rat)
	term := new(big.Rat)
	for _, t := range tasks {
		term.SetFrac64(t.C, t.P)
		u.Add(u, term)
	}
	return u
}

// UtilizationFloat returns U as a float64 for reporting. It may round; use
// Utilization or UtilizationExceedsOne for admission decisions.
func UtilizationFloat(tasks []Task) float64 {
	var u float64
	for _, t := range tasks {
		u += float64(t.C) / float64(t.P)
	}
	return u
}

var ratOne = big.NewRat(1, 1)

// UtilizationExceedsOne reports whether U > 1 exactly. This is the paper's
// first constraint: a link is only feasible when its utilization is at most
// 100%.
func UtilizationExceedsOne(tasks []Task) bool {
	return Utilization(tasks).Cmp(ratOne) > 0
}

// GCD returns the greatest common divisor of a and b. GCD(0, 0) == 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b and whether the result
// fits in an int64. LCM(0, x) == 0.
func LCM(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	g := GCD(a, b)
	q := a / g
	if q > math.MaxInt64/b {
		return 0, false
	}
	return q * b, true
}

// Hyperperiod returns the least common multiple of all task periods — the
// interval after which the synchronous schedule repeats — and whether the
// value fits in an int64. An empty task set has hyperperiod 1.
func Hyperperiod(tasks []Task) (int64, bool) {
	h := int64(1)
	for _, t := range tasks {
		var ok bool
		h, ok = LCM(h, t.P)
		if !ok {
			return 0, false
		}
	}
	return h, true
}
