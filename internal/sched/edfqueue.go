// Package sched implements the output queues of the RT layer (§18.2.1,
// Fig. 18.2): a deadline-sorted queue for real-time frames, an FCFS queue
// for non-real-time frames, and the per-port scheduler that serves the RT
// queue with strict priority over the FCFS queue.
package sched

import "container/heap"

// Item is one queued frame. The scheduler only needs the sort key (the
// absolute deadline in slots); the opaque payload travels untouched.
type Item struct {
	Deadline int64       // absolute deadline used as the EDF sort key
	Payload  interface{} // opaque frame handle

	seq uint64 // insertion sequence for stable FIFO tie-breaking
	idx int    // heap index, maintained by the heap interface
}

// EDFQueue is the deadline-sorted output queue: Pop always returns the
// frame with the earliest absolute deadline, breaking ties in insertion
// order so that equal-deadline frames stay FIFO (deterministic and
// starvation-free among ties).
//
// The zero value is ready to use. Not safe for concurrent use.
type EDFQueue struct {
	h   edfHeap
	seq uint64
}

type edfHeap []*Item

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	return h[i].seq < h[j].seq
}
func (h edfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *edfHeap) Push(x interface{}) {
	it := x.(*Item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *edfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Len returns the number of queued frames.
func (q *EDFQueue) Len() int { return len(q.h) }

// Push enqueues a frame with the given absolute deadline.
func (q *EDFQueue) Push(deadline int64, payload interface{}) {
	it := &Item{Deadline: deadline, Payload: payload, seq: q.seq}
	q.seq++
	heap.Push(&q.h, it)
}

// Pop removes and returns the earliest-deadline frame. It returns false
// when the queue is empty.
func (q *EDFQueue) Pop() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	it := heap.Pop(&q.h).(*Item)
	return *it, true
}

// Peek returns the earliest-deadline frame without removing it.
func (q *EDFQueue) Peek() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	return *q.h[0], true
}
