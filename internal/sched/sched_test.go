package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEDFQueueOrdersByDeadline(t *testing.T) {
	var q EDFQueue
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		it, ok := q.Pop()
		if !ok || it.Payload.(string) != w {
			t.Fatalf("pop = %v,%v, want %q", it, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue returned ok")
	}
}

func TestEDFQueueTiesAreFIFO(t *testing.T) {
	var q EDFQueue
	for i := 0; i < 10; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 10; i++ {
		it, ok := q.Pop()
		if !ok || it.Payload.(int) != i {
			t.Fatalf("tie order broken at %d: got %v", i, it.Payload)
		}
	}
}

func TestEDFQueuePeek(t *testing.T) {
	var q EDFQueue
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty returned ok")
	}
	q.Push(7, "x")
	it, ok := q.Peek()
	if !ok || it.Deadline != 7 || q.Len() != 1 {
		t.Errorf("peek = %v,%v len=%d", it, ok, q.Len())
	}
}

func TestEDFQueueInterleavedPushPop(t *testing.T) {
	var q EDFQueue
	q.Push(10, "late")
	q.Push(5, "early")
	it, _ := q.Pop()
	if it.Payload.(string) != "early" {
		t.Fatal("wrong first pop")
	}
	q.Push(1, "urgent")
	it, _ = q.Pop()
	if it.Payload.(string) != "urgent" {
		t.Fatal("urgent frame not prioritized after interleaved push")
	}
	it, _ = q.Pop()
	if it.Payload.(string) != "late" {
		t.Fatal("remaining frame lost")
	}
}

// TestEDFQueuePopsSorted is the heap-order property test: any push
// sequence pops in nondecreasing deadline order, FIFO within ties.
func TestEDFQueuePopsSorted(t *testing.T) {
	f := func(deadlines []int16) bool {
		var q EDFQueue
		for i, d := range deadlines {
			q.Push(int64(d), i)
		}
		var popped []Item
		for {
			it, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, it)
		}
		if len(popped) != len(deadlines) {
			return false
		}
		for i := 1; i < len(popped); i++ {
			if popped[i].Deadline < popped[i-1].Deadline {
				return false
			}
			if popped[i].Deadline == popped[i-1].Deadline &&
				popped[i].Payload.(int) < popped[i-1].Payload.(int) {
				return false // FIFO tie-break violated
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDFQueueMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		var q EDFQueue
		ref := make([]int64, n)
		for i := 0; i < n; i++ {
			d := int64(rng.Intn(50))
			ref[i] = d
			q.Push(d, nil)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := 0; i < n; i++ {
			it, ok := q.Pop()
			if !ok || it.Deadline != ref[i] {
				t.Fatalf("trial %d pos %d: got %v,%v want %d", trial, i, it, ok, ref[i])
			}
		}
	}
}

func TestFCFSQueueOrder(t *testing.T) {
	q := NewFCFSQueue(0)
	for i := 0; i < 100; i++ {
		if !q.Push(i) {
			t.Fatal("unbounded queue rejected a push")
		}
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v.(int) != i {
			t.Fatalf("FCFS order broken at %d: %v", i, v)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty FCFS returned ok")
	}
}

func TestFCFSQueueBoundAndDrops(t *testing.T) {
	q := NewFCFSQueue(3)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 3 || q.Drops() != 2 {
		t.Fatalf("len=%d drops=%d, want 3 and 2", q.Len(), q.Drops())
	}
	v, _ := q.Pop()
	if v.(int) != 0 {
		t.Errorf("head = %v, want oldest (0)", v)
	}
	if !q.Push(99) {
		t.Error("push after pop rejected despite free space")
	}
}

func TestFCFSQueueWrapAround(t *testing.T) {
	q := NewFCFSQueue(4)
	// Fill, drain half, refill: exercises the ring wrap.
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	q.Push(4)
	q.Push(5)
	want := []int{2, 3, 4, 5}
	for _, w := range want {
		v, ok := q.Pop()
		if !ok || v.(int) != w {
			t.Fatalf("wrap order: got %v, want %d", v, w)
		}
	}
}

func TestFCFSQueuePeek(t *testing.T) {
	q := NewFCFSQueue(0)
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty returned ok")
	}
	q.Push("a")
	v, ok := q.Peek()
	if !ok || v.(string) != "a" || q.Len() != 1 {
		t.Error("peek misbehaved")
	}
}

func TestFCFSQueueGrowPreservesOrder(t *testing.T) {
	q := NewFCFSQueue(0)
	// Force several grows with interleaved pops so head != 0 at grow time.
	next := 0
	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			q.Push(next)
			next++
		}
		q.Pop()
	}
	prev := -1
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v.(int) <= prev {
			t.Fatalf("order broken: %d after %d", v.(int), prev)
		}
		prev = v.(int)
	}
}

func TestPortRTStrictPriority(t *testing.T) {
	p := NewPort(0)
	p.EnqueueNonRT("tcp1")
	p.EnqueueRT(50, 20, "rt-late")
	p.EnqueueNonRT("tcp2")
	p.EnqueueRT(10, 20, "rt-early")

	wantOrder := []struct {
		payload string
		class   Class
	}{
		{"rt-early", ClassRT},
		{"rt-late", ClassRT},
		{"tcp1", ClassNonRT},
		{"tcp2", ClassNonRT},
	}
	for i, w := range wantOrder {
		payload, class, ok := p.Next()
		if !ok || payload.(string) != w.payload || class != w.class {
			t.Fatalf("step %d: got (%v, %v, %v), want %+v", i, payload, class, ok, w)
		}
	}
	if _, _, ok := p.Next(); ok {
		t.Error("Next on idle port returned ok")
	}
	rt, nonRT := p.Sent()
	if rt != 2 || nonRT != 2 {
		t.Errorf("sent = (%d, %d), want (2, 2)", rt, nonRT)
	}
}

func TestPortBusyAndBacklogs(t *testing.T) {
	p := NewPort(2)
	if p.Busy() {
		t.Error("new port busy")
	}
	p.EnqueueRT(1, 1, "a")
	p.EnqueueNonRT("b")
	p.EnqueueNonRT("c")
	p.EnqueueNonRT("dropped")
	if !p.Busy() || p.QueuedRT() != 1 || p.QueuedNonRT() != 2 || p.Drops() != 1 {
		t.Errorf("busy=%v rt=%d nonrt=%d drops=%d", p.Busy(), p.QueuedRT(), p.QueuedNonRT(), p.Drops())
	}
}

func TestClassString(t *testing.T) {
	if ClassRT.String() != "rt" || ClassNonRT.String() != "non-rt" {
		t.Error("Class strings changed")
	}
}

func TestDisciplineString(t *testing.T) {
	for d, want := range map[Discipline]string{
		DisciplineEDF: "EDF", DisciplineFIFO: "FIFO", DisciplineDM: "DM",
		Discipline(9): "discipline(?)",
	} {
		if got := d.String(); got != want {
			t.Errorf("Discipline(%d) = %q, want %q", int(d), got, want)
		}
	}
}

func TestPortDisciplineFIFO(t *testing.T) {
	p := NewPortWithDiscipline(0, DisciplineFIFO)
	// Arrival order wins regardless of deadlines.
	p.EnqueueRT(50, 50, "first")
	p.EnqueueRT(10, 10, "second")
	p.EnqueueRT(30, 30, "third")
	for _, want := range []string{"first", "second", "third"} {
		got, class, ok := p.Next()
		if !ok || class != ClassRT || got.(string) != want {
			t.Fatalf("FIFO order: got %v, want %q", got, want)
		}
	}
}

func TestPortDisciplineDM(t *testing.T) {
	p := NewPortWithDiscipline(0, DisciplineDM)
	// Static priority by relative deadline; absolute deadlines ignored.
	p.EnqueueRT(5, 40, "loose-but-urgent-abs")
	p.EnqueueRT(100, 10, "tight-class")
	p.EnqueueRT(60, 40, "loose-2")
	order := []string{"tight-class", "loose-but-urgent-abs", "loose-2"}
	for _, want := range order {
		got, _, ok := p.Next()
		if !ok || got.(string) != want {
			t.Fatalf("DM order: got %v, want %q", got, want)
		}
	}
}

func TestPortDisciplineEDFDefault(t *testing.T) {
	p := NewPort(0)
	p.EnqueueRT(100, 10, "late-abs")
	p.EnqueueRT(5, 40, "early-abs")
	got, _, _ := p.Next()
	if got.(string) != "early-abs" {
		t.Errorf("EDF must order by absolute deadline, got %v", got)
	}
}
