package sched

// Class labels which queue a dequeued frame came from.
type Class int

const (
	// ClassRT is a real-time frame from the deadline-sorted queue.
	ClassRT Class = iota
	// ClassNonRT is a best-effort frame from the FCFS queue.
	ClassNonRT
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == ClassRT {
		return "rt"
	}
	return "non-rt"
}

// Discipline selects how the real-time queue of a port orders frames.
// The paper's system is EDF; FIFO and DM (Deadline-Monotonic fixed
// priority) exist for the comparison experiments — running an
// EDF-admitted channel set under a weaker discipline demonstrates why
// the admission test and the dispatcher must match.
type Discipline int

const (
	// DisciplineEDF orders by absolute deadline (the paper's scheduler).
	DisciplineEDF Discipline = iota
	// DisciplineFIFO ignores deadlines: pure arrival order.
	DisciplineFIFO
	// DisciplineDM orders by the channel's relative (link-local) deadline:
	// static priorities, FIFO within a priority.
	DisciplineDM
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case DisciplineEDF:
		return "EDF"
	case DisciplineFIFO:
		return "FIFO"
	case DisciplineDM:
		return "DM"
	default:
		return "discipline(?)"
	}
}

// Port is the output stage of one link direction (one of the two queue
// pairs of Fig. 18.2, either in an end-node or on a switch port): a
// priority queue for RT frames (EDF by default) and an FCFS queue for
// everything else. RT frames are always served first; non-RT frames only
// flow when no RT frame is waiting. Within one slot granularity this is
// exactly the paper's behaviour — frames are maximal-sized, so a non-RT
// frame in flight delays an RT frame by less than one slot, which the
// slot-quantized analysis already accounts for.
type Port struct {
	rt         EDFQueue
	nonRT      *FCFSQueue
	discipline Discipline

	sentRT    int64
	sentNonRT int64
}

// NewPort returns an EDF port whose non-RT queue holds at most nonRTCap
// frames (<= 0 for unbounded).
func NewPort(nonRTCap int) *Port {
	return NewPortWithDiscipline(nonRTCap, DisciplineEDF)
}

// NewPortWithDiscipline returns a port using the given RT queue ordering.
func NewPortWithDiscipline(nonRTCap int, d Discipline) *Port {
	return &Port{nonRT: NewFCFSQueue(nonRTCap), discipline: d}
}

// EnqueueRT inserts an RT frame. absDeadline is the frame's link-local
// absolute deadline; relDeadline is its channel's link-local relative
// deadline. Which one orders the queue depends on the discipline (FIFO
// uses neither — the queue's insertion sequence already breaks ties in
// arrival order).
func (p *Port) EnqueueRT(absDeadline, relDeadline int64, payload interface{}) {
	switch p.discipline {
	case DisciplineFIFO:
		p.rt.Push(0, payload)
	case DisciplineDM:
		p.rt.Push(relDeadline, payload)
	default:
		p.rt.Push(absDeadline, payload)
	}
}

// EnqueueNonRT appends a best-effort frame; false if dropped.
func (p *Port) EnqueueNonRT(payload interface{}) bool {
	return p.nonRT.Push(payload)
}

// Next dequeues the frame to transmit in the coming slot: the
// earliest-deadline RT frame if any, otherwise the oldest non-RT frame.
// ok is false when the port is idle.
func (p *Port) Next() (payload interface{}, class Class, ok bool) {
	if it, got := p.rt.Pop(); got {
		p.sentRT++
		return it.Payload, ClassRT, true
	}
	if f, got := p.nonRT.Pop(); got {
		p.sentNonRT++
		return f, ClassNonRT, true
	}
	return nil, ClassRT, false
}

// Busy reports whether any frame is waiting.
func (p *Port) Busy() bool { return p.rt.Len() > 0 || p.nonRT.Len() > 0 }

// QueuedRT returns the RT backlog length.
func (p *Port) QueuedRT() int { return p.rt.Len() }

// QueuedNonRT returns the non-RT backlog length.
func (p *Port) QueuedNonRT() int { return p.nonRT.Len() }

// Sent returns cumulative transmit counts per class.
func (p *Port) Sent() (rt, nonRT int64) { return p.sentRT, p.sentNonRT }

// Drops returns the non-RT drop count.
func (p *Port) Drops() int64 { return p.nonRT.Drops() }
