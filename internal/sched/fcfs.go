package sched

// FCFSQueue is the first-come-first-serve queue for non-real-time traffic
// (§18.2.1: outgoing non-real-time traffic "typically uses TCP and is put
// in a FCFS-sorted queue in the RT layer"). It is a bounded ring buffer:
// when full, new arrivals are dropped and counted, which models the
// best-effort nature of non-RT traffic under RT load.
//
// The zero value is an unbounded queue; use NewFCFSQueue for a bound.
// Not safe for concurrent use.
type FCFSQueue struct {
	buf   []interface{}
	head  int
	n     int
	cap   int // 0 = unbounded
	drops int64
}

// NewFCFSQueue returns a queue that holds at most capacity frames;
// capacity <= 0 means unbounded.
func NewFCFSQueue(capacity int) *FCFSQueue {
	if capacity < 0 {
		capacity = 0
	}
	return &FCFSQueue{cap: capacity}
}

// Len returns the number of queued frames.
func (q *FCFSQueue) Len() int { return q.n }

// Drops returns the number of frames rejected because the queue was full.
func (q *FCFSQueue) Drops() int64 { return q.drops }

// Push appends a frame; it reports false (and counts a drop) when the
// queue is at capacity.
func (q *FCFSQueue) Push(payload interface{}) bool {
	if q.cap > 0 && q.n >= q.cap {
		q.drops++
		return false
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = payload
	q.n++
	return true
}

// Pop removes and returns the oldest frame; false when empty.
func (q *FCFSQueue) Pop() (interface{}, bool) {
	if q.n == 0 {
		return nil, false
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p, true
}

// Peek returns the oldest frame without removing it; false when empty.
func (q *FCFSQueue) Peek() (interface{}, bool) {
	if q.n == 0 {
		return nil, false
	}
	return q.buf[q.head], true
}

func (q *FCFSQueue) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	if q.cap > 0 && newCap > q.cap {
		newCap = q.cap
	}
	nb := make([]interface{}, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
