package loadgen

import (
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/rtether"
)

// TestShardPreservesPerNameOrder pins the sharding contract: every
// named channel's establish precedes its release within one shard, and
// nothing is lost or duplicated.
func TestShardPreservesPerNameOrder(t *testing.T) {
	var items []scenario.WorkItem
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range names {
		items = append(items, scenario.WorkItem{Name: n, Spec: rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}})
	}
	for _, n := range names {
		items = append(items, scenario.WorkItem{Name: n, Release: true})
	}
	items = append(items, scenario.WorkItem{Spec: rtether.ChannelSpec{Src: 1, Dst: 2, C: 1, P: 100, D: 40}}) // unnamed

	shards := Shard(items, 3)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	total := 0
	seen := make(map[string]int) // name -> establishes seen before release
	for _, shard := range shards {
		open := make(map[string]bool)
		for _, it := range shard {
			total++
			if it.Name == "" {
				continue
			}
			if it.Release {
				if !open[it.Name] {
					t.Errorf("release of %q before its establish in the same shard", it.Name)
				}
				open[it.Name] = false
			} else {
				open[it.Name] = true
				seen[it.Name]++
			}
		}
	}
	if total != len(items) {
		t.Errorf("sharding lost items: %d of %d", total, len(items))
	}
	for _, n := range names {
		if seen[n] != 1 {
			t.Errorf("channel %q established %d times across shards", n, seen[n])
		}
	}
}

// TestShardClampsWorkerCount covers the n<1 guard.
func TestShardClampsWorkerCount(t *testing.T) {
	shards := Shard([]scenario.WorkItem{{Name: "x"}}, 0)
	if len(shards) != 1 || len(shards[0]) != 1 {
		t.Fatalf("Shard(…, 0) = %v", shards)
	}
}

// TestOpStatsMerge pins the aggregate arithmetic the sweep and rtload
// summaries rely on.
func TestOpStatsMerge(t *testing.T) {
	a, b := NewOpStats(), NewOpStats()
	a.Observe(10 * time.Millisecond)
	a.Accepted = 1
	b.Observe(20 * time.Millisecond)
	b.Rejected, b.Skipped, b.ProtoErr = 2, 3, 4
	a.Merge(b)
	if a.Lat.Count() != 2 || a.Accepted != 1 || a.Rejected != 2 || a.Skipped != 3 || a.ProtoErr != 4 {
		t.Errorf("merge wrong: %+v", a)
	}
	res := &Result{Establish: a, Release: NewOpStats(), Wall: time.Second}
	if res.Ops() != 2 || res.ProtoErrs() != 4 || res.OpsPerSec() != 2 {
		t.Errorf("result arithmetic wrong: ops=%d protoErrs=%d ops/s=%v", res.Ops(), res.ProtoErrs(), res.OpsPerSec())
	}
	br := BenchResult("BenchmarkX", a)
	if br.Metrics["ns/op"] <= 0 || br.Metrics["p99-ns"] < br.Metrics["p50-ns"] {
		t.Errorf("bench result wrong: %+v", br.Metrics)
	}
}
