// Package loadgen is the library form of cmd/rtload's client machinery:
// it shards a scenario's flattened establish/release workload across
// concurrent client goroutines, replays it against a running rtetherd
// over the typed client, and aggregates per-operation latency and
// verdict counts. cmd/rtload wraps it in a CLI; the sweep orchestrator
// (internal/sweep) drives it once per daemon-mode grid cell.
package loadgen

import (
	"context"
	"errors"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/rtether"
	"repro/rtether/client"
)

// OpStats aggregates one operation kind's measurements. Latencies go
// into the same reservoir-sampling Delay primitive the simulator's
// measurements use (internal/stats), observed in nanoseconds.
type OpStats struct {
	Lat      *stats.Delay
	Accepted int // operations the daemon applied
	Rejected int // admission rejections (expected outcomes, not failures)
	Skipped  int // releases whose establish was rejected
	ProtoErr int // transport failures and unclassified server errors
}

// NewOpStats returns an empty aggregate.
func NewOpStats() *OpStats { return &OpStats{Lat: stats.NewDelay(0)} }

// Observe records one operation's wall latency.
func (s *OpStats) Observe(d time.Duration) { s.Lat.Observe(d.Nanoseconds()) }

// Merge folds another worker's stats in.
func (s *OpStats) Merge(o *OpStats) {
	s.Lat.Merge(o.Lat)
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Skipped += o.Skipped
	s.ProtoErr += o.ProtoErr
}

// Result is one completed load run: the merged establish and release
// aggregates plus the wall-clock span of the whole run.
type Result struct {
	Establish *OpStats
	Release   *OpStats
	Wall      time.Duration
}

// Ops counts the timed operations across both kinds.
func (r *Result) Ops() int { return int(r.Establish.Lat.Count() + r.Release.Lat.Count()) }

// ProtoErrs counts the protocol errors across both kinds — non-zero
// means the wire contract broke somewhere, and load harnesses should
// fail loudly.
func (r *Result) ProtoErrs() int { return r.Establish.ProtoErr + r.Release.ProtoErr }

// OpsPerSec is the run's aggregate operation throughput.
func (r *Result) OpsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops()) / r.Wall.Seconds()
}

// Shard splits the workload across n workers, by channel name: each
// channel's establish→release order is preserved within one worker
// while shards proceed independently — exactly the concurrent-client
// pattern the daemon's coalescing front-end merges. Unnamed items
// spread round-robin.
func Shard(items []scenario.WorkItem, n int) [][]scenario.WorkItem {
	if n < 1 {
		n = 1
	}
	shards := make([][]scenario.WorkItem, n)
	for i, it := range items {
		w := i % n
		if it.Name != "" {
			h := fnv.New32a()
			_, _ = io.WriteString(h, it.Name)
			w = int(h.Sum32() % uint32(n))
		}
		shards[w] = append(shards[w], it)
	}
	return shards
}

// Run replays the workload against the daemon behind cl from clients
// concurrent goroutines (sharded by Shard) at full speed and returns
// the merged measurements. Admission rejections count as outcomes, not
// errors; ctx cancellation stops the replay early (already-issued calls
// still complete).
func Run(ctx context.Context, cl *client.Client, items []scenario.WorkItem, clients int) *Result {
	if clients < 1 {
		clients = 1
	}
	shards := Shard(items, clients)
	est := make([]*OpStats, clients)
	rel := make([]*OpStats, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		est[w], rel[w] = NewOpStats(), NewOpStats()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runShard(ctx, cl, shards[w], est[w], rel[w])
		}(w)
	}
	wg.Wait()
	res := &Result{Establish: NewOpStats(), Release: NewOpStats(), Wall: time.Since(start)}
	for w := 0; w < clients; w++ {
		res.Establish.Merge(est[w])
		res.Release.Merge(rel[w])
	}
	return res
}

// runShard replays one worker's items in order, tracking the channel
// IDs its establishes were assigned so later releases find them.
func runShard(ctx context.Context, cl *client.Client, items []scenario.WorkItem, est, rel *OpStats) {
	ids := make(map[string]rtether.ChannelID)
	for _, it := range items {
		if ctx.Err() != nil {
			return
		}
		if it.Release {
			id, ok := ids[it.Name]
			if !ok {
				rel.Skipped++ // its establish was rejected
				continue
			}
			delete(ids, it.Name)
			t0 := time.Now()
			err := cl.Release(ctx, id)
			rel.Observe(time.Since(t0))
			if err != nil {
				rel.ProtoErr++
				continue
			}
			rel.Accepted++
			continue
		}
		t0 := time.Now()
		var ch client.Channel
		var err error
		if len(it.Sinks) > 0 {
			ch, err = cl.EstablishMulticast(ctx, rtether.MulticastSpec{
				Src: it.Spec.Src, Sinks: it.Sinks, C: it.Spec.C, P: it.Spec.P, D: it.Spec.D,
			})
		} else {
			ch, err = cl.Establish(ctx, it.Spec)
		}
		est.Observe(time.Since(t0))
		switch {
		case err == nil:
			est.Accepted++
			if it.Name != "" {
				ids[it.Name] = ch.ID
			}
		case errors.Is(err, rtether.ErrInfeasible):
			est.Rejected++ // an admission verdict, not a failure
		default:
			est.ProtoErr++
		}
	}
}

// BenchResult summarizes one operation kind as a benchmark entry: mean
// ns/op plus the p50/p90/p99/max latency spread and the verdict counts.
func BenchResult(name string, s *OpStats) benchfmt.Result {
	res := benchfmt.Result{Name: name, Runs: s.Lat.Count(), Metrics: map[string]float64{
		"accepted": float64(s.Accepted),
		"rejected": float64(s.Rejected),
	}}
	if s.Lat.Count() == 0 {
		res.Metrics["ns/op"] = 0
		return res
	}
	res.Metrics["ns/op"] = s.Lat.Mean()
	res.Metrics["p50-ns"] = float64(s.Lat.Percentile(50))
	res.Metrics["p90-ns"] = float64(s.Lat.Percentile(90))
	res.Metrics["p99-ns"] = float64(s.Lat.Percentile(99))
	res.Metrics["max-ns"] = float64(s.Lat.Max())
	return res
}
