package netsim

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRingTracerRetention(t *testing.T) {
	r := NewRingTracer(4)
	for i := int64(0); i < 10; i++ {
		r.Trace(TraceEvent{At: i, Kind: EvRelease})
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.At != int64(6+i) {
			t.Fatalf("events = %v, want the last four oldest-first", evs)
		}
	}
}

func TestRingTracerPartialFill(t *testing.T) {
	r := NewRingTracer(8)
	r.Trace(TraceEvent{At: 1})
	r.Trace(TraceEvent{At: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 2 {
		t.Errorf("events = %v", evs)
	}
	if NewRingTracer(0) == nil {
		t.Error("zero capacity should default, not fail")
	}
}

func TestFilterTracer(t *testing.T) {
	inner := NewRingTracer(16)
	f := FilterTracer{Inner: inner, Keep: map[EventKind]bool{EvMiss: true}}
	f.Trace(TraceEvent{Kind: EvRelease})
	f.Trace(TraceEvent{Kind: EvMiss})
	f.Trace(TraceEvent{Kind: EvDeliver})
	if inner.Total() != 1 {
		t.Errorf("filter passed %d events, want 1", inner.Total())
	}
}

func TestNetworkEmitsTraceEvents(t *testing.T) {
	n := buildStar(Config{}, 1, 2, 3, 4, 5, 6, 7, 8)
	tr := NewRingTracer(4096)
	n.SetTracer(tr)

	// Saturate node 1's uplink so the 7th request is rejected.
	var ids []core.ChannelID
	for i := 0; i < 7; i++ {
		if id, err := n.EstablishChannel(spec(1, core.NodeID(2+i), 3, 100, 40)); err == nil {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		if err := n.Node(1).StartTraffic(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(n.Engine().Now() + 500)

	counts := map[EventKind]int{}
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	if counts[EvAdmitted] != 6 {
		t.Errorf("admit events = %d, want 6", counts[EvAdmitted])
	}
	if counts[EvRejected] != 1 {
		t.Errorf("reject events = %d, want 1", counts[EvRejected])
	}
	if counts[EvRelease] == 0 || counts[EvDeliver] == 0 {
		t.Errorf("dataflow events missing: %v", counts)
	}
	if counts[EvMiss] != 0 {
		t.Errorf("misses traced on a feasible workload: %d", counts[EvMiss])
	}
	// Releases and deliveries pair up, minus the in-flight tail (up to
	// one full release batch of 6 channels x C=3 at the horizon, plus a
	// few frames queued on the wire).
	if counts[EvRelease]-counts[EvDeliver] > 25 {
		t.Errorf("release=%d deliver=%d: too many lost frames", counts[EvRelease], counts[EvDeliver])
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{At: 42, Kind: EvMiss, Node: 3, Channel: 7, Value: 55}
	s := e.String()
	for _, want := range []string{"42", "MISS", "node=3", "ch=7", "v=55"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if EventKind(99).String() != "ev(99)" {
		t.Error("unknown kind string")
	}
}

func TestReportLinkBusy(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 2000)
	rep := n.Report()
	up := rep.LinkBusy[core.Uplink(1)]
	down := rep.LinkBusy[core.Downlink(2)]
	// 3 frames per 100 slots ≈ 3% utilization (plus handshake noise).
	if up < 0.02 || up > 0.06 {
		t.Errorf("uplink busy = %v, want ≈0.03", up)
	}
	if down < 0.02 || down > 0.06 {
		t.Errorf("downlink busy = %v, want ≈0.03", down)
	}
	if rep.LinkBusy[core.Uplink(2)] > 0.01 {
		t.Errorf("idle uplink shows busy %v", rep.LinkBusy[core.Uplink(2)])
	}
}
