package netsim

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// ChannelMetrics aggregates receiver-side measurements for one RT channel.
type ChannelMetrics struct {
	Delivered int64        // RT frames delivered to the destination RT layer
	Misses    int64        // frames arriving after d_i + T_latency
	Delays    *stats.Delay // end-to-end delay distribution (slots)
}

func newChannelMetrics() *ChannelMetrics {
	return &ChannelMetrics{Delays: stats.NewDelay(0)}
}

// Report is a snapshot of everything the experiments measure.
type Report struct {
	Now int64 // simulation time of the snapshot

	// Channels maps every channel with delivered traffic to its metrics.
	Channels map[core.ChannelID]*ChannelMetrics

	// NonRTDelivered counts best-effort frames that reached their
	// destination; NonRTDelay is their delay distribution.
	NonRTDelivered int64
	NonRTDelay     *stats.Delay
	// NonRTDrops counts frames dropped at bounded FCFS queues anywhere.
	NonRTDrops int64

	// BadFrames counts undecodable frames seen by nodes or switch
	// (always 0 in a healthy simulation).
	BadFrames int64

	// LinkBusy maps each directed link to the fraction of elapsed slots
	// its transmitter spent sending (observed utilization, both traffic
	// classes).
	LinkBusy map[core.Link]float64
}

// Report gathers metrics from all nodes and the switch. Aggregates are
// merged deterministically (nodes in creation order).
func (n *Network) Report() *Report {
	r := &Report{
		Now:        n.eng.Now(),
		Channels:   make(map[core.ChannelID]*ChannelMetrics),
		NonRTDelay: stats.NewDelay(0),
		LinkBusy:   make(map[core.Link]float64),
	}
	_, _, _, _, bad := n.sw.Counters()
	r.BadFrames = bad
	for _, id := range n.nodeIDs {
		node := n.nodes[id]
		for chID, m := range node.rxChannels {
			if prev := r.Channels[chID]; prev != nil {
				// Several receivers (multicast): aggregate into a snapshot
				// instead of overwriting one sink's view with another's.
				merged := newChannelMetrics()
				merged.Delivered = prev.Delivered + m.Delivered
				merged.Misses = prev.Misses + m.Misses
				merged.Delays.Merge(prev.Delays)
				merged.Delays.Merge(m.Delays)
				r.Channels[chID] = merged
				continue
			}
			r.Channels[chID] = m
		}
		r.NonRTDelivered += node.rxNonRTN
		r.NonRTDrops += node.UplinkDrops()
		r.NonRTDrops += n.sw.DownlinkDrops(id)
		r.BadFrames += node.rxBadFrame
		r.NonRTDelay.Merge(node.rxNonRT)
		if r.Now > 0 {
			r.LinkBusy[core.Uplink(id)] = float64(node.UplinkBusySlots()) / float64(r.Now)
			r.LinkBusy[core.Downlink(id)] = float64(n.sw.DownlinkBusySlots(id)) / float64(r.Now)
		}
	}
	return r
}

// WorstDelay returns the maximum observed end-to-end delay across all
// channels, with the channel it occurred on. Zero values when no RT
// traffic was delivered.
func (r *Report) WorstDelay() (core.ChannelID, int64) {
	var worstID core.ChannelID
	var worst int64 = -1
	ids := make([]core.ChannelID, 0, len(r.Channels))
	for id := range r.Channels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m := r.Channels[id]; m.Delays.Max() > worst {
			worst = m.Delays.Max()
			worstID = id
		}
	}
	if worst < 0 {
		return 0, 0
	}
	return worstID, worst
}

// TotalMisses sums deadline misses across channels.
func (r *Report) TotalMisses() int64 {
	var total int64
	for _, m := range r.Channels {
		total += m.Misses
	}
	return total
}

// TotalDelivered sums delivered RT frames across channels.
func (r *Report) TotalDelivered() int64 {
	var total int64
	for _, m := range r.Channels {
		total += m.Delivered
	}
	return total
}
