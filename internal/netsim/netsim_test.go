package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
)

// buildStar creates a network with the given node IDs.
func buildStar(cfg Config, ids ...core.NodeID) *Network {
	n := New(cfg)
	for _, id := range ids {
		n.MustAddNode(id)
	}
	return n
}

func spec(src, dst core.NodeID, c, p, d int64) core.ChannelSpec {
	return core.ChannelSpec{Src: src, Dst: dst, C: c, P: p, D: d}
}

func TestEstablishChannelOverTheWire(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatalf("establishment failed: %v", err)
	}
	if id == 0 {
		t.Fatal("channel ID 0 returned")
	}
	ch := n.Controller().State().Get(id)
	if ch == nil {
		t.Fatal("channel not in controller state")
	}
	if ch.Spec != spec(1, 2, 3, 100, 40) {
		t.Errorf("committed spec %v", ch.Spec)
	}
	// The handshake consumed simulated time: request uplink + forward
	// downlink + response uplink + forward downlink = 4 slots minimum.
	if n.Engine().Now() < 4 {
		t.Errorf("handshake finished at t=%d, impossibly fast", n.Engine().Now())
	}
}

func TestEstablishChannelRejectedByAdmission(t *testing.T) {
	n := buildStar(Config{}, 1, 2, 3, 4, 5, 6, 7, 8)
	// Fill node 1's uplink: SDPS fits exactly 6 of the paper channels.
	for i := 0; i < 6; i++ {
		if _, err := n.EstablishChannel(spec(1, core.NodeID(2+i), 3, 100, 40)); err != nil {
			t.Fatalf("channel %d rejected: %v", i, err)
		}
	}
	_, err := n.EstablishChannel(spec(1, 8, 3, 100, 40))
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("seventh channel: %v, want ErrInfeasible (via wire rejection)", err)
	}
	if n.Controller().State().Len() != 6 {
		t.Errorf("state has %d channels after rejection, want 6", n.Controller().State().Len())
	}
}

func TestEstablishChannelRejectedByDestination(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	n.Node(2).AcceptPolicy = func(frame.Request) bool { return false }
	_, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want rejection", err)
	}
	// The switch must have released the tentatively admitted channel.
	if got := n.Controller().State().Len(); got != 0 {
		t.Errorf("state has %d channels after destination rejection, want 0", got)
	}
}

func TestEstablishChannelUnknownNodes(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	if _, err := n.EstablishChannel(spec(9, 2, 3, 100, 40)); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := n.EstablishChannel(spec(1, 9, 3, 100, 40)); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	n := buildStar(Config{}, 1)
	if _, err := n.AddNode(1); err == nil {
		t.Error("duplicate AddNode accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddNode duplicate did not panic")
		}
	}()
	n.MustAddNode(1)
}

func TestSingleChannelTrafficMeetsDeadline(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	start := n.Engine().Now()
	n.Run(start + 1000)
	rep := n.Report()
	m := rep.Channels[id]
	if m == nil {
		t.Fatal("no metrics for channel")
	}
	// 10 full periods released in [start, start+1000): depends on phase;
	// at least 9 periods' worth of frames must have been delivered.
	if m.Delivered < 27 {
		t.Errorf("delivered %d frames, want >= 27", m.Delivered)
	}
	if m.Misses != 0 {
		t.Errorf("misses = %d, want 0", m.Misses)
	}
	// An unloaded channel's frames take C..C+1 slots per frame of queueing
	// plus 2 slots of transmission; worst observed delay must be well
	// under the 40-slot guarantee — and at least 2 (two store-and-forward
	// hops).
	if m.Delays.Max() > 40 || m.Delays.Min() < 2 {
		t.Errorf("delay range [%d, %d] outside (2, 40]", m.Delays.Min(), m.Delays.Max())
	}
	if rep.BadFrames != 0 {
		t.Errorf("bad frames: %d", rep.BadFrames)
	}
}

// loadAndRun establishes the master-slave workload, attaches sources for
// every accepted channel with the given offsets, runs for the horizon and
// returns the report plus accepted channel IDs.
func loadAndRun(t *testing.T, cfg Config, masters, slaves, requests int, horizon int64,
	offset func(k int) int64) (*Network, *Report, []core.ChannelID) {
	t.Helper()
	n := New(cfg)
	for m := 0; m < masters; m++ {
		n.MustAddNode(core.NodeID(m))
	}
	for s := 0; s < slaves; s++ {
		n.MustAddNode(core.NodeID(100 + s))
	}
	var accepted []core.ChannelID
	for k := 0; k < requests; k++ {
		sp := spec(core.NodeID(k%masters), core.NodeID(100+k%slaves), 3, 100, 40)
		id, err := n.EstablishChannel(sp)
		if err != nil {
			continue
		}
		accepted = append(accepted, id)
	}
	for k, id := range accepted {
		ch := n.Controller().State().Get(id)
		if err := n.Node(ch.Spec.Src).StartTraffic(id, offset(k)); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(n.Engine().Now() + horizon)
	return n, n.Report(), accepted
}

// TestGuaranteeHolds is the headline integration property (Eq. 18.1):
// every admitted channel delivers every frame within d_i, across both
// partitioning schemes, at full saturation, with synchronous releases
// (the analysis' worst case).
func TestGuaranteeHolds(t *testing.T) {
	for _, tc := range []struct {
		name string
		dps  core.DPS
	}{
		{"SDPS", core.SDPS{}},
		{"ADPS", core.ADPS{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n, rep, accepted := loadAndRun(t, Config{DPS: tc.dps}, 4, 12, 60, 3000,
				func(int) int64 { return 0 })
			if len(accepted) == 0 {
				t.Fatal("nothing accepted")
			}
			if rep.TotalMisses() != 0 {
				t.Fatalf("%d deadline misses among admitted channels", rep.TotalMisses())
			}
			if rep.BadFrames != 0 {
				t.Fatalf("bad frames: %d", rep.BadFrames)
			}
			_, worst := rep.WorstDelay()
			if worst > 40 {
				t.Errorf("worst delay %d exceeds guarantee 40", worst)
			}
			// Sanity: traffic actually flowed on every accepted channel.
			for _, id := range accepted {
				if rep.Channels[id] == nil || rep.Channels[id].Delivered == 0 {
					t.Errorf("channel %d delivered nothing", id)
				}
			}
			_ = n
		})
	}
}

// TestGuaranteeHoldsRandomOffsets repeats the guarantee check with
// asynchronous (random phase) releases — the schedule the analysis must
// dominate.
func TestGuaranteeHoldsRandomOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3; trial++ {
		dps := core.DPS(core.SDPS{})
		if trial%2 == 1 {
			dps = core.ADPS{}
		}
		_, rep, accepted := loadAndRun(t, Config{DPS: dps}, 3, 9, 40, 2500,
			func(int) int64 { return int64(rng.Intn(100)) })
		if len(accepted) == 0 {
			t.Fatal("nothing accepted")
		}
		if rep.TotalMisses() != 0 {
			t.Fatalf("trial %d: %d misses", trial, rep.TotalMisses())
		}
	}
}

// TestGuaranteeHoldsReverseDirection saturates a slave *downlink* (many
// masters → one slave), the mirror image of the usual bottleneck; ADPS
// must shift budget to the downlink and the guarantee must hold.
func TestGuaranteeHoldsReverseDirection(t *testing.T) {
	ids := make([]core.NodeID, 0, 13)
	for i := core.NodeID(0); i < 12; i++ {
		ids = append(ids, i)
	}
	ids = append(ids, 99)
	n := buildStar(Config{DPS: core.ADPS{}}, ids...)
	var accepted []core.ChannelID
	for i := core.NodeID(0); i < 12; i++ {
		id, err := n.EstablishChannel(spec(i, 99, 3, 100, 40))
		if err != nil {
			continue
		}
		accepted = append(accepted, id)
	}
	if len(accepted) < 8 {
		t.Fatalf("only %d accepted; ADPS should pack the downlink", len(accepted))
	}
	for _, id := range accepted {
		ch := n.Controller().State().Get(id)
		if err := n.Node(ch.Spec.Src).StartTraffic(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(n.Engine().Now() + 2000)
	rep := n.Report()
	if rep.TotalMisses() != 0 {
		t.Errorf("misses on reverse bottleneck: %d", rep.TotalMisses())
	}
	_, worst := rep.WorstDelay()
	if worst > 40 {
		t.Errorf("worst delay %d > 40", worst)
	}
}

func TestShapingHoldsFramesEarly(t *testing.T) {
	// With ADPS the downlink share can be small; frames that clear the
	// uplink early must be held by the shaper.
	n, _, _ := loadAndRun(t, Config{DPS: core.ADPS{}}, 1, 5, 5, 2000,
		func(int) int64 { return 0 })
	_, _, shaped, _, _ := n.Switch().Counters()
	if shaped == 0 {
		t.Error("shaper never held a frame under asymmetric partitions")
	}

	// And with shaping disabled the same workload still meets deadlines
	// (work-conserving EDF can only deliver earlier on this workload).
	_, rep, _ := loadAndRun(t, Config{DPS: core.ADPS{}, DisableShaping: true}, 1, 5, 5, 2000,
		func(int) int64 { return 0 })
	if rep.TotalMisses() != 0 {
		t.Errorf("unshaped run missed %d deadlines", rep.TotalMisses())
	}
}

func TestNonRTCoexistence(t *testing.T) {
	n, _, accepted := loadAndRun(t, Config{NonRTQueueCap: 64}, 2, 4, 12, 0,
		func(int) int64 { return 0 })
	if len(accepted) == 0 {
		t.Fatal("nothing accepted")
	}
	// Saturate with background traffic node 0 → node 100 while RT flows.
	eng := n.Engine()
	for i := 0; i < 500; i++ {
		i := i
		eng.At(eng.Now()+int64(i), func() {
			n.Node(0).SendNonRT(100, []byte(fmt.Sprintf("bulk-%d", i)))
		})
	}
	n.Run(eng.Now() + 3000)
	rep := n.Report()
	if rep.TotalMisses() != 0 {
		t.Errorf("RT misses under non-RT load: %d", rep.TotalMisses())
	}
	if rep.NonRTDelivered == 0 {
		t.Error("no non-RT frames delivered — starvation is not expected below saturation")
	}
	if rep.BadFrames != 0 {
		t.Errorf("bad frames: %d", rep.BadFrames)
	}
}

func TestNonRTDropsWhenQueueBounded(t *testing.T) {
	n := buildStar(Config{NonRTQueueCap: 4}, 1, 2)
	// Burst 50 frames into a bounded queue in one instant.
	sent := 0
	for i := 0; i < 50; i++ {
		if n.Node(1).SendNonRT(2, []byte{byte(i)}) {
			sent++
		}
	}
	if sent >= 50 {
		t.Error("bounded queue accepted the whole burst")
	}
	n.Run(200)
	rep := n.Report()
	if rep.NonRTDelivered != int64(sent) {
		t.Errorf("delivered %d, want %d (accepted frames)", rep.NonRTDelivered, sent)
	}
	if rep.NonRTDrops == 0 {
		t.Error("drops not reported")
	}
}

func TestPropagationAddsConstantLatency(t *testing.T) {
	n := buildStar(Config{Propagation: 3}, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 1, 50, 10))
	if err != nil {
		t.Fatal(err)
	}
	if n.ExtraLatency() != 6 {
		t.Fatalf("ExtraLatency = %d, want 6", n.ExtraLatency())
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 500)
	rep := n.Report()
	m := rep.Channels[id]
	if m == nil || m.Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
	if m.Misses != 0 {
		t.Errorf("misses with propagation allowance: %d", m.Misses)
	}
	// Two hops of 1 slot transmission + 3 slots propagation each: the
	// floor is 8 slots.
	if m.Delays.Min() < 8 {
		t.Errorf("min delay %d below physical floor 8", m.Delays.Min())
	}
	if m.Delays.Max() > 10+n.ExtraLatency() {
		t.Errorf("max delay %d above guarantee %d", m.Delays.Max(), 10+n.ExtraLatency())
	}
}

func TestReleaseChannelStopsTraffic(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 500)
	before := n.Report().Channels[id].Delivered
	if before == 0 {
		t.Fatal("no traffic before release")
	}
	if err := n.ReleaseChannel(id); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 500)
	after := n.Report().Channels[id].Delivered
	// A few in-flight frames may still land; no new periods may be
	// released.
	if after > before+3 {
		t.Errorf("traffic continued after release: %d -> %d", before, after)
	}
	if err := n.ReleaseChannel(id); err == nil {
		t.Error("double release did not error")
	}
}

func TestCloseChannelOverTheWire(t *testing.T) {
	n := buildStar(Config{}, 1, 2, 3)
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 300)
	if err := n.Node(1).CloseChannel(id); err != nil {
		t.Fatal(err)
	}
	// The teardown frame needs to traverse the uplink before the switch
	// releases the reservation.
	n.Run(n.Engine().Now() + 50)
	if n.Controller().State().Get(id) != nil {
		t.Error("channel still reserved after teardown")
	}
	// Capacity is reusable: a fresh channel on the same uplink fits.
	if _, err := n.EstablishChannel(spec(1, 3, 3, 100, 40)); err != nil {
		t.Errorf("re-establishment after teardown failed: %v", err)
	}
	// Closing again (unknown now) errors locally.
	if err := n.Node(1).CloseChannel(id); err == nil {
		t.Error("double close accepted")
	}
	// Only the source may close.
	id2, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(2).CloseChannel(id2); err == nil {
		t.Error("non-source close accepted")
	}
}

func TestStartTrafficErrors(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	if err := n.Node(1).StartTraffic(99, 0); err == nil {
		t.Error("StartTraffic on unknown channel accepted")
	}
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(2).StartTraffic(id, 0); err == nil {
		t.Error("StartTraffic on non-source node accepted")
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err == nil {
		t.Error("duplicate StartTraffic accepted")
	}
}

// TestLongHorizonStress runs the full paper workload at ADPS saturation
// for 30k slots (300 hyperperiods) — a soak test for leaks, drift and
// late-onset misses.
func TestLongHorizonStress(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	_, rep, accepted := loadAndRun(t, Config{DPS: core.ADPS{}}, 10, 50, 200, 30000,
		func(k int) int64 { return int64(k % 100) })
	if len(accepted) != 110 {
		t.Fatalf("accepted %d, want 110", len(accepted))
	}
	if rep.TotalMisses() != 0 {
		t.Fatalf("misses after 30k slots: %d", rep.TotalMisses())
	}
	// 110 channels x 3 frames per 100 slots x 30000 slots ≈ 99000 frames.
	if rep.TotalDelivered() < 95000 {
		t.Errorf("delivered %d, want ≈99k", rep.TotalDelivered())
	}
	if rep.BadFrames != 0 {
		t.Errorf("bad frames: %d", rep.BadFrames)
	}
}

// TestDeterminism: two identical runs produce bit-identical reports.
func TestDeterminism(t *testing.T) {
	run := func() string {
		_, rep, _ := loadAndRun(t, Config{DPS: core.ADPS{}}, 3, 7, 25, 2000,
			func(k int) int64 { return int64(k * 7 % 100) })
		_, worst := rep.WorstDelay()
		return fmt.Sprintf("%d|%d|%d|%d", rep.TotalDelivered(), rep.TotalMisses(), worst, rep.Now)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged: %q vs %q", a, b)
	}
}

// TestForceChannelOverloadMisses demonstrates the complementary behaviour
// to TestGuaranteeHolds: channels crammed past the demand criterion (as a
// utilization-only admission would allow) miss deadlines in simulation.
func TestForceChannelOverloadMisses(t *testing.T) {
	ids16 := make([]core.NodeID, 0, 16)
	for i := core.NodeID(1); i <= 16; i++ {
		ids16 = append(ids16, i)
	}
	n := buildStar(Config{DisableShaping: true}, ids16...)
	// 15 channels of C=3, D=40 on node 1's uplink: U = 0.45 <= 1 so a
	// utilization-only test admits them, but the synchronous burst is 45
	// frames — the tail cannot clear two hops within the 40-slot budget.
	var ids []core.ChannelID
	for i := 0; i < 15; i++ {
		id, err := n.ForceChannel(spec(1, core.NodeID(2+i), 3, 100, 40), core.Partition{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := n.Node(1).StartTraffic(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(3000)
	rep := n.Report()
	if rep.TotalMisses() == 0 {
		t.Error("over-admitted system missed no deadlines — the demand criterion would be pointless")
	}
	if rep.TotalDelivered() == 0 {
		t.Error("no traffic delivered")
	}
}

// TestOverloadNonRTQueues: bounded FCFS queues drop under burst overload
// while RT protection holds.
func TestOverloadNonRTQueues(t *testing.T) {
	n, _, _ := loadAndRun(t, Config{NonRTQueueCap: 32}, 1, 1, 6, 0,
		func(int) int64 { return 0 })
	for i := 0; i < 200; i++ {
		n.Node(0).SendNonRT(100, []byte{1})
	}
	n.Run(n.Engine().Now() + 2000)
	rep := n.Report()
	if rep.NonRTDrops == 0 {
		t.Error("expected non-RT drops under burst overload with bounded queues")
	}
	if rep.TotalMisses() != 0 {
		t.Errorf("RT protection failed: %d misses", rep.TotalMisses())
	}
}
